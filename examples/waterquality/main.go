// Waterquality: the river water quality case study of §III-D
// (Figs. 9–10). The 16 physical/chemical parameters are the targets and
// the 14 ordinal bioindicator taxa are the descriptors. The top pattern
// is a two-condition bioindicator rule selecting polluted samples; its
// spread pattern finds a naturally sparse direction (dominated by
// oxygen-demand chemistry) along which the subgroup's variance is much
// LARGER than the background model expects — showing that spread
// patterns are not limited to low-variance findings.
package main

import (
	"fmt"
	"log"
	"sort"

	sisd "repro"
)

func main() {
	log.SetFlags(0)

	ds := sisd.GenerateWaterQualityLike(1060)
	m, err := sisd.NewMiner(ds, sisd.Config{
		Search: sisd.SearchParams{MaxDepth: 2, BeamWidth: 20},
	})
	if err != nil {
		log.Fatal(err)
	}

	loc, _, err := m.MineLocation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top pattern: %s\n\n", loc.Format(ds))

	expl, err := m.ExplainLocation(loc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most surprising chemistry (top 5):")
	for _, e := range expl[:5] {
		fmt.Printf("  %-10s observed %7.2f  expected %7.2f  95%% CI [%6.2f, %6.2f]\n",
			e.Target, e.Observed, e.Expected, e.CI95Lo, e.CI95Hi)
	}

	if err := m.CommitLocation(loc); err != nil {
		log.Fatal(err)
	}
	sp, err := m.MineSpread(loc)
	if err != nil {
		log.Fatal(err)
	}
	expVar, err := m.Model.ExpectedSpread(sp.Extension, sp.W, sp.Center)
	if err != nil {
		log.Fatal(err)
	}

	type wc struct {
		name string
		w    float64
	}
	weights := make([]wc, ds.Dy())
	for j := range weights {
		weights[j] = wc{ds.TargetNames[j], sp.W[j]}
	}
	sort.Slice(weights, func(i, j int) bool {
		return abs(weights[i].w) > abs(weights[j].w)
	})
	fmt.Println("\nspread direction w (top 5 |weights|):")
	for _, w := range weights[:5] {
		fmt.Printf("  %-10s %+.3f\n", w.name, w.w)
	}
	fmt.Printf("\nvariance along w: observed %.2f vs expected %.2f — %.1fx larger than the model predicted (SI %.4g)\n",
		sp.Variance, expVar, sp.Variance/expVar, sp.SI)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
