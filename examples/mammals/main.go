// Mammals: the biogeography case study of §III-B (Figs. 4–6). The
// targets are 124 binary species-presence indicators on a grid of 2220
// European cells; the descriptors are 67 climate indicators. Each
// iteration finds a climate condition whose region hosts a surprising
// species community, renders the region as an ASCII map (the paper's
// Fig. 6), and lists the most surprising species with their expected
// ranges (the paper's Fig. 5). Spread patterns are skipped: for binary
// targets the variance is determined by the mean (§III-B).
package main

import (
	"fmt"
	"log"

	sisd "repro"
	"repro/internal/gen"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)

	ma := gen.MammalsLike(gen.SeedMammals)
	m, err := sisd.NewMiner(ma.DS, sisd.Config{
		Search: sisd.SearchParams{MaxDepth: 2, BeamWidth: 10},
	})
	if err != nil {
		log.Fatal(err)
	}

	for iter := 1; iter <= 3; iter++ {
		loc, _, err := m.MineLocation()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== iteration %d: %s ===\n", iter, loc.Intention.Format(ma.DS))
		fmt.Printf("covers %d of %d cells, SI=%.4g\n\n", loc.Size(), ma.DS.N(), loc.SI)

		gm := viz.NewGridMap(18, 50, ma.Lat, ma.Lon)
		gm.Mark(ma.Lat, ma.Lon, loc.Extension.Contains)
		fmt.Print(gm.Render())

		expl, err := m.ExplainLocation(loc)
		if err != nil {
			log.Fatal(err)
		}
		top := expl[:5]
		names := make([]string, len(top))
		obs := make([]float64, len(top))
		exp := make([]float64, len(top))
		for i, e := range top {
			names[i], obs[i], exp[i] = e.Target, e.Observed, e.Expected
		}
		fmt.Println("\nmost surprising species (presence rate, o=observed e=expected):")
		fmt.Print(viz.BarCompare(names, obs, exp, 40))
		fmt.Println()

		if err := m.CommitLocation(loc); err != nil {
			log.Fatal(err)
		}
	}
}
