// Iterative: the paper's §III-A protocol on the synthetic data — three
// two-step iterations (location + spread), printing how the SI of the
// first iteration's top patterns collapses once they are committed
// (Table I of the paper).
package main

import (
	"fmt"
	"log"

	sisd "repro"
)

func main() {
	log.SetFlags(0)

	ds := sisd.GenerateSynthetic(620)
	m, err := sisd.NewMiner(ds, sisd.Config{
		// Table I of the paper uses γ=0.5 (see DESIGN.md §2).
		SI:     sisd.SIParams{Gamma: 0.5, Eta: 1},
		Search: sisd.SearchParams{MaxDepth: 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Iteration 1: log the top 10 patterns, then track them.
	loc, searchLog, err := m.MineLocation()
	if err != nil {
		log.Fatal(err)
	}
	n := 10
	if len(searchLog.Patterns) < n {
		n = len(searchLog.Patterns)
	}
	tracked := make([]sisd.Intention, n)
	fmt.Println("top-10 patterns of iteration 1:")
	for i := 0; i < n; i++ {
		f := searchLog.Patterns[i]
		tracked[i] = f.Intention
		fmt.Printf("  %2d. %-34s size=%3d SI=%7.2f\n",
			i+1, f.Intention.Format(ds), f.Size, f.SI)
	}

	for iter := 1; iter <= 3; iter++ {
		fmt.Printf("\n--- committing iteration-%d top pattern: %s ---\n",
			iter, loc.Intention.Format(ds))
		if err := m.CommitLocation(loc); err != nil {
			log.Fatal(err)
		}
		sp, err := m.MineSpread(loc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("spread: %s\n", sp.Format(ds))
		if err := m.CommitSpread(sp); err != nil {
			log.Fatal(err)
		}

		fmt.Println("tracked SIs now:")
		for i, in := range tracked {
			re, err := m.ScoreLocationIntention(in)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %2d. %-34s SI=%7.2f\n", i+1, in.Format(ds), re.SI)
		}
		if iter < 3 {
			loc, _, err = m.MineLocation()
			if err != nil {
				log.Fatal(err)
			}
		}
	}
}
