// Quickstart: mine the single most subjectively interesting subgroup of
// a dataset, show it, and demonstrate that — once the user has seen it —
// the same pattern is no longer interesting.
package main

import (
	"fmt"
	"log"

	sisd "repro"
)

func main() {
	log.SetFlags(0)

	// The synthetic benchmark data of the paper (§III-A): 620 points,
	// two real-valued targets, three embedded clusters labeled by the
	// binary descriptors a3, a4, a5.
	ds := sisd.GenerateSynthetic(620)

	// A zero config means: prior beliefs = empirical mean and covariance
	// of the targets, γ=0.1, η=1, beam width 40, depth 4.
	m, err := sisd.NewMiner(ds, sisd.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: the most informative location pattern.
	loc, searchLog, err := m.MineLocation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most interesting subgroup:")
	fmt.Println(" ", loc.Format(ds))
	fmt.Printf("  (beam search scored %d candidate descriptions)\n\n", searchLog.Evaluated)

	// Step 2: commit it — the background model absorbs the information.
	if err := m.CommitLocation(loc); err != nil {
		log.Fatal(err)
	}

	// Step 3: the same description is now worthless to the user...
	re, err := m.ScoreLocationIntention(loc.Intention)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after committing, its SI collapses: %.2f -> %.2f\n", loc.SI, re.SI)

	// ...and the next search surfaces something genuinely new.
	next, _, err := m.MineLocation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnext most interesting subgroup:")
	fmt.Println(" ", next.Format(ds))
}
