// Crime: the paper's introductory scenario (Fig. 1). A user wants to
// learn about violent crime rates across US-style districts in terms of
// 122 demographic attributes. The miner finds the subgroup whose crime
// distribution deviates most from the user's expectations, and this
// example renders the three density curves of Fig. 1 as an ASCII plot.
package main

import (
	"fmt"
	"log"
	"strings"

	sisd "repro"
	"repro/internal/experiments"
	"repro/internal/gen"
)

func main() {
	log.SetFlags(0)

	r, err := experiments.Fig1Crime(gen.SeedCrime, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top pattern: %s\n", r.Intention)
	fmt.Printf("covers %.1f%% of districts; crime mean %.2f inside vs %.2f overall (SI %.4g)\n\n",
		100*r.Coverage, r.SubgroupMean, r.OverallMean, r.SI)

	fmt.Println("crime-rate density: '#' full data, '*' part covered by the subgroup")
	plotDensities(r)

	// The same data is available through the public API for further
	// analysis.
	ds := sisd.GenerateCrimeLike(gen.SeedCrime)
	fmt.Printf("\n(dataset: n=%d, %d descriptors, %d target)\n", ds.N(), ds.Dx(), ds.Dy())
}

func plotDensities(r *experiments.Fig1Result) {
	maxD := 0.0
	for _, d := range r.FullDensity {
		if d > maxD {
			maxD = d
		}
	}
	const height = 12
	rows := make([][]byte, height)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", len(r.GridX)))
	}
	put := func(col int, d float64, ch byte) {
		h := int(d / maxD * float64(height-1))
		if h >= height {
			h = height - 1
		}
		for y := 0; y <= h; y++ {
			row := height - 1 - y
			if rows[row][col] == ' ' || ch == '*' {
				rows[row][col] = ch
			}
		}
	}
	for i := range r.GridX {
		put(i, r.FullDensity[i], '#')
		put(i, r.CoverDensity[i], '*')
	}
	for _, row := range rows {
		fmt.Println(string(row))
	}
	fmt.Println(strings.Repeat("-", len(r.GridX)))
	fmt.Println("0.0" + strings.Repeat(" ", len(r.GridX)-7) + "1.0")
}
