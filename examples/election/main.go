// Election: the socio-economics case study of §III-C (Figs. 7–8). The
// targets are the 2009 vote shares of five parties per district; the
// descriptors are age and workforce statistics. Each iteration shows a
// location pattern, the per-party surprise ranking, and a 2-sparse
// spread pattern (a pair of parties whose covariation within the
// subgroup deviates most from the model's expectation).
package main

import (
	"fmt"
	"log"

	sisd "repro"
)

func main() {
	log.SetFlags(0)

	ds := sisd.GenerateSocioEconLike(412)
	m, err := sisd.NewMiner(ds, sisd.Config{
		Search: sisd.SearchParams{MaxDepth: 2},
		// Like the paper, enforce 2-sparsity on w for interpretability:
		// optimize over every pair of parties and keep the best.
		Spread: sisd.SpreadParams{PairSparse: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	for iter := 1; iter <= 3; iter++ {
		loc, _, err := m.MineLocation()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== iteration %d ===\n", iter)
		fmt.Printf("location: %s\n", loc.Format(ds))

		expl, err := m.ExplainLocation(loc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("party-level surprise (observed vs expected vote share):")
		for _, e := range expl {
			marker := " "
			if e.Observed < e.CI95Lo || e.Observed > e.CI95Hi {
				marker = "!"
			}
			fmt.Printf("  %s %-11s observed %5.1f  expected %5.1f  95%% CI [%5.1f, %5.1f]\n",
				marker, e.Target, e.Observed, e.Expected, e.CI95Lo, e.CI95Hi)
		}

		if err := m.CommitLocation(loc); err != nil {
			log.Fatal(err)
		}
		sp, err := m.MineSpread(loc)
		if err != nil {
			log.Fatal(err)
		}
		expVar, err := m.Model.ExpectedSpread(sp.Extension, sp.W, sp.Center)
		if err != nil {
			log.Fatal(err)
		}
		var pair []string
		for j, w := range sp.W {
			if w != 0 {
				pair = append(pair, fmt.Sprintf("%s:%.3f", ds.TargetNames[j], w))
			}
		}
		verdict := "smaller"
		if sp.Variance > expVar {
			verdict = "larger"
		}
		fmt.Printf("spread: %v — variance %.2f vs expected %.2f (%s than expected)\n\n",
			pair, sp.Variance, expVar, verdict)
		if err := m.CommitSpread(sp); err != nil {
			log.Fatal(err)
		}
	}
}
