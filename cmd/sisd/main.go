// Command sisd is the interactive mining CLI: it loads a dataset from
// CSV (header cells "name:role:kind", role d/t, kind num/ord/cat/bin)
// and runs iterative subjectively-interesting subgroup discovery,
// printing one location pattern (and optionally one spread pattern) per
// iteration.
//
// Usage:
//
//	sisd -data crime.csv -iters 3 -spread -gamma 0.1 -depth 4 -beam 40
//	sisd -builtin synthetic -iters 3 -spread -gamma 0.5
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	sisd "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisd: ")

	var (
		dataPath = flag.String("data", "", "dataset CSV path (see Dataset.WriteCSV format)")
		arffPath = flag.String("arff", "", "dataset ARFF path (Weka/Cortana format; requires -targets)")
		targets  = flag.String("targets", "", "comma-separated target attribute names for -arff")
		builtin  = flag.String("builtin", "", "use a built-in replica instead of -data: synthetic|crime|mammals|socio|water")
		seed     = flag.Int64("seed", 1, "seed for -builtin generators")
		iters    = flag.Int("iters", 3, "mining iterations")
		spread   = flag.Bool("spread", false, "also mine a spread pattern per iteration")
		pair     = flag.Bool("pair-sparse", false, "restrict spread directions to two target attributes")
		gamma    = flag.Float64("gamma", 0.1, "description length per condition (γ)")
		eta      = flag.Float64("eta", 1, "description length base cost (η)")
		beam     = flag.Int("beam", 40, "beam width")
		depth    = flag.Int("depth", 4, "maximum conditions per description")
		topk     = flag.Int("topk", 150, "search log size")
		minsup   = flag.Int("minsupport", 2, "minimum subgroup size")
		splits   = flag.Int("splits", 4, "percentile split points per numeric attribute")
		parallel = flag.Int("parallel", 0, "candidate-evaluation workers (0 = all cores)")
		timeout  = flag.Duration("timeout", 0, "search time budget per iteration (0 = none)")
		explain  = flag.Int("explain", 5, "print the k most surprising target attributes per pattern (0 = off)")
		optimal  = flag.Bool("optimal", false, "single-target datasets only: find the globally optimal first pattern by branch-and-bound instead of beam search")
		verbose  = flag.Bool("v", false, "print per-iteration search diagnostics (SI-bound pruning counters; counts vary with scheduling)")
	)
	flag.Parse()

	ds, err := loadDataset(*dataPath, *arffPath, *targets, *builtin, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %q: n=%d, %d description attributes, %d targets\n",
		ds.Name, ds.N(), ds.Dx(), ds.Dy())

	cfg := sisd.Config{
		SI: sisd.SIParams{Gamma: *gamma, Eta: *eta},
		Search: sisd.SearchParams{
			BeamWidth: *beam, MaxDepth: *depth, TopK: *topk,
			MinSupport: *minsup, NumSplits: *splits, Parallelism: *parallel,
		},
		Spread: sisd.SpreadParams{PairSparse: *pair},
	}
	m, err := sisd.NewMiner(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *optimal {
		if ds.Dy() != 1 {
			log.Fatalf("-optimal needs exactly one target, dataset has %d", ds.Dy())
		}
		col := ds.TargetColumn(0)
		var mean, m2 float64
		for i, v := range col {
			d := v - mean
			mean += d / float64(i+1)
			m2 += d * (v - mean)
		}
		variance := m2 / float64(len(col))
		start := time.Now()
		opt := sisd.MineOptimalLocation1D(ds, mean, variance,
			cfg.SI, *depth, *splits, *minsup)
		fmt.Printf("\n=== globally optimal pattern (branch & bound, %v, %d nodes, %d pruned) ===\n",
			time.Since(start).Round(time.Millisecond), opt.Explored, opt.Pruned)
		fmt.Printf("%s  (size=%d, SI=%.4g, IC=%.4g)\n",
			opt.Intention.Format(ds), opt.Extension.Count(), opt.SI, opt.IC)
		return
	}

	for it := 1; it <= *iters; it++ {
		if *timeout > 0 {
			m.Cfg.Search.Deadline = time.Now().Add(*timeout)
		}
		loc, logRes, err := m.MineLocation()
		if err != nil {
			if errors.Is(err, sisd.ErrNoPattern) && logRes != nil && logRes.TimedOut {
				log.Fatalf("iteration %d: -timeout %v expired before any candidate was scored; increase the budget", it, *timeout)
			}
			log.Fatalf("iteration %d: %v", it, err)
		}
		fmt.Printf("\n=== iteration %d (evaluated %d candidates", it, logRes.Evaluated)
		// Pruning counts depend on worker scheduling, so they stay out of
		// the default output, which is byte-identical at any -parallel.
		if *verbose && logRes.Pruned > 0 {
			fmt.Printf(", %d pruned by SI bounds", logRes.Pruned)
		}
		if logRes.TimedOut {
			fmt.Printf(", timed out")
		}
		fmt.Printf(") ===\n")
		fmt.Printf("location: %s\n", loc.Format(ds))
		if *explain > 0 {
			expl, err := m.ExplainLocation(loc)
			if err == nil {
				k := *explain
				if k > len(expl) {
					k = len(expl)
				}
				for _, e := range expl[:k] {
					fmt.Printf("  %-28s observed %8.3f  expected %8.3f  95%% CI [%.3f, %.3f]\n",
						e.Target, e.Observed, e.Expected, e.CI95Lo, e.CI95Hi)
				}
			}
		}
		if err := m.CommitLocation(loc); err != nil {
			log.Fatalf("commit location: %v", err)
		}
		if *spread {
			sp, err := m.MineSpread(loc)
			if err != nil {
				log.Fatalf("spread: %v", err)
			}
			fmt.Printf("spread:   %s\n", sp.Format(ds))
			if err := m.CommitSpread(sp); err != nil {
				log.Fatalf("commit spread: %v", err)
			}
		}
	}
}

func loadDataset(path, arffPath, targets, builtin string, seed int64) (*sisd.Dataset, error) {
	sources := 0
	for _, s := range []string{path, arffPath, builtin} {
		if s != "" {
			sources++
		}
	}
	if sources > 1 {
		return nil, fmt.Errorf("use exactly one of -data, -arff, -builtin")
	}
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return sisd.ReadCSV(f)
	case arffPath != "":
		if targets == "" {
			return nil, fmt.Errorf("-arff requires -targets name1,name2,...")
		}
		f, err := os.Open(arffPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return sisd.ReadARFF(f, strings.Split(targets, ","))
	case builtin != "":
		switch strings.ToLower(builtin) {
		case "synthetic":
			return sisd.GenerateSynthetic(seed), nil
		case "crime":
			return sisd.GenerateCrimeLike(seed), nil
		case "mammals":
			return sisd.GenerateMammalsLike(seed), nil
		case "socio":
			return sisd.GenerateSocioEconLike(seed), nil
		case "water":
			return sisd.GenerateWaterQualityLike(seed), nil
		default:
			return nil, fmt.Errorf("unknown builtin %q", builtin)
		}
	default:
		return nil, fmt.Errorf("need -data FILE, -arff FILE -targets ..., or -builtin NAME (try -builtin synthetic)")
	}
}
