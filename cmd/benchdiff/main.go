// Command benchdiff converts `go test -bench` output to a stable JSON
// form and gates benchmark regressions against a checked-in baseline —
// the compare step of the CI bench job.
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchdiff parse -out BENCH.json
//	benchdiff compare -baseline BENCH_baseline.json -current BENCH.json
//
// Comparison thresholds: allocs/op is machine-independent, so its
// threshold is tight (default +30%); ns/op varies with hardware and
// -benchtime, so it gets a looser threshold (default +100%) and is only
// compared for benchmarks whose baseline ns/op is at least -min-ns
// (default 1e6 — sub-millisecond timings at -benchtime 1x are noise).
// A tracked benchmark missing from the current run fails the gate.
// Exit status: 0 pass, 1 usage/IO error, 2 regression.
//
// Refresh the baseline after an intentional perf change:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchdiff parse -out BENCH_baseline.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchcmp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  benchdiff parse [-in bench.txt] [-out BENCH.json]          (default stdin/stdout)
  benchdiff compare -baseline BENCH_baseline.json -current BENCH.json
                    [-threshold 0.30] [-ns-threshold 1.0] [-min-ns 1e6]
                    [-markdown BENCH_DIFF.md]
`)
	os.Exit(1)
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	in := fs.String("in", "", "bench output file (default stdin)")
	out := fs.String("out", "", "JSON output file (default stdout)")
	_ = fs.Parse(args)

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	entries, err := benchcmp.Parse(r)
	if err != nil {
		fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := benchcmp.WriteJSON(w, entries); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: parsed %d benchmarks\n", len(entries))
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	baselinePath := fs.String("baseline", "", "baseline JSON (required)")
	currentPath := fs.String("current", "", "current JSON (required)")
	threshold := fs.Float64("threshold", 0.30, "allowed relative allocs/op growth")
	nsThreshold := fs.Float64("ns-threshold", 1.0, "allowed relative ns/op growth (looser: wall time is machine-dependent)")
	minNs := fs.Float64("min-ns", 1e6, "compare ns/op only when baseline ns/op is at least this")
	markdown := fs.String("markdown", "", "also write a before/after markdown table to this file (CI artifact)")
	_ = fs.Parse(args)
	if *baselinePath == "" || *currentPath == "" {
		usage()
	}

	baseline := readEntries(*baselinePath)
	current := readEntries(*currentPath)
	res := benchcmp.Compare(baseline, current, *threshold, *nsThreshold, *minNs)

	// The markdown report is written before the gate decision so a red
	// compare still leaves the artifact to inspect.
	if *markdown != "" {
		f, err := os.Create(*markdown)
		if err != nil {
			fatal(err)
		}
		if err := benchcmp.WriteMarkdown(f, baseline, current); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	for _, name := range res.Added {
		fmt.Printf("new (untracked): %s — refresh BENCH_baseline.json to track it\n", name)
	}
	for _, name := range res.Missing {
		fmt.Printf("MISSING: tracked benchmark %s not in current run\n", name)
	}
	for _, r := range res.Regressions {
		fmt.Printf("REGRESSION: %s\n", r)
	}
	if !res.OK() {
		fmt.Printf("benchdiff: FAIL (%d regressions, %d missing of %d tracked)\n",
			len(res.Regressions), len(res.Missing), len(baseline))
		os.Exit(2)
	}
	fmt.Printf("benchdiff: OK (%d tracked benchmarks within thresholds)\n", len(baseline))
}

func readEntries(path string) map[string]benchcmp.Entry {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	entries, err := benchcmp.ReadJSON(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return entries
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
