// Command datagen writes one of the dataset replicas to CSV, so the
// mining CLI (and third-party tools) can consume them from disk.
//
// Usage:
//
//	datagen -dataset crime -seed 1994 -o crime.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	sisd "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		name = flag.String("dataset", "", "synthetic|crime|mammals|socio|water")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()

	var ds *sisd.Dataset
	switch *name {
	case "synthetic":
		ds = sisd.GenerateSynthetic(*seed)
	case "crime":
		ds = sisd.GenerateCrimeLike(*seed)
	case "mammals":
		ds = sisd.GenerateMammalsLike(*seed)
	case "socio":
		ds = sisd.GenerateSocioEconLike(*seed)
	case "water":
		ds = sisd.GenerateWaterQualityLike(*seed)
	default:
		log.Fatalf("unknown -dataset %q (want synthetic|crime|mammals|socio|water)", *name)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s: n=%d, dx=%d, dy=%d\n",
			*out, ds.N(), ds.Dx(), ds.Dy())
	}
}
