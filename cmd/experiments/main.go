// Command experiments regenerates every table and figure of the
// paper's evaluation section (§III) on the dataset replicas and prints
// the results as text tables. EXPERIMENTS.md records a captured run
// next to the paper's reported values.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run fig1,tableII -tableII-iters 20
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run      = flag.String("run", "all", "comma-separated list: fig1,fig2,tableI,fig3,fig456,fig78,fig910,tableII (or all)")
		iters    = flag.Int("tableII-iters", 20, "iterations for the Table II runtime experiment")
		mammals  = flag.Bool("tableII-mammals", true, "include the dy=124 mammals column in Table II")
		fig3Reps = flag.Int("fig3-repeats", 3, "noise repetitions per distortion level in Fig. 3")
		parallel = flag.Int("parallel", 0, "candidate-evaluation workers per beam search (0 = all cores)")
		quick    = flag.Bool("quick", false, "smaller search settings everywhere (for smoke runs)")
	)
	flag.Parse()
	experiments.Parallelism = *parallel

	want := map[string]bool{}
	for _, n := range strings.Split(strings.ToLower(*run), ",") {
		want[strings.TrimSpace(n)] = true
	}
	all := want["all"]
	section := func(name string) bool { return all || want[strings.ToLower(name)] }
	banner := func(name string) func() {
		start := time.Now()
		fmt.Printf("\n================ %s ================\n", name)
		return func() { fmt.Printf("[%s took %v]\n", name, time.Since(start).Round(time.Millisecond)) }
	}

	if section("fig1") {
		done := banner("Fig. 1")
		r, err := experiments.Fig1Crime(gen.SeedCrime, *quick)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(r.Render())
		done()
	}
	if section("fig2") {
		done := banner("Fig. 2")
		r, err := experiments.Fig2Synthetic(gen.SeedSynthetic)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.RenderFig2(r))
		done()
	}
	if section("tableI") || section("table1") {
		done := banner("Table I")
		r, err := experiments.TableISynthetic(gen.SeedSynthetic)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.RenderTableI(r))
		done()
	}
	if section("fig3") {
		done := banner("Fig. 3")
		r, err := experiments.Fig3Noise(gen.SeedSynthetic, *fig3Reps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.RenderFig3(r))
		done()
	}
	if section("fig456") {
		done := banner("Figs. 4-6")
		r, err := experiments.Fig456Mammals(gen.SeedMammals, *quick)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.RenderFig456(r))
		done()
	}
	if section("fig78") {
		done := banner("Figs. 7-8")
		r, err := experiments.Fig78SocioEconomics(gen.SeedSocio)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.RenderFig78(r))
		done()
	}
	if section("fig910") {
		done := banner("Figs. 9-10")
		r, err := experiments.Fig910Water(gen.SeedWater)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(r.Render())
		done()
	}
	if section("tableII") || section("table2") {
		done := banner("Table II")
		it := *iters
		if *quick && it > 5 {
			it = 5
		}
		r, err := experiments.TableIIRuntime(it, *mammals && !*quick)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(r.Render())
		done()
	}
}
