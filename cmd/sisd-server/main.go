// Command sisd-server runs the interactive exploration API (a SIDE-style
// session server, §V of the paper): create a session over a dataset,
// then iteratively mine, explain and commit patterns over HTTP. Mining
// is job-oriented: each mine runs on a bounded worker pool, and clients
// either wait in-request (default) or pass {"async":true} and poll the
// job. Sessions are snapshotted to a store (commit, eviction, explicit
// /snapshot) and restored transparently — with -store-dir the belief
// state survives restarts and can be shared by multiple processes.
//
//	sisd-server -addr :8080 -store-dir /var/lib/sisd/sessions
//
//	curl -X POST localhost:8080/api/sessions -d '{"dataset":"crime"}'
//	curl -X POST localhost:8080/api/sessions/s0001/mine -d '{"spread":false}'
//	curl -X POST localhost:8080/api/sessions/s0001/mine -d '{"async":true,"timeoutMs":500}'
//	curl      'localhost:8080/api/jobs/j000001?waitMs=2000'
//	curl -X POST localhost:8080/api/sessions/s0001/commit
//	curl -X POST localhost:8080/api/sessions/s0001/snapshot
//	curl      localhost:8080/api/sessions/s0001/history
//	curl      localhost:8080/api/jobs
//	curl -X DELETE localhost:8080/api/jobs/j000002
//
// Mine responses carry a status field: "complete", "partial" (budget
// expired, best-so-far returned) or "timeout" (budget expired before
// anything was scored).
//
// Durability scales from none to replicated: no -store-dir keeps
// snapshots in memory, one -store-dir persists them to a single
// directory, and repeating -store-dir builds a quorum-replicated store
// over N directories (ideally on independent disks): writes need
// -store-quorum acks (default majority), reads repair lagging or
// corrupt replicas from the freshest quorum copy, and a background
// anti-entropy sweep (-store-sweep) converges replicas that were down.
// Losing a minority of replica disks leaves serving unaffected (readyz
// reports a store_replica_degraded warning with per-replica health);
// losing quorum degrades to serve-from-memory per DESIGN.md §11.
//
//	sisd-server -store-dir /mnt/diskA/sisd -store-dir /mnt/diskB/sisd \
//	            -store-dir /mnt/diskC/sisd -store-quorum 2
//
// Lifecycle: GET /api/v1/healthz and /api/v1/readyz serve probes, and
// SIGTERM/SIGINT triggers a graceful shutdown — the server drains
// (stops accepting sessions and mines, waits for in-flight jobs up to
// -drain-timeout, flushes every live session to the store) before the
// listener closes. A crash (SIGKILL, power loss) instead relies on the
// store's crash-safety: fsync'd atomic snapshot writes plus a startup
// recovery sweep that clears torn temp files and quarantines corrupt
// snapshots.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// dirList collects repeated -store-dir flags.
type dirList []string

func (d *dirList) String() string { return strings.Join(*d, ",") }

func (d *dirList) Set(v string) error {
	*d = append(*d, v)
	return nil
}

// debugServer exposes net/http/pprof on its own listener, opt-in via
// -debug-addr. Profiles never share the API port: the API mux stays
// closed (cmd/apicheck pins its route set) and an operator can firewall
// the debug port independently.
func debugServer(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("debug listener: %v", err)
	}
	log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
	go func() {
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("debug server: %v", err)
		}
	}()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisd-server: ")
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port; the actual address is logged)")
	var storeDirs dirList
	flag.Var(&storeDirs, "store-dir", "directory for session snapshots; repeat for a quorum-replicated store over N dirs (empty = in-memory store)")
	storeQuorum := flag.Int("store-quorum", 0, "write quorum W across repeated -store-dir replicas (0 = majority); reads need N-W+1 replies")
	storeSweep := flag.Duration("store-sweep", 30*time.Second, "anti-entropy sweep interval for a replicated store (0 = manual only)")
	workers := flag.Int("workers", 0, "concurrent mine jobs (0 = max(2, NumCPU/2))")
	queueCap := flag.Int("queue", 0, "pending mine queue capacity before 503 (0 = 256)")
	maxSessions := flag.Int("max-sessions", 0, "live in-memory session cap; LRU beyond it is evicted to the store (0 = 256)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle session eviction TTL (0 = 30m)")
	syncWait := flag.Duration("sync-wait", 0, "max in-request wait for a sync mine before 202 + job id (0 = 10m)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight mine jobs during graceful shutdown")
	shardID := flag.String("shard-id", "", "stable shard identity reported in healthz/readyz and session listings (cluster deployments)")
	debugAddr := flag.String("debug-addr", "", "optional separate listen address for /debug/pprof (empty = disabled)")
	flag.Parse()

	opts := server.Options{
		Workers:     *workers,
		QueueCap:    *queueCap,
		MaxSessions: *maxSessions,
		SessionTTL:  *sessionTTL,
		SyncWait:    *syncWait,
		ShardID:     *shardID,
	}
	if *debugAddr != "" {
		debugServer(*debugAddr)
	}
	switch len(storeDirs) {
	case 0:
		// in-memory store
	case 1:
		store, err := server.NewDirStore(storeDirs[0])
		if err != nil {
			log.Fatal(err)
		}
		if tmp, quarantined := store.RecoveryStats(); tmp > 0 || quarantined > 0 {
			log.Printf("store recovery: removed %d torn temp file(s), quarantined %d corrupt snapshot(s)", tmp, quarantined)
		}
		opts.Store = store
		log.Printf("persisting sessions to %s", storeDirs[0])
	default:
		store, err := server.NewReplicatedDirStore(storeDirs, *storeQuorum, *storeSweep)
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		opts.Store = store
		w, r, n := store.Quorum()
		log.Printf("replicating sessions across %d dirs (write quorum %d, read quorum %d): %s", n, w, r, storeDirs.String())
		// Prime the breakers with one operation so replicas that are
		// already dead show up in the startup log.
		_, _ = store.List()
		for _, h := range store.ReplicaHealth() {
			if h.LastError != "" {
				log.Printf("store replica %s unavailable: %s", h.ID, h.LastError)
			}
		}
	}
	api := server.NewWithOptions(opts)
	defer api.Close()

	// Bind before announcing: with -addr :0 the chaos harness (and any
	// script) needs the real port, so the log line carries ln.Addr().
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // restore default signal behavior: a second signal kills hard
		log.Printf("shutdown signal; draining (timeout %s)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		rep := api.Drain(dctx)
		log.Printf("drain: jobsDrained=%v sessions=%d durable=%d failed=%v",
			rep.JobsDrained, rep.Sessions, rep.Durable, rep.Failed)
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
	}()

	log.Printf("listening on %s", ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
