// Command sisd-server runs the interactive exploration API (a SIDE-style
// session server, §V of the paper): create a session over a dataset,
// then iteratively mine, explain and commit patterns over HTTP. Mining
// is job-oriented: each mine runs on a bounded worker pool, and clients
// either wait in-request (default) or pass {"async":true} and poll the
// job. Sessions are snapshotted to a store (commit, eviction, explicit
// /snapshot) and restored transparently — with -store-dir the belief
// state survives restarts and can be shared by multiple processes.
//
//	sisd-server -addr :8080 -store-dir /var/lib/sisd/sessions
//
//	curl -X POST localhost:8080/api/sessions -d '{"dataset":"crime"}'
//	curl -X POST localhost:8080/api/sessions/s0001/mine -d '{"spread":false}'
//	curl -X POST localhost:8080/api/sessions/s0001/mine -d '{"async":true,"timeoutMs":500}'
//	curl      'localhost:8080/api/jobs/j000001?waitMs=2000'
//	curl -X POST localhost:8080/api/sessions/s0001/commit
//	curl -X POST localhost:8080/api/sessions/s0001/snapshot
//	curl      localhost:8080/api/sessions/s0001/history
//	curl      localhost:8080/api/jobs
//	curl -X DELETE localhost:8080/api/jobs/j000002
//
// Mine responses carry a status field: "complete", "partial" (budget
// expired, best-so-far returned) or "timeout" (budget expired before
// anything was scored).
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisd-server: ")
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store-dir", "", "directory for session snapshots (empty = in-memory store)")
	workers := flag.Int("workers", 0, "concurrent mine jobs (0 = max(2, NumCPU/2))")
	queueCap := flag.Int("queue", 0, "pending mine queue capacity before 503 (0 = 256)")
	maxSessions := flag.Int("max-sessions", 0, "live in-memory session cap; LRU beyond it is evicted to the store (0 = 256)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle session eviction TTL (0 = 30m)")
	syncWait := flag.Duration("sync-wait", 0, "max in-request wait for a sync mine before 202 + job id (0 = 10m)")
	flag.Parse()

	opts := server.Options{
		Workers:     *workers,
		QueueCap:    *queueCap,
		MaxSessions: *maxSessions,
		SessionTTL:  *sessionTTL,
		SyncWait:    *syncWait,
	}
	if *storeDir != "" {
		store, err := server.NewDirStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Store = store
		log.Printf("persisting sessions to %s", *storeDir)
	}
	api := server.NewWithOptions(opts)
	defer api.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
