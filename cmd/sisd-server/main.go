// Command sisd-server runs the interactive exploration API (a SIDE-style
// session server, §V of the paper): create a session over a dataset,
// then iteratively mine, explain and commit patterns over HTTP. Mining
// is job-oriented: each mine runs on a bounded worker pool, and clients
// either wait in-request (default) or pass {"async":true} and poll the
// job. Sessions are snapshotted to a store (commit, eviction, explicit
// /snapshot) and restored transparently — with -store-dir the belief
// state survives restarts and can be shared by multiple processes.
//
//	sisd-server -addr :8080 -store-dir /var/lib/sisd/sessions
//
//	curl -X POST localhost:8080/api/sessions -d '{"dataset":"crime"}'
//	curl -X POST localhost:8080/api/sessions/s0001/mine -d '{"spread":false}'
//	curl -X POST localhost:8080/api/sessions/s0001/mine -d '{"async":true,"timeoutMs":500}'
//	curl      'localhost:8080/api/jobs/j000001?waitMs=2000'
//	curl -X POST localhost:8080/api/sessions/s0001/commit
//	curl -X POST localhost:8080/api/sessions/s0001/snapshot
//	curl      localhost:8080/api/sessions/s0001/history
//	curl      localhost:8080/api/jobs
//	curl -X DELETE localhost:8080/api/jobs/j000002
//
// Mine responses carry a status field: "complete", "partial" (budget
// expired, best-so-far returned) or "timeout" (budget expired before
// anything was scored).
//
// Lifecycle: GET /api/v1/healthz and /api/v1/readyz serve probes, and
// SIGTERM/SIGINT triggers a graceful shutdown — the server drains
// (stops accepting sessions and mines, waits for in-flight jobs up to
// -drain-timeout, flushes every live session to the store) before the
// listener closes. A crash (SIGKILL, power loss) instead relies on the
// store's crash-safety: fsync'd atomic snapshot writes plus a startup
// recovery sweep that clears torn temp files and quarantines corrupt
// snapshots.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

// debugServer exposes net/http/pprof on its own listener, opt-in via
// -debug-addr. Profiles never share the API port: the API mux stays
// closed (cmd/apicheck pins its route set) and an operator can firewall
// the debug port independently.
func debugServer(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("debug listener: %v", err)
	}
	log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
	go func() {
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("debug server: %v", err)
		}
	}()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisd-server: ")
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port; the actual address is logged)")
	storeDir := flag.String("store-dir", "", "directory for session snapshots (empty = in-memory store)")
	workers := flag.Int("workers", 0, "concurrent mine jobs (0 = max(2, NumCPU/2))")
	queueCap := flag.Int("queue", 0, "pending mine queue capacity before 503 (0 = 256)")
	maxSessions := flag.Int("max-sessions", 0, "live in-memory session cap; LRU beyond it is evicted to the store (0 = 256)")
	sessionTTL := flag.Duration("session-ttl", 0, "idle session eviction TTL (0 = 30m)")
	syncWait := flag.Duration("sync-wait", 0, "max in-request wait for a sync mine before 202 + job id (0 = 10m)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight mine jobs during graceful shutdown")
	shardID := flag.String("shard-id", "", "stable shard identity reported in healthz/readyz and session listings (cluster deployments)")
	debugAddr := flag.String("debug-addr", "", "optional separate listen address for /debug/pprof (empty = disabled)")
	flag.Parse()

	opts := server.Options{
		Workers:     *workers,
		QueueCap:    *queueCap,
		MaxSessions: *maxSessions,
		SessionTTL:  *sessionTTL,
		SyncWait:    *syncWait,
		ShardID:     *shardID,
	}
	if *debugAddr != "" {
		debugServer(*debugAddr)
	}
	if *storeDir != "" {
		store, err := server.NewDirStore(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		if tmp, quarantined := store.RecoveryStats(); tmp > 0 || quarantined > 0 {
			log.Printf("store recovery: removed %d torn temp file(s), quarantined %d corrupt snapshot(s)", tmp, quarantined)
		}
		opts.Store = store
		log.Printf("persisting sessions to %s", *storeDir)
	}
	api := server.NewWithOptions(opts)
	defer api.Close()

	// Bind before announcing: with -addr :0 the chaos harness (and any
	// script) needs the real port, so the log line carries ln.Addr().
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // restore default signal behavior: a second signal kills hard
		log.Printf("shutdown signal; draining (timeout %s)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		rep := api.Drain(dctx)
		log.Printf("drain: jobsDrained=%v sessions=%d durable=%d failed=%v",
			rep.JobsDrained, rep.Sessions, rep.Durable, rep.Failed)
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
	}()

	log.Printf("listening on %s", ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
