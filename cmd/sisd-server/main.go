// Command sisd-server runs the interactive exploration API (a SIDE-style
// session server, §V of the paper): create a session over a dataset,
// then iteratively mine, explain and commit patterns over HTTP.
//
//	sisd-server -addr :8080
//
//	curl -X POST localhost:8080/api/sessions -d '{"dataset":"crime"}'
//	curl -X POST localhost:8080/api/sessions/s0001/mine -d '{"spread":false}'
//	curl -X POST localhost:8080/api/sessions/s0001/commit
//	curl      localhost:8080/api/sessions/s0001/history
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisd-server: ")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New().Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
