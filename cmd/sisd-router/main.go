// Command sisd-router fronts a cluster of sisd-server shards: it
// serves the same /api/v1 surface as a single server, consistent-hashes
// each session id onto a shard, reverse-proxies the call over pooled
// keep-alive connections, and health-checks the shards through their
// readyz probes. Sessions migrate between shards by snapshot handoff
// over the shared -store-dir every shard must be started with (see
// DESIGN.md §12).
//
// Shards are static membership, one -shard id=url flag each:
//
//	sisd-server -addr :9001 -shard-id s1 -store-dir /var/lib/sisd &
//	sisd-server -addr :9002 -shard-id s2 -store-dir /var/lib/sisd &
//	sisd-router -addr :8080 \
//	    -shard s1=http://127.0.0.1:9001 \
//	    -shard s2=http://127.0.0.1:9002
//
// The router is stateless: routing is a pure function of (membership,
// shard health), so replicas and restarts agree on every assignment
// without coordination.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

// shardFlags collects repeated -shard id=url flags.
type shardFlags []cluster.Shard

func (f *shardFlags) String() string {
	parts := make([]string, len(*f))
	for i, sh := range *f {
		parts[i] = sh.ID + "=" + sh.URL
	}
	return strings.Join(parts, ",")
}

func (f *shardFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return fmt.Errorf("want id=url, got %q", v)
	}
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	*f = append(*f, cluster.Shard{ID: id, URL: url})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisd-router: ")
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port; the actual address is logged)")
	var shards shardFlags
	flag.Var(&shards, "shard", "shard as id=url (repeatable); url without a scheme defaults to http://")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "health probe sweep interval")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-shard probe timeout")
	debugAddr := flag.String("debug-addr", "", "optional separate listen address for /debug/pprof (empty = disabled)")
	flag.Parse()

	rt, err := cluster.NewRouter(cluster.Options{
		Shards:        shards,
		VNodes:        *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.Start()
	defer rt.Close()

	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("debug listener: %v", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", dln.Addr())
		go func() {
			dsrv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			if err := dsrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	// Bind before announcing, same contract as sisd-server: scripts and
	// the load harness parse the logged address when -addr is :0.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
		log.Printf("shutdown signal; closing listener")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	log.Printf("routing %d shard(s), listening on %s", len(shards), ln.Addr())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
