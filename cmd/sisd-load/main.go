// Command sisd-load is the serving-layer load harness: it drives N
// concurrent simulated users through full interactive mining loops
// (create session → [mine → commit]×k → delete) and reports latency
// percentiles (p50/p95/p99) per operation and completed mine jobs per
// second as JSON — the scalability artifact complementing the paper's
// Table II runtime results.
//
// Against a running server:
//
//	sisd-load -addr http://localhost:8080 -users 32 -iters 3
//
// Or fully in-process (spins up the server itself; no network setup):
//
//	sisd-load -users 32 -iters 3 -dataset synthetic -depth 2
//	sisd-load -users 16 -async            # exercise the job-polling API
//	sisd-load -users 8 -dataset crime -timeout-ms 200   # budgeted mines
//
// With -chaos the harness instead runs the crash-safety scenario: it
// starts a real sisd-server subprocess over -store-dir, SIGKILLs it
// mid-commit-stream, restarts it over the same directory, and asserts
// every surviving session restores and mines byte-identically to a
// no-crash control run (plus corruption probes for the quarantine
// paths). Exit status is non-zero unless the report says ok.
//
//	sisd-load -chaos -server-bin ./sisd-server -store-dir /tmp/chaos
//
// Adding -replicas N (N >= 3) turns the chaos run into the replica-kill
// leg: the server persists through a quorum-replicated store over N
// replica directories, one replica's disk dies mid-commit-stream and
// stays dead across the SIGKILL/restart (restores must be
// byte-identical from the survivors), a second death must degrade the
// server to serve-from-memory, and after healing both, anti-entropy
// must converge every replica directory byte-identically.
//
//	sisd-load -chaos -replicas 3 -server-bin ./sisd-server -store-dir /tmp/chaos
//
// With -cluster the harness measures horizontal scale-out (DESIGN.md
// §12): the same workload against one sisd-server subprocess, then
// against a consistent-hash router fronting -shards shard subprocesses
// over a shared store, reporting the jobs/sec ratio, mine p95s, the
// router's p50 overhead versus direct shard access, and a chaos leg
// that SIGKILLs one shard mid-commit-stream and requires the affected
// sessions to resume byte-identically on the survivors.
//
//	sisd-load -cluster -server-bin ./sisd-server -store-dir /tmp/clu \
//	    -shards 3 -users 32 -iters 2 > LOAD_CLUSTER.json
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http/httptest"
	"os"
	"runtime"

	"repro/internal/loadgen"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisd-load: ")
	addr := flag.String("addr", "", "target server base URL (empty = run an in-process server)")
	target := flag.String("target", "", "alias for -addr: base URL of an already-running server or router")
	users := flag.Int("users", 32, "concurrent simulated users")
	iters := flag.Int("iters", 3, "mine/commit loops per user")
	dataset := flag.String("dataset", "synthetic", "builtin dataset per session (synthetic|crime|mammals|socio|water)")
	depth := flag.Int("depth", 2, "search depth per mine (0 = paper default 4)")
	beam := flag.Int("beam", 0, "beam width (0 = paper default 40)")
	spread := flag.Bool("spread", false, "also mine a pair-sparse spread preview each iteration (sessions are created pairSparse)")
	pairSparse := flag.Bool("pair-sparse", true, "with -spread: constrain preview directions to attribute pairs (§III-C); false mines full-dimensional directions")
	async := flag.Bool("async", false, "use the async job API (submit + poll) instead of sync mines")
	timeoutMS := flag.Int("timeout-ms", 0, "per-mine budget in ms (0 = none)")
	seedBase := flag.Int64("seed-base", 1000, "user u mines dataset seeded seed-base+u")
	workers := flag.Int("workers", 0, "in-process server mine workers (0 = server default)")
	chaos := flag.Bool("chaos", false, "run the crash/restore chaos scenario instead of a load run")
	clusterRun := flag.Bool("cluster", false, "run the sharded scale-out scenario (single shard vs router + -shards shards) instead of a load run")
	shardCount := flag.Int("shards", 3, "with -cluster: shard subprocess count")
	skipShardKill := flag.Bool("skip-shard-kill", false, "with -cluster: skip the shard-SIGKILL chaos leg")
	serverBin := flag.String("server-bin", "", "with -chaos/-cluster: path to the sisd-server binary to spawn")
	storeDir := flag.String("store-dir", "", "with -chaos/-cluster: snapshot directory for the spawned processes (created if missing)")
	killAfterMS := flag.Int("kill-after-ms", 0, "with -chaos: SIGKILL delay after the first commit (0 = 50ms)")
	replicas := flag.Int("replicas", 0, "with -chaos: run the replica-kill leg against a quorum-replicated store with this many replica dirs (0/1 = single DirStore; needs >= 3)")
	flag.Parse()
	if *target != "" {
		*addr = *target
	}

	if *clusterRun {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		cfg := loadgen.ClusterConfig{
			ServerBin:  *serverBin,
			StoreDir:   *storeDir,
			ShardCount: *shardCount,
			Dataset:    *dataset,
			SeedBase:   *seedBase,
			Depth:      *depth,
			BeamWidth:  *beam,
			Workers:    *workers,
			SkipChaos:  *skipShardKill,
		}
		if set["users"] {
			cfg.Users = *users
		}
		if set["iters"] {
			cfg.Iterations = *iters
		}
		runCluster(cfg)
		return
	}

	if *chaos {
		// The load-run flag defaults (32 users × 3 iterations) are sized
		// for throughput measurement; chaos wants a small deterministic
		// fleet, so only explicitly-set values carry over.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		cfg := loadgen.ChaosConfig{
			ServerBin:   *serverBin,
			StoreDir:    *storeDir,
			Dataset:     *dataset,
			SeedBase:    *seedBase,
			Depth:       *depth,
			BeamWidth:   *beam,
			KillAfterMS: *killAfterMS,
			Replicas:    *replicas,
		}
		if set["users"] {
			cfg.Users = *users
		}
		if set["iters"] {
			cfg.Iterations = *iters
		}
		runChaos(cfg)
		return
	}

	base := *addr
	if base == "" {
		srv := server.NewWithOptions(server.Options{Workers: *workers})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			srv.Close()
		}()
		base = ts.URL
		log.Printf("in-process server on %s (%d CPUs)", base, runtime.NumCPU())
	}

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:    base,
		Users:      *users,
		Iterations: *iters,
		Dataset:    *dataset,
		Depth:      *depth,
		BeamWidth:  *beam,
		Spread:     *spread,
		PairSparse: *spread && *pairSparse,
		Async:      *async,
		TimeoutMS:  *timeoutMS,
		SeedBase:   *seedBase,
	})
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if rep.FailedJobs > 0 {
		os.Exit(1)
	}
}

// runCluster executes the scale-out scenario and emits the report (the
// LOAD_CLUSTER.json artifact when redirected) to stdout. Exit status
// reflects only the correctness checks — the ≥2x throughput bar is
// hardware-dependent and judged by CI on a multi-core runner.
func runCluster(cfg loadgen.ClusterConfig) {
	if cfg.ServerBin == "" || cfg.StoreDir == "" {
		log.Fatal("-cluster requires -server-bin and -store-dir")
	}
	if err := os.MkdirAll(cfg.StoreDir, 0o755); err != nil {
		log.Fatal(err)
	}
	log.Printf("cluster run: %d shards, %d users (%d CPUs)", cfg.ShardCount, cfg.Users, runtime.NumCPU())
	rep, err := loadgen.RunCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if !rep.OK {
		log.Fatalf("cluster run failed: %v", rep.Errors)
	}
	log.Printf("cluster ok: %.2fx jobs/sec (%.1f vs %.1f), mine p95 %.1fms vs %.1fms, router overhead p50 %.3fms",
		rep.Speedup, rep.Cluster.JobsPerSec, rep.Single.JobsPerSec,
		rep.ClusterMine95, rep.SingleMineP95, rep.OverheadP50MS)
}

// runChaos executes the crash/restore scenario and emits the report
// (the CHAOS.json artifact when redirected) to stdout.
func runChaos(cfg loadgen.ChaosConfig) {
	if cfg.ServerBin == "" || cfg.StoreDir == "" {
		log.Fatal("-chaos requires -server-bin and -store-dir")
	}
	if err := os.MkdirAll(cfg.StoreDir, 0o755); err != nil {
		log.Fatal(err)
	}
	rep, err := loadgen.RunChaos(cfg)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if !rep.OK {
		log.Fatalf("chaos run failed: %d mismatches, %d errors", len(rep.Mismatches), len(rep.Errors))
	}
	log.Printf("chaos ok: %d/%d sessions byte-identical after crash/restore", rep.Identical, rep.Compared)
}
