// Command sisd-load is the serving-layer load harness: it drives N
// concurrent simulated users through full interactive mining loops
// (create session → [mine → commit]×k → delete) and reports latency
// percentiles (p50/p95/p99) per operation and completed mine jobs per
// second as JSON — the scalability artifact complementing the paper's
// Table II runtime results.
//
// Against a running server:
//
//	sisd-load -addr http://localhost:8080 -users 32 -iters 3
//
// Or fully in-process (spins up the server itself; no network setup):
//
//	sisd-load -users 32 -iters 3 -dataset synthetic -depth 2
//	sisd-load -users 16 -async            # exercise the job-polling API
//	sisd-load -users 8 -dataset crime -timeout-ms 200   # budgeted mines
//
// With -chaos the harness instead runs the crash-safety scenario: it
// starts a real sisd-server subprocess over -store-dir, SIGKILLs it
// mid-commit-stream, restarts it over the same directory, and asserts
// every surviving session restores and mines byte-identically to a
// no-crash control run (plus corruption probes for the quarantine
// paths). Exit status is non-zero unless the report says ok.
//
//	sisd-load -chaos -server-bin ./sisd-server -store-dir /tmp/chaos
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http/httptest"
	"os"
	"runtime"

	"repro/internal/loadgen"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisd-load: ")
	addr := flag.String("addr", "", "target server base URL (empty = run an in-process server)")
	users := flag.Int("users", 32, "concurrent simulated users")
	iters := flag.Int("iters", 3, "mine/commit loops per user")
	dataset := flag.String("dataset", "synthetic", "builtin dataset per session (synthetic|crime|mammals|socio|water)")
	depth := flag.Int("depth", 2, "search depth per mine (0 = paper default 4)")
	beam := flag.Int("beam", 0, "beam width (0 = paper default 40)")
	spread := flag.Bool("spread", false, "also mine a pair-sparse spread preview each iteration (sessions are created pairSparse)")
	pairSparse := flag.Bool("pair-sparse", true, "with -spread: constrain preview directions to attribute pairs (§III-C); false mines full-dimensional directions")
	async := flag.Bool("async", false, "use the async job API (submit + poll) instead of sync mines")
	timeoutMS := flag.Int("timeout-ms", 0, "per-mine budget in ms (0 = none)")
	seedBase := flag.Int64("seed-base", 1000, "user u mines dataset seeded seed-base+u")
	workers := flag.Int("workers", 0, "in-process server mine workers (0 = server default)")
	chaos := flag.Bool("chaos", false, "run the crash/restore chaos scenario instead of a load run")
	serverBin := flag.String("server-bin", "", "with -chaos: path to the sisd-server binary to crash")
	storeDir := flag.String("store-dir", "", "with -chaos: snapshot directory shared across the crash (created if missing)")
	killAfterMS := flag.Int("kill-after-ms", 0, "with -chaos: SIGKILL delay after the first commit (0 = 50ms)")
	flag.Parse()

	if *chaos {
		// The load-run flag defaults (32 users × 3 iterations) are sized
		// for throughput measurement; chaos wants a small deterministic
		// fleet, so only explicitly-set values carry over.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		cfg := loadgen.ChaosConfig{
			ServerBin:   *serverBin,
			StoreDir:    *storeDir,
			Dataset:     *dataset,
			SeedBase:    *seedBase,
			Depth:       *depth,
			BeamWidth:   *beam,
			KillAfterMS: *killAfterMS,
		}
		if set["users"] {
			cfg.Users = *users
		}
		if set["iters"] {
			cfg.Iterations = *iters
		}
		runChaos(cfg)
		return
	}

	base := *addr
	if base == "" {
		srv := server.NewWithOptions(server.Options{Workers: *workers})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			srv.Close()
		}()
		base = ts.URL
		log.Printf("in-process server on %s (%d CPUs)", base, runtime.NumCPU())
	}

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:    base,
		Users:      *users,
		Iterations: *iters,
		Dataset:    *dataset,
		Depth:      *depth,
		BeamWidth:  *beam,
		Spread:     *spread,
		PairSparse: *spread && *pairSparse,
		Async:      *async,
		TimeoutMS:  *timeoutMS,
		SeedBase:   *seedBase,
	})
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if rep.FailedJobs > 0 {
		os.Exit(1)
	}
}

// runChaos executes the crash/restore scenario and emits the report
// (the CHAOS.json artifact when redirected) to stdout.
func runChaos(cfg loadgen.ChaosConfig) {
	if cfg.ServerBin == "" || cfg.StoreDir == "" {
		log.Fatal("-chaos requires -server-bin and -store-dir")
	}
	if err := os.MkdirAll(cfg.StoreDir, 0o755); err != nil {
		log.Fatal(err)
	}
	rep, err := loadgen.RunChaos(cfg)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if !rep.OK {
		log.Fatalf("chaos run failed: %d mismatches, %d errors", len(rep.Mismatches), len(rep.Errors))
	}
	log.Printf("chaos ok: %d/%d sessions byte-identical after crash/restore", rep.Identical, rep.Compared)
}
