// Command sisd-load is the serving-layer load harness: it drives N
// concurrent simulated users through full interactive mining loops
// (create session → [mine → commit]×k → delete) and reports latency
// percentiles (p50/p95/p99) per operation and completed mine jobs per
// second as JSON — the scalability artifact complementing the paper's
// Table II runtime results.
//
// Against a running server:
//
//	sisd-load -addr http://localhost:8080 -users 32 -iters 3
//
// Or fully in-process (spins up the server itself; no network setup):
//
//	sisd-load -users 32 -iters 3 -dataset synthetic -depth 2
//	sisd-load -users 16 -async            # exercise the job-polling API
//	sisd-load -users 8 -dataset crime -timeout-ms 200   # budgeted mines
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http/httptest"
	"os"
	"runtime"

	"repro/internal/loadgen"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sisd-load: ")
	addr := flag.String("addr", "", "target server base URL (empty = run an in-process server)")
	users := flag.Int("users", 32, "concurrent simulated users")
	iters := flag.Int("iters", 3, "mine/commit loops per user")
	dataset := flag.String("dataset", "synthetic", "builtin dataset per session (synthetic|crime|mammals|socio|water)")
	depth := flag.Int("depth", 2, "search depth per mine (0 = paper default 4)")
	beam := flag.Int("beam", 0, "beam width (0 = paper default 40)")
	spread := flag.Bool("spread", false, "also mine a pair-sparse spread preview each iteration (sessions are created pairSparse)")
	pairSparse := flag.Bool("pair-sparse", true, "with -spread: constrain preview directions to attribute pairs (§III-C); false mines full-dimensional directions")
	async := flag.Bool("async", false, "use the async job API (submit + poll) instead of sync mines")
	timeoutMS := flag.Int("timeout-ms", 0, "per-mine budget in ms (0 = none)")
	seedBase := flag.Int64("seed-base", 1000, "user u mines dataset seeded seed-base+u")
	workers := flag.Int("workers", 0, "in-process server mine workers (0 = server default)")
	flag.Parse()

	base := *addr
	if base == "" {
		srv := server.NewWithOptions(server.Options{Workers: *workers})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			srv.Close()
		}()
		base = ts.URL
		log.Printf("in-process server on %s (%d CPUs)", base, runtime.NumCPU())
	}

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:    base,
		Users:      *users,
		Iterations: *iters,
		Dataset:    *dataset,
		Depth:      *depth,
		BeamWidth:  *beam,
		Spread:     *spread,
		PairSparse: *spread && *pairSparse,
		Async:      *async,
		TimeoutMS:  *timeoutMS,
		SeedBase:   *seedBase,
	})
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if rep.FailedJobs > 0 {
		os.Exit(1)
	}
}
