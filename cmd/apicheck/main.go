// Command apicheck lints the HTTP API surface in internal/server so
// the versioned-API contract cannot rot silently:
//
//   - every error response must go through the designated writeError
//     writer (which emits the /api/v1 envelope and the legacy flat
//     body): calls to http.Error and hand-rolled {"error": ...} map
//     literals outside writeError fail the check;
//   - every route must be registered inside the routes() function with
//     a prefix-relative pattern, and routes() may only be mounted at
//     the approved prefixes (/api/v1 and the deprecated /api alias) —
//     an unversioned or stray registration fails the check.
//
// Run from the repository root (CI does): go run ./cmd/apicheck
// A non-default package directory can be passed as the only argument.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// approvedPrefixes are the only mounts routes() may be called with.
var approvedPrefixes = map[string]bool{
	`"/api/v1"`: true,
	`"/api"`:    true, // deprecated alias
}

func main() {
	dir := "internal/server"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: parsing %s: %v\n", dir, err)
		os.Exit(2)
	}
	var fails []string
	fail := func(pos token.Pos, format string, args ...any) {
		fails = append(fails, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFunc(fd, fail)
			}
		}
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "apicheck: %d violation(s)\n", len(fails))
		os.Exit(1)
	}
	fmt.Println("apicheck: ok")
}

func checkFunc(fd *ast.FuncDecl, fail func(token.Pos, string, ...any)) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "http" && sel.Sel.Name == "Error" {
				fail(n.Pos(), "http.Error bypasses the error envelope; use writeError")
			}
			switch sel.Sel.Name {
			case "HandleFunc", "Handle":
				// Only mux registrations inside routes() count (ignore
				// e.g. http.HandleFunc-free code; the receiver doesn't
				// matter — any registration belongs in routes()).
				if name != "routes" {
					fail(n.Pos(), "route registered outside routes(); all registrations go through routes() so the /api/v1 and /api mounts cannot drift")
				} else if len(n.Args) > 0 && !usesIdent(n.Args[0], "prefix") {
					fail(n.Pos(), "route pattern does not use the prefix parameter; hardcoded paths make the mount unversioned")
				}
			case "routes":
				if len(n.Args) == 2 {
					lit, ok := n.Args[1].(*ast.BasicLit)
					if !ok || !approvedPrefixes[lit.Value] {
						fail(n.Pos(), "routes() mounted at unapproved prefix %s (allowed: /api/v1, /api)", exprString(n.Args[1]))
					}
				}
			}
		case *ast.CompositeLit:
			// A hand-rolled {"error": ...} body outside the designated
			// writer is a second error shape waiting to diverge.
			if name == "writeError" {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Value == `"error"` {
					fail(kv.Pos(), "error body constructed outside writeError; use writeError so /api/v1 gets the envelope")
				}
			}
		}
		return true
	})
}

// usesIdent reports whether expr mentions an identifier named name.
func usesIdent(expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func exprString(e ast.Expr) string {
	if lit, ok := e.(*ast.BasicLit); ok {
		return lit.Value
	}
	return fmt.Sprintf("%T", e)
}
