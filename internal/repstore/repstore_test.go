package repstore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faultstore"
)

// tsnap is the test snapshot: a versioned payload with its own
// integrity framing, so the tests exercise the corrupt-copy paths
// without importing the serving layer.
type tsnap struct {
	ID   string
	Ver  int
	Body string
	Sum  uint32
}

var (
	errNF      = errors.New("tstore: not found")
	errCorrupt = errors.New("tstore: corrupt")
)

func tsum(body string) uint32 { return crc32.ChecksumIEEE([]byte(body)) }

// cleanSnap is the canonical clean version v of a snapshot: the
// property test's "some clean-run version" is exactly this set.
func cleanSnap(id string, ver int) *tsnap {
	body := fmt.Sprintf("%s-payload-%04d", id, ver)
	return &tsnap{ID: id, Ver: ver, Body: body, Sum: tsum(body)}
}

// memChild is a minimal in-memory Inner[tsnap].
type memChild struct {
	mu sync.Mutex
	m  map[string]tsnap
}

func newMemChild() *memChild { return &memChild{m: map[string]tsnap{}} }

func (c *memChild) Put(s *tsnap) error {
	c.mu.Lock()
	c.m[s.ID] = *s
	c.mu.Unlock()
	return nil
}

func (c *memChild) Get(id string) (*tsnap, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[id]
	if !ok {
		return nil, errNF
	}
	cp := s
	return &cp, nil
}

func (c *memChild) Delete(id string) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.m[id]
	delete(c.m, id)
	return ok, nil
}

func (c *memChild) List() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for id := range c.m {
		out = append(out, id)
	}
	return out, nil
}

// peek returns the raw stored copy (no quorum, no repair).
func (c *memChild) peek(id string) (tsnap, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[id]
	return s, ok
}

func (c *memChild) poke(s tsnap) {
	c.mu.Lock()
	c.m[s.ID] = s
	c.mu.Unlock()
}

func testConfig(w int) Config[tsnap] {
	return Config[tsnap]{
		WriteQuorum: w,
		ID:          func(s *tsnap) string { return s.ID },
		Progress:    func(s *tsnap) (int64, int64) { return int64(s.Ver), int64(s.Ver) },
		Verify: func(s *tsnap) error {
			if tsum(s.Body) != s.Sum {
				return fmt.Errorf("%w: body/sum mismatch", errCorrupt)
			}
			return nil
		},
		NotFound:         errNF,
		Corrupt:          errCorrupt,
		BreakerThreshold: 3,
		BreakerBase:      time.Millisecond,
		BreakerCap:       4 * time.Millisecond,
	}
}

func newRep(t *testing.T, w int, children ...Inner[tsnap]) *Replicated[tsnap] {
	t.Helper()
	members := make([]Member[tsnap], len(children))
	for i, c := range children {
		members[i] = Member[tsnap]{ID: fmt.Sprintf("r%d", i), Store: c}
	}
	rep, err := New(testConfig(w), members...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rep.Close)
	return rep
}

func TestQuorumConfig(t *testing.T) {
	for _, tc := range []struct{ n, w, wantW, wantR int }{
		{1, 0, 1, 1},
		{3, 0, 2, 2},
		{3, 3, 3, 1},
		{5, 0, 3, 3},
		{4, 0, 3, 2},
	} {
		children := make([]Inner[tsnap], tc.n)
		for i := range children {
			children[i] = newMemChild()
		}
		rep := newRep(t, tc.w, children...)
		w, r, n := rep.Quorum()
		if w != tc.wantW || r != tc.wantR || n != tc.n {
			t.Errorf("n=%d w=%d: got (w=%d r=%d n=%d), want (w=%d r=%d)", tc.n, tc.w, w, r, n, tc.wantW, tc.wantR)
		}
	}
	if _, err := New(testConfig(4), Member[tsnap]{ID: "a", Store: newMemChild()}); err == nil {
		t.Fatal("want error for W > N")
	}
	if _, err := New(testConfig(1)); err == nil {
		t.Fatal("want error for zero replicas")
	}
}

func TestPutGetDeleteBasic(t *testing.T) {
	c0, c1, c2 := newMemChild(), newMemChild(), newMemChild()
	rep := newRep(t, 2, c0, c1, c2)

	if _, err := rep.Get("s1"); !errors.Is(err, errNF) {
		t.Fatalf("Get absent: %v, want NotFound", err)
	}
	v1 := cleanSnap("s1", 1)
	if err := rep.Put(v1); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for i, c := range []*memChild{c0, c1, c2} {
		if got, ok := c.peek("s1"); !ok || got.Ver != 1 {
			t.Fatalf("replica %d: got %+v ok=%v, want v1", i, got, ok)
		}
	}
	got, err := rep.Get("s1")
	if err != nil || got.Ver != 1 || got.Body != v1.Body {
		t.Fatalf("Get: %+v, %v", got, err)
	}
	ids, err := rep.List()
	if err != nil || len(ids) != 1 || ids[0] != "s1" {
		t.Fatalf("List: %v, %v", ids, err)
	}
	existed, err := rep.Delete("s1")
	if err != nil || !existed {
		t.Fatalf("Delete: %v, %v", existed, err)
	}
	if _, err := rep.Get("s1"); !errors.Is(err, errNF) {
		t.Fatalf("Get after delete: %v, want NotFound", err)
	}
}

func TestPutSucceedsWithMinorityBroken(t *testing.T) {
	c0, c1 := newMemChild(), newMemChild()
	fs2 := faultstore.New[tsnap](newMemChild(), faultstore.Plan{})
	rep := newRep(t, 2, c0, c1, fs2)

	fs2.Break(nil)
	if err := rep.Put(cleanSnap("s1", 1)); err != nil {
		t.Fatalf("Put with 1/3 broken: %v", err)
	}
	if got, _ := rep.Get("s1"); got == nil || got.Ver != 1 {
		t.Fatalf("Get: %+v", got)
	}
	if st := fs2.Stats(); st.FailedPuts == 0 {
		t.Fatal("fault injection never fired") // non-vacuity (faultstore.Stats)
	}
}

func TestPutFailsWithoutQuorum(t *testing.T) {
	c0 := newMemChild()
	fs1 := faultstore.New[tsnap](newMemChild(), faultstore.Plan{})
	fs2 := faultstore.New[tsnap](newMemChild(), faultstore.Plan{})
	rep := newRep(t, 2, c0, fs1, fs2)

	fs1.Break(nil)
	fs2.Break(nil)
	if err := rep.Put(cleanSnap("s1", 1)); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Put with 2/3 broken: %v, want ErrNoQuorum", err)
	}
	if st := rep.Stats(); st.PutQuorumFailures != 1 {
		t.Fatalf("PutQuorumFailures = %d, want 1", st.PutQuorumFailures)
	}
}

// TestBreakerLifecycle walks one replica's breaker through
// closed → open → half-open probe → re-open (doubled backoff) →
// half-open probe → closed, with an injected clock.
func TestBreakerLifecycle(t *testing.T) {
	fs := faultstore.New[tsnap](newMemChild(), faultstore.Plan{})
	rep := newRep(t, 1, fs)
	now := time.Unix(1000, 0)
	rep.now = func() time.Time { return now }

	fs.Break(nil)
	snap := cleanSnap("s1", 1)
	for i := 0; i < 3; i++ {
		if err := rep.Put(snap); !errors.Is(err, ErrNoQuorum) {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	h := rep.ReplicaHealth()[0]
	if h.State != StateOpen || h.ConsecutiveFailures != 3 || h.LastError == "" {
		t.Fatalf("after 3 failures: %+v, want open", h)
	}
	// While open, operations are skipped entirely: the broken child
	// sees no new calls.
	before := fs.Stats().Puts
	if err := rep.Put(snap); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Put while open: %v", err)
	}
	if after := fs.Stats().Puts; after != before {
		t.Fatalf("open breaker leaked an op: %d -> %d", before, after)
	}

	// Backoff expiry: exactly one half-open probe goes through. It
	// fails, so the breaker re-opens with doubled backoff.
	now = now.Add(time.Second)
	before = fs.Stats().Puts
	_ = rep.Put(snap)
	if after := fs.Stats().Puts; after != before+1 {
		t.Fatalf("half-open probe: child saw %d ops, want 1", after-before)
	}
	if h := rep.ReplicaHealth()[0]; h.State != StateOpen {
		t.Fatalf("after failed probe: %+v, want open again", h)
	}

	// Heal; next probe (after backoff) closes the breaker.
	fs.Heal()
	now = now.Add(time.Second)
	if err := rep.Put(snap); err != nil {
		t.Fatalf("Put after heal: %v", err)
	}
	if h := rep.ReplicaHealth()[0]; h.State != StateHealthy || h.ConsecutiveFailures != 0 || h.LastError != "" {
		t.Fatalf("after successful probe: %+v, want healthy", h)
	}
}

// TestHalfOpenSingleProbe pins the single-probe discipline: with the
// backoff expired, concurrent operations admit exactly one probe.
func TestHalfOpenSingleProbe(t *testing.T) {
	fs := faultstore.New[tsnap](newMemChild(), faultstore.Plan{Latency: 5 * time.Millisecond})
	rep := newRep(t, 1, fs)
	now := time.Unix(1000, 0)
	var nowMu sync.Mutex
	rep.now = func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }

	fs.Break(nil)
	for i := 0; i < 3; i++ {
		_ = rep.Put(cleanSnap("s1", 1))
	}
	nowMu.Lock()
	now = now.Add(time.Second)
	nowMu.Unlock()
	before := fs.Stats().Puts
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = rep.Get("s1")
		}()
	}
	wg.Wait()
	if probes := fs.Stats().Gets + fs.Stats().Puts - before; probes != 1 {
		t.Fatalf("half-open admitted %d probes, want 1", probes)
	}
}

func TestReadRepairLaggingMissingCorrupt(t *testing.T) {
	c0, c1, c2 := newMemChild(), newMemChild(), newMemChild()
	rep := newRep(t, 2, c0, c1, c2)

	if err := rep.Put(cleanSnap("s1", 5)); err != nil {
		t.Fatal(err)
	}
	// Lagging, missing, and corrupt minorities, one at a time.
	c0.poke(*cleanSnap("s1", 3)) // lagging
	if got, err := rep.Get("s1"); err != nil || got.Ver != 5 {
		t.Fatalf("Get over lagging replica: %+v, %v", got, err)
	}
	if s, _ := c0.peek("s1"); s.Ver != 5 {
		t.Fatalf("lagging replica not repaired: %+v", s)
	}

	c1.Delete("s1") // missing
	if got, err := rep.Get("s1"); err != nil || got.Ver != 5 {
		t.Fatalf("Get over missing replica: %+v, %v", got, err)
	}
	if s, ok := c1.peek("s1"); !ok || s.Ver != 5 {
		t.Fatalf("missing replica not repaired: %+v", s)
	}

	bad := *cleanSnap("s1", 5)
	bad.Body = "garbage"
	c2.poke(bad) // corrupt (sum mismatch)
	if got, err := rep.Get("s1"); err != nil || got.Ver != 5 || got.Body != cleanSnap("s1", 5).Body {
		t.Fatalf("Get over corrupt replica: %+v, %v", got, err)
	}
	if s, _ := c2.peek("s1"); s.Body != cleanSnap("s1", 5).Body {
		t.Fatalf("corrupt replica not repaired: %+v", s)
	}
	if st := rep.Stats(); st.Repairs < 3 {
		t.Fatalf("Repairs = %d, want >= 3", st.Repairs)
	}
}

// TestCorruptReplyDoesNotCountTowardReadQuorum pins the safety rule
// behind read quorums: a replica whose copy fails integrity cannot
// vouch for a version, so it must not help assemble R — otherwise the
// one surviving fresh copy could be outvoted by garbage.
func TestCorruptReplyDoesNotCountTowardReadQuorum(t *testing.T) {
	c0 := newMemChild()
	fs1 := faultstore.New[tsnap](newMemChild(), faultstore.Plan{})
	c2 := newMemChild()
	rep := newRep(t, 2, c0, fs1, c2)

	if err := rep.Put(cleanSnap("s1", 2)); err != nil {
		t.Fatal(err)
	}
	bad := *cleanSnap("s1", 2)
	bad.Body = "garbage"
	c0.poke(bad)
	fs1.Break(nil)
	// Answers: c0 corrupt, c1 down, c2 found v2 → only one
	// version-bearing reply; R=2 is not met. Serving v2 here would be
	// correct by luck — with the corrupt reply counted, a *stale* c2
	// would be served the same way.
	if _, err := rep.Get("s1"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("Get: %v, want ErrNoQuorum", err)
	}
	if st := rep.Stats(); st.GetQuorumFailures == 0 {
		t.Fatal("GetQuorumFailures not counted")
	}
}

// TestQuorumAbsentCleansCorruptCopy: when a read quorum agrees the id
// is absent, a corrupt minority copy is unacked garbage — it must be
// deleted (there is nothing to repair it from), so sweeps converge.
func TestQuorumAbsentCleansCorruptCopy(t *testing.T) {
	c0, c1, c2 := newMemChild(), newMemChild(), newMemChild()
	rep := newRep(t, 2, c0, c1, c2)

	bad := *cleanSnap("s1", 1)
	bad.Body = "garbage"
	c0.poke(bad)
	if _, err := rep.Get("s1"); !errors.Is(err, errNF) {
		t.Fatalf("Get: %v, want NotFound", err)
	}
	if _, ok := c0.peek("s1"); ok {
		t.Fatal("corrupt unacked copy not cleaned up")
	}
	if rep.Sweep() != 0 {
		t.Fatal("sweep after cleanup should repair nothing")
	}
}

func TestDeleteTombstoneBlocksResurrection(t *testing.T) {
	c0, c1 := newMemChild(), newMemChild()
	inner2 := newMemChild()
	fs2 := faultstore.New[tsnap](inner2, faultstore.Plan{})
	rep := newRep(t, 2, c0, c1, fs2)

	if err := rep.Put(cleanSnap("s1", 4)); err != nil {
		t.Fatal(err)
	}
	fs2.Break(nil) // replica 2 misses the delete
	if existed, err := rep.Delete("s1"); err != nil || !existed {
		t.Fatalf("Delete: %v, %v", existed, err)
	}
	fs2.Heal()
	if s, ok := inner2.peek("s1"); !ok || s.Ver != 4 {
		t.Fatalf("setup: replica 2 should still hold v4, got %+v ok=%v", s, ok)
	}
	// The healed replica still holds v4; without the tombstone a read
	// or sweep would "repair" it back onto the others.
	if _, err := rep.Get("s1"); !errors.Is(err, errNF) {
		t.Fatalf("Get after delete: %v, want NotFound", err)
	}
	if _, ok := inner2.peek("s1"); ok {
		t.Fatal("stale copy not delete-propagated on read")
	}
	rep.Sweep()
	for i, c := range []*memChild{c0, c1, inner2} {
		if _, ok := c.peek("s1"); ok {
			t.Fatalf("replica %d resurrected a deleted id", i)
		}
	}
	if ids, err := rep.List(); err != nil || len(ids) != 0 {
		t.Fatalf("List after delete: %v, %v", ids, err)
	}
}

func TestListUnionCoversLaggingReplicas(t *testing.T) {
	c0, c1, c2 := newMemChild(), newMemChild(), newMemChild()
	rep := newRep(t, 2, c0, c1, c2)

	// An id only one replica knows (e.g. the only ack of a failed
	// quorum write) must still be discoverable, or the sweep could
	// never find it.
	c2.poke(*cleanSnap("orphan", 1))
	ids, err := rep.List()
	if err != nil || len(ids) != 1 || ids[0] != "orphan" {
		t.Fatalf("List: %v, %v", ids, err)
	}
}

func TestSweepConvergesHealedReplica(t *testing.T) {
	c0, c1 := newMemChild(), newMemChild()
	inner2 := newMemChild()
	fs2 := faultstore.New[tsnap](inner2, faultstore.Plan{})
	rep := newRep(t, 2, c0, c1, fs2)

	fs2.Break(nil)
	for v := 1; v <= 3; v++ {
		if err := rep.Put(cleanSnap("s1", v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Put(cleanSnap("s2", 1)); err != nil {
		t.Fatal(err)
	}
	fs2.Heal()
	time.Sleep(10 * time.Millisecond) // past BreakerCap: allow the half-open probe
	deadline := time.Now().Add(2 * time.Second)
	for rep.Sweep() > 0 || !childrenEqual(c0, c1, inner2) {
		if time.Now().After(deadline) {
			t.Fatalf("sweep did not converge; replica2=%v", inner2.m)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s, ok := inner2.peek("s1"); !ok || s.Ver != 3 {
		t.Fatalf("healed replica: %+v ok=%v, want v3", s, ok)
	}
	if s, ok := inner2.peek("s2"); !ok || s.Ver != 1 {
		t.Fatalf("healed replica s2: %+v ok=%v", s, ok)
	}
	if st := rep.Stats(); st.Repairs == 0 || st.Sweeps == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func childrenEqual(children ...*memChild) bool {
	var ref map[string]tsnap
	for i, c := range children {
		c.mu.Lock()
		m := make(map[string]tsnap, len(c.m))
		for k, v := range c.m {
			m[k] = v
		}
		c.mu.Unlock()
		if i == 0 {
			ref = m
		} else if !reflect.DeepEqual(ref, m) {
			return false
		}
	}
	return true
}

// TestFaultInterleavingsConverge is the §11 contract, per replica: at
// N=3/W=2, under an arbitrary seeded interleaving of replica outages,
// hard put/get failures, and torn writes (one replica tears, modelling
// uncorrelated disk faults), after heal + anti-entropy every replica
// holds the *same clean-run version* of every snapshot, at least as
// fresh as the newest acked write; and no read during the storm ever
// observed a version older than acked or a mangled body.
func TestFaultInterleavingsConverge(t *testing.T) {
	const (
		seeds = 30
		puts  = 10
	)
	totalInjected, totalMangled := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inners := [3]*memChild{newMemChild(), newMemChild(), newMemChild()}
		var fss [3]*faultstore.Store[tsnap]
		tornReplica := rng.Intn(3)
		for i := range fss {
			plan := faultstore.Plan{Seed: seed*10 + int64(i)}
			for n := 1; n <= 25; n++ {
				if rng.Float64() < 0.15 {
					plan.FailPuts = append(plan.FailPuts, n)
				}
				if rng.Float64() < 0.15 {
					plan.FailGets = append(plan.FailGets, n)
				}
				if i == tornReplica && rng.Float64() < 0.10 {
					plan.TornPuts = append(plan.TornPuts, n)
				}
			}
			fs := faultstore.New[tsnap](inners[i], plan)
			fs.Mangle = func(s tsnap) tsnap {
				s.Body += "-torn" // sum no longer matches: Verify catches it
				return s
			}
			fss[i] = fs
		}
		cfg := testConfig(2)
		cfg.Seed = seed
		rep, err := New(cfg,
			Member[tsnap]{ID: "r0", Store: fss[0]},
			Member[tsnap]{ID: "r1", Store: fss[1]},
			Member[tsnap]{ID: "r2", Store: fss[2]})
		if err != nil {
			t.Fatal(err)
		}

		// Drive: interleave quorum writes, reads, and imperative
		// outages. Track the highest acked version — the durability
		// floor the converged state must reach.
		maxAcked := 0
		for v := 1; v <= puts; v++ {
			if rng.Float64() < 0.2 {
				fss[rng.Intn(3)].Break(nil)
			}
			if rng.Float64() < 0.3 {
				for i := range fss {
					fss[i].Heal()
				}
			}
			if err := rep.Put(cleanSnap("s1", v)); err == nil {
				maxAcked = v
			} else if !errors.Is(err, ErrNoQuorum) {
				t.Fatalf("seed %d: put v%d: %v", seed, v, err)
			}
			if rng.Float64() < 0.5 {
				got, gerr := rep.Get("s1")
				if gerr == nil {
					// Read-after-write freshness + integrity, mid-storm.
					if got.Ver < maxAcked {
						t.Fatalf("seed %d: read v%d older than acked v%d", seed, got.Ver, maxAcked)
					}
					if got.Body != cleanSnap("s1", got.Ver).Body {
						t.Fatalf("seed %d: read mangled body %q", seed, got.Body)
					}
				}
			}
			time.Sleep(time.Millisecond) // let breaker backoffs tick
		}

		// Heal: end outages (planned faults exhaust as indices pass) and
		// sweep until a pass repairs nothing and replicas are identical.
		for i := range fss {
			fss[i].Heal()
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			repaired := rep.Sweep()
			if repaired == 0 && childrenEqual(inners[0], inners[1], inners[2]) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: no convergence: %v / %v / %v", seed, inners[0].m, inners[1].m, inners[2].m)
			}
			time.Sleep(2 * time.Millisecond)
		}
		// Converged state: every replica equal, holding a clean version
		// >= the durability floor (or consistently absent when nothing
		// was ever acked).
		got, ok := inners[0].peek("s1")
		if maxAcked > 0 && !ok {
			t.Fatalf("seed %d: acked v%d but converged absent", seed, maxAcked)
		}
		if ok {
			if got.Ver < maxAcked || got.Ver > puts {
				t.Fatalf("seed %d: converged on v%d, acked floor v%d", seed, got.Ver, maxAcked)
			}
			if want := cleanSnap("s1", got.Ver); got != *want {
				t.Fatalf("seed %d: converged state %+v is not clean version %+v", seed, got, want)
			}
		}
		for i := range fss {
			st := fss[i].Stats()
			totalInjected += st.Injected()
			totalMangled += st.Mangled
		}
		rep.Close()
	}
	// Non-vacuity: across all seeds the schedule must actually have
	// injected failures and torn writes (satellite: faultstore.Stats).
	if totalInjected == 0 || totalMangled == 0 {
		t.Fatalf("vacuous run: injected=%d mangled=%d", totalInjected, totalMangled)
	}
}
