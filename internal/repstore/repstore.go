// Package repstore replicates a snapshot store across N independent
// child stores with quorum reads and writes, so durable session state
// survives the loss of any minority of replicas — a dead disk, a
// partitioned replica, or a corrupted file — without a shared
// filesystem.
//
// The replication model is deliberately simple, leaning on two
// properties the serving layer already guarantees:
//
//   - Snapshots carry a monotone progress key (iterations, history
//     length) — the same key the stale-write fence orders by — so
//     "newest" is well defined without vector clocks: a session's
//     durable state only grows, and byte-identical determinism makes
//     equal progress equal state.
//   - Snapshots are self-validating (Seal/Verify CRC framing), so a
//     corrupt replica copy is detected at read time and excluded from
//     the freshness vote instead of being served.
//
// A write needs W acks, a read needs R = N-W+1 version-bearing replies
// (found or not-found; corrupt and I/O errors don't count), so W+R > N
// and every read quorum intersects every committed write quorum in at
// least one replica holding the freshest acked version. Reads repair
// lagging, missing, or corrupt replicas from the freshest copy in
// place, and a background anti-entropy sweep converges replicas that
// were down when writes happened.
//
// Per-replica health is a consecutive-failure circuit breaker: after
// BreakerThreshold consecutive failures the replica is skipped (open)
// for a capped, seeded-jittered backoff, then a single half-open probe
// decides between closing and re-opening with doubled backoff. A dead
// replica therefore costs a bounded number of doomed operations, and a
// healed one is reintegrated within one backoff interval plus a sweep.
//
// The wrapper is generic over the snapshot type (the same Inner shape
// internal/faultstore wraps), so it does not import the serving layer:
// Replicated[server.Snapshot] satisfies server.Store, and tests drive
// it with faultstore-wrapped in-memory children.
package repstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/randx"
)

// ErrNoQuorum is the base error of every quorum failure — too few
// replicas acked a write or gave a version-bearing reply to a read.
// Match with errors.Is.
var ErrNoQuorum = errors.New("repstore: quorum not met")

// Replica health states surfaced by ReplicaHealth.
const (
	StateHealthy  = "healthy"   // breaker closed: operations flow
	StateOpen     = "open"      // breaker open: replica skipped until backoff expires
	StateHalfOpen = "half-open" // single probe in flight decides open vs closed
)

// Inner is the store shape a replica must provide — structurally the
// serving layer's Store interface, parameterized by snapshot type so
// this package does not import it. faultstore.Store[S] matches, so
// tests can interpose fault injection per replica.
type Inner[S any] interface {
	Put(snap *S) error
	Get(id string) (*S, error)
	Delete(id string) (existed bool, err error)
	List() ([]string, error)
}

// Member names one replica of the set.
type Member[S any] struct {
	ID    string
	Store Inner[S]
}

// Config parameterizes a Replicated store over its snapshot type.
type Config[S any] struct {
	// WriteQuorum is W: acks required for a Put or Delete to succeed.
	// 0 means majority (N/2+1). Reads need R = N-W+1 version-bearing
	// replies, so W+R > N always holds.
	WriteQuorum int

	// ID extracts the snapshot's id — the replication key. Required.
	ID func(*S) string
	// Progress extracts the monotone progress key ordering versions of
	// one snapshot: compared lexicographically, larger is newer. For
	// server snapshots this is (iterations, history length) — the
	// stale-write fence's key. Required.
	Progress func(*S) (int64, int64)
	// Verify validates a snapshot read from a replica; an error marks
	// the copy unusable (and, if it wraps Corrupt, repairable). Nil
	// trusts every successful Get.
	Verify func(*S) error

	// NotFound is the sentinel child stores return for absent ids, and
	// the sentinel Get returns when a read quorum agrees the id is
	// absent. Required.
	NotFound error
	// Corrupt, when non-nil, tags integrity failures: a child Get (or
	// Verify) error wrapping it counts the replica as alive-but-corrupt
	// — excluded from the freshness vote, queued for read-repair — not
	// as a replica failure.
	Corrupt error

	// Circuit-breaker tuning. Zero values mean: open after 3
	// consecutive failures, first open interval 250ms, doubling to a
	// 5s cap, jittered up to +50% from a source seeded with Seed
	// (0 behaves as 1).
	BreakerThreshold int
	BreakerBase      time.Duration
	BreakerCap       time.Duration
	Seed             int64

	// SweepInterval runs the anti-entropy sweep in the background; 0
	// leaves sweeping to explicit Sweep calls.
	SweepInterval time.Duration

	// DeleteTTL bounds how long a Delete suppresses resurrection of
	// its id by read-repair or sweep (a replica that was down across
	// the delete still holds the snapshot). Tombstones are process
	// memory, so the bound is best-effort across restarts — see the
	// package docs. 0 means 1 minute.
	DeleteTTL time.Duration
}

const (
	defaultBreakerThreshold = 3
	defaultBreakerBase      = 250 * time.Millisecond
	defaultBreakerCap       = 5 * time.Second
	defaultDeleteTTL        = time.Minute

	lockStripes = 32
)

// ReplicaHealth is one replica's breaker state, surfaced through the
// serving layer's readyz so an operator can tell a dead disk from a
// dead process.
type ReplicaHealth struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// ConsecutiveFailures counts failures since the last success; it
	// keeps growing while the breaker is open (each failed probe).
	ConsecutiveFailures int    `json:"consecutiveFailures,omitempty"`
	LastError           string `json:"lastError,omitempty"`
}

// Stats counts quorum-level operations, for tests and debugging.
type Stats struct {
	Puts, Gets, Deletes, Lists int
	// PutQuorumFailures / GetQuorumFailures count operations that could
	// not assemble a quorum.
	PutQuorumFailures int
	GetQuorumFailures int
	// Repairs counts replica copies rewritten (or deleted) by
	// read-repair and the anti-entropy sweep.
	Repairs int
	// Sweeps counts completed anti-entropy passes.
	Sweeps int
}

type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// replica pairs a child store with its circuit breaker.
type replica[S any] struct {
	id    string
	store Inner[S]

	mu        sync.Mutex
	state     breakerState
	fails     int // consecutive failures
	backoff   time.Duration
	openUntil time.Time
	probing   bool // half-open: the single probe slot is taken
	lastErr   error
}

// allow reports whether an operation may be attempted now. An open
// breaker whose backoff expired moves to half-open and grants exactly
// one probe; further calls are refused until the probe reports.
func (r *replica[S]) allow(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case stateClosed:
		return true
	case stateOpen:
		if now.Before(r.openUntil) {
			return false
		}
		r.state = stateHalfOpen
		r.probing = true
		return true
	default: // half-open
		if r.probing {
			return false
		}
		r.probing = true
		return true
	}
}

// success closes the breaker.
func (r *replica[S]) success() {
	r.mu.Lock()
	r.state = stateClosed
	r.fails = 0
	r.backoff = 0
	r.probing = false
	r.lastErr = nil
	r.mu.Unlock()
}

// failure records a failed operation. Crossing the threshold opens the
// breaker; a failed half-open probe re-opens it with doubled backoff.
// jitter is sampled outside the replica lock (shared rng).
func (r *replica[S]) failure(err error, now time.Time, threshold int, base, cap time.Duration, jitter func(time.Duration) time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails++
	r.lastErr = err
	switch r.state {
	case stateHalfOpen:
		r.probing = false
		r.backoff *= 2
		if r.backoff > cap {
			r.backoff = cap
		}
		r.state = stateOpen
		r.openUntil = now.Add(r.backoff + jitter(r.backoff))
	case stateClosed:
		if r.fails >= threshold {
			r.state = stateOpen
			r.backoff = base
			r.openUntil = now.Add(base + jitter(base))
		}
	}
	// stateOpen: a straggler from before the breaker opened; the open
	// interval already covers it.
}

// lastError returns the most recent failure (nil when healthy).
func (r *replica[S]) lastError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

func (r *replica[S]) health() ReplicaHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := ReplicaHealth{ID: r.id, ConsecutiveFailures: r.fails}
	switch r.state {
	case stateClosed:
		h.State = StateHealthy
	case stateOpen:
		h.State = StateOpen
	default:
		h.State = StateHalfOpen
	}
	if r.lastErr != nil {
		h.LastError = r.lastErr.Error()
	}
	return h
}

// Replicated is a quorum-replicated store over N child stores. It
// satisfies the serving layer's Store interface when S is its snapshot
// type. Safe for concurrent use.
type Replicated[S any] struct {
	cfg      Config[S]
	replicas []*replica[S]
	w, r     int

	rngMu sync.Mutex
	rng   *randx.Source

	// locks serialize Put / Get-with-repair / sweep per snapshot id so
	// a repair never races a newer write back to an older version.
	locks [lockStripes]sync.Mutex

	// deleted holds delete tombstones: id → delete time. Read-repair
	// and sweep propagate deletes for tombstoned ids instead of
	// resurrecting copies from replicas that missed the delete.
	delMu   sync.Mutex
	deleted map[string]time.Time

	statsMu sync.Mutex
	stats   Stats

	now func() time.Time // injectable clock (breaker tests)

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// New builds a Replicated store over the given members. It validates
// the quorum math: 1 ≤ W ≤ N (default majority), leaving R = N-W+1.
func New[S any](cfg Config[S], members ...Member[S]) (*Replicated[S], error) {
	n := len(members)
	if n == 0 {
		return nil, errors.New("repstore: no replicas")
	}
	if cfg.ID == nil || cfg.Progress == nil || cfg.NotFound == nil {
		return nil, errors.New("repstore: Config.ID, Config.Progress and Config.NotFound are required")
	}
	if cfg.WriteQuorum == 0 {
		cfg.WriteQuorum = n/2 + 1
	}
	if cfg.WriteQuorum < 1 || cfg.WriteQuorum > n {
		return nil, fmt.Errorf("repstore: write quorum %d out of range [1, %d]", cfg.WriteQuorum, n)
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = defaultBreakerThreshold
	}
	if cfg.BreakerBase <= 0 {
		cfg.BreakerBase = defaultBreakerBase
	}
	if cfg.BreakerCap < cfg.BreakerBase {
		cfg.BreakerCap = defaultBreakerCap
	}
	if cfg.DeleteTTL <= 0 {
		cfg.DeleteTTL = defaultDeleteTTL
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Replicated[S]{
		cfg:     cfg,
		w:       cfg.WriteQuorum,
		r:       n - cfg.WriteQuorum + 1,
		rng:     randx.New(seed),
		deleted: map[string]time.Time{},
		now:     time.Now,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, m := range members {
		if m.Store == nil || m.ID == "" {
			return nil, errors.New("repstore: member with empty ID or nil Store")
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("repstore: duplicate replica id %q", m.ID)
		}
		seen[m.ID] = true
		s.replicas = append(s.replicas, &replica[S]{id: m.ID, store: m.Store})
	}
	if cfg.SweepInterval > 0 {
		go s.sweeper(cfg.SweepInterval)
	} else {
		close(s.done)
	}
	return s, nil
}

// Close stops the background sweeper (if any). The child stores are
// not closed — they were handed in open and stay owned by the caller.
func (s *Replicated[S]) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	<-s.done
}

func (s *Replicated[S]) sweeper(interval time.Duration) {
	defer close(s.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Sweep()
		}
	}
}

// Quorum reports the configured write quorum W, derived read quorum R,
// and replica count N.
func (s *Replicated[S]) Quorum() (w, r, n int) {
	return s.w, s.r, len(s.replicas)
}

// ReplicaHealth reports each replica's breaker state in member order.
func (s *Replicated[S]) ReplicaHealth() []ReplicaHealth {
	out := make([]ReplicaHealth, len(s.replicas))
	for i, r := range s.replicas {
		out[i] = r.health()
	}
	return out
}

// Stats returns a copy of the operation counters.
func (s *Replicated[S]) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

func (s *Replicated[S]) lockFor(id string) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &s.locks[h.Sum32()%lockStripes]
}

func (s *Replicated[S]) jitter(d time.Duration) time.Duration {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return time.Duration(s.rng.Int63n(int64(d)/2 + 1))
}

// attempt runs op against one replica if its breaker allows, recording
// the outcome. Returns (skipped=true) when the breaker refused.
func (s *Replicated[S]) attempt(r *replica[S], op func(Inner[S]) error) (err error, skipped bool) {
	now := s.now()
	if !r.allow(now) {
		return r.lastError(), true
	}
	err = op(r.store)
	if err != nil {
		s.replicaFailed(r, err)
	} else {
		r.success()
	}
	return err, false
}

func (s *Replicated[S]) replicaFailed(r *replica[S], err error) {
	r.failure(err, s.now(), s.cfg.BreakerThreshold, s.cfg.BreakerBase, s.cfg.BreakerCap, s.jitter)
}

// fanout runs op on every replica concurrently and counts acks.
func (s *Replicated[S]) fanout(op func(Inner[S]) error) (acks int, firstErr error) {
	errs := make([]error, len(s.replicas))
	oks := make([]bool, len(s.replicas))
	var wg sync.WaitGroup
	for i, r := range s.replicas {
		wg.Add(1)
		go func(i int, r *replica[S]) {
			defer wg.Done()
			err, _ := s.attempt(r, op)
			errs[i] = err
			oks[i] = err == nil
		}(i, r)
	}
	wg.Wait()
	for i := range oks {
		if oks[i] {
			acks++
		} else if firstErr == nil && errs[i] != nil {
			firstErr = errs[i]
		}
	}
	return acks, firstErr
}

// Put writes the snapshot to all replicas and succeeds once W acked.
// Replicas that missed the write (down, broken) converge later via
// read-repair or the anti-entropy sweep.
func (s *Replicated[S]) Put(snap *S) error {
	id := s.cfg.ID(snap)
	l := s.lockFor(id)
	l.Lock()
	defer l.Unlock()
	s.statsMu.Lock()
	s.stats.Puts++
	s.statsMu.Unlock()
	s.delMu.Lock()
	delete(s.deleted, id) // a new write supersedes any tombstone
	s.delMu.Unlock()
	acks, firstErr := s.fanout(func(in Inner[S]) error { return in.Put(snap) })
	if acks >= s.w {
		return nil
	}
	s.statsMu.Lock()
	s.stats.PutQuorumFailures++
	s.statsMu.Unlock()
	return fmt.Errorf("%w: put %s: %d/%d acks (need %d): %v",
		ErrNoQuorum, id, acks, len(s.replicas), s.w, firstErr)
}

// readResult is one replica's answer to a Get.
type readResult[S any] struct {
	snap    *S    // non-nil: found and (if configured) verified
	err     error // classification below
	absent  bool  // replied NotFound
	corrupt bool  // replied, but the copy failed integrity
	skipped bool  // breaker open
}

// Get returns the freshest copy a read quorum can prove, repairing
// lagging, missing, or corrupt replicas from it in passing. It returns
// Config.NotFound when a quorum agrees the id is absent, and an error
// wrapping ErrNoQuorum when too few replicas gave version-bearing
// replies.
func (s *Replicated[S]) Get(id string) (*S, error) {
	l := s.lockFor(id)
	l.Lock()
	defer l.Unlock()
	s.statsMu.Lock()
	s.stats.Gets++
	s.statsMu.Unlock()
	snap, _, err := s.getRepairLocked(id)
	return snap, err
}

// tombstoned reports whether id was deleted within DeleteTTL.
func (s *Replicated[S]) tombstoned(id string) bool {
	s.delMu.Lock()
	defer s.delMu.Unlock()
	t, ok := s.deleted[id]
	if !ok {
		return false
	}
	if s.now().Sub(t) > s.cfg.DeleteTTL {
		delete(s.deleted, id)
		return false
	}
	return true
}

// getRepairLocked does the quorum read + read-repair for one id. The
// caller holds the id's stripe lock. Returns the repaired-copy count
// for the sweep's convergence accounting.
func (s *Replicated[S]) getRepairLocked(id string) (*S, int, error) {
	if s.tombstoned(id) {
		// The id was deleted recently; replicas that missed the delete
		// must not resurrect it. Propagate instead of repairing.
		return nil, s.propagateDeleteLocked(id), s.cfg.NotFound
	}
	res := make([]readResult[S], len(s.replicas))
	var wg sync.WaitGroup
	for i, r := range s.replicas {
		wg.Add(1)
		go func(i int, r *replica[S]) {
			defer wg.Done()
			now := s.now()
			if !r.allow(now) {
				res[i] = readResult[S]{skipped: true, err: r.lastError()}
				return
			}
			snap, err := r.store.Get(id)
			if err == nil && s.cfg.Verify != nil {
				err = s.cfg.Verify(snap)
			}
			switch {
			case err == nil:
				r.success()
				res[i] = readResult[S]{snap: snap}
			case errors.Is(err, s.cfg.NotFound):
				r.success() // the replica answered; absence is an answer
				res[i] = readResult[S]{absent: true, err: err}
			case s.cfg.Corrupt != nil && errors.Is(err, s.cfg.Corrupt):
				r.success() // alive, but its copy is bad — repairable
				res[i] = readResult[S]{corrupt: true, err: err}
			default:
				s.replicaFailed(r, err)
				res[i] = readResult[S]{err: err}
			}
		}(i, r)
	}
	wg.Wait()

	// Freshness vote: only version-bearing replies (found or absent)
	// count toward R. A corrupt reply must not — the replica can no
	// longer vouch for which version it holds, and counting it could
	// let a stale minority version win the vote.
	answered := 0
	var freshest *S
	var fi1, fi2 int64
	var firstErr error
	for i := range res {
		r := &res[i]
		switch {
		case r.snap != nil:
			answered++
			p1, p2 := s.cfg.Progress(r.snap)
			if freshest == nil || p1 > fi1 || (p1 == fi1 && p2 > fi2) {
				freshest, fi1, fi2 = r.snap, p1, p2
			}
		case r.absent:
			answered++
		default:
			if firstErr == nil && r.err != nil {
				firstErr = r.err
			}
		}
	}
	if answered < s.r {
		s.statsMu.Lock()
		s.stats.GetQuorumFailures++
		s.statsMu.Unlock()
		return nil, 0, fmt.Errorf("%w: get %s: %d/%d version-bearing replies (need %d): %v",
			ErrNoQuorum, id, answered, len(s.replicas), s.r, firstErr)
	}
	if freshest == nil {
		// Quorum says absent. Any corrupt copy is unacked garbage with
		// no fresh source to repair from — delete it so replicas
		// converge on absence instead of resweeping it forever.
		cleaned := 0
		for i, r := range s.replicas {
			if !res[i].corrupt {
				continue
			}
			err, skipped := s.attempt(r, func(in Inner[S]) error {
				_, derr := in.Delete(id)
				return derr
			})
			if err == nil && !skipped {
				cleaned++
			}
		}
		if cleaned > 0 {
			s.statsMu.Lock()
			s.stats.Repairs += cleaned
			s.statsMu.Unlock()
		}
		return nil, cleaned, s.cfg.NotFound
	}

	// Read-repair: rewrite every replica that answered with a missing,
	// corrupt, or older copy. Replicas that failed or were skipped are
	// left to the breaker + sweep.
	repaired := 0
	for i, r := range s.replicas {
		rr := &res[i]
		if rr.skipped || (rr.err != nil && !rr.absent && !rr.corrupt) {
			continue
		}
		if rr.snap != nil {
			p1, p2 := s.cfg.Progress(rr.snap)
			if p1 == fi1 && p2 == fi2 {
				continue // already fresh
			}
		}
		if err, skipped := s.attempt(r, func(in Inner[S]) error { return in.Put(freshest) }); err == nil && !skipped {
			repaired++
		}
	}
	if repaired > 0 {
		s.statsMu.Lock()
		s.stats.Repairs += repaired
		s.statsMu.Unlock()
	}
	return freshest, repaired, nil
}

// propagateDeleteLocked re-deletes id on every replica (best-effort)
// and returns how many deletions actually removed a copy.
func (s *Replicated[S]) propagateDeleteLocked(id string) int {
	removed := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, r := range s.replicas {
		wg.Add(1)
		go func(r *replica[S]) {
			defer wg.Done()
			var existed bool
			err, skipped := s.attempt(r, func(in Inner[S]) error {
				var derr error
				existed, derr = in.Delete(id)
				return derr
			})
			if err == nil && !skipped && existed {
				mu.Lock()
				removed++
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if removed > 0 {
		s.statsMu.Lock()
		s.stats.Repairs += removed
		s.statsMu.Unlock()
	}
	return removed
}

// Delete removes the snapshot from all replicas, succeeding once W
// acked, and leaves a tombstone so repair paths don't resurrect the id
// from a replica that missed the delete. Reports whether any replica
// held a copy.
func (s *Replicated[S]) Delete(id string) (bool, error) {
	l := s.lockFor(id)
	l.Lock()
	defer l.Unlock()
	s.statsMu.Lock()
	s.stats.Deletes++
	s.statsMu.Unlock()
	s.delMu.Lock()
	s.deleted[id] = s.now()
	s.delMu.Unlock()
	existedAny := false
	var mu sync.Mutex
	acks, firstErr := s.fanout(func(in Inner[S]) error {
		existed, err := in.Delete(id)
		if err == nil && existed {
			mu.Lock()
			existedAny = true
			mu.Unlock()
		}
		return err
	})
	if acks >= s.w {
		return existedAny, nil
	}
	return false, fmt.Errorf("%w: delete %s: %d/%d acks (need %d): %v",
		ErrNoQuorum, id, acks, len(s.replicas), s.w, firstErr)
}

// List returns the union of replica listings (sorted, tombstoned ids
// excluded), requiring R successful listings so a minority of lagging
// replicas cannot hide a quorum-written id.
func (s *Replicated[S]) List() ([]string, error) {
	s.statsMu.Lock()
	s.stats.Lists++
	s.statsMu.Unlock()
	ids, ok, err := s.listUnion()
	if ok < s.r {
		return nil, fmt.Errorf("%w: list: %d/%d replies (need %d): %v",
			ErrNoQuorum, ok, len(s.replicas), s.r, err)
	}
	return ids, nil
}

// listUnion collects the union of ids across replicas, counting how
// many replicas answered.
func (s *Replicated[S]) listUnion() (ids []string, ok int, firstErr error) {
	lists := make([][]string, len(s.replicas))
	errs := make([]error, len(s.replicas))
	var wg sync.WaitGroup
	for i, r := range s.replicas {
		wg.Add(1)
		go func(i int, r *replica[S]) {
			defer wg.Done()
			errs[i], _ = s.attempt(r, func(in Inner[S]) error {
				var lerr error
				lists[i], lerr = in.List()
				return lerr
			})
		}(i, r)
	}
	wg.Wait()
	set := map[string]bool{}
	for i := range lists {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		ok++
		for _, id := range lists[i] {
			set[id] = true
		}
	}
	for id := range set {
		if !s.tombstoned(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, ok, firstErr
}

// Sweep runs one anti-entropy pass: for every id any replica knows
// (plus live tombstones), perform a quorum read with read-repair (or
// delete propagation). Returns the number of replica copies repaired —
// a converged, healthy set sweeps to 0. Best-effort: replicas that are
// down stay behind their breakers and converge on a later pass.
func (s *Replicated[S]) Sweep() (repaired int) {
	ids, _, _ := s.listUnion()
	// Tombstoned ids are excluded from the union but still need their
	// deletes pushed to replicas that were down.
	s.delMu.Lock()
	for id := range s.deleted {
		ids = append(ids, id)
	}
	s.delMu.Unlock()
	sort.Strings(ids)
	prev := ""
	for _, id := range ids {
		if id == prev {
			continue
		}
		prev = id
		l := s.lockFor(id)
		l.Lock()
		if s.tombstoned(id) {
			repaired += s.propagateDeleteLocked(id)
		} else {
			_, n, _ := s.getRepairLocked(id)
			repaired += n
		}
		l.Unlock()
	}
	s.statsMu.Lock()
	s.stats.Sweeps++
	s.statsMu.Unlock()
	return repaired
}
