// Package baseline provides the comparison methods the paper situates
// itself against (§IV): a classic single-target subgroup discovery
// quality (the z-score / mean-shift test), binarized Weighted Relative
// Accuracy, a dispersion-corrected quality in the spirit of Boley et
// al. (ECML-PKDD 2017) together with their tight-optimistic-estimate
// branch-and-bound search, and the random-subgroup SI baseline used in
// the Fig. 3 noise experiment.
//
// All scorers implement search.Scorer, so they run on the same beam
// engine as the SI measure; the exact searches enumerate through the
// shared engine.Language chassis.
package baseline

import (
	"math"
	"sort"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/randx"
	"repro/internal/si"
	"repro/internal/stats"
)

// MeanShiftScorer implements the classic subgroup discovery quality for
// a single numeric target: q(I) = √|I| · |µ_I − µ₀| / σ₀ (the z-score of
// the subgroup mean under iid sampling). It is "objective": it never
// adapts to what the user has already seen.
type MeanShiftScorer struct {
	y      []float64
	mu0    float64
	sigma0 float64
}

// NewMeanShiftScorer builds the scorer for target column j of the
// dataset.
func NewMeanShiftScorer(ds *dataset.Dataset, j int) *MeanShiftScorer {
	col := ds.TargetColumn(j)
	return &MeanShiftScorer{
		y:      col,
		mu0:    stats.Mean(col),
		sigma0: math.Sqrt(stats.Variance(col)),
	}
}

// Score implements search.Scorer.
func (s *MeanShiftScorer) Score(ext *bitset.Set, numConds int) (float64, float64, mat.Vec, bool) {
	cnt := ext.Count()
	if cnt == 0 || s.sigma0 == 0 {
		return 0, 0, nil, false
	}
	var sum float64
	ext.ForEach(func(i int) { sum += s.y[i] })
	mean := sum / float64(cnt)
	q := math.Sqrt(float64(cnt)) * math.Abs(mean-s.mu0) / s.sigma0
	return q, q, mat.Vec{mean}, true
}

// WRAccScorer binarizes the target at a threshold and scores subgroups
// by Weighted Relative Accuracy: (|I|/n)·(p_I − p₀).
type WRAccScorer struct {
	pos []bool
	p0  float64
	n   int
}

// NewWRAccScorer builds the scorer for target column j, with rows
// counted positive when y > threshold.
func NewWRAccScorer(ds *dataset.Dataset, j int, threshold float64) *WRAccScorer {
	col := ds.TargetColumn(j)
	pos := make([]bool, len(col))
	np := 0
	for i, v := range col {
		if v > threshold {
			pos[i] = true
			np++
		}
	}
	return &WRAccScorer{pos: pos, p0: float64(np) / float64(len(col)), n: len(col)}
}

// Score implements search.Scorer.
func (s *WRAccScorer) Score(ext *bitset.Set, numConds int) (float64, float64, mat.Vec, bool) {
	cnt := ext.Count()
	if cnt == 0 {
		return 0, 0, nil, false
	}
	np := 0
	ext.ForEach(func(i int) {
		if s.pos[i] {
			np++
		}
	})
	pI := float64(np) / float64(cnt)
	q := float64(cnt) / float64(s.n) * (pI - s.p0)
	return q, q, mat.Vec{pI}, true
}

// DispersionCorrectedScorer scores subgroups by coverage times mean
// shift, discounted by the subgroup's own dispersion — the shape of the
// dispersion-corrected quality of Boley et al. (2017):
// q(I) = (|I|/n)·max(0, µ_I − µ₀) / (1 + σ_I).
type DispersionCorrectedScorer struct {
	y   []float64
	mu0 float64
	n   int
}

// NewDispersionCorrectedScorer builds the scorer for target column j.
func NewDispersionCorrectedScorer(ds *dataset.Dataset, j int) *DispersionCorrectedScorer {
	col := ds.TargetColumn(j)
	return &DispersionCorrectedScorer{y: col, mu0: stats.Mean(col), n: len(col)}
}

// Score implements search.Scorer.
func (s *DispersionCorrectedScorer) Score(ext *bitset.Set, numConds int) (float64, float64, mat.Vec, bool) {
	cnt := ext.Count()
	if cnt == 0 {
		return 0, 0, nil, false
	}
	var w stats.Welford
	ext.ForEach(func(i int) { w.Add(s.y[i]) })
	shift := w.Mean() - s.mu0
	if shift < 0 {
		shift = 0
	}
	q := float64(cnt) / float64(s.n) * shift / (1 + math.Sqrt(w.Var()))
	return q, q, mat.Vec{w.Mean()}, true
}

// ImpactResult is the outcome of the branch-and-bound search.
type ImpactResult struct {
	Intention pattern.Intention
	Extension *bitset.Set
	Quality   float64
	// Explored counts the nodes visited; Pruned the subtrees cut by the
	// tight optimistic estimate.
	Explored, Pruned int
}

// BranchAndBoundImpact finds the conjunction (up to maxDepth conditions)
// maximizing the impact quality q(I) = (|I|/n)·(µ_I − µ₀) for target
// column j, exactly, using the tight optimistic estimate of Boley et
// al.: for any refinement J ⊆ I, q(J) ≤ max_k (k/n)·(top-k mean of y in
// I − µ₀), evaluated by scanning I's target values in decreasing order.
// Non-positive arguments mean the paper defaults (depth 4, 4 splits,
// support 2).
func BranchAndBoundImpact(ds *dataset.Dataset, j, maxDepth, numSplits, minSupport int) *ImpactResult {
	if maxDepth <= 0 {
		maxDepth = 4
	}
	if numSplits <= 0 {
		numSplits = 4
	}
	if minSupport <= 0 {
		minSupport = 2
	}
	y := ds.TargetColumn(j)
	mu0 := stats.Mean(y)
	n := ds.N()
	lang := engine.LanguageFor(ds, numSplits)

	res := &ImpactResult{Quality: math.Inf(-1)}
	// Reusable buffers for the optimistic estimate.
	var idxBuf []int
	var vals []float64
	// Tight optimistic estimate: best over prefixes of the sorted values.
	optimistic := func(ext *bitset.Set) float64 {
		idxBuf = ext.IterateInto(idxBuf[:0])
		vals = vals[:0]
		for _, i := range idxBuf {
			vals = append(vals, y[i])
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		best := math.Inf(-1)
		var sum float64
		for k, v := range vals {
			sum += v
			q := float64(k+1) / float64(n) * (sum/float64(k+1) - mu0)
			if q > best {
				best = q
			}
		}
		return best
	}

	lang.Enumerate(engine.EnumOptions{
		MaxDepth:   maxDepth,
		MinSupport: minSupport,
	}, func(ids []engine.CondID, ext *bitset.Set, size int) bool {
		res.Explored++
		var sum float64
		ext.ForEach(func(i int) { sum += y[i] })
		q := float64(size) / float64(n) * (sum/float64(size) - mu0)
		if q > res.Quality {
			res.Quality = q
			res.Intention = lang.Intention(ids)
			res.Extension = ext.Clone()
		}
		if len(ids) >= maxDepth {
			return false
		}
		if optimistic(ext) <= res.Quality {
			res.Pruned++
			return false
		}
		return true
	})
	return res
}

// ExhaustiveImpact computes the same optimum without pruning, as the
// test oracle for the branch-and-bound. Non-positive arguments mean the
// same defaults as BranchAndBoundImpact.
func ExhaustiveImpact(ds *dataset.Dataset, j, maxDepth, numSplits, minSupport int) *ImpactResult {
	if maxDepth <= 0 {
		maxDepth = 4
	}
	if numSplits <= 0 {
		numSplits = 4
	}
	if minSupport <= 0 {
		minSupport = 2
	}
	y := ds.TargetColumn(j)
	mu0 := stats.Mean(y)
	n := ds.N()
	lang := engine.LanguageFor(ds, numSplits)
	res := &ImpactResult{Quality: math.Inf(-1)}
	lang.Enumerate(engine.EnumOptions{
		MaxDepth:   maxDepth,
		MinSupport: minSupport,
	}, func(ids []engine.CondID, ext *bitset.Set, size int) bool {
		res.Explored++
		var sum float64
		ext.ForEach(func(r int) { sum += y[r] })
		q := float64(size) / float64(n) * (sum/float64(size) - mu0)
		if q > res.Quality {
			res.Quality = q
			res.Intention = lang.Intention(ids)
			res.Extension = ext.Clone()
		}
		return true
	})
	return res
}

// RandomSubgroupSI estimates the SI a "meaningless" subgroup of the
// given size achieves under the model — the baseline curve of Fig. 3 —
// by averaging the location SI of `repeats` uniformly drawn extensions.
func RandomSubgroupSI(m background.Reader, y *mat.Dense, size, repeats int, p si.Params, seed int64) float64 {
	src := randx.New(seed)
	n := y.R
	var total float64
	cnt := 0
	for r := 0; r < repeats; r++ {
		perm := src.Perm(n)
		ext := bitset.New(n)
		for _, i := range perm[:size] {
			ext.Add(i)
		}
		yhat := pattern.SubgroupMean(y, ext)
		s, _, err := si.LocationSI(m, ext, yhat, 1, p)
		if err != nil {
			continue
		}
		total += s
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return total / float64(cnt)
}
