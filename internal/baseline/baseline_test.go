package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/search"
	"repro/internal/si"
)

func plantedDS(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	y := mat.NewDense(n, 1)
	flag := make([]float64, n)
	num := make([]float64, n)
	for i := 0; i < n; i++ {
		if i < n/4 {
			flag[i] = 1
			y.Set(i, 0, 3+0.2*rng.NormFloat64())
		} else {
			y.Set(i, 0, 0.2*rng.NormFloat64())
		}
		num[i] = rng.Float64()
	}
	return &dataset.Dataset{
		Name: "planted",
		Descriptors: []dataset.Column{
			{Name: "flag", Kind: dataset.Binary, Values: flag, Levels: []string{"0", "1"}},
			{Name: "junk", Kind: dataset.Numeric, Values: num},
		},
		TargetNames: []string{"t"},
		Y:           y,
	}
}

func TestMeanShiftScorerFindsPlanted(t *testing.T) {
	ds := plantedDS(80, 1)
	sc := NewMeanShiftScorer(ds, 0)
	res := search.Beam(ds, sc, search.Params{MaxDepth: 1})
	top := res.Top()
	if top == nil {
		t.Fatal("no results")
	}
	if ds.Descriptors[top.Intention[0].Attr].Name != "flag" {
		t.Fatalf("top = %v", top.Intention.Format(ds))
	}
	if top.SI <= 0 {
		t.Fatalf("quality = %v", top.SI)
	}
}

func TestMeanShiftScoreValue(t *testing.T) {
	ds := plantedDS(80, 2)
	sc := NewMeanShiftScorer(ds, 0)
	ext := bitset.FromIndices(80, []int{0, 1, 2, 3})
	q, _, mean, ok := sc.Score(ext, 1)
	if !ok {
		t.Fatal("score failed")
	}
	if mean[0] < 2 {
		t.Fatalf("subgroup mean = %v", mean[0])
	}
	if q <= 0 {
		t.Fatalf("z-quality = %v", q)
	}
	if _, _, _, ok := sc.Score(bitset.New(80), 1); ok {
		t.Fatal("empty extension must fail")
	}
}

func TestWRAccScorer(t *testing.T) {
	ds := plantedDS(80, 3)
	sc := NewWRAccScorer(ds, 0, 1.0) // positives = planted rows
	// The planted extension should have near-maximal WRAcc.
	planted := bitset.FromIndices(80, seqInts(0, 20))
	qPlanted, _, _, _ := sc.Score(planted, 1)
	random := bitset.FromIndices(80, seqInts(20, 40))
	qRandom, _, _, _ := sc.Score(random, 1)
	if qPlanted <= qRandom {
		t.Fatalf("WRAcc planted %v <= random %v", qPlanted, qRandom)
	}
	// WRAcc of the full data is zero by construction.
	qFull, _, _, _ := sc.Score(bitset.Full(80), 1)
	if math.Abs(qFull) > 1e-12 {
		t.Fatalf("WRAcc(full) = %v", qFull)
	}
}

func TestDispersionCorrectedPrefersTightSubgroups(t *testing.T) {
	// Two subgroups with the same size and mean shift; the one with the
	// smaller internal variance must win.
	n := 40
	y := mat.NewDense(n, 1)
	for i := 0; i < 10; i++ {
		y.Set(i, 0, 5) // tight
	}
	vals := []float64{1, 9, 2, 8, 3, 7, 0, 10, 2.5, 7.5} // mean 5, spread out
	for i := 0; i < 10; i++ {
		y.Set(10+i, 0, vals[i])
	}
	ds := &dataset.Dataset{
		Descriptors: []dataset.Column{{Name: "d", Kind: dataset.Numeric, Values: make([]float64, n)}},
		TargetNames: []string{"t"},
		Y:           y,
	}
	sc := NewDispersionCorrectedScorer(ds, 0)
	tight := bitset.FromIndices(n, seqInts(0, 10))
	loose := bitset.FromIndices(n, seqInts(10, 20))
	qt, _, _, _ := sc.Score(tight, 1)
	ql, _, _, _ := sc.Score(loose, 1)
	if qt <= ql {
		t.Fatalf("dispersion correction failed: tight %v <= loose %v", qt, ql)
	}
}

func TestBranchAndBoundMatchesExhaustive(t *testing.T) {
	ds := plantedDS(60, 4)
	bb := BranchAndBoundImpact(ds, 0, 2, 4, 2)
	ex := ExhaustiveImpact(ds, 0, 2, 4, 2)
	if math.Abs(bb.Quality-ex.Quality) > 1e-12 {
		t.Fatalf("B&B quality %v != exhaustive %v", bb.Quality, ex.Quality)
	}
	if !bb.Extension.Equal(ex.Extension) {
		t.Fatalf("B&B extension differs: %v vs %v",
			bb.Intention.Format(ds), ex.Intention.Format(ds))
	}
	if bb.Explored > ex.Explored {
		t.Fatalf("B&B explored more nodes (%d) than exhaustive (%d)",
			bb.Explored, ex.Explored)
	}
	if bb.Pruned == 0 {
		t.Log("warning: no pruning occurred on this instance")
	}
}

func TestBranchAndBoundPrunes(t *testing.T) {
	ds := plantedDS(200, 5)
	bb := BranchAndBoundImpact(ds, 0, 3, 4, 2)
	ex := ExhaustiveImpact(ds, 0, 3, 4, 2)
	if math.Abs(bb.Quality-ex.Quality) > 1e-12 {
		t.Fatalf("B&B quality %v != exhaustive %v", bb.Quality, ex.Quality)
	}
	if bb.Explored >= ex.Explored {
		t.Fatalf("no savings: B&B %d vs exhaustive %d nodes", bb.Explored, ex.Explored)
	}
}

func TestRandomSubgroupSIBaselineIsLow(t *testing.T) {
	ds := plantedDS(200, 6)
	m, err := background.New(200, mat.Vec{0}, mat.Eye(1))
	if err != nil {
		t.Fatal(err)
	}
	baselineSI := RandomSubgroupSI(m, ds.Y, 50, 30, si.Default(), 7)
	// The planted subgroup's SI should dwarf the random baseline.
	plantedExt := bitset.FromIndices(200, seqInts(0, 50))
	yhat := mat.Vec{0}
	var sum float64
	plantedExt.ForEach(func(i int) { sum += ds.Y.At(i, 0) })
	yhat[0] = sum / 50
	plantedSI, _, err := si.LocationSI(m, plantedExt, yhat, 1, si.Default())
	if err != nil {
		t.Fatal(err)
	}
	if baselineSI >= plantedSI/2 {
		t.Fatalf("random baseline %v too close to planted %v", baselineSI, plantedSI)
	}
}

func seqInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
