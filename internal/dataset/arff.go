package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/mat"
)

// ReadARFF parses a Weka/Cortana-style ARFF file. Attributes declared
// `numeric`/`real`/`integer` become Numeric descriptors, nominal
// attributes (`{a,b,...}`) become Categorical (Binary when they have
// exactly two levels). The attributes named in targets become the
// real-valued target columns (they must be numeric); everything else is
// a descriptor. The original paper's tooling (Cortana) consumes this
// format, so the reader lets its datasets be used directly.
//
// Supported subset: @relation, @attribute, @data with comma-separated
// dense rows, '%' comments, case-insensitive keywords, quoted nominal
// values. Sparse rows and date/string attributes are not supported.
func ReadARFF(r io.Reader, targets []string) (*Dataset, error) {
	wantTarget := map[string]bool{}
	for _, t := range targets {
		wantTarget[strings.ToLower(t)] = true
	}
	type attrDecl struct {
		name    string
		nominal []string // nil = numeric
	}
	var (
		decls    []attrDecl
		relation string
		rows     [][]string
		inData   bool
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if !inData {
			lower := strings.ToLower(line)
			switch {
			case strings.HasPrefix(lower, "@relation"):
				relation = strings.Trim(strings.TrimSpace(line[len("@relation"):]), `"'`)
			case strings.HasPrefix(lower, "@attribute"):
				rest := strings.TrimSpace(line[len("@attribute"):])
				name, typ, err := splitAttrDecl(rest)
				if err != nil {
					return nil, fmt.Errorf("dataset: arff line %d: %w", lineNo, err)
				}
				d := attrDecl{name: name}
				tl := strings.ToLower(typ)
				switch {
				case tl == "numeric" || tl == "real" || tl == "integer":
					// numeric
				case strings.HasPrefix(typ, "{") && strings.HasSuffix(typ, "}"):
					inner := typ[1 : len(typ)-1]
					for _, lv := range strings.Split(inner, ",") {
						d.nominal = append(d.nominal, strings.Trim(strings.TrimSpace(lv), `"'`))
					}
					if len(d.nominal) == 0 {
						return nil, fmt.Errorf("dataset: arff line %d: empty nominal set", lineNo)
					}
				default:
					return nil, fmt.Errorf("dataset: arff line %d: unsupported attribute type %q", lineNo, typ)
				}
				decls = append(decls, d)
			case strings.HasPrefix(lower, "@data"):
				inData = true
			default:
				return nil, fmt.Errorf("dataset: arff line %d: unexpected header line %q", lineNo, line)
			}
			continue
		}
		cells := strings.Split(line, ",")
		if len(cells) != len(decls) {
			return nil, fmt.Errorf("dataset: arff line %d: %d cells for %d attributes",
				lineNo, len(cells), len(decls))
		}
		for i := range cells {
			cells[i] = strings.Trim(strings.TrimSpace(cells[i]), `"'`)
		}
		rows = append(rows, cells)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: arff: %w", err)
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("dataset: arff: no @attribute declarations")
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: arff: no data rows")
	}

	ds := &Dataset{Name: relation}
	var targetCols []int
	for ai, d := range decls {
		if wantTarget[strings.ToLower(d.name)] {
			if d.nominal != nil {
				return nil, fmt.Errorf("dataset: arff: target %q must be numeric", d.name)
			}
			targetCols = append(targetCols, ai)
			ds.TargetNames = append(ds.TargetNames, d.name)
			continue
		}
		col := Column{Name: d.name, Values: make([]float64, len(rows))}
		if d.nominal == nil {
			col.Kind = Numeric
			for ri, row := range rows {
				v, err := strconv.ParseFloat(row[ai], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: arff: row %d attribute %q: %w", ri+1, d.name, err)
				}
				col.Values[ri] = v
			}
		} else {
			col.Kind = Categorical
			if len(d.nominal) == 2 {
				col.Kind = Binary
			}
			col.Levels = d.nominal
			idx := map[string]int{}
			for li, lv := range d.nominal {
				idx[lv] = li
			}
			for ri, row := range rows {
				li, ok := idx[row[ai]]
				if !ok {
					return nil, fmt.Errorf("dataset: arff: row %d attribute %q: undeclared level %q",
						ri+1, d.name, row[ai])
				}
				col.Values[ri] = float64(li)
			}
		}
		ds.Descriptors = append(ds.Descriptors, col)
	}
	if len(targetCols) != len(targets) {
		return nil, fmt.Errorf("dataset: arff: found %d of %d requested targets",
			len(targetCols), len(targets))
	}

	ds.Y = mat.NewDense(len(rows), len(targetCols))
	for ri, row := range rows {
		for j, ai := range targetCols {
			v, err := strconv.ParseFloat(row[ai], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: arff: row %d target %q: %w",
					ri+1, decls[ai].name, err)
			}
			ds.Y.Set(ri, j, v)
		}
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// splitAttrDecl splits "@attribute" remainder into name and type,
// honoring quoted names.
func splitAttrDecl(rest string) (name, typ string, err error) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", "", fmt.Errorf("empty attribute declaration")
	}
	if rest[0] == '\'' || rest[0] == '"' {
		q := rest[0]
		end := strings.IndexByte(rest[1:], q)
		if end < 0 {
			return "", "", fmt.Errorf("unterminated quoted attribute name")
		}
		name = rest[1 : 1+end]
		typ = strings.TrimSpace(rest[2+end:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", "", fmt.Errorf("attribute declaration %q has no type", rest)
		}
		name = rest[:sp]
		typ = strings.TrimSpace(rest[sp+1:])
	}
	if name == "" || typ == "" {
		return "", "", fmt.Errorf("malformed attribute declaration %q", rest)
	}
	return name, typ, nil
}
