package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/mat"
)

func sample() *Dataset {
	y := mat.NewDense(4, 2)
	copy(y.Data, []float64{0.1, 1, 0.2, 2, 0.3, 3, 0.4, 4})
	return &Dataset{
		Name: "sample",
		Descriptors: []Column{
			{Name: "age", Kind: Numeric, Values: []float64{10, 20, 30, 40}},
			{Name: "grade", Kind: Ordinal, Values: []float64{1, 3, 3, 5}},
			{Name: "region", Kind: Categorical, Values: []float64{0, 1, 0, 2},
				Levels: []string{"north", "south", "east"}},
			{Name: "urban", Kind: Binary, Values: []float64{0, 1, 1, 0},
				Levels: []string{"no", "yes"}},
		},
		TargetNames: []string{"crime", "income"},
		Y:           y,
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesBadLevel(t *testing.T) {
	ds := sample()
	ds.Descriptors[2].Values[0] = 9
	if err := ds.Validate(); err == nil {
		t.Fatal("expected error for out-of-range level index")
	}
}

func TestValidateCatchesNaNTarget(t *testing.T) {
	ds := sample()
	ds.Y.Set(0, 0, math.NaN())
	if err := ds.Validate(); err == nil {
		t.Fatal("expected error for NaN target")
	}
}

func TestValidateCatchesLengthMismatch(t *testing.T) {
	ds := sample()
	ds.Descriptors[0].Values = ds.Descriptors[0].Values[:2]
	if err := ds.Validate(); err == nil {
		t.Fatal("expected error for short column")
	}
}

func TestAccessors(t *testing.T) {
	ds := sample()
	if ds.N() != 4 || ds.Dy() != 2 || ds.Dx() != 4 {
		t.Fatalf("dims = %d/%d/%d", ds.N(), ds.Dy(), ds.Dx())
	}
	if ds.Descriptor("region") == nil || ds.Descriptor("nope") != nil {
		t.Fatal("Descriptor lookup wrong")
	}
	if ds.TargetIndex("income") != 1 || ds.TargetIndex("nope") != -1 {
		t.Fatal("TargetIndex wrong")
	}
	col := ds.TargetColumn(0)
	if col[3] != 0.4 {
		t.Fatalf("TargetColumn = %v", col)
	}
	if ds.Descriptors[2].LevelIndex("east") != 2 ||
		ds.Descriptors[2].LevelIndex("west") != -1 {
		t.Fatal("LevelIndex wrong")
	}
	if got := ds.Descriptors[2].FormatValue(1); got != "south" {
		t.Fatalf("FormatValue = %q", got)
	}
}

func TestSplitPoints(t *testing.T) {
	c := &Column{Name: "x", Kind: Numeric,
		Values: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	sp := SplitPoints(c, 4)
	if len(sp) != 4 {
		t.Fatalf("SplitPoints = %v", sp)
	}
	// 20/40/60/80th percentiles of 0..10 are 2, 4, 6, 8.
	want := []float64{2, 4, 6, 8}
	for i := range want {
		if math.Abs(sp[i]-want[i]) > 1e-12 {
			t.Fatalf("SplitPoints = %v, want %v", sp, want)
		}
	}
	// Constant column collapses to one split point.
	cc := &Column{Name: "c", Kind: Numeric, Values: []float64{5, 5, 5, 5}}
	if sp := SplitPoints(cc, 4); len(sp) != 1 || sp[0] != 5 {
		t.Fatalf("constant column split points = %v", sp)
	}
	// Discrete columns have no split points.
	if sp := SplitPoints(&Column{Kind: Binary, Levels: []string{"a", "b"}}, 4); sp != nil {
		t.Fatalf("binary split points = %v", sp)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := sample()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.N() != ds.N() || got.Dx() != ds.Dx() || got.Dy() != ds.Dy() {
		t.Fatalf("round trip dims differ: %d/%d/%d", got.N(), got.Dx(), got.Dy())
	}
	for i := range ds.Descriptors {
		a, b := &ds.Descriptors[i], &got.Descriptors[i]
		if a.Name != b.Name || a.Kind != b.Kind {
			t.Fatalf("column %d header differs", i)
		}
		for r := range a.Values {
			if a.FormatValue(r) != b.FormatValue(r) {
				t.Fatalf("column %q row %d differs: %q vs %q",
					a.Name, r, a.FormatValue(r), b.FormatValue(r))
			}
		}
	}
	for i, v := range ds.Y.Data {
		if got.Y.Data[i] != v {
			t.Fatalf("target cell %d differs", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                       // no header
		"x\n1\n",                 // malformed header cell
		"x:z:num\n1\n",           // bad role
		"x:d:wat\n1\n",           // bad kind
		"x:d:num,y:t:num\nfoo,1", // non-numeric numeric cell
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}
