package dataset

import (
	"strings"
	"testing"
)

const sampleARFF = `% A tiny Cortana-style file
@relation 'toy data'

@attribute age numeric
@attribute 'region' {north, south, "east"}
@attribute urban {no, yes}
@attribute crime real
@attribute income REAL

@data
10, north, no,  0.1, 100
20, south, yes, 0.2, 200
% a comment inside data
30, east,  no,  0.3, 300
`

func TestReadARFF(t *testing.T) {
	ds, err := ReadARFF(strings.NewReader(sampleARFF), []string{"crime", "income"})
	if err != nil {
		t.Fatalf("ReadARFF: %v", err)
	}
	if ds.Name != "toy data" {
		t.Fatalf("relation = %q", ds.Name)
	}
	if ds.N() != 3 || ds.Dx() != 3 || ds.Dy() != 2 {
		t.Fatalf("dims = %d/%d/%d", ds.N(), ds.Dx(), ds.Dy())
	}
	age := ds.Descriptor("age")
	if age == nil || age.Kind != Numeric || age.Values[2] != 30 {
		t.Fatalf("age column wrong: %+v", age)
	}
	region := ds.Descriptor("region")
	if region == nil || region.Kind != Categorical || len(region.Levels) != 3 {
		t.Fatalf("region column wrong: %+v", region)
	}
	if region.FormatValue(2) != "east" {
		t.Fatalf("region row 2 = %q", region.FormatValue(2))
	}
	urban := ds.Descriptor("urban")
	if urban == nil || urban.Kind != Binary {
		t.Fatalf("urban should be binary: %+v", urban)
	}
	if ds.Y.At(1, 0) != 0.2 || ds.Y.At(2, 1) != 300 {
		t.Fatalf("targets wrong: %v", ds.Y.Data)
	}
}

func TestReadARFFErrors(t *testing.T) {
	cases := []struct {
		name    string
		arff    string
		targets []string
	}{
		{"no attributes", "@relation x\n@data\n1\n", []string{"y"}},
		{"no data", "@relation x\n@attribute a numeric\n@data\n", []string{"a"}},
		{"missing target", sampleARFF, []string{"nope"}},
		{"nominal target", sampleARFF, []string{"region"}},
		{"bad type", "@attribute a date\n@data\n1\n", nil},
		{"cell count", "@attribute a numeric\n@attribute b numeric\n@data\n1\n", []string{"a"}},
		{"undeclared level", "@attribute a {x,y}\n@attribute t numeric\n@data\nz, 1\n", []string{"t"}},
		{"bad numeric", "@attribute a numeric\n@attribute t numeric\n@data\nfoo, 1\n", []string{"t"}},
		{"unterminated quote", "@attribute 'a numeric\n@data\n1\n", nil},
		{"header junk", "@wat\n", nil},
	}
	for _, c := range cases {
		if _, err := ReadARFF(strings.NewReader(c.arff), c.targets); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestReadARFFRoundTripThroughMiner(t *testing.T) {
	// An ARFF dataset must validate and be directly minable.
	ds, err := ReadARFF(strings.NewReader(sampleARFF), []string{"crime"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Dy() != 1 || ds.Dx() != 4 {
		t.Fatalf("dims = %d/%d", ds.Dy(), ds.Dx())
	}
	// income stayed a descriptor this time.
	if ds.Descriptor("income") == nil {
		t.Fatal("income should be a descriptor")
	}
}
