// Package dataset defines the data model of the subgroup discovery
// library: a table of n data points, each with a tuple of typed
// description attributes (numeric, ordinal, categorical or binary — the
// x̂ᵢ of the paper) and a vector of real-valued target attributes (the
// ŷᵢ ∈ R^dy). It also provides CSV round-tripping and the percentile
// split points the search uses to discretize numeric descriptors.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mat"
	"repro/internal/stats"
)

// Kind classifies a description attribute.
type Kind int

// The description attribute kinds supported by the pattern language.
const (
	Numeric     Kind = iota // real-valued; conditions attr ≤ v / attr ≥ v
	Ordinal                 // ordered discrete levels; conditions like Numeric
	Categorical             // unordered levels; conditions attr == level
	Binary                  // two-level categorical; conditions attr == level
)

// String returns the kind's CSV tag.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "num"
	case Ordinal:
		return "ord"
	case Categorical:
		return "cat"
	case Binary:
		return "bin"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "num":
		return Numeric, nil
	case "ord":
		return Ordinal, nil
	case "cat":
		return Categorical, nil
	case "bin":
		return Binary, nil
	default:
		return 0, fmt.Errorf("dataset: unknown attribute kind %q", s)
	}
}

// Column is one description attribute. For Numeric and Ordinal columns
// Values holds the raw numbers; for Categorical and Binary columns it
// holds level indices into Levels.
type Column struct {
	Name   string
	Kind   Kind
	Values []float64
	Levels []string // nil unless Categorical/Binary
}

// IsDiscrete reports whether the column uses equality conditions.
func (c *Column) IsDiscrete() bool { return c.Kind == Categorical || c.Kind == Binary }

// LevelIndex returns the index of the named level, or -1.
func (c *Column) LevelIndex(level string) int {
	for i, l := range c.Levels {
		if l == level {
			return i
		}
	}
	return -1
}

// FormatValue renders row i's value for display.
func (c *Column) FormatValue(i int) string {
	if c.IsDiscrete() {
		li := int(c.Values[i])
		if li >= 0 && li < len(c.Levels) {
			return c.Levels[li]
		}
		return "?"
	}
	return strconv.FormatFloat(c.Values[i], 'g', 6, 64)
}

// Dataset bundles the description attributes with the real-valued target
// matrix Y (n rows × dy columns).
type Dataset struct {
	Name        string
	Descriptors []Column
	TargetNames []string
	Y           *mat.Dense
}

// N returns the number of data points.
func (d *Dataset) N() int { return d.Y.R }

// Dy returns the number of target attributes.
func (d *Dataset) Dy() int { return d.Y.C }

// Dx returns the number of description attributes.
func (d *Dataset) Dx() int { return len(d.Descriptors) }

// Descriptor returns the column with the given name, or nil.
func (d *Dataset) Descriptor(name string) *Column {
	for i := range d.Descriptors {
		if d.Descriptors[i].Name == name {
			return &d.Descriptors[i]
		}
	}
	return nil
}

// Validate checks internal consistency: equal column lengths, level
// indices in range, finite target values.
func (d *Dataset) Validate() error {
	n := d.N()
	if len(d.TargetNames) != d.Dy() {
		return fmt.Errorf("dataset %q: %d target names for %d target columns",
			d.Name, len(d.TargetNames), d.Dy())
	}
	for i := range d.Descriptors {
		c := &d.Descriptors[i]
		if len(c.Values) != n {
			return fmt.Errorf("dataset %q: column %q has %d values, want %d",
				d.Name, c.Name, len(c.Values), n)
		}
		if c.IsDiscrete() {
			if len(c.Levels) == 0 {
				return fmt.Errorf("dataset %q: discrete column %q has no levels", d.Name, c.Name)
			}
			if c.Kind == Binary && len(c.Levels) != 2 {
				return fmt.Errorf("dataset %q: binary column %q has %d levels",
					d.Name, c.Name, len(c.Levels))
			}
			for r, v := range c.Values {
				li := int(v)
				if float64(li) != v || li < 0 || li >= len(c.Levels) {
					return fmt.Errorf("dataset %q: column %q row %d: invalid level index %v",
						d.Name, c.Name, r, v)
				}
			}
		} else {
			for r, v := range c.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("dataset %q: column %q row %d: non-finite value",
						d.Name, c.Name, r)
				}
			}
		}
	}
	for i, v := range d.Y.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dataset %q: target cell %d non-finite", d.Name, i)
		}
	}
	return nil
}

// TargetColumn returns target column j as a fresh slice.
func (d *Dataset) TargetColumn(j int) []float64 {
	out := make([]float64, d.N())
	for i := range out {
		out[i] = d.Y.At(i, j)
	}
	return out
}

// TargetIndex returns the index of the named target, or -1.
func (d *Dataset) TargetIndex(name string) int {
	for i, t := range d.TargetNames {
		if t == name {
			return i
		}
	}
	return -1
}

// SplitPoints returns the thresholds the search uses for a numeric or
// ordinal column: k interior percentiles (k=4 gives the paper's 1/5–4/5
// percentile split points), deduplicated and sorted.
func SplitPoints(c *Column, k int) []float64 {
	if c.IsDiscrete() {
		return nil
	}
	if k < 1 {
		panic("dataset: SplitPoints needs k >= 1")
	}
	ps := make([]float64, k)
	for i := 1; i <= k; i++ {
		ps[i-1] = 100 * float64(i) / float64(k+1)
	}
	// Partial selection instead of a full sort: identical values (same
	// order statistics, same interpolation), a fraction of the cost — a
	// language build runs this over every numeric column.
	out := stats.Percentiles(c.Values, ps)
	sort.Float64s(out)
	// Deduplicate near-equal thresholds (constant or heavily tied columns).
	dedup := out[:0]
	for _, v := range out {
		if len(dedup) == 0 || v > dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// WriteCSV serializes the dataset. The header cell format is
// "name:role:kind" with role ∈ {d, t}; target columns always have kind
// num. Discrete descriptor cells are written as their level strings.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.Dx()+d.Dy())
	for i := range d.Descriptors {
		c := &d.Descriptors[i]
		header = append(header, fmt.Sprintf("%s:d:%s", c.Name, c.Kind))
	}
	for _, t := range d.TargetNames {
		header = append(header, fmt.Sprintf("%s:t:num", t))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for r := 0; r < d.N(); r++ {
		k := 0
		for i := range d.Descriptors {
			c := &d.Descriptors[i]
			if c.IsDiscrete() {
				row[k] = c.Levels[int(c.Values[r])]
			} else {
				row[k] = strconv.FormatFloat(c.Values[r], 'g', 17, 64)
			}
			k++
		}
		for j := 0; j < d.Dy(); j++ {
			row[k] = strconv.FormatFloat(d.Y.At(r, j), 'g', 17, 64)
			k++
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("dataset: csv has no header")
	}
	header := records[0]
	rows := records[1:]
	n := len(rows)

	type colSpec struct {
		name   string
		role   string
		kind   Kind
		column int
	}
	var specs []colSpec
	for i, h := range header {
		parts := strings.Split(h, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("dataset: header cell %q is not name:role:kind", h)
		}
		kind, err := parseKind(parts[2])
		if err != nil {
			return nil, err
		}
		if parts[1] != "d" && parts[1] != "t" {
			return nil, fmt.Errorf("dataset: header cell %q has unknown role %q", h, parts[1])
		}
		specs = append(specs, colSpec{name: parts[0], role: parts[1], kind: kind, column: i})
	}

	ds := &Dataset{}
	var targetCols []int
	for _, sp := range specs {
		if sp.role == "t" {
			ds.TargetNames = append(ds.TargetNames, sp.name)
			targetCols = append(targetCols, sp.column)
			continue
		}
		col := Column{Name: sp.name, Kind: sp.kind, Values: make([]float64, n)}
		if col.IsDiscrete() {
			levelIdx := map[string]int{}
			for r, rec := range rows {
				if sp.column >= len(rec) {
					return nil, fmt.Errorf("dataset: row %d too short", r+1)
				}
				cell := rec[sp.column]
				li, ok := levelIdx[cell]
				if !ok {
					li = len(col.Levels)
					levelIdx[cell] = li
					col.Levels = append(col.Levels, cell)
				}
				col.Values[r] = float64(li)
			}
			if sp.kind == Binary && len(col.Levels) > 2 {
				return nil, fmt.Errorf("dataset: binary column %q has %d levels",
					sp.name, len(col.Levels))
			}
			// A binary column whose data happens to contain one level still
			// needs two declared levels; synthesize the complement lazily.
			if sp.kind == Binary && len(col.Levels) == 1 {
				col.Levels = append(col.Levels, col.Levels[0]+"_other")
			}
		} else {
			for r, rec := range rows {
				if sp.column >= len(rec) {
					return nil, fmt.Errorf("dataset: row %d too short", r+1)
				}
				v, err := strconv.ParseFloat(rec[sp.column], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: row %d column %q: %w", r+1, sp.name, err)
				}
				col.Values[r] = v
			}
		}
		ds.Descriptors = append(ds.Descriptors, col)
	}

	ds.Y = mat.NewDense(n, len(targetCols))
	for r, rec := range rows {
		for j, ci := range targetCols {
			v, err := strconv.ParseFloat(rec[ci], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d target %d: %w", r+1, j, err)
			}
			ds.Y.Set(r, j, v)
		}
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
