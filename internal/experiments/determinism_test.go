package experiments

import (
	"reflect"
	"testing"

	"repro/internal/gen"
)

// The experiments must be fully deterministic: same seed, same results,
// independent of scheduling — EXPERIMENTS.md depends on it.

func TestFig2Deterministic(t *testing.T) {
	a, err := Fig2Synthetic(gen.SeedSynthetic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig2Synthetic(gen.SeedSynthetic)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig2Synthetic not deterministic")
	}
}

func TestTableIDeterministic(t *testing.T) {
	a, err := TableISynthetic(gen.SeedSynthetic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableISynthetic(gen.SeedSynthetic)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("TableISynthetic not deterministic")
	}
}

func TestFig78Deterministic(t *testing.T) {
	a, err := Fig78SocioEconomics(gen.SeedSocio)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig78SocioEconomics(gen.SeedSocio)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Intention != b[i].Intention || a[i].SpreadVariance != b[i].SpreadVariance {
			t.Fatalf("iteration %d differs between runs", i)
		}
	}
}
