package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/search"
	"repro/internal/stats"
)

// The mammals replica is memoized per seed: the generator is a pure
// function of its seed and this experiment treats the replica as
// read-only, so repeated regenerations (tests, benchmarks, a server
// rerunning the experiment) skip the costly generation — and, because
// the condition-language cache is keyed by dataset identity, the
// percentile splits and depth-1 statistics tables are reused too.
var (
	mammalsMu   sync.Mutex
	mammalsSeed int64
	mammalsMemo *gen.Mammals
)

func mammalsFor(seed int64) *gen.Mammals {
	mammalsMu.Lock()
	defer mammalsMu.Unlock()
	if mammalsMemo == nil || mammalsSeed != seed {
		mammalsMemo = gen.MammalsLike(seed)
		mammalsSeed = seed
	}
	return mammalsMemo
}

// MammalIteration is one iteration of the Figs. 4–6 experiment: a
// location pattern on the mammals replica, with its geographic footprint
// and the species that make it surprising.
type MammalIteration struct {
	Intention string
	Size      int
	SI, IC    float64
	// MeanLat/MeanLon summarize the geographic footprint of the
	// extension (the paper renders maps; we report the centroid and
	// latitude range).
	MeanLat, MeanLon float64
	LatLo, LatHi     float64
	// TopSpecies are the five most surprising species (Fig. 5): observed
	// vs expected presence rate with the 95% CI of the background model.
	TopSpecies []core.AttrExplanation
}

// Fig456Mammals runs three iterations of location-pattern mining on the
// mammals replica (spread patterns are skipped: the paper notes they are
// uninformative for binary targets, §III-B). quick shrinks the beam for
// tests.
func Fig456Mammals(seed int64, quick bool) ([]MammalIteration, error) {
	ma := mammalsFor(seed)
	sp := searchParams(search.Params{MaxDepth: 2, BeamWidth: 10})
	if quick {
		sp = searchParams(search.Params{MaxDepth: 1, BeamWidth: 5})
	}
	m, err := core.NewMiner(ma.DS, core.Config{Search: sp})
	if err != nil {
		return nil, err
	}
	var out []MammalIteration
	for iter := 0; iter < 3; iter++ {
		loc, _, err := m.MineLocation()
		if err != nil {
			return nil, err
		}
		var latW, lonW stats.Welford
		latLo, latHi := 91.0, -91.0
		loc.Extension.ForEach(func(i int) {
			latW.Add(ma.Lat[i])
			lonW.Add(ma.Lon[i])
			if ma.Lat[i] < latLo {
				latLo = ma.Lat[i]
			}
			if ma.Lat[i] > latHi {
				latHi = ma.Lat[i]
			}
		})
		expl, err := m.ExplainLocation(loc)
		if err != nil {
			return nil, err
		}
		if len(expl) > 5 {
			expl = expl[:5]
		}
		out = append(out, MammalIteration{
			Intention:  loc.Intention.Format(ma.DS),
			Size:       loc.Size(),
			SI:         loc.SI,
			IC:         loc.IC,
			MeanLat:    latW.Mean(),
			MeanLon:    lonW.Mean(),
			LatLo:      latLo,
			LatHi:      latHi,
			TopSpecies: expl,
		})
		if err := m.CommitLocation(loc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RenderFig456 formats the mammal iterations.
func RenderFig456(iters []MammalIteration) string {
	var b strings.Builder
	b.WriteString("Figs. 4–6 — mammals replica, top location pattern per iteration\n")
	for i, it := range iters {
		fmt.Fprintf(&b, "\niteration %d: %s\n", i+1, it.Intention)
		fmt.Fprintf(&b, "  size=%d SI=%.4g IC=%.4g  footprint: lat %.1f..%.1f (centroid %.1f°N, %.1f°E)\n",
			it.Size, it.SI, it.IC, it.LatLo, it.LatHi, it.MeanLat, it.MeanLon)
		t := &table{header: []string{"species", "observed", "expected", "95% CI"}}
		for _, e := range it.TopSpecies {
			t.add(e.Target, f3(e.Observed), f3(e.Expected),
				fmt.Sprintf("[%.3f, %.3f]", e.CI95Lo, e.CI95Hi))
		}
		b.WriteString(t.String())
	}
	return b.String()
}
