package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/search"
	"repro/internal/stats"
)

// WaterResult reproduces Figs. 9–10 on the water-quality replica: the
// top location pattern (a two-condition bioindicator rule with elevated
// oxygen-demand chemistry) and its full-dimensional spread pattern,
// whose variance along w is *larger* than the background expects.
type WaterResult struct {
	Intention string
	Size      int
	SI        float64
	// TopChems rank the chemistry targets by surprise (Fig. 10).
	TopChems []core.AttrExplanation
	// Spread pattern (Fig. 9): the naturally sparse direction w with its
	// dominant components, plus observed vs expected variance.
	W                []float64
	TopWeights       []WeightEntry
	SpreadVariance   float64
	ExpectedVariance float64
	SpreadSI         float64
	// CDF along w for the subgroup (projected data) on a fixed grid,
	// against the updated model's CDF (Fig. 9b).
	CDFGrid  []float64
	DataCDF  []float64
	ModelCDF []float64
}

// WeightEntry names one component of the spread direction.
type WeightEntry struct {
	Target string
	Weight float64
}

// Fig910Water mines the top location pattern of the water replica, then
// the unconstrained spread direction for it.
func Fig910Water(seed int64) (*WaterResult, error) {
	wa := gen.WaterQualityLike(seed)
	m, err := core.NewMiner(wa.DS, core.Config{
		Search: searchParams(search.Params{MaxDepth: 2, BeamWidth: 20}),
	})
	if err != nil {
		return nil, err
	}
	loc, _, err := m.MineLocation()
	if err != nil {
		return nil, err
	}
	res := &WaterResult{
		Intention: loc.Intention.Format(wa.DS),
		Size:      loc.Size(),
		SI:        loc.SI,
	}
	expl, err := m.ExplainLocation(loc)
	if err != nil {
		return nil, err
	}
	if len(expl) > 5 {
		expl = expl[:5]
	}
	res.TopChems = expl

	if err := m.CommitLocation(loc); err != nil {
		return nil, err
	}
	sp, err := m.MineSpread(loc)
	if err != nil {
		return nil, err
	}
	res.W = sp.W
	res.SpreadVariance = sp.Variance
	res.SpreadSI = sp.SI
	exp, err := m.Model.ExpectedSpread(sp.Extension, sp.W, sp.Center)
	if err != nil {
		return nil, err
	}
	res.ExpectedVariance = exp

	// Dominant |w| components (Fig. 9c shows high weights on bod/kmno4).
	for j, w := range sp.W {
		res.TopWeights = append(res.TopWeights, WeightEntry{
			Target: wa.DS.TargetNames[j], Weight: w,
		})
	}
	sort.Slice(res.TopWeights, func(i, j int) bool {
		return abs(res.TopWeights[i].Weight) > abs(res.TopWeights[j].Weight)
	})
	if len(res.TopWeights) > 5 {
		res.TopWeights = res.TopWeights[:5]
	}

	// CDF along w (Fig. 9b): empirical CDF of the projected subgroup
	// against the updated background model's Gaussian mixture CDF.
	var proj []float64
	loc.Extension.ForEach(func(i int) {
		row := wa.DS.Y.Row(i)
		var p float64
		for j, v := range row {
			p += (v - sp.Center[j]) * sp.W[j]
		}
		proj = append(proj, p)
	})
	if err := m.CommitSpread(sp); err != nil {
		return nil, err
	}
	lo := stats.Percentile(proj, 1) - 1
	hi := stats.Percentile(proj, 99) + 1
	const gridN = 41
	res.CDFGrid = make([]float64, gridN)
	res.DataCDF = make([]float64, gridN)
	res.ModelCDF = make([]float64, gridN)
	// Model CDF: mixture over the points' (µᵢ, Σᵢ) of N(wᵀ(µᵢ−c), wᵀΣᵢw).
	type comp struct {
		mu, sd, wgt float64
	}
	var comps []comp
	total := float64(loc.Size())
	for _, g := range m.Model.Groups() {
		cnt := g.Members.IntersectCount(loc.Extension)
		if cnt == 0 {
			continue
		}
		var mu float64
		for j := range sp.W {
			mu += (g.Mu[j] - sp.Center[j]) * sp.W[j]
		}
		comps = append(comps, comp{
			mu:  mu,
			sd:  math.Sqrt(g.Sigma.QuadForm(sp.W)),
			wgt: float64(cnt) / total,
		})
	}
	for i := 0; i < gridN; i++ {
		x := lo + (hi-lo)*float64(i)/float64(gridN-1)
		res.CDFGrid[i] = x
		res.DataCDF[i] = stats.ECDF(proj, x)
		var c float64
		for _, cm := range comps {
			c += cm.wgt * stats.NormalCDF(x, cm.mu, cm.sd)
		}
		res.ModelCDF[i] = c
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render formats the result.
func (r *WaterResult) Render() string {
	var b strings.Builder
	b.WriteString("Figs. 9–10 — water-quality replica\n")
	fmt.Fprintf(&b, "top pattern: %s  (size=%d, SI=%.4g)\n", r.Intention, r.Size, r.SI)
	t := &table{header: []string{"parameter", "observed", "expected", "95% CI"}}
	for _, e := range r.TopChems {
		t.add(e.Target, f2(e.Observed), f2(e.Expected),
			fmt.Sprintf("[%.2f, %.2f]", e.CI95Lo, e.CI95Hi))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "spread: observed var %.3f vs expected %.3f (SI=%.4g)\n",
		r.SpreadVariance, r.ExpectedVariance, r.SpreadSI)
	b.WriteString("dominant |w| components:\n")
	wt := &table{header: []string{"target", "weight"}}
	for _, w := range r.TopWeights {
		wt.add(w.Target, f3(w.Weight))
	}
	b.WriteString(wt.String())
	b.WriteString("CDF along w (subgroup vs updated model):\n")
	ct := &table{header: []string{"x", "data", "model"}}
	step := len(r.CDFGrid) / 10
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.CDFGrid); i += step {
		ct.add(f2(r.CDFGrid[i]), f3(r.DataCDF[i]), f3(r.ModelCDF[i]))
	}
	b.WriteString(ct.String())
	return b.String()
}
