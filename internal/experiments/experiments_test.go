package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestFig1CrimeQuick(t *testing.T) {
	r, err := Fig1Crime(gen.SeedCrime, true)
	if err != nil {
		t.Fatal(err)
	}
	// Shape checks against the paper: ~20% coverage, subgroup mean about
	// twice the overall mean, positive SI.
	if r.Coverage < 0.1 || r.Coverage > 0.35 {
		t.Fatalf("coverage = %v", r.Coverage)
	}
	if r.SubgroupMean < r.OverallMean+0.15 {
		t.Fatalf("subgroup mean %v vs overall %v: shift too small",
			r.SubgroupMean, r.OverallMean)
	}
	if r.SI <= 0 {
		t.Fatalf("SI = %v", r.SI)
	}
	if len(r.GridX) != len(r.FullDensity) || len(r.GridX) != len(r.CoverDensity) {
		t.Fatal("grid lengths differ")
	}
	// Cover density is subgroup density scaled down by coverage.
	for i := range r.CoverDensity {
		if r.CoverDensity[i] > r.SubgroupDensity[i]+1e-12 {
			t.Fatal("cover density exceeds subgroup density")
		}
	}
	if !strings.Contains(r.Render(), "Fig. 1") {
		t.Fatal("render missing title")
	}
}

func TestFig2SyntheticIterations(t *testing.T) {
	iters, err := Fig2Synthetic(gen.SeedSynthetic)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 3 {
		t.Fatalf("iterations = %d", len(iters))
	}
	seen := map[int]bool{}
	for i, it := range iters {
		if it.ClusterMatched < 0 {
			t.Fatalf("iteration %d: no embedded cluster matched (%s)", i+1, it.Intention)
		}
		if seen[it.ClusterMatched] {
			t.Fatalf("cluster %d found twice", it.ClusterMatched)
		}
		seen[it.ClusterMatched] = true
		if it.AxisOverlap < 0.9 {
			t.Fatalf("iteration %d: axis overlap %v", i+1, it.AxisOverlap)
		}
		// Unit direction.
		n := math.Hypot(it.W[0], it.W[1])
		if math.Abs(n-1) > 1e-6 {
			t.Fatalf("w norm = %v", n)
		}
	}
	if !strings.Contains(RenderFig2(iters), "iter") {
		t.Fatal("render broken")
	}
}

func TestTableISynthetic(t *testing.T) {
	rows, err := TableISynthetic(gen.SeedSynthetic)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.SI) != 4 {
			t.Fatalf("row %q has %d SI entries", r.Intention, len(r.SI))
		}
	}
	// The table's key property: the top pattern's SI collapses from
	// iteration 2 onward and stays low.
	top := rows[0]
	if top.SI[0] < 10 {
		t.Fatalf("top SI iteration 1 = %v", top.SI[0])
	}
	for k := 1; k < 4; k++ {
		if top.SI[k] > 1 {
			t.Fatalf("top SI iteration %d = %v, want collapse", k+1, top.SI[k])
		}
	}
	// By iteration 4 all three embedded clusters are committed, so every
	// tracked pattern that equals one of them must have collapsed.
	collapsed := 0
	for _, r := range rows {
		if r.SI[3] < 1 {
			collapsed++
		}
	}
	if collapsed < 6 {
		t.Fatalf("only %d/%d tracked patterns collapsed by iteration 4", collapsed, len(rows))
	}
	if !strings.Contains(RenderTableI(rows), "intention") {
		t.Fatal("render broken")
	}
}

func TestFig3NoiseQuick(t *testing.T) {
	points, err := Fig3Noise(gen.SeedSynthetic, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("points = %d", len(points))
	}
	// At zero distortion the true descriptions score far above baseline.
	p0 := points[0]
	for a := 0; a < 3; a++ {
		if p0.SI[a] < 10*math.Max(p0.Baseline, 1) {
			t.Fatalf("clean SI[%d] = %v vs baseline %v", a, p0.SI[a], p0.Baseline)
		}
	}
	// SI degrades with distortion: the heaviest noise level scores far
	// below the clean level.
	last := points[len(points)-1]
	for a := 0; a < 3; a++ {
		if last.SI[a] > p0.SI[a]/2 {
			t.Fatalf("SI[%d] did not degrade: %v -> %v", a, p0.SI[a], last.SI[a])
		}
	}
	if !strings.Contains(RenderFig3(points), "distortion") {
		t.Fatal("render broken")
	}
}

func TestFig456MammalsQuick(t *testing.T) {
	iters, err := Fig456Mammals(gen.SeedMammals, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 3 {
		t.Fatalf("iterations = %d", len(iters))
	}
	for i, it := range iters {
		if it.Size == 0 {
			t.Fatalf("iteration %d empty", i+1)
		}
		if len(it.TopSpecies) != 5 {
			t.Fatalf("iteration %d: top species = %d", i+1, len(it.TopSpecies))
		}
		// Explanations must be genuinely surprising: observed outside CI
		// for the top species.
		e := it.TopSpecies[0]
		if e.Observed >= e.CI95Lo && e.Observed <= e.CI95Hi {
			t.Fatalf("iteration %d: top species not outside its CI", i+1)
		}
	}
	// Iterations must find different subgroups (non-redundancy).
	if iters[0].Intention == iters[1].Intention {
		t.Fatal("iterations 1 and 2 found the same pattern")
	}
	if !strings.Contains(RenderFig456(iters), "species") {
		t.Fatal("render broken")
	}
}

func TestFig78SocioEconomics(t *testing.T) {
	iters, err := Fig78SocioEconomics(gen.SeedSocio)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 3 {
		t.Fatalf("iterations = %d", len(iters))
	}
	first := iters[0]
	// The paper's top pattern covers mainly East Germany via a low
	// children share; our replica must reproduce that.
	if first.EastShare < 0.5 {
		t.Fatalf("first pattern east share = %v", first.EastShare)
	}
	if !strings.Contains(first.Intention, "children_pop") {
		t.Fatalf("first intention = %q", first.Intention)
	}
	// LEFT must be the most surprising target in iteration 1 (Fig. 8a).
	if first.Explanations[0].Target != "LEFT_2009" {
		t.Fatalf("most surprising target = %s", first.Explanations[0].Target)
	}
	// 2-sparse spread with smaller-than-expected variance (Fig. 8).
	nonzero := 0
	for _, w := range first.W {
		if w != 0 {
			nonzero++
		}
	}
	if nonzero > 2 {
		t.Fatalf("spread w not 2-sparse: %v", first.W)
	}
	if first.SpreadVariance >= first.ExpectedVariance {
		t.Fatalf("variance %v not below expectation %v",
			first.SpreadVariance, first.ExpectedVariance)
	}
	if !strings.Contains(RenderFig78(iters), "spread") {
		t.Fatal("render broken")
	}
}

func TestFig910Water(t *testing.T) {
	r, err := Fig910Water(gen.SeedWater)
	if err != nil {
		t.Fatal(err)
	}
	// The top pattern selects the polluted tail via bioindicators with a
	// plausible size (the paper's rule covers 91 records).
	if r.Size < 30 || r.Size > 400 {
		t.Fatalf("size = %d", r.Size)
	}
	// Oxygen-demand chemistry dominates the explanation.
	foundOxy := false
	for _, e := range r.TopChems {
		if e.Target == "bod" || e.Target == "kmno4" || e.Target == "k2cr2o7" {
			foundOxy = true
		}
	}
	if !foundOxy {
		t.Fatalf("no oxygen-demand parameter in top chems: %+v", r.TopChems)
	}
	// The spread pattern has larger-than-expected variance (Fig. 9).
	if r.SpreadVariance <= r.ExpectedVariance {
		t.Fatalf("variance %v not above expectation %v",
			r.SpreadVariance, r.ExpectedVariance)
	}
	// CDFs are monotone and end near 1.
	for i := 1; i < len(r.DataCDF); i++ {
		if r.DataCDF[i] < r.DataCDF[i-1] || r.ModelCDF[i] < r.ModelCDF[i-1]-1e-9 {
			t.Fatal("CDF not monotone")
		}
	}
	if r.DataCDF[len(r.DataCDF)-1] < 0.9 {
		t.Fatalf("data CDF ends at %v", r.DataCDF[len(r.DataCDF)-1])
	}
	if !strings.Contains(r.Render(), "dominant") {
		t.Fatal("render broken")
	}
}

func TestTableIIRuntimeQuick(t *testing.T) {
	r, err := TableIIRuntime(3, false) // skip mammals in the quick test
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 3 {
		t.Fatalf("names = %v", r.Names)
	}
	for i := range r.Names {
		if r.Init[i] <= 0 {
			t.Fatalf("%s init time = %v", r.Names[i], r.Init[i])
		}
		if len(r.Location[i]) == 0 {
			t.Fatalf("%s has no location timings", r.Names[i])
		}
		for _, v := range r.Location[i] {
			if v <= 0 {
				t.Fatalf("%s non-positive location timing", r.Names[i])
			}
		}
		if r.Spread[i] == nil {
			t.Fatalf("%s missing spread timings", r.Names[i])
		}
	}
	if !strings.Contains(r.Render(), "Table II") {
		t.Fatal("render broken")
	}
}
