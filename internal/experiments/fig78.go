package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/search"
	"repro/internal/spreadopt"
)

// SocioIteration is one iteration of the Figs. 7–8 experiment on the
// socio-economics replica: a location pattern plus its 2-sparse spread
// pattern.
type SocioIteration struct {
	Intention string
	Size      int
	SI        float64
	// EastShare is the fraction of covered districts in the eastern
	// regime (the paper's top pattern covers mainly East Germany).
	EastShare float64
	// Explanations rank the five vote-share targets (Fig. 8a).
	Explanations []core.AttrExplanation
	// Spread pattern (Fig. 8b–c): the 2-sparse direction, the two active
	// target names, the observed variance along w and the variance the
	// background model expected before the commit.
	W                []float64
	ActiveTargets    []string
	SpreadVariance   float64
	ExpectedVariance float64
	SpreadSI         float64
}

// Fig78SocioEconomics runs three two-step iterations on the
// socio-economics replica with the paper's 2-sparsity constraint on w.
func Fig78SocioEconomics(seed int64) ([]SocioIteration, error) {
	so := gen.SocioEconLike(seed)
	m, err := core.NewMiner(so.DS, core.Config{
		Search: searchParams(search.Params{MaxDepth: 2}),
		Spread: spreadopt.Params{PairSparse: true},
	})
	if err != nil {
		return nil, err
	}
	var out []SocioIteration
	for iter := 0; iter < 3; iter++ {
		loc, _, err := m.MineLocation()
		if err != nil {
			return nil, err
		}
		it := SocioIteration{
			Intention: loc.Intention.Format(so.DS),
			Size:      loc.Size(),
			SI:        loc.SI,
		}
		east := 0
		loc.Extension.ForEach(func(i int) {
			if so.Regime[i] == gen.RegimeEast {
				east++
			}
		})
		it.EastShare = float64(east) / float64(loc.Size())
		expl, err := m.ExplainLocation(loc)
		if err != nil {
			return nil, err
		}
		it.Explanations = expl

		if err := m.CommitLocation(loc); err != nil {
			return nil, err
		}
		// Expected variance along w is computed after the location commit
		// but before the spread commit.
		sp, err := m.MineSpread(loc)
		if err != nil {
			return nil, err
		}
		it.W = sp.W
		for j, w := range sp.W {
			if w != 0 {
				it.ActiveTargets = append(it.ActiveTargets, so.DS.TargetNames[j])
			}
		}
		exp, err := m.Model.ExpectedSpread(sp.Extension, sp.W, sp.Center)
		if err != nil {
			return nil, err
		}
		it.SpreadVariance = sp.Variance
		it.ExpectedVariance = exp
		it.SpreadSI = sp.SI
		if err := m.CommitSpread(sp); err != nil {
			return nil, err
		}
		out = append(out, it)
	}
	return out, nil
}

// RenderFig78 formats the socio-economics iterations.
func RenderFig78(iters []SocioIteration) string {
	var b strings.Builder
	b.WriteString("Figs. 7–8 — socio-economics replica, location + 2-sparse spread per iteration\n")
	for i, it := range iters {
		fmt.Fprintf(&b, "\niteration %d: %s  (size=%d, SI=%.4g, east share %.0f%%)\n",
			i+1, it.Intention, it.Size, it.SI, 100*it.EastShare)
		t := &table{header: []string{"party", "observed", "expected", "95% CI"}}
		for _, e := range it.Explanations {
			t.add(e.Target, f2(e.Observed), f2(e.Expected),
				fmt.Sprintf("[%.2f, %.2f]", e.CI95Lo, e.CI95Hi))
		}
		b.WriteString(t.String())
		fmt.Fprintf(&b, "spread: w over (%s) = %s, observed var %.3f vs expected %.3f (SI=%.4g)\n",
			strings.Join(it.ActiveTargets, ", "), fmtVec(it.W), it.SpreadVariance,
			it.ExpectedVariance, it.SpreadSI)
	}
	return b.String()
}

func fmtVec(w []float64) string {
	parts := make([]string, 0, len(w))
	for _, v := range w {
		parts = append(parts, fmt.Sprintf("%.4f", v))
	}
	return "(" + strings.Join(parts, ",") + ")"
}
