package experiments

import "repro/internal/search"

// Parallelism overrides the candidate-evaluation worker count of every
// beam search run by the experiment drivers (0 = all cores). Set from
// cmd/experiments' -parallel flag; useful to pin experiment runtimes to
// a fixed core budget so Table II timings are comparable across runs.
var Parallelism int

// searchParams completes an experiment's search settings with the
// package-level engine options.
func searchParams(p search.Params) search.Params {
	p.Parallelism = Parallelism
	return p
}
