// Package experiments contains one driver per table and figure of the
// paper's evaluation (§III). Each driver returns structured results and
// renders them as a text table, so the same code backs the
// cmd/experiments runner, the root-level benchmarks and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
)

// table renders rows of cells as an aligned text table with a header.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4g", v) }
