package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/si"
)

// tableIGamma is the description-length weight that reproduces the
// published Table I numbers (the text says γ=0.1 but the table is only
// internally consistent with γ=0.5; see DESIGN.md §2).
var tableIGamma = si.Params{Gamma: 0.5, Eta: 1}

func syntheticMiner(seed int64) (*core.Miner, *gen.Synthetic, error) {
	syn := gen.Synthetic620(seed)
	m, err := core.NewMiner(syn.DS, core.Config{
		SI:     tableIGamma,
		Search: searchParams(search.Params{MaxDepth: 3}),
	})
	return m, syn, err
}

// Fig2Iteration is one iteration of the Fig. 2 experiment: the top
// pattern (location + spread) mined from the synthetic data.
type Fig2Iteration struct {
	Intention      string
	Size           int
	ClusterMatched int // which embedded cluster the extension equals (-1 = none)
	LocationSI     float64
	Center         [2]float64
	W              [2]float64
	SpreadVariance float64
	SpreadSI       float64
	// AxisOverlap is |⟨w, planted main axis⟩| ∨ |⟨w, planted cross axis⟩|:
	// 1 means the direction recovered a planted principal axis exactly.
	AxisOverlap float64
}

// Fig2Synthetic runs the two-step mining process for three iterations on
// the synthetic data, as in §III-A, committing the top location and
// spread pattern each time.
func Fig2Synthetic(seed int64) ([]Fig2Iteration, error) {
	m, syn, err := syntheticMiner(seed)
	if err != nil {
		return nil, err
	}
	var out []Fig2Iteration
	for iter := 0; iter < 3; iter++ {
		step, err := m.Step(true)
		if err != nil {
			return nil, err
		}
		loc, sp := step.Location, step.Spread
		it := Fig2Iteration{
			Intention:      loc.Intention.Format(m.DS),
			Size:           loc.Size(),
			ClusterMatched: matchCluster(syn, loc),
			LocationSI:     loc.SI,
			Center:         [2]float64{loc.Mean[0], loc.Mean[1]},
			W:              [2]float64{sp.W[0], sp.W[1]},
			SpreadVariance: sp.Variance,
			SpreadSI:       sp.SI,
		}
		if it.ClusterMatched >= 0 {
			main := syn.Directions[it.ClusterMatched]
			cross := []float64{-main[1], main[0]}
			it.AxisOverlap = math.Max(
				math.Abs(sp.W[0]*main[0]+sp.W[1]*main[1]),
				math.Abs(sp.W[0]*cross[0]+sp.W[1]*cross[1]))
		}
		out = append(out, it)
	}
	return out, nil
}

func matchCluster(syn *gen.Synthetic, loc *pattern.Location) int {
	for c, idx := range syn.Clusters {
		if len(idx) != loc.Size() {
			continue
		}
		all := true
		for _, i := range idx {
			if !loc.Extension.Contains(i) {
				all = false
				break
			}
		}
		if all {
			return c
		}
	}
	return -1
}

// RenderFig2 formats the iterations.
func RenderFig2(iters []Fig2Iteration) string {
	var b strings.Builder
	b.WriteString("Fig. 2 — synthetic data, top pattern per iteration\n")
	t := &table{header: []string{"iter", "intention", "size", "cluster",
		"loc SI", "w", "var", "axis overlap"}}
	for i, it := range iters {
		t.add(fmt.Sprint(i+1), it.Intention, fmt.Sprint(it.Size),
			fmt.Sprint(it.ClusterMatched), f2(it.LocationSI),
			fmt.Sprintf("(%.3f,%.3f)", it.W[0], it.W[1]),
			f3(it.SpreadVariance), f3(it.AxisOverlap))
	}
	b.WriteString(t.String())
	return b.String()
}

// TableIRow tracks the SI of one iteration-1 pattern across iterations.
type TableIRow struct {
	Intention string
	Size      int
	SI        []float64 // SI at iteration 1..k
}

// TableISynthetic reproduces Table I: the top-10 location patterns of
// the first iteration, re-scored under the background model of each of
// the four iterations (the model is updated with the top location and
// spread pattern after iterations 1–3).
func TableISynthetic(seed int64) ([]TableIRow, error) {
	m, _, err := syntheticMiner(seed)
	if err != nil {
		return nil, err
	}
	loc, log, err := m.MineLocation()
	if err != nil {
		return nil, err
	}
	n := 10
	if len(log.Patterns) < n {
		n = len(log.Patterns)
	}
	rows := make([]TableIRow, n)
	tracked := make([]pattern.Intention, n)
	for i := 0; i < n; i++ {
		f := log.Patterns[i]
		rows[i] = TableIRow{
			Intention: f.Intention.Format(m.DS),
			Size:      f.Size,
			SI:        []float64{f.SI},
		}
		tracked[i] = f.Intention
	}

	for iter := 2; iter <= 4; iter++ {
		// Commit the current iteration's top pattern (two-step, as §III-A).
		if err := m.CommitLocation(loc); err != nil {
			return nil, err
		}
		sp, err := m.MineSpread(loc)
		if err != nil {
			return nil, err
		}
		if err := m.CommitSpread(sp); err != nil {
			return nil, err
		}
		// Re-score all tracked intentions under the updated model.
		for i := range rows {
			re, err := m.ScoreLocationIntention(tracked[i])
			if err != nil {
				return nil, err
			}
			rows[i].SI = append(rows[i].SI, re.SI)
		}
		if iter < 4 {
			loc, _, err = m.MineLocation()
			if err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// RenderTableI formats the rows like the paper's Table I.
func RenderTableI(rows []TableIRow) string {
	var b strings.Builder
	b.WriteString("Table I — change in SI for the top patterns over four iterations (γ=0.5)\n")
	t := &table{header: []string{"intention", "size", "SI iter1", "iter2", "iter3", "iter4"}}
	for _, r := range rows {
		cells := []string{r.Intention, fmt.Sprint(r.Size)}
		for _, s := range r.SI {
			cells = append(cells, f2(s))
		}
		t.add(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig3Point is one noise level of the Fig. 3 robustness experiment.
type Fig3Point struct {
	Distortion float64
	// SI of the subgroup induced by each corrupted true description
	// (attributes a3, a4, a5), averaged over repeats.
	SI [3]float64
	// Baseline is the mean SI of random subgroups of matched size.
	Baseline float64
}

// Fig3Noise corrupts the binary descriptors with increasing flip
// probability and reports how the SI of the three true descriptions
// degrades, against a random-subgroup baseline (Fig. 3 of the paper).
func Fig3Noise(seed int64, repeats int) ([]Fig3Point, error) {
	if repeats <= 0 {
		repeats = 3
	}
	syn := gen.Synthetic620(seed)
	m, err := core.NewMiner(syn.DS, core.Config{
		SI:     tableIGamma,
		Search: searchParams(search.Params{}),
	})
	if err != nil {
		return nil, err
	}
	var out []Fig3Point
	for _, p := range []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35} {
		pt := Fig3Point{Distortion: p}
		var sizeSum, sizeN int
		for rep := 0; rep < repeats; rep++ {
			noisy := gen.CorruptDescriptors(syn.DS, p, seed+int64(1000*p)+int64(rep))
			for a := 0; a < 3; a++ {
				in := pattern.Intention{{Attr: a, Op: pattern.EQ, Level: 1}}
				ext := in.Extension(noisy)
				if ext.Count() == 0 {
					continue
				}
				yhat := pattern.SubgroupMean(syn.DS.Y, ext)
				s, _, err := si.LocationSI(m.Model, ext, yhat, 1, tableIGamma)
				if err != nil {
					continue
				}
				pt.SI[a] += s / float64(repeats)
				sizeSum += ext.Count()
				sizeN++
			}
		}
		size := 40
		if sizeN > 0 {
			size = sizeSum / sizeN
		}
		pt.Baseline = baseline.RandomSubgroupSI(m.Model, syn.DS.Y, size, 20,
			tableIGamma, seed+7)
		out = append(out, pt)
	}
	return out, nil
}

// RenderFig3 formats the noise sweep.
func RenderFig3(points []Fig3Point) string {
	var b strings.Builder
	b.WriteString("Fig. 3 — SI of the true descriptions under descriptor noise\n")
	t := &table{header: []string{"distortion", "SI a3", "SI a4", "SI a5", "baseline"}}
	for _, p := range points {
		t.add(f2(p.Distortion), f2(p.SI[0]), f2(p.SI[1]), f2(p.SI[2]), f2(p.Baseline))
	}
	b.WriteString(t.String())
	return b.String()
}
