package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/search"
	"repro/internal/stats"
)

// The crime replica is memoized per seed, like the mammals replica in
// fig456.go: generation is a pure function of the seed and Fig1Crime
// only reads the dataset, so reruns skip the generation and reuse the
// cached condition language.
var (
	crimeMu   sync.Mutex
	crimeSeed int64
	crimeMemo *gen.Crime
)

func crimeFor(seed int64) *gen.Crime {
	crimeMu.Lock()
	defer crimeMu.Unlock()
	if crimeMemo == nil || crimeSeed != seed {
		crimeMemo = gen.CrimeLike(seed)
		crimeSeed = seed
	}
	return crimeMemo
}

// Fig1Result reproduces Fig. 1: the distribution of the crime-rate
// target over the full data, the part covered by the top subgroup, and
// the distribution within the subgroup.
type Fig1Result struct {
	Intention    string
	Coverage     float64 // fraction of rows covered (paper: 0.205)
	SubgroupMean float64 // paper: 0.53
	OverallMean  float64 // paper: 0.24
	SI, IC       float64

	// Density curves on a shared grid over [0,1].
	GridX           []float64
	FullDensity     []float64
	SubgroupDensity []float64
	// CoverDensity is the subgroup density scaled by coverage: the "part
	// covered by the subgroup" area of the figure.
	CoverDensity []float64
}

// Fig1Crime mines the top location pattern of the crime replica and
// computes the three density curves. quick restricts the search to
// 1-condition patterns and coarsens the KDE grid (used by tests).
func Fig1Crime(seed int64, quick bool) (*Fig1Result, error) {
	cr := crimeFor(seed)
	depth, gridN := 3, 101
	if quick {
		depth, gridN = 1, 21
	}
	m, err := core.NewMiner(cr.DS, core.Config{
		Search: searchParams(search.Params{MaxDepth: depth, BeamWidth: 20}),
	})
	if err != nil {
		return nil, err
	}
	loc, _, err := m.MineLocation()
	if err != nil {
		return nil, err
	}

	full := cr.DS.TargetColumn(0)
	var sub []float64
	loc.Extension.ForEach(func(i int) { sub = append(sub, full[i]) })

	res := &Fig1Result{
		Intention:    loc.Intention.Format(cr.DS),
		Coverage:     float64(loc.Size()) / float64(cr.DS.N()),
		SubgroupMean: stats.Mean(sub),
		OverallMean:  stats.Mean(full),
		SI:           loc.SI,
		IC:           loc.IC,
	}
	kFull := stats.NewKDE(full, 0)
	kSub := stats.NewKDE(sub, 0)
	res.GridX, res.FullDensity = kFull.Grid(0, 1, gridN)
	_, res.SubgroupDensity = kSub.Grid(0, 1, gridN)
	res.CoverDensity = make([]float64, gridN)
	for i, d := range res.SubgroupDensity {
		res.CoverDensity[i] = d * res.Coverage
	}
	return res, nil
}

// Render formats the result as text, including an ASCII sketch of the
// density curves.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — crime-rate distribution vs top subgroup\n")
	fmt.Fprintf(&b, "top pattern: %s\n", r.Intention)
	fmt.Fprintf(&b, "coverage %.1f%% (paper 20.5%%), subgroup mean %.2f vs overall %.2f (paper 0.53 vs 0.24), SI=%.4g\n\n",
		100*r.Coverage, r.SubgroupMean, r.OverallMean, r.SI)

	t := &table{header: []string{"crime", "full", "cover", "subgroup"}}
	step := len(r.GridX) / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.GridX); i += step {
		t.add(f2(r.GridX[i]), f3(r.FullDensity[i]), f3(r.CoverDensity[i]), f3(r.SubgroupDensity[i]))
	}
	b.WriteString(t.String())
	return b.String()
}
