package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/stats"
)

// TableIIDataset names one column group of Table II.
type TableIIDataset struct {
	Name string // GSE, WQ, Cr, Ma
	DS   *dataset.Dataset
}

// TableIIDatasets builds the four datasets with the paper's dimensions:
// German socio-economics (412×13×5), water quality (1060×14×16), crime
// (1994×122×1) and mammals (2220×67×124).
func TableIIDatasets() []TableIIDataset {
	return tableIIDatasets(true)
}

// tableIIDatasets optionally skips the mammals replica — the most
// expensive one to generate — so runs that do not time its column are
// not charged for building it.
func tableIIDatasets(includeMammals bool) []TableIIDataset {
	out := []TableIIDataset{
		{Name: "GSE", DS: gen.SocioEconLike(gen.SeedSocio).DS},
		{Name: "WQ", DS: gen.WaterQualityLike(gen.SeedWater).DS},
		{Name: "Cr", DS: gen.CrimeLike(gen.SeedCrime).DS},
	}
	if includeMammals {
		out = append(out, TableIIDataset{Name: "Ma", DS: gen.MammalsLike(gen.SeedMammals).DS})
	}
	return out
}

// TableIIResult records background-update runtimes, in seconds, exactly
// as Table II lays them out: the initial fit, then one row per
// iteration of incorporating an additional pattern, separately for
// location and spread patterns.
type TableIIResult struct {
	Names []string
	// Init[d] is the time to fit the initial MaxEnt distribution.
	Init []float64
	// Location[d][k] is the time of the k-th location-pattern commit.
	Location [][]float64
	// Spread[d][k] is the time of the k-th spread-pattern commit (the
	// paper omits the mammals column here; we include it when feasible).
	Spread [][]float64
	// Sweeps[d][k] records the coordinate-descent sweeps of the k-th
	// location commit, explaining the growth pattern.
	Sweeps [][]int
}

// patternsForRuntime collects up to iters location patterns with
// limited pairwise overlap (Jaccard ≤ 0.7): first from a beam search
// log (the realistic source), then — because the log's top patterns
// often select near-identical subgroups — from the elementary condition
// language, which covers diverse slices of the data. The paper notes
// that its own experiments only commit patterns with limited overlaps
// (iterative mining makes redundant subgroups uninteresting), which is
// also what keeps the coordinate descent fast.
//
// The collection beam runs at width 10 (the width the repo's other
// drivers and mining benchmarks use) rather than the paper's full
// Cortana width: Table II times the background *updates*, and the
// collection pass only needs a log of diverse high-SI subgroups, which
// the narrower beam's top-K already provides. The caller passes the
// dataset's empirical moments so the prior is not recomputed per model.
func patternsForRuntime(ds *dataset.Dataset, iters int, mu mat.Vec, cov *mat.Dense) ([]*bitset.Set, []mat.Vec, error) {
	m, err := core.NewMiner(ds, core.Config{
		Search:    searchParams(search.Params{MaxDepth: 2, BeamWidth: 10, TopK: 30 * iters}),
		PriorMean: mu,
		PriorCov:  cov,
	})
	if err != nil {
		return nil, nil, err
	}
	_, log, err := m.MineLocation()
	if err != nil {
		return nil, nil, err
	}

	var exts []*bitset.Set
	var means []mat.Vec
	tryAdd := func(ext *bitset.Set, mean mat.Vec) bool {
		cnt := ext.Count()
		if cnt < 2 {
			return false
		}
		for _, e := range exts {
			inter := e.IntersectCount(ext)
			union := e.Count() + cnt - inter
			if union == 0 || float64(inter)/float64(union) > 0.7 {
				return false
			}
		}
		exts = append(exts, ext)
		means = append(means, mean)
		return true
	}
	for _, f := range log.Patterns {
		if tryAdd(f.Extension, f.Mean) && len(exts) == iters {
			break
		}
	}
	// Top up from the elementary condition language — through the
	// engine's cached Language, whose extensions and per-condition
	// target sums already exist from the collection mine, instead of
	// re-enumerating conditions and rebuilding every extension bitset.
	if len(exts) < iters {
		lang := engine.LanguageFor(ds, 4)
		sums, sizes := lang.CondTargetStats()
		for ci, ext := range lang.Exts {
			if sizes[ci] == 0 {
				continue
			}
			mean := sums[ci].Clone().Scale(1 / float64(sizes[ci]))
			if tryAdd(ext, mean) && len(exts) == iters {
				break
			}
		}
	}
	if len(exts) == 0 {
		return nil, nil, fmt.Errorf("experiments: no patterns for %s", ds.Name)
	}
	return exts, means, nil
}

// TableIIRuntime measures the background-update runtimes for the four
// datasets over the given number of iterations (the paper uses 20, with
// the mammals location column stopped at 10).
func TableIIRuntime(iters int, includeMammals bool) (*TableIIResult, error) {
	if iters <= 0 {
		iters = 20
	}
	dss := tableIIDatasets(includeMammals)
	res := &TableIIResult{}
	for _, d := range dss {
		res.Names = append(res.Names, d.Name)

		// Initial fit: empirical moments + MaxEnt model construction.
		start := time.Now()
		mu := stats.MeanVec(d.DS.Y, nil)
		cov := stats.CovMat(d.DS.Y, nil)
		model, err := background.New(d.DS.N(), mu, cov)
		if err != nil {
			return nil, fmt.Errorf("experiments: init %s: %w", d.Name, err)
		}
		res.Init = append(res.Init, time.Since(start).Seconds())

		exts, means, err := patternsForRuntime(d.DS, iters, mu, cov)
		if err != nil {
			return nil, err
		}

		// Location-pattern updates: commit the patterns one by one.
		locTimes := make([]float64, 0, len(exts))
		sweeps := make([]int, 0, len(exts))
		mammalsIterCap := len(exts)
		if d.Name == "Ma" && mammalsIterCap > 10 {
			mammalsIterCap = 10 // the paper stops the Ma column at 10
		}
		for k := 0; k < mammalsIterCap; k++ {
			start = time.Now()
			if err := model.CommitLocation(exts[k], means[k]); err != nil {
				return nil, fmt.Errorf("experiments: commit %s #%d: %w", d.Name, k, err)
			}
			locTimes = append(locTimes, time.Since(start).Seconds())
			sweeps = append(sweeps, model.LastSweeps)
		}
		res.Location = append(res.Location, locTimes)
		res.Sweeps = append(res.Sweeps, sweeps)

		// Spread-pattern updates, reported independently as in the paper:
		// a fresh model accumulates only spread constraints (each a
		// rank-1 precision update along the subgroup's leading scatter
		// direction, with the subgroup's empirical mean as the constant
		// center), so the column isolates the low-rank update cost.
		if d.Name == "Ma" {
			// The paper's Table II has no Ma spread column.
			res.Spread = append(res.Spread, nil)
			continue
		}
		model2, err := background.New(d.DS.N(), mu, cov)
		if err != nil {
			return nil, err
		}
		spTimes := make([]float64, 0, len(exts))
		for k := range exts {
			w := leadingDirection(d.DS.Y, exts[k], means[k])
			vhat := pattern.SubgroupVariance(d.DS.Y, exts[k], means[k], w)
			if vhat <= 0 {
				continue
			}
			start = time.Now()
			if err := model2.CommitSpread(exts[k], w, means[k], vhat); err != nil {
				return nil, fmt.Errorf("experiments: spread commit %s #%d: %w", d.Name, k, err)
			}
			spTimes = append(spTimes, time.Since(start).Seconds())
		}
		res.Spread = append(res.Spread, spTimes)
	}
	return res, nil
}

// leadingDirection returns the top eigenvector of the subgroup scatter.
func leadingDirection(y *mat.Dense, ext *bitset.Set, center mat.Vec) mat.Vec {
	s := pattern.SubgroupScatter(y, ext, center)
	_, vecs, err := mat.SymEig(s)
	if err != nil {
		w := make(mat.Vec, y.C)
		w[0] = 1
		return w
	}
	w := make(mat.Vec, y.C)
	for i := range w {
		w[i] = vecs.At(i, 0)
	}
	return w.Normalize()
}

// Render formats the runtimes like the paper's Table II (seconds).
func (r *TableIIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table II — background-update runtimes (seconds)\n")
	header := []string{"iteration"}
	for _, n := range r.Names {
		header = append(header, "loc "+n)
	}
	for i, n := range r.Names {
		if r.Spread[i] != nil {
			header = append(header, "spr "+n)
		}
	}
	t := &table{header: header}
	row := []string{"init"}
	for _, v := range r.Init {
		row = append(row, fmt.Sprintf("%.5f", v))
	}
	for i := range r.Names {
		if r.Spread[i] != nil {
			row = append(row, "")
		}
	}
	t.add(row...)
	maxIters := 0
	for _, l := range r.Location {
		if len(l) > maxIters {
			maxIters = len(l)
		}
	}
	for _, s := range r.Spread {
		if len(s) > maxIters {
			maxIters = len(s)
		}
	}
	for k := 0; k < maxIters; k++ {
		row := []string{fmt.Sprint(k + 1)}
		for _, l := range r.Location {
			if k < len(l) {
				row = append(row, fmt.Sprintf("%.5f", l[k]))
			} else {
				row = append(row, "-")
			}
		}
		for i := range r.Names {
			if r.Spread[i] == nil {
				continue
			}
			if k < len(r.Spread[i]) {
				row = append(row, fmt.Sprintf("%.5f", r.Spread[i][k]))
			} else {
				row = append(row, "-")
			}
		}
		t.add(row...)
	}
	b.WriteString(t.String())
	return b.String()
}
