package faultstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
)

// snap is a minimal snapshot type for exercising the generic wrapper.
type snap struct {
	ID   string
	Body string
}

// memStore is a trivial inner store.
type memStore struct {
	mu sync.Mutex
	m  map[string]snap
}

func newMem() *memStore { return &memStore{m: map[string]snap{}} }

func (s *memStore) Put(sn *snap) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[sn.ID] = *sn
	return nil
}

func (s *memStore) Get(id string) (*snap, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn, ok := s.m[id]
	if !ok {
		return nil, errors.New("not found")
	}
	return &sn, nil
}

func (s *memStore) Delete(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[id]
	delete(s.m, id)
	return ok, nil
}

func (s *memStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for id := range s.m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

func TestNthPutAndGetFail(t *testing.T) {
	fs := New[snap](newMem(), Plan{FailPuts: []int{2}, FailGets: []int{1}})
	if err := fs.Put(&snap{ID: "a"}); err != nil {
		t.Fatalf("put 1: %v", err)
	}
	if err := fs.Put(&snap{ID: "b"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("put 2 should fail injected, got %v", err)
	}
	if err := fs.Put(&snap{ID: "b"}); err != nil {
		t.Fatalf("put 3: %v", err)
	}
	if _, err := fs.Get("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("get 1 should fail injected, got %v", err)
	}
	if got, err := fs.Get("a"); err != nil || got.ID != "a" {
		t.Fatalf("get 2 = %v, %v", got, err)
	}
	st := fs.Stats()
	if st.Puts != 3 || st.FailedPuts != 1 || st.Gets != 2 || st.FailedGets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTornPutPersistsMangledAndFails(t *testing.T) {
	inner := newMem()
	fs := New[snap](inner, Plan{TornPuts: []int{1}})
	fs.Mangle = func(sn snap) snap {
		sn.Body = sn.Body[:len(sn.Body)/2] // truncate: the torn half-write
		return sn
	}
	err := fs.Put(&snap{ID: "a", Body: "0123456789"})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn put should report failure, got %v", err)
	}
	got, err := inner.Get("a")
	if err != nil {
		t.Fatalf("torn put should have persisted a mangled snapshot: %v", err)
	}
	if got.Body != "01234" {
		t.Fatalf("mangled body = %q", got.Body)
	}
	if st := fs.Stats(); st.TornPuts != 1 || st.Mangled != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A torn put with no Mangle hook fails hard without writing — it
	// must not count as a mangle.
	fs2 := New[snap](newMem(), Plan{TornPuts: []int{1}})
	_ = fs2.Put(&snap{ID: "a", Body: "x"})
	if st := fs2.Stats(); st.TornPuts != 1 || st.Mangled != 0 {
		t.Fatalf("nil-Mangle stats = %+v", st)
	}
	if st := fs2.Stats(); st.Injected() != st.FailedPuts+st.FailedGets {
		t.Fatalf("Injected() inconsistent: %+v", st)
	}
}

func TestSeededRateIsDeterministic(t *testing.T) {
	run := func() []bool {
		fs := New[snap](newMem(), Plan{Seed: 42, PutFailRate: 0.5})
		var outcomes []bool
		for i := 0; i < 64; i++ {
			outcomes = append(outcomes, fs.Put(&snap{ID: fmt.Sprintf("s%d", i)}) == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at call %d", i)
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("rate 0.5 produced %d/%d failures", fails, len(a))
	}
}

func TestBreakHeal(t *testing.T) {
	fs := New[snap](newMem(), Plan{})
	outage := errors.New("disk on fire")
	fs.Break(outage)
	if !fs.Broken() {
		t.Fatal("not broken after Break")
	}
	if err := fs.Put(&snap{ID: "a"}); !errors.Is(err, outage) {
		t.Fatalf("put during outage = %v", err)
	}
	if _, err := fs.Get("a"); !errors.Is(err, outage) {
		t.Fatalf("get during outage = %v", err)
	}
	if _, err := fs.List(); !errors.Is(err, outage) {
		t.Fatalf("list during outage = %v", err)
	}
	if _, err := fs.Delete("a"); !errors.Is(err, outage) {
		t.Fatalf("delete during outage = %v", err)
	}
	fs.Heal()
	if err := fs.Put(&snap{ID: "a"}); err != nil {
		t.Fatalf("put after heal: %v", err)
	}
	if got, err := fs.Get("a"); err != nil || got.ID != "a" {
		t.Fatalf("get after heal = %v, %v", got, err)
	}
}

func TestConcurrentUseIsSafe(t *testing.T) {
	fs := New[snap](newMem(), Plan{Seed: 7, PutFailRate: 0.2, GetFailRate: 0.2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", w)
			for i := 0; i < 50; i++ {
				_ = fs.Put(&snap{ID: id})
				_, _ = fs.Get(id)
				if i%10 == 0 {
					fs.Break(nil)
					fs.Heal()
				}
			}
		}(w)
	}
	wg.Wait()
	st := fs.Stats()
	if st.Puts != 400 || st.Gets != 400 {
		t.Fatalf("stats = %+v", st)
	}
}
