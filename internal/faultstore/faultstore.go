// Package faultstore wraps a snapshot store with deterministic,
// seedable failure injection — the test double every resilience layer
// above the store is exercised against. It simulates the failure modes
// a real disk or network store exhibits:
//
//   - hard failures of the Nth Put/Get (or a seeded failure rate), for
//     retry and degraded-mode logic;
//   - torn writes: the Nth Put persists a mangled snapshot to the
//     inner store and then reports failure, modelling a crash mid-write
//     on a store without atomic rename;
//   - injected latency per operation, for timeout paths;
//   - an imperative Break/Heal switch, for scripting outages in tests
//     (the store "goes down", everything fails, then it "comes back").
//
// The wrapper is generic over the snapshot type so it does not import
// the serving layer: faultstore.Store[server.Snapshot] satisfies
// server.Store, and the same machinery can wrap any future store whose
// methods match Inner.
package faultstore

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/randx"
)

// ErrInjected is the base error of every injected failure; match it
// with errors.Is to distinguish injected faults from real ones.
var ErrInjected = errors.New("faultstore: injected failure")

// Inner is the store shape the wrapper accepts — structurally the
// serving layer's Store interface, parameterized by snapshot type.
type Inner[S any] interface {
	Put(snap *S) error
	Get(id string) (*S, error)
	Delete(id string) (existed bool, err error)
	List() ([]string, error)
}

// Plan is a deterministic failure schedule. Zero value = no faults.
// Nth-operation indices are 1-based and count calls on this wrapper
// since construction; rate-based injection draws from a generator
// seeded by Seed, so a given (Plan, call sequence) always fails the
// same calls.
type Plan struct {
	// Seed seeds the rate-based injectors (0 behaves as 1).
	Seed int64
	// FailPuts / FailGets fail the listed 1-based call indices.
	FailPuts []int
	FailGets []int
	// TornPuts: the listed Puts write a mangled snapshot (see
	// Store.Mangle) to the inner store, then report failure — a torn
	// write that persisted garbage.
	TornPuts []int
	// PutFailRate / GetFailRate fail that fraction of calls, drawn
	// deterministically from Seed.
	PutFailRate float64
	GetFailRate float64
	// Latency is added to every operation before it runs.
	Latency time.Duration
}

// Stats counts operations seen and failures injected, so tests can
// assert their faults actually fired instead of passing vacuously.
type Stats struct {
	Puts, Gets, Deletes, Lists int
	FailedPuts, FailedGets     int
	TornPuts                   int
	// Mangled counts torn Puts that actually wrote a mangled snapshot
	// to the inner store (TornPuts entries with a nil Mangle fail hard
	// without writing, and don't count here).
	Mangled int
}

// Injected returns the total number of injected failures across all
// operation kinds — a convenient non-vacuity assertion for tests.
func (st Stats) Injected() int {
	return st.FailedPuts + st.FailedGets
}

// Store wraps an Inner with fault injection. Safe for concurrent use
// (the injection bookkeeping is locked; the inner store provides its
// own guarantees).
type Store[S any] struct {
	inner Inner[S]
	plan  Plan

	// Mangle corrupts a snapshot for torn-write injection: it receives
	// a shallow copy and returns what is actually written. Nil disables
	// tearing (TornPuts entries fail hard instead).
	Mangle func(snap S) S

	mu     sync.Mutex
	rng    *randx.Source
	stats  Stats
	broken error // non-nil: every op fails with this (Break/Heal)
}

// New wraps inner with the given failure plan.
func New[S any](inner Inner[S], plan Plan) *Store[S] {
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	return &Store[S]{inner: inner, plan: plan, rng: randx.New(seed)}
}

// Break makes every subsequent operation fail with err (ErrInjected if
// nil) until Heal — the imperative outage switch.
func (s *Store[S]) Break(err error) {
	if err == nil {
		err = ErrInjected
	}
	s.mu.Lock()
	s.broken = err
	s.mu.Unlock()
}

// Heal ends a Break outage.
func (s *Store[S]) Heal() {
	s.mu.Lock()
	s.broken = nil
	s.mu.Unlock()
}

// Broken reports whether the store is in a Break outage.
func (s *Store[S]) Broken() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken != nil
}

// Stats returns a copy of the operation counters.
func (s *Store[S]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func contains(xs []int, n int) bool {
	for _, x := range xs {
		if x == n {
			return true
		}
	}
	return false
}

// putDecision classifies one Put call under the lock: the call index
// is consumed exactly once so concurrent callers see a consistent
// schedule.
type decision int

const (
	pass decision = iota
	fail
	torn
)

func (s *Store[S]) decidePut() (decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Puts++
	if s.broken != nil {
		s.stats.FailedPuts++
		return fail, s.broken
	}
	n := s.stats.Puts
	switch {
	case contains(s.plan.TornPuts, n):
		s.stats.FailedPuts++
		s.stats.TornPuts++
		return torn, fmt.Errorf("%w: torn put #%d", ErrInjected, n)
	case contains(s.plan.FailPuts, n),
		s.plan.PutFailRate > 0 && s.rng.Float64() < s.plan.PutFailRate:
		s.stats.FailedPuts++
		return fail, fmt.Errorf("%w: put #%d", ErrInjected, n)
	}
	return pass, nil
}

// Put applies the plan: pass through, fail outright, or tear (persist
// a mangled snapshot, then report failure).
func (s *Store[S]) Put(snap *S) error {
	s.sleep()
	d, err := s.decidePut()
	switch d {
	case fail:
		return err
	case torn:
		if s.Mangle != nil {
			mangled := s.Mangle(*snap)
			_ = s.inner.Put(&mangled) // the tear persists; the error still surfaces
			s.mu.Lock()
			s.stats.Mangled++
			s.mu.Unlock()
		}
		return err
	}
	return s.inner.Put(snap)
}

// Get applies the plan, then delegates.
func (s *Store[S]) Get(id string) (*S, error) {
	s.sleep()
	s.mu.Lock()
	s.stats.Gets++
	n := s.stats.Gets
	broken := s.broken
	injected := broken != nil ||
		contains(s.plan.FailGets, n) ||
		(s.plan.GetFailRate > 0 && s.rng.Float64() < s.plan.GetFailRate)
	if injected {
		s.stats.FailedGets++
	}
	s.mu.Unlock()
	if injected {
		if broken != nil {
			return nil, broken
		}
		return nil, fmt.Errorf("%w: get #%d", ErrInjected, n)
	}
	return s.inner.Get(id)
}

// Delete fails only during a Break outage; targeted Delete faults have
// no consumer yet.
func (s *Store[S]) Delete(id string) (bool, error) {
	s.sleep()
	s.mu.Lock()
	s.stats.Deletes++
	broken := s.broken
	s.mu.Unlock()
	if broken != nil {
		return false, broken
	}
	return s.inner.Delete(id)
}

// List fails only during a Break outage.
func (s *Store[S]) List() ([]string, error) {
	s.sleep()
	s.mu.Lock()
	s.stats.Lists++
	broken := s.broken
	s.mu.Unlock()
	if broken != nil {
		return nil, broken
	}
	return s.inner.List()
}

func (s *Store[S]) sleep() {
	if s.plan.Latency > 0 {
		time.Sleep(s.plan.Latency)
	}
}
