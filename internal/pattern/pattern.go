// Package pattern implements the pattern syntax of §II-A of the paper:
// subgroup intentions (conjunctions of conditions on the description
// attributes), their extensions (the index set of matching data points,
// stored as bitsets), and the two pattern types built on top of them —
// location patterns (an intention plus the subgroup mean of the targets)
// and spread patterns (an intention plus a unit direction w and the
// subgroup variance along w).
package pattern

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/mat"
)

// Op is a condition operator.
type Op int

// Operators: LE/GE apply to numeric and ordinal attributes, EQ/NE
// (set inclusion/exclusion, §II-A of the paper) to categorical and
// binary ones.
const (
	LE Op = iota // attr ≤ threshold
	GE           // attr ≥ threshold
	EQ           // attr == level (inclusion)
	NE           // attr != level (exclusion)
)

// String returns the operator glyph.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	case NE:
		return "!="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Condition is a single condition on one description attribute.
type Condition struct {
	Attr      int     // index into Dataset.Descriptors
	Op        Op      // LE/GE for continuous attributes, EQ for discrete
	Threshold float64 // used by LE/GE
	Level     int     // used by EQ
}

// Matches reports whether row i of the dataset satisfies the condition.
func (c Condition) Matches(ds *dataset.Dataset, i int) bool {
	col := &ds.Descriptors[c.Attr]
	v := col.Values[i]
	switch c.Op {
	case LE:
		return v <= c.Threshold
	case GE:
		return v >= c.Threshold
	case EQ:
		return int(v) == c.Level
	case NE:
		return int(v) != c.Level
	default:
		panic("pattern: unknown operator")
	}
}

// Extension returns the bitset of rows matching the condition. The
// per-operator loops build each 64-bit word in a register from one
// 64-value block of the column and store it once — a language build
// materializes every condition's extension, so this is the hot path of
// cold language construction, and the per-element read-modify-write of
// the naive form (plus its data-dependent store) is what it avoids. The
// conditional-assign inner body compiles to a flag-set rather than a
// branch, so ~50%-dense percentile splits don't pay a misprediction per
// element.
func (c Condition) Extension(ds *dataset.Dataset) *bitset.Set {
	out := bitset.New(ds.N())
	vals := ds.Descriptors[c.Attr].Values
	words := out.Words()
	n := len(vals)
	for base := 0; base < n; base += 64 {
		end := base + 64
		if end > n {
			end = n
		}
		block := vals[base:end]
		var w uint64
		switch c.Op {
		case LE:
			t := c.Threshold
			for j, v := range block {
				var b uint64
				if v <= t {
					b = 1
				}
				w |= b << uint(j)
			}
		case GE:
			t := c.Threshold
			for j, v := range block {
				var b uint64
				if v >= t {
					b = 1
				}
				w |= b << uint(j)
			}
		case EQ:
			lv := c.Level
			for j, v := range block {
				var b uint64
				if int(v) == lv {
					b = 1
				}
				w |= b << uint(j)
			}
		case NE:
			lv := c.Level
			for j, v := range block {
				var b uint64
				if int(v) != lv {
					b = 1
				}
				w |= b << uint(j)
			}
		default:
			panic("pattern: unknown operator")
		}
		words[base>>6] = w
	}
	return out
}

// Format renders the condition with attribute and level names.
func (c Condition) Format(ds *dataset.Dataset) string {
	col := &ds.Descriptors[c.Attr]
	if c.Op == EQ || c.Op == NE {
		level := "?"
		if c.Level >= 0 && c.Level < len(col.Levels) {
			level = col.Levels[c.Level]
		}
		return fmt.Sprintf("%s %s '%s'", col.Name, c.Op, level)
	}
	return fmt.Sprintf("%s %s %s", col.Name, c.Op,
		strconv.FormatFloat(c.Threshold, 'g', 6, 64))
}

// key is a canonical, dataset-independent encoding used for ordering and
// deduplication.
func (c Condition) key() string {
	return fmt.Sprintf("%d|%d|%s|%d", c.Attr, c.Op,
		strconv.FormatFloat(c.Threshold, 'b', -1, 64), c.Level)
}

// Intention is a conjunction of conditions (the subgroup description).
type Intention []Condition

// Canonical returns a sorted copy, so that logically equal intentions
// compare equal via Key.
func (in Intention) Canonical() Intention {
	out := append(Intention(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// Key returns a canonical string identity for the intention.
func (in Intention) Key() string {
	c := in.Canonical()
	parts := make([]string, len(c))
	for i, cond := range c {
		parts[i] = cond.key()
	}
	return strings.Join(parts, "&")
}

// Contains reports whether the intention already includes an identical
// condition.
func (in Intention) Contains(c Condition) bool {
	k := c.key()
	for _, have := range in {
		if have.key() == k {
			return true
		}
	}
	return false
}

// Extend returns a new intention with c appended.
func (in Intention) Extend(c Condition) Intention {
	out := make(Intention, 0, len(in)+1)
	out = append(out, in...)
	return append(out, c)
}

// Extension returns the bitset of rows matching all conditions.
func (in Intention) Extension(ds *dataset.Dataset) *bitset.Set {
	if len(in) == 0 {
		return bitset.Full(ds.N())
	}
	ext := in[0].Extension(ds)
	for _, c := range in[1:] {
		bitset.AndInto(ext, ext, c.Extension(ds))
	}
	return ext
}

// Format renders the intention as a conjunction, e.g.
// "a4 = '0' AND a3 = '1'". The empty intention renders as "(all)".
func (in Intention) Format(ds *dataset.Dataset) string {
	if len(in) == 0 {
		return "(all)"
	}
	parts := make([]string, len(in))
	for i, c := range in {
		parts[i] = c.Format(ds)
	}
	return strings.Join(parts, " AND ")
}

// Location is a location pattern: an intention together with the
// empirical mean of the targets over its extension, scored by SI.
type Location struct {
	Intention Intention
	Extension *bitset.Set
	Mean      mat.Vec // f_I(Ŷ), the subgroup target mean
	IC        float64
	DL        float64
	SI        float64
}

// Size returns the number of covered data points.
func (l *Location) Size() int { return l.Extension.Count() }

// Format renders the pattern for display.
func (l *Location) Format(ds *dataset.Dataset) string {
	return fmt.Sprintf("%s  (size=%d, SI=%.4g, IC=%.4g, DL=%.3g)",
		l.Intention.Format(ds), l.Size(), l.SI, l.IC, l.DL)
}

// Spread is a spread pattern: an intention, a unit direction w in target
// space, and the empirical variance of the subgroup along w (computed
// around the subgroup mean, Eq. 2 of the paper).
type Spread struct {
	Intention Intention
	Extension *bitset.Set
	Center    mat.Vec // ŷ_I, the subgroup mean the variance is taken around
	W         mat.Vec // unit direction
	Variance  float64 // v̂ = g_I^w(Ŷ)
	IC        float64
	DL        float64
	SI        float64
}

// Size returns the number of covered data points.
func (s *Spread) Size() int { return s.Extension.Count() }

// Format renders the pattern for display.
func (s *Spread) Format(ds *dataset.Dataset) string {
	comps := make([]string, len(s.W))
	for i, v := range s.W {
		comps[i] = strconv.FormatFloat(v, 'f', 3, 64)
	}
	return fmt.Sprintf("%s  w=(%s) var=%.4g  (size=%d, SI=%.4g, IC=%.4g, DL=%.3g)",
		s.Intention.Format(ds), strings.Join(comps, ","), s.Variance,
		s.Size(), s.SI, s.IC, s.DL)
}

// SubgroupMean computes f_I(Ŷ): the mean target vector over the rows in
// ext.
func SubgroupMean(y *mat.Dense, ext *bitset.Set) mat.Vec {
	d := y.C
	out := make(mat.Vec, d)
	cnt := 0
	ext.ForEach(func(i int) {
		row := y.Row(i)
		for j, v := range row {
			out[j] += v
		}
		cnt++
	})
	if cnt > 0 {
		out.Scale(1 / float64(cnt))
	}
	return out
}

// SubgroupVariance computes g_I^w(Ŷ): the variance of the rows in ext
// projected on w, around the given center (normally the subgroup mean).
func SubgroupVariance(y *mat.Dense, ext *bitset.Set, center, w mat.Vec) float64 {
	var s float64
	cnt := 0
	ext.ForEach(func(i int) {
		row := y.Row(i)
		var p float64
		for j, v := range row {
			p += (v - center[j]) * w[j]
		}
		s += p * p
		cnt++
	})
	if cnt == 0 {
		return 0
	}
	return s / float64(cnt)
}

// SubgroupScatter returns S = (1/|I|) Σ_{i∈I} (yᵢ−c)(yᵢ−c)ᵀ, so that
// g_I^w(Ŷ) = wᵀ·S·w for every direction w. The spread optimizer
// evaluates many directions against the same extension, so the scatter
// is computed once. The rank-1 updates accumulate only the upper
// triangle — for finite data the (a,b) and (b,a) products are the same
// multiplications in the same order, so mirroring at the end
// reproduces exactly what the former full outer-product accumulation
// plus Symmetrize produced, at half the flops. (The zero-row skip
// matches the one AddOuterScaled always had; only rows with exotic
// NaN/Inf targets could tell the two apart.)
func SubgroupScatter(y *mat.Dense, ext *bitset.Set, center mat.Vec) *mat.Dense {
	d := y.C
	s := mat.NewDense(d, d)
	cnt := 0
	diff := make(mat.Vec, d)
	data := s.Data
	ext.ForEach(func(i int) {
		row := y.Row(i)
		for j, v := range row {
			diff[j] = v - center[j]
		}
		for a, da := range diff {
			if da == 0 {
				continue
			}
			sr := data[a*d : (a+1)*d]
			for b := a; b < d; b++ {
				sr[b] += da * diff[b]
			}
		}
		cnt++
	})
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			data[b*d+a] = data[a*d+b]
		}
	}
	if cnt > 0 {
		s.Scale(1 / float64(cnt))
	}
	return s
}

// AllConditions enumerates the elementary conditions of the search
// language for a dataset: for every numeric/ordinal descriptor, LE and
// GE conditions at numSplits percentile split points (the paper uses 4:
// the 1/5–4/5 percentiles); for every categorical/binary descriptor,
// one EQ (inclusion) condition per level; and for categorical
// descriptors with three or more levels, one NE (exclusion) condition
// per level — the "set in-/exclusion conditions" of §II-A. (For binary
// attributes NE duplicates the other level's EQ and is skipped.)
func AllConditions(ds *dataset.Dataset, numSplits int) []Condition {
	var out []Condition
	for ai := range ds.Descriptors {
		col := &ds.Descriptors[ai]
		if col.IsDiscrete() {
			for li := range col.Levels {
				out = append(out, Condition{Attr: ai, Op: EQ, Level: li})
			}
			if len(col.Levels) > 2 {
				for li := range col.Levels {
					out = append(out, Condition{Attr: ai, Op: NE, Level: li})
				}
			}
			continue
		}
		for _, t := range dataset.SplitPoints(col, numSplits) {
			out = append(out, Condition{Attr: ai, Op: LE, Threshold: t})
			out = append(out, Condition{Attr: ai, Op: GE, Threshold: t})
		}
	}
	return out
}
