package pattern

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/mat"
)

func testDS() *dataset.Dataset {
	y := mat.NewDense(6, 2)
	copy(y.Data, []float64{
		1, 10,
		2, 20,
		3, 30,
		4, 40,
		5, 50,
		6, 60,
	})
	return &dataset.Dataset{
		Name: "t",
		Descriptors: []dataset.Column{
			{Name: "x", Kind: dataset.Numeric, Values: []float64{1, 2, 3, 4, 5, 6}},
			{Name: "c", Kind: dataset.Binary, Values: []float64{0, 1, 0, 1, 0, 1},
				Levels: []string{"no", "yes"}},
		},
		TargetNames: []string{"t1", "t2"},
		Y:           y,
	}
}

func TestConditionMatchesAndExtension(t *testing.T) {
	ds := testDS()
	le := Condition{Attr: 0, Op: LE, Threshold: 3}
	ext := le.Extension(ds)
	if got := ext.Indices(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("LE extension = %v", got)
	}
	ge := Condition{Attr: 0, Op: GE, Threshold: 5}
	if got := ge.Extension(ds).Count(); got != 2 {
		t.Fatalf("GE extension count = %d", got)
	}
	eq := Condition{Attr: 1, Op: EQ, Level: 1}
	if got := eq.Extension(ds).Indices(); len(got) != 3 || got[0] != 1 {
		t.Fatalf("EQ extension = %v", got)
	}
}

func TestIntentionExtensionIsConjunction(t *testing.T) {
	ds := testDS()
	in := Intention{
		{Attr: 0, Op: LE, Threshold: 4},
		{Attr: 1, Op: EQ, Level: 1},
	}
	got := in.Extension(ds).Indices()
	// x ≤ 4 gives rows 0..3; c == yes gives 1,3,5; conjunction = 1,3.
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("conjunction = %v", got)
	}
	// Empty intention covers everything.
	if Intention(nil).Extension(ds).Count() != ds.N() {
		t.Fatal("empty intention should cover all rows")
	}
}

func TestIntentionCanonicalKey(t *testing.T) {
	a := Intention{
		{Attr: 0, Op: LE, Threshold: 4},
		{Attr: 1, Op: EQ, Level: 1},
	}
	b := Intention{
		{Attr: 1, Op: EQ, Level: 1},
		{Attr: 0, Op: LE, Threshold: 4},
	}
	if a.Key() != b.Key() {
		t.Fatal("order must not affect Key")
	}
	c := a.Extend(Condition{Attr: 0, Op: GE, Threshold: 1})
	if c.Key() == a.Key() {
		t.Fatal("extended intention must differ")
	}
	if len(a) != 2 {
		t.Fatal("Extend must not modify the receiver")
	}
	if !a.Contains(Condition{Attr: 0, Op: LE, Threshold: 4}) {
		t.Fatal("Contains should find existing condition")
	}
	if a.Contains(Condition{Attr: 0, Op: LE, Threshold: 5}) {
		t.Fatal("Contains matched a different threshold")
	}
}

func TestFormat(t *testing.T) {
	ds := testDS()
	in := Intention{
		{Attr: 1, Op: EQ, Level: 1},
		{Attr: 0, Op: GE, Threshold: 2.5},
	}
	s := in.Format(ds)
	if !strings.Contains(s, "c = 'yes'") || !strings.Contains(s, "x >= 2.5") ||
		!strings.Contains(s, " AND ") {
		t.Fatalf("Format = %q", s)
	}
	if Intention(nil).Format(ds) != "(all)" {
		t.Fatal("empty intention format")
	}
}

func TestSubgroupMeanVariance(t *testing.T) {
	ds := testDS()
	ext := bitset.FromIndices(6, []int{0, 2, 4}) // rows with t1 = 1,3,5
	mu := SubgroupMean(ds.Y, ext)
	if math.Abs(mu[0]-3) > 1e-12 || math.Abs(mu[1]-30) > 1e-12 {
		t.Fatalf("SubgroupMean = %v", mu)
	}
	// Variance of t1 ∈ {1,3,5} around mean 3 is 8/3.
	w := mat.Vec{1, 0}
	v := SubgroupVariance(ds.Y, ext, mu, w)
	if math.Abs(v-8.0/3) > 1e-12 {
		t.Fatalf("SubgroupVariance = %v", v)
	}
}

func TestSubgroupScatterMatchesVariance(t *testing.T) {
	ds := testDS()
	rng := rand.New(rand.NewSource(1))
	ext := bitset.FromIndices(6, []int{1, 2, 5})
	mu := SubgroupMean(ds.Y, ext)
	s := SubgroupScatter(ds.Y, ext, mu)
	for trial := 0; trial < 20; trial++ {
		w := mat.Vec{rng.NormFloat64(), rng.NormFloat64()}
		w.Normalize()
		want := SubgroupVariance(ds.Y, ext, mu, w)
		got := s.QuadForm(w)
		if math.Abs(got-want) > 1e-10*(1+want) {
			t.Fatalf("scatter quadform %v vs direct %v", got, want)
		}
	}
}

func TestNEConditions(t *testing.T) {
	ds := &dataset.Dataset{
		Descriptors: []dataset.Column{
			{Name: "r", Kind: dataset.Categorical,
				Values: []float64{0, 1, 2, 0}, Levels: []string{"a", "b", "c"}},
		},
		TargetNames: []string{"y"},
		Y:           mat.NewDense(4, 1),
	}
	ne := Condition{Attr: 0, Op: NE, Level: 0}
	got := ne.Extension(ds).Indices()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("NE extension = %v", got)
	}
	if s := ne.Format(ds); !strings.Contains(s, "r != 'a'") {
		t.Fatalf("NE format = %q", s)
	}
	// NE and EQ on the same level partition the rows.
	eq := Condition{Attr: 0, Op: EQ, Level: 0}
	if eq.Extension(ds).Count()+ne.Extension(ds).Count() != ds.N() {
		t.Fatal("EQ and NE must partition the data")
	}
	// Three-level categorical: 3 EQ + 3 NE conditions.
	conds := AllConditions(ds, 4)
	if len(conds) != 6 {
		t.Fatalf("conditions = %d, want 6", len(conds))
	}
}

func TestAllConditions(t *testing.T) {
	ds := testDS()
	conds := AllConditions(ds, 4)
	// numeric x: 4 split points × 2 ops = 8; binary c: 2 levels (no NE
	// for binary — it would duplicate the other level's EQ).
	if len(conds) != 10 {
		t.Fatalf("AllConditions produced %d conditions", len(conds))
	}
	seen := map[string]bool{}
	for _, c := range conds {
		k := c.key()
		if seen[k] {
			t.Fatalf("duplicate condition %v", c.Format(ds))
		}
		seen[k] = true
		if c.Extension(ds).Count() == 0 {
			t.Fatalf("condition %v has empty extension", c.Format(ds))
		}
	}
}

func TestAllConditionsConstantColumn(t *testing.T) {
	ds := &dataset.Dataset{
		Descriptors: []dataset.Column{
			{Name: "k", Kind: dataset.Numeric, Values: []float64{7, 7, 7}},
		},
		TargetNames: []string{"y"},
		Y:           mat.NewDense(3, 1),
	}
	conds := AllConditions(ds, 4)
	// Constant column deduplicates to a single split point → 2 conditions.
	if len(conds) != 2 {
		t.Fatalf("constant column conditions = %d", len(conds))
	}
}
