// Package stats provides the descriptive statistics, probability
// distributions and special functions used throughout the subgroup
// discovery library: means and covariance matrices, percentiles,
// the normal and chi-squared distributions, the regularized incomplete
// gamma function, the digamma function, Gaussian kernel density
// estimation (Fig. 1 of the paper) and empirical CDFs (Figs. 8c, 9b).
//
// It replaces the statistics toolbox of the MATLAB substrate used by the
// original implementation, built only on the Go standard library.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/bitset"
	"repro/internal/mat"
)

// Mean returns the arithmetic mean of xs. It returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population (divide-by-n) variance of xs, matching
// the paper's statistic g (Eq. 2) which divides by |I|. Returns NaN for
// empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// MeanVec returns the column-wise mean of the rows with indices idx in
// the n×d matrix y. If idx is nil, all rows are used.
func MeanVec(y *mat.Dense, idx []int) mat.Vec {
	d := y.C
	out := make(mat.Vec, d)
	if idx == nil {
		for i := 0; i < y.R; i++ {
			row := y.Row(i)
			for j, v := range row {
				out[j] += v
			}
		}
		out.Scale(1 / float64(y.R))
		return out
	}
	if len(idx) == 0 {
		for j := range out {
			out[j] = math.NaN()
		}
		return out
	}
	for _, i := range idx {
		row := y.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	out.Scale(1 / float64(len(idx)))
	return out
}

// CovMat returns the population (divide-by-n) covariance matrix of the
// rows with indices idx in y, around their own mean. If idx is nil, all
// rows are used. Only the upper triangle is accumulated (the lower is a
// mirror: the (a,b) and (b,a) products are the same multiplications in
// the same order, so nothing is lost), halving the dominant d²·n work.
// The centered row is computed once per point instead of re-subtracting
// mu inside every (a,b) product — the differences are the exact same
// floats, and each cr[b] accumulator still sees the identical products
// in the identical order, so the result is bit-for-bit unchanged.
func CovMat(y *mat.Dense, idx []int) *mat.Dense {
	d := y.C
	if idx == nil {
		if cov := covMatBinary(y); cov != nil {
			return cov
		}
	}
	mu := MeanVec(y, idx)
	cov := mat.NewDense(d, d)
	cent := make([]float64, d)
	accumulate := func(row mat.Vec) {
		for b, v := range row {
			cent[b] = v - mu[b]
		}
		for a := 0; a < d; a++ {
			da := cent[a]
			if da == 0 {
				continue
			}
			cb := cent[a:d]
			cr := cov.Data[a*d+a : (a+1)*d : (a+1)*d]
			cr = cr[:len(cb)]
			// Each cr[b] is its own accumulator, so the four-wide
			// unroll leaves every accumulator's addition order — and
			// therefore every float — unchanged.
			b := 0
			for ; b+4 <= len(cb); b += 4 {
				cr[b] += da * cb[b]
				cr[b+1] += da * cb[b+1]
				cr[b+2] += da * cb[b+2]
				cr[b+3] += da * cb[b+3]
			}
			for ; b < len(cb); b++ {
				cr[b] += da * cb[b]
			}
		}
	}
	n := 0
	if idx == nil {
		n = y.R
		for i := 0; i < y.R; i++ {
			accumulate(y.Row(i))
		}
	} else {
		n = len(idx)
		for _, i := range idx {
			accumulate(y.Row(i))
		}
	}
	if n == 0 {
		return cov
	}
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			cov.Data[b*d+a] = cov.Data[a*d+b]
		}
	}
	cov.Scale(1 / float64(n))
	return cov
}

// covMatBinary computes the full-data covariance when every entry of y
// is 0 or 1 (the presence/absence target matrices of the ecology
// datasets), or returns nil when it does not apply. For binary columns
// the cross moment Σᵢ y_ia·y_ib is the integer |ones(a) ∩ ones(b)|, so
// the d²/2 pairwise sums collapse from n multiply-adds each to a
// word-batched popcount: cov_ab = (S_ab − k_a·k_b/n)/n with
// k_a = |ones(a)|. All sums are exact integers below 2⁵³, making this
// at least as accurate as the centered accumulation it replaces.
func covMatBinary(y *mat.Dense) *mat.Dense {
	n, d := y.R, y.C
	if n == 0 || d == 0 {
		return nil
	}
	for _, v := range y.Data {
		if v != 0 && v != 1 {
			return nil
		}
	}
	cols := make([]*bitset.Set, d)
	for j := range cols {
		cols[j] = bitset.New(n)
	}
	for i := 0; i < n; i++ {
		row := y.Data[i*d : (i+1)*d]
		for j, v := range row {
			if v == 1 {
				cols[j].Add(i)
			}
		}
	}
	k := make([]float64, d)
	for j := range k {
		k[j] = float64(cols[j].Count())
	}
	cov := mat.NewDense(d, d)
	inv := 1 / float64(n)
	for a := 0; a < d; a++ {
		ka := k[a]
		for b := a; b < d; b++ {
			s := float64(cols[a].IntersectCount(cols[b]))
			c := (s - ka*k[b]*inv) * inv
			cov.Data[a*d+b] = c
			cov.Data[b*d+a] = c
		}
	}
	return cov
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics, the same convention as MATLAB's
// prctile with interpolation. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// Percentiles returns the p-th percentile of xs for every p in ps, with
// exactly the interpolation (and therefore exactly the values) of
// Percentile. Instead of sorting (or repeatedly quickselecting) it runs
// an adaptive radix selection over order-preserving integer keys: each
// round buckets the current range on its top ~10 *varying* bits (an
// OR/AND mask skips the high bits normalized columns share), scatters
// once, and resolves every requested order statistic against that same
// scatter — O(n) total with branch-free passes, where the former
// comparison selects paid a mispredicting swap-heavy partition per
// statistic. The selected values are full-sort-exact: the key mapping
// is monotone with NaNs pinned first, matching sort.Float64s order.
// xs is not modified.
func Percentiles(xs []float64, ps []float64) []float64 {
	out := make([]float64, len(ps))
	n := len(xs)
	if n == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	// Collect the order-statistic indices the interpolations read
	// (ascending, deduplicated — multiSelectKeys wants them sorted).
	idxs := make([]int, 0, 2*len(ps))
	for _, p := range ps {
		if p < 0 || p > 100 {
			panic(fmt.Sprintf("stats: percentile %v out of range", p))
		}
		pos := p / 100 * float64(n-1)
		idxs = append(idxs, int(math.Floor(pos)), int(math.Ceil(pos)))
	}
	sort.Ints(idxs)
	uniq := idxs[:0]
	for _, k := range idxs {
		if len(uniq) == 0 || uniq[len(uniq)-1] != k {
			uniq = append(uniq, k)
		}
	}

	keys := make([]uint64, 2*n)
	tmp := keys[n:]
	keys = keys[:n]
	for i, v := range xs {
		keys[i] = floatOrderKey(v)
	}
	sel := make([]uint64, len(uniq))
	ranks := append([]int(nil), uniq...) // multiSelectKeys rebases its rank slice
	multiSelectKeys(keys, tmp, ranks, sel)
	ord := func(k int) float64 {
		j := sort.SearchInts(uniq, k)
		return floatFromOrderKey(sel[j])
	}
	// Interpolate with the exact arithmetic of PercentileSorted.
	for i, p := range ps {
		if n == 1 {
			out[i] = ord(0)
			continue
		}
		pos := p / 100 * float64(n-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			out[i] = ord(lo)
			continue
		}
		frac := pos - float64(lo)
		out[i] = ord(lo)*(1-frac) + ord(hi)*frac
	}
	return out
}

// floatOrderKey maps v to a uint64 whose unsigned order matches the
// sort.Float64s order of the values: NaNs first (key 0), then ascending
// by value (negatives flip all bits, non-negatives flip the sign bit).
// The mapping is invertible on non-NaN values via floatFromOrderKey; no
// non-NaN value maps to key 0.
func floatOrderKey(v float64) uint64 {
	if v != v {
		return 0
	}
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// floatFromOrderKey inverts floatOrderKey (key 0 decodes to NaN).
func floatFromOrderKey(k uint64) float64 {
	if k == 0 {
		return math.NaN()
	}
	if k&(1<<63) != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

// multiSelectKeys resolves several order statistics of keys in one
// walk: ks lists the wanted 0-based ranks (ascending, unique) and the
// matching sel entry receives the rank's key. keys and tmp are equal-
// length scratch that is permuted/overwritten. Each round masks off the
// high bits every key shares (OR/AND over the range), buckets on the
// top ≤10 varying bits, scatters the range once, and either descends
// into the single bucket holding all remaining ranks or recurses per
// bucket — so a column costs O(n) regardless of how many statistics are
// read, and heavily tied columns (whole buckets of one value) terminate
// on the all-equal check instead of degrading.
func multiSelectKeys(keys, tmp []uint64, ks []int, sel []uint64) {
	const bucketBits = 10
	const buckets = 1 << bucketBits
	for {
		n := len(keys)
		if n <= 48 {
			// Insertion sort settles the small remainder exactly.
			for i := 1; i < n; i++ {
				v := keys[i]
				j := i
				for j > 0 && v < keys[j-1] {
					keys[j] = keys[j-1]
					j--
				}
				keys[j] = v
			}
			for i, k := range ks {
				sel[i] = keys[k]
			}
			return
		}
		orAll, andAll := uint64(0), ^uint64(0)
		for _, k := range keys {
			orAll |= k
			andAll &= k
		}
		varying := orAll ^ andAll
		if varying == 0 {
			for i := range ks {
				sel[i] = keys[0]
			}
			return
		}
		shift := bits.Len64(varying) - bucketBits
		if shift < 0 {
			shift = 0
		}
		var hist [buckets]int32
		for _, k := range keys {
			hist[(k>>uint(shift))&(buckets-1)]++
		}
		var start [buckets + 1]int32
		s := int32(0)
		for b := 0; b < buckets; b++ {
			start[b] = s
			s += hist[b]
		}
		start[buckets] = s
		pos := start
		for _, k := range keys {
			b := (k >> uint(shift)) & (buckets - 1)
			tmp[pos[b]] = k
			pos[b]++
		}
		// Group the ranks by bucket; tail-descend when one bucket holds
		// them all (the common case once ranks cluster), recurse otherwise.
		b := 0
		i := 0
		for i < len(ks) {
			for int(start[b+1]) <= ks[i] {
				b++
			}
			j := i
			for j < len(ks) && ks[j] < int(start[b+1]) {
				j++
			}
			lo, hi := start[b], start[b+1]
			for t := i; t < j; t++ {
				ks[t] -= int(lo)
			}
			if i == 0 && j == len(ks) {
				keys, tmp = tmp[lo:hi], keys[lo:hi]
				break // tail-descend with the swapped scratch
			}
			multiSelectKeys(tmp[lo:hi], keys[lo:hi], ks[i:j], sel[i:j])
			i = j
			if i == len(ks) {
				return
			}
		}
	}
}

// PercentileSorted is Percentile over already-sorted data — the form
// callers extracting several percentiles of one column use, so the
// column is copied and sorted once instead of once per percentile.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Welford accumulates a running mean and variance in a single pass.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN if empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Var returns the population variance (NaN if empty).
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// NormalPDF returns the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF returns P(X ≤ x) for X ~ N(mu, sigma²).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalQuantile returns the q-th quantile of the standard normal
// distribution using the Acklam rational approximation refined by one
// Newton step; absolute error below 1e-9 over (1e-300, 1-1e-16).
func NormalQuantile(q float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	// Acklam's coefficients.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case q < plow:
		u := math.Sqrt(-2 * math.Log(q))
		x = (((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	case q > 1-plow:
		u := math.Sqrt(-2 * math.Log(1-q))
		x = -(((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	default:
		u := q - 0.5
		r := u * u
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * u /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	// One Newton refinement.
	e := NormalCDF(x, 0, 1) - q
	x -= e / NormalPDF(x, 0, 1)
	return x
}

// LogGammaPDFAffine is not defined here; see package si for the spread IC.

// GammaIncP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) for a > 0, x ≥ 0, using the series expansion for
// x < a+1 and the continued fraction otherwise (Numerical Recipes style).
func GammaIncP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

// GammaIncQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 − P(a, x).
func GammaIncQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaSeries(a, x)
	default:
		return gammaContinuedFraction(a, x)
	}
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquaredCDF returns P(X ≤ x) for X ~ χ²_k.
func ChiSquaredCDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaIncP(k/2, x/2)
}

// ChiSquaredLogPDF returns the log density of χ²_k at x (−Inf for x ≤ 0).
func ChiSquaredLogPDF(x, k float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(k / 2)
	return (k/2-1)*math.Log(x) - x/2 - (k/2)*math.Ln2 - lg
}

// Digamma returns ψ(x), the derivative of log Γ, for x > 0, via the
// recurrence ψ(x) = ψ(x+1) − 1/x and the asymptotic series for large x.
func Digamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	var acc float64
	for x < 10 {
		acc -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// ln x − 1/(2x) − 1/(12x²) + 1/(120x⁴) − 1/(252x⁶) + 1/(240x⁸)
	return acc + math.Log(x) - inv/2 -
		inv2*(1.0/12-inv2*(1.0/120-inv2*(1.0/252-inv2/240)))
}

// KDE is a one-dimensional Gaussian kernel density estimate, used to
// reproduce the "distribution over the full data / within the subgroup"
// curves of Fig. 1.
type KDE struct {
	xs []float64
	h  float64 // bandwidth
}

// NewKDE builds a Gaussian KDE over xs. If bandwidth ≤ 0, Silverman's
// rule of thumb h = 1.06·σ̂·n^(−1/5) is used (with σ̂ the sample standard
// deviation, floored to a small positive value for degenerate samples).
func NewKDE(xs []float64, bandwidth float64) *KDE {
	if len(xs) == 0 {
		panic("stats: KDE needs at least one point")
	}
	h := bandwidth
	if h <= 0 {
		sd := math.Sqrt(Variance(xs))
		if sd < 1e-9 {
			sd = 1e-9
		}
		h = 1.06 * sd * math.Pow(float64(len(xs)), -0.2)
	}
	return &KDE{xs: append([]float64(nil), xs...), h: h}
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.h }

// PDF returns the estimated density at x.
func (k *KDE) PDF(x float64) float64 {
	var s float64
	for _, xi := range k.xs {
		s += NormalPDF(x, xi, k.h)
	}
	return s / float64(len(k.xs))
}

// Grid evaluates the density on m equally spaced points spanning
// [lo, hi] and returns the locations and densities.
func (k *KDE) Grid(lo, hi float64, m int) (xs, ds []float64) {
	if m < 2 {
		panic("stats: KDE grid needs at least 2 points")
	}
	xs = make([]float64, m)
	ds = make([]float64, m)
	step := (hi - lo) / float64(m-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
		ds[i] = k.PDF(xs[i])
	}
	return xs, ds
}

// ECDF returns the empirical CDF of xs evaluated at x: the fraction of
// samples ≤ x.
func ECDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
