// Package stats provides the descriptive statistics, probability
// distributions and special functions used throughout the subgroup
// discovery library: means and covariance matrices, percentiles,
// the normal and chi-squared distributions, the regularized incomplete
// gamma function, the digamma function, Gaussian kernel density
// estimation (Fig. 1 of the paper) and empirical CDFs (Figs. 8c, 9b).
//
// It replaces the statistics toolbox of the MATLAB substrate used by the
// original implementation, built only on the Go standard library.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// Mean returns the arithmetic mean of xs. It returns NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population (divide-by-n) variance of xs, matching
// the paper's statistic g (Eq. 2) which divides by |I|. Returns NaN for
// empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// MeanVec returns the column-wise mean of the rows with indices idx in
// the n×d matrix y. If idx is nil, all rows are used.
func MeanVec(y *mat.Dense, idx []int) mat.Vec {
	d := y.C
	out := make(mat.Vec, d)
	if idx == nil {
		for i := 0; i < y.R; i++ {
			row := y.Row(i)
			for j, v := range row {
				out[j] += v
			}
		}
		out.Scale(1 / float64(y.R))
		return out
	}
	if len(idx) == 0 {
		for j := range out {
			out[j] = math.NaN()
		}
		return out
	}
	for _, i := range idx {
		row := y.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	out.Scale(1 / float64(len(idx)))
	return out
}

// CovMat returns the population (divide-by-n) covariance matrix of the
// rows with indices idx in y, around their own mean. If idx is nil, all
// rows are used. Only the upper triangle is accumulated (the lower is a
// mirror: the (a,b) and (b,a) products are the same multiplications in
// the same order, so nothing is lost), halving the dominant d²·n work.
func CovMat(y *mat.Dense, idx []int) *mat.Dense {
	d := y.C
	mu := MeanVec(y, idx)
	cov := mat.NewDense(d, d)
	accumulate := func(row mat.Vec) {
		for a := 0; a < d; a++ {
			da := row[a] - mu[a]
			if da == 0 {
				continue
			}
			cr := cov.Data[a*d : (a+1)*d]
			for b := a; b < d; b++ {
				cr[b] += da * (row[b] - mu[b])
			}
		}
	}
	n := 0
	if idx == nil {
		n = y.R
		for i := 0; i < y.R; i++ {
			accumulate(y.Row(i))
		}
	} else {
		n = len(idx)
		for _, i := range idx {
			accumulate(y.Row(i))
		}
	}
	if n == 0 {
		return cov
	}
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			cov.Data[b*d+a] = cov.Data[a*d+b]
		}
	}
	cov.Scale(1 / float64(n))
	return cov
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics, the same convention as MATLAB's
// prctile with interpolation. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// Percentiles returns the p-th percentile of xs for every p in ps, with
// exactly the interpolation (and therefore exactly the values) of
// Percentile. Instead of fully sorting the copy it partially selects
// just the ≤ 2·len(ps) order statistics the interpolation reads —
// expected O(n + k·log k) instead of O(n·log n) — which makes it the
// form hot language builds use: a condition language needs a handful of
// split points per column, not a sorted column. xs is not modified.
func Percentiles(xs []float64, ps []float64) []float64 {
	out := make([]float64, len(ps))
	n := len(xs)
	if n == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	// Collect the order-statistic indices the interpolations read.
	idxs := make([]int, 0, 2*len(ps))
	for _, p := range ps {
		if p < 0 || p > 100 {
			panic(fmt.Sprintf("stats: percentile %v out of range", p))
		}
		pos := p / 100 * float64(n-1)
		idxs = append(idxs, int(math.Floor(pos)), int(math.Ceil(pos)))
	}
	sort.Ints(idxs)
	work := append([]float64(nil), xs...)
	// Partition NaNs to the front once (sort.Float64s order), so the
	// selection loop runs on the NaN-free suffix with a plain < compare —
	// the comparator is the inner loop, and the NaN check would roughly
	// double it.
	nan := 0
	for i, v := range work {
		if math.IsNaN(v) {
			work[i], work[nan] = work[nan], work[i]
			nan++
		}
	}
	from := nan
	for _, k := range idxs {
		if k < from {
			continue // duplicate, NaN-pinned, or pinned by a previous selection
		}
		selectFloat64(work, from, n, k)
		from = k + 1
		if from >= n {
			break
		}
	}
	// work is only partially sorted, but every order-statistic position
	// an interpolation reads was pinned by the selection loop above, so
	// PercentileSorted reads the exact full-sort values.
	for i, p := range ps {
		out[i] = PercentileSorted(work, p)
	}
	return out
}

// selectFloat64 partially sorts the NaN-free range a[lo:hi] so that
// a[k] holds the value a full ascending sort would put there,
// everything left of k is ≤ a[k] and everything right is ≥ a[k].
// Median-of-three quickselect with a three-way (Dutch-flag) partition:
// heavily tied columns — binary presence/absence targets, ordinal
// descriptors — collapse in one round instead of degrading
// quadratically.
func selectFloat64(a []float64, lo, hi, k int) {
	for hi-lo > 12 {
		// Median-of-three pivot.
		mid := int(uint(lo+hi) >> 1)
		p := median3(a[lo], a[mid], a[hi-1])
		lt, gt := lo, hi-1
		i := lo
		for i <= gt {
			switch {
			case a[i] < p:
				a[i], a[lt] = a[lt], a[i]
				lt++
				i++
			case p < a[i]:
				a[i], a[gt] = a[gt], a[i]
				gt--
			default:
				i++
			}
		}
		// a[lo:lt] < p ≤ a[lt:gt+1] == p ≤ a[gt+1:hi].
		switch {
		case k < lt:
			hi = lt
		case k > gt:
			lo = gt + 1
		default:
			return // k lands in the equal run: done
		}
	}
	// Small range: insertion sort settles every position.
	for i := lo + 1; i < hi; i++ {
		v := a[i]
		j := i
		for j > lo && v < a[j-1] {
			a[j] = a[j-1]
			j--
		}
		a[j] = v
	}
}

func median3(a, b, c float64) float64 {
	if b < a {
		a, b = b, a
	}
	if c < b {
		b = c
		if b < a {
			b = a
		}
	}
	return b
}

// PercentileSorted is Percentile over already-sorted data — the form
// callers extracting several percentiles of one column use, so the
// column is copied and sorted once instead of once per percentile.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Welford accumulates a running mean and variance in a single pass.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN if empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Var returns the population variance (NaN if empty).
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// NormalPDF returns the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF returns P(X ≤ x) for X ~ N(mu, sigma²).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalQuantile returns the q-th quantile of the standard normal
// distribution using the Acklam rational approximation refined by one
// Newton step; absolute error below 1e-9 over (1e-300, 1-1e-16).
func NormalQuantile(q float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	// Acklam's coefficients.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case q < plow:
		u := math.Sqrt(-2 * math.Log(q))
		x = (((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	case q > 1-plow:
		u := math.Sqrt(-2 * math.Log(1-q))
		x = -(((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	default:
		u := q - 0.5
		r := u * u
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * u /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	// One Newton refinement.
	e := NormalCDF(x, 0, 1) - q
	x -= e / NormalPDF(x, 0, 1)
	return x
}

// LogGammaPDFAffine is not defined here; see package si for the spread IC.

// GammaIncP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a,x)/Γ(a) for a > 0, x ≥ 0, using the series expansion for
// x < a+1 and the continued fraction otherwise (Numerical Recipes style).
func GammaIncP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

// GammaIncQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 − P(a, x).
func GammaIncQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaSeries(a, x)
	default:
		return gammaContinuedFraction(a, x)
	}
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquaredCDF returns P(X ≤ x) for X ~ χ²_k.
func ChiSquaredCDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaIncP(k/2, x/2)
}

// ChiSquaredLogPDF returns the log density of χ²_k at x (−Inf for x ≤ 0).
func ChiSquaredLogPDF(x, k float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(k / 2)
	return (k/2-1)*math.Log(x) - x/2 - (k/2)*math.Ln2 - lg
}

// Digamma returns ψ(x), the derivative of log Γ, for x > 0, via the
// recurrence ψ(x) = ψ(x+1) − 1/x and the asymptotic series for large x.
func Digamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	var acc float64
	for x < 10 {
		acc -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// ln x − 1/(2x) − 1/(12x²) + 1/(120x⁴) − 1/(252x⁶) + 1/(240x⁸)
	return acc + math.Log(x) - inv/2 -
		inv2*(1.0/12-inv2*(1.0/120-inv2*(1.0/252-inv2/240)))
}

// KDE is a one-dimensional Gaussian kernel density estimate, used to
// reproduce the "distribution over the full data / within the subgroup"
// curves of Fig. 1.
type KDE struct {
	xs []float64
	h  float64 // bandwidth
}

// NewKDE builds a Gaussian KDE over xs. If bandwidth ≤ 0, Silverman's
// rule of thumb h = 1.06·σ̂·n^(−1/5) is used (with σ̂ the sample standard
// deviation, floored to a small positive value for degenerate samples).
func NewKDE(xs []float64, bandwidth float64) *KDE {
	if len(xs) == 0 {
		panic("stats: KDE needs at least one point")
	}
	h := bandwidth
	if h <= 0 {
		sd := math.Sqrt(Variance(xs))
		if sd < 1e-9 {
			sd = 1e-9
		}
		h = 1.06 * sd * math.Pow(float64(len(xs)), -0.2)
	}
	return &KDE{xs: append([]float64(nil), xs...), h: h}
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.h }

// PDF returns the estimated density at x.
func (k *KDE) PDF(x float64) float64 {
	var s float64
	for _, xi := range k.xs {
		s += NormalPDF(x, xi, k.h)
	}
	return s / float64(len(k.xs))
}

// Grid evaluates the density on m equally spaced points spanning
// [lo, hi] and returns the locations and densities.
func (k *KDE) Grid(lo, hi float64, m int) (xs, ds []float64) {
	if m < 2 {
		panic("stats: KDE grid needs at least 2 points")
	}
	xs = make([]float64, m)
	ds = make([]float64, m)
	step := (hi - lo) / float64(m-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
		ds[i] = k.PDF(xs[i])
	}
	return xs, ds
}

// ECDF returns the empirical CDF of xs evaluated at x: the fraction of
// samples ≤ x.
func ECDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
