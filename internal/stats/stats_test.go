package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); math.Abs(m-2.5) > 1e-15 {
		t.Fatalf("Mean = %v", m)
	}
	if v := Variance(xs); math.Abs(v-1.25) > 1e-15 {
		t.Fatalf("Variance = %v, want 1.25 (population)", v)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Fatal("empty input should give NaN")
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-12 {
		t.Fatalf("Welford mean %v vs %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Var()-Variance(xs)) > 1e-10 {
		t.Fatalf("Welford var %v vs %v", w.Var(), Variance(xs))
	}
	if w.N() != len(xs) {
		t.Fatalf("Welford N = %d", w.N())
	}
}

func TestMeanVecAndCovMat(t *testing.T) {
	// Three 2-D points; known mean and covariance.
	y := mat.NewDense(3, 2)
	copy(y.Data, []float64{0, 0, 2, 2, 4, 4})
	mu := MeanVec(y, nil)
	if mu[0] != 2 || mu[1] != 2 {
		t.Fatalf("MeanVec = %v", mu)
	}
	cov := CovMat(y, nil)
	// Var per axis = (4+0+4)/3 = 8/3; covariance identical.
	want := 8.0 / 3
	for _, v := range cov.Data {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("CovMat = %v, want all %v", cov.Data, want)
		}
	}
	// Subset of rows.
	mu2 := MeanVec(y, []int{0, 2})
	if mu2[0] != 2 || mu2[1] != 2 {
		t.Fatalf("MeanVec subset = %v", mu2)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 30); math.Abs(got-3) > 1e-12 {
		t.Fatalf("interp percentile = %v, want 3", got)
	}
	// Input must not be modified.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Percentile modified its input: %v", in)
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	var s float64
	const step = 0.01
	for x := -8.0; x <= 8.0; x += step {
		s += NormalPDF(x, 0, 1) * step
	}
	if math.Abs(s-1) > 1e-3 {
		t.Fatalf("normal pdf integral = %v", s)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x, 0, 1); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, q := range []float64{0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999} {
		x := NormalQuantile(q)
		if got := NormalCDF(x, 0, 1); math.Abs(got-q) > 1e-9 {
			t.Fatalf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile at 0/1 should be ±Inf")
	}
}

func TestGammaIncComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10, 50} {
		for _, x := range []float64{0.1, 1, 5, 20, 80} {
			p := GammaIncP(a, x)
			q := GammaIncQ(a, x)
			if math.Abs(p+q-1) > 1e-12 {
				t.Fatalf("P+Q = %v for a=%v x=%v", p+q, a, x)
			}
			if p < 0 || p > 1 {
				t.Fatalf("P(%v,%v) = %v out of range", a, x, p)
			}
		}
	}
}

func TestChiSquaredCDFKnownValues(t *testing.T) {
	// Classic table values.
	cases := []struct{ x, k, want float64 }{
		{3.841458820694124, 1, 0.95},
		{5.991464547107979, 2, 0.95},
		{0, 3, 0},
		{2, 2, 1 - math.Exp(-1)}, // χ²₂ is Exp(1/2)
	}
	for _, c := range cases {
		if got := ChiSquaredCDF(c.x, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("ChiSquaredCDF(%v,%v) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
}

func TestChiSquaredLogPDFIntegratesToCDF(t *testing.T) {
	// ∫_a^b pdf must equal CDF(b) − CDF(a); midpoint rule avoids the
	// integrable singularity of χ²₁ at 0.
	for _, k := range []float64{1, 2, 5, 10} {
		const a, b = 0.5, 20.0
		const n = 20000
		step := (b - a) / n
		var s float64
		for i := 0; i < n; i++ {
			x := a + (float64(i)+0.5)*step
			s += math.Exp(ChiSquaredLogPDF(x, k)) * step
		}
		want := ChiSquaredCDF(b, k) - ChiSquaredCDF(a, k)
		if math.Abs(s-want) > 1e-6 {
			t.Fatalf("χ²_%v: ∫pdf = %v, CDF diff = %v", k, s, want)
		}
	}
	if !math.IsInf(ChiSquaredLogPDF(-1, 3), -1) {
		t.Fatal("log pdf at negative x should be -Inf")
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x must hold for all x > 0.
	f := func(raw float64) bool {
		x := math.Abs(raw)
		if x < 1e-3 || x > 1e6 || math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// ψ(1) = −γ (Euler–Mascheroni).
	if got := Digamma(1); math.Abs(got+0.5772156649015329) > 1e-10 {
		t.Fatalf("Digamma(1) = %v", got)
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	k := NewKDE(xs, 0)
	var s float64
	const step = 0.02
	for x := -10.0; x <= 10.0; x += step {
		s += k.PDF(x) * step
	}
	if math.Abs(s-1) > 5e-3 {
		t.Fatalf("KDE integral = %v", s)
	}
	if k.Bandwidth() <= 0 {
		t.Fatal("Silverman bandwidth should be positive")
	}
}

func TestKDEGrid(t *testing.T) {
	k := NewKDE([]float64{0}, 1)
	xs, ds := k.Grid(-1, 1, 3)
	if len(xs) != 3 || xs[0] != -1 || xs[2] != 1 {
		t.Fatalf("grid xs = %v", xs)
	}
	if ds[1] < ds[0] || ds[1] < ds[2] {
		t.Fatalf("grid should peak at center: %v", ds)
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := ECDF(xs, 2.5); got != 0.5 {
		t.Fatalf("ECDF = %v", got)
	}
	if got := ECDF(xs, 0); got != 0 {
		t.Fatalf("ECDF below min = %v", got)
	}
	if got := ECDF(xs, 9); got != 1 {
		t.Fatalf("ECDF above max = %v", got)
	}
}

// Property: ECDF is monotone nondecreasing in x.
func TestECDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	grid := make([]float64, 100)
	for i := range grid {
		grid[i] = rng.NormFloat64() * 2
	}
	sort.Float64s(grid)
	prev := -1.0
	for _, x := range grid {
		v := ECDF(xs, x)
		if v < prev {
			t.Fatalf("ECDF decreased: %v after %v", v, prev)
		}
		prev = v
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-12 || v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPercentilesMatchesSortedExactly: the partial-selection Percentiles
// must be bit-identical to sort + PercentileSorted — split points feed
// every condition language, so any drift would silently change every
// search result. Exercised over continuous, heavily tied (binary/ordinal)
// and tiny inputs.
func TestPercentilesMatchesSortedExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 240; trial++ {
		n := 1 + rng.Intn(400)
		if trial%8 >= 6 {
			// Large columns drive the radix selection through multi-round
			// descents and per-bucket recursion, not just the small-range
			// insertion sort.
			n = 1500 + rng.Intn(3000)
		}
		xs := make([]float64, n)
		switch trial % 4 {
		case 0: // continuous
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
		case 1: // binary (mammals-style presence/absence)
			for i := range xs {
				xs[i] = float64(rng.Intn(2))
			}
		case 2: // small ordinal alphabet
			for i := range xs {
				xs[i] = float64(rng.Intn(5))
			}
		case 3: // continuous with NaNs (sorted first, like sort.Float64s),
			// normalized [0,1) values (shared high key bits), and the
			// signed-zero / infinity edge keys
			for i := range xs {
				switch rng.Intn(10) {
				case 0:
					xs[i] = math.NaN()
				case 1:
					xs[i] = math.Inf(1 - 2*rng.Intn(2))
				case 2:
					xs[i] = 0 * float64(1-2*rng.Intn(2)) // ±0
				default:
					xs[i] = rng.Float64()
				}
			}
		}
		var ps []float64
		for k := 1 + rng.Intn(6); k > 0; k-- {
			ps = append(ps, rng.Float64()*100)
		}
		ps = append(ps, 0, 100, 50)
		got := Percentiles(xs, ps)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for i, p := range ps {
			want := PercentileSorted(sorted, p)
			if got[i] != want && !(math.IsNaN(got[i]) && math.IsNaN(want)) {
				t.Fatalf("trial %d n=%d p=%v: %v != %v", trial, n, p, got[i], want)
			}
		}
	}
}

func BenchmarkCovMat16(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	y := mat.NewDense(1000, 16)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CovMat(y, nil)
	}
}
