package benchcmp

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/search
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBeamSerial-8                	       1	    979137 ns/op
BenchmarkBeamSynthetic             	       5	    465599 ns/op	  178416 B/op	    1814 allocs/op
BenchmarkZeroAlloc-16            	    1000	       123 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/search	0.008s
`

func TestParse(t *testing.T) {
	entries, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries: %+v", len(entries), entries)
	}
	byName := map[string]Entry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	// -8 / -16 GOMAXPROCS suffixes are stripped.
	serial, ok := byName["BenchmarkBeamSerial"]
	if !ok || serial.NsPerOp != 979137 || serial.HasAllocs {
		t.Fatalf("BeamSerial = %+v", serial)
	}
	syn := byName["BenchmarkBeamSynthetic"]
	if syn.NsPerOp != 465599 || syn.AllocsPerOp != 1814 || syn.BytesPerOp != 178416 || !syn.HasAllocs {
		t.Fatalf("BeamSynthetic = %+v", syn)
	}
	zero := byName["BenchmarkZeroAlloc"]
	if zero.AllocsPerOp != 0 || !zero.HasAllocs {
		t.Fatalf("ZeroAlloc = %+v", zero)
	}

	if _, err := Parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	entries, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("round trip lost entries: %d vs %d", len(got), len(entries))
	}
	if got["BenchmarkBeamSynthetic"].AllocsPerOp != 1814 {
		t.Fatalf("round trip = %+v", got["BenchmarkBeamSynthetic"])
	}
}

func TestCompare(t *testing.T) {
	base := map[string]Entry{
		"A": {Name: "A", NsPerOp: 1e6, AllocsPerOp: 1000, HasAllocs: true},
		"B": {Name: "B", NsPerOp: 2e6, AllocsPerOp: 500, HasAllocs: true},
		"C": {Name: "C", NsPerOp: 100}, // too short for ns compare at minNs 1e6
		"D": {Name: "D", NsPerOp: 1e6, AllocsPerOp: 0, HasAllocs: true},
		"E": {Name: "E", NsPerOp: 1e6},
	}
	cur := map[string]Entry{
		"A": {Name: "A", NsPerOp: 1.1e6, AllocsPerOp: 1100, HasAllocs: true}, // within thresholds
		"B": {Name: "B", NsPerOp: 2e6, AllocsPerOp: 800, HasAllocs: true},    // allocs +60%
		"C": {Name: "C", NsPerOp: 1e4},                                       // 100x but under minNs
		"D": {Name: "D", NsPerOp: 1e6, AllocsPerOp: 3, HasAllocs: true},      // lost zero-alloc
		// E missing
		"F": {Name: "F", NsPerOp: 5},
	}
	res := Compare(base, cur, 0.30, 1.0, 1e6)
	if res.OK() {
		t.Fatal("expected failures")
	}
	var metrics []string
	for _, r := range res.Regressions {
		metrics = append(metrics, r.Name+":"+r.Metric)
	}
	want := "B:allocs/op D:allocs/op"
	if got := strings.Join(metrics, " "); got != want {
		t.Fatalf("regressions = %q, want %q", got, want)
	}
	if len(res.Missing) != 1 || res.Missing[0] != "E" {
		t.Fatalf("missing = %v", res.Missing)
	}
	if len(res.Added) != 1 || res.Added[0] != "F" {
		t.Fatalf("added = %v", res.Added)
	}

	// ns regression past the loose threshold is caught.
	cur["A"] = Entry{Name: "A", NsPerOp: 2.5e6, AllocsPerOp: 1000, HasAllocs: true}
	res = Compare(base, cur, 0.30, 1.0, 1e6)
	found := false
	for _, r := range res.Regressions {
		if r.Name == "A" && r.Metric == "ns/op" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ns regression not caught: %+v", res.Regressions)
	}

	// Identical runs pass.
	res = Compare(base, base, 0.30, 1.0, 1e6)
	if !res.OK() || len(res.Added) != 0 {
		t.Fatalf("self-compare failed: %+v", res)
	}
}

func TestWriteMarkdown(t *testing.T) {
	base := map[string]Entry{
		"A":       {Name: "A", NsPerOp: 1e6, AllocsPerOp: 1000, HasAllocs: true},
		"Removed": {Name: "Removed", NsPerOp: 5e5},
	}
	cur := map[string]Entry{
		"A":     {Name: "A", NsPerOp: 5e5, AllocsPerOp: 10, HasAllocs: true},
		"Added": {Name: "Added", NsPerOp: 2e6},
	}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, base, cur); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + separator + three benchmarks, sorted by name.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "| A ") || !strings.Contains(lines[2], "-50.0%") {
		t.Fatalf("A row wrong: %s", lines[2])
	}
	if !strings.HasPrefix(lines[3], "| Added ") || !strings.Contains(lines[3], "| — |") {
		t.Fatalf("Added row must mark the missing baseline side: %s", lines[3])
	}
	if !strings.HasPrefix(lines[4], "| Removed ") {
		t.Fatalf("Removed row missing: %s", lines[4])
	}
	if strings.Count(lines[2], "|") != 7 {
		t.Fatalf("A row has wrong column count: %s", lines[2])
	}
}
