// Package benchcmp parses `go test -bench` output into a stable JSON
// form and compares two such runs — the engine behind cmd/benchdiff and
// the CI benchmark-regression gate, which pins the perf wins recorded
// in CHANGES.md against a checked-in baseline.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's metrics. Allocs/op is machine-independent
// and therefore the most reliable regression signal; ns/op varies with
// hardware and load, so comparisons give it a separate (looser)
// threshold.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	// HasAllocs distinguishes "zero allocations" from "allocations not
	// reported" (benchmarks without b.ReportAllocs).
	HasAllocs bool `json:"hasAllocs,omitempty"`
}

// Parse reads `go test -bench` text output. Benchmark names are
// normalized by stripping the trailing -GOMAXPROCS suffix so baselines
// transfer between machines with different core counts.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 {
			continue
		}
		e := Entry{Name: normalizeName(fields[0])}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a result line (e.g. "BenchmarkFoo 	 ... FAIL")
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = val
			case "B/op":
				e.BytesPerOp = val
			case "allocs/op":
				e.AllocsPerOp = val
				e.HasAllocs = true
			}
		}
		if e.NsPerOp > 0 {
			out = append(out, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark results found")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func normalizeName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// WriteJSON emits the entries as indented JSON, sorted by name.
func WriteJSON(w io.Writer, entries []Entry) error {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sorted)
}

// ReadJSON loads entries written by WriteJSON, keyed by name.
func ReadJSON(r io.Reader) (map[string]Entry, error) {
	var entries []Entry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	out := make(map[string]Entry, len(entries))
	for _, e := range entries {
		out[e.Name] = e
	}
	return out, nil
}

// WriteMarkdown emits a before/after comparison of two runs as a
// GitHub-flavored markdown table — the human-readable artifact the CI
// bench job uploads next to the raw JSON. Benchmarks are listed by
// name; entries present on only one side are marked instead of
// silently dropped.
func WriteMarkdown(w io.Writer, baseline, current map[string]Entry) error {
	names := map[string]bool{}
	for n := range baseline {
		names[n] = true
	}
	for n := range current {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	if _, err := fmt.Fprintf(w, "| Benchmark | ns/op (base) | ns/op (current) | Δ ns/op | allocs/op (base) | allocs/op (current) |\n|---|---:|---:|---:|---:|---:|\n"); err != nil {
		return err
	}
	fmtNs := func(e Entry, ok bool) string {
		if !ok {
			return "—"
		}
		return fmt.Sprintf("%.0f", e.NsPerOp)
	}
	fmtAllocs := func(e Entry, ok bool) string {
		if !ok || !e.HasAllocs {
			return "—"
		}
		return fmt.Sprintf("%.0f", e.AllocsPerOp)
	}
	for _, n := range sorted {
		base, bok := baseline[n]
		cur, cok := current[n]
		delta := "—"
		if bok && cok && base.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(cur.NsPerOp-base.NsPerOp)/base.NsPerOp)
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n",
			n, fmtNs(base, bok), fmtNs(cur, cok), delta,
			fmtAllocs(base, bok), fmtAllocs(cur, cok)); err != nil {
			return err
		}
	}
	return nil
}

// Regression is one metric of one benchmark exceeding its threshold.
type Regression struct {
	Name    string  `json:"name"`
	Metric  string  `json:"metric"` // "ns/op" or "allocs/op"
	Base    float64 `json:"base"`
	Current float64 `json:"current"`
	Ratio   float64 `json:"ratio"` // current/base
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.0f -> %.0f (%.2fx)",
		r.Name, r.Metric, r.Base, r.Current, r.Ratio)
}

// Result of a comparison.
type Result struct {
	Regressions []Regression `json:"regressions,omitempty"`
	// Missing lists tracked benchmarks absent from the current run — a
	// silently dropped benchmark must not pass the gate.
	Missing []string `json:"missing,omitempty"`
	// Added lists current benchmarks not in the baseline (informational:
	// refresh the baseline to start tracking them).
	Added []string `json:"added,omitempty"`
}

// OK reports whether the gate passes.
func (res *Result) OK() bool {
	return len(res.Regressions) == 0 && len(res.Missing) == 0
}

// Compare checks current against baseline. allocThreshold bounds the
// allowed relative growth of allocs/op (exact and machine-independent:
// keep it tight). nsThreshold bounds ns/op growth — wall time varies
// with hardware and benchtime, so it is typically looser; ns/op is only
// compared for benchmarks whose baseline is at least minNs (very short
// benchmarks are pure noise at -benchtime 1x).
func Compare(baseline, current map[string]Entry, allocThreshold, nsThreshold, minNs float64) *Result {
	res := &Result{}
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			res.Missing = append(res.Missing, name)
			continue
		}
		if base.HasAllocs && cur.HasAllocs {
			switch {
			case base.AllocsPerOp == 0 && cur.AllocsPerOp > 0:
				res.Regressions = append(res.Regressions, Regression{
					Name: name, Metric: "allocs/op",
					Base: 0, Current: cur.AllocsPerOp, Ratio: cur.AllocsPerOp,
				})
			case cur.AllocsPerOp > base.AllocsPerOp*(1+allocThreshold):
				res.Regressions = append(res.Regressions, Regression{
					Name: name, Metric: "allocs/op",
					Base: base.AllocsPerOp, Current: cur.AllocsPerOp,
					Ratio: cur.AllocsPerOp / base.AllocsPerOp,
				})
			}
		}
		if base.NsPerOp >= minNs && cur.NsPerOp > base.NsPerOp*(1+nsThreshold) {
			res.Regressions = append(res.Regressions, Regression{
				Name: name, Metric: "ns/op",
				Base: base.NsPerOp, Current: cur.NsPerOp,
				Ratio: cur.NsPerOp / base.NsPerOp,
			})
		}
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			res.Added = append(res.Added, name)
		}
	}
	sort.Strings(res.Added)
	return res
}
