// Package bitset implements fixed-length dense bitsets used to represent
// subgroup extensions (index sets over the n data points). The beam
// search evaluates tens of thousands of candidate conjunctions per level,
// each an AND of per-condition bitsets, so the inner kernels (And,
// IntersectCount) are the hot path of the whole miner.
package bitset

import "math/bits"

// Set is a fixed-capacity bitset over [0, N).
type Set struct {
	n     int
	words []uint64
}

// New returns an empty bitset with capacity n.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Full returns a bitset with all n bits set.
func Full(n int) *Set {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// trim clears any bits at positions ≥ n in the last word.
func (s *Set) trim() {
	if rem := s.n % 64; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Len returns the capacity n.
func (s *Set) Len() int { return s.n }

// Add sets bit i.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i/64] |= 1 << uint(i%64)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	s.words[i/64] &^= 1 << uint(i%64)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/64]&(1<<uint(i%64)) != 0
}

// First returns the smallest set index, or -1 when the set is empty.
// Unlike a ForEach walk it stops at the first nonzero word, so callers
// probing a known-nonempty set pay O(1) in the common case.
func (s *Set) First() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Words exposes the backing word slice (bit i lives at words[i/64],
// position i%64). It is the raw form consumed by fused kernels that
// fold a trailing-zeros walk and per-point accumulation into one pass;
// callers must treat the slice as read-only.
func (s *Set) Words() []uint64 { return s.words }

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	out := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// AndInto sets dst = s ∩ t, reusing dst's storage. All three must share
// the same capacity. dst may alias s or t.
func AndInto(dst, s, t *Set) {
	if dst.n != s.n || s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	for i := range dst.words {
		dst.words[i] = s.words[i] & t.words[i]
	}
}

// AndCountInto sets dst = s ∩ t and returns the number of set bits, in
// a single pass over the words. Same capacity and aliasing rules as
// AndInto. This is the inner kernel of the candidate-evaluation engine:
// the intersection and the support test of a candidate subgroup cost
// one traversal and zero allocations. The word loop is unrolled four
// wide so the AND/store/popcount streams pipeline instead of serializing
// on one count accumulator per word.
func AndCountInto(dst, s, t *Set) int {
	if dst.n != s.n || s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	dw := dst.words
	sw := s.words[:len(dw)]
	tw := t.words[:len(dw)]
	c := 0
	i := 0
	for ; i+4 <= len(dw); i += 4 {
		w0 := sw[i] & tw[i]
		w1 := sw[i+1] & tw[i+1]
		w2 := sw[i+2] & tw[i+2]
		w3 := sw[i+3] & tw[i+3]
		dw[i], dw[i+1], dw[i+2], dw[i+3] = w0, w1, w2, w3
		c += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(dw); i++ {
		w := sw[i] & tw[i]
		dw[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// OrCountInto sets dst = s ∪ t and returns the number of set bits —
// the union analogue of AndCountInto, same capacity and aliasing rules,
// same four-wide word batching.
func OrCountInto(dst, s, t *Set) int {
	if dst.n != s.n || s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	dw := dst.words
	sw := s.words[:len(dw)]
	tw := t.words[:len(dw)]
	c := 0
	i := 0
	for ; i+4 <= len(dw); i += 4 {
		w0 := sw[i] | tw[i]
		w1 := sw[i+1] | tw[i+1]
		w2 := sw[i+2] | tw[i+2]
		w3 := sw[i+3] | tw[i+3]
		dw[i], dw[i+1], dw[i+2], dw[i+3] = w0, w1, w2, w3
		c += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(dw); i++ {
		w := sw[i] | tw[i]
		dw[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// AndNotCountInto sets dst = s \ t and returns the number of set bits —
// the difference analogue of AndCountInto, same capacity and aliasing
// rules, same four-wide word batching.
func AndNotCountInto(dst, s, t *Set) int {
	if dst.n != s.n || s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	dw := dst.words
	sw := s.words[:len(dw)]
	tw := t.words[:len(dw)]
	c := 0
	i := 0
	for ; i+4 <= len(dw); i += 4 {
		w0 := sw[i] &^ tw[i]
		w1 := sw[i+1] &^ tw[i+1]
		w2 := sw[i+2] &^ tw[i+2]
		w3 := sw[i+3] &^ tw[i+3]
		dw[i], dw[i+1], dw[i+2], dw[i+3] = w0, w1, w2, w3
		c += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(dw); i++ {
		w := sw[i] &^ tw[i]
		dw[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// And returns s ∩ t as a new bitset.
func (s *Set) And(t *Set) *Set {
	out := New(s.n)
	AndInto(out, s, t)
	return out
}

// AndNot returns s \ t as a new bitset.
func (s *Set) AndNot(t *Set) *Set {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	out := New(s.n)
	for i := range out.words {
		out.words[i] = s.words[i] &^ t.words[i]
	}
	return out
}

// Or returns s ∪ t as a new bitset.
func (s *Set) Or(t *Set) *Set {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	out := New(s.n)
	for i := range out.words {
		out.words[i] = s.words[i] | t.words[i]
	}
	return out
}

// IntersectCount returns |s ∩ t| without allocating. Word-batched four
// wide like the CountInto kernels — the binary-target sufficient
// statistics and the grouped scoring paths call this in tight loops.
func (s *Set) IntersectCount(t *Set) int {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	sw := s.words
	tw := t.words[:len(sw)]
	c := 0
	i := 0
	for ; i+4 <= len(sw); i += 4 {
		c += bits.OnesCount64(sw[i]&tw[i]) + bits.OnesCount64(sw[i+1]&tw[i+1]) +
			bits.OnesCount64(sw[i+2]&tw[i+2]) + bits.OnesCount64(sw[i+3]&tw[i+3])
	}
	for ; i < len(sw); i++ {
		c += bits.OnesCount64(sw[i] & tw[i])
	}
	return c
}

// Equal reports whether s and t contain exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn with every set index in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// IterateInto appends the set indices in increasing order to buf and
// returns the extended slice. Passing buf[:0] of a reusable slice makes
// repeated index extraction allocation-free once the buffer has grown
// to the working-set size (the optimistic-estimate loops of the exact
// searches call this once per search node).
func (s *Set) IterateInto(buf []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			buf = append(buf, wi*64+b)
			w &= w - 1
		}
	}
	return buf
}

// Indices returns the set indices in increasing order.
func (s *Set) Indices() []int {
	return s.IterateInto(make([]int, 0, s.Count()))
}

// FromIndices builds a bitset of capacity n containing exactly idx.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}
