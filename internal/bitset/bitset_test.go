package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	if !s.Contains(64) || s.Contains(63) {
		t.Fatal("Contains wrong")
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 2 {
		t.Fatal("Remove failed")
	}
	if s.Contains(-1) || s.Contains(500) {
		t.Fatal("out-of-range Contains should be false")
	}
}

func TestFullAndTrim(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		f := Full(n)
		if f.Count() != n {
			t.Fatalf("Full(%d).Count() = %d", n, f.Count())
		}
	}
}

func TestIndicesRoundTrip(t *testing.T) {
	idx := []int{3, 17, 64, 65, 99}
	s := FromIndices(100, idx)
	got := s.Indices()
	if len(got) != len(idx) {
		t.Fatalf("Indices = %v", got)
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("Indices = %v, want %v", got, idx)
		}
	}
}

// reference map-based model for property testing.
type model map[int]bool

func buildPair(seed int64, n int) (*Set, *Set, model, model) {
	rng := rand.New(rand.NewSource(seed))
	a, b := New(n), New(n)
	ma, mb := model{}, model{}
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			a.Add(i)
			ma[i] = true
		}
		if rng.Intn(3) == 0 {
			b.Add(i)
			mb[i] = true
		}
	}
	return a, b, ma, mb
}

func TestSetOpsAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		n := 1 + int(uint64(seed)%200)
		a, b, ma, mb := buildPair(seed, n)

		and := a.And(b)
		or := a.Or(b)
		diff := a.AndNot(b)
		ic := a.IntersectCount(b)

		wantIC := 0
		for i := 0; i < n; i++ {
			inA, inB := ma[i], mb[i]
			if and.Contains(i) != (inA && inB) {
				return false
			}
			if or.Contains(i) != (inA || inB) {
				return false
			}
			if diff.Contains(i) != (inA && !inB) {
				return false
			}
			if inA && inB {
				wantIC++
			}
		}
		if ic != wantIC || and.Count() != wantIC {
			return false
		}
		// And must equal AndInto result.
		dst := New(n)
		AndInto(dst, a, b)
		return dst.Equal(and)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAndIntoAliasing(t *testing.T) {
	a := FromIndices(70, []int{1, 5, 69})
	b := FromIndices(70, []int{5, 69})
	AndInto(a, a, b) // dst aliases s
	if a.Count() != 2 || !a.Contains(5) || !a.Contains(69) {
		t.Fatalf("aliased AndInto wrong: %v", a.Indices())
	}
}

func TestForEachOrder(t *testing.T) {
	s := FromIndices(200, []int{199, 0, 64, 127, 128})
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 64, 127, 128, 199}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

func TestEqualAndClone(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3})
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Add(50)
	if a.Equal(c) {
		t.Fatal("clone aliases original")
	}
	if a.Equal(New(101)) {
		t.Fatal("different capacities must not be equal")
	}
}

func BenchmarkIntersectCount(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 2220
	x, y := New(n), New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			x.Add(i)
		}
		if rng.Intn(2) == 0 {
			y.Add(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.IntersectCount(y)
	}
}

func BenchmarkAndInto(b *testing.B) {
	n := 2220
	x, y, dst := Full(n), Full(n), New(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndInto(dst, x, y)
	}
}

func TestFirst(t *testing.T) {
	if got := New(130).First(); got != -1 {
		t.Fatalf("empty set First = %d, want -1", got)
	}
	for _, idx := range []int{0, 1, 63, 64, 65, 127, 129} {
		s := New(130)
		s.Add(idx)
		s.Add(129)
		if got := s.First(); got != idx {
			t.Fatalf("First = %d, want %d", got, idx)
		}
	}
	if got := Full(130).First(); got != 0 {
		t.Fatalf("full set First = %d, want 0", got)
	}
}
