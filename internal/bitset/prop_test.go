package bitset

import (
	"math/rand"
	"testing"
)

// randomSet draws a bitset of capacity n with each bit set with
// probability p.
func randomSet(rng *rand.Rand, n int, p float64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			s.Add(i)
		}
	}
	return s
}

// TestAndIntoMatchesAnd is the property test backing the engine's
// scratch-reuse path: for random operands of awkward capacities
// (crossing word boundaries), AndInto into a scratch set must produce
// exactly the same bits as the allocating And, including when dst
// aliases either operand.
func TestAndIntoMatchesAnd(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		a := randomSet(rng, n, rng.Float64())
		b := randomSet(rng, n, rng.Float64())
		want := a.And(b)

		dst := randomSet(rng, n, 0.5) // dirty scratch must be overwritten
		AndInto(dst, a, b)
		if !dst.Equal(want) {
			t.Fatalf("n=%d: AndInto differs from And", n)
		}

		// Aliasing: dst == s and dst == t.
		sa := a.Clone()
		AndInto(sa, sa, b)
		if !sa.Equal(want) {
			t.Fatalf("n=%d: AndInto with dst aliasing s differs", n)
		}
		tb := b.Clone()
		AndInto(tb, a, tb)
		if !tb.Equal(want) {
			t.Fatalf("n=%d: AndInto with dst aliasing t differs", n)
		}
	}
}

func TestAndCountIntoMatchesAndPlusCount(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		a := randomSet(rng, n, rng.Float64())
		b := randomSet(rng, n, rng.Float64())
		want := a.And(b)
		dst := randomSet(rng, n, 0.5)
		got := AndCountInto(dst, a, b)
		if !dst.Equal(want) {
			t.Fatalf("n=%d: AndCountInto bits differ from And", n)
		}
		if got != want.Count() {
			t.Fatalf("n=%d: AndCountInto count %d, want %d", n, got, want.Count())
		}
		if got != a.IntersectCount(b) {
			t.Fatalf("n=%d: AndCountInto disagrees with IntersectCount", n)
		}
	}
}

// TestOrCountIntoMatchesOrPlusCount mirrors the AndCountInto property
// test for the union kernel, including the aliasing cases and the
// batched/remainder word-boundary shapes.
func TestOrCountIntoMatchesOrPlusCount(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(600) // > 4 words exercises the unrolled batches
		a := randomSet(rng, n, rng.Float64())
		b := randomSet(rng, n, rng.Float64())
		want := a.Or(b)
		dst := randomSet(rng, n, 0.5)
		got := OrCountInto(dst, a, b)
		if !dst.Equal(want) {
			t.Fatalf("n=%d: OrCountInto bits differ from Or", n)
		}
		if got != want.Count() {
			t.Fatalf("n=%d: OrCountInto count %d, want %d", n, got, want.Count())
		}
		sa := a.Clone()
		if OrCountInto(sa, sa, b); !sa.Equal(want) {
			t.Fatalf("n=%d: OrCountInto with dst aliasing s differs", n)
		}
		tb := b.Clone()
		if OrCountInto(tb, a, tb); !tb.Equal(want) {
			t.Fatalf("n=%d: OrCountInto with dst aliasing t differs", n)
		}
	}
}

// TestAndNotCountIntoMatchesAndNotPlusCount mirrors the AndCountInto
// property test for the difference kernel.
func TestAndNotCountIntoMatchesAndNotPlusCount(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(600)
		a := randomSet(rng, n, rng.Float64())
		b := randomSet(rng, n, rng.Float64())
		want := a.AndNot(b)
		dst := randomSet(rng, n, 0.5)
		got := AndNotCountInto(dst, a, b)
		if !dst.Equal(want) {
			t.Fatalf("n=%d: AndNotCountInto bits differ from AndNot", n)
		}
		if got != want.Count() {
			t.Fatalf("n=%d: AndNotCountInto count %d, want %d", n, got, want.Count())
		}
		sa := a.Clone()
		if AndNotCountInto(sa, sa, b); !sa.Equal(want) {
			t.Fatalf("n=%d: AndNotCountInto with dst aliasing s differs", n)
		}
		tb := b.Clone()
		if AndNotCountInto(tb, a, tb); !tb.Equal(want) {
			t.Fatalf("n=%d: AndNotCountInto with dst aliasing t differs", n)
		}
	}
}

func TestCountIntoCapacityMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(dst, s, t *Set) int{
		"AndCountInto": AndCountInto, "OrCountInto": OrCountInto, "AndNotCountInto": AndNotCountInto,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: capacity mismatch must panic", name)
				}
			}()
			fn(New(10), New(10), New(11))
		}()
	}
}

func TestIterateIntoMatchesIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	buf := make([]int, 0, 64) // reused across trials, like the engine does
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		s := randomSet(rng, n, rng.Float64())
		want := s.Indices()
		buf = s.IterateInto(buf[:0])
		if len(buf) != len(want) {
			t.Fatalf("n=%d: IterateInto yielded %d indices, want %d", n, len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("n=%d: index %d = %d, want %d", n, i, buf[i], want[i])
			}
		}
	}
}

func TestAndIntoCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch must panic")
		}
	}()
	AndInto(New(10), New(10), New(11))
}
