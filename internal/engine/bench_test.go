package engine_test

import (
	"math/rand"
	"testing"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mat"
	"repro/internal/si"
)

// benchEvaluator builds an evaluator over the synthetic dataset with an
// SI scorer whose model carries `commits` committed location patterns —
// the many-groups regime that used to scale per-candidate cost with the
// group count.
func benchEvaluator(b *testing.B, commits int) (*engine.Evaluator, *engine.Batch) {
	b.Helper()
	ds := gen.Synthetic620(gen.SeedSynthetic).DS
	m, err := background.New(ds.N(), make(mat.Vec, ds.Dy()), mat.Eye(ds.Dy()))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	target := make(mat.Vec, ds.Dy())
	for c := 0; c < commits; c++ {
		ext := bitset.New(ds.N())
		lo := rng.Intn(ds.N() - 60)
		for i := lo; i < lo+40+rng.Intn(60) && i < ds.N(); i++ {
			ext.Add(i)
		}
		target[0] = 0.05 * float64(c%3)
		if err := m.CommitLocation(ext, target); err != nil {
			b.Fatal(err)
		}
	}
	sc, err := si.NewLocationScorer(m, ds.Y, si.Default())
	if err != nil {
		b.Fatal(err)
	}
	lang := engine.LanguageFor(ds, 4)
	ev := engine.NewEvaluator(lang, sc, engine.Options{Parallelism: 1, MinSupport: 2})

	// A representative level-2 batch: every condition refining every
	// condition extension (capped), plus the level-1 nil-parent batch is
	// benchmarked separately.
	batch := &engine.Batch{}
	batch.Reset(2)
	for p := 0; p < len(lang.Conds) && p < 20; p++ {
		batch.StartParent(lang.Exts[p])
		for c := range lang.Conds {
			if c == p {
				continue
			}
			lo, hi := engine.CondID(p), engine.CondID(c)
			if hi < lo {
				lo, hi = hi, lo
			}
			batch.Add(engine.CondID(c), []engine.CondID{lo, hi})
		}
	}
	return ev, batch
}

// BenchmarkEvaluateBatchDepth1ManyGroups measures a full level-1 batch
// (nil parents) against a 32-commit model: with the depth-1 sufficient-
// statistics table every candidate is scored without touching a bitset.
func BenchmarkEvaluateBatchDepth1ManyGroups(b *testing.B) {
	ev, _ := benchEvaluator(b, 32)
	lang := engine.LanguageFor(gen.Synthetic620(gen.SeedSynthetic).DS, 4)
	batch := &engine.Batch{}
	batch.Reset(1)
	batch.StartParent(nil)
	for i := range lang.Conds {
		batch.Add(engine.CondID(i), []engine.CondID{engine.CondID(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, timedOut := ev.EvaluateBatch(batch); timedOut {
			b.Fatal("unexpected timeout")
		}
	}
}

// BenchmarkEvaluateBatchDeepManyGroups measures a deep (level-2 style)
// batch against a 32-commit model: one fused AndCountInto + label-pass
// scoring per candidate, independent of the group count.
func BenchmarkEvaluateBatchDeepManyGroups(b *testing.B) {
	ev, batch := benchEvaluator(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, timedOut := ev.EvaluateBatch(batch); timedOut {
			b.Fatal("unexpected timeout")
		}
	}
}
