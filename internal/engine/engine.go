// Package engine owns the candidate-evaluation pipeline shared by
// every subgroup search strategy: the beam search, the exhaustive
// oracle, the optimal branch-and-bound and the baseline quality
// searches all score candidates through this package.
//
// The pipeline is built to keep the steady-state hot path free of
// allocations: condition extensions are precomputed per dataset and
// cached (Language), each evaluation worker intersects into a pooled
// scratch bitset (bitset.AndCountInto) and only materializes an
// extension for candidates that survive support and scoring,
// intentions are canonical ascending condition-ID slices deduplicated
// by integer hash (no string keys), and result logs are bounded top-k
// heaps rather than sort-and-truncate over the whole level.
package engine

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/mat"
)

// Scorer evaluates a candidate subgroup extension described by numConds
// conditions. ok=false rejects the candidate (too small, degenerate...).
// Implementations must be safe for concurrent use and must not retain
// ext, which is worker-owned scratch.
type Scorer interface {
	Score(ext *bitset.Set, numConds int) (si, ic float64, mean mat.Vec, ok bool)
}

// ScorerWorker is a single-goroutine scoring context with reusable
// internal scratch: its steady-state Score path performs no heap
// allocations. The returned mean is worker-owned scratch, valid only
// until the worker's next call — callers clone what they retain.
type ScorerWorker interface {
	Score(ext *bitset.Set, numConds int) (si, ic float64, mean mat.Vec, ok bool)
}

// WorkerScorer is a Scorer that can mint independent per-goroutine
// workers. The engine gives each evaluation goroutine its own worker,
// making the whole batch-scoring path allocation-free.
type WorkerScorer interface {
	Scorer
	NewWorker() ScorerWorker
}

// StatScorerWorker scores a candidate directly from sufficient
// statistics — the per-group intersection counts of the extension and
// the sum of target rows over it — with no bitset pass at all. Both
// slices are caller-owned and must not be modified or retained. Workers
// must produce bit-identical results through Score and ScoreStats.
type StatScorerWorker interface {
	ScorerWorker
	ScoreStats(counts []int32, ysum mat.Vec, size, numConds int) (si, ic float64, mean mat.Vec, ok bool)
}

// GroupLabeler exposes a scorer's dense per-point group labeling so the
// evaluator can precompute per-condition sufficient statistics (the
// depth-1 table). Labels()[i] must index a fixed partition of the
// points into NumGroups() groups, matching the counts ScoreStats
// expects.
type GroupLabeler interface {
	NumGroups() int
	Labels() []int32
}

// Options configure an Evaluator.
type Options struct {
	Parallelism int       // worker goroutines (default GOMAXPROCS)
	MinSupport  int       // minimum subgroup size (default 2)
	Deadline    time.Time // zero means no time budget
	// SelectTop, when positive, relaxes EvaluateBatch's ordering
	// contract: only the first min(SelectTop, len) results are
	// guaranteed to be the best of the batch, in engine order; the rest
	// follow in unspecified order. Strategies that consume a bounded
	// prefix (beam width, top-k log) set it to skip sorting the long
	// tail of every level. The returned *set* of results is unchanged,
	// so anything order-insensitive (the bounded top-k log) sees
	// identical outcomes.
	SelectTop int
}

func (o Options) withDefaults() Options {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 2
	}
	return o
}

// Candidate is one unscored subgroup refinement: the parent's extension
// and the condition to intersect it with. Ids is the candidate's full
// canonical intention (ascending CondIDs, including Cond). A nil Parent
// means the full dataset — the level-1 form that lets the evaluator
// skip the intersection entirely (the extension IS the condition's) and
// score from the precomputed depth-1 table when the scorer supports it.
type Candidate struct {
	Parent *bitset.Set
	Cond   CondID
	Ids    []CondID
}

// Scored is one accepted (supported, scoreable) candidate. EvaluateBatch
// returns it *unmaterialized* — Ext and Mean are nil; Cand indexes the
// candidate within its batch — so that candidates which never survive
// beam/log selection cost no allocations. Callers pass the survivors to
// Evaluator.Materialize, which fills Ext (an independent copy, safe to
// keep as a beam parent or result) and Mean with values bit-identical
// to the ones scored.
type Scored struct {
	Ids    []CondID
	Cand   int
	Ext    *bitset.Set
	Size   int
	SI, IC float64
	Mean   mat.Vec
}

// better is the engine's total order on scored candidates: SI
// descending, canonical intention ascending as the deterministic
// tiebreak. Every strategy ranks with this one ordering, so beam,
// exhaustive and heap-based logs agree on ties.
func better(aSI float64, aIds []CondID, bSI float64, bIds []CondID) bool {
	if aSI != bSI {
		return aSI > bSI
	}
	return lessIDs(aIds, bIds)
}

// lessIDs compares canonical ID slices lexicographically.
func lessIDs(a, b []CondID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Evaluator scores batches of candidates against one Language and
// Scorer, reusing per-worker scratch bitsets (and, for WorkerScorers,
// per-worker scorer scratch) across batches. An Evaluator is cheap to
// create per search; it must not be shared between concurrent searches.
type Evaluator struct {
	lang    *Language
	sc      Scorer
	opt     Options
	scratch []*bitset.Set
	full    *bitset.Set

	// workers[i] is goroutine i's scoring context when sc is a
	// WorkerScorer; nil entries fall back to the concurrent sc.Score.
	workers []ScorerWorker
	// statWorkers mirrors workers when they support stat scoring.
	statWorkers []StatScorerWorker
	// d1 is the depth-1 sufficient-statistics table: per-condition
	// per-group counts plus the Language-cached target sums, letting
	// level-1 candidates be scored with no bitset pass at all. Non-nil
	// only when the scorer exposes its group labeling.
	d1 *depthOneTable
}

type depthOneTable struct {
	counts [][]int32 // per condition, per group: |ext(c) ∩ group|
	sums   []mat.Vec // per condition: Σ_{i∈ext(c)} yᵢ (Language-cached)
	sizes  []int     // per condition: |ext(c)| (Language-cached)
}

// NewEvaluator builds an evaluator over the language.
func NewEvaluator(lang *Language, sc Scorer, opt Options) *Evaluator {
	opt = opt.withDefaults()
	e := &Evaluator{lang: lang, sc: sc, opt: opt}
	e.scratch = make([]*bitset.Set, opt.Parallelism)
	for i := range e.scratch {
		e.scratch[i] = bitset.New(lang.DS.N())
	}
	e.full = bitset.Full(lang.DS.N())
	if ws, ok := sc.(WorkerScorer); ok {
		e.workers = make([]ScorerWorker, opt.Parallelism)
		e.statWorkers = make([]StatScorerWorker, opt.Parallelism)
		allStat := true
		for i := range e.workers {
			w := ws.NewWorker()
			e.workers[i] = w
			if sw, ok := w.(StatScorerWorker); ok {
				e.statWorkers[i] = sw
			} else {
				allStat = false
			}
		}
		if gl, ok := sc.(GroupLabeler); ok && allStat {
			e.d1 = buildDepthOne(lang, gl)
		} else {
			e.statWorkers = nil
		}
	}
	return e
}

// buildDepthOne precomputes, for every condition, the per-group
// intersection counts of its extension under the scorer's labeling —
// one trailing-zeros pass per condition, backed by a single allocation.
// Together with the Language's cached per-condition target sums this is
// everything a StatScorerWorker needs, so scoring the whole first level
// touches no bitsets.
func buildDepthOne(lang *Language, gl GroupLabeler) *depthOneTable {
	labels := gl.Labels()
	ng := gl.NumGroups()
	if ng == 0 || len(labels) != lang.DS.N() {
		return nil
	}
	sums, sizes := lang.CondTargetStats()
	counts := make([][]int32, len(lang.Exts))
	buf := make([]int32, ng*len(lang.Exts))
	for ci, ext := range lang.Exts {
		c := buf[ci*ng : (ci+1)*ng : (ci+1)*ng]
		if ng == 1 {
			// Fresh model: the only group's count is the extension size.
			c[0] = int32(sizes[ci])
		} else {
			for wi, w := range ext.Words() {
				base := wi * 64
				for w != 0 {
					b := bits.TrailingZeros64(w)
					w &= w - 1
					c[labels[base+b]]++
				}
			}
		}
		counts[ci] = c
	}
	return &depthOneTable{counts: counts, sums: sums, sizes: sizes}
}

// EvaluateBatch scores all candidates in parallel and returns the
// accepted ones sorted by the engine ordering (SI descending,
// deterministic regardless of scheduling). The results are
// unmaterialized (nil Ext and Mean — see Scored); with a WorkerScorer
// the entire batch costs no per-candidate allocations: level-1
// candidates (nil Parent) are scored straight from the depth-1 table,
// deeper ones through one fused AndCountInto + worker-scratch scoring
// pass.
//
// When the evaluator's Deadline expires mid-batch the whole batch is
// abandoned and timedOut is true with a nil result: a partial level is
// never returned, so completed results stay deterministic and a caller
// treats an expired batch exactly like a deadline seen before it.
func (e *Evaluator) EvaluateBatch(cands []Candidate) (kept []Scored, timedOut bool) {
	out := make([]Scored, len(cands))
	valid := make([]bool, len(cands))
	checkDeadline := !e.opt.Deadline.IsZero()
	var expired atomic.Bool

	var wg sync.WaitGroup
	chunk := (len(cands) + e.opt.Parallelism - 1) / e.opt.Parallelism
	for w := 0; w < e.opt.Parallelism; w++ {
		lo := w * chunk
		if lo >= len(cands) {
			break
		}
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if checkDeadline && (i-lo)&63 == 0 {
					if expired.Load() {
						return
					}
					if time.Now().After(e.opt.Deadline) {
						expired.Store(true)
						return
					}
				}
				si, ic, size, ok := e.scoreCandidate(w, &cands[i])
				if !ok {
					continue
				}
				out[i] = Scored{
					Ids:  cands[i].Ids,
					Cand: i,
					Size: size,
					SI:   si, IC: ic,
				}
				valid[i] = true
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if expired.Load() {
		return nil, true
	}

	kept = out[:0] // filter in place; out's backing array is ours
	for i := range out {
		if valid[i] {
			kept = append(kept, out[i])
		}
	}
	if e.opt.SelectTop > 0 {
		SelectTopScored(kept, e.opt.SelectTop)
	} else {
		SortScored(kept)
	}
	return kept, false
}

// scoreCandidate evaluates one candidate on evaluation goroutine w,
// discarding the (scratch) mean — the batch path; Materialize re-derives
// the mean only for retained candidates.
func (e *Evaluator) scoreCandidate(w int, c *Candidate) (si, ic float64, size int, ok bool) {
	if c.Parent == nil && e.d1 != nil {
		size = e.d1.sizes[c.Cond]
		if size < e.opt.MinSupport {
			return 0, 0, 0, false
		}
		si, ic, _, ok = e.statWorkers[w].ScoreStats(
			e.d1.counts[c.Cond], e.d1.sums[c.Cond], size, len(c.Ids))
		return si, ic, size, ok
	}
	parent := c.Parent
	if parent == nil {
		parent = e.full
	}
	scratch := e.scratch[w]
	size = bitset.AndCountInto(scratch, parent, e.lang.Exts[c.Cond])
	if size < e.opt.MinSupport {
		return 0, 0, 0, false
	}
	if e.workers != nil {
		si, ic, _, ok = e.workers[w].Score(scratch, len(c.Ids))
	} else {
		si, ic, _, ok = e.sc.Score(scratch, len(c.Ids))
	}
	return si, ic, size, ok
}

// Materialize fills Ext and Mean for a scored candidate the caller is
// about to retain (beam parent, top-k entry). The extension is
// recomputed with the same intersection kernel and the mean re-derived
// by the same scoring path, so materialized values are bit-identical to
// the ones EvaluateBatch ranked on; only the handful of survivors per
// level pay the two clones. cands must be the batch the Scored came
// from. No-op when already materialized.
func (e *Evaluator) Materialize(cands []Candidate, s *Scored) {
	if s.Ext != nil {
		return
	}
	c := &cands[s.Cand]
	if c.Parent == nil {
		s.Ext = e.lang.Exts[c.Cond].Clone()
		if e.d1 != nil {
			_, _, mean, ok := e.statWorkers[0].ScoreStats(
				e.d1.counts[c.Cond], e.d1.sums[c.Cond], e.d1.sizes[c.Cond], len(c.Ids))
			if ok {
				s.Mean = mean.Clone()
			}
			return
		}
	} else {
		ext := bitset.New(e.lang.DS.N())
		bitset.AndCountInto(ext, c.Parent, e.lang.Exts[c.Cond])
		s.Ext = ext
	}
	// Score the just-built extension directly — same bits as the batch
	// pass, so the same floats come back.
	if e.workers != nil {
		if _, _, mean, ok := e.workers[0].Score(s.Ext, len(c.Ids)); ok {
			s.Mean = mean.Clone()
		}
	} else if _, _, mean, ok := e.sc.Score(s.Ext, len(c.Ids)); ok {
		s.Mean = mean
	}
}

// SortScored sorts by the engine ordering: SI descending, canonical
// intention ascending on ties.
func SortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		return better(s[i].SI, s[i].Ids, s[j].SI, s[j].Ids)
	})
}

func scoredPrecedes(a, b *Scored) bool {
	return better(a.SI, a.Ids, b.SI, b.Ids)
}

// SelectTopScored partially orders s so that s[:k] holds the k best
// elements by the engine ordering, sorted, while s[k:] is left in
// unspecified order — equivalent to SortScored for every read of the
// first k entries, at O(n + k·log k) instead of O(n·log n). The engine
// ordering is strict and total (ties broken by canonical intention), so
// the selected prefix is the same set a full sort would produce.
func SelectTopScored(s []Scored, k int) {
	if k <= 0 {
		return
	}
	if k >= len(s) {
		SortScored(s)
		return
	}
	lo, hi := 0, len(s) // invariant: the k-boundary lies within s[lo:hi]
	for hi-lo > 12 {
		// Median-of-three pivot (by value copy; Hoare partition).
		mid := int(uint(lo+hi) >> 1)
		if scoredPrecedes(&s[mid], &s[lo]) {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if scoredPrecedes(&s[hi-1], &s[lo]) {
			s[hi-1], s[lo] = s[lo], s[hi-1]
		}
		if scoredPrecedes(&s[hi-1], &s[mid]) {
			s[hi-1], s[mid] = s[mid], s[hi-1]
		}
		p := s[mid]
		i, j := lo, hi-1
		for i <= j {
			for scoredPrecedes(&s[i], &p) {
				i++
			}
			for scoredPrecedes(&p, &s[j]) {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			hi = lo // boundary settled between j and i
		}
	}
	// Small window: insertion sort settles every position in it.
	for i := lo + 1; i < hi; i++ {
		v := s[i]
		j := i
		for j > lo && scoredPrecedes(&v, &s[j-1]) {
			s[j] = s[j-1]
			j--
		}
		s[j] = v
	}
	SortScored(s[:k])
}

// Dedup tracks which canonical intentions have been generated, keyed by
// a 64-bit integer hash of the ID slice with exact verification on the
// (vanishingly rare) bucket collisions — replacing the former
// map[string]bool over formatted intention keys, which allocated
// several strings per candidate.
//
// When the language and depth fit (see NewDedupFor), the table instead
// packs the whole canonical intention into one uint64 key — an exact,
// collision-free identity — and hands out stored copies from a chunked
// arena, so the per-fresh-intention allocation of the generic form
// disappears from beam expansion.
type Dedup struct {
	m map[uint64][][]CondID

	packed map[uint64]struct{} // non-nil → packed exact-key mode
	arena  []CondID            // chunked backing storage for stored ids
}

// NewDedup returns an empty dedup table.
func NewDedup() *Dedup {
	return &Dedup{m: map[uint64][][]CondID{}}
}

// NewDedupFor returns a dedup table sized for intentions of at most
// maxDepth conditions over a language of numConds conditions. When
// every canonical intention packs into a single uint64 (at most 4 IDs,
// each below 2¹⁶−1), the exact packed form is used; otherwise the
// generic hash table.
func NewDedupFor(numConds, maxDepth int) *Dedup {
	if maxDepth <= 4 && numConds < 1<<16-1 {
		return &Dedup{packed: make(map[uint64]struct{}, 1024)}
	}
	return NewDedup()
}

func hashIDs(ids []CondID) uint64 {
	h := uint64(14695981039346656037) // FNV-1a 64
	for _, id := range ids {
		h ^= uint64(uint32(id))
		h *= 1099511628211
	}
	return h
}

// Insert records the canonical intention ids if it is new, returning
// the stored copy and whether it was fresh. ids may be scratch — it is
// copied before being retained, and only for fresh intentions.
func (d *Dedup) Insert(ids []CondID) ([]CondID, bool) {
	if d.packed != nil && len(ids) <= 4 {
		// Exact key: ascending IDs, 16 bits each, offset by one so the
		// packing distinguishes lengths.
		var key uint64
		for _, id := range ids {
			key = key<<16 | uint64(id+1)
		}
		if _, dup := d.packed[key]; dup {
			return nil, false
		}
		d.packed[key] = struct{}{}
		if cap(d.arena)-len(d.arena) < len(ids) {
			d.arena = make([]CondID, 0, 1<<14)
		}
		start := len(d.arena)
		d.arena = append(d.arena, ids...)
		return d.arena[start:len(d.arena):len(d.arena)], true
	}
	if d.m == nil {
		d.m = map[uint64][][]CondID{}
	}
	h := hashIDs(ids)
	for _, have := range d.m[h] {
		if equalIDs(have, ids) {
			return nil, false
		}
	}
	stored := append([]CondID(nil), ids...)
	d.m[h] = append(d.m[h], stored)
	return stored, true
}

func equalIDs(a, b []CondID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InsertSorted writes parent's ascending IDs with id spliced in at its
// sorted position into dst (typically a reusable scratch slice) and
// returns it. parent must not already contain id.
func InsertSorted(dst, parent []CondID, id CondID) []CondID {
	dst = dst[:0]
	i := 0
	for ; i < len(parent) && parent[i] < id; i++ {
		dst = append(dst, parent[i])
	}
	dst = append(dst, id)
	return append(dst, parent[i:]...)
}

// ContainsID reports whether the ascending ID slice contains id.
func ContainsID(ids []CondID, id CondID) bool {
	for _, have := range ids {
		if have == id {
			return true
		}
		if have > id {
			return false
		}
	}
	return false
}

// TopK is a bounded result log: a min-heap on the engine ordering that
// keeps the best k scored candidates ever added. Replaces the former
// append-everything-then-sort-and-truncate merge, which re-sorted the
// full log every level.
type TopK struct {
	k int
	h []Scored // min-heap: h[0] is the worst retained item
}

// NewTopK returns an empty log bounded to k items (k ≤ 0 keeps
// everything unbounded — not used by the strategies, but safe).
func NewTopK(k int) *TopK {
	return &TopK{k: k}
}

// worse reports whether h[i] ranks below h[j] (min-heap order).
func (t *TopK) worse(i, j int) bool {
	return better(t.h[j].SI, t.h[j].Ids, t.h[i].SI, t.h[i].Ids)
}

// WouldAccept reports whether an item with this score and intention
// would enter the log. Callers use it to skip cloning extensions for
// candidates that cannot make the cut.
func (t *TopK) WouldAccept(si float64, ids []CondID) bool {
	if t.k <= 0 || len(t.h) < t.k {
		return true
	}
	return better(si, ids, t.h[0].SI, t.h[0].Ids)
}

// Add offers a scored candidate to the log.
func (t *TopK) Add(s Scored) {
	if t.k > 0 && len(t.h) == t.k {
		if !better(s.SI, s.Ids, t.h[0].SI, t.h[0].Ids) {
			return
		}
		t.h[0] = s
		t.siftDown(0)
		return
	}
	t.h = append(t.h, s)
	t.siftUp(len(t.h) - 1)
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(i, parent) {
			return
		}
		t.h[i], t.h[parent] = t.h[parent], t.h[i]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(t.h) && t.worse(l, min) {
			min = l
		}
		if r < len(t.h) && t.worse(r, min) {
			min = r
		}
		if min == i {
			return
		}
		t.h[i], t.h[min] = t.h[min], t.h[i]
		i = min
	}
}

// Len returns the number of retained items.
func (t *TopK) Len() int { return len(t.h) }

// Sorted drains the log, best first. The TopK must not be used after.
func (t *TopK) Sorted() []Scored {
	out := t.h
	t.h = nil
	SortScored(out)
	return out
}
