// Package engine owns the candidate-evaluation pipeline shared by
// every subgroup search strategy: the beam search, the exhaustive
// oracle, the optimal branch-and-bound and the baseline quality
// searches all score candidates through this package.
//
// The pipeline is built to keep the steady-state hot path free of
// allocations: condition extensions are precomputed per dataset and
// cached (Language), each evaluation worker intersects into a pooled
// scratch bitset (bitset.AndCountInto) and only materializes an
// extension for candidates that survive support and scoring,
// intentions are canonical ascending condition-ID slices deduplicated
// by integer hash (no string keys), and result logs are bounded top-k
// heaps rather than sort-and-truncate over the whole level.
package engine

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/mat"
)

// Scorer evaluates a candidate subgroup extension described by numConds
// conditions. ok=false rejects the candidate (too small, degenerate...).
// Implementations must be safe for concurrent use and must not retain
// ext, which is worker-owned scratch.
type Scorer interface {
	Score(ext *bitset.Set, numConds int) (si, ic float64, mean mat.Vec, ok bool)
}

// Options configure an Evaluator.
type Options struct {
	Parallelism int       // worker goroutines (default GOMAXPROCS)
	MinSupport  int       // minimum subgroup size (default 2)
	Deadline    time.Time // zero means no time budget
}

func (o Options) withDefaults() Options {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 2
	}
	return o
}

// Candidate is one unscored subgroup refinement: the parent's extension
// and the condition to intersect it with. Ids is the candidate's full
// canonical intention (ascending CondIDs, including Cond).
type Candidate struct {
	Parent *bitset.Set
	Cond   CondID
	Ids    []CondID
}

// Scored is one accepted (supported, scoreable) candidate. Ext is an
// independent copy, safe to keep as a beam parent or result.
type Scored struct {
	Ids    []CondID
	Ext    *bitset.Set
	Size   int
	SI, IC float64
	Mean   mat.Vec
}

// better is the engine's total order on scored candidates: SI
// descending, canonical intention ascending as the deterministic
// tiebreak. Every strategy ranks with this one ordering, so beam,
// exhaustive and heap-based logs agree on ties.
func better(aSI float64, aIds []CondID, bSI float64, bIds []CondID) bool {
	if aSI != bSI {
		return aSI > bSI
	}
	return lessIDs(aIds, bIds)
}

// lessIDs compares canonical ID slices lexicographically.
func lessIDs(a, b []CondID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Evaluator scores batches of candidates against one Language and
// Scorer, reusing per-worker scratch bitsets across batches. An
// Evaluator is cheap to create per search; it must not be shared
// between concurrent searches.
type Evaluator struct {
	lang    *Language
	sc      Scorer
	opt     Options
	scratch []*bitset.Set
}

// NewEvaluator builds an evaluator over the language.
func NewEvaluator(lang *Language, sc Scorer, opt Options) *Evaluator {
	opt = opt.withDefaults()
	scratch := make([]*bitset.Set, opt.Parallelism)
	for i := range scratch {
		scratch[i] = bitset.New(lang.DS.N())
	}
	return &Evaluator{lang: lang, sc: sc, opt: opt, scratch: scratch}
}

// EvaluateBatch scores all candidates in parallel and returns the
// accepted ones sorted by the engine ordering (SI descending,
// deterministic regardless of scheduling). Rejected candidates — below
// MinSupport or refused by the scorer — cost no allocations.
//
// When the evaluator's Deadline expires mid-batch the whole batch is
// abandoned and timedOut is true with a nil result: a partial level is
// never returned, so completed results stay deterministic and a caller
// treats an expired batch exactly like a deadline seen before it.
func (e *Evaluator) EvaluateBatch(cands []Candidate) (kept []Scored, timedOut bool) {
	out := make([]Scored, len(cands))
	valid := make([]bool, len(cands))
	checkDeadline := !e.opt.Deadline.IsZero()
	var expired atomic.Bool

	var wg sync.WaitGroup
	chunk := (len(cands) + e.opt.Parallelism - 1) / e.opt.Parallelism
	for w := 0; w < e.opt.Parallelism; w++ {
		lo := w * chunk
		if lo >= len(cands) {
			break
		}
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			scratch := e.scratch[w]
			for i := lo; i < hi; i++ {
				if checkDeadline && (i-lo)&63 == 0 {
					if expired.Load() {
						return
					}
					if time.Now().After(e.opt.Deadline) {
						expired.Store(true)
						return
					}
				}
				c := &cands[i]
				size := bitset.AndCountInto(scratch, c.Parent, e.lang.Exts[c.Cond])
				if size < e.opt.MinSupport {
					continue
				}
				si, ic, mean, ok := e.sc.Score(scratch, len(c.Ids))
				if !ok {
					continue
				}
				out[i] = Scored{
					Ids:  c.Ids,
					Ext:  scratch.Clone(),
					Size: size,
					SI:   si, IC: ic,
					Mean: mean,
				}
				valid[i] = true
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if expired.Load() {
		return nil, true
	}

	kept = out[:0] // filter in place; out's backing array is ours
	for i := range out {
		if valid[i] {
			kept = append(kept, out[i])
		}
	}
	SortScored(kept)
	return kept, false
}

// SortScored sorts by the engine ordering: SI descending, canonical
// intention ascending on ties.
func SortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		return better(s[i].SI, s[i].Ids, s[j].SI, s[j].Ids)
	})
}

// Dedup tracks which canonical intentions have been generated, keyed by
// a 64-bit integer hash of the ID slice with exact verification on the
// (vanishingly rare) bucket collisions — replacing the former
// map[string]bool over formatted intention keys, which allocated
// several strings per candidate.
type Dedup struct {
	m map[uint64][][]CondID
}

// NewDedup returns an empty dedup table.
func NewDedup() *Dedup {
	return &Dedup{m: map[uint64][][]CondID{}}
}

func hashIDs(ids []CondID) uint64 {
	h := uint64(14695981039346656037) // FNV-1a 64
	for _, id := range ids {
		h ^= uint64(uint32(id))
		h *= 1099511628211
	}
	return h
}

// Insert records the canonical intention ids if it is new, returning
// the stored copy and whether it was fresh. ids may be scratch — it is
// copied before being retained, and only for fresh intentions.
func (d *Dedup) Insert(ids []CondID) ([]CondID, bool) {
	h := hashIDs(ids)
	for _, have := range d.m[h] {
		if equalIDs(have, ids) {
			return nil, false
		}
	}
	stored := append([]CondID(nil), ids...)
	d.m[h] = append(d.m[h], stored)
	return stored, true
}

func equalIDs(a, b []CondID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InsertSorted writes parent's ascending IDs with id spliced in at its
// sorted position into dst (typically a reusable scratch slice) and
// returns it. parent must not already contain id.
func InsertSorted(dst, parent []CondID, id CondID) []CondID {
	dst = dst[:0]
	i := 0
	for ; i < len(parent) && parent[i] < id; i++ {
		dst = append(dst, parent[i])
	}
	dst = append(dst, id)
	return append(dst, parent[i:]...)
}

// ContainsID reports whether the ascending ID slice contains id.
func ContainsID(ids []CondID, id CondID) bool {
	for _, have := range ids {
		if have == id {
			return true
		}
		if have > id {
			return false
		}
	}
	return false
}

// TopK is a bounded result log: a min-heap on the engine ordering that
// keeps the best k scored candidates ever added. Replaces the former
// append-everything-then-sort-and-truncate merge, which re-sorted the
// full log every level.
type TopK struct {
	k int
	h []Scored // min-heap: h[0] is the worst retained item
}

// NewTopK returns an empty log bounded to k items (k ≤ 0 keeps
// everything unbounded — not used by the strategies, but safe).
func NewTopK(k int) *TopK {
	return &TopK{k: k}
}

// worse reports whether h[i] ranks below h[j] (min-heap order).
func (t *TopK) worse(i, j int) bool {
	return better(t.h[j].SI, t.h[j].Ids, t.h[i].SI, t.h[i].Ids)
}

// WouldAccept reports whether an item with this score and intention
// would enter the log. Callers use it to skip cloning extensions for
// candidates that cannot make the cut.
func (t *TopK) WouldAccept(si float64, ids []CondID) bool {
	if t.k <= 0 || len(t.h) < t.k {
		return true
	}
	return better(si, ids, t.h[0].SI, t.h[0].Ids)
}

// Add offers a scored candidate to the log.
func (t *TopK) Add(s Scored) {
	if t.k > 0 && len(t.h) == t.k {
		if !better(s.SI, s.Ids, t.h[0].SI, t.h[0].Ids) {
			return
		}
		t.h[0] = s
		t.siftDown(0)
		return
	}
	t.h = append(t.h, s)
	t.siftUp(len(t.h) - 1)
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(i, parent) {
			return
		}
		t.h[i], t.h[parent] = t.h[parent], t.h[i]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(t.h) && t.worse(l, min) {
			min = l
		}
		if r < len(t.h) && t.worse(r, min) {
			min = r
		}
		if min == i {
			return
		}
		t.h[i], t.h[min] = t.h[min], t.h[i]
		i = min
	}
}

// Len returns the number of retained items.
func (t *TopK) Len() int { return len(t.h) }

// Sorted drains the log, best first. The TopK must not be used after.
func (t *TopK) Sorted() []Scored {
	out := t.h
	t.h = nil
	SortScored(out)
	return out
}
