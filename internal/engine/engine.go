// Package engine owns the candidate-evaluation pipeline shared by
// every subgroup search strategy: the beam search, the exhaustive
// oracle, the optimal branch-and-bound and the baseline quality
// searches all score candidates through this package.
//
// The pipeline is built to keep the steady-state hot path free of
// allocations: condition extensions are precomputed per dataset and
// cached (Language), each evaluation worker intersects into a pooled
// scratch bitset (bitset.AndCountInto) and only materializes an
// extension for candidates that survive support and scoring,
// intentions are canonical ascending condition-ID slices deduplicated
// by integer hash (no string keys), and result logs are bounded top-k
// heaps rather than sort-and-truncate over the whole level.
package engine

import (
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/mat"
)

// Scorer evaluates a candidate subgroup extension described by numConds
// conditions. ok=false rejects the candidate (too small, degenerate...).
// Implementations must be safe for concurrent use and must not retain
// ext, which is worker-owned scratch.
type Scorer interface {
	Score(ext *bitset.Set, numConds int) (si, ic float64, mean mat.Vec, ok bool)
}

// ScorerWorker is a single-goroutine scoring context with reusable
// internal scratch: its steady-state Score path performs no heap
// allocations. The returned mean is worker-owned scratch, valid only
// until the worker's next call — callers clone what they retain.
type ScorerWorker interface {
	Score(ext *bitset.Set, numConds int) (si, ic float64, mean mat.Vec, ok bool)
}

// WorkerScorer is a Scorer that can mint independent per-goroutine
// workers. The engine gives each evaluation goroutine its own worker,
// making the whole batch-scoring path allocation-free.
type WorkerScorer interface {
	Scorer
	NewWorker() ScorerWorker
}

// StatScorerWorker scores a candidate directly from sufficient
// statistics — the per-group intersection counts of the extension and
// the sum of target rows over it — with no bitset pass at all. Both
// slices are caller-owned and must not be modified or retained. Workers
// must produce bit-identical results through Score and ScoreStats.
type StatScorerWorker interface {
	ScorerWorker
	ScoreStats(counts []int32, ysum mat.Vec, size, numConds int) (si, ic float64, mean mat.Vec, ok bool)
}

// GroupLabeler exposes a scorer's dense per-point group labeling so the
// evaluator can precompute per-condition sufficient statistics (the
// depth-1 table). Labels()[i] must index a fixed partition of the
// points into NumGroups() groups, matching the counts ScoreStats
// expects.
type GroupLabeler interface {
	NumGroups() int
	Labels() []int32
}

// BoundScorer is a Scorer that can also produce admissible SI upper
// bounds for candidate refinements, enabling the evaluator to skip the
// full scoring pass for candidates that provably cannot enter the
// consumed result prefix. NewBoundWorker returns nil when no bound is
// available for the current model/dataset shape (bounds are an
// optimization, never a requirement).
type BoundScorer interface {
	NewBoundWorker() BoundWorker
}

// BoundWorker is a single-goroutine bounding context. Prepare readies
// the worker for candidates refining one parent extension (amortized
// over the parent's whole run of candidates); BoundSI then returns, in
// O(1), an upper bound on the SI of ANY subset of the prepared parent
// with exactly the given size, described by numConds conditions. The
// bound must be admissible up to float rounding — the evaluator inflates
// it by a relative epsilon before comparing, and the search layer's
// property tests verify that no true SI ever exceeds the inflated bound.
type BoundWorker interface {
	Prepare(parent *bitset.Set) bool
	BoundSI(size, numConds int) float64
}

// Options configure an Evaluator.
type Options struct {
	Parallelism int       // worker goroutines (default GOMAXPROCS)
	MinSupport  int       // minimum subgroup size (default 2)
	Deadline    time.Time // zero means no time budget
	// SelectTop, when positive, relaxes EvaluateBatch's ordering
	// contract: only the first min(SelectTop, len) results are
	// guaranteed to be the best of the batch, in engine order; the rest
	// follow in unspecified order. Strategies that consume a bounded
	// prefix (beam width, top-k log) set it to skip sorting the long
	// tail of every level. The returned *set* of results is unchanged,
	// so anything order-insensitive (the bounded top-k log) sees
	// identical outcomes.
	//
	// SelectTop also arms bound pruning: with a BoundScorer, candidates
	// whose admissible SI upper bound falls strictly below the running
	// SelectTop-th best SI of the batch are dropped without scoring.
	// Such candidates can neither enter the consumed prefix nor any
	// bounded top-k log fed from it, so results are bit-identical to the
	// unpruned evaluation at every parallelism level.
	SelectTop int
	// DisableBounds turns bound pruning off even when the scorer
	// provides bounds — the ablation/debugging switch.
	DisableBounds bool
}

func (o Options) withDefaults() Options {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 2
	}
	return o
}

// Batch is the columnar candidate arena for one search level: instead
// of a slice of per-candidate structs (parent pointer + condition +
// intention slice header each), a level is four flat streams — the
// distinct parent extensions in first-use order, a per-candidate parent
// index, a per-candidate condition, and one contiguous CondID arena
// holding every candidate's canonical intention at a fixed stride (all
// candidates of a level share one depth). The evaluation loop sweeps
// the streams in order, and a caller reuses one Batch across levels
// (Reset keeps the backing arrays), so steady-state level construction
// allocates nothing.
//
// Candidates sharing a parent must be appended contiguously (StartParent
// once, then Add per refinement) — the evaluator amortizes per-parent
// bound preparation over exactly these runs.
type Batch struct {
	depth    int
	parents  []*bitset.Set // distinct parents; nil means the full dataset
	parentOf []int32       // per candidate: index into parents
	conds    []CondID      // per candidate: the refining condition
	ids      []CondID      // intention arena, stride = depth
}

// Reset clears the batch for a new level whose candidates all have
// depth conditions, keeping the backing arrays.
func (b *Batch) Reset(depth int) {
	if depth <= 0 {
		panic("engine: Batch depth must be positive")
	}
	b.depth = depth
	b.parents = b.parents[:0]
	b.parentOf = b.parentOf[:0]
	b.conds = b.conds[:0]
	b.ids = b.ids[:0]
}

// StartParent begins a run of candidates refining ext. A nil ext means
// the full dataset — the level-1 form that lets the evaluator skip the
// intersection entirely (the extension IS the condition's) and score
// from the precomputed depth-1 table when the scorer supports it.
func (b *Batch) StartParent(ext *bitset.Set) {
	b.parents = append(b.parents, ext)
}

// Add appends one candidate refining the current parent with cond. ids
// is the candidate's full canonical intention (ascending CondIDs,
// including cond, length = the Reset depth); it is copied into the
// batch arena, so callers may pass scratch.
func (b *Batch) Add(cond CondID, ids []CondID) {
	if len(b.parents) == 0 {
		panic("engine: Batch.Add before StartParent")
	}
	if len(ids) != b.depth {
		panic("engine: Batch.Add intention length != depth")
	}
	b.parentOf = append(b.parentOf, int32(len(b.parents)-1))
	b.conds = append(b.conds, cond)
	b.ids = append(b.ids, ids...)
}

// Len returns the number of candidates in the batch.
func (b *Batch) Len() int { return len(b.conds) }

// IDs returns candidate i's canonical intention, aliasing the batch
// arena (valid until the next Reset).
func (b *Batch) IDs(i int) []CondID {
	d := b.depth
	return b.ids[i*d : (i+1)*d : (i+1)*d]
}

// Scored is one accepted (supported, scoreable) candidate. EvaluateBatch
// returns it *unmaterialized* — Ext and Mean are nil, Ids aliases the
// batch arena, and Cand indexes the candidate within its batch — so that
// candidates which never survive beam/log selection cost no allocations.
// Callers pass the survivors to Evaluator.Materialize, which fills Ext
// (an independent copy, safe to keep as a beam parent or result), Mean
// with values bit-identical to the ones scored, and replaces Ids with an
// owned copy that outlives the batch's next Reset.
type Scored struct {
	Ids    []CondID
	Cand   int
	Ext    *bitset.Set
	Size   int
	SI, IC float64
	Mean   mat.Vec
}

// better is the engine's total order on scored candidates: SI
// descending, canonical intention ascending as the deterministic
// tiebreak. Every strategy ranks with this one ordering, so beam,
// exhaustive and heap-based logs agree on ties.
func better(aSI float64, aIds []CondID, bSI float64, bIds []CondID) bool {
	if aSI != bSI {
		return aSI > bSI
	}
	return lessIDs(aIds, bIds)
}

// lessIDs compares canonical ID slices lexicographically.
func lessIDs(a, b []CondID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Evaluator scores batches of candidates against one Language and
// Scorer, reusing per-worker scratch bitsets (and, for WorkerScorers,
// per-worker scorer scratch) across batches. An Evaluator is cheap to
// create per search; it must not be shared between concurrent searches.
type Evaluator struct {
	lang    *Language
	sc      Scorer
	opt     Options
	scratch []*bitset.Set
	full    *bitset.Set

	// workers[i] is goroutine i's scoring context when sc is a
	// WorkerScorer; nil entries fall back to the concurrent sc.Score.
	workers []ScorerWorker
	// statWorkers mirrors workers when they support stat scoring.
	statWorkers []StatScorerWorker
	// d1 is the depth-1 sufficient-statistics table: per-condition
	// per-group counts plus the Language-cached target sums, letting
	// level-1 candidates be scored with no bitset pass at all. Non-nil
	// only when the scorer exposes its group labeling.
	d1 *depthOneTable

	// bounds[i] is goroutine i's bound worker when sc is a BoundScorer
	// that offers bounds for this model; nil slice → no pruning.
	bounds []BoundWorker
	// floorKey is the shared SI floor for the current batch, encoded as
	// a monotone order key so a CAS-max works on the raw bits. Workers
	// publish their local SelectTop-th best SI here; candidates whose
	// inflated bound falls strictly below the floor are pruned.
	floorKey atomic.Uint64
	// floorHeaps[i] is goroutine i's reusable top-SelectTop SI min-heap.
	floorHeaps [][]float64
	// seedSI, when armed via SeedFloor, initializes the next batch's
	// floor instead of -Inf.
	seedSI  float64
	seedSet bool
	// out/valid are the reusable batch result buffers; ctrs is the
	// reusable per-worker counter scratch (3 slots per worker:
	// scored, bound evals, pruned).
	out   []Scored
	valid []bool
	ctrs  []int64

	stats EvalStats
}

// EvalStats are cumulative pruning observability counters. The counts
// depend on scheduling (which worker raises the shared floor first), so
// they vary run to run and across parallelism levels — they are
// diagnostics only and MUST NOT feed any result or decision that is
// expected to be deterministic.
type EvalStats struct {
	Scored     int64 // candidates fully scored
	BoundEvals int64 // candidates whose upper bound was evaluated
	Pruned     int64 // candidates skipped because bound < floor
}

// Stats returns the evaluator's cumulative counters.
func (e *Evaluator) Stats() EvalStats { return e.stats }

// SeedFloor arms the next EvaluateBatch with an initial SI floor. Only
// admissible when candidates below the floor are provably irrelevant to
// every consumer of that batch — the beam search uses it at the final
// level, seeding with its full top-k log's current k-th best SI (the
// level's results only feed the log there, and the log's floor never
// decreases).
func (e *Evaluator) SeedFloor(si float64) {
	e.seedSI = si
	e.seedSet = true
}

// orderKey maps a non-NaN float64 to a uint64 with the same total
// order, so an atomic CAS-max on the keys is a lock-free running max of
// the floats.
func orderKey(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// keyFloat inverts orderKey.
func keyFloat(k uint64) float64 {
	if k&(1<<63) != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

// raiseFloor lifts the shared floor to at least f.
func (e *Evaluator) raiseFloor(f float64) {
	k := orderKey(f)
	for {
		old := e.floorKey.Load()
		if old >= k || e.floorKey.CompareAndSwap(old, k) {
			return
		}
	}
}

// boundSlack is the relative inflation applied to SI upper bounds
// before comparing against the floor: the bound arithmetic (prefix
// sums, a different algebraic arrangement of the same IC) rounds
// differently from the scoring path by a few ulps, and the inflation
// keeps the comparison admissible despite that.
const boundSlack = 1e-9

// minBoundRun is the smallest per-worker run of same-parent candidates
// for which preparing a bound (a sort of the parent's residuals) is
// worth the setup; below it the evaluator scores the run unbounded.
// Affects only speed, never results.
const minBoundRun = 64

type depthOneTable struct {
	counts [][]int32 // per condition, per group: |ext(c) ∩ group|
	sums   []mat.Vec // per condition: Σ_{i∈ext(c)} yᵢ (Language-cached)
	sizes  []int     // per condition: |ext(c)| (Language-cached)
}

// NewEvaluator builds an evaluator over the language.
func NewEvaluator(lang *Language, sc Scorer, opt Options) *Evaluator {
	opt = opt.withDefaults()
	e := &Evaluator{lang: lang, sc: sc, opt: opt}
	e.scratch = make([]*bitset.Set, opt.Parallelism)
	for i := range e.scratch {
		e.scratch[i] = bitset.New(lang.DS.N())
	}
	e.full = bitset.Full(lang.DS.N())
	if ws, ok := sc.(WorkerScorer); ok {
		e.workers = make([]ScorerWorker, opt.Parallelism)
		e.statWorkers = make([]StatScorerWorker, opt.Parallelism)
		allStat := true
		for i := range e.workers {
			w := ws.NewWorker()
			e.workers[i] = w
			if sw, ok := w.(StatScorerWorker); ok {
				e.statWorkers[i] = sw
			} else {
				allStat = false
			}
		}
		if gl, ok := sc.(GroupLabeler); ok && allStat {
			e.d1 = buildDepthOne(lang, gl)
		} else {
			e.statWorkers = nil
		}
	}
	if bs, ok := sc.(BoundScorer); ok && !opt.DisableBounds && opt.SelectTop > 0 {
		if w0 := bs.NewBoundWorker(); w0 != nil {
			e.bounds = make([]BoundWorker, opt.Parallelism)
			e.bounds[0] = w0
			for i := 1; i < opt.Parallelism; i++ {
				e.bounds[i] = bs.NewBoundWorker()
			}
			e.floorHeaps = make([][]float64, opt.Parallelism)
			heapBuf := make([]float64, opt.Parallelism*opt.SelectTop)
			for i := range e.floorHeaps {
				e.floorHeaps[i] = heapBuf[i*opt.SelectTop : i*opt.SelectTop : (i+1)*opt.SelectTop]
			}
		}
	}
	e.ctrs = make([]int64, 3*opt.Parallelism)
	return e
}

// buildDepthOne precomputes, for every condition, the per-group
// intersection counts of its extension under the scorer's labeling —
// one trailing-zeros pass per condition, backed by a single allocation.
// Together with the Language's cached per-condition target sums this is
// everything a StatScorerWorker needs, so scoring the whole first level
// touches no bitsets.
func buildDepthOne(lang *Language, gl GroupLabeler) *depthOneTable {
	labels := gl.Labels()
	ng := gl.NumGroups()
	if ng == 0 || len(labels) != lang.DS.N() {
		return nil
	}
	sums, sizes := lang.CondTargetStats()
	counts := make([][]int32, len(lang.Exts))
	buf := make([]int32, ng*len(lang.Exts))
	for ci, ext := range lang.Exts {
		c := buf[ci*ng : (ci+1)*ng : (ci+1)*ng]
		if ng == 1 {
			// Fresh model: the only group's count is the extension size.
			c[0] = int32(sizes[ci])
		} else {
			for wi, w := range ext.Words() {
				base := wi * 64
				for w != 0 {
					b := bits.TrailingZeros64(w)
					w &= w - 1
					c[labels[base+b]]++
				}
			}
		}
		counts[ci] = c
	}
	return &depthOneTable{counts: counts, sums: sums, sizes: sizes}
}

// EvaluateBatch scores all candidates in parallel and returns the
// accepted ones sorted by the engine ordering (SI descending,
// deterministic regardless of scheduling). The results are
// unmaterialized (nil Ext and Mean — see Scored); with a WorkerScorer
// the entire batch costs no per-candidate allocations: level-1
// candidates (nil parent) are scored straight from the depth-1 table,
// deeper ones through one fused AndCountInto + worker-scratch scoring
// pass over the batch's columnar streams. The returned slice and the
// Scored.Ids in it are evaluator/batch-owned scratch, valid until the
// next EvaluateBatch/Reset — Materialize survivors before retaining.
//
// With bounds armed (BoundScorer + SelectTop, no DisableBounds), each
// worker keeps a running min-heap of its SelectTop best SIs and
// publishes the heap root to a shared atomic floor. Because a worker's
// SelectTop-th best over a SUBSET of the batch can only underestimate
// the batch-wide SelectTop-th best, the floor is always a valid lower
// bound on the final prefix-entry SI; a candidate whose inflated upper
// bound falls strictly below it can neither enter the SelectTop prefix
// nor outrank prefix entries in any downstream bounded log, so skipping
// its scoring pass leaves consumed results bit-identical at every
// parallelism level. Which candidates get skipped DOES vary with
// scheduling — only the Stats counters observe that.
//
// When the evaluator's Deadline expires mid-batch the whole batch is
// abandoned and timedOut is true with a nil result: a partial level is
// never returned, so completed results stay deterministic and a caller
// treats an expired batch exactly like a deadline seen before it.
func (e *Evaluator) EvaluateBatch(b *Batch) (kept []Scored, timedOut bool) {
	n := b.Len()
	if cap(e.out) < n {
		e.out = make([]Scored, n)
		e.valid = make([]bool, n)
	}
	out := e.out[:n]
	valid := e.valid[:n]
	for i := range valid {
		valid[i] = false
	}
	checkDeadline := !e.opt.Deadline.IsZero()
	var expired atomic.Bool

	// The batch floor starts at the armed seed (final-level log floor)
	// or -Inf; it only ever rises within the batch.
	seed := math.Inf(-1)
	if e.seedSet {
		seed = e.seedSI
		e.seedSet = false
	}
	e.floorKey.Store(orderKey(seed))
	pruning := e.bounds != nil
	if pruning {
		pruning = false
		for _, p := range b.parents {
			if p != nil {
				pruning = true
				break
			}
		}
	}

	nw := e.opt.Parallelism
	if len(e.ctrs) < 3*nw {
		e.ctrs = make([]int64, 3*nw)
	}
	ctrs := e.ctrs
	for i := range ctrs {
		ctrs[i] = 0
	}

	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			depth := b.depth
			minSupport := e.opt.MinSupport
			selectTop := e.opt.SelectTop
			var bw BoundWorker
			var heap []float64
			if pruning {
				bw = e.bounds[w]
				heap = e.floorHeaps[w][:0]
			}
			curPar := int32(-1)
			boundReady := false
			var nScored, nBound, nPruned int64
			for i := lo; i < hi; i++ {
				if checkDeadline && (i-lo)&63 == 0 {
					if expired.Load() {
						return
					}
					if time.Now().After(e.opt.Deadline) {
						expired.Store(true)
						return
					}
				}
				pi := b.parentOf[i]
				parent := b.parents[pi]
				cond := b.conds[i]
				var si, ic float64
				var size int
				var ok bool
				if parent == nil && e.d1 != nil {
					size = e.d1.sizes[cond]
					if size < minSupport {
						continue
					}
					si, ic, _, ok = e.statWorkers[w].ScoreStats(
						e.d1.counts[cond], e.d1.sums[cond], size, depth)
				} else {
					pset := parent
					if pset == nil {
						pset = e.full
					}
					if bw != nil && pi != curPar {
						curPar = pi
						boundReady = false
						if parent != nil {
							// Prepare sorts the parent's residuals, so it only
							// pays when enough candidates of this parent land in
							// this worker's range to amortize the O(m log m):
							// short runs are cheaper to just score.
							runLen := 1
							for j := i + 1; j < hi && b.parentOf[j] == pi; j++ {
								runLen++
							}
							if runLen >= minBoundRun {
								boundReady = bw.Prepare(parent)
							}
						}
					}
					scratch := e.scratch[w]
					size = bitset.AndCountInto(scratch, pset, e.lang.Exts[cond])
					if size < minSupport {
						continue
					}
					if boundReady {
						nBound++
						ub := bw.BoundSI(size, depth)
						ub += boundSlack * (math.Abs(ub) + 1)
						if ub < keyFloat(e.floorKey.Load()) {
							nPruned++
							continue
						}
					}
					if e.workers != nil {
						si, ic, _, ok = e.workers[w].Score(scratch, depth)
					} else {
						si, ic, _, ok = e.sc.Score(scratch, depth)
					}
				}
				if !ok {
					continue
				}
				nScored++
				out[i] = Scored{
					Ids:  b.IDs(i),
					Cand: i,
					Size: size,
					SI:   si, IC: ic,
				}
				valid[i] = true
				if heap != nil {
					// Local top-SelectTop SI min-heap; once full, its root
					// is this worker's floor contribution.
					if len(heap) < selectTop {
						heap = append(heap, si)
						siftUpFloat(heap)
						if len(heap) == selectTop {
							e.raiseFloor(heap[0])
						}
					} else if si > heap[0] {
						heap[0] = si
						siftDownFloat(heap)
						e.raiseFloor(heap[0])
					}
				}
			}
			if pruning {
				e.floorHeaps[w] = heap[:0]
			}
			ctrs[3*w], ctrs[3*w+1], ctrs[3*w+2] = nScored, nBound, nPruned
		}(w, lo, hi)
	}
	wg.Wait()
	if expired.Load() {
		return nil, true
	}
	for w := 0; w < nw; w++ {
		e.stats.Scored += ctrs[3*w]
		e.stats.BoundEvals += ctrs[3*w+1]
		e.stats.Pruned += ctrs[3*w+2]
	}

	kept = out[:0] // filter in place; out's backing array is ours
	for i := range out {
		if valid[i] {
			kept = append(kept, out[i])
		}
	}
	if e.opt.SelectTop > 0 {
		SelectTopScored(kept, e.opt.SelectTop)
	} else {
		SortScored(kept)
	}
	return kept, false
}

// siftUpFloat restores the min-heap property after appending to h.
func siftUpFloat(h []float64) {
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// siftDownFloat restores the min-heap property after replacing h[0].
func siftDownFloat(h []float64) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l] < h[min] {
			min = l
		}
		if r < len(h) && h[r] < h[min] {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// Materialize fills Ext and Mean for a scored candidate the caller is
// about to retain (beam parent, top-k entry), and replaces the
// batch-arena Ids alias with an owned copy. The extension is recomputed
// with the same intersection kernel and the mean re-derived by the same
// scoring path, so materialized values are bit-identical to the ones
// EvaluateBatch ranked on; only the handful of survivors per level pay
// the clones. b must be the batch the Scored came from. No-op when
// already materialized.
func (e *Evaluator) Materialize(b *Batch, s *Scored) {
	if s.Ext != nil {
		return
	}
	s.Ids = append([]CondID(nil), s.Ids...)
	parent := b.parents[b.parentOf[s.Cand]]
	cond := b.conds[s.Cand]
	numConds := b.depth
	if parent == nil {
		s.Ext = e.lang.Exts[cond].Clone()
		if e.d1 != nil {
			_, _, mean, ok := e.statWorkers[0].ScoreStats(
				e.d1.counts[cond], e.d1.sums[cond], e.d1.sizes[cond], numConds)
			if ok {
				s.Mean = mean.Clone()
			}
			return
		}
	} else {
		ext := bitset.New(e.lang.DS.N())
		bitset.AndCountInto(ext, parent, e.lang.Exts[cond])
		s.Ext = ext
	}
	// Score the just-built extension directly — same bits as the batch
	// pass, so the same floats come back.
	if e.workers != nil {
		if _, _, mean, ok := e.workers[0].Score(s.Ext, numConds); ok {
			s.Mean = mean.Clone()
		}
	} else if _, _, mean, ok := e.sc.Score(s.Ext, numConds); ok {
		s.Mean = mean
	}
}

// SortScored sorts by the engine ordering: SI descending, canonical
// intention ascending on ties.
func SortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		return better(s[i].SI, s[i].Ids, s[j].SI, s[j].Ids)
	})
}

func scoredPrecedes(a, b *Scored) bool {
	return better(a.SI, a.Ids, b.SI, b.Ids)
}

// SelectTopScored partially orders s so that s[:k] holds the k best
// elements by the engine ordering, sorted, while s[k:] is left in
// unspecified order — equivalent to SortScored for every read of the
// first k entries, at O(n + k·log k) instead of O(n·log n). The engine
// ordering is strict and total (ties broken by canonical intention), so
// the selected prefix is the same set a full sort would produce.
func SelectTopScored(s []Scored, k int) {
	if k <= 0 {
		return
	}
	if k >= len(s) {
		SortScored(s)
		return
	}
	lo, hi := 0, len(s) // invariant: the k-boundary lies within s[lo:hi]
	for hi-lo > 12 {
		// Median-of-three pivot (by value copy; Hoare partition).
		mid := int(uint(lo+hi) >> 1)
		if scoredPrecedes(&s[mid], &s[lo]) {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if scoredPrecedes(&s[hi-1], &s[lo]) {
			s[hi-1], s[lo] = s[lo], s[hi-1]
		}
		if scoredPrecedes(&s[hi-1], &s[mid]) {
			s[hi-1], s[mid] = s[mid], s[hi-1]
		}
		p := s[mid]
		i, j := lo, hi-1
		for i <= j {
			for scoredPrecedes(&s[i], &p) {
				i++
			}
			for scoredPrecedes(&p, &s[j]) {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			hi = lo // boundary settled between j and i
		}
	}
	// Small window: insertion sort settles every position in it.
	for i := lo + 1; i < hi; i++ {
		v := s[i]
		j := i
		for j > lo && scoredPrecedes(&v, &s[j-1]) {
			s[j] = s[j-1]
			j--
		}
		s[j] = v
	}
	SortScored(s[:k])
}

// Dedup tracks which canonical intentions have been generated, keyed by
// a 64-bit integer hash of the ID slice with exact verification on the
// (vanishingly rare) bucket collisions — replacing the former
// map[string]bool over formatted intention keys, which allocated
// several strings per candidate.
//
// When the language and depth fit (see NewDedupFor), the table instead
// packs the whole canonical intention into one uint64 key — an exact,
// collision-free identity — and hands out stored copies from a chunked
// arena, so the per-fresh-intention allocation of the generic form
// disappears from beam expansion.
type Dedup struct {
	m map[uint64][][]CondID

	packed map[uint64]struct{} // non-nil → packed exact-key mode
	arena  []CondID            // chunked backing storage for stored ids
}

// NewDedup returns an empty dedup table.
func NewDedup() *Dedup {
	return &Dedup{m: map[uint64][][]CondID{}}
}

// NewDedupFor returns a dedup table sized for intentions of at most
// maxDepth conditions over a language of numConds conditions. When
// every canonical intention packs into a single uint64 (at most 4 IDs,
// each below 2¹⁶−1), the exact packed form is used; otherwise the
// generic hash table.
func NewDedupFor(numConds, maxDepth int) *Dedup {
	if maxDepth <= 4 && numConds < 1<<16-1 {
		return &Dedup{packed: make(map[uint64]struct{}, 1024)}
	}
	return NewDedup()
}

func hashIDs(ids []CondID) uint64 {
	h := uint64(14695981039346656037) // FNV-1a 64
	for _, id := range ids {
		h ^= uint64(uint32(id))
		h *= 1099511628211
	}
	return h
}

// Insert records the canonical intention ids if it is new, returning
// the stored copy and whether it was fresh. ids may be scratch — it is
// copied before being retained, and only for fresh intentions.
func (d *Dedup) Insert(ids []CondID) ([]CondID, bool) {
	if d.packed != nil && len(ids) <= 4 {
		// Exact key: ascending IDs, 16 bits each, offset by one so the
		// packing distinguishes lengths.
		var key uint64
		for _, id := range ids {
			key = key<<16 | uint64(id+1)
		}
		if _, dup := d.packed[key]; dup {
			return nil, false
		}
		d.packed[key] = struct{}{}
		if cap(d.arena)-len(d.arena) < len(ids) {
			d.arena = make([]CondID, 0, 1<<14)
		}
		start := len(d.arena)
		d.arena = append(d.arena, ids...)
		return d.arena[start:len(d.arena):len(d.arena)], true
	}
	if d.m == nil {
		d.m = map[uint64][][]CondID{}
	}
	h := hashIDs(ids)
	for _, have := range d.m[h] {
		if equalIDs(have, ids) {
			return nil, false
		}
	}
	stored := append([]CondID(nil), ids...)
	d.m[h] = append(d.m[h], stored)
	return stored, true
}

// Seen records the canonical intention ids if it is new and reports
// whether it had been recorded before. Unlike Insert it never hands out
// a stored copy, so callers that keep intentions in their own arenas
// (the columnar Batch) skip the per-intention dedup-side copy in packed
// mode.
func (d *Dedup) Seen(ids []CondID) bool {
	if d.packed != nil && len(ids) <= 4 {
		var key uint64
		for _, id := range ids {
			key = key<<16 | uint64(id+1)
		}
		if _, dup := d.packed[key]; dup {
			return true
		}
		d.packed[key] = struct{}{}
		return false
	}
	_, fresh := d.Insert(ids)
	return !fresh
}

func equalIDs(a, b []CondID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InsertSorted writes parent's ascending IDs with id spliced in at its
// sorted position into dst (typically a reusable scratch slice) and
// returns it. parent must not already contain id.
func InsertSorted(dst, parent []CondID, id CondID) []CondID {
	dst = dst[:0]
	i := 0
	for ; i < len(parent) && parent[i] < id; i++ {
		dst = append(dst, parent[i])
	}
	dst = append(dst, id)
	return append(dst, parent[i:]...)
}

// ContainsID reports whether the ascending ID slice contains id.
func ContainsID(ids []CondID, id CondID) bool {
	for _, have := range ids {
		if have == id {
			return true
		}
		if have > id {
			return false
		}
	}
	return false
}

// TopK is a bounded result log: a min-heap on the engine ordering that
// keeps the best k scored candidates ever added. Replaces the former
// append-everything-then-sort-and-truncate merge, which re-sorted the
// full log every level.
type TopK struct {
	k int
	h []Scored // min-heap: h[0] is the worst retained item
}

// NewTopK returns an empty log bounded to k items (k ≤ 0 keeps
// everything unbounded — not used by the strategies, but safe).
func NewTopK(k int) *TopK {
	return &TopK{k: k}
}

// worse reports whether h[i] ranks below h[j] (min-heap order).
func (t *TopK) worse(i, j int) bool {
	return better(t.h[j].SI, t.h[j].Ids, t.h[i].SI, t.h[i].Ids)
}

// WouldAccept reports whether an item with this score and intention
// would enter the log. Callers use it to skip cloning extensions for
// candidates that cannot make the cut.
func (t *TopK) WouldAccept(si float64, ids []CondID) bool {
	if t.k <= 0 || len(t.h) < t.k {
		return true
	}
	return better(si, ids, t.h[0].SI, t.h[0].Ids)
}

// Add offers a scored candidate to the log.
func (t *TopK) Add(s Scored) {
	if t.k > 0 && len(t.h) == t.k {
		if !better(s.SI, s.Ids, t.h[0].SI, t.h[0].Ids) {
			return
		}
		t.h[0] = s
		t.siftDown(0)
		return
	}
	t.h = append(t.h, s)
	t.siftUp(len(t.h) - 1)
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(i, parent) {
			return
		}
		t.h[i], t.h[parent] = t.h[parent], t.h[i]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(t.h) && t.worse(l, min) {
			min = l
		}
		if r < len(t.h) && t.worse(r, min) {
			min = r
		}
		if min == i {
			return
		}
		t.h[i], t.h[min] = t.h[min], t.h[i]
		i = min
	}
}

// Len returns the number of retained items.
func (t *TopK) Len() int { return len(t.h) }

// Floor returns the SI of the worst retained item and whether the log
// is full. Only a full log's floor is a valid lower bound for pruning:
// any candidate scoring strictly below it can never be accepted (Add
// requires strictly better ordering to displace the root, so equal-SI
// candidates are also rejected once the log is full).
func (t *TopK) Floor() (si float64, full bool) {
	if t.k <= 0 || len(t.h) < t.k {
		return 0, false
	}
	return t.h[0].SI, true
}

// Sorted drains the log, best first. The TopK must not be used after.
func (t *TopK) Sorted() []Scored {
	out := t.h
	t.h = nil
	SortScored(out)
	return out
}
