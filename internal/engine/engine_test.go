package engine

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/mat"
)

// testDS builds a small dataset with one binary and one numeric
// descriptor and a single target.
func testDS(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	y := mat.NewDense(n, 1)
	flag := make([]float64, n)
	num := make([]float64, n)
	for i := 0; i < n; i++ {
		flag[i] = float64(rng.Intn(2))
		num[i] = rng.NormFloat64()
		y.Set(i, 0, num[i]+flag[i])
	}
	return &dataset.Dataset{
		Name: "engine-test",
		Descriptors: []dataset.Column{
			{Name: "flag", Kind: dataset.Binary, Values: flag, Levels: []string{"0", "1"}},
			{Name: "num", Kind: dataset.Numeric, Values: num},
		},
		TargetNames: []string{"t"},
		Y:           y,
	}
}

func TestLanguageForCaches(t *testing.T) {
	ds := testDS(50, 1)
	a := LanguageFor(ds, 4)
	b := LanguageFor(ds, 4)
	if a != b {
		t.Fatal("same dataset and splits must share one Language")
	}
	c := LanguageFor(ds, 2)
	if c == a {
		t.Fatal("different numSplits must not share a Language")
	}
	if len(c.Conds) >= len(a.Conds) {
		t.Fatalf("fewer splits should yield fewer conditions: %d vs %d",
			len(c.Conds), len(a.Conds))
	}
}

func TestLanguageExtensionsMatchConditions(t *testing.T) {
	ds := testDS(64, 2)
	lang := LanguageFor(ds, 4)
	for i, c := range lang.Conds {
		want := c.Extension(ds)
		if !lang.Exts[i].Equal(want) {
			t.Fatalf("cached extension %d differs from recomputed", i)
		}
	}
}

// sizeScorer scores a subgroup by its size.
type sizeScorer struct{}

func (sizeScorer) Score(ext *bitset.Set, numConds int) (float64, float64, mat.Vec, bool) {
	s := float64(ext.Count())
	return s, s, nil, true
}

func TestEvaluateBatchMatchesDirectScoring(t *testing.T) {
	ds := testDS(60, 3)
	lang := LanguageFor(ds, 4)
	full := bitset.Full(ds.N())
	batch := &Batch{}
	batch.Reset(1)
	batch.StartParent(full)
	for i := range lang.Conds {
		batch.Add(CondID(i), []CondID{CondID(i)})
	}
	for _, par := range []int{1, 3, 8} {
		ev := NewEvaluator(lang, sizeScorer{}, Options{Parallelism: par, MinSupport: 2})
		got, timedOut := ev.EvaluateBatch(batch)
		if timedOut {
			t.Fatal("no deadline was set")
		}
		for k := range got {
			s := &got[k]
			if s.Ext != nil {
				t.Fatalf("par=%d: batch results must be unmaterialized", par)
			}
			ev.Materialize(batch, s)
			if s.Ext.Count() != s.Size {
				t.Fatalf("par=%d: stored size %d != extension count %d", par, s.Size, s.Ext.Count())
			}
			if !s.Ext.Equal(lang.Exts[s.Ids[0]]) {
				t.Fatalf("par=%d: extension of %v differs from condition extension", par, s.Ids)
			}
			if k > 0 && better(s.SI, s.Ids, got[k-1].SI, got[k-1].Ids) {
				t.Fatalf("par=%d: output not sorted at %d", par, k)
			}
		}
		// Every sufficiently supported condition must appear.
		want := 0
		for _, e := range lang.Exts {
			if e.Count() >= 2 {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("par=%d: %d accepted, want %d", par, len(got), want)
		}
	}
}

func TestEvaluateBatchScratchIsolation(t *testing.T) {
	// Accepted extensions must be independent copies: mutating the
	// scratch (by evaluating another batch) must not corrupt them.
	ds := testDS(60, 4)
	lang := LanguageFor(ds, 4)
	full := bitset.Full(ds.N())
	batch := &Batch{}
	batch.Reset(1)
	batch.StartParent(full)
	batch.Add(0, []CondID{0})
	ev := NewEvaluator(lang, sizeScorer{}, Options{Parallelism: 1})
	first, _ := ev.EvaluateBatch(batch)
	if len(first) != 1 {
		t.Fatal("candidate rejected")
	}
	ev.Materialize(batch, &first[0])
	ext, ids := first[0].Ext, first[0].Ids
	snapshot := ext.Clone()
	idsSnapshot := append([]CondID(nil), ids...)
	batch.Reset(1)
	batch.StartParent(full)
	batch.Add(1, []CondID{1})
	ev.EvaluateBatch(batch)
	if !ext.Equal(snapshot) {
		t.Fatal("earlier result mutated by later batch (scratch leaked)")
	}
	if !equalIDs(ids, idsSnapshot) {
		t.Fatal("materialized Ids mutated by later batch (arena aliased)")
	}
}

func TestEvaluateBatchExpiredDeadlineAbandonsBatch(t *testing.T) {
	ds := testDS(60, 10)
	lang := LanguageFor(ds, 4)
	full := bitset.Full(ds.N())
	batch := &Batch{}
	batch.Reset(1)
	batch.StartParent(full)
	for i := range lang.Conds {
		batch.Add(CondID(i), []CondID{CondID(i)})
	}
	ev := NewEvaluator(lang, sizeScorer{}, Options{
		Parallelism: 2,
		Deadline:    time.Now().Add(-time.Second),
	})
	got, timedOut := ev.EvaluateBatch(batch)
	if !timedOut {
		t.Fatal("expired deadline must mark the batch timed out")
	}
	if got != nil {
		t.Fatal("a timed-out batch must not return partial results")
	}
}

func TestLanguageCacheLRU(t *testing.T) {
	// A recently used entry must survive the arrival of maxCachedLanguages
	// newer keys that would evict it under FIFO.
	hot := testDS(20, 20)
	l := LanguageFor(hot, 4)
	for i := 0; i < maxCachedLanguages-1; i++ {
		LanguageFor(testDS(20, int64(100+i)), 4)
		if LanguageFor(hot, 4) != l { // touch keeps it most recently used
			t.Fatalf("hot language evicted after %d insertions", i+1)
		}
	}
	// One more distinct key evicts the least recently used entry, which
	// is not the hot one.
	LanguageFor(testDS(20, 999), 4)
	if LanguageFor(hot, 4) != l {
		t.Fatal("LRU evicted the most recently used entry")
	}
}

func TestEvictLanguage(t *testing.T) {
	ds := testDS(30, 11)
	a := LanguageFor(ds, 4)
	b := LanguageFor(ds, 2)
	EvictLanguage(ds)
	if LanguageFor(ds, 4) == a || LanguageFor(ds, 2) == b {
		t.Fatal("evicted languages must be rebuilt, not returned from cache")
	}
	// Unrelated datasets stay cached.
	other := testDS(30, 12)
	c := LanguageFor(other, 4)
	EvictLanguage(ds)
	if LanguageFor(other, 4) != c {
		t.Fatal("evicting one dataset must not drop another's language")
	}
}

func TestTopKMatchesSortTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		items := make([]Scored, n)
		for i := range items {
			// Coarse scores force plenty of ties to exercise the tiebreak.
			items[i] = Scored{
				SI:  float64(rng.Intn(5)),
				Ids: []CondID{CondID(rng.Intn(50)), CondID(50 + rng.Intn(50))},
			}
		}
		top := NewTopK(k)
		for _, it := range items {
			if top.WouldAccept(it.SI, it.Ids) != topkWouldChange(top, it) {
				t.Fatal("WouldAccept disagrees with Add behaviour")
			}
			top.Add(it)
		}
		got := top.Sorted()

		want := append([]Scored(nil), items...)
		SortScored(want)
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("kept %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].SI != want[i].SI || !equalIDs(got[i].Ids, want[i].Ids) {
				t.Fatalf("trial %d: rank %d differs: %v/%v vs %v/%v",
					trial, i, got[i].SI, got[i].Ids, want[i].SI, want[i].Ids)
			}
		}
	}
}

// topkWouldChange predicts whether Add would retain the item, from the
// heap's public state.
func topkWouldChange(t *TopK, it Scored) bool {
	if t.k <= 0 || len(t.h) < t.k {
		return true
	}
	return better(it.SI, it.Ids, t.h[0].SI, t.h[0].Ids)
}

func TestDedupInsert(t *testing.T) {
	d := NewDedup()
	scratch := []CondID{3, 7}
	stored, fresh := d.Insert(scratch)
	if !fresh || stored == nil {
		t.Fatal("first insert must be fresh")
	}
	// Mutating the scratch must not affect the stored copy.
	scratch[0] = 99
	if _, fresh := d.Insert([]CondID{3, 7}); fresh {
		t.Fatal("duplicate insert must not be fresh")
	}
	if _, fresh := d.Insert([]CondID{3}); !fresh {
		t.Fatal("prefix is a different intention")
	}
	if _, fresh := d.Insert([]CondID{3, 7, 9}); !fresh {
		t.Fatal("extension is a different intention")
	}
}

func TestInsertSortedAndContains(t *testing.T) {
	parent := []CondID{2, 5, 9}
	var buf []CondID
	buf = InsertSorted(buf, parent, 7)
	want := []CondID{2, 5, 7, 9}
	if !equalIDs(buf, want) {
		t.Fatalf("got %v, want %v", buf, want)
	}
	buf = InsertSorted(buf[:0], parent, 1)
	if !equalIDs(buf, []CondID{1, 2, 5, 9}) {
		t.Fatalf("prepend failed: %v", buf)
	}
	buf = InsertSorted(buf[:0], parent, 11)
	if !equalIDs(buf, []CondID{2, 5, 9, 11}) {
		t.Fatalf("append failed: %v", buf)
	}
	for _, id := range parent {
		if !ContainsID(parent, id) {
			t.Fatalf("ContainsID missed %d", id)
		}
	}
	for _, id := range []CondID{0, 3, 10} {
		if ContainsID(parent, id) {
			t.Fatalf("ContainsID false positive for %d", id)
		}
	}
}

func TestEnumerateMatchesNaiveRecursion(t *testing.T) {
	ds := testDS(40, 6)
	lang := LanguageFor(ds, 2)
	const maxDepth, minSupport = 3, 2

	// Naive reference: allocating recursion over the same language.
	type node struct {
		ids  []CondID
		size int
	}
	var want []node
	var rec func(start int, ids []CondID, ext *bitset.Set)
	rec = func(start int, ids []CondID, ext *bitset.Set) {
		for i := start; i < len(lang.Conds); i++ {
			next := ext.And(lang.Exts[i])
			if next.Count() < minSupport {
				continue
			}
			cur := append(append([]CondID(nil), ids...), CondID(i))
			want = append(want, node{cur, next.Count()})
			if len(cur) < maxDepth {
				rec(i+1, cur, next)
			}
		}
	}
	rec(0, nil, bitset.Full(ds.N()))

	var got []node
	timedOut := lang.Enumerate(EnumOptions{MaxDepth: maxDepth, MinSupport: minSupport},
		func(ids []CondID, ext *bitset.Set, size int) bool {
			if ext.Count() != size {
				t.Fatalf("size %d != extension count %d", size, ext.Count())
			}
			got = append(got, node{append([]CondID(nil), ids...), size})
			return true
		})
	if timedOut {
		t.Fatal("no deadline was set")
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d nodes, want %d", len(got), len(want))
	}
	for i := range got {
		if !equalIDs(got[i].ids, want[i].ids) || got[i].size != want[i].size {
			t.Fatalf("node %d: got %v/%d, want %v/%d",
				i, got[i].ids, got[i].size, want[i].ids, want[i].size)
		}
	}
}

func TestEnumeratePruneSkipsSubtree(t *testing.T) {
	ds := testDS(40, 7)
	lang := LanguageFor(ds, 2)
	depths := map[int]int{}
	lang.Enumerate(EnumOptions{MaxDepth: 3, MinSupport: 2},
		func(ids []CondID, ext *bitset.Set, size int) bool {
			depths[len(ids)]++
			return false // prune everything: only depth-1 nodes visited
		})
	if depths[2] != 0 || depths[3] != 0 {
		t.Fatalf("pruned subtrees were visited: %v", depths)
	}
	if depths[1] == 0 {
		t.Fatal("no root-level nodes visited")
	}
}

func TestHashIDsOrderSensitivity(t *testing.T) {
	// Canonical slices are sorted, but the hash must still separate
	// different sets reliably; sanity-check a window of small sets.
	seen := map[uint64][]CondID{}
	for a := CondID(0); a < 40; a++ {
		for b := a + 1; b < 40; b++ {
			ids := []CondID{a, b}
			h := hashIDs(ids)
			if prev, ok := seen[h]; ok {
				t.Fatalf("hash collision between %v and %v (dedup stays exact, but the hash is weak)", prev, ids)
			}
			seen[h] = ids
		}
	}
}

func TestSortScoredDeterministicOnTies(t *testing.T) {
	mk := func() []Scored {
		return []Scored{
			{SI: 1, Ids: []CondID{4}},
			{SI: 1, Ids: []CondID{2}},
			{SI: 2, Ids: []CondID{9}},
			{SI: 1, Ids: []CondID{2, 3}},
		}
	}
	a, b := mk(), mk()
	sort.Slice(b, func(i, j int) bool { return len(b[i].Ids) < len(b[j].Ids) }) // scramble
	SortScored(a)
	SortScored(b)
	for i := range a {
		if a[i].SI != b[i].SI || !equalIDs(a[i].Ids, b[i].Ids) {
			t.Fatalf("rank %d differs after different input orders", i)
		}
	}
	if a[0].SI != 2 || !equalIDs(a[1].Ids, []CondID{2}) {
		t.Fatalf("unexpected order: %v", a)
	}
}
