package engine

import (
	"math/bits"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/pattern"
)

// Language is the precomputed condition language of a dataset: the
// elementary conditions of §II-A together with their extensions, built
// once and shared by every search strategy, mining iteration and
// session that works on the same dataset. Conditions are identified by
// their ordinal index (a CondID), which is what the engine's dedup,
// ordering and intention representation operate on — no string keys
// anywhere on the hot path.
type Language struct {
	DS    *dataset.Dataset
	Conds []pattern.Condition
	Exts  []*bitset.Set

	// Depth-1 sufficient statistics, built lazily once per Language:
	// every condition's target-row sum and extension size depend only on
	// the (immutable) dataset, so they are shared by every search,
	// session and model state working on it.
	statsOnce sync.Once
	condSums  []mat.Vec
	condSizes []int
}

// CondID indexes a condition within its Language. Intentions are
// represented as ascending CondID slices, which is a canonical form:
// two intentions are equal iff their sorted ID slices are equal.
type CondID = int32

// NewLanguage enumerates the condition language of ds with numSplits
// percentile split points per numeric attribute and materializes every
// condition's extension.
func NewLanguage(ds *dataset.Dataset, numSplits int) *Language {
	conds := pattern.AllConditions(ds, numSplits)
	exts := make([]*bitset.Set, len(conds))
	for i, c := range conds {
		exts[i] = c.Extension(ds)
	}
	return &Language{DS: ds, Conds: conds, Exts: exts}
}

// languageCache memoizes NewLanguage per (dataset, numSplits). Iterative
// mining re-runs the search once per committed pattern and the server
// mines repeatedly within a session, so rebuilding the extensions each
// time is pure waste. The cache is bounded with least-recently-used
// eviction once maxCachedLanguages distinct keys accumulate (sessions
// on generated datasets would otherwise pin them all).
const maxCachedLanguages = 32

type langKey struct {
	ds        *dataset.Dataset
	numSplits int
}

var langCache = struct {
	sync.Mutex
	m     map[langKey]*Language
	order []langKey // least recently used first
}{m: map[langKey]*Language{}}

// touch moves key to the most-recently-used end of the order. Must be
// called with the cache lock held.
func touchLangKey(key langKey) {
	order := langCache.order
	for i, k := range order {
		if k == key {
			copy(order[i:], order[i+1:])
			order[len(order)-1] = key
			return
		}
	}
}

// LanguageFor returns the (cached) condition language for ds. The
// dataset must not be mutated after first use — the same assumption the
// rest of the system already makes.
func LanguageFor(ds *dataset.Dataset, numSplits int) *Language {
	key := langKey{ds, numSplits}
	langCache.Lock()
	if l, ok := langCache.m[key]; ok {
		touchLangKey(key)
		langCache.Unlock()
		return l
	}
	langCache.Unlock()
	// Build outside the lock: extension materialization is O(n·|conds|)
	// and must not serialize unrelated sessions.
	l := NewLanguage(ds, numSplits)
	langCache.Lock()
	defer langCache.Unlock()
	if have, ok := langCache.m[key]; ok { // lost the race; reuse winner
		touchLangKey(key)
		return have
	}
	if len(langCache.order) >= maxCachedLanguages {
		oldest := langCache.order[0]
		langCache.order = langCache.order[1:]
		delete(langCache.m, oldest)
	}
	langCache.m[key] = l
	langCache.order = append(langCache.order, key)
	return l
}

// EvictLanguage drops every cached language built for ds, releasing
// its per-condition extension bitsets. Callers that own a dataset's
// lifecycle (e.g. the server dropping a session) should evict on
// teardown so the bounded cache is not the only thing between a dead
// dataset and the heap.
func EvictLanguage(ds *dataset.Dataset) {
	langCache.Lock()
	defer langCache.Unlock()
	keep := langCache.order[:0]
	for _, k := range langCache.order {
		if k.ds == ds {
			delete(langCache.m, k)
		} else {
			keep = append(keep, k)
		}
	}
	langCache.order = keep
}

// CondTargetStats returns, for every condition, the sum of target rows
// over its extension (Σ_{i∈ext(c)} yᵢ) and the extension size. Both are
// model-independent, so they are computed once per Language and cached.
//
// The sums are built point-major: a CSR-style inverted index maps each
// point to the conditions containing it, and one pass over the data
// folds every row into all of its conditions' sums. The arithmetic is
// the same Σ|ext(c)| row additions a per-condition walk performs, but
// the target matrix is streamed exactly once instead of once per
// condition — on wide-target datasets (mammals: 134 conditions × 124
// targets) the per-condition walk re-reads the 2 MB matrix ~70 times
// and is purely memory-bound. Each condition's sum still accumulates
// in increasing point order — the same order as the fused scoring
// kernels and the former per-condition walk — so stat-scored and
// extension-scored candidates produce bit-identical floats.
//
// Binary targets (every yᵢⱼ ∈ {0,1}, e.g. species presence/absence)
// take a separate kernel: a sum of k ones is exactly float64(k)
// whatever order the additions happen in (k ≪ 2⁵³, and adding 0.0 to a
// non-negative partial sum is an exact no-op), so Σ_{i∈ext(c)} y_ij
// degenerates to the integer |ext(c) ∩ ones(j)|. Each target column
// becomes a bitset once, and every sum entry is one AND-popcount sweep
// — word-batched work instead of |ext|·d float adds, with bit-identical
// results by exactness rather than by order preservation.
func (l *Language) CondTargetStats() (sums []mat.Vec, sizes []int) {
	l.statsOnce.Do(func() {
		y := l.DS.Y
		d := y.C
		n := l.DS.N()
		nc := len(l.Exts)
		l.condSums = make([]mat.Vec, nc)
		l.condSizes = make([]int, nc)
		buf := make(mat.Vec, d*nc)
		if binaryTargets(y) {
			cols := make([]*bitset.Set, d)
			for j := range cols {
				cols[j] = bitset.New(n)
			}
			for i := 0; i < n; i++ {
				row := y.Data[i*d : (i+1)*d]
				for j, v := range row {
					if v == 1 {
						cols[j].Add(i)
					}
				}
			}
			for ci, ext := range l.Exts {
				sum := buf[ci*d : (ci+1)*d : (ci+1)*d]
				for j, col := range cols {
					sum[j] = float64(ext.IntersectCount(col))
				}
				l.condSums[ci] = sum
				l.condSizes[ci] = ext.Count()
			}
			return
		}
		if d < 8 {
			// Narrow targets: each membership contributes only a few
			// adds, so the inverted index costs more than the re-reads
			// it eliminates. Walk per condition (same float order).
			for ci, ext := range l.Exts {
				sum := buf[ci*d : (ci+1)*d : (ci+1)*d]
				cnt := 0
				for wi, w := range ext.Words() {
					base := wi * 64
					for w != 0 {
						b := bits.TrailingZeros64(w)
						w &= w - 1
						row := y.Data[(base+b)*d : (base+b)*d+d]
						for j, v := range row {
							sum[j] += v
						}
						cnt++
					}
				}
				l.condSums[ci] = sum
				l.condSizes[ci] = cnt
			}
			return
		}
		total := 0
		for ci, ext := range l.Exts {
			l.condSums[ci] = buf[ci*d : (ci+1)*d : (ci+1)*d]
			sz := ext.Count()
			l.condSizes[ci] = sz
			total += sz
		}
		// CSR inverted index: memb[start[i]:start[i+1]] lists the
		// conditions containing point i, in ascending condition order
		// (filled condition-major below, which yields exactly that).
		start := make([]int32, n+1)
		for _, ext := range l.Exts {
			for wi, w := range ext.Words() {
				base := wi * 64
				for w != 0 {
					b := bits.TrailingZeros64(w)
					w &= w - 1
					start[base+b+1]++
				}
			}
		}
		for i := 0; i < n; i++ {
			start[i+1] += start[i]
		}
		memb := make([]int32, total)
		fill := make([]int32, n)
		for ci, ext := range l.Exts {
			for wi, w := range ext.Words() {
				base := wi * 64
				for w != 0 {
					b := bits.TrailingZeros64(w)
					w &= w - 1
					i := base + b
					memb[start[i]+fill[i]] = int32(ci)
					fill[i]++
				}
			}
		}
		// Fold every row into its conditions' sums. Each sum[j] is an
		// independent accumulator, so the four-wide unroll only
		// interleaves distinct target coordinates — every individual
		// accumulator still sees its additions in increasing point
		// order, keeping the sums bit-identical to the rolled loop.
		// The explicit reslice to len(row) lets the compiler drop the
		// per-element bounds checks that otherwise dominate the fold.
		for i := 0; i < n; i++ {
			row := y.Data[i*d : (i+1)*d]
			for _, ci := range memb[start[i]:start[i+1]] {
				sum := buf[int(ci)*d:]
				sum = sum[:len(row)]
				j := 0
				for ; j+4 <= len(row); j += 4 {
					sum[j] += row[j]
					sum[j+1] += row[j+1]
					sum[j+2] += row[j+2]
					sum[j+3] += row[j+3]
				}
				for ; j < len(row); j++ {
					sum[j] += row[j]
				}
			}
		}
	})
	return l.condSums, l.condSizes
}

// binaryTargets reports whether every target value is exactly 0 or 1,
// the precondition of the popcount sufficient-statistics kernel.
func binaryTargets(y *mat.Dense) bool {
	for _, v := range y.Data {
		if v != 0 && v != 1 {
			return false
		}
	}
	return true
}

// Intention materializes the pattern.Intention for a canonical ID
// slice. Called only when a subgroup is actually reported, never per
// candidate.
func (l *Language) Intention(ids []CondID) pattern.Intention {
	out := make(pattern.Intention, len(ids))
	for i, id := range ids {
		out[i] = l.Conds[id]
	}
	return out
}

// EnumOptions configure a depth-first enumeration of the language.
type EnumOptions struct {
	MaxDepth   int       // maximum conditions per conjunction (default 4)
	MinSupport int       // minimum subgroup size (default 2)
	Deadline   time.Time // zero means no time budget
}

func (o EnumOptions) withDefaults() EnumOptions {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 4
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 2
	}
	return o
}

// Enumerate walks every conjunction of up to MaxDepth distinct
// conditions (each used at most once, order-free) in canonical
// ascending-ID order, skipping nodes below MinSupport. It is the shared
// chassis of the exact strategies: Exhaustive, the optimal-SI branch
// and bound, and the baseline impact searches all differ only in their
// visit callback.
//
// visit receives the node's canonical IDs, its extension and its size,
// and returns whether to descend into the node's refinements (returning
// false is how branch-and-bound prunes a subtree). Both ids and ext are
// scratch storage owned by the enumeration — valid only during the
// call; callers must copy (ext.Clone()) what they keep. The entire walk
// performs no per-node allocations.
//
// Enumerate returns true if the deadline cut the walk short.
func (l *Language) Enumerate(o EnumOptions, visit func(ids []CondID, ext *bitset.Set, size int) bool) (timedOut bool) {
	o = o.withDefaults()
	if o.MaxDepth > len(l.Conds) {
		// Each condition is used at most once, so depth beyond the
		// language size is unreachable — no point allocating scratch for it.
		o.MaxDepth = len(l.Conds)
	}
	n := l.DS.N()
	// One scratch extension per depth: the node at depth d writes
	// scratch[d] and passes it down as the parent of depth d+1.
	scratch := make([]*bitset.Set, o.MaxDepth)
	for i := range scratch {
		scratch[i] = bitset.New(n)
	}
	ids := make([]CondID, 0, o.MaxDepth)
	checkDeadline := !o.Deadline.IsZero()
	nodes := 0

	var rec func(start int, parent *bitset.Set) bool
	rec = func(start int, parent *bitset.Set) bool {
		depth := len(ids)
		for i := start; i < len(l.Conds); i++ {
			if checkDeadline {
				nodes++
				if nodes&1023 == 0 && time.Now().After(o.Deadline) {
					timedOut = true
					return false
				}
			}
			ext := scratch[depth]
			size := bitset.AndCountInto(ext, parent, l.Exts[i])
			if size < o.MinSupport {
				continue
			}
			ids = append(ids, CondID(i))
			descend := visit(ids, ext, size)
			if descend && len(ids) < o.MaxDepth {
				if !rec(i+1, ext) {
					ids = ids[:len(ids)-1]
					return false
				}
			}
			ids = ids[:len(ids)-1]
		}
		return true
	}
	rec(0, bitset.Full(n))
	return timedOut
}
