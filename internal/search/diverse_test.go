package search

import "testing"

func TestDiverseTopK(t *testing.T) {
	ds := plantedDS(80, 10)
	res := Beam(ds, scorerFor(t, ds), Params{MaxDepth: 2})
	picked := DiverseTopK(res, 5, 0.5)
	if len(picked) == 0 {
		t.Fatal("nothing selected")
	}
	// Best pattern always survives.
	if picked[0].Intention.Key() != res.Patterns[0].Intention.Key() {
		t.Fatal("top pattern must be selected first")
	}
	// Pairwise Jaccard respected.
	for i := 0; i < len(picked); i++ {
		for j := i + 1; j < len(picked); j++ {
			inter := picked[i].Extension.IntersectCount(picked[j].Extension)
			union := picked[i].Size + picked[j].Size - inter
			if union > 0 && float64(inter)/float64(union) > 0.5 {
				t.Fatalf("patterns %d and %d overlap too much", i, j)
			}
		}
	}
	// SI order preserved.
	for i := 1; i < len(picked); i++ {
		if picked[i].SI > picked[i-1].SI {
			t.Fatal("selection broke SI ordering")
		}
	}
	// k and edge cases.
	if got := DiverseTopK(res, 0, 0.5); got != nil {
		t.Fatal("k=0 should select nothing")
	}
	if got := DiverseTopK(res, 1, 0.5); len(got) != 1 {
		t.Fatalf("k=1 selected %d", len(got))
	}
	// maxJaccard=1 degrades to plain top-k.
	all := DiverseTopK(res, 4, 1.0)
	if len(all) != 4 {
		t.Fatalf("maxJaccard=1 selected %d", len(all))
	}
	for i := range all {
		if all[i].Intention.Key() != res.Patterns[i].Intention.Key() {
			t.Fatal("maxJaccard=1 must equal plain top-k")
		}
	}
}
