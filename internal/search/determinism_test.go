package search

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"repro/internal/gen"
)

// dumpResults serializes a Results to a canonical byte form: every
// float is written bit-exact, every extension as its index list, so two
// dumps are equal iff the results are byte-identical.
func dumpResults(res *Results) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "evaluated=%d levels=%d timedout=%v\n",
		res.Evaluated, res.Levels, res.TimedOut)
	for _, f := range res.Patterns {
		fmt.Fprintf(&buf, "%s size=%d si=%016x ic=%016x ext=%v mean=[",
			f.Intention.Key(), f.Size,
			math.Float64bits(f.SI), math.Float64bits(f.IC),
			f.Extension.Indices())
		for _, v := range f.Mean {
			_ = binary.Write(&buf, binary.LittleEndian, v)
		}
		buf.WriteString("]\n")
	}
	return buf.Bytes()
}

// TestBeamParallelismByteIdentical asserts that the engine's parallel
// candidate evaluation is fully deterministic: the beam search on the
// paper's synthetic dataset must return byte-identical Results whether
// it runs on 1, 2 or 8 workers.
func TestBeamParallelismByteIdentical(t *testing.T) {
	ds := gen.Synthetic620(gen.SeedSynthetic).DS
	sc := scorerFor(t, ds)
	var want []byte
	for _, par := range []int{1, 2, 8} {
		res := Beam(ds, sc, Params{Parallelism: par})
		got := dumpResults(res)
		if want == nil {
			want = got
			if res.Top() == nil {
				t.Fatal("no patterns found")
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Parallelism=%d results differ from Parallelism=1", par)
		}
	}
}

// TestExhaustiveLevelsReportsReachedDepth guards the fix for Levels
// being reported as maxDepth even when the recursion never scored a
// candidate that deep.
func TestExhaustiveLevelsReportsReachedDepth(t *testing.T) {
	ds := plantedDS(40, 11)
	sc := scorerFor(t, ds)

	// Generous depth limit, normal support: the planted dataset has few
	// conditions, so depth is bounded by the number of distinct
	// conditions that still meet MinSupport, not by maxDepth.
	res := Exhaustive(ds, sc, 50, 4, 2, 10)
	if res.Levels >= 50 {
		t.Fatalf("Levels = %d parrots maxDepth instead of the reached depth", res.Levels)
	}
	if res.Levels <= 0 {
		t.Fatalf("Levels = %d, want the deepest evaluated depth", res.Levels)
	}
	deepest := 0
	for _, f := range res.Patterns {
		if len(f.Intention) > deepest {
			deepest = len(f.Intention)
		}
	}
	if res.Levels < deepest {
		t.Fatalf("Levels = %d but a depth-%d pattern was scored", res.Levels, deepest)
	}

	// A support threshold above the largest condition extension blocks
	// every candidate: nothing is scored, so no level completes.
	blocked := Exhaustive(ds, sc, 3, 4, ds.N()+1, 10)
	if blocked.Levels != 0 {
		t.Fatalf("Levels = %d with nothing evaluated, want 0", blocked.Levels)
	}
	if blocked.Evaluated != 0 || len(blocked.Patterns) != 0 {
		t.Fatalf("expected empty results, got %d evaluated, %d patterns",
			blocked.Evaluated, len(blocked.Patterns))
	}
}
