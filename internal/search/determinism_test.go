package search

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/gen"
	"repro/internal/mat"
	"repro/internal/si"
)

// dumpResults serializes a Results to a canonical byte form: every
// float is written bit-exact, every extension as its index list, so two
// dumps are equal iff the results are byte-identical.
func dumpResults(res *Results) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "evaluated=%d levels=%d timedout=%v\n",
		res.Evaluated, res.Levels, res.TimedOut)
	for _, f := range res.Patterns {
		fmt.Fprintf(&buf, "%s size=%d si=%016x ic=%016x ext=%v mean=[",
			f.Intention.Key(), f.Size,
			math.Float64bits(f.SI), math.Float64bits(f.IC),
			f.Extension.Indices())
		for _, v := range f.Mean {
			_ = binary.Write(&buf, binary.LittleEndian, v)
		}
		buf.WriteString("]\n")
	}
	return buf.Bytes()
}

// TestBeamParallelismByteIdentical asserts that the engine's parallel
// candidate evaluation is fully deterministic: the beam search on the
// paper's synthetic dataset must return byte-identical Results whether
// it runs on 1, 2 or 8 workers.
func TestBeamParallelismByteIdentical(t *testing.T) {
	ds := gen.Synthetic620(gen.SeedSynthetic).DS
	sc := scorerFor(t, ds)
	var want []byte
	for _, par := range []int{1, 2, 8} {
		res := Beam(ds, sc, Params{Parallelism: par})
		got := dumpResults(res)
		if want == nil {
			want = got
			if res.Top() == nil {
				t.Fatal("no patterns found")
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Parallelism=%d results differ from Parallelism=1", par)
		}
	}
}

// TestBeamManyGroupsParallelismByteIdentical repeats the byte-identity
// guarantee on a model that many commits have fragmented into many
// parameter groups — the regime the fused sufficient-statistics kernel
// (group-label pass + depth-1 stats table) is built for. The search
// must return the same bytes at every parallelism and regardless of
// whether candidates were scored from the depth-1 table or the fused
// extension pass.
func TestBeamManyGroupsParallelismByteIdentical(t *testing.T) {
	ds := gen.Synthetic620(gen.SeedSynthetic).DS
	m, err := background.New(ds.N(), make(mat.Vec, ds.Dy()), mat.Eye(ds.Dy()))
	if err != nil {
		t.Fatal(err)
	}
	// Commit a spread of overlapping location patterns to split the
	// model into many groups.
	target := make(mat.Vec, ds.Dy())
	for c := 0; c < 12; c++ {
		ext := bitset.New(ds.N())
		lo := (c * 41) % (ds.N() - 80)
		for i := lo; i < lo+80; i++ {
			ext.Add(i)
		}
		target[0] = 0.05 * float64(c%3)
		if err := m.CommitLocation(ext, target); err != nil {
			t.Fatal(err)
		}
	}
	if m.NumGroups() < 12 {
		t.Fatalf("model has only %d groups; the many-groups regime was not reached", m.NumGroups())
	}
	sc, err := si.NewLocationScorer(m, ds.Y, si.Default())
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, par := range []int{1, 2, 8} {
		res := Beam(ds, sc, Params{Parallelism: par})
		got := dumpResults(res)
		if want == nil {
			want = got
			if res.Top() == nil {
				t.Fatal("no patterns found")
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Parallelism=%d results differ on the many-groups model", par)
		}
	}
}

// TestExhaustiveLevelsReportsReachedDepth guards the fix for Levels
// being reported as maxDepth even when the recursion never scored a
// candidate that deep.
func TestExhaustiveLevelsReportsReachedDepth(t *testing.T) {
	ds := plantedDS(40, 11)
	sc := scorerFor(t, ds)

	// Generous depth limit, normal support: the planted dataset has few
	// conditions, so depth is bounded by the number of distinct
	// conditions that still meet MinSupport, not by maxDepth.
	res := Exhaustive(ds, sc, 50, 4, 2, 10)
	if res.Levels >= 50 {
		t.Fatalf("Levels = %d parrots maxDepth instead of the reached depth", res.Levels)
	}
	if res.Levels <= 0 {
		t.Fatalf("Levels = %d, want the deepest evaluated depth", res.Levels)
	}
	deepest := 0
	for _, f := range res.Patterns {
		if len(f.Intention) > deepest {
			deepest = len(f.Intention)
		}
	}
	if res.Levels < deepest {
		t.Fatalf("Levels = %d but a depth-%d pattern was scored", res.Levels, deepest)
	}

	// A support threshold above the largest condition extension blocks
	// every candidate: nothing is scored, so no level completes.
	blocked := Exhaustive(ds, sc, 3, 4, ds.N()+1, 10)
	if blocked.Levels != 0 {
		t.Fatalf("Levels = %d with nothing evaluated, want 0", blocked.Levels)
	}
	if blocked.Evaluated != 0 || len(blocked.Patterns) != 0 {
		t.Fatalf("expected empty results, got %d evaluated, %d patterns",
			blocked.Evaluated, len(blocked.Patterns))
	}
}
