package search

import (
	"math"
	"testing"

	"repro/internal/background"
	"repro/internal/mat"
	"repro/internal/si"
)

// freshScorer builds an SI scorer over a fresh N(mu, sigma2) model so
// Exhaustive can serve as the oracle for OptimalLocation1D.
func freshScorer(t *testing.T, n int, y *mat.Dense, mu, sigma2 float64, p si.Params) Scorer {
	t.Helper()
	cov := mat.NewDense(1, 1)
	cov.Set(0, 0, sigma2)
	m, err := background.New(n, mat.Vec{mu}, cov)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := si.NewLocationScorer(m, y, p)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestOptimalLocation1DMatchesExhaustive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		ds := plantedDS(50, seed)
		p := si.Default()
		sc := freshScorer(t, ds.N(), ds.Y, 0, 1, p)
		opt := OptimalLocation1D(ds, 0, 1, p, 2, 4, 2)
		exh := Exhaustive(ds, sc, 2, 4, 2, 5)
		et := exh.Top()
		if et == nil {
			t.Fatal("exhaustive found nothing")
		}
		if math.Abs(opt.SI-et.SI) > 1e-9*(1+math.Abs(et.SI)) {
			t.Fatalf("seed %d: B&B SI %v != exhaustive %v (%v vs %v)",
				seed, opt.SI, et.SI,
				opt.Intention.Format(ds), et.Intention.Format(ds))
		}
		if !opt.Extension.Equal(et.Extension) {
			t.Fatalf("seed %d: extensions differ", seed)
		}
	}
}

func TestOptimalLocation1DPrunes(t *testing.T) {
	ds := plantedDS(150, 4)
	p := si.Default()
	opt := OptimalLocation1D(ds, 0, 1, p, 3, 4, 2)
	sc := freshScorer(t, ds.N(), ds.Y, 0, 1, p)
	exh := Exhaustive(ds, sc, 3, 4, 2, 5)
	if opt.Explored >= exh.Evaluated {
		t.Fatalf("no pruning savings: B&B %d nodes vs exhaustive %d",
			opt.Explored, exh.Evaluated)
	}
	if opt.Pruned == 0 {
		t.Fatal("expected at least one pruned subtree")
	}
	// The optimum must still match.
	if math.Abs(opt.SI-exh.Top().SI) > 1e-9*(1+math.Abs(opt.SI)) {
		t.Fatalf("pruning broke optimality: %v vs %v", opt.SI, exh.Top().SI)
	}
}

func TestOptimalLocation1DFindsPlanted(t *testing.T) {
	ds := plantedDS(80, 5)
	opt := OptimalLocation1D(ds, 0, 1, si.Default(), 2, 4, 2)
	if opt.Extension == nil {
		t.Fatal("no result")
	}
	// The planted subgroup is rows [0, 20) with target ≈ 3; the optimum
	// must cover it (possibly exactly via flag='1').
	covered := 0
	for i := 0; i < 20; i++ {
		if opt.Extension.Contains(i) {
			covered++
		}
	}
	if covered < 18 {
		t.Fatalf("optimum misses the planted subgroup: %d/20 covered (%s)",
			covered, opt.Intention.Format(ds))
	}
	if opt.SI <= 0 {
		t.Fatalf("SI = %v", opt.SI)
	}
}

func TestOptimalLocation1DValidation(t *testing.T) {
	ds := plantedDS(20, 6)
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { OptimalLocation1D(ds, 0, -1, si.Default(), 2, 4, 2) })
	ds2 := plantedDS(20, 7)
	ds2.TargetNames = append(ds2.TargetNames, "extra")
	y2 := mat.NewDense(20, 2)
	ds2.Y = y2
	mustPanic(func() { OptimalLocation1D(ds2, 0, 1, si.Default(), 2, 4, 2) })
}
