package search

import (
	"testing"

	"repro/internal/background"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mat"
	"repro/internal/si"
)

// Ablation: parallel candidate evaluation versus serial, and the
// branch-and-bound optimal search versus blind exhaustive enumeration.

func benchScorerFor(b *testing.B, ds *dataset.Dataset) Scorer {
	b.Helper()
	m, err := background.New(ds.N(), make(mat.Vec, ds.Dy()), mat.Eye(ds.Dy()))
	if err != nil {
		b.Fatal(err)
	}
	sc, err := si.NewLocationScorer(m, ds.Y, si.Default())
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

func benchBeam(b *testing.B, parallelism int) {
	ds := plantedDS(2000, 1)
	sc := benchScorerFor(b, ds)
	p := Params{MaxDepth: 2, BeamWidth: 20, Parallelism: parallelism}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Beam(ds, sc, p).Top() == nil {
			b.Fatal("no result")
		}
	}
}

func BenchmarkBeamSerial(b *testing.B)   { benchBeam(b, 1) }
func BenchmarkBeamParallel(b *testing.B) { benchBeam(b, 0) } // GOMAXPROCS

// Ablation: admissible SI bound pruning on versus off, on the same
// search. The two runs return bit-identical patterns (see
// TestPrunedBeamBitIdentical); the difference is purely how many
// candidates pay a full scoring pass. The crime replica's 122 numeric
// descriptors yield ~970 conditions, so each beam parent's refinement
// run is long enough for the per-parent bound preparation to amortize
// (on few-condition datasets the engine skips bounding entirely).
func benchBeamPrune(b *testing.B, noPrune bool) {
	ds := gen.CrimeLike(gen.SeedCrime).DS
	sc := benchScorerFor(b, ds)
	p := Params{MaxDepth: 2, BeamWidth: 10, Parallelism: 1, NoPrune: noPrune}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Beam(ds, sc, p).Top() == nil {
			b.Fatal("no result")
		}
	}
}

func BenchmarkBeamPruned(b *testing.B)  { benchBeamPrune(b, false) }
func BenchmarkBeamNoPrune(b *testing.B) { benchBeamPrune(b, true) }

func BenchmarkOptimalBranchAndBound(b *testing.B) {
	ds := plantedDS(500, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if OptimalLocation1D(ds, 0, 1, si.Default(), 3, 4, 2).Extension == nil {
			b.Fatal("no result")
		}
	}
}

func BenchmarkOptimalExhaustiveBaseline(b *testing.B) {
	ds := plantedDS(500, 8)
	sc := benchScorerFor(b, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Exhaustive(ds, sc, 3, 4, 2, 5).Top() == nil {
			b.Fatal("no result")
		}
	}
}
