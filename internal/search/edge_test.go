package search

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/pattern"
)

// categoricalDS plants a subgroup on one level of a 4-level categorical
// attribute, so both EQ and NE conditions participate in the search.
func categoricalDS(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	y := mat.NewDense(n, 1)
	region := make([]float64, n)
	for i := 0; i < n; i++ {
		region[i] = float64(rng.Intn(4))
		if region[i] == 2 {
			y.Set(i, 0, 4+0.2*rng.NormFloat64())
		} else {
			y.Set(i, 0, 0.2*rng.NormFloat64())
		}
	}
	return &dataset.Dataset{
		Name: "cat",
		Descriptors: []dataset.Column{
			{Name: "region", Kind: dataset.Categorical, Values: region,
				Levels: []string{"n", "s", "e", "w"}},
		},
		TargetNames: []string{"t"},
		Y:           y,
	}
}

func TestBeamCategoricalEQWins(t *testing.T) {
	ds := categoricalDS(120, 1)
	res := Beam(ds, scorerFor(t, ds), Params{MaxDepth: 1})
	top := res.Top()
	if top == nil {
		t.Fatal("no result")
	}
	c := top.Intention[0]
	if c.Op != pattern.EQ || c.Level != 2 {
		t.Fatalf("top = %v, want region = 'e'", top.Intention.Format(ds))
	}
}

func TestBeamNEConditionUseful(t *testing.T) {
	// Plant the subgroup on the COMPLEMENT of one level: the exclusion
	// condition is then the concise correct description.
	n := 120
	rng := rand.New(rand.NewSource(2))
	y := mat.NewDense(n, 1)
	region := make([]float64, n)
	for i := 0; i < n; i++ {
		region[i] = float64(rng.Intn(3))
		if region[i] != 0 {
			y.Set(i, 0, 3+0.2*rng.NormFloat64())
		} else {
			y.Set(i, 0, 0.2*rng.NormFloat64())
		}
	}
	ds := &dataset.Dataset{
		Name: "catne",
		Descriptors: []dataset.Column{
			{Name: "g", Kind: dataset.Categorical, Values: region,
				Levels: []string{"a", "b", "c"}},
		},
		TargetNames: []string{"t"},
		Y:           y,
	}
	res := Beam(ds, scorerFor(t, ds), Params{MaxDepth: 1})
	top := res.Top()
	if top == nil {
		t.Fatal("no result")
	}
	c := top.Intention[0]
	if c.Op != pattern.NE || c.Level != 0 {
		t.Fatalf("top = %v, want g != 'a'", top.Intention.Format(ds))
	}
}

func TestBeamTopKTruncation(t *testing.T) {
	ds := plantedDS(80, 3)
	res := Beam(ds, scorerFor(t, ds), Params{MaxDepth: 2, TopK: 3})
	if len(res.Patterns) != 3 {
		t.Fatalf("TopK not enforced: %d patterns", len(res.Patterns))
	}
	// And they are the best 3 of a larger run.
	full := Beam(ds, scorerFor(t, ds), Params{MaxDepth: 2, TopK: 100})
	for i := 0; i < 3; i++ {
		if res.Patterns[i].Intention.Key() != full.Patterns[i].Intention.Key() {
			t.Fatalf("rank %d differs under truncation", i)
		}
	}
}

func TestBeamWidthOneIsGreedy(t *testing.T) {
	ds := plantedDS(80, 4)
	res := Beam(ds, scorerFor(t, ds), Params{MaxDepth: 3, BeamWidth: 1})
	if res.Top() == nil {
		t.Fatal("greedy beam found nothing")
	}
	// Level counts: with beam width 1 every level expands one node.
	if res.Levels != 3 {
		t.Fatalf("Levels = %d", res.Levels)
	}
}

func TestBeamEvaluatedCountsGrow(t *testing.T) {
	ds := plantedDS(80, 5)
	d1 := Beam(ds, scorerFor(t, ds), Params{MaxDepth: 1})
	d2 := Beam(ds, scorerFor(t, ds), Params{MaxDepth: 2})
	if d2.Evaluated <= d1.Evaluated {
		t.Fatalf("deeper search evaluated fewer candidates: %d vs %d",
			d2.Evaluated, d1.Evaluated)
	}
}
