package search

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/mat"
	"repro/internal/si"
)

// multiDS builds a random dataset with d target columns and three
// descriptors, with enough planted structure that beams and top-k logs
// fill with distinct scores.
func multiDS(n, d int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	y := mat.NewDense(n, d)
	flag := make([]float64, n)
	numA := make([]float64, n)
	numB := make([]float64, n)
	names := make([]string, d)
	for j := range names {
		names[j] = "t"
	}
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			flag[i] = 1
		}
		numA[i] = rng.NormFloat64()
		numB[i] = rng.NormFloat64()
		for j := 0; j < d; j++ {
			y.Set(i, j, 0.6*numA[i]+0.3*flag[i]+0.5*rng.NormFloat64())
		}
	}
	return &dataset.Dataset{
		Name: "multi",
		Descriptors: []dataset.Column{
			{Name: "flag", Kind: dataset.Binary, Values: flag, Levels: []string{"0", "1"}},
			{Name: "a", Kind: dataset.Numeric, Values: numA},
			{Name: "b", Kind: dataset.Numeric, Values: numB},
		},
		TargetNames: names,
		Y:           y,
	}
}

// locationScorerFor builds an SI scorer over a fresh background model,
// optionally with a few committed location patterns so the model has
// multiple parameter groups (the residuals then mix group means).
func locationScorerFor(t *testing.T, ds *dataset.Dataset, commits int) *si.LocationScorer {
	t.Helper()
	m, err := background.New(ds.N(), make(mat.Vec, ds.Dy()), mat.Eye(ds.Dy()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(commits) + 7))
	target := make(mat.Vec, ds.Dy())
	for c := 0; c < commits; c++ {
		ext := bitset.New(ds.N())
		lo := rng.Intn(ds.N() - 40)
		for i := lo; i < lo+20+rng.Intn(20); i++ {
			ext.Add(i)
		}
		target[0] = 0.2 * float64(c+1)
		if err := m.CommitLocation(ext, target); err != nil {
			t.Fatal(err)
		}
	}
	sc, err := si.NewLocationScorer(m, ds.Y, si.Default())
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestBoundAdmissibility verifies the core pruning invariant: for every
// refinement child = parent ∩ cond of a prepared parent, the bound the
// evaluator would compare (BoundSI at the child's exact size, inflated
// by the evaluator's slack) is at least the child's true SI. Covers the
// d=1 signed-residual bound and the d≥2 triangle-inequality bound, on
// fresh and multi-group (committed) models.
func TestBoundAdmissibility(t *testing.T) {
	cases := []struct {
		name    string
		ds      *dataset.Dataset
		commits int
	}{
		{"d1-fresh", plantedDS(300, 1), 0},
		{"d1-committed", plantedDS(300, 2), 3},
		{"d3-fresh", multiDS(250, 3, 3), 0},
		{"d3-committed", multiDS(250, 3, 4), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := locationScorerFor(t, tc.ds, tc.commits)
			bw := sc.NewBoundWorker()
			if bw == nil {
				t.Fatal("expected a bound worker for this model shape")
			}
			lang := engine.LanguageFor(tc.ds, 4)
			rng := rand.New(rand.NewSource(99))
			n := tc.ds.N()
			scratch := bitset.New(n)

			// Parents: a handful of condition extensions plus random subsets.
			var parents []*bitset.Set
			for i := 0; i < len(lang.Exts) && i < 6; i++ {
				parents = append(parents, lang.Exts[i*len(lang.Exts)/6])
			}
			for trial := 0; trial < 4; trial++ {
				p := bitset.New(n)
				for i := 0; i < n; i++ {
					if rng.Intn(3) != 0 {
						p.Add(i)
					}
				}
				parents = append(parents, p)
			}

			checked := 0
			for _, parent := range parents {
				if !bw.Prepare(parent) {
					continue
				}
				for ci := range lang.Exts {
					size := bitset.AndCountInto(scratch, parent, lang.Exts[ci])
					if size == 0 {
						continue
					}
					for _, numConds := range []int{1, 2, 3} {
						trueSI, _, _, ok := sc.Score(scratch, numConds)
						if !ok {
							continue
						}
						ub := bw.BoundSI(size, numConds)
						inflated := ub + 1e-9*(math.Abs(ub)+1)
						if trueSI > inflated {
							t.Fatalf("bound violated: cond %d size %d numConds %d: true SI %.17g > inflated bound %.17g",
								ci, size, numConds, trueSI, inflated)
						}
						checked++
					}
				}
			}
			if checked == 0 {
				t.Fatal("no refinements checked")
			}
		})
	}
}

// foundEqual compares two search results field by field, bit-exactly.
func foundEqual(a, b Found) bool {
	if a.SI != b.SI || a.IC != b.IC || a.Size != b.Size {
		return false
	}
	if len(a.Intention) != len(b.Intention) {
		return false
	}
	for i := range a.Intention {
		if a.Intention[i] != b.Intention[i] {
			return false
		}
	}
	if (a.Extension == nil) != (b.Extension == nil) {
		return false
	}
	if a.Extension != nil && !a.Extension.Equal(b.Extension) {
		return false
	}
	if len(a.Mean) != len(b.Mean) {
		return false
	}
	for i := range a.Mean {
		if a.Mean[i] != b.Mean[i] {
			return false
		}
	}
	return true
}

// TestPrunedBeamBitIdentical runs the beam with pruning on and off at
// several parallelism levels and demands bit-identical patterns — the
// acceptance property of the bounded beam: pruning and parallel
// scheduling may change which candidates are scored, but never what is
// returned.
func TestPrunedBeamBitIdentical(t *testing.T) {
	datasets := []struct {
		name string
		ds   *dataset.Dataset
	}{
		{"planted-d1", plantedDS(400, 5)},
		{"multi-d3", multiDS(300, 3, 6)},
	}
	pars := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, d := range datasets {
		t.Run(d.name, func(t *testing.T) {
			sc := locationScorerFor(t, d.ds, 0)
			base := Params{MaxDepth: 3, BeamWidth: 8, TopK: 20, Parallelism: 1, NoPrune: true}
			ref := Beam(d.ds, sc, base)
			if len(ref.Patterns) == 0 {
				t.Fatal("reference search found nothing")
			}
			for _, par := range pars {
				for _, noPrune := range []bool{false, true} {
					p := base
					p.Parallelism = par
					p.NoPrune = noPrune
					got := Beam(d.ds, sc, p)
					if len(got.Patterns) != len(ref.Patterns) {
						t.Fatalf("par=%d noPrune=%v: %d patterns, want %d",
							par, noPrune, len(got.Patterns), len(ref.Patterns))
					}
					for i := range got.Patterns {
						if !foundEqual(got.Patterns[i], ref.Patterns[i]) {
							t.Fatalf("par=%d noPrune=%v: pattern %d differs: SI %.17g vs %.17g",
								par, noPrune, i, got.Patterns[i].SI, ref.Patterns[i].SI)
						}
					}
				}
			}
			// The pruned runs must actually prune somewhere, or this test
			// proves nothing: check the serial pruned run's counters.
			p := base
			p.NoPrune = false
			if res := Beam(d.ds, sc, p); res.Pruned == 0 {
				t.Logf("warning: no candidates pruned on %s (bounds too loose to bite here)", d.name)
			}
		})
	}
}
