package search

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/si"
)

// plantedDS builds a dataset with one binary descriptor that exactly
// marks a subgroup with displaced target mean, one noisy binary
// descriptor, and one numeric descriptor correlated with the target.
func plantedDS(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	y := mat.NewDense(n, 1)
	flag := make([]float64, n)
	noise := make([]float64, n)
	num := make([]float64, n)
	for i := 0; i < n; i++ {
		if i < n/4 {
			flag[i] = 1
			y.Set(i, 0, 3+0.1*rng.NormFloat64())
		} else {
			y.Set(i, 0, 0.1*rng.NormFloat64())
		}
		noise[i] = float64(rng.Intn(2))
		num[i] = y.At(i, 0) + 0.5*rng.NormFloat64()
	}
	return &dataset.Dataset{
		Name: "planted",
		Descriptors: []dataset.Column{
			{Name: "flag", Kind: dataset.Binary, Values: flag, Levels: []string{"0", "1"}},
			{Name: "coin", Kind: dataset.Binary, Values: noise, Levels: []string{"0", "1"}},
			{Name: "num", Kind: dataset.Numeric, Values: num},
		},
		TargetNames: []string{"t"},
		Y:           y,
	}
}

func scorerFor(t *testing.T, ds *dataset.Dataset) Scorer {
	t.Helper()
	m, err := background.New(ds.N(), make(mat.Vec, ds.Dy()), mat.Eye(ds.Dy()))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := si.NewLocationScorer(m, ds.Y, si.Default())
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestBeamFindsPlantedPattern(t *testing.T) {
	ds := plantedDS(80, 1)
	res := Beam(ds, scorerFor(t, ds), Params{})
	top := res.Top()
	if top == nil {
		t.Fatal("no patterns found")
	}
	// The single condition flag='1' should be the winner: max coverage of
	// the displaced subgroup with minimum description length.
	if len(top.Intention) != 1 {
		t.Fatalf("top intention = %v", top.Intention.Format(ds))
	}
	c := top.Intention[0]
	if ds.Descriptors[c.Attr].Name != "flag" || c.Op != pattern.EQ || c.Level != 1 {
		t.Fatalf("top pattern = %v", top.Intention.Format(ds))
	}
	if top.Size != 20 {
		t.Fatalf("top size = %d, want 20", top.Size)
	}
	if top.SI <= 0 {
		t.Fatalf("top SI = %v", top.SI)
	}
}

func TestBeamMatchesExhaustiveOnSmallData(t *testing.T) {
	ds := plantedDS(40, 2)
	sc := scorerFor(t, ds)
	beam := Beam(ds, sc, Params{BeamWidth: 64, MaxDepth: 2, TopK: 10})
	exh := Exhaustive(ds, sc, 2, 4, 2, 10)
	bt, et := beam.Top(), exh.Top()
	if bt == nil || et == nil {
		t.Fatal("empty results")
	}
	if bt.Intention.Key() != et.Intention.Key() {
		t.Fatalf("beam top %v != exhaustive top %v",
			bt.Intention.Format(ds), et.Intention.Format(ds))
	}
	if bt.SI != et.SI {
		t.Fatalf("beam SI %v != exhaustive SI %v", bt.SI, et.SI)
	}
}

func TestBeamDeterministic(t *testing.T) {
	ds := plantedDS(80, 3)
	sc := scorerFor(t, ds)
	a := Beam(ds, sc, Params{Parallelism: 8})
	b := Beam(ds, sc, Params{Parallelism: 1})
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("pattern counts differ: %d vs %d", len(a.Patterns), len(b.Patterns))
	}
	for i := range a.Patterns {
		if a.Patterns[i].Intention.Key() != b.Patterns[i].Intention.Key() ||
			a.Patterns[i].SI != b.Patterns[i].SI {
			t.Fatalf("rank %d differs between parallel and serial runs", i)
		}
	}
}

func TestBeamNoDuplicateIntentions(t *testing.T) {
	ds := plantedDS(60, 4)
	res := Beam(ds, scorerFor(t, ds), Params{MaxDepth: 3})
	seen := map[string]bool{}
	for _, f := range res.Patterns {
		k := f.Intention.Key()
		if seen[k] {
			t.Fatalf("duplicate intention in results: %v", f.Intention.Format(ds))
		}
		seen[k] = true
	}
}

func TestBeamRespectsMinSupport(t *testing.T) {
	ds := plantedDS(60, 5)
	res := Beam(ds, scorerFor(t, ds), Params{MinSupport: 10})
	for _, f := range res.Patterns {
		if f.Size < 10 {
			t.Fatalf("pattern with size %d below MinSupport", f.Size)
		}
	}
}

func TestBeamRespectsDeadline(t *testing.T) {
	ds := plantedDS(200, 6)
	p := Params{MaxDepth: 4, Deadline: time.Now().Add(-time.Second)}
	res := Beam(ds, scorerFor(t, ds), p)
	if !res.TimedOut {
		t.Fatal("expired deadline should mark TimedOut")
	}
	if res.Levels != 0 {
		t.Fatalf("no level should complete, got %d", res.Levels)
	}
}

func TestBeamDepthLimits(t *testing.T) {
	ds := plantedDS(60, 7)
	res := Beam(ds, scorerFor(t, ds), Params{MaxDepth: 2})
	for _, f := range res.Patterns {
		if len(f.Intention) > 2 {
			t.Fatalf("intention deeper than MaxDepth: %v", f.Intention.Format(ds))
		}
	}
	if res.Levels != 2 {
		t.Fatalf("Levels = %d, want 2", res.Levels)
	}
}

func TestResultsTopEmpty(t *testing.T) {
	r := &Results{}
	if r.Top() != nil {
		t.Fatal("empty results should have nil Top")
	}
}

func TestExtensionsAreConsistent(t *testing.T) {
	ds := plantedDS(60, 8)
	res := Beam(ds, scorerFor(t, ds), Params{MaxDepth: 3})
	for _, f := range res.Patterns {
		want := f.Intention.Extension(ds)
		if !f.Extension.Equal(want) {
			t.Fatalf("stored extension differs from recomputed for %v",
				f.Intention.Format(ds))
		}
		if f.Size != want.Count() {
			t.Fatalf("size field inconsistent")
		}
	}
}

// constScorer scores every subgroup by its size (for engine-only tests).
type constScorer struct{}

func (constScorer) Score(ext *bitset.Set, numConds int) (float64, float64, mat.Vec, bool) {
	s := float64(ext.Count())
	return s, s, nil, true
}

func TestBeamWithCustomScorer(t *testing.T) {
	ds := plantedDS(60, 9)
	res := Beam(ds, constScorer{}, Params{MaxDepth: 1})
	top := res.Top()
	if top == nil {
		t.Fatal("no results")
	}
	// With a size scorer, the best single condition is the one with the
	// largest extension.
	for _, f := range res.Patterns {
		if f.Size > top.Size {
			t.Fatalf("top is not the largest: %d vs %d", top.Size, f.Size)
		}
	}
}
