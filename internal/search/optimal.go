package search

import (
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/pattern"
	"repro/internal/si"
)

// OptimalResult is the outcome of the exact location-pattern search.
type OptimalResult struct {
	Intention pattern.Intention
	Extension *bitset.Set
	SI, IC    float64
	// Explored counts evaluated nodes; Pruned counts subtrees cut by the
	// optimistic estimate.
	Explored, Pruned int
}

// OptimalLocation1D finds the location pattern with globally maximal SI
// for a single real-valued target under a fresh background model (every
// point shares the prior N(mu, sigma2)), by branch-and-bound with a
// tight optimistic estimate — the exact search the paper's conclusion
// singles out as "the most relevant question to be addressed in the
// future" (§V).
//
// For a subgroup J with k = |J| and mean shift δ = ȳ_J − µ, the
// location IC under the fresh model is
//
//	IC(J) = ½·log(2πσ²/k) + k·δ²/(2σ²),
//
// so for any refinement J ⊆ I with |J| = k the shift is bounded by the
// top-k or bottom-k mean of I's target values, both computable from
// prefix sums of the sorted values. Any refinement also pays for at
// least one extra condition, bounding its DL from below; the ratio of
// the two bounds is an admissible optimistic SI for the whole subtree.
//
// The search enumerates condition sets through engine.Enumerate exactly
// like Exhaustive (each condition used at most once, order-free), so
// the returned optimum is exact for the same language.
func OptimalLocation1D(ds *dataset.Dataset, mu, sigma2 float64, p si.Params,
	maxDepth, numSplits, minSupport int) *OptimalResult {
	if ds.Dy() != 1 {
		panic("search: OptimalLocation1D needs exactly one target")
	}
	if sigma2 <= 0 {
		panic("search: OptimalLocation1D needs positive prior variance")
	}
	if numSplits <= 0 {
		numSplits = 4
	}
	if minSupport <= 0 {
		minSupport = 2
	}
	if maxDepth <= 0 {
		maxDepth = 4
	}
	y := ds.TargetColumn(0)
	lang := engine.LanguageFor(ds, numSplits)

	ic := func(k int, delta float64) float64 {
		return 0.5*math.Log(2*math.Pi*sigma2/float64(k)) +
			float64(k)*delta*delta/(2*sigma2)
	}

	res := &OptimalResult{SI: math.Inf(-1)}

	// Reusable buffers for the optimistic estimate: the node's target
	// values and their suffix sums. Zero allocations per node once grown.
	var idxBuf []int
	var vals, his []float64

	// optimisticSI bounds the SI of every refinement of ext (which has
	// numConds conditions and therefore refinements with ≥ numConds+1).
	optimisticSI := func(ext *bitset.Set, numConds int) float64 {
		idxBuf = ext.IterateInto(idxBuf[:0])
		vals = vals[:0]
		for _, i := range idxBuf {
			vals = append(vals, y[i])
		}
		sort.Float64s(vals)
		dlMin := p.DL(numConds+1, false)
		best := math.Inf(-1)
		// Prefix sums give the bottom-k means; suffix the top-k means.
		var lo float64
		if cap(his) < len(vals)+1 {
			his = make([]float64, len(vals)+1)
		}
		his = his[:len(vals)+1]
		his[len(vals)] = 0
		for i := len(vals) - 1; i >= 0; i-- {
			his[i] = his[i+1] + vals[i]
		}
		for k := 1; k <= len(vals); k++ {
			lo += vals[k-1]
			if k < minSupport {
				continue
			}
			dBot := math.Abs(lo/float64(k) - mu)
			dTop := math.Abs(his[len(vals)-k]/float64(k) - mu)
			d := math.Max(dBot, dTop)
			if v := ic(k, d) / dlMin; v > best {
				best = v
			}
		}
		return best
	}

	lang.Enumerate(engine.EnumOptions{
		MaxDepth:   maxDepth,
		MinSupport: minSupport,
	}, func(ids []engine.CondID, ext *bitset.Set, size int) bool {
		res.Explored++
		var sum float64
		ext.ForEach(func(i int) { sum += y[i] })
		icv := ic(size, sum/float64(size)-mu)
		sv := icv / p.DL(len(ids), false)
		if sv > res.SI {
			res.SI, res.IC = sv, icv
			res.Intention = lang.Intention(ids)
			res.Extension = ext.Clone()
		}
		if len(ids) >= maxDepth {
			return false
		}
		if optimisticSI(ext, len(ids)) <= res.SI {
			res.Pruned++
			return false
		}
		return true
	})
	return res
}
