// Package search implements the subgroup search strategies of §II-D of
// the paper: a level-wise beam search over conjunctions of conditions
// (the strategy of the Cortana tool the paper builds on — beam width 40,
// search depth 4, top-150 log, optional time budget in the paper's
// experiments), and an exhaustive enumerator used as a test oracle and
// for small datasets.
//
// The search is generic over a Scorer, so both the SI measure and the
// baseline quality measures (package baseline) run on the same engine.
package search

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/pattern"
)

// Scorer evaluates a candidate subgroup extension described by numConds
// conditions. ok=false rejects the candidate (too small, degenerate...).
// Implementations must be safe for concurrent use.
type Scorer interface {
	Score(ext *bitset.Set, numConds int) (si, ic float64, mean mat.Vec, ok bool)
}

// Params configure the beam search. The zero value is completed by
// sensible defaults matching the paper's experimental setup.
type Params struct {
	BeamWidth   int       // candidates kept per level (default 40)
	MaxDepth    int       // maximum number of conditions (default 4)
	TopK        int       // size of the global result log (default 150)
	NumSplits   int       // percentile split points per numeric attr (default 4)
	MinSupport  int       // minimum subgroup size (default 2)
	Deadline    time.Time // zero means no time budget
	Parallelism int       // worker goroutines (default GOMAXPROCS)
}

func (p Params) withDefaults() Params {
	if p.BeamWidth <= 0 {
		p.BeamWidth = 40
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 4
	}
	if p.TopK <= 0 {
		p.TopK = 150
	}
	if p.NumSplits <= 0 {
		p.NumSplits = 4
	}
	if p.MinSupport <= 0 {
		p.MinSupport = 2
	}
	if p.Parallelism <= 0 {
		p.Parallelism = runtime.GOMAXPROCS(0)
	}
	return p
}

// Found is one scored subgroup.
type Found struct {
	Intention pattern.Intention
	Extension *bitset.Set
	Size      int
	SI, IC    float64
	Mean      mat.Vec // subgroup target mean (scorer-dependent)
}

// Results is the outcome of a search, sorted by SI descending.
type Results struct {
	Patterns []Found
	// Evaluated counts scored candidates; Levels the completed depths.
	Evaluated int
	Levels    int
	// TimedOut reports whether the deadline cut the search short.
	TimedOut bool
}

// Top returns the best pattern, or nil if the search found nothing.
func (r *Results) Top() *Found {
	if len(r.Patterns) == 0 {
		return nil
	}
	return &r.Patterns[0]
}

type candidate struct {
	intention pattern.Intention
	parentExt *bitset.Set
	cond      pattern.Condition
	condExt   *bitset.Set
}

type scored struct {
	Found
	key string
}

// Beam runs the level-wise beam search over the dataset's condition
// language, scoring candidates with sc.
func Beam(ds *dataset.Dataset, sc Scorer, p Params) *Results {
	p = p.withDefaults()
	conds := pattern.AllConditions(ds, p.NumSplits)
	condExts := make([]*bitset.Set, len(conds))
	for i, c := range conds {
		condExts[i] = c.Extension(ds)
	}

	res := &Results{}
	visited := map[string]bool{}
	var top []scored // global log, sorted by SI desc
	var beam []scored

	full := bitset.Full(ds.N())
	// Level 1 candidates: every elementary condition.
	cands := make([]candidate, 0, len(conds))
	for i, c := range conds {
		cands = append(cands, candidate{
			intention: pattern.Intention{c},
			parentExt: full,
			cond:      c,
			condExt:   condExts[i],
		})
	}

	for depth := 1; depth <= p.MaxDepth; depth++ {
		if len(cands) == 0 {
			break
		}
		if !p.Deadline.IsZero() && time.Now().After(p.Deadline) {
			res.TimedOut = true
			break
		}
		level := evaluate(cands, sc, p)
		res.Evaluated += len(cands)
		res.Levels = depth

		// Deduplicate by canonical intention and merge into the log.
		var kept []scored
		for _, s := range level {
			if visited[s.key] {
				continue
			}
			visited[s.key] = true
			kept = append(kept, s)
		}
		top = mergeTop(top, kept, p.TopK)

		// New beam: best BeamWidth of this level.
		beam = kept
		if len(beam) > p.BeamWidth {
			beam = beam[:p.BeamWidth]
		}
		if depth == p.MaxDepth {
			break
		}

		// Expand the beam with every condition not already present.
		cands = cands[:0]
		for _, b := range beam {
			for ci, c := range conds {
				if b.Intention.Contains(c) {
					continue
				}
				cands = append(cands, candidate{
					intention: b.Intention.Extend(c),
					parentExt: b.Extension,
					cond:      c,
					condExt:   condExts[ci],
				})
			}
		}
	}

	res.Patterns = make([]Found, len(top))
	for i, s := range top {
		res.Patterns[i] = s.Found
	}
	return res
}

// evaluate scores all candidates in parallel and returns them sorted by
// SI descending with a canonical-key tiebreak (deterministic regardless
// of scheduling).
func evaluate(cands []candidate, sc Scorer, p Params) []scored {
	out := make([]scored, len(cands))
	valid := make([]bool, len(cands))

	var wg sync.WaitGroup
	chunk := (len(cands) + p.Parallelism - 1) / p.Parallelism
	for w := 0; w < p.Parallelism; w++ {
		lo := w * chunk
		if lo >= len(cands) {
			break
		}
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				c := cands[i]
				ext := c.parentExt.And(c.condExt)
				size := ext.Count()
				if size < p.MinSupport {
					continue
				}
				si, ic, mean, ok := sc.Score(ext, len(c.intention))
				if !ok {
					continue
				}
				out[i] = scored{
					Found: Found{
						Intention: c.intention,
						Extension: ext,
						Size:      size,
						SI:        si,
						IC:        ic,
						Mean:      mean,
					},
					key: c.intention.Key(),
				}
				valid[i] = true
			}
		}(lo, hi)
	}
	wg.Wait()

	kept := make([]scored, 0, len(cands))
	for i := range out {
		if valid[i] {
			kept = append(kept, out[i])
		}
	}
	sortScored(kept)
	return kept
}

func sortScored(s []scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].SI != s[j].SI {
			return s[i].SI > s[j].SI
		}
		return s[i].key < s[j].key
	})
}

// mergeTop merges the new level into the global log, keeping the best k.
func mergeTop(top, level []scored, k int) []scored {
	top = append(top, level...)
	sortScored(top)
	if len(top) > k {
		top = top[:k]
	}
	return top
}

// DiverseTopK greedily selects up to k patterns from a result log
// (which is sorted by SI) such that no two selected extensions overlap
// by more than maxJaccard. Iterative mining with model updates is the
// principled way to avoid redundancy; this is the cheap single-search
// alternative when the user wants a portfolio of distinct subgroups
// from one run.
func DiverseTopK(res *Results, k int, maxJaccard float64) []Found {
	if k <= 0 {
		return nil
	}
	var out []Found
	for _, f := range res.Patterns {
		ok := true
		for _, have := range out {
			inter := have.Extension.IntersectCount(f.Extension)
			union := have.Size + f.Size - inter
			if union == 0 || float64(inter)/float64(union) > maxJaccard {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, f)
		if len(out) == k {
			break
		}
	}
	return out
}

// Exhaustive enumerates every conjunction of up to maxDepth distinct
// conditions (each condition used at most once, order-free) and scores
// all of them. Exponential — use only on small datasets and as the
// oracle the beam is tested against.
func Exhaustive(ds *dataset.Dataset, sc Scorer, maxDepth, numSplits, minSupport, topK int) *Results {
	if numSplits <= 0 {
		numSplits = 4
	}
	if minSupport <= 0 {
		minSupport = 2
	}
	if topK <= 0 {
		topK = 150
	}
	conds := pattern.AllConditions(ds, numSplits)
	condExts := make([]*bitset.Set, len(conds))
	for i, c := range conds {
		condExts[i] = c.Extension(ds)
	}
	res := &Results{}
	var top []scored

	var recurse func(start int, intent pattern.Intention, ext *bitset.Set)
	recurse = func(start int, intent pattern.Intention, ext *bitset.Set) {
		for i := start; i < len(conds); i++ {
			next := ext.And(condExts[i])
			size := next.Count()
			if size < minSupport {
				continue
			}
			in := intent.Extend(conds[i])
			si, ic, mean, ok := sc.Score(next, len(in))
			res.Evaluated++
			if ok {
				top = append(top, scored{
					Found: Found{Intention: in, Extension: next, Size: size,
						SI: si, IC: ic, Mean: mean},
					key: in.Key(),
				})
				if len(top) > 4*topK {
					sortScored(top)
					top = top[:topK]
				}
			}
			if len(in) < maxDepth {
				recurse(i+1, in, next)
			}
		}
	}
	recurse(0, nil, bitset.Full(ds.N()))
	sortScored(top)
	if len(top) > topK {
		top = top[:topK]
	}
	res.Patterns = make([]Found, len(top))
	for i, s := range top {
		res.Patterns[i] = s.Found
	}
	res.Levels = maxDepth
	return res
}
