// Package search implements the subgroup search strategies of §II-D of
// the paper: a level-wise beam search over conjunctions of conditions
// (the strategy of the Cortana tool the paper builds on — beam width 40,
// search depth 4, top-150 log, optional time budget in the paper's
// experiments), and an exhaustive enumerator used as a test oracle and
// for small datasets.
//
// The strategies are thin drivers over the shared candidate-evaluation
// pipeline of package engine: cached condition extensions, pooled
// scratch bitsets, integer-hash intention dedup and bounded top-k
// logs. The search is generic over a Scorer, so both the SI measure and
// the baseline quality measures (package baseline) run on the same
// engine.
package search

import (
	"time"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/mat"
	"repro/internal/pattern"
)

// Scorer evaluates a candidate subgroup extension described by numConds
// conditions. ok=false rejects the candidate (too small, degenerate...).
// Implementations must be safe for concurrent use and must not retain
// the extension, which is engine-owned scratch.
type Scorer = engine.Scorer

// Params configure the beam search. The zero value is completed by
// sensible defaults matching the paper's experimental setup.
type Params struct {
	BeamWidth   int       // candidates kept per level (default 40)
	MaxDepth    int       // maximum number of conditions (default 4)
	TopK        int       // size of the global result log (default 150)
	NumSplits   int       // percentile split points per numeric attr (default 4)
	MinSupport  int       // minimum subgroup size (default 2)
	Deadline    time.Time // zero means no time budget
	Parallelism int       // worker goroutines (default GOMAXPROCS)
	// NoPrune disables admissible SI bound pruning. Pruning never changes
	// results (the bounds are admissible and verified so by property
	// tests); the switch exists for ablation benchmarks and as an escape
	// hatch.
	NoPrune bool
}

// withDefaults completes the strategy-level settings. The engine-level
// ones (MinSupport, Parallelism) are deliberately left alone: their
// defaults live in exactly one place, engine.Options/EnumOptions.
func (p Params) withDefaults() Params {
	if p.BeamWidth <= 0 {
		p.BeamWidth = 40
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 4
	}
	if p.TopK <= 0 {
		p.TopK = 150
	}
	if p.NumSplits <= 0 {
		p.NumSplits = 4
	}
	return p
}

// Found is one scored subgroup.
type Found struct {
	Intention pattern.Intention
	Extension *bitset.Set
	Size      int
	SI, IC    float64
	Mean      mat.Vec // subgroup target mean (scorer-dependent)
}

// Results is the outcome of a search, sorted by SI descending.
type Results struct {
	Patterns []Found
	// Evaluated counts scored candidates; Levels the deepest depth at
	// which a candidate was actually evaluated.
	Evaluated int
	Levels    int
	// BoundEvals and Pruned count how many candidates had an admissible
	// SI upper bound computed and how many of those were skipped without
	// a scoring pass. Diagnostics only: which candidates get pruned
	// depends on goroutine scheduling (the shared floor rises at
	// different speeds run to run), so these vary across runs even
	// though Patterns never does.
	BoundEvals int
	Pruned     int
	// TimedOut reports whether the deadline cut the search short.
	TimedOut bool
}

// Top returns the best pattern, or nil if the search found nothing.
func (r *Results) Top() *Found {
	if len(r.Patterns) == 0 {
		return nil
	}
	return &r.Patterns[0]
}

// patterns converts a drained top-k log into the public result form,
// materializing intentions only for the patterns actually reported.
func patterns(lang *engine.Language, log []engine.Scored) []Found {
	out := make([]Found, len(log))
	for i, s := range log {
		out[i] = Found{
			Intention: lang.Intention(s.Ids),
			Extension: s.Ext,
			Size:      s.Size,
			SI:        s.SI, IC: s.IC,
			Mean: s.Mean,
		}
	}
	return out
}

// Beam runs the level-wise beam search over the dataset's condition
// language, scoring candidates with sc.
func Beam(ds *dataset.Dataset, sc Scorer, p Params) *Results {
	p = p.withDefaults()
	lang := engine.LanguageFor(ds, p.NumSplits)
	// The beam consumes a bounded prefix of every level: BeamWidth
	// parents plus whatever can still enter the TopK log. Selecting that
	// prefix instead of sorting the whole level keeps the long tail of
	// thousands of scored-but-doomed candidates out of the sort, and —
	// because the prefix holds the exact top entries in order — the log
	// accepts them first and rejects everything behind them with one
	// heap-root compare each.
	selectTop := p.BeamWidth
	if p.TopK > selectTop {
		selectTop = p.TopK
	}
	ev := engine.NewEvaluator(lang, sc, engine.Options{
		Parallelism:   p.Parallelism,
		MinSupport:    p.MinSupport,
		Deadline:      p.Deadline,
		SelectTop:     selectTop,
		DisableBounds: p.NoPrune,
	})

	res := &Results{}
	top := engine.NewTopK(p.TopK)

	// Level 1 candidates: every elementary condition (distinct by
	// construction, no dedup needed). A nil parent means the full
	// dataset, which lets the evaluator score the level from its
	// precomputed depth-1 sufficient-statistics table with no bitset
	// passes at all. The one columnar batch is reused across all levels:
	// its parent, condition and intention-arena streams only ever grow to
	// the high-water candidate count.
	batch := &engine.Batch{}
	batch.Reset(1)
	batch.StartParent(nil)
	ids1 := make([]engine.CondID, 1)
	for i := range lang.Conds {
		ids1[0] = engine.CondID(i)
		batch.Add(engine.CondID(i), ids1)
	}

	var scratchIDs []engine.CondID
	for depth := 1; depth <= p.MaxDepth; depth++ {
		if batch.Len() == 0 {
			break
		}
		if !p.Deadline.IsZero() && time.Now().After(p.Deadline) {
			res.TimedOut = true
			break
		}
		if depth == p.MaxDepth {
			// The final level's results only feed the top-k log, and the
			// log's acceptance floor never decreases — so a full log's
			// current k-th best SI is an admissible starting floor for the
			// level's bound pruning.
			if f, full := top.Floor(); full {
				ev.SeedFloor(f)
			}
		}
		level, expired := ev.EvaluateBatch(batch)
		if expired {
			res.TimedOut = true
			break
		}
		res.Evaluated += batch.Len()
		res.Levels = depth

		// Batch results are unmaterialized; only the candidates that
		// actually enter the log or seed the next beam pay the
		// extension/mean clones — everything else on the level stays
		// allocation-free.
		for i := range level {
			s := &level[i]
			if top.WouldAccept(s.SI, s.Ids) {
				ev.Materialize(batch, s)
				top.Add(*s)
			}
		}

		// New beam: best BeamWidth of this level (level is sorted).
		beam := level
		if len(beam) > p.BeamWidth {
			beam = beam[:p.BeamWidth]
		}
		if depth == p.MaxDepth {
			break
		}
		for i := range beam {
			ev.Materialize(batch, &beam[i])
		}

		// Expand the beam with every condition not already present;
		// duplicate intentions (reached via different parents) are dropped
		// here, before they cost a scoring pass. The table is per level:
		// intentions at different depths have different lengths and can
		// never collide, so nothing is gained by retaining older levels.
		// Materialize cloned the beam entries' Ids and extensions out of
		// the batch, so resetting it for the next level is safe (the
		// Scored structs themselves live in the evaluator's result
		// buffer, untouched until the next EvaluateBatch) — and grouping
		// refinements by parent is what lets the evaluator amortize one
		// bound preparation per parent run.
		seen := engine.NewDedupFor(len(lang.Conds), p.MaxDepth)
		batch.Reset(depth + 1)
		for i := range beam {
			b := &beam[i]
			batch.StartParent(b.Ext)
			for ci := range lang.Conds {
				id := engine.CondID(ci)
				if engine.ContainsID(b.Ids, id) {
					continue
				}
				scratchIDs = engine.InsertSorted(scratchIDs, b.Ids, id)
				if seen.Seen(scratchIDs) {
					continue
				}
				batch.Add(id, scratchIDs)
			}
		}
	}

	st := ev.Stats()
	res.BoundEvals = int(st.BoundEvals)
	res.Pruned = int(st.Pruned)
	res.Patterns = patterns(lang, top.Sorted())
	return res
}

// Exhaustive enumerates every conjunction of up to maxDepth distinct
// conditions (each condition used at most once, order-free) and scores
// all of them. Exponential — use only on small datasets and as the
// oracle the beam is tested against. Non-positive arguments mean the
// paper defaults (depth 4, 4 splits, support 2, top-150), matching
// Beam's convention.
func Exhaustive(ds *dataset.Dataset, sc Scorer, maxDepth, numSplits, minSupport, topK int) *Results {
	return ExhaustiveP(ds, sc, Params{
		MaxDepth:   maxDepth,
		NumSplits:  numSplits,
		MinSupport: minSupport,
		TopK:       topK,
	})
}

// ExhaustiveP is Exhaustive configured by Params (BeamWidth and
// Parallelism are ignored; the enumeration is sequential and complete).
// A Deadline marks the results TimedOut when the walk is cut short.
func ExhaustiveP(ds *dataset.Dataset, sc Scorer, p Params) *Results {
	p = p.withDefaults()
	lang := engine.LanguageFor(ds, p.NumSplits)
	res := &Results{}
	top := engine.NewTopK(p.TopK)
	// With a worker-capable scorer the whole walk scores through
	// reusable scratch; the worker's mean is cloned only for candidates
	// that actually enter the log.
	score := sc.Score
	usingWorker := false
	if ws, ok := sc.(engine.WorkerScorer); ok {
		score = ws.NewWorker().Score
		usingWorker = true
	}
	res.TimedOut = lang.Enumerate(engine.EnumOptions{
		MaxDepth:   p.MaxDepth,
		MinSupport: p.MinSupport,
		Deadline:   p.Deadline,
	}, func(ids []engine.CondID, ext *bitset.Set, size int) bool {
		res.Evaluated++
		if len(ids) > res.Levels {
			res.Levels = len(ids)
		}
		si, ic, mean, ok := score(ext, len(ids))
		if ok && top.WouldAccept(si, ids) {
			if usingWorker {
				mean = mean.Clone()
			}
			top.Add(engine.Scored{
				Ids:  append([]engine.CondID(nil), ids...),
				Ext:  ext.Clone(),
				Size: size,
				SI:   si, IC: ic,
				Mean: mean,
			})
		}
		return true
	})
	res.Patterns = patterns(lang, top.Sorted())
	return res
}

// DiverseTopK greedily selects up to k patterns from a result log
// (which is sorted by SI) such that no two selected extensions overlap
// by more than maxJaccard. Iterative mining with model updates is the
// principled way to avoid redundancy; this is the cheap single-search
// alternative when the user wants a portfolio of distinct subgroups
// from one run.
func DiverseTopK(res *Results, k int, maxJaccard float64) []Found {
	if k <= 0 {
		return nil
	}
	var out []Found
	for _, f := range res.Patterns {
		ok := true
		for _, have := range out {
			inter := have.Extension.IntersectCount(f.Extension)
			union := have.Size + f.Size - inter
			if union == 0 || float64(inter)/float64(union) > maxJaccard {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, f)
		if len(out) == k {
			break
		}
	}
	return out
}
