package search

import (
	"testing"

	"repro/internal/gen"
)

// BenchmarkBeamSynthetic measures candidate-evaluation throughput of the
// beam search on the paper's §III-A synthetic dataset (620×7×2) with the
// paper's default settings (beam 40, depth 4, top-150). Run with
// -benchmem: allocs/op tracks the per-candidate allocation behaviour of
// the evaluation pipeline, which is the quantity the engine refactor
// targets.
func BenchmarkBeamSynthetic(b *testing.B) {
	ds := gen.Synthetic620(gen.SeedSynthetic).DS
	sc := benchScorerFor(b, ds)
	p := Params{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Beam(ds, sc, p)
		if res.Top() == nil {
			b.Fatal("no result")
		}
	}
}
