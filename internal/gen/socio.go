package gen

import (
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/randx"
)

// Socio is the German socio-economics replica plus its ground truth.
type Socio struct {
	DS *dataset.Dataset
	// Regime[i] ∈ {east, west, city} per district.
	Regime []int
	// Lat/Lon are schematic district coordinates (for map rendering).
	Lat, Lon []float64
}

// District regimes.
const (
	RegimeWest = iota
	RegimeEast
	RegimeCity
)

// SocioEconLike generates a replica of the German socio-economic
// dataset of Boley et al.: 412 districts with 13 age/workforce
// descriptors and 5 targets (the 2009 vote shares of CDU, SPD, FDP,
// GREEN and LEFT). The replica preserves what Figs. 7–8 rely on:
//
//   - eastern districts have markedly fewer children and a much higher
//     LEFT share at the expense of all other parties, so "Children Pop
//     ≤ c" recovers the east (plus a few student cities);
//   - larger cities have more middle-aged inhabitants and an elevated
//     GREEN share at the expense of LEFT;
//   - within the east, CDU and SPD compete for the same voter pool, so
//     the anti-correlation between them is much stronger than in the
//     full data — the planted low-variance spread direction over
//     (CDU, SPD).
func SocioEconLike(seed int64) *Socio {
	src := randx.New(seed)
	const n = 412

	so := &Socio{
		Regime: make([]int, n),
		Lat:    make([]float64, n),
		Lon:    make([]float64, n),
	}
	// ~19% east, ~15% big cities, rest west-rural.
	for i := 0; i < n; i++ {
		switch {
		case i < 78:
			so.Regime[i] = RegimeEast
		case i < 140:
			so.Regime[i] = RegimeCity
		default:
			so.Regime[i] = RegimeWest
		}
	}
	perm := src.Perm(n) // shuffle so regimes are interleaved in row order
	regime := make([]int, n)
	for i, p := range perm {
		regime[i] = so.Regime[p]
	}
	so.Regime = regime

	children := make([]float64, n)
	middle := make([]float64, n)
	elderly := make([]float64, n)
	for i := 0; i < n; i++ {
		switch so.Regime[i] {
		case RegimeEast:
			children[i] = src.Normal(12.5, 0.7)
			middle[i] = src.Normal(24.5, 1.0)
			elderly[i] = src.Normal(24.0, 1.2)
			so.Lat[i] = src.Normal(52.0, 1.2)
			so.Lon[i] = src.Normal(12.8, 1.0)
		case RegimeCity:
			children[i] = src.Normal(14.8, 0.8)
			middle[i] = src.Normal(27.8, 0.9)
			elderly[i] = src.Normal(19.5, 1.2)
			so.Lat[i] = src.Normal(50.5, 1.8)
			so.Lon[i] = src.Normal(9.0, 2.2)
		default:
			children[i] = src.Normal(17.0, 0.8)
			middle[i] = src.Normal(25.6, 0.8)
			elderly[i] = src.Normal(21.0, 1.2)
			so.Lat[i] = src.Normal(50.2, 1.6)
			so.Lon[i] = src.Normal(8.5, 2.0)
		}
	}

	// Workforce descriptors (10 more to reach dx=13).
	agri := make([]float64, n)
	industry := make([]float64, n)
	service := make([]float64, n)
	trade := make([]float64, n)
	construction := make([]float64, n)
	finance := make([]float64, n)
	public := make([]float64, n)
	selfEmp := make([]float64, n)
	unemployment := make([]float64, n)
	commuters := make([]float64, n)
	for i := 0; i < n; i++ {
		city := 0.0
		if so.Regime[i] == RegimeCity {
			city = 1
		}
		east := 0.0
		if so.Regime[i] == RegimeEast {
			east = 1
		}
		agri[i] = clamp(src.Normal(3.5-3.0*city+1.0*east, 0.8), 0, 15)
		industry[i] = clamp(src.Normal(28-6*city, 3), 5, 50)
		service[i] = clamp(src.Normal(52+9*city+2*east, 3), 30, 85)
		trade[i] = clamp(src.Normal(14+2*city, 1.5), 5, 30)
		construction[i] = clamp(src.Normal(6.5+1.5*east-1.0*city, 0.8), 2, 15)
		finance[i] = clamp(src.Normal(3.2+2.5*city-0.8*east, 0.7), 0.5, 12)
		public[i] = clamp(src.Normal(22+2*east, 2), 10, 40)
		selfEmp[i] = clamp(src.Normal(10+1.5*city-1.5*east, 1.2), 4, 20)
		// Deliberately overlapping across regimes, so the crisp east
		// marker is the children share (as in the paper's Fig. 7a), not
		// unemployment.
		unemployment[i] = clamp(src.Normal(7.5+4.0*east+1.5*city, 2.4), 2, 22)
		commuters[i] = clamp(src.Normal(38-12*city, 5), 5, 70)
	}

	// Vote shares. LEFT is strong in the east; GREEN in cities. Within
	// the east, a common center-party pool splits between CDU and SPD
	// with a volatile ratio but a tight total (the planted low-variance
	// direction).
	y := mat.NewDense(n, 5) // CDU, SPD, FDP, GREEN, LEFT
	for i := 0; i < n; i++ {
		var cdu, spd, fdp, green, left float64
		switch so.Regime[i] {
		case RegimeEast:
			left = clamp(src.Normal(27, 4.5), 12, 42)
			fdp = clamp(src.Normal(8.5, 2.2), 3, 16)
			green = clamp(src.Normal(5.5, 2.0), 1, 13)
			// CDU and SPD battle over a shared center-party pool: the pool
			// total is very tight while the split ratio is volatile — the
			// planted low-variance direction over (CDU, SPD).
			pool := clamp(src.Normal(51, 0.7), 40, 62)
			ratio := clamp(src.Normal(0.58, 0.11), 0.25, 0.9)
			cdu = pool * ratio
			spd = pool * (1 - ratio)
		case RegimeCity:
			left = clamp(src.Normal(8, 1.5), 3, 16)
			green = clamp(src.Normal(16, 2.2), 8, 28)
			fdp = clamp(src.Normal(11, 1.5), 5, 20)
			cdu = clamp(src.Normal(28, 3.5), 15, 45)
			spd = clamp(src.Normal(24, 3.5), 12, 40)
		default:
			left = clamp(src.Normal(7, 1.4), 2, 14)
			green = clamp(src.Normal(9.5, 1.8), 4, 20)
			fdp = clamp(src.Normal(14, 2.0), 6, 24)
			cdu = clamp(src.Normal(36, 4.0), 20, 55)
			spd = clamp(src.Normal(22, 4.0), 10, 40)
		}
		y.Set(i, 0, cdu)
		y.Set(i, 1, spd)
		y.Set(i, 2, fdp)
		y.Set(i, 3, green)
		y.Set(i, 4, left)
	}

	so.DS = &dataset.Dataset{
		Name: "socioeconlike",
		Descriptors: []dataset.Column{
			numColumn("children_pop", children),
			numColumn("middleaged_pop", middle),
			numColumn("elderly_pop", elderly),
			numColumn("wf_agriculture", agri),
			numColumn("wf_industry", industry),
			numColumn("wf_service", service),
			numColumn("wf_trade", trade),
			numColumn("wf_construction", construction),
			numColumn("wf_finance", finance),
			numColumn("wf_public", public),
			numColumn("wf_selfemployed", selfEmp),
			numColumn("unemployment", unemployment),
			numColumn("commuter_share", commuters),
		},
		TargetNames: []string{"CDU_2009", "SPD_2009", "FDP_2009", "GREEN_2009", "LEFT_2009"},
		Y:           y,
	}
	return so
}
