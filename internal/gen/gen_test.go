package gen

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestSynthetic620Shape(t *testing.T) {
	syn := Synthetic620(SeedSynthetic)
	ds := syn.DS
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ds.N() != 620 || ds.Dy() != 2 || ds.Dx() != 5 {
		t.Fatalf("dims = %d/%d/%d", ds.N(), ds.Dy(), ds.Dx())
	}
	if len(syn.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(syn.Clusters))
	}
	for c, idx := range syn.Clusters {
		if len(idx) != 40 {
			t.Fatalf("cluster %d size = %d", c, len(idx))
		}
		// The label column must mark exactly the cluster rows.
		col := ds.Descriptors[c]
		for i := 0; i < ds.N(); i++ {
			inCluster := false
			for _, j := range idx {
				if j == i {
					inCluster = true
					break
				}
			}
			if (col.Values[i] == 1) != inCluster {
				t.Fatalf("cluster %d label wrong at row %d", c, i)
			}
		}
		// Cluster centers are at distance ≈2 from the origin.
		var cx, cy float64
		for _, j := range idx {
			cx += ds.Y.At(j, 0)
			cy += ds.Y.At(j, 1)
		}
		cx /= 40
		cy /= 40
		dist := math.Hypot(cx, cy)
		if math.Abs(dist-2) > 0.35 {
			t.Fatalf("cluster %d center distance = %v", c, dist)
		}
	}
}

func TestSynthetic620Deterministic(t *testing.T) {
	a := Synthetic620(7)
	b := Synthetic620(7)
	for i, v := range a.DS.Y.Data {
		if b.DS.Y.Data[i] != v {
			t.Fatal("same seed must give identical data")
		}
	}
}

func TestCorruptDescriptors(t *testing.T) {
	syn := Synthetic620(1)
	noisy := CorruptDescriptors(syn.DS, 0.5, 2)
	if noisy.Y != syn.DS.Y {
		t.Fatal("targets must be shared, not copied")
	}
	flipped := 0
	total := 0
	for ci := range syn.DS.Descriptors {
		for i, v := range syn.DS.Descriptors[ci].Values {
			total++
			if noisy.Descriptors[ci].Values[i] != v {
				flipped++
			}
		}
	}
	rate := float64(flipped) / float64(total)
	if math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("flip rate = %v, want ≈0.5", rate)
	}
	// p=0 must be a no-op.
	clean := CorruptDescriptors(syn.DS, 0, 3)
	for ci := range syn.DS.Descriptors {
		for i, v := range syn.DS.Descriptors[ci].Values {
			if clean.Descriptors[ci].Values[i] != v {
				t.Fatal("p=0 flipped a bit")
			}
		}
	}
}

func TestCrimeLikeStructure(t *testing.T) {
	cr := CrimeLike(SeedCrime)
	ds := cr.DS
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ds.N() != 1994 || ds.Dx() != 122 || ds.Dy() != 1 {
		t.Fatalf("dims = %d/%d/%d", ds.N(), ds.Dx(), ds.Dy())
	}
	// All descriptors and the target live in [0,1].
	for _, c := range ds.Descriptors {
		for _, v := range c.Values {
			if v < 0 || v > 1 {
				t.Fatalf("descriptor %q value %v outside [0,1]", c.Name, v)
			}
		}
	}
	// The planted subgroup: driver ≥ 0.39 covers ≈20.5% with elevated
	// crime (≈0.53 vs ≈0.24 overall).
	driver := ds.Descriptors[cr.DriverAttr]
	var inSum, outSum float64
	var inN, outN int
	for i := 0; i < ds.N(); i++ {
		if driver.Values[i] >= cr.Threshold {
			inSum += ds.Y.At(i, 0)
			inN++
		} else {
			outSum += ds.Y.At(i, 0)
			outN++
		}
	}
	cover := float64(inN) / float64(ds.N())
	if math.Abs(cover-0.205) > 0.02 {
		t.Fatalf("planted coverage = %v, want ≈0.205", cover)
	}
	inMean := inSum / float64(inN)
	overall := (inSum + outSum) / float64(ds.N())
	if inMean < overall+0.2 {
		t.Fatalf("subgroup mean %v not well above overall %v", inMean, overall)
	}
}

func TestMammalsLikeStructure(t *testing.T) {
	ma := MammalsLike(SeedMammals)
	ds := ma.DS
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ds.N() != 2220 || ds.Dx() != 67 || ds.Dy() != 124 {
		t.Fatalf("dims = %d/%d/%d", ds.N(), ds.Dx(), ds.Dy())
	}
	// Targets are binary presence/absence.
	for _, v := range ds.Y.Data {
		if v != 0 && v != 1 {
			t.Fatalf("presence value %v not binary", v)
		}
	}
	// Northern species must prefer cold cells: presence rate in the
	// coldest third should exceed the warmest third.
	temp := ds.Descriptor("mean_temp_mar")
	if temp == nil {
		t.Fatal("missing mean_temp_mar")
	}
	lo := stats.Percentile(temp.Values, 33)
	hi := stats.Percentile(temp.Values, 67)
	for s := 0; s < 5; s++ { // a few northern species (archetype 0 = s%5==0)
		sp := s * 5
		if ma.Archetype[sp] != ArchNorthern {
			t.Fatalf("species %d archetype = %d", sp, ma.Archetype[sp])
		}
		var coldPresent, coldN, warmPresent, warmN float64
		for i := 0; i < ds.N(); i++ {
			switch {
			case temp.Values[i] <= lo:
				coldPresent += ds.Y.At(i, sp)
				coldN++
			case temp.Values[i] >= hi:
				warmPresent += ds.Y.At(i, sp)
				warmN++
			}
		}
		if coldPresent/coldN <= warmPresent/warmN {
			t.Fatalf("northern species %d not cold-preferring: %v vs %v",
				sp, coldPresent/coldN, warmPresent/warmN)
		}
	}
}

func TestSocioEconLikeStructure(t *testing.T) {
	so := SocioEconLike(SeedSocio)
	ds := so.DS
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ds.N() != 412 || ds.Dx() != 13 || ds.Dy() != 5 {
		t.Fatalf("dims = %d/%d/%d", ds.N(), ds.Dx(), ds.Dy())
	}
	leftIdx := ds.TargetIndex("LEFT_2009")
	greenIdx := ds.TargetIndex("GREEN_2009")
	children := ds.Descriptor("children_pop")
	var eastLeft, westLeft, cityGreen, otherGreen stats.Welford
	var eastChildren, westChildren stats.Welford
	for i := 0; i < ds.N(); i++ {
		switch so.Regime[i] {
		case RegimeEast:
			eastLeft.Add(ds.Y.At(i, leftIdx))
			eastChildren.Add(children.Values[i])
			otherGreen.Add(ds.Y.At(i, greenIdx))
		case RegimeCity:
			cityGreen.Add(ds.Y.At(i, greenIdx))
			westLeft.Add(ds.Y.At(i, leftIdx))
		default:
			westLeft.Add(ds.Y.At(i, leftIdx))
			westChildren.Add(children.Values[i])
			otherGreen.Add(ds.Y.At(i, greenIdx))
		}
	}
	if eastLeft.Mean() < westLeft.Mean()+10 {
		t.Fatalf("east LEFT %v not well above west %v", eastLeft.Mean(), westLeft.Mean())
	}
	if eastChildren.Mean() > westChildren.Mean()-2 {
		t.Fatalf("east children %v not well below west %v",
			eastChildren.Mean(), westChildren.Mean())
	}
	if cityGreen.Mean() < otherGreen.Mean()+4 {
		t.Fatalf("city GREEN %v not well above elsewhere %v",
			cityGreen.Mean(), otherGreen.Mean())
	}
	// Planted CDU↔SPD anti-correlation in the east must be stronger than
	// in the west.
	corr := func(reg int) float64 {
		var sx, sy, sxx, syy, sxy, cnt float64
		for i := 0; i < ds.N(); i++ {
			if so.Regime[i] != reg {
				continue
			}
			x, y := ds.Y.At(i, 0), ds.Y.At(i, 1)
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
			cnt++
		}
		cov := sxy/cnt - sx/cnt*sy/cnt
		vx := sxx/cnt - sx/cnt*sx/cnt
		vy := syy/cnt - sy/cnt*sy/cnt
		return cov / math.Sqrt(vx*vy)
	}
	east, west := corr(RegimeEast), corr(RegimeWest)
	if east > -0.8 {
		t.Fatalf("east CDU/SPD correlation = %v, want strongly negative", east)
	}
	if east >= west {
		t.Fatalf("east correlation %v not below west %v", east, west)
	}
}

func TestWaterQualityLikeStructure(t *testing.T) {
	w := WaterQualityLike(SeedWater)
	ds := w.DS
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ds.N() != 1060 || ds.Dx() != 14 || ds.Dy() != 16 {
		t.Fatalf("dims = %d/%d/%d", ds.N(), ds.Dx(), ds.Dy())
	}
	// Ordinal levels are only 0/1/3/5.
	for _, c := range ds.Descriptors {
		for _, v := range c.Values {
			if v != 0 && v != 1 && v != 3 && v != 5 {
				t.Fatalf("bioindicator %q has level %v", c.Name, v)
			}
		}
	}
	// The planted rule (sensitive ≤ 0 AND tolerant ≥ 3) selects a
	// polluted tail of plausible size with elevated BOD mean & variance.
	sens := ds.Descriptors[w.SensitiveAttr]
	tol := ds.Descriptors[w.TolerantAttr]
	bodIdx := ds.TargetIndex("bod")
	var inBod, outBod stats.Welford
	for i := 0; i < ds.N(); i++ {
		if sens.Values[i] <= 0 && tol.Values[i] >= 3 {
			inBod.Add(ds.Y.At(i, bodIdx))
		} else {
			outBod.Add(ds.Y.At(i, bodIdx))
		}
	}
	if inBod.N() < 40 || inBod.N() > 300 {
		t.Fatalf("planted rule covers %d records", inBod.N())
	}
	if inBod.Mean() < outBod.Mean()+2 {
		t.Fatalf("subgroup BOD mean %v not above rest %v", inBod.Mean(), outBod.Mean())
	}
	if inBod.Var() < 1.5*outBod.Var() {
		t.Fatalf("subgroup BOD variance %v not inflated vs %v", inBod.Var(), outBod.Var())
	}
}

func TestAllReplicasRoundTripCSV(t *testing.T) {
	dss := []*dataset.Dataset{
		Synthetic620(1).DS,
		SocioEconLike(2).DS,
		WaterQualityLike(3).DS,
	}
	for _, ds := range dss {
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: WriteCSV: %v", ds.Name, err)
		}
		got, err := dataset.ReadCSV(&buf)
		if err != nil {
			t.Fatalf("%s: ReadCSV: %v", ds.Name, err)
		}
		if got.N() != ds.N() || got.Dx() != ds.Dx() || got.Dy() != ds.Dy() {
			t.Fatalf("%s: round trip changed dims", ds.Name)
		}
	}
}
