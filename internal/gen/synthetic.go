package gen

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/randx"
)

// Synthetic is the §III-A dataset plus the ground truth needed by the
// Fig. 2 / Fig. 3 / Table I experiments.
type Synthetic struct {
	DS *dataset.Dataset
	// Clusters[k] lists the row indices of embedded cluster k (size 40).
	Clusters [][]int
	// Directions[k] is the main (high-variance) axis of cluster k.
	Directions []mat.Vec
	// Centers[k] is the displaced mean of cluster k (distance 2 from 0).
	Centers []mat.Vec
}

// Synthetic620 generates the synthetic dataset exactly as §III-A
// describes: 620 points with two real-valued targets and five binary
// descriptors; 500 background points from N(0, I); three embedded
// clusters of 40 points each at distance 2 from the mean, each with a
// strongly anisotropic covariance (the variance along the main
// eigenvector is much larger than across it). Descriptors 3–5 (named
// a3..a5) carry the true cluster labels; a6 and a7 are Bernoulli(0.5)
// noise.
func Synthetic620(seed int64) *Synthetic {
	src := randx.New(seed)
	const (
		nBackground = 500
		nCluster    = 40
		k           = 3
		n           = nBackground + k*nCluster
	)
	y := mat.NewDense(n, 2)

	// Cluster geometry: centers at distance 2, angles spread around the
	// circle; main axis tangential (perpendicular to the displacement) so
	// the interesting spread direction differs from the displacement.
	angles := []float64{math.Pi / 2, math.Pi * 7 / 6, math.Pi * 11 / 6}
	mainSD := []float64{0.70, 0.55, 0.40} // along the main axis
	crossSD := []float64{0.10, 0.10, 0.10}

	syn := &Synthetic{}
	row := 0
	for i := 0; i < nBackground; i++ {
		y.Set(row, 0, src.NormFloat64())
		y.Set(row, 1, src.NormFloat64())
		row++
	}
	for c := 0; c < k; c++ {
		center := mat.Vec{2 * math.Cos(angles[c]), 2 * math.Sin(angles[c])}
		main := mat.Vec{-math.Sin(angles[c]), math.Cos(angles[c])} // tangential
		crossDir := mat.Vec{math.Cos(angles[c]), math.Sin(angles[c])}
		var idx []int
		for i := 0; i < nCluster; i++ {
			a := src.Normal(0, mainSD[c])
			b := src.Normal(0, crossSD[c])
			y.Set(row, 0, center[0]+a*main[0]+b*crossDir[0])
			y.Set(row, 1, center[1]+a*main[1]+b*crossDir[1])
			idx = append(idx, row)
			row++
		}
		syn.Clusters = append(syn.Clusters, idx)
		syn.Directions = append(syn.Directions, main)
		syn.Centers = append(syn.Centers, center)
	}

	// Descriptors: a3..a5 true labels, a6..a7 coin flips.
	cols := make([]dataset.Column, 0, 5)
	for c := 0; c < k; c++ {
		v := make([]float64, n)
		for _, i := range syn.Clusters[c] {
			v[i] = 1
		}
		cols = append(cols, binaryColumn(attrName(c+3), v))
	}
	for a := 6; a <= 7; a++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(src.Bernoulli(0.5))
		}
		cols = append(cols, binaryColumn(attrName(a), v))
	}

	syn.DS = &dataset.Dataset{
		Name:        "synthetic620",
		Descriptors: cols,
		TargetNames: []string{"attr1", "attr2"},
		Y:           y,
	}
	return syn
}

func attrName(i int) string { return "a" + string(rune('0'+i)) }

// CorruptDescriptors returns a copy of the dataset whose binary
// descriptor values are flipped independently with probability p — the
// noise-robustness protocol of Fig. 3.
func CorruptDescriptors(ds *dataset.Dataset, p float64, seed int64) *dataset.Dataset {
	src := randx.New(seed)
	out := &dataset.Dataset{
		Name:        ds.Name + "-noisy",
		TargetNames: ds.TargetNames,
		Y:           ds.Y, // targets are untouched
	}
	out.Descriptors = make([]dataset.Column, len(ds.Descriptors))
	for ci := range ds.Descriptors {
		c := ds.Descriptors[ci]
		vals := append([]float64(nil), c.Values...)
		if c.Kind == dataset.Binary {
			for i := range vals {
				if src.Float64() < p {
					vals[i] = 1 - vals[i]
				}
			}
		}
		out.Descriptors[ci] = dataset.Column{
			Name: c.Name, Kind: c.Kind, Values: vals, Levels: c.Levels,
		}
	}
	return out
}
