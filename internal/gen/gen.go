// Package gen builds the five datasets of the paper's evaluation
// (§III). The synthetic dataset follows the published recipe exactly;
// the four real-world datasets (UCI Communities & Crime, the European
// mammals atlas, the German socio-economics data and the Slovenian
// water quality data) are third-party downloads unavailable offline, so
// each is replaced by a seeded synthetic replica that matches the
// paper's dimensions and the statistical structure its experiments rely
// on. DESIGN.md §3 documents each substitution.
package gen

import (
	"math"

	"repro/internal/dataset"
)

// Default seeds so that examples, tests, benches and EXPERIMENTS.md all
// see the same data.
const (
	SeedSynthetic = 620
	SeedCrime     = 1994
	SeedMammals   = 2220
	SeedSocio     = 412
	SeedWater     = 1060
)

// clamp limits x to [lo, hi].
func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// sigmoid is the logistic function.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// binaryColumn builds a Binary column with levels {"0","1"}.
func binaryColumn(name string, values []float64) dataset.Column {
	return dataset.Column{
		Name: name, Kind: dataset.Binary, Values: values,
		Levels: []string{"0", "1"},
	}
}

// numColumn builds a Numeric column.
func numColumn(name string, values []float64) dataset.Column {
	return dataset.Column{Name: name, Kind: dataset.Numeric, Values: values}
}
