package gen

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/randx"
)

// Mammals is the European mammals atlas replica plus its ground truth.
type Mammals struct {
	DS *dataset.Dataset
	// Lat/Lon give the grid coordinates of every cell (for map-style
	// rendering of pattern extensions).
	Lat, Lon []float64
	// Archetype[s] is the niche class of species s: 0=northern,
	// 1=southern, 2=wet, 3=dry, 4=cosmopolitan.
	Archetype []int
}

// Species archetypes.
const (
	ArchNorthern = iota
	ArchSouthern
	ArchWet
	ArchDry
	ArchCosmopolitan
	numArchetypes
)

// MammalsLike generates a replica of the European mammals atlas joined
// with WorldClim climate indicators: 2220 grid cells (60×37 lattice over
// Europe-like coordinates), 67 numeric climate descriptors and 124
// binary species-presence targets. The replica preserves what
// Figs. 4–6 and the Table II "Ma" column rely on: smooth, geographically
// coherent climate fields (so one or two climate conditions select a
// contiguous region), and blocks of species with correlated presence
// driven by shared niches (so a subgroup shifts many target attributes
// at once, and the background model must account for the correlation).
func MammalsLike(seed int64) *Mammals {
	src := randx.New(seed)
	const (
		rows = 60 // south→north
		cols = 37 // west→east
		n    = rows * cols
		dy   = 124
	)

	ma := &Mammals{
		Lat: make([]float64, n),
		Lon: make([]float64, n),
	}
	// Latent climate fields per cell.
	temp := make([]float64, n)  // annual mean temperature, °C
	seaso := make([]float64, n) // continentality (east → seasonal)
	rain := make([]float64, n)  // annual rainfall proxy, mm/month
	summerDry := make([]float64, n)
	idx := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			lat := 35 + 36*float64(r)/float64(rows-1)  // 35..71 °N
			lon := -10 + 40*float64(c)/float64(cols-1) // -10..30 °E
			ma.Lat[idx] = lat
			ma.Lon[idx] = lon
			temp[idx] = 22 - 0.55*(lat-35) + src.Normal(0, 0.8)
			seaso[idx] = 0.5 + 0.9*(lon+10)/40 + src.Normal(0, 0.08)
			rain[idx] = 75 - 0.9*(lon+10) + 0.35*(lat-35) + src.Normal(0, 4)
			// Mediterranean summers: dry in the south-west.
			summerDry[idx] = clamp(1.6-0.05*(lat-35)-0.012*(lon+10), 0, 2) // 0..2, high = dry summer
			idx++
		}
	}

	// 67 climate indicators derived from the latent fields, echoing the
	// WorldClim naming the paper quotes in Fig. 6.
	descr := make([]dataset.Column, 0, 67)
	addField := func(name string, f func(i int) float64) {
		v := make([]float64, n)
		for i := range v {
			v[i] = f(i)
		}
		descr = append(descr, numColumn(name, v))
	}
	months := []string{"jan", "feb", "mar", "apr", "may", "jun",
		"jul", "aug", "sep", "oct", "nov", "dec"}
	seasonal := []float64{-1, -0.9, -0.55, 0, 0.5, 0.9, 1, 0.95, 0.5, 0, -0.5, -0.9}
	for mi, m := range months {
		mi := mi
		addField("mean_temp_"+m, func(i int) float64 {
			return temp[i] + 9*seasonal[mi]*seaso[i] + src.Normal(0, 0.4)
		})
	}
	rainShape := []float64{1.1, 1.0, 0.95, 0.9, 0.85, 0.7, 0.6, 0.55, 0.8, 1.0, 1.15, 1.2}
	for mi, m := range months {
		mi := mi
		addField("avg_rain_"+m, func(i int) float64 {
			dry := 1.0
			if mi >= 5 && mi <= 8 { // summer months dry out in the south
				dry = clamp(1-0.42*summerDry[i], 0.05, 1)
			}
			return clamp(rain[i]*rainShape[mi]*dry+src.Normal(0, 3), 0, 400)
		})
	}
	// Aggregate bio-climatic indicators (temperature/rainfall of wettest,
	// driest, warmest, coldest quarters, ranges, isothermality, ...).
	quarters := []struct {
		name string
		m    [3]int
	}{
		{"q1", [3]int{0, 1, 2}}, {"q2", [3]int{3, 4, 5}},
		{"q3", [3]int{6, 7, 8}}, {"q4", [3]int{9, 10, 11}},
	}
	meanTempOf := func(i int, q [3]int) float64 {
		var s float64
		for _, mi := range q {
			s += temp[i] + 9*seasonal[mi]*seaso[i]
		}
		return s / 3
	}
	meanRainOf := func(i int, q [3]int) float64 {
		var s float64
		for _, mi := range q {
			dry := 1.0
			if mi >= 5 && mi <= 8 {
				dry = clamp(1-0.42*summerDry[i], 0.05, 1)
			}
			s += rain[i] * rainShape[mi] * dry
		}
		return s / 3
	}
	for _, q := range quarters {
		q := q
		addField("mean_temp_"+q.name, func(i int) float64 {
			return meanTempOf(i, q.m) + src.Normal(0, 0.3)
		})
		addField("avg_rain_"+q.name, func(i int) float64 {
			return clamp(meanRainOf(i, q.m)+src.Normal(0, 2.5), 0, 400)
		})
	}
	addField("mean_temp_wettest_q", func(i int) float64 {
		best, bestRain := 0, -1.0
		for qi, q := range quarters {
			if r := meanRainOf(i, q.m); r > bestRain {
				bestRain, best = r, qi
			}
		}
		return meanTempOf(i, quarters[best].m) + src.Normal(0, 0.3)
	})
	addField("mean_temp_driest_q", func(i int) float64 {
		best, bestRain := 0, 1e18
		for qi, q := range quarters {
			if r := meanRainOf(i, q.m); r < bestRain {
				bestRain, best = r, qi
			}
		}
		return meanTempOf(i, quarters[best].m) + src.Normal(0, 0.3)
	})
	addField("temp_annual_range", func(i int) float64 {
		return 18*seaso[i] + src.Normal(0, 0.5)
	})
	addField("isothermality", func(i int) float64 {
		return clamp(0.5-0.15*seaso[i]+src.Normal(0, 0.03), 0, 1)
	})
	addField("rain_seasonality", func(i int) float64 {
		return clamp(0.2+0.3*summerDry[i]+src.Normal(0, 0.05), 0, 2)
	})
	// Elevation-flavoured extras to reach 67 descriptors.
	for len(descr) < 67 {
		k := len(descr)
		addField(fmt.Sprintf("climate_extra_%02d", k), func(i int) float64 {
			return 0.4*temp[i] - 0.2*rain[i]/10 + float64(k%5)*seaso[i] + src.Normal(0, 1)
		})
	}

	// 124 species in correlated niche blocks.
	ma.Archetype = make([]int, dy)
	y := mat.NewDense(n, dy)
	targetNames := make([]string, dy)
	for s := 0; s < dy; s++ {
		arch := s % numArchetypes
		ma.Archetype[s] = arch
		targetNames[s] = speciesName(arch, s)
		// Niche response: logit of presence as a function of the latent
		// fields, with per-species jitter.
		jt := src.Normal(0, 0.3)
		jr := src.Normal(0, 0.3)
		var bias, bTemp, bRain float64
		switch arch {
		case ArchNorthern:
			bias, bTemp, bRain = 2.2, -0.55+0.1*jt, 0.01*jr
		case ArchSouthern:
			bias, bTemp, bRain = -5.5, 0.55+0.1*jt, 0.01*jr
		case ArchWet:
			bias, bTemp, bRain = -4.0, 0.05*jt, 0.08+0.015*jr
		case ArchDry:
			bias, bTemp, bRain = 1.5, 0.05*jt, -0.07+0.015*jr
		default: // cosmopolitan: widespread with mild preferences
			bias, bTemp, bRain = 1.2, 0.08*jt, 0.01*jr
		}
		for i := 0; i < n; i++ {
			logit := bias + bTemp*temp[i] + bRain*rain[i] + src.Normal(0, 0.6)
			y.Set(i, s, float64(src.Bernoulli(sigmoid(logit))))
		}
	}

	ma.DS = &dataset.Dataset{
		Name:        "mammalslike",
		Descriptors: descr,
		TargetNames: targetNames,
		Y:           y,
	}
	return ma
}

func speciesName(arch, s int) string {
	prefix := []string{"boreal", "meridional", "riparian", "steppe", "common"}[arch]
	return fmt.Sprintf("%s_species_%03d", prefix, s)
}
