package gen

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/randx"
	"repro/internal/stats"
)

// Crime is the Communities & Crime replica plus its ground truth.
type Crime struct {
	DS *dataset.Dataset
	// DriverAttr is the index of the "PctIlleg"-like descriptor whose
	// threshold defines the planted top pattern.
	DriverAttr int
	// Threshold is the planted condition value (≈0.39, covering ≈20.5%).
	Threshold float64
}

// CrimeLike generates a replica of the UCI Communities & Crime data
// (n=1994 districts, 122 numeric descriptors in [0,1], one target:
// the violent crime rate). The replica preserves what Fig. 1 and the
// Table II "Cr" column rely on: a right-skewed single real target whose
// distribution shifts strongly (mean ≈0.53 vs ≈0.24 overall) inside a
// one-condition subgroup ("PctIlleg ≥ 0.39") covering ≈20.5% of rows,
// plus a bed of correlated demographic attributes.
func CrimeLike(seed int64) *Crime {
	src := randx.New(seed)
	const (
		n  = 1994
		dx = 122
	)

	// Latent socioeconomic deprivation factor per district.
	f := make([]float64, n)
	for i := range f {
		f[i] = src.Beta(2, 3)
	}

	// Driver attribute: unmarried-mothers rate, increasing in f.
	driver := make([]float64, n)
	for i := range driver {
		driver[i] = clamp(0.8*f[i]+0.15*src.NormFloat64()+0.12, 0, 1)
	}
	// Rescale monotonically so the 79.5th percentile lands exactly at the
	// paper's condition value 0.39 (coverage 20.5%).
	p795 := stats.Percentile(driver, 79.5)
	for i := range driver {
		driver[i] = clamp(driver[i]*0.39/p795, 0, 1)
	}

	// Crime rate: threshold response to the driver, plus a mild direct
	// dependence on deprivation and right-skewed noise.
	y := mat.NewDense(n, 1)
	for i := 0; i < n; i++ {
		base := 0.08 + 0.18*f[i]
		lift := 0.40 * sigmoid((driver[i]-0.39)*22)
		noise := 0.12 * (src.Beta(2, 5) - 2.0/7)
		y.Set(i, 0, clamp(base+lift+noise, 0, 1))
	}

	cols := make([]dataset.Column, 0, dx)
	cols = append(cols, numColumn("PctIlleg", driver))
	// Remaining 121 demographic attributes: correlated with deprivation
	// to varying degrees (half positively, half negatively), in [0,1].
	for j := 1; j < dx; j++ {
		rho := 0.75 * src.Float64()
		sign := 1.0
		if j%2 == 0 {
			sign = -1
		}
		v := make([]float64, n)
		for i := range v {
			center := 0.5 + sign*rho*(f[i]-0.4)
			v[i] = clamp(center+0.18*src.NormFloat64(), 0, 1)
		}
		cols = append(cols, numColumn(fmt.Sprintf("demo%03d", j), v))
	}

	return &Crime{
		DS: &dataset.Dataset{
			Name:        "crimelike",
			Descriptors: cols,
			TargetNames: []string{"ViolentCrimesPerPop"},
			Y:           y,
		},
		DriverAttr: 0,
		Threshold:  0.39,
	}
}
