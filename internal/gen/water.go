package gen

import (
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/randx"
)

// Water is the Slovenian river water quality replica plus ground truth.
type Water struct {
	DS *dataset.Dataset
	// Pollution[i] is the latent pollution level in [0,1] of record i.
	Pollution []float64
	// SensitiveAttr / TolerantAttr index the two bioindicator descriptors
	// whose conjunction defines the planted top pattern
	// (sensitive ≤ 0 AND tolerant ≥ 3, the paper's Gammarus/Tubifex rule).
	SensitiveAttr, TolerantAttr int
}

// WaterQualityLike generates a replica of the River Water Quality
// dataset: 1060 records with 14 ordinal bioindicator descriptors (7
// plant taxa, 7 animal taxa; density levels 0/1/3/5) and 16 physical/
// chemical target parameters. The replica preserves what Figs. 9–10
// rely on: a latent pollution gradient under which sensitive taxa
// vanish and tolerant taxa become abundant (so a two-condition
// bioindicator rule selects the polluted tail, ≈90 records), oxygen-
// demand chemistry (BOD, KMnO₄, K₂Cr₂O₇, chloride, conductivity) whose
// mean AND variance increase with pollution — the latter produces the
// paper's larger-than-expected-variance spread direction with high
// weights on BOD and KMnO₄.
func WaterQualityLike(seed int64) *Water {
	src := randx.New(seed)
	const n = 1060

	w := &Water{Pollution: make([]float64, n)}
	for i := range w.Pollution {
		w.Pollution[i] = src.Beta(1.6, 3.2) // most rivers clean-ish
	}

	// Bioindicators: ordinal density levels {0,1,3,5}.
	quantize := func(x float64) float64 {
		switch {
		case x < 0.8:
			return 0
		case x < 2.2:
			return 1
		case x < 4.2:
			return 3
		default:
			return 5
		}
	}
	taxaNames := []string{
		"Amphipoda_Gammarus_fossarum", // sensitive (the paper's rule)
		"Oligochaeta_Tubifex",         // tolerant (the paper's rule)
		"Plecoptera_Leuctra", "Ephemeroptera_Baetis",
		"Trichoptera_Hydropsyche", "Diptera_Chironomus",
		"Isopoda_Asellus",
		"Alga_Cladophora", "Alga_Diatoma", "Alga_Melosira",
		"Moss_Fontinalis", "Plant_Potamogeton", "Plant_Ceratophyllum",
		"Alga_Oscillatoria",
	}
	// Response of each taxon to pollution: negative = sensitive.
	responses := []float64{
		-5.2, // Gammarus: disappears when polluted
		+5.6, // Tubifex: thrives when polluted
		-4.5, -3.2, -2.0, +4.2, +2.8,
		+3.0, -1.5, +1.2, -3.6, -0.8, +1.8, +3.4,
	}
	descr := make([]dataset.Column, len(taxaNames))
	for t, name := range taxaNames {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			base := 2.5 + responses[t]*(w.Pollution[i]-0.45)
			vals[i] = quantize(base + src.Normal(0, 0.8))
		}
		descr[t] = dataset.Column{
			Name: name, Kind: dataset.Ordinal, Values: vals,
		}
	}
	w.SensitiveAttr = 0
	w.TolerantAttr = 1

	// 16 chemistry targets, with pollution-dependent mean and — for the
	// oxygen-demand block — pollution-dependent variance.
	targetNames := []string{
		"std_temp", "std_pH", "conduct", "o2", "o2sat", "co2",
		"hardness", "no2", "no3", "nh4", "po4", "cl", "sio2",
		"kmno4", "k2cr2o7", "bod",
	}
	y := mat.NewDense(n, len(targetNames))
	for i := 0; i < n; i++ {
		p := w.Pollution[i]
		// Heteroscedastic scale for the COD/BOD block: quadratic in
		// pollution so the variance inflation in the polluted tail
		// dominates the mean-gradient variance of the full data. The
		// organic-load shock is SHARED between BOD and KMnO₄ (both
		// measure oxidizable organic matter), so the inflated direction
		// weights both — the paper's Fig. 9c profile.
		het := 0.3 + 6*p*p
		organicShock := src.Normal(0, het)
		vals := []float64{
			src.Normal(12+2*p, 2.2),                                   // std_temp: weak relation
			clamp(src.Normal(8.0-0.5*p, 0.25), 6, 9),                  // std_pH
			src.Normal(280+260*p, 40+80*p),                            // conduct
			clamp(src.Normal(10.5-4.5*p, 0.9), 1, 14),                 // o2
			clamp(src.Normal(98-30*p, 7), 20, 130),                    // o2sat
			clamp(src.Normal(2.5+6*p, 1.0+1.5*p), 0, 25),              // co2
			src.Normal(14+6*p, 2.5),                                   // hardness
			clamp(src.Normal(0.02+0.3*p, 0.02+0.08*p), 0, 2),          // no2
			clamp(src.Normal(1.5+6*p, 0.5+1.0*p), 0, 20),              // no3
			clamp(src.Normal(0.05+1.8*p, 0.04+0.5*p), 0, 10),          // nh4
			clamp(src.Normal(0.05+1.1*p, 0.03+0.3*p), 0, 6),           // po4
			clamp(src.Normal(5+30*p, 1.5+6*p), 0, 120),                // cl
			src.Normal(4+2*p, 1.0),                                    // sio2
			clamp(2.2+9*p+0.9*organicShock+src.Normal(0, 0.3), 0, 40), // kmno4
			clamp(src.Normal(6+22*p, 1.2*het), 0, 120),                // k2cr2o7
			clamp(1.8+8.5*p+organicShock+src.Normal(0, 0.3), 0, 40),   // bod
		}
		copy(y.Row(i), vals)
	}

	w.DS = &dataset.Dataset{
		Name:        "waterqualitylike",
		Descriptors: descr,
		TargetNames: targetNames,
		Y:           y,
	}
	return w
}
