package background

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/bitset"
	"repro/internal/mat"
)

// The JSON wire format for a saved model. Groups carry the current
// parameters; constraints are replayed on load so a restored model can
// keep committing patterns with full coordinate-descent consistency.

// ErrCorrupt tags model payloads that cannot be decoded or fail
// structural validation (truncated JSON, inconsistent dimensions,
// non-SPD covariances, groups not partitioning the points). Callers
// restoring persisted state match it with errors.Is to distinguish
// a damaged file from an operational failure.
var ErrCorrupt = errors.New("background: corrupt model payload")

// corrupt wraps err (and its formatted context) with ErrCorrupt.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// modelFormat is the current model wire-format version; 0 (absent)
// marks files written before versioning, which load identically.
const modelFormat = 1

type modelJSON struct {
	Format    int     `json:"format,omitempty"`
	N         int     `json:"n"`
	D         int     `json:"d"`
	Tol       float64 `json:"tol"`
	MaxSweeps int     `json:"maxSweeps"`
	// ModelVersion stamps which published version the snapshot
	// serialized, so a client holding mine results annotated with
	// model versions can tell which of them this file reflects.
	// Absent (0) in files written before versioning; restore derives
	// the stamp from the constraint count then.
	ModelVersion uint64           `json:"modelVersion,omitempty"`
	Groups       []groupJSON      `json:"groups"`
	Constraints  []constraintJSON `json:"constraints"`
}

type groupJSON struct {
	Members []int     `json:"members"`
	Mu      []float64 `json:"mu"`
	Sigma   []float64 `json:"sigma"` // row-major d×d
}

type constraintJSON struct {
	Kind   string    `json:"kind"` // "location" or "spread"
	Ext    []int     `json:"ext"`
	Target []float64 `json:"target,omitempty"` // location: ŷ_I
	W      []float64 `json:"w,omitempty"`      // spread
	Center []float64 `json:"center,omitempty"` // spread
	Value  float64   `json:"value,omitempty"`  // spread: v̂
}

// SaveJSON serializes the full model state — group parameters and the
// committed constraint list, stamped with the current version — so an
// interactive session can be persisted and resumed. It reads the live
// state and therefore belongs to the writer; concurrent contexts
// serialize a published snapshot via ModelVersion.SaveJSON instead.
func (m *Model) SaveJSON(w io.Writer) error {
	return saveJSON(w, m.version, m.n, m.d, m.Tol, m.MaxSweeps, m.groups, m.cons)
}

// SaveJSON serializes this published version. Safe for concurrent
// callers: everything reachable from a version is immutable, so the
// snapshot is consistent even while later commits proceed.
func (v *ModelVersion) SaveJSON(w io.Writer) error {
	return saveJSON(w, v.version, v.n, v.d, v.tol, v.maxSweeps, v.groups, v.cons)
}

func saveJSON(w io.Writer, version uint64, n, d int, tol float64, maxSweeps int, groups []*Group, cons []constraint) error {
	out := modelJSON{
		Format: modelFormat,
		N:      n, D: d, Tol: tol, MaxSweeps: maxSweeps, ModelVersion: version,
	}
	for _, g := range groups {
		out.Groups = append(out.Groups, groupJSON{
			Members: g.Members.Indices(),
			Mu:      g.Mu,
			Sigma:   g.Sigma.Data,
		})
	}
	for _, c := range cons {
		switch c := c.(type) {
		case *locationConstraint:
			out.Constraints = append(out.Constraints, constraintJSON{
				Kind: "location", Ext: c.ext.Indices(), Target: c.target,
			})
		case *spreadConstraint:
			out.Constraints = append(out.Constraints, constraintJSON{
				Kind: "spread", Ext: c.ext.Indices(),
				W: c.w, Center: c.center, Value: c.value,
			})
		default:
			return fmt.Errorf("background: unknown constraint type %T", c)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// LoadJSON reconstructs a model saved with SaveJSON, replaying the
// constraints to re-enforce every expectation (guards against drift in
// hand-edited files).
func LoadJSON(r io.Reader) (*Model, error) {
	return loadJSON(r, true)
}

// LoadJSONExact reconstructs a model saved with SaveJSON without
// replaying the constraints. The saved group parameters are taken
// verbatim (they are still validated: SPD covariances, disjoint groups
// covering all points), so a snapshot of a live model restores to the
// exact same float64 parameters — the property session persistence
// needs for restored sessions to reproduce byte-identical mine
// results. Replay (LoadJSON) can nudge parameters within tolerance:
// a commit leaves violations ≤ Tol, but each projection re-applies
// whenever the violation exceeds Tol/2.
func LoadJSONExact(r io.Reader) (*Model, error) {
	return loadJSON(r, false)
}

func loadJSON(r io.Reader, replay bool) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, corrupt("decoding model: %v", err)
	}
	if in.Format > modelFormat {
		return nil, fmt.Errorf("background: model format %d not supported (newer writer?)", in.Format)
	}
	if in.N <= 0 || in.D <= 0 {
		return nil, corrupt("invalid dimensions %d×%d", in.N, in.D)
	}
	// epoch starts at 1 (like New) so the zero-valued conState caches the
	// first refit lazily grows are recognized as stale and rebuilt — the
	// dependency graph needs no wire format of its own.
	m := &Model{
		n: in.N, d: in.D,
		epoch: 1,
		Tol:   in.Tol, MaxSweeps: in.MaxSweeps,
	}
	if m.Tol <= 0 {
		m.Tol = 1e-8
	}
	if m.MaxSweeps <= 0 {
		m.MaxSweeps = 5000
	}
	covered := 0
	// Re-share bit-identical covariances: a live model shares Σ by
	// pointer across split siblings (and across groups a spread update
	// rewrote from the same parent matrix), so a restored model must
	// reproduce that structure for the pointer-keyed kernels downstream
	// (shared-Σ fast path, spread dedup) to behave — and sum in the
	// same order — as on the live model. Each loaded matrix is compared
	// against the distinct representatives only (typically one), and
	// factorized (which doubles as the SPD validation) once per
	// distinct matrix, not once per group.
	var distinct []*Group
	for gi, g := range in.Groups {
		if len(g.Mu) != in.D || len(g.Sigma) != in.D*in.D {
			return nil, corrupt("group %d has inconsistent dimensions", gi)
		}
		sigma := mat.NewDense(in.D, in.D)
		copy(sigma.Data, g.Sigma)
		members := bitset.FromIndices(in.N, g.Members)
		if members.Count() != len(g.Members) {
			return nil, corrupt("group %d has duplicate members", gi)
		}
		covered += members.Count()
		grp := &Group{
			Members: members,
			Count:   members.Count(),
			Mu:      append(mat.Vec(nil), g.Mu...),
		}
		for _, have := range distinct {
			if have.Sigma.MaxAbsDiff(sigma) == 0 {
				grp.Sigma = have.Sigma
				grp.chol.Store(have.chol.Load())
				break
			}
		}
		if grp.Sigma == nil {
			chol, err := mat.NewCholesky(sigma)
			if err != nil {
				return nil, corrupt("group %d covariance not SPD: %v", gi, err)
			}
			grp.Sigma = sigma
			grp.chol.Store(chol)
			distinct = append(distinct, grp)
		}
		m.groups = append(m.groups, grp)
	}
	if covered != in.N {
		return nil, corrupt("groups cover %d of %d points", covered, in.N)
	}
	m.rebuildLabels()
	for ci, c := range in.Constraints {
		ext := bitset.FromIndices(in.N, c.Ext)
		switch c.Kind {
		case "location":
			if len(c.Target) != in.D {
				return nil, corrupt("constraint %d target dimension", ci)
			}
			m.cons = append(m.cons, &locationConstraint{
				ext: ext, target: append(mat.Vec(nil), c.Target...),
			})
		case "spread":
			if len(c.W) != in.D || len(c.Center) != in.D || c.Value <= 0 {
				return nil, corrupt("constraint %d spread fields", ci)
			}
			m.cons = append(m.cons, &spreadConstraint{
				ext: ext,
				w:   append(mat.Vec(nil), c.W...), center: append(mat.Vec(nil), c.Center...),
				value: c.Value,
			})
		default:
			return nil, corrupt("constraint %d has unknown kind %q", ci, c.Kind)
		}
	}
	// Re-enforce: saved parameters should already satisfy everything,
	// but replaying guards against drift and validates the file.
	if replay && len(m.cons) > 0 {
		if err := m.refit(); err != nil {
			return nil, err
		}
	}
	// Restore the version stamp; files from before versioning carry no
	// stamp, so derive it from the commit count (stamps start at 1 and
	// advance by one per commit).
	m.version = in.ModelVersion
	if m.version == 0 {
		m.version = 1 + uint64(len(m.cons))
	}
	m.publishCurrent()
	return m, nil
}
