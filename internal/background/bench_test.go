package background

import (
	"fmt"
	"testing"

	"repro/internal/mat"
)

// benchCommitModel builds a model with k committed location constraints
// whose extensions are disjoint 32-point blocks.
func benchCommitModel(b *testing.B, n, d, k int) *Model {
	b.Helper()
	m, err := New(n, make(mat.Vec, d), mat.Eye(d))
	if err != nil {
		b.Fatal(err)
	}
	yhat := make(mat.Vec, d)
	for j := range yhat {
		yhat[j] = 0.5
	}
	for c := 0; c < k; c++ {
		if err := m.CommitLocation(disjointExt(n, c, 32), yhat); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkRefitManyDisjointConstraints measures one what-if commit
// (clone + commit, the server's preview pattern) against a session that
// already holds k disjoint committed patterns. The dependency graph
// makes the new commit's descent skip every untouched constraint, so
// per-commit cost must stay roughly flat as k grows — before the
// incremental refit it grew linearly (every sweep re-applied all k
// constraints).
func BenchmarkRefitManyDisjointConstraints(b *testing.B) {
	const n, d = 8192, 8
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("commits=%d", k), func(b *testing.B) {
			m := benchCommitModel(b, n, d, k)
			freshExt := disjointExt(n, 200, 32) // disjoint from all committed blocks
			yhat := make(mat.Vec, d)
			yhat[0] = -1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := m.Clone()
				if err := c.CommitLocation(freshExt, yhat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRefitOverlappingConstraints measures a commit whose extension
// overlaps every previously committed pattern — the worst case for the
// dependency graph (everything is dirtied, nothing can be skipped after
// the first mutation), bounding the overhead of the bookkeeping itself.
func BenchmarkRefitOverlappingConstraints(b *testing.B) {
	const n, d = 8192, 8
	for _, k := range []int{4, 16} {
		b.Run(fmt.Sprintf("commits=%d", k), func(b *testing.B) {
			m, err := New(n, make(mat.Vec, d), mat.Eye(d))
			if err != nil {
				b.Fatal(err)
			}
			yhat := make(mat.Vec, d)
			yhat[0] = 0.5
			// Chained blocks: constraint c covers [64c, 64c+128).
			for c := 0; c < k; c++ {
				ext := disjointExt(n, c, 64).Or(disjointExt(n, c+1, 64))
				if err := m.CommitLocation(ext, yhat); err != nil {
					b.Fatal(err)
				}
			}
			// The benchmarked commit straddles the whole chain.
			wide := disjointExt(n, 0, 64*(k+1))
			target := make(mat.Vec, d)
			target[1] = -0.5
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := m.Clone()
				if err := c.CommitLocation(wide, target); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResweepConverged measures one full sweep over a converged
// model — the pure skip path: k clean constraints, zero applies, zero
// allocations.
func BenchmarkResweepConverged(b *testing.B) {
	const n, d = 8192, 8
	m := benchCommitModel(b, n, d, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.refit(); err != nil {
			b.Fatal(err)
		}
	}
}
