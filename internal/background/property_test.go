package background

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/mat"
)

// TestRandomCommitSequencesKeepAllConstraints is the central property
// of the background model: ANY sequence of location and spread commits
// (overlapping or not) either succeeds — after which every committed
// expectation holds within tolerance — or fails atomically, leaving the
// constraint count unchanged. Either way every covariance stays SPD and
// the group partition stays consistent. (Heavily overlapping spread
// squeezes can be numerically infeasible; the model must refuse them
// cleanly rather than corrupt itself.)
func TestRandomCommitSequencesKeepAllConstraints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(40)
		d := 1 + rng.Intn(3)
		m, err := New(n, make(mat.Vec, d), mat.Eye(d))
		if err != nil {
			return false
		}

		type locC struct {
			ext  *bitset.Set
			yhat mat.Vec
		}
		type sprC struct {
			ext  *bitset.Set
			w, c mat.Vec
			v    float64
		}
		var locs []locC
		var sprs []sprC

		for step := 0; step < 4; step++ {
			// Random extension of 5..n/2 points.
			size := 5 + rng.Intn(n/2)
			perm := rng.Perm(n)
			ext := bitset.New(n)
			for _, i := range perm[:size] {
				ext.Add(i)
			}
			if rng.Intn(2) == 0 || len(locs) == 0 {
				yhat := make(mat.Vec, d)
				for j := range yhat {
					yhat[j] = rng.NormFloat64() * 2
				}
				before := m.NumConstraints()
				if err := m.CommitLocation(ext, yhat); err != nil {
					if m.NumConstraints() != before {
						t.Logf("seed %d: failed location commit not rolled back", seed)
						return false
					}
					continue
				}
				locs = append(locs, locC{ext: ext, yhat: yhat})
			} else {
				// The documented two-step regime: pin the subgroup's
				// location first, then constrain the spread around that
				// committed mean.
				yhat := make(mat.Vec, d)
				for j := range yhat {
					yhat[j] = rng.NormFloat64() * 2
				}
				before := m.NumConstraints()
				if err := m.CommitLocation(ext, yhat); err != nil {
					if m.NumConstraints() != before {
						t.Logf("seed %d: failed location commit not rolled back", seed)
						return false
					}
					continue
				}
				locs = append(locs, locC{ext: ext, yhat: yhat})
				w := make(mat.Vec, d)
				for j := range w {
					w[j] = rng.NormFloat64()
				}
				w.Normalize()
				v := 0.3 + rng.Float64()*2
				before = m.NumConstraints()
				if err := m.CommitSpread(ext, w, yhat, v); err != nil {
					// Numerically infeasible squeeze: must fail atomically.
					if m.NumConstraints() != before {
						t.Logf("seed %d: failed spread commit not rolled back", seed)
						return false
					}
					continue
				}
				sprs = append(sprs, sprC{ext: ext, w: w, c: yhat, v: v})
			}
		}

		// All location constraints hold.
		for _, lc := range locs {
			mu, _, err := m.SubgroupMeanMarginal(lc.ext)
			if err != nil {
				return false
			}
			if mu.Sub(lc.yhat).Norm() > 1e-5*(1+lc.yhat.Norm()) {
				t.Logf("seed %d: location residual %v", seed, mu.Sub(lc.yhat).Norm())
				return false
			}
		}
		// All spread constraints hold.
		for _, sc := range sprs {
			got, err := m.ExpectedSpread(sc.ext, sc.w, sc.c)
			if err != nil {
				return false
			}
			if math.Abs(got-sc.v) > 1e-5*(1+sc.v) {
				t.Logf("seed %d: spread residual %v", seed, math.Abs(got-sc.v))
				return false
			}
		}
		// Group partition covers [0, n) exactly once and every Σ is SPD.
		seen := bitset.New(n)
		total := 0
		for _, g := range m.Groups() {
			if g.Members.IntersectCount(seen) != 0 {
				t.Logf("seed %d: overlapping groups", seed)
				return false
			}
			seen = seen.Or(g.Members)
			total += g.Count
			if _, err := mat.NewCholesky(g.Sigma); err != nil {
				t.Logf("seed %d: non-SPD group covariance", seed)
				return false
			}
		}
		return total == n && seen.Count() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCountBound: t commits create at most 2^t (and at least 1)
// groups, and group count never exceeds n.
func TestGroupCountBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 64
	m, err := New(n, mat.Vec{0}, mat.Eye(1))
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 6; step++ {
		size := 1 + rng.Intn(n-1)
		perm := rng.Perm(n)
		ext := bitset.New(n)
		for _, i := range perm[:size] {
			ext.Add(i)
		}
		if err := m.CommitLocation(ext, mat.Vec{rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
		bound := 1 << step
		if bound > n {
			bound = n
		}
		if g := m.NumGroups(); g < 1 || g > bound {
			t.Fatalf("after %d commits: %d groups (bound %d)", step, g, bound)
		}
	}
}

// TestPathologicalSpreadCommitRollsBack: repeatedly demanding a tiny
// variance around a center far from the subgroup mean (violating the
// two-step protocol) eventually becomes numerically infeasible; the
// commit must then fail cleanly and leave the model exactly as it was,
// with all previously committed constraints intact.
func TestPathologicalSpreadCommitRollsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 40
	m, err := New(n, mat.Vec{0, 0}, mat.Eye(2))
	if err != nil {
		t.Fatal(err)
	}
	var lastGood int
	var failed bool
	for step := 0; step < 60; step++ {
		size := 5 + rng.Intn(n/2)
		perm := rng.Perm(n)
		ext := bitset.New(n)
		for _, i := range perm[:size] {
			ext.Add(i)
		}
		w := mat.Vec{rng.NormFloat64(), rng.NormFloat64()}
		w.Normalize()
		center := mat.Vec{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		before := m.NumConstraints()
		err := m.CommitSpread(ext, w, center, 0.01)
		if err != nil {
			failed = true
			if m.NumConstraints() != before {
				t.Fatalf("failed commit left a constraint behind")
			}
			break
		}
		lastGood = m.NumConstraints()
	}
	if !failed {
		t.Skip("could not provoke numeric infeasibility on this platform")
	}
	// The model is still healthy: groups SPD, constraints = lastGood.
	if m.NumConstraints() != lastGood {
		t.Fatalf("constraints = %d, want %d", m.NumConstraints(), lastGood)
	}
	for _, g := range m.Groups() {
		if _, err := mat.NewCholesky(g.Sigma); err != nil {
			t.Fatalf("rollback left non-SPD covariance: %v", err)
		}
	}
	// And it still accepts a sane commit.
	ext := bitset.FromIndices(n, []int{0, 1, 2, 3, 4})
	yhat := mat.Vec{1, 1}
	if err := m.CommitLocation(ext, yhat); err != nil {
		t.Fatalf("model unusable after rollback: %v", err)
	}
}

// TestCommitIdempotent: re-committing an already-satisfied constraint
// must not change the model parameters.
func TestCommitIdempotent(t *testing.T) {
	n := 40
	m, err := New(n, mat.Vec{0, 0}, mat.Eye(2))
	if err != nil {
		t.Fatal(err)
	}
	ext := bitset.FromIndices(n, []int{0, 1, 2, 3, 4, 5, 6, 7})
	yhat := mat.Vec{1.5, -0.5}
	if err := m.CommitLocation(ext, yhat); err != nil {
		t.Fatal(err)
	}
	before := m.PointMean(0)
	if err := m.CommitLocation(ext, yhat); err != nil {
		t.Fatal(err)
	}
	after := m.PointMean(0)
	if before.Sub(after).Norm() > 1e-9 {
		t.Fatalf("idempotent commit moved the mean: %v -> %v", before, after)
	}
}
