package background

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/mat"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := newModel(t, 60, 2)
	extA := bitset.FromIndices(60, seq(0, 25))
	if err := m.CommitLocation(extA, mat.Vec{2, -1}); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitSpread(extA, mat.Vec{1, 0}, mat.Vec{2, -1}, 0.4); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.SaveJSON(&buf); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if got.N() != m.N() || got.D() != m.D() {
		t.Fatal("dimensions changed")
	}
	if got.NumGroups() != m.NumGroups() || got.NumConstraints() != m.NumConstraints() {
		t.Fatalf("structure changed: %d/%d groups, %d/%d constraints",
			got.NumGroups(), m.NumGroups(), got.NumConstraints(), m.NumConstraints())
	}
	// Marginals agree.
	muA, covA, _ := m.SubgroupMeanMarginal(extA)
	muB, covB, _ := got.SubgroupMeanMarginal(extA)
	if muA.Sub(muB).Norm() > 1e-9 {
		t.Fatalf("means differ: %v vs %v", muA, muB)
	}
	if covA.MaxAbsDiff(covB) > 1e-9 {
		t.Fatal("covariances differ")
	}
	// Constraints still hold on the restored model.
	es, _ := got.ExpectedSpread(extA, mat.Vec{1, 0}, mat.Vec{2, -1})
	if math.Abs(es-0.4) > 1e-6 {
		t.Fatalf("restored spread constraint = %v", es)
	}
	// And the restored model keeps evolving correctly.
	extB := bitset.FromIndices(60, seq(30, 50))
	if err := got.CommitLocation(extB, mat.Vec{-3, 3}); err != nil {
		t.Fatalf("commit on restored model: %v", err)
	}
	muN, _, _ := got.SubgroupMeanMarginal(extB)
	if muN.Sub(mat.Vec{-3, 3}).Norm() > 1e-6 {
		t.Fatal("restored model commit did not converge")
	}
}

// TestLoadJSONExactBitIdentical pins the property session persistence
// relies on: an exact load restores every group parameter to the same
// float64 bits the live model had, so a restored session reproduces
// byte-identical mine results.
func TestLoadJSONExactBitIdentical(t *testing.T) {
	m := newModel(t, 60, 2)
	extA := bitset.FromIndices(60, seq(0, 25))
	if err := m.CommitLocation(extA, mat.Vec{2, -1}); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitSpread(extA, mat.Vec{0, 1}, mat.Vec{2, -1}, 0.7); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSONExact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadJSONExact: %v", err)
	}
	if got.NumGroups() != m.NumGroups() || got.NumConstraints() != m.NumConstraints() {
		t.Fatal("structure changed")
	}
	for i, g := range m.Groups() {
		h := got.Groups()[i]
		for j := range g.Mu {
			if g.Mu[j] != h.Mu[j] { // exact, not within-epsilon
				t.Fatalf("group %d mu[%d]: %v != %v", i, j, g.Mu[j], h.Mu[j])
			}
		}
		if g.Sigma.MaxAbsDiff(h.Sigma) != 0 {
			t.Fatalf("group %d sigma not bit-identical", i)
		}
	}
	// The exact-loaded model still evolves: committing replays fine.
	extB := bitset.FromIndices(60, seq(30, 50))
	if err := got.CommitLocation(extB, mat.Vec{-1, 1}); err != nil {
		t.Fatalf("commit on exact-restored model: %v", err)
	}
	// Exact load still validates structure.
	if _, err := LoadJSONExact(strings.NewReader(
		`{"n":4,"d":1,"groups":[{"members":[0,1],"mu":[0],"sigma":[1]}],"constraints":[]}`)); err == nil {
		t.Fatal("exact load accepted groups that do not cover all points")
	}
}

// TestSnapshotRestoreCommitBitIdentical extends the exact-load property
// across a subsequent commit: a live model (with warm dependency-graph
// caches that let its refit skip clean constraints) and an
// exact-restored model (cold caches, first sweep applies everything)
// must produce bit-identical parameters when the same pattern is
// committed to both. This is the serialization leg of the tentpole's
// bit-identity argument: skipping a clean constraint and re-applying it
// on unchanged inputs are the same float trajectory.
func TestSnapshotRestoreCommitBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(40)
		d := 1 + rng.Intn(3)
		live, err := New(n, make(mat.Vec, d), mat.Eye(d))
		if err != nil {
			t.Fatal(err)
		}
		var lastExt *bitset.Set
		var lastY mat.Vec
		for step := 0; step < 4; step++ {
			ext := randomExt(rng, n, 4+rng.Intn(n/3))
			yhat := make(mat.Vec, d)
			for j := range yhat {
				yhat[j] = rng.NormFloat64()
			}
			if err := live.CommitLocation(ext, yhat); err != nil {
				continue
			}
			lastExt, lastY = ext, yhat
			if rng.Intn(3) == 0 {
				w := make(mat.Vec, d)
				for j := range w {
					w[j] = rng.NormFloat64()
				}
				w.Normalize()
				_ = live.CommitSpread(ext, w, yhat, 0.5+rng.Float64())
			}
		}
		if lastExt == nil {
			continue
		}
		var buf bytes.Buffer
		if err := live.SaveJSON(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := LoadJSONExact(&buf)
		if err != nil {
			t.Fatalf("seed %d: LoadJSONExact: %v", seed, err)
		}
		// Commit one more (overlapping) pattern to both.
		ext := randomExt(rng, n, 4+rng.Intn(n/3))
		ext = ext.Or(lastExt)
		yhat := lastY.Clone()
		yhat[0] += 0.5
		errA := live.CommitLocation(ext, yhat)
		errB := restored.CommitLocation(ext, yhat)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("seed %d: commit divergence: %v vs %v", seed, errA, errB)
		}
		if errA != nil {
			continue
		}
		sameParams(t, "restore-commit", live, restored)
	}
}

func TestLoadJSONRejectsCorruptInput(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"n":0,"d":1,"groups":[],"constraints":[]}`,
		// Groups do not cover all points.
		`{"n":4,"d":1,"groups":[{"members":[0,1],"mu":[0],"sigma":[1]}],"constraints":[]}`,
		// Non-SPD covariance.
		`{"n":2,"d":1,"groups":[{"members":[0,1],"mu":[0],"sigma":[-1]}],"constraints":[]}`,
		// Bad constraint kind.
		`{"n":2,"d":1,"groups":[{"members":[0,1],"mu":[0],"sigma":[1]}],
		  "constraints":[{"kind":"wat","ext":[0]}]}`,
		// Location constraint with wrong target dim.
		`{"n":2,"d":1,"groups":[{"members":[0,1],"mu":[0],"sigma":[1]}],
		  "constraints":[{"kind":"location","ext":[0],"target":[1,2]}]}`,
		// Spread constraint with non-positive value.
		`{"n":2,"d":1,"groups":[{"members":[0,1],"mu":[0],"sigma":[1]}],
		  "constraints":[{"kind":"spread","ext":[0],"w":[1],"center":[0],"value":0}]}`,
	}
	for i, c := range cases {
		if _, err := LoadJSON(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestSaveLoadFreshModel(t *testing.T) {
	m := newModel(t, 10, 3)
	var buf bytes.Buffer
	if err := m.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumGroups() != 1 || got.NumConstraints() != 0 {
		t.Fatalf("fresh model structure: %d groups, %d constraints",
			got.NumGroups(), got.NumConstraints())
	}
}
