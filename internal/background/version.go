package background

import (
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/mat"
)

// ModelVersion is one immutable, atomically published state of a
// background model: the group partition and per-group parameters, the
// dense labeling, and the committed constraint list, stamped with a
// monotonically increasing version number. Mines (and every other
// read path) run against a ModelVersion and never observe a commit in
// progress: a commit builds the *next* version on copied state and
// publishes it with a single atomic pointer swap, so any number of
// readers proceed lock-free while the writer works — the MVCC
// snapshot-isolation shape, applied to belief state.
//
// Everything reachable from a ModelVersion is frozen: member bitsets
// and covariance matrices are never mutated in place anywhere in the
// package (spread updates replace Σ wholesale), group means are deep-
// copied by the commit that mutates them, and the labels slice is
// re-allocated per commit. The only mutation a reader can cause is
// filling a group's Cholesky cache, which is an atomic idempotent
// store of a deterministic factorization. A mine against a version is
// therefore byte-identical regardless of concurrent commits.
type ModelVersion struct {
	version uint64
	n, d    int
	groups  []*Group
	labels  []int32
	cons    []constraint

	tol       float64
	maxSweeps int
}

// Reader is the read-only model surface shared by the live *Model and
// an immutable *ModelVersion. Scoring and optimization code
// (internal/si, internal/spreadopt, internal/baseline) accepts a
// Reader so callers can evaluate either against the live working
// state (single-threaded tools, tests) or against a pinned version
// (the serving path, where mines run concurrently with commits).
type Reader interface {
	// N returns the number of data points.
	N() int
	// D returns the target dimensionality.
	D() int
	// NumGroups returns the number of parameter groups.
	NumGroups() int
	// Groups exposes the parameter groups for read-only inspection.
	Groups() []*Group
	// Labels returns the dense per-point group labeling.
	Labels() []int32
	// SubgroupMeanMarginal returns the background marginal of the
	// subgroup mean statistic f_I(Y).
	SubgroupMeanMarginal(ext *bitset.Set) (mat.Vec, *mat.Dense, error)
	// SpreadStats returns per-group projected variances and mean
	// shifts for a direction and center.
	SpreadStats(ext *bitset.Set, w, center mat.Vec) []GroupStats
	// CountByGroup accumulates |ext ∩ group| per group.
	CountByGroup(ext *bitset.Set, counts []int32) []int32
	// DistinctSigmaChols returns the shared factorization when all
	// groups have an identical covariance.
	DistinctSigmaChols() (*mat.Cholesky, bool, error)
	// ExpectedSpread returns E[g_I^w(Y)] for an extension, direction
	// and center.
	ExpectedSpread(ext *bitset.Set, w, center mat.Vec) (float64, error)
	// Version returns the version stamp of the state being read.
	Version() uint64
}

var (
	_ Reader = (*Model)(nil)
	_ Reader = (*ModelVersion)(nil)
)

// Version returns the version stamp. Stamps start at 1 and advance by
// one per successful commit within a model lineage.
func (v *ModelVersion) Version() uint64 { return v.version }

// N returns the number of data points.
func (v *ModelVersion) N() int { return v.n }

// D returns the target dimensionality.
func (v *ModelVersion) D() int { return v.d }

// NumGroups returns the number of parameter groups.
func (v *ModelVersion) NumGroups() int { return len(v.groups) }

// NumConstraints returns the number of committed patterns.
func (v *ModelVersion) NumConstraints() int { return len(v.cons) }

// Groups exposes the parameter groups. Callers must treat every group
// as read-only.
func (v *ModelVersion) Groups() []*Group { return v.groups }

// Labels returns the dense per-point group labeling: Labels()[i]
// indexes Groups() at the group containing point i. The slice is
// immutable for the lifetime of the version.
func (v *ModelVersion) Labels() []int32 { return v.labels }

// GroupOf returns the group containing point i.
func (v *ModelVersion) GroupOf(i int) *Group {
	if i < 0 || i >= v.n {
		return nil
	}
	return v.groups[v.labels[i]]
}

// SubgroupMeanMarginal implements Reader against this version.
func (v *ModelVersion) SubgroupMeanMarginal(ext *bitset.Set) (mat.Vec, *mat.Dense, error) {
	return subgroupMeanMarginal(v.groups, v.d, ext)
}

// SpreadStats implements Reader against this version.
func (v *ModelVersion) SpreadStats(ext *bitset.Set, w, center mat.Vec) []GroupStats {
	return groupSpreadStats(v.groups, v.labels, ext, w, center)
}

// CountByGroup implements Reader against this version.
func (v *ModelVersion) CountByGroup(ext *bitset.Set, counts []int32) []int32 {
	return countByGroup(v.labels, len(v.groups), ext, counts)
}

// DistinctSigmaChols implements Reader against this version.
func (v *ModelVersion) DistinctSigmaChols() (*mat.Cholesky, bool, error) {
	return distinctSigmaChols(v.groups)
}

// ExpectedSpread implements Reader against this version.
func (v *ModelVersion) ExpectedSpread(ext *bitset.Set, w, center mat.Vec) (float64, error) {
	return expectedSpread(v.groups, ext, w, center)
}

// Fork returns a writable Model whose belief state starts at exactly
// this version — the what-if primitive behind spread previews and any
// other speculative commit. The fork shares the version's groups and
// labels (its first commit copies before writing, like every commit),
// so forking is O(constraints), and its commits publish versions on
// an independent lineage continuing from this stamp; the source model
// is never affected. The fork's constraint caches start empty: its
// first refit re-applies each satisfied constraint once (a clean
// early return, no parameter change), which reproduces the source's
// float trajectory exactly.
func (v *ModelVersion) Fork() *Model {
	m := &Model{
		n: v.n, d: v.d,
		groups:    v.groups,
		labels:    v.labels,
		cons:      append([]constraint(nil), v.cons...),
		epoch:     1,
		version:   v.version,
		Tol:       v.tol,
		MaxSweeps: v.maxSweeps,
	}
	m.cur.Store(v)
	return m
}

// subgroupMeanMarginal is the shared implementation of
// Model.SubgroupMeanMarginal and ModelVersion.SubgroupMeanMarginal:
// µ_I = Σ_{i∈I} µᵢ/|I| and Σ_I = Σ_{i∈I} Σᵢ/|I|² (see DESIGN.md §2 on
// the paper's missing 1/|I| factor). The extension need not align
// with group boundaries.
func subgroupMeanMarginal(groups []*Group, d int, ext *bitset.Set) (mu mat.Vec, cov *mat.Dense, err error) {
	cnt := ext.Count()
	if cnt == 0 {
		return nil, nil, ErrNoPoints
	}
	mu = make(mat.Vec, d)
	cov = mat.NewDense(d, d)
	for _, g := range groups {
		ic := g.Members.IntersectCount(ext)
		if ic == 0 {
			continue
		}
		w := float64(ic)
		mu.AddScaled(w, g.Mu)
		cov.AddScaled(w, g.Sigma)
	}
	mu.Scale(1 / float64(cnt))
	cov.Scale(1 / float64(cnt*cnt))
	return mu, cov, nil
}

// groupSpreadStats is the shared implementation of SpreadStats: the
// per-group intersection counts come from one fused trailing-zeros
// pass over ext via the dense labeling — O(n/64 + |I|) instead of one
// AND-popcount pass per group — and the projected variance is
// computed once per distinct Σ matrix (split siblings share Σ by
// pointer until a spread commit diverges them).
func groupSpreadStats(groups []*Group, labels []int32, ext *bitset.Set, w, center mat.Vec) []GroupStats {
	counts := countByGroup(labels, len(groups), ext, nil)
	var out []GroupStats
	var prevSigma *mat.Dense
	var prevS float64
	for gi, g := range groups {
		ic := counts[gi]
		if ic == 0 {
			continue
		}
		if g.Sigma != prevSigma {
			prevSigma = g.Sigma
			prevS = w.Dot(g.Sigma.MulVec(w))
		}
		out = append(out, GroupStats{
			Count:     int(ic),
			S:         prevS,
			MeanShift: w.Dot(center.Sub(g.Mu)),
		})
	}
	return out
}

// countByGroup is the shared fused sufficient-statistics kernel: one
// trailing-zeros pass over ext accumulating label-indexed counts,
// cost O(n/64 + |ext|) regardless of the group count.
func countByGroup(labels []int32, numGroups int, ext *bitset.Set, counts []int32) []int32 {
	if cap(counts) < numGroups {
		counts = make([]int32, numGroups)
	} else {
		counts = counts[:numGroups]
		for i := range counts {
			counts[i] = 0
		}
	}
	for wi, w := range ext.Words() {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			counts[labels[base+b]]++
		}
	}
	return counts
}

// distinctSigmaChols is the shared implementation of
// DistinctSigmaChols. Location-only models share one Σ by pointer
// (split never copies), so the common case is a pointer compare; the
// value compare remains for matrices that are equal but distinct.
func distinctSigmaChols(groups []*Group) (chol *mat.Cholesky, ok bool, err error) {
	if len(groups) == 0 {
		return nil, false, nil
	}
	first := groups[0]
	for _, g := range groups[1:] {
		if g.Sigma != first.Sigma && g.Sigma.MaxAbsDiff(first.Sigma) > 0 {
			return nil, false, nil
		}
	}
	c, err := first.Chol()
	if err != nil {
		return nil, false, err
	}
	return c, true, nil
}

// expectedSpread is the shared implementation of ExpectedSpread:
// (1/|I|) Σ_{i∈I} [ wᵀΣᵢw + (wᵀ(µᵢ − center))² ].
func expectedSpread(groups []*Group, ext *bitset.Set, w, center mat.Vec) (float64, error) {
	cnt := ext.Count()
	if cnt == 0 {
		return 0, ErrNoPoints
	}
	var sum float64
	for _, g := range groups {
		ic := g.Members.IntersectCount(ext)
		if ic == 0 {
			continue
		}
		s := g.Sigma.QuadForm(w)
		b := w.Dot(g.Mu.Sub(center))
		sum += float64(ic) * (s + b*b)
	}
	return sum / float64(cnt), nil
}
