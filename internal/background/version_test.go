package background

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/mat"
)

// A published version is frozen: commits that land after Snapshot must
// not change anything observable through it, and re-serializing it must
// yield the same bytes.
func TestSnapshotImmutableUnderCommit(t *testing.T) {
	m := newModel(t, 100, 2)
	v1 := m.Snapshot()
	if v1 == nil || v1.Version() != 1 {
		t.Fatalf("fresh model publishes version 1, got %+v", v1)
	}
	var before bytes.Buffer
	if err := v1.SaveJSON(&before); err != nil {
		t.Fatal(err)
	}
	ext := bitset.FromIndices(100, seq(0, 30))
	if err := m.CommitLocation(ext, mat.Vec{2.5, -1}); err != nil {
		t.Fatalf("CommitLocation: %v", err)
	}
	v2 := m.Snapshot()
	if v2.Version() != v1.Version()+1 {
		t.Fatalf("commit published version %d, want %d", v2.Version(), v1.Version()+1)
	}
	if v1.NumConstraints() != 0 || v2.NumConstraints() != 1 {
		t.Fatalf("constraint counts: v1=%d v2=%d", v1.NumConstraints(), v2.NumConstraints())
	}
	var after bytes.Buffer
	if err := v1.SaveJSON(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("serializing the old version changed after a commit")
	}
	// The old version still answers with the prior belief state.
	muOld, _, err := v1.SubgroupMeanMarginal(ext)
	if err != nil {
		t.Fatal(err)
	}
	if muOld.Norm() > 1e-12 {
		t.Fatalf("old version sees the committed mean: %v", muOld)
	}
	muNew, _, err := v2.SubgroupMeanMarginal(ext)
	if err != nil {
		t.Fatal(err)
	}
	if muNew[0] < 2 {
		t.Fatalf("new version missed the commit: %v", muNew)
	}
}

// A failed commit (deadline back-pressure) publishes nothing: the
// version stamp and the published snapshot are untouched.
func TestFailedCommitPublishesNothing(t *testing.T) {
	m := newModel(t, 80, 2)
	v1 := m.Snapshot()
	m.Deadline = time.Now().Add(-time.Second)
	err := m.CommitLocation(bitset.FromIndices(80, seq(0, 20)), mat.Vec{1, 1})
	if err == nil {
		t.Fatal("expired deadline should fail the commit")
	}
	m.Deadline = time.Time{}
	if got := m.Snapshot(); got != v1 {
		t.Fatalf("failed commit replaced the published version: %d -> %d",
			v1.Version(), got.Version())
	}
	// The model still works: the same commit succeeds without the
	// deadline, building on the rolled-back state.
	if err := m.CommitLocation(bitset.FromIndices(80, seq(0, 20)), mat.Vec{1, 1}); err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if got := m.Snapshot().Version(); got != v1.Version()+1 {
		t.Fatalf("version after rollback+retry = %d, want %d", got, v1.Version()+1)
	}
}

// Readers pinned to a version race a stream of commits; run under
// -race this pins the lock-free snapshot contract, and the value
// checks pin that reads through an old version stay byte-stable.
func TestConcurrentReadersUnderCommits(t *testing.T) {
	m := newModel(t, 200, 3)
	ext := bitset.FromIndices(200, seq(0, 50))
	w := unit(3, 0)
	v := m.Snapshot()
	refMu, _, err := v.SubgroupMeanMarginal(ext)
	if err != nil {
		t.Fatal(err)
	}
	refSpread, err := v.ExpectedSpread(ext, w, refMu)
	if err != nil {
		t.Fatal(err)
	}
	var refJSON bytes.Buffer
	if err := v.SaveJSON(&refJSON); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu, _, err := v.SubgroupMeanMarginal(ext)
				if err != nil {
					t.Errorf("SubgroupMeanMarginal: %v", err)
					return
				}
				for j := range mu {
					if mu[j] != refMu[j] {
						t.Errorf("pinned mean drifted: %v vs %v", mu, refMu)
						return
					}
				}
				sp, err := v.ExpectedSpread(ext, w, refMu)
				if err != nil || sp != refSpread {
					t.Errorf("pinned spread drifted: %v (err %v) vs %v", sp, err, refSpread)
					return
				}
				var buf bytes.Buffer
				if err := v.SaveJSON(&buf); err != nil || !bytes.Equal(buf.Bytes(), refJSON.Bytes()) {
					t.Errorf("pinned serialization drifted (err %v)", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 6; i++ {
		lo := (i * 25) % 150
		cext := bitset.FromIndices(200, seq(lo, lo+20))
		if err := m.CommitLocation(cext, mat.Vec{0.5, -0.5, 0.25}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if got := m.Snapshot().Version(); got != 7 {
		t.Fatalf("version after 6 commits = %d, want 7", got)
	}
}

// A fork of a version replays a commit to the exact same state the
// live model reaches — the basis of the server's spread preview.
func TestForkCommitMatchesLive(t *testing.T) {
	live := newModel(t, 120, 2)
	seed := bitset.FromIndices(120, seq(0, 40))
	if err := live.CommitLocation(seed, mat.Vec{1, 0.5}); err != nil {
		t.Fatal(err)
	}
	v := live.Snapshot()
	fork := v.Fork()
	if fork.Version() != v.Version() {
		t.Fatalf("fork version %d, want %d", fork.Version(), v.Version())
	}

	next := bitset.FromIndices(120, seq(60, 90))
	target := mat.Vec{-0.75, 2}
	if err := fork.CommitLocation(next, target); err != nil {
		t.Fatalf("fork commit: %v", err)
	}
	if err := live.CommitLocation(next, target); err != nil {
		t.Fatalf("live commit: %v", err)
	}
	var fb, lb bytes.Buffer
	if err := fork.SaveJSON(&fb); err != nil {
		t.Fatal(err)
	}
	if err := live.SaveJSON(&lb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb.Bytes(), lb.Bytes()) {
		t.Fatal("fork and live models diverged after the same commit")
	}
	// The source version is untouched by the fork's commit.
	if v.NumConstraints() != 1 {
		t.Fatalf("fork commit leaked into the source version: %d constraints", v.NumConstraints())
	}
}
