package background

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/mat"
)

func newModel(t *testing.T, n, d int) *Model {
	t.Helper()
	mu := make(mat.Vec, d)
	sigma := mat.Eye(d)
	m, err := New(n, mu, sigma)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func unit(d, axis int) mat.Vec {
	w := make(mat.Vec, d)
	w[axis] = 1
	return w
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, mat.Vec{0}, mat.Eye(1)); err == nil {
		t.Fatal("n=0 should fail")
	}
	if _, err := New(5, mat.Vec{0, 0}, mat.Eye(3)); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	bad := mat.NewDense(2, 2)
	copy(bad.Data, []float64{1, 2, 2, 1})
	if _, err := New(5, mat.Vec{0, 0}, bad); err == nil {
		t.Fatal("non-SPD prior should fail")
	}
}

func TestLocationCommitEnforcesConstraint(t *testing.T) {
	m := newModel(t, 100, 2)
	ext := bitset.FromIndices(100, seq(0, 30))
	yhat := mat.Vec{2.5, -1}
	if err := m.CommitLocation(ext, yhat); err != nil {
		t.Fatalf("CommitLocation: %v", err)
	}
	mu, _, err := m.SubgroupMeanMarginal(ext)
	if err != nil {
		t.Fatal(err)
	}
	for j := range yhat {
		if math.Abs(mu[j]-yhat[j]) > 1e-9 {
			t.Fatalf("E[f_I] = %v, want %v", mu, yhat)
		}
	}
	// Outside points unchanged.
	outMu := m.PointMean(50)
	if outMu.Norm() > 1e-12 {
		t.Fatalf("outside mean changed: %v", outMu)
	}
	// Covariances untouched by a location update (Theorem 1).
	if d := m.PointCov(0).MaxAbsDiff(mat.Eye(2)); d > 1e-12 {
		t.Fatalf("location update changed covariance by %v", d)
	}
	if m.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2", m.NumGroups())
	}
}

func TestLocationCommitGeneralCovariance(t *testing.T) {
	// Non-identity prior covariance: the general-form update must still
	// reach the target mean exactly.
	sigma := mat.NewDense(2, 2)
	copy(sigma.Data, []float64{2, 0.6, 0.6, 1})
	m, err := New(60, mat.Vec{1, 1}, sigma)
	if err != nil {
		t.Fatal(err)
	}
	ext := bitset.FromIndices(60, seq(10, 35))
	yhat := mat.Vec{-3, 4}
	if err := m.CommitLocation(ext, yhat); err != nil {
		t.Fatal(err)
	}
	mu, _, _ := m.SubgroupMeanMarginal(ext)
	if mu.Sub(yhat).Norm() > 1e-9 {
		t.Fatalf("subgroup mean %v, want %v", mu, yhat)
	}
}

func TestOverlappingLocationConstraintsCoordinateDescent(t *testing.T) {
	m := newModel(t, 100, 2)
	extA := bitset.FromIndices(100, seq(0, 50))
	extB := bitset.FromIndices(100, seq(30, 80)) // overlaps A on [30,50)
	ya := mat.Vec{1, 0}
	yb := mat.Vec{0, 1}
	if err := m.CommitLocation(extA, ya); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitLocation(extB, yb); err != nil {
		t.Fatal(err)
	}
	muA, _, _ := m.SubgroupMeanMarginal(extA)
	muB, _, _ := m.SubgroupMeanMarginal(extB)
	if muA.Sub(ya).Norm() > 1e-6 {
		t.Fatalf("constraint A violated after B: %v", muA)
	}
	if muB.Sub(yb).Norm() > 1e-6 {
		t.Fatalf("constraint B violated: %v", muB)
	}
	if m.LastSweeps < 2 {
		t.Fatalf("overlapping constraints should need >1 sweep, got %d", m.LastSweeps)
	}
	// Groups: [0,30), [30,50), [50,80), [80,100) = 4.
	if m.NumGroups() != 4 {
		t.Fatalf("NumGroups = %d, want 4", m.NumGroups())
	}
	total := 0
	for _, g := range m.Groups() {
		total += g.Count
	}
	if total != 100 {
		t.Fatalf("group counts sum to %d", total)
	}
}

func TestSpreadCommitEnforcesConstraint(t *testing.T) {
	for _, vhat := range []float64{0.25, 1.0, 4.0} { // shrink, no-op-ish, grow
		m := newModel(t, 80, 2)
		ext := bitset.FromIndices(80, seq(0, 40))
		center := make(mat.Vec, 2) // prior mean is 0; center at 0
		w := unit(2, 0)
		if err := m.CommitSpread(ext, w, center, vhat); err != nil {
			t.Fatalf("CommitSpread(v=%v): %v", vhat, err)
		}
		got, err := m.ExpectedSpread(ext, w, center)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-vhat) > 1e-8 {
			t.Fatalf("E[g] = %v, want %v", got, vhat)
		}
		// Covariance stays SPD.
		if _, err := mat.NewCholesky(m.PointCov(0)); err != nil {
			t.Fatalf("covariance lost positive definiteness: %v", err)
		}
	}
}

func TestSpreadCommitShermanMorrison(t *testing.T) {
	// Theorem 2's covariance update must equal the rank-1 precision
	// update (Σ⁻¹ + λwwᵀ)⁻¹ for the recovered λ.
	m := newModel(t, 40, 3)
	ext := bitset.FromIndices(40, seq(0, 40))
	w := mat.Vec{1 / math.Sqrt(3), 1 / math.Sqrt(3), 1 / math.Sqrt(3)}
	center := make(mat.Vec, 3)
	vhat := 0.5
	if err := m.CommitSpread(ext, w, center, vhat); err != nil {
		t.Fatal(err)
	}
	sigmaNew := m.PointCov(0)
	// Recover λ from the new projected variance: s_new = s/(1+λs), s = 1.
	sNew := sigmaNew.QuadForm(w)
	lambda := (1 - sNew) / sNew
	prec := mat.Eye(3) // old Σ⁻¹
	prec.AddOuterScaled(lambda, w, w)
	inv, err := mat.InverseSPD(prec)
	if err != nil {
		t.Fatal(err)
	}
	if d := inv.MaxAbsDiff(sigmaNew); d > 1e-8 {
		t.Fatalf("Sherman–Morrison mismatch: %v", d)
	}
}

func TestSpreadAfterLocationTwoStep(t *testing.T) {
	// The paper's two-step flow: commit location (mean moves to ŷ_I),
	// then commit spread around that mean. Both must hold afterwards.
	m := newModel(t, 60, 2)
	ext := bitset.FromIndices(60, seq(0, 25))
	yhat := mat.Vec{3, -2}
	if err := m.CommitLocation(ext, yhat); err != nil {
		t.Fatal(err)
	}
	w := unit(2, 1)
	vhat := 0.1
	if err := m.CommitSpread(ext, w, yhat, vhat); err != nil {
		t.Fatal(err)
	}
	mu, _, _ := m.SubgroupMeanMarginal(ext)
	if mu.Sub(yhat).Norm() > 1e-8 {
		t.Fatalf("location constraint violated after spread: %v", mu)
	}
	got, _ := m.ExpectedSpread(ext, w, yhat)
	if math.Abs(got-vhat) > 1e-8 {
		t.Fatalf("spread constraint violated: %v", got)
	}
	if m.NumConstraints() != 2 {
		t.Fatalf("NumConstraints = %d", m.NumConstraints())
	}
}

func TestSpreadCommitValidation(t *testing.T) {
	m := newModel(t, 10, 2)
	ext := bitset.FromIndices(10, []int{1, 2})
	if err := m.CommitSpread(ext, mat.Vec{2, 0}, mat.Vec{0, 0}, 1); err == nil {
		t.Fatal("non-unit w should fail")
	}
	if err := m.CommitSpread(ext, unit(2, 0), mat.Vec{0, 0}, -1); err == nil {
		t.Fatal("negative variance should fail")
	}
	if err := m.CommitSpread(bitset.New(10), unit(2, 0), mat.Vec{0, 0}, 1); err == nil {
		t.Fatal("empty extension should fail")
	}
}

func TestSubgroupMeanMarginalMixesGroups(t *testing.T) {
	m := newModel(t, 100, 1)
	extA := bitset.FromIndices(100, seq(0, 50))
	if err := m.CommitLocation(extA, mat.Vec{10}); err != nil {
		t.Fatal(err)
	}
	// Query a straddling extension: half from the shifted group (mean 10),
	// half from the untouched group (mean 0).
	q := bitset.FromIndices(100, seq(25, 75))
	mu, cov, err := m.SubgroupMeanMarginal(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu[0]-5) > 1e-9 {
		t.Fatalf("mixed mean = %v, want 5", mu[0])
	}
	// Var of the mean of 50 iid unit-variance points is 1/50.
	if math.Abs(cov.At(0, 0)-1.0/50) > 1e-12 {
		t.Fatalf("cov of mean = %v, want %v", cov.At(0, 0), 1.0/50)
	}
}

func TestSpreadStats(t *testing.T) {
	m := newModel(t, 20, 2)
	ext := bitset.FromIndices(20, seq(0, 10))
	if err := m.CommitLocation(ext, mat.Vec{1, 1}); err != nil {
		t.Fatal(err)
	}
	center := mat.Vec{1, 1}
	stats := m.SpreadStats(ext, unit(2, 0), center)
	if len(stats) != 1 {
		t.Fatalf("expected 1 group inside, got %d", len(stats))
	}
	if stats[0].Count != 10 || math.Abs(stats[0].S-1) > 1e-12 {
		t.Fatalf("stats = %+v", stats[0])
	}
	if math.Abs(stats[0].MeanShift) > 1e-9 {
		t.Fatalf("mean shift should be 0 after location commit, got %v", stats[0].MeanShift)
	}
}

func TestDistinctSigmaCholsFastPath(t *testing.T) {
	m := newModel(t, 30, 2)
	if _, ok, err := m.DistinctSigmaChols(); err != nil || !ok {
		t.Fatalf("fresh model should share Σ (ok=%v, err=%v)", ok, err)
	}
	ext := bitset.FromIndices(30, seq(0, 10))
	if err := m.CommitLocation(ext, mat.Vec{1, 0}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.DistinctSigmaChols(); !ok {
		t.Fatal("location commits must keep the shared-Σ fast path")
	}
	if err := m.CommitSpread(ext, unit(2, 0), mat.Vec{1, 0}, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.DistinctSigmaChols(); ok {
		t.Fatal("spread commit should break the shared-Σ fast path")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := newModel(t, 40, 2)
	ext := bitset.FromIndices(40, seq(0, 20))
	if err := m.CommitLocation(ext, mat.Vec{5, 5}); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if err := c.CommitLocation(bitset.FromIndices(40, seq(20, 40)), mat.Vec{-5, -5}); err != nil {
		t.Fatal(err)
	}
	if m.NumConstraints() != 1 || c.NumConstraints() != 2 {
		t.Fatal("clone shares constraint list")
	}
	if m.PointMean(30).Norm() > 1e-12 {
		t.Fatal("clone commit mutated the original model")
	}
}

func TestMonteCarloSpreadUpdate(t *testing.T) {
	// Simulate from the updated model and check the empirical E[g]
	// matches the committed value (validates Theorem 2 end to end).
	m := newModel(t, 50, 2)
	ext := bitset.FromIndices(50, seq(0, 50))
	w := mat.Vec{3.0 / 5, 4.0 / 5}
	center := mat.Vec{0, 0}
	vhat := 2.5
	if err := m.CommitSpread(ext, w, center, vhat); err != nil {
		t.Fatal(err)
	}
	g := m.Groups()[0]
	chol, err := mat.NewCholesky(g.Sigma)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const trials = 200000
	var sum float64
	l := chol.L
	for i := 0; i < trials; i++ {
		z0, z1 := rng.NormFloat64(), rng.NormFloat64()
		y0 := g.Mu[0] + l[0]*z0
		y1 := g.Mu[1] + l[2]*z0 + l[3]*z1
		p := (y0-center[0])*w[0] + (y1-center[1])*w[1]
		sum += p * p
	}
	got := sum / trials
	if math.Abs(got-vhat) > 0.05 {
		t.Fatalf("Monte Carlo E[g] = %v, want %v", got, vhat)
	}
}

func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
