package background

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/mat"
)

// randomExt builds a random extension of size points.
func randomExt(rng *rand.Rand, n, size int) *bitset.Set {
	perm := rng.Perm(n)
	ext := bitset.New(n)
	for _, i := range perm[:size] {
		ext.Add(i)
	}
	return ext
}

// disjointExt returns the k-th of many disjoint contiguous blocks.
func disjointExt(n, k, block int) *bitset.Set {
	ext := bitset.New(n)
	for i := k * block; i < (k+1)*block && i < n; i++ {
		ext.Add(i)
	}
	return ext
}

// sameParams fails unless the two models have bit-identical group
// parameters (same partition, same µ and Σ float64s — exact equality,
// not tolerance) and the same LastSweeps.
func sameParams(t *testing.T, tag string, a, b *Model) {
	t.Helper()
	if a.NumGroups() != b.NumGroups() {
		t.Fatalf("%s: group count %d vs %d", tag, a.NumGroups(), b.NumGroups())
	}
	if a.LastSweeps != b.LastSweeps {
		t.Fatalf("%s: LastSweeps %d vs %d", tag, a.LastSweeps, b.LastSweeps)
	}
	for gi := range a.Groups() {
		ga, gb := a.Groups()[gi], b.Groups()[gi]
		if ga.Members.IntersectCount(gb.Members) != ga.Count || ga.Count != gb.Count {
			t.Fatalf("%s: group %d membership differs", tag, gi)
		}
		for j := range ga.Mu {
			if ga.Mu[j] != gb.Mu[j] {
				t.Fatalf("%s: group %d mu[%d] %v vs %v (diff %g)",
					tag, gi, j, ga.Mu[j], gb.Mu[j], ga.Mu[j]-gb.Mu[j])
			}
		}
		for j := range ga.Sigma.Data {
			if ga.Sigma.Data[j] != gb.Sigma.Data[j] {
				t.Fatalf("%s: group %d sigma[%d] %v vs %v",
					tag, gi, j, ga.Sigma.Data[j], gb.Sigma.Data[j])
			}
		}
	}
}

// TestIncrementalRefitBitIdenticalToFullDescent is the tentpole's
// correctness contract: dirty-constraint skipping reproduces the exact
// float trajectory of the full cyclic descent. Two models replay the
// same randomized commit sequence — location and spread, overlapping and
// disjoint extensions — one with skipping (the default), one forced to
// re-apply every constraint every sweep (noSkip). After every commit the
// group parameters and sweep counts must match bit for bit, and commits
// must succeed or fail in lockstep.
func TestIncrementalRefitBitIdenticalToFullDescent(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(60)
		d := 1 + rng.Intn(3)
		fast, err := New(n, make(mat.Vec, d), mat.Eye(d))
		if err != nil {
			t.Fatal(err)
		}
		full, err := New(n, make(mat.Vec, d), mat.Eye(d))
		if err != nil {
			t.Fatal(err)
		}
		full.noSkip = true

		for step := 0; step < 6; step++ {
			var ext *bitset.Set
			if rng.Intn(2) == 0 {
				// Disjoint-ish block: the regime skipping is built for.
				ext = disjointExt(n, step, n/8)
			} else {
				ext = randomExt(rng, n, 3+rng.Intn(n/2))
			}
			if ext.Count() == 0 {
				continue
			}
			yhat := make(mat.Vec, d)
			for j := range yhat {
				yhat[j] = rng.NormFloat64()
			}
			errA := fast.CommitLocation(ext, yhat)
			errB := full.CommitLocation(ext, yhat)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d step %d: commit divergence: %v vs %v", seed, step, errA, errB)
			}
			sameParams(t, "location", fast, full)

			if errA == nil && rng.Intn(2) == 0 {
				w := make(mat.Vec, d)
				for j := range w {
					w[j] = rng.NormFloat64()
				}
				w.Normalize()
				v := 0.4 + rng.Float64()
				errA = fast.CommitSpread(ext, w, yhat, v)
				errB = full.CommitSpread(ext, w, yhat, v)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("seed %d step %d: spread divergence: %v vs %v", seed, step, errA, errB)
				}
				sameParams(t, "spread", fast, full)
			}
		}
	}
}

// TestIncrementalRefitSkipsCleanConstraints pins the perf contract the
// dependency graph exists for: after k disjoint location commits, the
// next disjoint commit's descent must not re-apply the k untouched
// constraints. Observable via the scratch-free proxy: a full re-sweep of
// a converged model skips every constraint, so it performs zero
// allocations and zero version bumps.
func TestIncrementalRefitSkipsCleanConstraints(t *testing.T) {
	n, d := 512, 2
	m, err := New(n, make(mat.Vec, d), mat.Eye(d))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if err := m.CommitLocation(disjointExt(n, k, 32), mat.Vec{float64(k), -1}); err != nil {
			t.Fatal(err)
		}
	}
	versions := make([]uint64, m.NumGroups())
	for i, g := range m.Groups() {
		versions[i] = g.version
	}
	if err := m.refit(); err != nil {
		t.Fatal(err)
	}
	if m.LastSweeps != 1 {
		t.Fatalf("converged model re-sweep took %d sweeps", m.LastSweeps)
	}
	for i, g := range m.Groups() {
		if g.version != versions[i] {
			t.Fatalf("re-sweep of a converged model mutated group %d", i)
		}
	}
}

// TestSatisfiedApplyZeroAlloc: the acceptance criterion that a
// steady-state apply of a satisfied constraint performs zero
// allocations, for both constraint kinds. noSkip forces the applies to
// actually run (otherwise the skip path — also alloc-free — would hide
// them).
func TestSatisfiedApplyZeroAlloc(t *testing.T) {
	n, d := 256, 3
	m, err := New(n, make(mat.Vec, d), mat.Eye(d))
	if err != nil {
		t.Fatal(err)
	}
	ext := disjointExt(n, 0, 64)
	yhat := mat.Vec{1, -2, 0.5}
	if err := m.CommitLocation(ext, yhat); err != nil {
		t.Fatal(err)
	}
	w := mat.Vec{1, 0, 0}
	if err := m.CommitSpread(ext, w, yhat, 0.5); err != nil {
		t.Fatal(err)
	}
	// Overlapping second location constraint exercises the general
	// (distinct-Σ) accumulation path of the satisfied check too.
	if err := m.CommitLocation(disjointExt(n, 1, 96), mat.Vec{0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	m.noSkip = true
	if err := m.refit(); err != nil { // warm all scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := m.refit(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("satisfied-constraint refit allocated %v per run, want 0", allocs)
	}
}

// TestRefitDeadline: an expired Model.Deadline fails the commit with
// ErrDeadline and rolls back atomically; clearing the deadline restores
// normal operation.
func TestRefitDeadline(t *testing.T) {
	n, d := 128, 2
	m, err := New(n, make(mat.Vec, d), mat.Eye(d))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CommitLocation(disjointExt(n, 0, 32), mat.Vec{1, 1}); err != nil {
		t.Fatal(err)
	}
	muBefore := m.PointMean(0)

	m.Deadline = time.Now().Add(-time.Second)
	err = m.CommitLocation(disjointExt(n, 1, 32), mat.Vec{2, 2})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired deadline: got %v, want ErrDeadline", err)
	}
	if m.NumConstraints() != 1 {
		t.Fatalf("deadline failure left %d constraints, want 1", m.NumConstraints())
	}
	if m.PointMean(0).Sub(muBefore).Norm() != 0 {
		t.Fatal("deadline failure mutated the model")
	}

	m.Deadline = time.Time{}
	if err := m.CommitLocation(disjointExt(n, 1, 32), mat.Vec{2, 2}); err != nil {
		t.Fatalf("commit after clearing deadline: %v", err)
	}
	if m.NumConstraints() != 2 {
		t.Fatalf("NumConstraints = %d, want 2", m.NumConstraints())
	}
}

// TestConcurrentCloneCommit exercises the version/stamp bookkeeping
// under the race detector: concurrent goroutines clone one base model
// and commit to their private clones while others read the base. Clones
// carry copied dependency caches, so any accidental sharing of mutable
// state would be flagged by -race (and by the final base-unchanged
// check).
func TestConcurrentCloneCommit(t *testing.T) {
	n, d := 256, 2
	base, err := New(n, make(mat.Vec, d), mat.Eye(d))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if err := base.CommitLocation(disjointExt(n, k, 32), mat.Vec{float64(k), 1}); err != nil {
			t.Fatal(err)
		}
	}
	muBefore := base.PointMean(0)

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := base.Clone()
			ext := disjointExt(n, 4+w%3, 40)
			if err := c.CommitLocation(ext, mat.Vec{float64(w), -float64(w)}); err != nil {
				errs[w] = err
				return
			}
			if c.NumConstraints() != 5 {
				errs[w] = errors.New("clone constraint count wrong")
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if base.NumConstraints() != 4 {
		t.Fatalf("base constraint count changed to %d", base.NumConstraints())
	}
	if base.PointMean(0).Sub(muBefore).Norm() != 0 {
		t.Fatal("clone commit mutated the base model")
	}
}
