// Package background implements the FORSIED background distribution of
// §II-B of the paper: a product of independent multivariate normal
// distributions, one per data point, which starts as the MaxEnt
// distribution subject to the user's prior beliefs (a mean vector µ and
// covariance matrix Σ for every point, Eq. 3) and evolves as location
// and spread patterns are shown to the user (Eq. 4).
//
// Per-point parameters are stored once per group: the equivalence class
// of points that belong to exactly the same set of committed pattern
// extensions (footnote 2 of the paper: the number of distinct (µᵢ, Σᵢ)
// stays small). Committing a pattern splits the crossing groups and then
// runs the paper's coordinate descent — cyclic I-projections onto each
// stored constraint — until all expectation constraints hold.
//
// The descent is incremental: constraints and groups form a dependency
// graph (each constraint depends on exactly the groups inside its
// extension), groups carry a version bumped on every µ/Σ mutation, and a
// sweep only re-applies constraints whose dependencies changed since
// they were last seen satisfied. Because apply already early-returns
// without mutating anything when the violation is ≤ Tol/2, skipping a
// constraint with unchanged inputs reproduces the exact float trajectory
// of the full cyclic descent (see DESIGN.md §7 for the argument and the
// property test pinning it).
package background

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/mat"
)

// ErrNoPoints is returned when an update is requested for an empty
// extension.
var ErrNoPoints = errors.New("background: empty extension")

// ErrDeadline is returned (wrapped) when Model.Deadline expires before
// the coordinate descent converges. The failing Commit* rolls back
// atomically, so the model is left exactly as before the commit.
var ErrDeadline = errors.New("background: refit deadline exceeded")

// Group is a set of data points sharing background parameters.
type Group struct {
	Members *bitset.Set
	Count   int
	Mu      mat.Vec
	Sigma   *mat.Dense

	// chol caches Sigma's factorization. It is the one piece of group
	// state a *reader* may fill (lazily, on first use), so once groups
	// are reachable from a published ModelVersion the cache must be
	// filled with an atomic idempotent store: concurrent mines racing
	// on the fill each publish a bit-identical factorization of the
	// same immutable Sigma, and either winning is indistinguishable.
	chol atomic.Pointer[mat.Cholesky]

	// version counts µ/Σ mutations of this group. Constraints stamp the
	// versions of their dependency groups after each apply; a stamp
	// mismatch marks the constraint dirty. Fresh groups (split halves,
	// snapshot copies) start wherever their source was — correctness
	// only needs "unchanged value ⇒ unchanged version" within one
	// partition epoch, and every partition change invalidates stamps
	// wholesale via Model.epoch.
	version uint64
}

// Chol returns a cached Cholesky factorization of the group covariance.
// Safe for concurrent callers on a published group.
func (g *Group) Chol() (*mat.Cholesky, error) {
	if c := g.chol.Load(); c != nil {
		return c, nil
	}
	c, err := mat.NewCholesky(g.Sigma)
	if err != nil {
		return nil, err
	}
	g.chol.Store(c)
	return c, nil
}

// derive builds a group that inherits this group's Sigma, cached
// factorization and version counter, with the given membership and
// mean. Every group copy in the package (commit forks, split halves,
// clones) goes through here so the shared-by-pointer discipline and
// the version-preservation invariant live in one place.
func (g *Group) derive(members *bitset.Set, count int, mu mat.Vec) *Group {
	ng := &Group{
		Members: members,
		Count:   count,
		Mu:      mu,
		Sigma:   g.Sigma,
		version: g.version,
	}
	ng.chol.Store(g.chol.Load())
	return ng
}

// constraint is one committed pattern, replayed during coordinate
// descent. Extensions always align with group boundaries because Commit*
// splits groups first.
type constraint interface {
	// extension returns the constraint's subgroup, used to (re)build its
	// dependency edges after a partition change.
	extension() *bitset.Set
	// apply performs the closed-form single-constraint I-projection and
	// returns the expectation violation before the update. The conState
	// supplies the cached dependency groups and records the outcome.
	apply(m *Model, st *conState) (violation float64, err error)
}

// locationConstraint pins E[f_I(Y)] = target (Eq. 6).
type locationConstraint struct {
	ext    *bitset.Set
	target mat.Vec // ŷ_I
}

func (c *locationConstraint) extension() *bitset.Set { return c.ext }

// spreadConstraint pins E[g_I^w(Y)] = value (Eq. 9), with the variance
// statistic centered at the (constant) subgroup mean ŷ_I.
type spreadConstraint struct {
	ext    *bitset.Set
	w      mat.Vec
	center mat.Vec // ŷ_I
	value  float64 // v̂
}

func (c *spreadConstraint) extension() *bitset.Set { return c.ext }

// conState is the model-owned mutable side of one committed constraint:
// its edges in the constraint dependency graph plus the dirty-tracking
// bookkeeping. It lives on the Model (not the constraint) so clones get
// independent state while sharing the immutable constraint data.
type conState struct {
	// epoch is the Model.epoch the gidx cache was built (or remapped)
	// at; any other value means the cache is stale and must be rebuilt
	// before use.
	epoch uint64
	// gidx indexes Model.groups at the groups fully inside the
	// constraint's extension — its dependencies. Valid when epoch
	// matches.
	gidx  []int32
	total int
	// stamps[i] is groups[gidx[i]].version right after the last apply.
	stamps []uint64
	// clean reports that the last apply saw violation ≤ Tol/2 and
	// early-returned without mutating anything. Together with matching
	// stamps it licenses skipping the next apply: identical inputs
	// produce the identical violation and the identical early return.
	clean     bool
	violation float64
}

// record stamps the current dependency versions and the apply outcome.
func (st *conState) record(m *Model, violation float64, clean bool) {
	st.violation = violation
	st.clean = clean
	stamps := st.stamps[:len(st.gidx)]
	for j, gi := range st.gidx {
		stamps[j] = m.groups[gi].version
	}
	st.stamps = stamps
}

// applyScratch is the per-model reusable memory of the two apply paths,
// so steady-state coordinate descent allocates nothing. Commits are
// single-threaded per model, so one scratch per model suffices.
type applyScratch struct {
	muBar  mat.Vec
	resid  mat.Vec
	lambda mat.Vec
	sigLam mat.Vec // Σ·λ, one slot per distinct Σ (flat, d-strided)

	sigmaBar *mat.Dense
	chol     mat.Cholesky

	// Spread-apply state: per distinct covariance matrix (sigs, indexed
	// via the pointer-keyed map) and per inside group (stats).
	sigIdx map[*mat.Dense]int32
	sigs   []sigStat
	stats  []gstat
	sigW   mat.Vec // Σ·w, one slot per distinct Σ (flat, d-strided)
}

// vecZ returns *p resized to n and zeroed.
func (sc *applyScratch) vecZ(p *mat.Vec, n int) mat.Vec {
	v := sc.vec(p, n)
	for i := range v {
		v[i] = 0
	}
	return v
}

// vec returns *p resized to n, contents unspecified.
func (sc *applyScratch) vec(p *mat.Vec, n int) mat.Vec {
	if cap(*p) < n {
		*p = make(mat.Vec, n)
	}
	*p = (*p)[:n]
	return *p
}

type sigStat struct {
	sigma  *mat.Dense
	sigmaW mat.Vec // filled only on the mutating path
	s      float64 // wᵀΣw
}

type gstat struct {
	gi    int32 // index into Model.groups
	sig   int32 // index into applyScratch.sigs
	s, b  float64
	count float64
}

// Model is the background distribution.
type Model struct {
	n, d   int
	groups []*Group
	// labels is the dense per-point group labeling: labels[i] is the
	// index into groups of the group containing point i. It is the
	// sufficient statistic the fused scoring kernels key on — one
	// trailing-zeros walk over an extension accumulates per-group counts
	// without a bitset pass per group. Maintained by split (and restored
	// on commit rollback), so it is always consistent with groups.
	labels []int32
	// gcScratch is the reusable per-group count buffer of the fused
	// label kernel (commits are single-threaded, so one buffer per
	// model suffices).
	gcScratch []int32
	// remap is split's reusable old-index → new-index buffer.
	remap []int32

	cons []constraint
	// conState is parallel to cons: the dependency-graph caches. Grown
	// lazily by refit so deserialized and hand-built models need no
	// extra setup.
	conState []conState
	// epoch identifies the current group partition; it is bumped by
	// split, commit rollback and any wholesale replacement of groups.
	// conState caches carrying another epoch are stale. Starts at 1 so
	// the zero conState is never mistaken for valid.
	epoch uint64

	// version stamps the published belief state: it advances by one per
	// successful commit and is carried by the ModelVersion in cur.
	// Mutated only by the (single) writer.
	version uint64
	// cur is the atomically published immutable snapshot of the model.
	// Commits build the next state on copied groups/labels (see
	// beginCommit) and swing this pointer once, so readers holding a
	// *ModelVersion never observe a commit in progress and never block
	// behind one.
	cur atomic.Pointer[ModelVersion]

	scratch applyScratch

	// noSkip disables dirty-constraint skipping, forcing every sweep to
	// re-apply every constraint — the reference full cyclic descent the
	// incremental property tests compare against.
	noSkip bool

	// Tol is the maximum allowed relative expectation violation after
	// Commit; the coordinate descent loops until all constraints hold
	// within Tol (violations are normalized by the constraint's scale).
	Tol float64
	// MaxSweeps bounds the coordinate descent; with disjoint extensions a
	// single sweep suffices (the projections are independent).
	MaxSweeps int
	// Deadline, when non-zero, bounds the wall time of the coordinate
	// descent the same way search.Params.Deadline bounds a beam search:
	// refit checks it once per sweep and the commit fails with an error
	// wrapping ErrDeadline (and rolls back atomically) when it expires.
	// Zero means no time budget. Transient: not serialized.
	Deadline time.Time

	// LastSweeps records how many coordinate descent sweeps the most
	// recent Commit used, for diagnostics and the Table II experiment.
	LastSweeps int
}

// New creates the initial MaxEnt background distribution p0: every point
// shares the prior mean mu and covariance sigma (Eq. 3). sigma must be
// symmetric positive definite.
func New(n int, mu mat.Vec, sigma *mat.Dense) (*Model, error) {
	if n <= 0 {
		return nil, fmt.Errorf("background: need n > 0, got %d", n)
	}
	d := len(mu)
	if sigma.R != d || sigma.C != d {
		return nil, fmt.Errorf("background: sigma is %dx%d for %d-dim mean",
			sigma.R, sigma.C, d)
	}
	sigma = sigma.Clone()
	chol, err := mat.NewCholesky(sigma)
	if err != nil {
		return nil, fmt.Errorf("background: prior covariance: %w", err)
	}
	g := &Group{
		Members: bitset.Full(n),
		Count:   n,
		Mu:      mu.Clone(),
		Sigma:   sigma,
	}
	g.chol.Store(chol) // the SPD validation doubles as the cache fill
	m := &Model{
		n:         n,
		d:         d,
		groups:    []*Group{g},
		labels:    make([]int32, n),
		epoch:     1,
		version:   1,
		Tol:       1e-8,
		MaxSweeps: 5000,
	}
	m.publishCurrent()
	return m, nil
}

// Snapshot returns the most recently published immutable version of
// the model. Safe for concurrent callers; the returned version is
// valid forever (it is never mutated, only superseded).
func (m *Model) Snapshot() *ModelVersion { return m.cur.Load() }

// Version returns the version stamp of the current belief state. Like
// every non-Snapshot read of a live Model it belongs to the writer;
// concurrent readers use Snapshot().Version().
func (m *Model) Version() uint64 { return m.version }

// publishCurrent publishes the model's current state under its current
// version stamp (initial construction, clone, deserialization).
func (m *Model) publishCurrent() {
	m.cur.Store(&ModelVersion{
		version:   m.version,
		n:         m.n,
		d:         m.d,
		groups:    m.groups,
		labels:    m.labels,
		cons:      m.cons,
		tol:       m.Tol,
		maxSweeps: m.MaxSweeps,
	})
}

// publish stamps the next version and publishes it — the single
// linearization point of a successful commit.
func (m *Model) publish() {
	m.version++
	m.publishCurrent()
}

// N returns the number of data points.
func (m *Model) N() int { return m.n }

// D returns the target dimensionality.
func (m *Model) D() int { return m.d }

// NumGroups returns the current number of parameter groups.
func (m *Model) NumGroups() int { return len(m.groups) }

// NumConstraints returns the number of committed patterns.
func (m *Model) NumConstraints() int { return len(m.cons) }

// Groups exposes the parameter groups for read-only inspection.
func (m *Model) Groups() []*Group { return m.groups }

// Labels exposes the per-point group labeling: Labels()[i] indexes
// Groups() at the group containing point i. Callers must treat the
// slice as read-only; it is invalidated by the next Commit*.
func (m *Model) Labels() []int32 { return m.labels }

// rebuildLabels recomputes the dense labeling from the group partition.
// Groups partition the points, so the total work is one trailing-zeros
// walk over n bits regardless of the group count.
func (m *Model) rebuildLabels() {
	if len(m.labels) != m.n {
		m.labels = make([]int32, m.n)
	}
	for gi, g := range m.groups {
		id := int32(gi)
		for wi, w := range g.Members.Words() {
			base := wi * 64
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				m.labels[base+b] = id
			}
		}
	}
}

// Clone returns a deep copy of the model (used by what-if scoring). The
// dependency-graph caches are copied too — group order is preserved, so
// the index-based conState edges stay valid and the clone's first refit
// skips exactly the constraints the original would have skipped.
func (m *Model) Clone() *Model {
	out := &Model{
		n: m.n, d: m.d,
		epoch:     m.epoch,
		version:   m.version,
		Tol:       m.Tol,
		MaxSweeps: m.MaxSweeps,
		Deadline:  m.Deadline,
		noSkip:    m.noSkip,
	}
	out.groups = make([]*Group, len(m.groups))
	for i, g := range m.groups {
		// Sigma (and its factorization cache) is shared, not copied:
		// covariance matrices are never mutated in place — a spread
		// update replaces the matrix wholesale (see spreadConstraint.
		// apply) — so sharing is safe and keeps Clone O(groups·d) for
		// the location-only regime where Theorem 1 leaves Σ untouched.
		out.groups[i] = g.derive(g.Members.Clone(), g.Count, g.Mu.Clone())
	}
	out.labels = append([]int32(nil), m.labels...)
	out.cons = append([]constraint(nil), m.cons...)
	out.conState = make([]conState, len(m.conState))
	for i := range m.conState {
		st := &m.conState[i]
		out.conState[i] = conState{
			epoch:     st.epoch,
			gidx:      append([]int32(nil), st.gidx...),
			total:     st.total,
			stamps:    append([]uint64(nil), st.stamps...),
			clean:     st.clean,
			violation: st.violation,
		}
	}
	out.publishCurrent()
	return out
}

// GroupOf returns the group containing point i, resolved through the
// dense labeling in O(1).
func (m *Model) GroupOf(i int) *Group {
	if i < 0 || i >= m.n {
		return nil
	}
	return m.groups[m.labels[i]]
}

// split refines the partition so every group is fully inside or outside
// ext, and rebuilds the dense labeling to match. The two halves of a
// split group share the parent's Sigma (and factorization cache) — a
// location commit never touches covariances (Theorem 1), and a spread
// commit replaces matrices instead of mutating them, so the halves stay
// correct with zero d×d copies until a spread update actually diverges
// them.
//
// Splitting starts a new partition epoch. Constraint caches whose
// dependency groups all survived intact are remapped to the new indices
// in place — their stamps, clean flags and cached violations stay valid
// because the surviving groups are the same objects with the same
// parameters. Caches that lost a group to the split are left stale and
// rebuilt by the next refit. This is what makes a commit's descent cost
// proportional to the constraints it actually interacts with instead of
// the total committed count.
func (m *Model) split(ext *bitset.Set) {
	if cap(m.remap) < len(m.groups) {
		m.remap = make([]int32, len(m.groups))
	}
	remap := m.remap[:len(m.groups)]
	out := make([]*Group, 0, len(m.groups)+2)
	for gi, g := range m.groups {
		in := g.Members.And(ext)
		ic := in.Count()
		if ic == 0 || ic == g.Count {
			remap[gi] = int32(len(out))
			out = append(out, g)
			continue
		}
		remap[gi] = -1
		outside := g.Members.AndNot(ext)
		out = append(out,
			g.derive(in, ic, g.Mu.Clone()),
			g.derive(outside, g.Count-ic, g.Mu.Clone()),
		)
	}
	prev := m.epoch
	m.epoch++
	m.groups = out
	m.rebuildLabels()
	for i := range m.conState {
		st := &m.conState[i]
		if st.epoch != prev {
			continue // already stale; refit will rebuild it
		}
		ok := true
		for j, gi := range st.gidx {
			ni := remap[gi]
			if ni < 0 {
				ok = false
				break
			}
			st.gidx[j] = ni
		}
		if ok {
			st.epoch = m.epoch
		}
		// A partially remapped gidx is fine: the stale epoch forces a
		// full rebuild before the cache is read again.
	}
}

// ensureState (re)builds a constraint's dependency edges after a
// partition change: one fused label pass over the extension yields the
// per-group counts, from which the fully-inside groups follow. A rebuilt
// cache is never clean — the next sweep must apply the constraint.
func (m *Model) ensureState(c constraint, st *conState) {
	if st.epoch == m.epoch {
		return
	}
	m.gcScratch = m.CountByGroup(c.extension(), m.gcScratch)
	st.gidx = st.gidx[:0]
	total := 0
	for gi, g := range m.groups {
		if int(m.gcScratch[gi]) == g.Count {
			st.gidx = append(st.gidx, int32(gi))
			total += g.Count
		}
	}
	st.total = total
	if cap(st.stamps) < len(st.gidx) {
		st.stamps = make([]uint64, len(st.gidx))
	}
	st.stamps = st.stamps[:len(st.gidx)]
	st.clean = false
	st.epoch = m.epoch
}

// canSkip reports whether re-applying the constraint is provably a
// no-op: its last apply was a clean early return and none of its
// dependency groups changed since. Re-running apply on bit-identical
// inputs would recompute the bit-identical violation (≤ Tol/2) and
// early-return again, so the cached violation stands in for the call.
// The cached violation is re-checked against the *current* Tol so a
// caller tightening Model.Tol between commits invalidates stale clean
// flags instead of silently skipping now-violating constraints.
func (m *Model) canSkip(st *conState) bool {
	if m.noSkip || !st.clean || st.epoch != m.epoch || st.violation > m.Tol/2 {
		return false
	}
	for j, gi := range st.gidx {
		if m.groups[gi].version != st.stamps[j] {
			return false
		}
	}
	return true
}

// SubgroupMeanMarginal returns the marginal distribution of the subgroup
// mean statistic f_I(Y) under the current background model: its mean
// µ_I = Σ_{i∈I} µᵢ/|I| and covariance Σ_I = Σ_{i∈I} Σᵢ/|I|² (the
// covariance of a mean of |I| independent normals; see DESIGN.md §2 on
// the paper's missing 1/|I| factor). The extension need not align with
// group boundaries.
func (m *Model) SubgroupMeanMarginal(ext *bitset.Set) (mu mat.Vec, cov *mat.Dense, err error) {
	return subgroupMeanMarginal(m.groups, m.d, ext)
}

// GroupStats describes, for one parameter group intersecting an
// extension, the quantities the spread-pattern IC needs.
type GroupStats struct {
	Count     int     // points of the group inside the extension
	S         float64 // wᵀ·Σ_g·w
	MeanShift float64 // wᵀ·(center − µ_g)
}

// SpreadStats returns per-group statistics for the direction w and
// center (normally the subgroup mean ŷ_I): the projected variances
// wᵀΣw and mean shifts wᵀ(ŷ_I − µ). The extension need not align with
// group boundaries.
//
// The per-group intersection counts come from one fused trailing-zeros
// pass over ext via the dense labeling — O(n/64 + |I|) instead of one
// AND-popcount pass per group — and the projected variance is computed
// once per distinct Σ matrix (split siblings share Σ by pointer until a
// spread commit diverges them).
func (m *Model) SpreadStats(ext *bitset.Set, w, center mat.Vec) []GroupStats {
	return groupSpreadStats(m.groups, m.labels, ext, w, center)
}

// CountByGroup accumulates |ext ∩ group| for every group in one
// trailing-zeros pass over ext, writing into counts (reallocated when
// too small) and returning it. This is the fused sufficient-statistics
// kernel: cost O(n/64 + |ext|) regardless of the group count.
func (m *Model) CountByGroup(ext *bitset.Set, counts []int32) []int32 {
	return countByGroup(m.labels, len(m.groups), ext, counts)
}

// DistinctSigmaChols returns the Cholesky factorization shared by all
// groups when every group currently has an identical covariance matrix
// (true as long as only location patterns have been committed, since
// Theorem 1 leaves Σ untouched), and ok=false otherwise. The beam search
// uses this fast path to avoid a d³ factorization per candidate.
func (m *Model) DistinctSigmaChols() (chol *mat.Cholesky, ok bool, err error) {
	return distinctSigmaChols(m.groups)
}

// commitRestore holds the pointers a failed commit restores. Because
// commits fork before writing, "rollback" is just putting the old
// pointers back — the published version was never touched.
type commitRestore struct {
	groups []*Group
	labels []int32
}

// beginCommit forks the mutable state a commit writes into, leaving
// the state the published version references untouched: every group
// is copied with a fresh Mu (the coordinate descent mutates means in
// place) while member bitsets, covariances and Cholesky caches stay
// shared by pointer (never written in place anywhere), and the labels
// slice is copied because a split rebuilds it in place. This is the
// same work the old rollback snapshot did — COW inverts which copy
// becomes live, it does not add copies. Group order and version
// counters are preserved, so conState dependency caches and stamps
// remain valid across the fork and the incremental descent skips
// exactly what it would have skipped before.
func (m *Model) beginCommit() commitRestore {
	r := commitRestore{groups: m.groups, labels: m.labels}
	fresh := make([]*Group, len(m.groups))
	for i, g := range m.groups {
		fresh[i] = g.derive(g.Members, g.Count, g.Mu.Clone())
	}
	m.groups = fresh
	m.labels = append([]int32(nil), m.labels...)
	return r
}

// rollback restores the pre-commit pointers and drops the just-added
// constraint. The restored groups are the published version's objects
// while conState caches may have been remapped to the forked
// partition, so the epoch advances to invalidate every index-based
// cache.
func (m *Model) rollback(r commitRestore) {
	m.groups = r.groups
	m.labels = r.labels
	m.cons = m.cons[:len(m.cons)-1]
	if len(m.conState) > len(m.cons) {
		m.conState = m.conState[:len(m.cons)]
	}
	m.epoch++
}

// CommitLocation assimilates a location pattern: the user has been told
// that the subgroup with the given extension has target mean yhat. The
// model is updated per Theorem 1 and then coordinate descent re-enforces
// every stored constraint. Commits are transactional: on error the
// model is left exactly as it was. The update is built copy-on-write
// and published atomically, so snapshots taken before or during the
// commit keep reading the previous version.
func (m *Model) CommitLocation(ext *bitset.Set, yhat mat.Vec) error {
	if ext.Count() == 0 {
		return ErrNoPoints
	}
	if len(yhat) != m.d {
		return fmt.Errorf("background: location target has dim %d, want %d", len(yhat), m.d)
	}
	restore := m.beginCommit()
	m.split(ext)
	m.cons = append(m.cons, &locationConstraint{ext: ext.Clone(), target: yhat.Clone()})
	if err := m.refit(); err != nil {
		m.rollback(restore)
		return err
	}
	m.publish()
	return nil
}

// CommitSpread assimilates a spread pattern: the subgroup with the given
// extension has variance value along unit direction w, measured around
// center (its mean, which must already have been committed as a location
// pattern — the paper only ever shows spread patterns after location
// patterns). The model is updated per Theorem 2 and coordinate descent
// re-enforces every stored constraint.
func (m *Model) CommitSpread(ext *bitset.Set, w mat.Vec, center mat.Vec, value float64) error {
	if ext.Count() == 0 {
		return ErrNoPoints
	}
	if len(w) != m.d || len(center) != m.d {
		return fmt.Errorf("background: spread direction/center has wrong dim")
	}
	if value <= 0 {
		return fmt.Errorf("background: spread value must be positive, got %v", value)
	}
	nrm := w.Norm()
	if math.Abs(nrm-1) > 1e-8 {
		return fmt.Errorf("background: w must be a unit vector (norm %v)", nrm)
	}
	restore := m.beginCommit()
	m.split(ext)
	m.cons = append(m.cons, &spreadConstraint{
		ext: ext.Clone(), w: w.Clone(), center: center.Clone(), value: value,
	})
	if err := m.refit(); err != nil {
		m.rollback(restore)
		return err
	}
	m.publish()
	return nil
}

// refit runs the coordinate descent: cyclic I-projections onto each
// constraint until every expectation holds within Tol. Constraints whose
// dependency groups are unchanged since their last clean check are
// skipped — provably the same float trajectory as the full cyclic
// descent, at a fraction of the cost when committed extensions interact
// sparsely (the common regime: the paper commits patterns with limited
// overlap).
func (m *Model) refit() error {
	m.LastSweeps = 0
	for len(m.conState) < len(m.cons) {
		m.conState = append(m.conState, conState{})
	}
	m.conState = m.conState[:len(m.cons)]
	checkDeadline := !m.Deadline.IsZero()
	for sweep := 0; sweep < m.MaxSweeps; sweep++ {
		if checkDeadline && time.Now().After(m.Deadline) {
			return fmt.Errorf("%w after %d sweeps", ErrDeadline, sweep)
		}
		m.LastSweeps = sweep + 1
		var worst float64
		for ci, c := range m.cons {
			st := &m.conState[ci]
			m.ensureState(c, st)
			v := st.violation
			if !m.canSkip(st) {
				var err error
				v, err = c.apply(m, st)
				if err != nil {
					return err
				}
			}
			if v > worst {
				worst = v
			}
		}
		if worst <= m.Tol {
			return nil
		}
	}
	return fmt.Errorf("background: coordinate descent did not converge in %d sweeps", m.MaxSweeps)
}

// apply implements Theorem 1. With Σ̄_I = Σ_{i∈I} Σᵢ/|I| and
// µ̄_I = Σ_{i∈I} µᵢ/|I|, the I-projection sets
//
//	µᵢ ← µᵢ + Σᵢ·λ,  λ = Σ̄_I⁻¹ (ŷ_I − µ̄_I)
//
// for i ∈ I and leaves all covariances untouched.
//
// The violation check is hoisted ahead of every Σ-derived quantity: the
// satisfied path touches only the group means (per-model scratch, zero
// allocations). When all inside groups share one Σ by pointer — the
// common regime, since split never copies and Theorem 1 never diverges
// covariances — Σ̄_I = Σ exactly, so the update reuses the group's
// cached Cholesky factorization instead of accumulating Σ̄_I and
// factorizing it from scratch, and computes Σ·λ once instead of once
// per group.
func (c *locationConstraint) apply(m *Model, st *conState) (float64, error) {
	total := st.total
	if total == 0 {
		return 0, ErrNoPoints
	}
	sc := &m.scratch
	d := m.d
	groups := m.groups
	muBar := sc.vecZ(&sc.muBar, d)
	sig0 := groups[st.gidx[0]].Sigma
	shared := true
	ft := float64(total)
	for _, gi := range st.gidx {
		g := groups[gi]
		muBar.AddScaled(float64(g.Count)/ft, g.Mu)
		if g.Sigma != sig0 {
			shared = false
		}
	}
	resid := sc.vec(&sc.resid, d)
	var residMax, targetMax float64
	for j, t := range c.target {
		r := t - muBar[j]
		resid[j] = r
		if a := math.Abs(r); a > residMax {
			residMax = a
		}
		if a := math.Abs(t); a > targetMax {
			targetMax = a
		}
	}
	violation := residMax / (1 + targetMax)
	if violation <= m.Tol/2 {
		st.record(m, violation, true)
		return violation, nil
	}

	if shared {
		chol, err := groups[st.gidx[0]].Chol()
		if err != nil {
			return 0, fmt.Errorf("background: location update: %w", err)
		}
		lambda := chol.SolveInto(sc.vec(&sc.lambda, d), resid)
		sigLam := sig0.MulVecInto(sc.vec(&sc.sigLam, d), lambda)
		for _, gi := range st.gidx {
			g := groups[gi]
			g.Mu.AddScaled(1, sigLam)
			g.version++
		}
		st.record(m, violation, false)
		return violation, nil
	}

	if sc.sigmaBar == nil || sc.sigmaBar.R != d {
		sc.sigmaBar = mat.NewDense(d, d)
	}
	sigmaBar := sc.sigmaBar
	for i := range sigmaBar.Data {
		sigmaBar.Data[i] = 0
	}
	for _, gi := range st.gidx {
		g := groups[gi]
		sigmaBar.AddScaled(float64(g.Count)/ft, g.Sigma)
	}
	if err := sc.chol.Factor(sigmaBar); err != nil {
		return 0, fmt.Errorf("background: location update: %w", err)
	}
	lambda := sc.chol.SolveInto(sc.vec(&sc.lambda, d), resid)
	// Σ·λ once per distinct matrix: split siblings (and rolled-back
	// snapshots) share Σ by pointer, so consecutive distinct pointers
	// are rare and a pointer-keyed map indexes the flat scratch.
	if sc.sigIdx == nil {
		sc.sigIdx = make(map[*mat.Dense]int32)
	} else {
		clear(sc.sigIdx)
	}
	nsig := 0
	for _, gi := range st.gidx {
		g := groups[gi]
		si, ok := sc.sigIdx[g.Sigma]
		if !ok {
			si = int32(nsig)
			nsig++
			if cap(sc.sigLam) < nsig*d {
				grown := make(mat.Vec, 2*nsig*d)
				copy(grown, sc.sigLam) // keep the Σ·λ slots already filled
				sc.sigLam = grown
			}
			sc.sigLam = sc.sigLam[:cap(sc.sigLam)]
			g.Sigma.MulVecInto(sc.sigLam[int(si)*d:(int(si)+1)*d], lambda)
			sc.sigIdx[g.Sigma] = si
		}
		g.Mu.AddScaled(1, sc.sigLam[int(si)*d:(int(si)+1)*d])
		g.version++
	}
	st.record(m, violation, false)
	return violation, nil
}

// apply implements Theorem 2. With s_g = wᵀΣ_g w and b_g = wᵀ(ŷ_I−µ_g),
// the multiplier λ is the unique root of Eq. 12,
//
//	Σ_g c_g [ s_g/(1+λs_g) + b_g²/(1+λs_g)² ] = |I|·v̂ ,
//
// and each inside group is updated by Eqs. 10–11 (a Sherman–Morrison
// rank-1 precision update).
//
// The first pass computes only the scalars the violation needs — the
// projected variance wᵀΣw once per distinct Σ (found via a
// pointer-keyed index, not a linear scan) and the mean shifts — from
// per-model scratch, so the satisfied path allocates nothing. The Σ·w
// vectors and replacement matrices are built only when the constraint
// actually updates.
func (c *spreadConstraint) apply(m *Model, st *conState) (float64, error) {
	total := st.total
	if total == 0 {
		return 0, ErrNoPoints
	}
	sc := &m.scratch
	d := m.d
	if sc.sigIdx == nil {
		sc.sigIdx = make(map[*mat.Dense]int32)
	} else {
		clear(sc.sigIdx)
	}
	sigs := sc.sigs[:0]
	stats := sc.stats[:0]
	maxS := 0.0
	var lhs0 float64
	for _, gi := range st.gidx {
		g := m.groups[gi]
		si, ok := sc.sigIdx[g.Sigma]
		if !ok {
			s := g.Sigma.QuadForm(c.w)
			if s <= 0 {
				sc.sigs, sc.stats = sigs, stats
				return 0, fmt.Errorf("background: non-positive projected variance %v", s)
			}
			si = int32(len(sigs))
			sigs = append(sigs, sigStat{sigma: g.Sigma, s: s})
			sc.sigIdx[g.Sigma] = si
			if s > maxS {
				maxS = s
			}
		}
		var b float64
		for j, wj := range c.w {
			b += wj * (c.center[j] - g.Mu[j])
		}
		cnt := float64(g.Count)
		stats = append(stats, gstat{gi: gi, sig: si, s: sigs[si].s, b: b, count: cnt})
		lhs0 += cnt * (sigs[si].s + b*b)
	}
	sc.sigs, sc.stats = sigs, stats
	target := float64(total) * c.value
	violation := math.Abs(lhs0-target) / (float64(total) * (1 + c.value))
	if violation <= m.Tol/2 {
		st.record(m, violation, true)
		return violation, nil
	}

	// Mutating path: materialize Σ·w per distinct matrix (flat scratch,
	// d-strided) before solving for the multiplier.
	if cap(sc.sigW) < len(sigs)*d {
		sc.sigW = make(mat.Vec, len(sigs)*d)
	}
	sc.sigW = sc.sigW[:len(sigs)*d]
	for i := range sigs {
		sw := sc.sigW[i*d : (i+1)*d]
		sigs[i].sigma.MulVecInto(sw, c.w)
		sigs[i].sigmaW = sw
	}
	lhs := func(lambda float64) float64 {
		var sum float64
		for _, st := range stats {
			den := 1 + lambda*st.s
			sum += st.count * (st.s/den + st.b*st.b/(den*den))
		}
		return sum
	}

	// Bracket the root: lhs is strictly decreasing on (−1/maxS, ∞),
	// diverges to +∞ at the left end and decays to 0 at +∞.
	lo := -1/maxS + 1e-12/maxS
	for lhs(lo) < target { // squeeze toward the pole until lhs exceeds target
		lo = -1/maxS + (lo+1/maxS)/16
		if lo <= -1/maxS {
			return 0, fmt.Errorf("background: cannot bracket spread multiplier")
		}
	}
	hi := math.Max(1.0, -2*lo)
	for lhs(hi) > target {
		hi *= 2
		if hi > 1e18 {
			return 0, fmt.Errorf("background: spread multiplier diverged")
		}
	}
	// Bisection to machine-level tolerance.
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if lhs(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-15*(1+math.Abs(hi)) {
			break
		}
	}
	lambda := (lo + hi) / 2

	// Eq. 11 per distinct matrix: the update Σ ← Σ − λ·(Σw)(Σw)ᵀ/(1+λs)
	// depends only on Σ and w, so groups sharing a matrix get one shared
	// replacement (never an in-place write — snapshots, clones and split
	// siblings referencing the old matrix stay untouched).
	type sigUpdate struct {
		sigma *mat.Dense
		chol  *mat.Cholesky
	}
	updated := make([]sigUpdate, len(sigs))
	for i := range sigs {
		den := 1 + lambda*sigs[i].s
		next := sigs[i].sigma.Clone()
		next.AddOuterScaled(-lambda/den, sigs[i].sigmaW, sigs[i].sigmaW)
		next.Symmetrize()
		// Theorem 2 preserves positive definiteness in exact arithmetic
		// (1+λs > 0); extreme squeezes can still underflow numerically,
		// which must surface as an error (the commit rolls back), not as
		// a silently broken model.
		chol, err := mat.NewCholesky(next)
		if err != nil {
			return 0, fmt.Errorf("background: spread update made a covariance numerically singular: %w", err)
		}
		updated[i] = sigUpdate{sigma: next, chol: chol}
	}
	for _, gs := range stats {
		den := 1 + lambda*gs.s
		g := m.groups[gs.gi]
		// Eq. 10: µ ← µ + λ·wᵀ(ŷ_I−µ)·Σw/(1+λs).
		g.Mu.AddScaled(lambda*gs.b/den, sigs[gs.sig].sigmaW)
		g.Sigma = updated[gs.sig].sigma
		g.chol.Store(updated[gs.sig].chol)
		g.version++
	}
	st.record(m, violation, false)
	return violation, nil
}

// PointMean returns µᵢ for point i (for visualization/tests).
func (m *Model) PointMean(i int) mat.Vec {
	g := m.GroupOf(i)
	if g == nil {
		return nil
	}
	return g.Mu.Clone()
}

// PointCov returns Σᵢ for point i (for visualization/tests).
func (m *Model) PointCov(i int) *mat.Dense {
	g := m.GroupOf(i)
	if g == nil {
		return nil
	}
	return g.Sigma.Clone()
}

// ExpectedSpread returns E[g_I^w(Y)] under the current model for the
// given extension, direction and center:
// (1/|I|) Σ_{i∈I} [ wᵀΣᵢw + (wᵀ(µᵢ − center))² ].
func (m *Model) ExpectedSpread(ext *bitset.Set, w, center mat.Vec) (float64, error) {
	return expectedSpread(m.groups, ext, w, center)
}
