// Package background implements the FORSIED background distribution of
// §II-B of the paper: a product of independent multivariate normal
// distributions, one per data point, which starts as the MaxEnt
// distribution subject to the user's prior beliefs (a mean vector µ and
// covariance matrix Σ for every point, Eq. 3) and evolves as location
// and spread patterns are shown to the user (Eq. 4).
//
// Per-point parameters are stored once per group: the equivalence class
// of points that belong to exactly the same set of committed pattern
// extensions (footnote 2 of the paper: the number of distinct (µᵢ, Σᵢ)
// stays small). Committing a pattern splits the crossing groups and then
// runs the paper's coordinate descent — cyclic I-projections onto each
// stored constraint — until all expectation constraints hold.
package background

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/mat"
)

// ErrNoPoints is returned when an update is requested for an empty
// extension.
var ErrNoPoints = errors.New("background: empty extension")

// Group is a set of data points sharing background parameters.
type Group struct {
	Members *bitset.Set
	Count   int
	Mu      mat.Vec
	Sigma   *mat.Dense

	chol *mat.Cholesky // cache of Sigma's factorization; nil when stale
}

// Chol returns a cached Cholesky factorization of the group covariance.
func (g *Group) Chol() (*mat.Cholesky, error) {
	if g.chol == nil {
		c, err := mat.NewCholesky(g.Sigma)
		if err != nil {
			return nil, err
		}
		g.chol = c
	}
	return g.chol, nil
}

// constraint is one committed pattern, replayed during coordinate
// descent. Extensions always align with group boundaries because Commit*
// splits groups first.
type constraint interface {
	// apply performs the closed-form single-constraint I-projection and
	// returns the expectation violation before the update.
	apply(m *Model) (violation float64, err error)
}

// locationConstraint pins E[f_I(Y)] = target (Eq. 6).
type locationConstraint struct {
	ext    *bitset.Set
	target mat.Vec // ŷ_I
}

// spreadConstraint pins E[g_I^w(Y)] = value (Eq. 9), with the variance
// statistic centered at the (constant) subgroup mean ŷ_I.
type spreadConstraint struct {
	ext    *bitset.Set
	w      mat.Vec
	center mat.Vec // ŷ_I
	value  float64 // v̂
}

// Model is the background distribution.
type Model struct {
	n, d   int
	groups []*Group
	// labels is the dense per-point group labeling: labels[i] is the
	// index into groups of the group containing point i. It is the
	// sufficient statistic the fused scoring kernels key on — one
	// trailing-zeros walk over an extension accumulates per-group counts
	// without a bitset pass per group. Maintained by split (and restored
	// on commit rollback), so it is always consistent with groups.
	labels []int32
	// gcScratch is the reusable per-group count buffer of insideGroups
	// (commits are single-threaded, so one buffer per model suffices).
	gcScratch []int32
	cons      []constraint

	// Tol is the maximum allowed relative expectation violation after
	// Commit; the coordinate descent loops until all constraints hold
	// within Tol (violations are normalized by the constraint's scale).
	Tol float64
	// MaxSweeps bounds the coordinate descent; with disjoint extensions a
	// single sweep suffices (the projections are independent).
	MaxSweeps int

	// LastSweeps records how many coordinate descent sweeps the most
	// recent Commit used, for diagnostics and the Table II experiment.
	LastSweeps int
}

// New creates the initial MaxEnt background distribution p0: every point
// shares the prior mean mu and covariance sigma (Eq. 3). sigma must be
// symmetric positive definite.
func New(n int, mu mat.Vec, sigma *mat.Dense) (*Model, error) {
	if n <= 0 {
		return nil, fmt.Errorf("background: need n > 0, got %d", n)
	}
	d := len(mu)
	if sigma.R != d || sigma.C != d {
		return nil, fmt.Errorf("background: sigma is %dx%d for %d-dim mean",
			sigma.R, sigma.C, d)
	}
	if _, err := mat.NewCholesky(sigma); err != nil {
		return nil, fmt.Errorf("background: prior covariance: %w", err)
	}
	g := &Group{
		Members: bitset.Full(n),
		Count:   n,
		Mu:      mu.Clone(),
		Sigma:   sigma.Clone(),
	}
	return &Model{
		n:         n,
		d:         d,
		groups:    []*Group{g},
		labels:    make([]int32, n),
		Tol:       1e-8,
		MaxSweeps: 5000,
	}, nil
}

// N returns the number of data points.
func (m *Model) N() int { return m.n }

// D returns the target dimensionality.
func (m *Model) D() int { return m.d }

// NumGroups returns the current number of parameter groups.
func (m *Model) NumGroups() int { return len(m.groups) }

// NumConstraints returns the number of committed patterns.
func (m *Model) NumConstraints() int { return len(m.cons) }

// Groups exposes the parameter groups for read-only inspection.
func (m *Model) Groups() []*Group { return m.groups }

// Labels exposes the per-point group labeling: Labels()[i] indexes
// Groups() at the group containing point i. Callers must treat the
// slice as read-only; it is invalidated by the next Commit*.
func (m *Model) Labels() []int32 { return m.labels }

// rebuildLabels recomputes the dense labeling from the group partition.
// Groups partition the points, so the total work is one trailing-zeros
// walk over n bits regardless of the group count.
func (m *Model) rebuildLabels() {
	if len(m.labels) != m.n {
		m.labels = make([]int32, m.n)
	}
	for gi, g := range m.groups {
		id := int32(gi)
		for wi, w := range g.Members.Words() {
			base := wi * 64
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				m.labels[base+b] = id
			}
		}
	}
}

// Clone returns a deep copy of the model (used by what-if scoring).
func (m *Model) Clone() *Model {
	out := &Model{
		n: m.n, d: m.d,
		Tol:       m.Tol,
		MaxSweeps: m.MaxSweeps,
	}
	out.groups = make([]*Group, len(m.groups))
	for i, g := range m.groups {
		// Sigma (and its factorization cache) is shared, not copied:
		// covariance matrices are never mutated in place — a spread
		// update replaces the matrix wholesale (see spreadConstraint.
		// apply) — so sharing is safe and keeps Clone O(groups·d) for
		// the location-only regime where Theorem 1 leaves Σ untouched.
		out.groups[i] = &Group{
			Members: g.Members.Clone(),
			Count:   g.Count,
			Mu:      g.Mu.Clone(),
			Sigma:   g.Sigma,
			chol:    g.chol,
		}
	}
	out.labels = append([]int32(nil), m.labels...)
	out.cons = append([]constraint(nil), m.cons...)
	return out
}

// GroupOf returns the group containing point i, resolved through the
// dense labeling in O(1).
func (m *Model) GroupOf(i int) *Group {
	if i < 0 || i >= m.n {
		return nil
	}
	return m.groups[m.labels[i]]
}

// split refines the partition so every group is fully inside or outside
// ext, and rebuilds the dense labeling to match. The two halves of a
// split group share the parent's Sigma (and factorization cache) — a
// location commit never touches covariances (Theorem 1), and a spread
// commit replaces matrices instead of mutating them, so the halves stay
// correct with zero d×d copies until a spread update actually diverges
// them.
func (m *Model) split(ext *bitset.Set) {
	var out []*Group
	for _, g := range m.groups {
		in := g.Members.And(ext)
		ic := in.Count()
		if ic == 0 || ic == g.Count {
			out = append(out, g)
			continue
		}
		outside := g.Members.AndNot(ext)
		out = append(out,
			&Group{Members: in, Count: ic, Mu: g.Mu.Clone(), Sigma: g.Sigma, chol: g.chol},
			&Group{Members: outside, Count: g.Count - ic, Mu: g.Mu.Clone(), Sigma: g.Sigma, chol: g.chol},
		)
	}
	m.groups = out
	m.rebuildLabels()
}

// insideGroups returns the groups fully contained in ext, assuming split
// has aligned the partition, along with the total point count. One
// fused label pass over ext replaces the former per-group walk (a full
// ForEach scan for the first member plus an AND-popcount pass per
// group), so constraint replay during coordinate descent costs
// O(n/64 + |ext| + #groups) per constraint instead of
// O(#groups · n/64).
func (m *Model) insideGroups(ext *bitset.Set) ([]*Group, int) {
	m.gcScratch = m.CountByGroup(ext, m.gcScratch)
	var gs []*Group
	total := 0
	for gi, g := range m.groups {
		if int(m.gcScratch[gi]) == g.Count {
			gs = append(gs, g)
			total += g.Count
		}
	}
	return gs, total
}

// SubgroupMeanMarginal returns the marginal distribution of the subgroup
// mean statistic f_I(Y) under the current background model: its mean
// µ_I = Σ_{i∈I} µᵢ/|I| and covariance Σ_I = Σ_{i∈I} Σᵢ/|I|² (the
// covariance of a mean of |I| independent normals; see DESIGN.md §2 on
// the paper's missing 1/|I| factor). The extension need not align with
// group boundaries.
func (m *Model) SubgroupMeanMarginal(ext *bitset.Set) (mu mat.Vec, cov *mat.Dense, err error) {
	cnt := ext.Count()
	if cnt == 0 {
		return nil, nil, ErrNoPoints
	}
	mu = make(mat.Vec, m.d)
	cov = mat.NewDense(m.d, m.d)
	for _, g := range m.groups {
		ic := g.Members.IntersectCount(ext)
		if ic == 0 {
			continue
		}
		w := float64(ic)
		mu.AddScaled(w, g.Mu)
		cov.AddScaled(w, g.Sigma)
	}
	mu.Scale(1 / float64(cnt))
	cov.Scale(1 / float64(cnt*cnt))
	return mu, cov, nil
}

// GroupStats describes, for one parameter group intersecting an
// extension, the quantities the spread-pattern IC needs.
type GroupStats struct {
	Count     int     // points of the group inside the extension
	S         float64 // wᵀ·Σ_g·w
	MeanShift float64 // wᵀ·(center − µ_g)
}

// SpreadStats returns per-group statistics for the direction w and
// center (normally the subgroup mean ŷ_I): the projected variances
// wᵀΣw and mean shifts wᵀ(ŷ_I − µ). The extension need not align with
// group boundaries.
//
// The per-group intersection counts come from one fused trailing-zeros
// pass over ext via the dense labeling — O(n/64 + |I|) instead of one
// AND-popcount pass per group — and the projected variance is computed
// once per distinct Σ matrix (split siblings share Σ by pointer until a
// spread commit diverges them).
func (m *Model) SpreadStats(ext *bitset.Set, w, center mat.Vec) []GroupStats {
	counts := m.CountByGroup(ext, nil)
	var out []GroupStats
	var prevSigma *mat.Dense
	var prevS float64
	for gi, g := range m.groups {
		ic := counts[gi]
		if ic == 0 {
			continue
		}
		if g.Sigma != prevSigma {
			prevSigma = g.Sigma
			prevS = w.Dot(g.Sigma.MulVec(w))
		}
		out = append(out, GroupStats{
			Count:     int(ic),
			S:         prevS,
			MeanShift: w.Dot(center.Sub(g.Mu)),
		})
	}
	return out
}

// CountByGroup accumulates |ext ∩ group| for every group in one
// trailing-zeros pass over ext, writing into counts (reallocated when
// too small) and returning it. This is the fused sufficient-statistics
// kernel: cost O(n/64 + |ext|) regardless of the group count.
func (m *Model) CountByGroup(ext *bitset.Set, counts []int32) []int32 {
	if cap(counts) < len(m.groups) {
		counts = make([]int32, len(m.groups))
	} else {
		counts = counts[:len(m.groups)]
		for i := range counts {
			counts[i] = 0
		}
	}
	labels := m.labels
	for wi, w := range ext.Words() {
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			counts[labels[base+b]]++
		}
	}
	return counts
}

// DistinctSigmaChols returns the Cholesky factorization shared by all
// groups when every group currently has an identical covariance matrix
// (true as long as only location patterns have been committed, since
// Theorem 1 leaves Σ untouched), and ok=false otherwise. The beam search
// uses this fast path to avoid a d³ factorization per candidate.
func (m *Model) DistinctSigmaChols() (chol *mat.Cholesky, ok bool, err error) {
	if len(m.groups) == 0 {
		return nil, false, nil
	}
	first := m.groups[0]
	for _, g := range m.groups[1:] {
		// Location-only models share one Σ by pointer (split never
		// copies), so the common case is a pointer compare; the value
		// compare remains for matrices that are equal but distinct.
		if g.Sigma != first.Sigma && g.Sigma.MaxAbsDiff(first.Sigma) > 0 {
			return nil, false, nil
		}
	}
	c, err := first.Chol()
	if err != nil {
		return nil, false, err
	}
	return c, true, nil
}

// snapshotGroups copies the current group parameters so a failed commit
// can be rolled back. Only Mu needs a deep copy: the coordinate descent
// mutates means in place, but member bitsets are never mutated after
// construction and covariance matrices are replaced (never written)
// by spread updates, so both are shared with the live groups.
func (m *Model) snapshotGroups() []*Group {
	out := make([]*Group, len(m.groups))
	for i, g := range m.groups {
		out[i] = &Group{
			Members: g.Members,
			Count:   g.Count,
			Mu:      g.Mu.Clone(),
			Sigma:   g.Sigma,
			chol:    g.chol,
		}
	}
	return out
}

// CommitLocation assimilates a location pattern: the user has been told
// that the subgroup with the given extension has target mean yhat. The
// model is updated per Theorem 1 and then coordinate descent re-enforces
// every stored constraint. Commits are transactional: on error the
// model is left exactly as it was.
func (m *Model) CommitLocation(ext *bitset.Set, yhat mat.Vec) error {
	if ext.Count() == 0 {
		return ErrNoPoints
	}
	if len(yhat) != m.d {
		return fmt.Errorf("background: location target has dim %d, want %d", len(yhat), m.d)
	}
	saved := m.snapshotGroups()
	savedLabels := append([]int32(nil), m.labels...)
	m.split(ext)
	m.cons = append(m.cons, &locationConstraint{ext: ext.Clone(), target: yhat.Clone()})
	if err := m.refit(); err != nil {
		m.groups = saved
		m.labels = savedLabels
		m.cons = m.cons[:len(m.cons)-1]
		return err
	}
	return nil
}

// CommitSpread assimilates a spread pattern: the subgroup with the given
// extension has variance value along unit direction w, measured around
// center (its mean, which must already have been committed as a location
// pattern — the paper only ever shows spread patterns after location
// patterns). The model is updated per Theorem 2 and coordinate descent
// re-enforces every stored constraint.
func (m *Model) CommitSpread(ext *bitset.Set, w mat.Vec, center mat.Vec, value float64) error {
	if ext.Count() == 0 {
		return ErrNoPoints
	}
	if len(w) != m.d || len(center) != m.d {
		return fmt.Errorf("background: spread direction/center has wrong dim")
	}
	if value <= 0 {
		return fmt.Errorf("background: spread value must be positive, got %v", value)
	}
	nrm := w.Norm()
	if math.Abs(nrm-1) > 1e-8 {
		return fmt.Errorf("background: w must be a unit vector (norm %v)", nrm)
	}
	saved := m.snapshotGroups()
	savedLabels := append([]int32(nil), m.labels...)
	m.split(ext)
	m.cons = append(m.cons, &spreadConstraint{
		ext: ext.Clone(), w: w.Clone(), center: center.Clone(), value: value,
	})
	if err := m.refit(); err != nil {
		m.groups = saved
		m.labels = savedLabels
		m.cons = m.cons[:len(m.cons)-1]
		return err
	}
	return nil
}

// refit runs the coordinate descent: cyclic I-projections onto each
// constraint until every expectation holds within Tol.
func (m *Model) refit() error {
	m.LastSweeps = 0
	for sweep := 0; sweep < m.MaxSweeps; sweep++ {
		m.LastSweeps = sweep + 1
		var worst float64
		for _, c := range m.cons {
			v, err := c.apply(m)
			if err != nil {
				return err
			}
			if v > worst {
				worst = v
			}
		}
		if worst <= m.Tol {
			return nil
		}
	}
	return fmt.Errorf("background: coordinate descent did not converge in %d sweeps", m.MaxSweeps)
}

// apply implements Theorem 1. With Σ̄_I = Σ_{i∈I} Σᵢ/|I| and
// µ̄_I = Σ_{i∈I} µᵢ/|I|, the I-projection sets
//
//	µᵢ ← µᵢ + Σᵢ·λ,  λ = Σ̄_I⁻¹ (ŷ_I − µ̄_I)
//
// for i ∈ I and leaves all covariances untouched.
func (c *locationConstraint) apply(m *Model) (float64, error) {
	gs, total := m.insideGroups(c.ext)
	if total == 0 {
		return 0, ErrNoPoints
	}
	muBar := make(mat.Vec, m.d)
	sigmaBar := mat.NewDense(m.d, m.d)
	for _, g := range gs {
		w := float64(g.Count) / float64(total)
		muBar.AddScaled(w, g.Mu)
		sigmaBar.AddScaled(w, g.Sigma)
	}
	resid := c.target.Sub(muBar)
	violation := maxAbs(resid) / (1 + maxAbs(c.target))
	if violation <= m.Tol/2 {
		return violation, nil
	}
	lambda, err := mat.SolveSPD(sigmaBar, resid)
	if err != nil {
		return 0, fmt.Errorf("background: location update: %w", err)
	}
	for _, g := range gs {
		g.Mu.AddScaled(1, g.Sigma.MulVec(lambda))
	}
	return violation, nil
}

// apply implements Theorem 2. With s_g = wᵀΣ_g w and b_g = wᵀ(ŷ_I−µ_g),
// the multiplier λ is the unique root of Eq. 12,
//
//	Σ_g c_g [ s_g/(1+λs_g) + b_g²/(1+λs_g)² ] = |I|·v̂ ,
//
// and each inside group is updated by Eqs. 10–11 (a Sherman–Morrison
// rank-1 precision update).
func (c *spreadConstraint) apply(m *Model) (float64, error) {
	gs, total := m.insideGroups(c.ext)
	if total == 0 {
		return 0, ErrNoPoints
	}
	// Split halves (and rolled-back snapshots) share Σ by pointer until a
	// spread update diverges them, so the Σ-derived quantities — the
	// projected variance s = wᵀΣw, the vector Σw, and the updated matrix
	// itself — are computed once per distinct matrix, not once per group.
	type sigStat struct {
		sigma  *mat.Dense
		sigmaW mat.Vec
		s      float64
	}
	var sigs []sigStat
	type gstat struct {
		g     *Group
		sig   int // index into sigs
		s, b  float64
		count float64
	}
	stats := make([]gstat, len(gs))
	maxS := 0.0
	for i, g := range gs {
		si := -1
		for j := range sigs {
			if sigs[j].sigma == g.Sigma {
				si = j
				break
			}
		}
		if si < 0 {
			sw := g.Sigma.MulVec(c.w)
			s := c.w.Dot(sw)
			if s <= 0 {
				return 0, fmt.Errorf("background: non-positive projected variance %v", s)
			}
			sigs = append(sigs, sigStat{sigma: g.Sigma, sigmaW: sw, s: s})
			si = len(sigs) - 1
			if s > maxS {
				maxS = s
			}
		}
		stats[i] = gstat{g: g, sig: si, s: sigs[si].s,
			b: c.w.Dot(c.center.Sub(g.Mu)), count: float64(g.Count)}
	}
	target := float64(total) * c.value
	lhs := func(lambda float64) float64 {
		var sum float64
		for _, st := range stats {
			den := 1 + lambda*st.s
			sum += st.count * (st.s/den + st.b*st.b/(den*den))
		}
		return sum
	}
	violation := math.Abs(lhs(0)-target) / (float64(total) * (1 + c.value))
	if violation <= m.Tol/2 {
		return violation, nil
	}

	// Bracket the root: lhs is strictly decreasing on (−1/maxS, ∞),
	// diverges to +∞ at the left end and decays to 0 at +∞.
	lo := -1/maxS + 1e-12/maxS
	for lhs(lo) < target { // squeeze toward the pole until lhs exceeds target
		lo = -1/maxS + (lo+1/maxS)/16
		if lo <= -1/maxS {
			return 0, fmt.Errorf("background: cannot bracket spread multiplier")
		}
	}
	hi := math.Max(1.0, -2*lo)
	for lhs(hi) > target {
		hi *= 2
		if hi > 1e18 {
			return 0, fmt.Errorf("background: spread multiplier diverged")
		}
	}
	// Bisection to machine-level tolerance.
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if lhs(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-15*(1+math.Abs(hi)) {
			break
		}
	}
	lambda := (lo + hi) / 2

	// Eq. 11 per distinct matrix: the update Σ ← Σ − λ·(Σw)(Σw)ᵀ/(1+λs)
	// depends only on Σ and w, so groups sharing a matrix get one shared
	// replacement (never an in-place write — snapshots, clones and split
	// siblings referencing the old matrix stay untouched).
	type sigUpdate struct {
		sigma *mat.Dense
		chol  *mat.Cholesky
	}
	updated := make([]sigUpdate, len(sigs))
	for i := range sigs {
		den := 1 + lambda*sigs[i].s
		next := sigs[i].sigma.Clone()
		next.AddOuterScaled(-lambda/den, sigs[i].sigmaW, sigs[i].sigmaW)
		next.Symmetrize()
		// Theorem 2 preserves positive definiteness in exact arithmetic
		// (1+λs > 0); extreme squeezes can still underflow numerically,
		// which must surface as an error (the commit rolls back), not as
		// a silently broken model.
		chol, err := mat.NewCholesky(next)
		if err != nil {
			return 0, fmt.Errorf("background: spread update made a covariance numerically singular: %w", err)
		}
		updated[i] = sigUpdate{sigma: next, chol: chol}
	}
	for _, st := range stats {
		den := 1 + lambda*st.s
		// Eq. 10: µ ← µ + λ·wᵀ(ŷ_I−µ)·Σw/(1+λs).
		st.g.Mu.AddScaled(lambda*st.b/den, sigs[st.sig].sigmaW)
		st.g.Sigma = updated[st.sig].sigma
		st.g.chol = updated[st.sig].chol
	}
	return violation, nil
}

func maxAbs(v mat.Vec) float64 {
	var mx float64
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// PointMean returns µᵢ for point i (for visualization/tests).
func (m *Model) PointMean(i int) mat.Vec {
	g := m.GroupOf(i)
	if g == nil {
		return nil
	}
	return g.Mu.Clone()
}

// PointCov returns Σᵢ for point i (for visualization/tests).
func (m *Model) PointCov(i int) *mat.Dense {
	g := m.GroupOf(i)
	if g == nil {
		return nil
	}
	return g.Sigma.Clone()
}

// ExpectedSpread returns E[g_I^w(Y)] under the current model for the
// given extension, direction and center:
// (1/|I|) Σ_{i∈I} [ wᵀΣᵢw + (wᵀ(µᵢ − center))² ].
func (m *Model) ExpectedSpread(ext *bitset.Set, w, center mat.Vec) (float64, error) {
	cnt := ext.Count()
	if cnt == 0 {
		return 0, ErrNoPoints
	}
	var sum float64
	for _, g := range m.groups {
		ic := g.Members.IntersectCount(ext)
		if ic == 0 {
			continue
		}
		s := g.Sigma.QuadForm(w)
		b := w.Dot(g.Mu.Sub(center))
		sum += float64(ic) * (s + b*b)
	}
	return sum / float64(cnt), nil
}
