package core

import (
	"bytes"
	"testing"

	"repro/internal/background"
	"repro/internal/gen"
)

// TestMinerRestoreRoundTrip checks that a miner restored from a saved
// model snapshot mines exactly what the original miner would have.
func TestMinerRestoreRoundTrip(t *testing.T) {
	ds := gen.Synthetic620(620).DS
	cfg := Config{}
	cfg.Search.MaxDepth = 2
	m, err := NewMiner(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(false); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Model.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}

	restoredModel, err := background.LoadJSONExact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMiner(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(restoredModel, m.Iteration()); err != nil {
		t.Fatal(err)
	}
	if m2.Iteration() != 1 {
		t.Fatalf("iteration = %d", m2.Iteration())
	}

	wantLoc, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	gotLoc, _, err := m2.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	if wantLoc.Intention.Format(ds) != gotLoc.Intention.Format(ds) {
		t.Fatalf("restored miner found %s, original %s",
			gotLoc.Intention.Format(ds), wantLoc.Intention.Format(ds))
	}
	if wantLoc.SI != gotLoc.SI || wantLoc.IC != gotLoc.IC {
		t.Fatalf("restored scores differ: SI %v vs %v", gotLoc.SI, wantLoc.SI)
	}

	// Dimension mismatch is rejected.
	other := gen.CrimeLike(1).DS
	mo, err := NewMiner(other, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mo.Restore(restoredModel, 1); err == nil {
		t.Fatal("restore accepted a model with mismatched dimensions")
	}
}
