package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/si"
)

func synMiner(t *testing.T) (*Miner, *gen.Synthetic) {
	t.Helper()
	syn := gen.Synthetic620(gen.SeedSynthetic)
	m, err := NewMiner(syn.DS, Config{
		SI:     si.Params{Gamma: 0.5, Eta: 1}, // the Table I setting
		Search: search.Params{MaxDepth: 3},
	})
	if err != nil {
		t.Fatalf("NewMiner: %v", err)
	}
	return m, syn
}

// clusterOfExtension returns which embedded cluster (if any) the
// extension matches exactly.
func clusterOfExtension(syn *gen.Synthetic, ext interface{ Contains(int) bool }, size int) int {
	for c, idx := range syn.Clusters {
		if len(idx) != size {
			continue
		}
		all := true
		for _, i := range idx {
			if !ext.Contains(i) {
				all = false
				break
			}
		}
		if all {
			return c
		}
	}
	return -1
}

func TestIterativeMiningRecoversEmbeddedClusters(t *testing.T) {
	m, syn := synMiner(t)
	found := map[int]bool{}
	for iter := 0; iter < 3; iter++ {
		res, err := m.Step(true)
		if err != nil {
			t.Fatalf("Step %d: %v", iter, err)
		}
		loc := res.Location
		if loc.Size() != 40 {
			t.Fatalf("iteration %d: top pattern size %d, want 40 (%s)",
				iter, loc.Size(), loc.Intention.Format(m.DS))
		}
		c := clusterOfExtension(syn, loc.Extension, loc.Size())
		if c < 0 {
			t.Fatalf("iteration %d: top pattern is not an embedded cluster: %s",
				iter, loc.Intention.Format(m.DS))
		}
		if found[c] {
			t.Fatalf("iteration %d: cluster %d found twice — background update failed", iter, c)
		}
		found[c] = true
		// The spread direction must recover one of the planted principal
		// axes (main or cross — they are orthogonal). Under the SI
		// measure the deflated cross direction is the more surprising
		// one here, since the χ² density collapses much faster in its
		// left tail than in its right.
		sp := res.Spread
		if sp == nil {
			t.Fatal("no spread pattern")
		}
		main := syn.Directions[c]
		cross := mat.Vec{-main[1], main[0]}
		dot := math.Max(math.Abs(sp.W.Dot(main)), math.Abs(sp.W.Dot(cross)))
		if dot < 0.9 {
			t.Errorf("iteration %d: spread direction overlaps no planted axis (%v)", iter, dot)
		}
	}
	if len(found) != 3 {
		t.Fatalf("recovered %d distinct clusters, want 3", len(found))
	}
	if m.Iteration() != 3 {
		t.Fatalf("Iteration() = %d", m.Iteration())
	}
}

func TestSICollapsesAfterCommit(t *testing.T) {
	m, _ := synMiner(t)
	loc, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	before := loc.SI
	if before < 10 {
		t.Fatalf("top SI suspiciously low: %v", before)
	}
	if err := m.CommitLocation(loc); err != nil {
		t.Fatal(err)
	}
	re, err := m.ScoreLocationIntention(loc.Intention)
	if err != nil {
		t.Fatal(err)
	}
	if re.SI > 1 {
		t.Fatalf("SI after commit = %v, want collapse toward <=~0", re.SI)
	}
	if re.SI >= before {
		t.Fatalf("SI did not drop: %v -> %v", before, re.SI)
	}
}

func TestIntentionEquivalentPatternsShareIC(t *testing.T) {
	// Table I property: a4='0' ∧ a3='1' has the same extension as
	// a3='1', hence the same IC and a lower SI (higher DL).
	m, _ := synMiner(t)
	a3 := pattern.Intention{{Attr: 0, Op: pattern.EQ, Level: 1}}
	a3a4 := pattern.Intention{
		{Attr: 0, Op: pattern.EQ, Level: 1},
		{Attr: 1, Op: pattern.EQ, Level: 0},
	}
	p1, err := m.ScoreLocationIntention(a3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.ScoreLocationIntention(a3a4)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Extension.Equal(p2.Extension) {
		t.Fatal("test premise broken: extensions differ")
	}
	if math.Abs(p1.IC-p2.IC) > 1e-9 {
		t.Fatalf("equal extensions, different IC: %v vs %v", p1.IC, p2.IC)
	}
	if p2.SI >= p1.SI {
		t.Fatalf("longer description must lower SI: %v vs %v", p2.SI, p1.SI)
	}
	// And the exact DL ratio must hold (γ=0.5, η=1): 1.5 vs 2.0.
	if math.Abs(p1.SI*1.5-p2.SI*2.0) > 1e-9 {
		t.Fatalf("SI·DL inconsistent: %v vs %v", p1.SI*1.5, p2.SI*2.0)
	}
}

func TestExplainLocationRanksByIC(t *testing.T) {
	m, _ := synMiner(t)
	loc, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := m.ExplainLocation(loc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) != 2 {
		t.Fatalf("explanations = %d", len(ex))
	}
	if ex[0].IC < ex[1].IC {
		t.Fatal("explanations not sorted by IC")
	}
	for _, e := range ex {
		if e.CI95Lo >= e.CI95Hi {
			t.Fatalf("degenerate CI for %s", e.Target)
		}
		if e.Target != "attr1" && e.Target != "attr2" {
			t.Fatalf("unknown target %q", e.Target)
		}
	}
}

func TestNewMinerEmpiricalPrior(t *testing.T) {
	syn := gen.Synthetic620(1)
	m, err := NewMiner(syn.DS, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Prior mean must equal the empirical mean: full data scores IC via a
	// zero Mahalanobis term.
	full := pattern.Intention(nil).Extension(syn.DS)
	muI, _, err := m.Model.SubgroupMeanMarginal(full)
	if err != nil {
		t.Fatal(err)
	}
	emp := pattern.SubgroupMean(syn.DS.Y, full)
	if muI.Sub(emp).Norm() > 1e-9 {
		t.Fatalf("prior mean %v != empirical %v", muI, emp)
	}
}

func TestNewMinerExplicitPrior(t *testing.T) {
	syn := gen.Synthetic620(2)
	mu := mat.Vec{5, 5}
	m, err := NewMiner(syn.DS, Config{PriorMean: mu, PriorCov: mat.Eye(2)})
	if err != nil {
		t.Fatal(err)
	}
	// With a far-off prior the full dataset itself is very surprising.
	loc, err := m.ScoreLocationIntention(pattern.Intention{{Attr: 3, Op: pattern.EQ, Level: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if loc.SI < 100 {
		t.Fatalf("SI vs far prior = %v, expected huge", loc.SI)
	}
}

func TestNewMinerRidgeRescuesDegenerateCovariance(t *testing.T) {
	// Two identical target columns → singular empirical covariance.
	n := 50
	y := mat.NewDense(n, 2)
	for i := 0; i < n; i++ {
		v := float64(i%7) - 3
		y.Set(i, 0, v)
		y.Set(i, 1, v)
	}
	flag := make([]float64, n)
	for i := 0; i < 10; i++ {
		flag[i] = 1
	}
	ds := &dataset.Dataset{
		Descriptors: []dataset.Column{
			{Name: "f", Kind: dataset.Binary, Values: flag, Levels: []string{"0", "1"}},
		},
		TargetNames: []string{"y1", "y2"},
		Y:           y,
	}
	if _, err := NewMiner(ds, Config{Ridge: 1e-6}); err != nil {
		t.Fatalf("ridge fallback failed: %v", err)
	}
}

func TestMineSpreadOnCommittedLocation(t *testing.T) {
	m, syn := synMiner(t)
	loc, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CommitLocation(loc); err != nil {
		t.Fatal(err)
	}
	sp, err := m.MineSpread(loc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.W.Norm()-1) > 1e-9 {
		t.Fatalf("spread direction not unit: %v", sp.W.Norm())
	}
	if sp.Variance <= 0 {
		t.Fatalf("spread variance = %v", sp.Variance)
	}
	if sp.DL != m.Cfg.SI.DL(len(loc.Intention), true) {
		t.Fatal("spread DL wrong")
	}
	// Committing the spread keeps the model consistent.
	if err := m.CommitSpread(sp); err != nil {
		t.Fatal(err)
	}
	got, err := m.Model.ExpectedSpread(sp.Extension, sp.W, sp.Center)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-sp.Variance) > 1e-7 {
		t.Fatalf("model E[g]=%v, committed %v", got, sp.Variance)
	}
	_ = syn
}
