// Package core implements the paper's primary contribution end to end:
// the iterative, subjectively interesting subgroup discovery loop of
// Problem 1. A Miner owns a dataset and an evolving FORSIED background
// model; each iteration finds the location pattern with maximal SI by
// beam search, optionally finds the most informative spread direction
// for it by gradient ascent on the unit sphere (the two-step procedure
// of §II-D), and commits the shown patterns back into the background
// model so subsequent iterations surface non-redundant patterns.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/background"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/si"
	"repro/internal/spreadopt"
	"repro/internal/stats"
)

// Config bundles all mining parameters. Zero values are completed with
// the paper's defaults.
type Config struct {
	// SI holds the description length coefficients (γ, η).
	SI si.Params
	// Search configures the beam (width 40, depth 4, top-150, 4 split
	// points — the paper's Cortana settings) and the evaluation-engine
	// options threaded through to internal/engine: Parallelism bounds
	// the scoring workers (and scratch bitsets) per search, Deadline
	// caps each search's wall time.
	Search search.Params
	// Spread configures the direction optimizer.
	Spread spreadopt.Params
	// PriorMean/PriorCov override the initial background beliefs; when
	// nil the empirical mean and covariance of the targets are used, as
	// in all the paper's experiments.
	PriorMean mat.Vec
	PriorCov  *mat.Dense
	// Ridge is added to the prior covariance diagonal if it is not
	// positive definite (e.g. a constant target column).
	Ridge float64
}

func (c Config) withDefaults() Config {
	if c.SI == (si.Params{}) {
		c.SI = si.Default()
	}
	if c.Ridge <= 0 {
		c.Ridge = 1e-8
	}
	return c
}

// Miner is the iterative subgroup discovery engine.
//
// Concurrency: the mutating methods (Commit*, Step, Reset, Restore)
// belong to a single writer, but any number of goroutines may mine
// concurrently with that writer by pinning a published model version:
// Snapshot returns the current immutable *background.ModelVersion and
// the *At methods (MineAt, MineSpreadAt, ExplainLocationAt, ForkAt)
// evaluate against the version they are given, never touching the
// live model. A mine against a version is byte-identical regardless
// of concurrent commits.
type Miner struct {
	DS    *dataset.Dataset
	Model *background.Model
	Cfg   Config

	// iteration counts committed mining iterations; atomic so Iteration
	// stays readable while a commit is in flight on the writer.
	iteration atomic.Int64
}

// ErrNoPattern is returned when the search yields no scoreable pattern.
var ErrNoPattern = errors.New("core: no pattern found")

// NewMiner builds a miner whose initial background distribution is the
// MaxEnt model matching the prior mean and covariance (empirical values
// of the full data unless overridden in cfg).
func NewMiner(ds *dataset.Dataset, cfg Config) (*Miner, error) {
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg = cfg.withDefaults()
	mu := cfg.PriorMean
	if mu == nil {
		mu = stats.MeanVec(ds.Y, nil)
	}
	cov := cfg.PriorCov
	if cov == nil {
		cov = stats.CovMat(ds.Y, nil)
	}
	if len(mu) != ds.Dy() || cov.R != ds.Dy() {
		return nil, fmt.Errorf("core: prior dimensions do not match %d targets", ds.Dy())
	}
	model, err := background.New(ds.N(), mu, cov)
	if err != nil {
		// Degenerate empirical covariance: regularize with a ridge.
		ridged := cov.Clone()
		for i := 0; i < ridged.R; i++ {
			ridged.Set(i, i, ridged.At(i, i)+cfg.Ridge)
		}
		model, err = background.New(ds.N(), mu, ridged)
		if err != nil {
			return nil, fmt.Errorf("core: prior covariance unusable: %w", err)
		}
	}
	return &Miner{DS: ds, Model: model, Cfg: cfg}, nil
}

// Iteration returns the number of committed mining iterations. Safe
// for concurrent callers.
func (m *Miner) Iteration() int { return int(m.iteration.Load()) }

// Snapshot returns the most recently published immutable version of
// the miner's background model. Safe for concurrent callers; pass the
// result to the *At methods to mine against a pinned belief state.
func (m *Miner) Snapshot() *background.ModelVersion { return m.Model.Snapshot() }

// Reset discards every committed pattern and restores the initial
// belief state (the same prior the miner was constructed with), so an
// interactive session can start over without rebuilding the miner.
func (m *Miner) Reset() error {
	fresh, err := NewMiner(m.DS, m.Cfg)
	if err != nil {
		return err
	}
	m.Model = fresh.Model
	m.iteration.Store(0)
	return nil
}

// Restore replaces the miner's belief state with a previously saved
// model (see background.SaveJSON / LoadJSONExact) and the number of
// committed iterations that state represents. Dimensions must match
// the miner's dataset. Used by session persistence: a restored miner
// continues the interactive loop exactly where the snapshot left off.
func (m *Miner) Restore(model *background.Model, iteration int) error {
	if model.N() != m.DS.N() || model.D() != m.DS.Dy() {
		return fmt.Errorf("core: restored model is %d×%d, dataset is %d×%d",
			model.N(), model.D(), m.DS.N(), m.DS.Dy())
	}
	if iteration < 0 {
		return fmt.Errorf("core: negative iteration count %d", iteration)
	}
	m.Model = model
	m.iteration.Store(int64(iteration))
	return nil
}

// ForkAt returns an independent miner whose belief state starts at
// exactly the given version — the what-if primitive behind spread
// previews: commit speculatively on the fork, evaluate, discard. The
// fork shares the dataset and config; its model is a copy-on-write
// fork of v, so building it is cheap and the source miner is never
// affected.
func (m *Miner) ForkAt(v *background.ModelVersion) *Miner {
	fm := &Miner{DS: m.DS, Model: v.Fork(), Cfg: m.Cfg}
	fm.iteration.Store(m.iteration.Load())
	return fm
}

// MineOptions tune one mining call without touching the miner's
// shared Config — the per-call knobs a server thread needs when many
// mines share one miner.
type MineOptions struct {
	// Deadline, when non-zero, overrides Cfg.Search.Deadline for this
	// call only.
	Deadline time.Time
}

// MineLocation runs the beam search under the most recently published
// background model version and returns the best location pattern plus
// the full search log (top-K patterns, the paper logs 150). On
// ErrNoPattern the log is still returned so callers can distinguish an
// exhausted search from one whose deadline expired before anything was
// scored.
func (m *Miner) MineLocation() (*pattern.Location, *search.Results, error) {
	return m.MineAt(m.Snapshot(), MineOptions{})
}

// MineAt is MineLocation against a pinned model version: the search
// reads only v, so it runs lock-free and byte-identically regardless
// of commits happening concurrently on the live model. Safe for any
// number of concurrent callers.
func (m *Miner) MineAt(v *background.ModelVersion, opt MineOptions) (*pattern.Location, *search.Results, error) {
	scorer, err := si.NewLocationScorer(v, m.DS.Y, m.Cfg.SI)
	if err != nil {
		return nil, nil, err
	}
	params := m.Cfg.Search
	if !opt.Deadline.IsZero() {
		params.Deadline = opt.Deadline
	}
	res := search.Beam(m.DS, scorer, params)
	top := res.Top()
	if top == nil {
		return nil, res, ErrNoPattern
	}
	return m.foundToLocation(*top), res, nil
}

func (m *Miner) foundToLocation(f search.Found) *pattern.Location {
	return &pattern.Location{
		Intention: f.Intention,
		Extension: f.Extension,
		Mean:      f.Mean,
		IC:        f.IC,
		DL:        m.Cfg.SI.DL(len(f.Intention), false),
		SI:        f.SI,
	}
}

// ScoreLocationIntention evaluates an arbitrary intention under the
// *current* background model — used to track how the SI of earlier
// patterns collapses across iterations (Table I).
func (m *Miner) ScoreLocationIntention(in pattern.Intention) (*pattern.Location, error) {
	ext := in.Extension(m.DS)
	if ext.Count() == 0 {
		return nil, background.ErrNoPoints
	}
	yhat := pattern.SubgroupMean(m.DS.Y, ext)
	siVal, ic, err := si.LocationSI(m.Model, ext, yhat, len(in), m.Cfg.SI)
	if err != nil {
		return nil, err
	}
	return &pattern.Location{
		Intention: in,
		Extension: ext,
		Mean:      yhat,
		IC:        ic,
		DL:        m.Cfg.SI.DL(len(in), false),
		SI:        siVal,
	}, nil
}

// CommitLocation assimilates a location pattern into the background
// model: the user now knows the subgroup's mean.
func (m *Miner) CommitLocation(loc *pattern.Location) error {
	if err := m.Model.CommitLocation(loc.Extension, loc.Mean); err != nil {
		return err
	}
	m.iteration.Add(1)
	return nil
}

// MineSpread finds the most interesting spread direction for a location
// pattern whose location must already be committed (the paper's
// two-step procedure: the spread of a subgroup is only interpretable
// once its location is known).
func (m *Miner) MineSpread(loc *pattern.Location) (*pattern.Spread, error) {
	sp, _, err := m.MineSpreadBudget(loc)
	return sp, err
}

// MineSpreadBudget is MineSpread with the engine options threaded
// through: the optimizer's restart pool inherits the search
// parallelism, and an active Model.Deadline (the same budget the
// background refit honours) bounds the direction search — the
// optimizer then degrades to best-so-far, reported via timedOut,
// instead of blowing the caller's mine budget.
func (m *Miner) MineSpreadBudget(loc *pattern.Location) (sp *pattern.Spread, timedOut bool, err error) {
	return m.mineSpread(m.Model, loc, m.Model.Deadline)
}

// MineSpreadAt is MineSpread against a pinned model version, for
// callers running concurrently with commits. opt.Deadline bounds the
// direction search the way Model.Deadline does on the live path.
func (m *Miner) MineSpreadAt(v *background.ModelVersion, loc *pattern.Location, opt MineOptions) (sp *pattern.Spread, timedOut bool, err error) {
	return m.mineSpread(v, loc, opt.Deadline)
}

func (m *Miner) mineSpread(r background.Reader, loc *pattern.Location, deadline time.Time) (sp *pattern.Spread, timedOut bool, err error) {
	p := m.Cfg.Spread
	if p.Parallelism <= 0 {
		p.Parallelism = m.Cfg.Search.Parallelism
	}
	if p.Deadline.IsZero() {
		p.Deadline = deadline
	}
	res, err := spreadopt.Optimize(r, m.DS.Y, loc.Extension, loc.Mean,
		len(loc.Intention), m.Cfg.SI, p)
	if err != nil {
		return nil, false, err
	}
	return &pattern.Spread{
		Intention: loc.Intention,
		Extension: loc.Extension,
		Center:    loc.Mean,
		W:         res.W,
		Variance:  res.Variance,
		IC:        res.IC,
		DL:        m.Cfg.SI.DL(len(loc.Intention), true),
		SI:        res.SI,
	}, res.TimedOut, nil
}

// CommitSpread assimilates a spread pattern into the background model.
func (m *Miner) CommitSpread(sp *pattern.Spread) error {
	return m.Model.CommitSpread(sp.Extension, sp.W, sp.Center, sp.Variance)
}

// IterationResult bundles the patterns of one full mining iteration.
type IterationResult struct {
	Location *pattern.Location
	Spread   *pattern.Spread // nil when spread mining is skipped
	Log      *search.Results
}

// Step runs one full iteration: mine the best location pattern, commit
// it, and — when withSpread is set — mine and commit the best spread
// pattern for the same subgroup.
func (m *Miner) Step(withSpread bool) (*IterationResult, error) {
	loc, log, err := m.MineLocation()
	if err != nil {
		return nil, err
	}
	if err := m.CommitLocation(loc); err != nil {
		return nil, err
	}
	out := &IterationResult{Location: loc, Log: log}
	if withSpread {
		sp, err := m.MineSpread(loc)
		if err != nil {
			return nil, err
		}
		if err := m.CommitSpread(sp); err != nil {
			return nil, err
		}
		out.Spread = sp
	}
	return out, nil
}

// AttrExplanation describes, for one target attribute, how the
// subgroup's observed mean compares to the background expectation — the
// per-attribute ranking of Fig. 5 and Fig. 8a.
type AttrExplanation struct {
	Target   string
	Observed float64
	Expected float64
	// CI95Lo/Hi bound the background model's 95% interval for the
	// subgroup mean of this attribute.
	CI95Lo, CI95Hi float64
	// IC is the one-dimensional information content of the attribute's
	// observed mean, used as the ranking key.
	IC float64
}

// ExplainLocation ranks the target attributes of a location pattern by
// how surprising their subgroup mean is under the current background
// model (most surprising first).
func (m *Miner) ExplainLocation(loc *pattern.Location) ([]AttrExplanation, error) {
	return m.explainLocation(m.Model, loc)
}

// ExplainLocationAt is ExplainLocation against a pinned model version,
// safe for callers running concurrently with commits.
func (m *Miner) ExplainLocationAt(v *background.ModelVersion, loc *pattern.Location) ([]AttrExplanation, error) {
	return m.explainLocation(v, loc)
}

func (m *Miner) explainLocation(r background.Reader, loc *pattern.Location) ([]AttrExplanation, error) {
	muI, covI, err := r.SubgroupMeanMarginal(loc.Extension)
	if err != nil {
		return nil, err
	}
	out := make([]AttrExplanation, m.DS.Dy())
	for j := 0; j < m.DS.Dy(); j++ {
		sd := math.Sqrt(covI.At(j, j))
		obs := loc.Mean[j]
		var ic float64
		if sd > 0 {
			z := (obs - muI[j]) / sd
			ic = 0.5*math.Log(2*math.Pi) + math.Log(sd) + z*z/2
		}
		out[j] = AttrExplanation{
			Target:   m.DS.TargetNames[j],
			Observed: obs,
			Expected: muI[j],
			CI95Lo:   muI[j] - 1.959963984540054*sd,
			CI95Hi:   muI[j] + 1.959963984540054*sd,
			IC:       ic,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IC > out[j].IC })
	return out, nil
}
