package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/background"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/si"
)

// locKey renders a mined location with exact (hex) float formatting, so
// equality of keys is byte-identity of the result.
func locKey(ds *dataset.Dataset, loc *pattern.Location) string {
	if loc == nil {
		return "none"
	}
	return fmt.Sprintf("%s|%v|%x|%x|%x|%x",
		loc.Intention.Format(ds), loc.Extension.Indices(),
		loc.SI, loc.IC, loc.DL, loc.Mean)
}

// The determinism contract of the versioned model: a mine pinned to
// version v returns byte-identical results no matter how many commits
// land while it runs. W miners race a stream of commits on one shared
// miner (run under -race this is also the lock-freedom check), then
// every recorded result is reproduced serially against its version.
func TestMineAtDeterministicUnderCommits(t *testing.T) {
	widths := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range widths {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			syn := gen.Synthetic620(gen.SeedSynthetic)
			m, err := NewMiner(syn.DS, Config{
				SI:     si.Params{Gamma: 0.5, Eta: 1},
				Search: search.Params{MaxDepth: 2, BeamWidth: 8},
			})
			if err != nil {
				t.Fatalf("NewMiner: %v", err)
			}
			type rec struct {
				v   *background.ModelVersion
				got string
			}
			var (
				recMu sync.Mutex
				recs  []rec
			)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// The first iteration always runs — on a fast machine
					// the commit stream can finish before this goroutine
					// is scheduled, and the test needs every worker to
					// contribute at least one recorded mine.
					for i := 0; ; i++ {
						if i > 0 {
							select {
							case <-stop:
								return
							default:
							}
						}
						v := m.Snapshot()
						loc, _, err := m.MineAt(v, MineOptions{})
						if err != nil && !errors.Is(err, ErrNoPattern) {
							t.Errorf("MineAt(v%d): %v", v.Version(), err)
							return
						}
						recMu.Lock()
						recs = append(recs, rec{v, locKey(syn.DS, loc)})
						recMu.Unlock()
					}
				}()
			}
			// The commit stream: serial mine+commit on the live model,
			// publishing a new version each round while the racers mine.
			for i := 0; i < 3; i++ {
				loc, _, err := m.MineAt(m.Snapshot(), MineOptions{})
				if errors.Is(err, ErrNoPattern) {
					break
				}
				if err != nil {
					t.Fatalf("commit-stream mine %d: %v", i, err)
				}
				if err := m.CommitLocation(loc); err != nil {
					t.Fatalf("commit %d: %v", i, err)
				}
			}
			close(stop)
			wg.Wait()
			if t.Failed() {
				return
			}
			if len(recs) == 0 {
				t.Fatal("no racing mine completed")
			}
			// Serial replay: the pinned version fully determines the result.
			versions := map[uint64]bool{}
			for _, r := range recs {
				versions[r.v.Version()] = true
				loc, _, err := m.MineAt(r.v, MineOptions{})
				if err != nil && !errors.Is(err, ErrNoPattern) {
					t.Fatalf("replay MineAt(v%d): %v", r.v.Version(), err)
				}
				if got := locKey(syn.DS, loc); got != r.got {
					t.Fatalf("mine at version %d not reproducible:\nracing: %s\nserial: %s",
						r.v.Version(), r.got, got)
				}
			}
			t.Logf("replayed %d mines across %d distinct versions", len(recs), len(versions))
		})
	}
}

// A spread preview forked from a pinned version must also be
// deterministic and leave the live model untouched.
func TestForkAtSpreadPreviewDeterministic(t *testing.T) {
	m, syn := synMiner(t)
	v := m.Snapshot()
	loc, _, err := m.MineAt(v, MineOptions{})
	if err != nil {
		t.Fatalf("MineAt: %v", err)
	}
	preview := func() string {
		fork := m.ForkAt(v)
		if err := fork.Model.CommitLocation(loc.Extension, loc.Mean); err != nil {
			t.Fatalf("fork commit: %v", err)
		}
		sp, _, err := fork.MineSpreadAt(fork.Snapshot(), loc, MineOptions{})
		if err != nil {
			t.Fatalf("MineSpreadAt: %v", err)
		}
		return fmt.Sprintf("%s|%x|%x", sp.Intention.Format(syn.DS), sp.W, sp.Variance)
	}
	first := preview()
	if again := preview(); again != first {
		t.Fatalf("spread preview not deterministic:\n%s\n%s", first, again)
	}
	if m.Model.NumConstraints() != 0 || m.Snapshot() != v {
		t.Fatal("spread preview mutated the live model")
	}
	if m.Iteration() != 0 {
		t.Fatalf("preview advanced the iteration counter to %d", m.Iteration())
	}
}
