package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/search"
)

func TestResetRestoresInitialBeliefState(t *testing.T) {
	ds := gen.Synthetic620(gen.SeedSynthetic)
	m, err := NewMiner(ds.DS, Config{Search: search.Params{MaxDepth: 2}})
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CommitLocation(first); err != nil {
		t.Fatal(err)
	}
	second, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	if second.Intention.Key() == first.Intention.Key() {
		t.Fatal("premise broken: commit should change the top pattern")
	}
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if m.Iteration() != 0 {
		t.Fatalf("Iteration after reset = %d", m.Iteration())
	}
	again, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	if again.Intention.Key() != first.Intention.Key() || again.SI != first.SI {
		t.Fatalf("reset did not restore the initial state: %v vs %v",
			again.Intention.Format(ds.DS), first.Intention.Format(ds.DS))
	}
}
