package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/search"
)

func TestNewMinerRejectsInvalidDataset(t *testing.T) {
	ds := gen.Synthetic620(1).DS
	ds.Descriptors[0].Values = ds.Descriptors[0].Values[:5] // corrupt
	if _, err := NewMiner(ds, Config{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestNewMinerRejectsPriorDimensionMismatch(t *testing.T) {
	ds := gen.Synthetic620(2).DS
	if _, err := NewMiner(ds, Config{PriorMean: mat.Vec{0}, PriorCov: mat.Eye(1)}); err == nil {
		t.Fatal("expected prior dimension error")
	}
}

func TestScoreLocationIntentionEmptyExtension(t *testing.T) {
	ds := gen.Synthetic620(3).DS
	m, err := NewMiner(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A contradiction: a3 = '0' AND a3 = '1'.
	in := pattern.Intention{
		{Attr: 0, Op: pattern.EQ, Level: 0},
		{Attr: 0, Op: pattern.EQ, Level: 1},
	}
	if _, err := m.ScoreLocationIntention(in); err == nil {
		t.Fatal("expected error for empty extension")
	}
}

func TestMineLocationNoPatterns(t *testing.T) {
	// MinSupport larger than any subgroup blocks every candidate.
	ds := gen.Synthetic620(4).DS
	m, err := NewMiner(ds, Config{Search: search.Params{MinSupport: 10000}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.MineLocation(); err != ErrNoPattern {
		t.Fatalf("err = %v, want ErrNoPattern", err)
	}
}

func TestStepWithoutSpread(t *testing.T) {
	ds := gen.Synthetic620(5).DS
	m, err := NewMiner(ds, Config{Search: search.Params{MaxDepth: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Step(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spread != nil {
		t.Fatal("spread mined despite withSpread=false")
	}
	if m.Iteration() != 1 {
		t.Fatalf("Iteration = %d", m.Iteration())
	}
	if res.Log == nil || len(res.Log.Patterns) == 0 {
		t.Fatal("missing search log")
	}
}

func TestExplainLocationConsistentWithModel(t *testing.T) {
	ds := gen.SocioEconLike(6).DS
	m, err := NewMiner(ds, Config{Search: search.Params{MaxDepth: 1}})
	if err != nil {
		t.Fatal(err)
	}
	loc, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	expl, err := m.ExplainLocation(loc)
	if err != nil {
		t.Fatal(err)
	}
	// Expected values must equal the model's marginal means.
	muI, covI, err := m.Model.SubgroupMeanMarginal(loc.Extension)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range expl {
		j := ds.TargetIndex(e.Target)
		if j < 0 {
			t.Fatalf("unknown target %q", e.Target)
		}
		if math.Abs(e.Expected-muI[j]) > 1e-12 {
			t.Fatalf("%s: expected %v vs marginal %v", e.Target, e.Expected, muI[j])
		}
		sd := math.Sqrt(covI.At(j, j))
		if math.Abs((e.CI95Hi-e.CI95Lo)/2-1.959963984540054*sd) > 1e-9 {
			t.Fatalf("%s: CI width inconsistent", e.Target)
		}
	}
}

func TestSingleTargetDatasetFullFlow(t *testing.T) {
	cr := gen.CrimeLike(7)
	m, err := NewMiner(cr.DS, Config{
		Search: search.Params{MaxDepth: 1, BeamWidth: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Step(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spread.W) != 1 || math.Abs(res.Spread.W[0]) != 1 {
		t.Fatalf("1-D spread direction = %v", res.Spread.W)
	}
}

func TestOrdinalDescriptorsMinable(t *testing.T) {
	wa := gen.WaterQualityLike(8)
	m, err := NewMiner(wa.DS, Config{
		Search: search.Params{MaxDepth: 1, BeamWidth: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	loc, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	// The winning condition must be on an ordinal bioindicator.
	if wa.DS.Descriptors[loc.Intention[0].Attr].Kind != dataset.Ordinal {
		t.Fatalf("expected ordinal condition, got %v", loc.Intention.Format(wa.DS))
	}
}
