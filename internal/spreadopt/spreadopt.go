// Package spreadopt finds the most subjectively interesting spread
// direction for a subgroup: it maximizes the spread-pattern SI of Eq. 20
// over the unit sphere (problem 21 of the paper). The original
// implementation delegated to the Manopt MATLAB toolbox; this package
// replaces it with projected (Riemannian) gradient ascent using the
// analytic gradient (which the paper computes but omits for space),
// seeded from the eigenvectors of the difference between the observed
// subgroup scatter and the expected covariance plus random restarts.
//
// The 2-sparsity mode of §III-C (optimize w over every attribute pair
// and keep the best) is provided for interpretable directions.
package spreadopt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/si"
)

// Params configure the optimizer. The zero value is completed with
// defaults.
type Params struct {
	MaxIter    int     // gradient steps per start (default 300)
	Tol        float64 // Riemannian gradient norm tolerance (default 1e-9)
	Restarts   int     // random restart directions (default 8)
	Seed       int64   // seed for the random restarts (default 1)
	PairSparse bool    // restrict w to two nonzero components (§III-C)
}

func (p Params) withDefaults() Params {
	if p.MaxIter <= 0 {
		p.MaxIter = 300
	}
	if p.Tol <= 0 {
		p.Tol = 1e-9
	}
	if p.Restarts <= 0 {
		p.Restarts = 8
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Result is the optimized spread direction with its statistics.
type Result struct {
	W        mat.Vec // unit direction
	Variance float64 // ĝ = wᵀSw, the observed subgroup variance along W
	IC       float64
	SI       float64
	Starts   int // number of starts actually explored
}

// ErrNoDirection is returned when no valid direction could be scored.
var ErrNoDirection = errors.New("spreadopt: no valid direction found")

// objective evaluates the spread IC (and its Euclidean gradient) as a
// function of the direction w, for a fixed extension. The moment sums
// A₁..A₃ only see a group through wᵀΣw and its count, so groups sharing
// a covariance matrix (location-split siblings — Theorem 1 never
// diverges them) are merged at construction: the gradient-ascent inner
// loop then computes one quadratic form per *distinct* matrix per
// iteration, which for the location-only regime is a single pass no
// matter how many groups the model has split into.
type objective struct {
	total   float64
	counts  []float64
	sigmas  []*mat.Dense // distinct matrices, counts aggregated
	scatter *mat.Dense   // S with ĝ(w) = wᵀSw
	gw      mat.Vec      // scratch for Σ·w in the gradient loop
}

func newObjective(m *background.Model, y *mat.Dense, ext *bitset.Set, center mat.Vec) (*objective, error) {
	total := ext.Count()
	if total == 0 {
		return nil, background.ErrNoPoints
	}
	o := &objective{
		total:   float64(total),
		scatter: pattern.SubgroupScatter(y, ext, center),
		gw:      make(mat.Vec, m.D()),
	}
	// One fused pass over ext for all per-group counts (instead of one
	// AND-popcount pass per group), then merge by Σ identity.
	counts := m.CountByGroup(ext, nil)
	for gi, g := range m.Groups() {
		ic := counts[gi]
		if ic == 0 {
			continue
		}
		merged := false
		for k, sig := range o.sigmas {
			if sig == g.Sigma {
				o.counts[k] += float64(ic)
				merged = true
				break
			}
		}
		if !merged {
			o.counts = append(o.counts, float64(ic))
			o.sigmas = append(o.sigmas, g.Sigma)
		}
	}
	if len(o.counts) == 0 {
		return nil, background.ErrNoPoints
	}
	return o, nil
}

func (o *objective) moments(w mat.Vec) (si.SpreadMoments, float64) {
	var a1, a2, a3 float64
	inv := 1 / o.total
	for gi, sigma := range o.sigmas {
		a := sigma.QuadForm(w) * inv
		c := o.counts[gi]
		a1 += c * a
		a2 += c * a * a
		a3 += c * a * a * a
	}
	sm := si.SpreadMoments{
		Alpha: a3 / a2, Beta: a1 - a2*a2/a3, M: a2 * a2 * a2 / (a3 * a3),
		A1: a1, A2: a2, A3: a3,
	}
	return sm, o.scatter.QuadForm(w)
}

// eval returns the IC at w.
func (o *objective) eval(w mat.Vec) float64 {
	sm, ghat := o.moments(w)
	return si.SpreadICFromMoments(sm, ghat)
}

// evalGrad returns the IC and writes the Euclidean gradient into grad.
func (o *objective) evalGrad(w mat.Vec, grad mat.Vec) float64 {
	sm, ghat := o.moments(w)
	ic, dG, dA1, dA2, dA3 := si.SpreadICGradientTerms(sm, ghat)

	// ∇ĝ = 2Sw.
	sw := o.scatter.MulVecInto(o.gw, w)
	for i := range grad {
		grad[i] = 2 * dG * sw[i]
	}
	// ∇Aₖ = Σ_g c_g·k·a_gᵏ⁻¹·(2Σ_g w / |I|).
	inv := 1 / o.total
	for gi, sigma := range o.sigmas {
		gw := sigma.MulVecInto(o.gw, w)
		a := w.Dot(gw) * inv
		coeff := o.counts[gi] * (dA1 + 2*dA2*a + 3*dA3*a*a) * 2 * inv
		grad.AddScaled(coeff, gw)
	}
	return ic
}

// ascend runs projected gradient ascent from w0 and returns the best
// direction and IC reached.
func (o *objective) ascend(w0 mat.Vec, maxIter int, tol float64) (mat.Vec, float64) {
	w := w0.Clone().Normalize()
	ic := o.eval(w)
	grad := make(mat.Vec, len(w))
	step := 0.1
	for iter := 0; iter < maxIter; iter++ {
		cur := o.evalGrad(w, grad)
		// Riemannian gradient: project out the radial component.
		grad.AddScaled(-w.Dot(grad), w)
		gn := grad.Norm()
		if gn < tol {
			ic = cur
			break
		}
		// Backtracking line search along the projected direction.
		improved := false
		for trial := 0; trial < 30; trial++ {
			cand := w.Clone().AddScaled(step/gn, grad).Normalize()
			icCand := o.eval(cand)
			if icCand > cur+1e-15 {
				w, ic = cand, icCand
				step = math.Min(step*1.5, 1.0)
				improved = true
				break
			}
			step /= 2
			if step < 1e-14 {
				break
			}
		}
		if !improved {
			ic = cur
			break
		}
	}
	return w, ic
}

// seeds builds the deterministic start set: eigenvectors of S − Σ̄
// (directions where the observed scatter deviates most from the expected
// covariance, both high- and low-variance), plus random unit vectors.
func (o *objective) seeds(p Params) []mat.Vec {
	d := o.scatter.R
	var out []mat.Vec

	diff := o.scatter.Clone()
	var totalC float64
	for _, c := range o.counts {
		totalC += c
	}
	for gi, sigma := range o.sigmas {
		diff.AddScaled(-o.counts[gi]/totalC, sigma)
	}
	if _, vecs, err := mat.SymEig(diff); err == nil {
		take := d
		if take > 6 {
			take = 6
		}
		for k := 0; k < take/2+1 && k < d; k++ {
			// Alternate extreme eigenvectors: most inflated, most deflated.
			out = append(out, column(vecs, k))
			if d-1-k > k {
				out = append(out, column(vecs, d-1-k))
			}
		}
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for r := 0; r < p.Restarts; r++ {
		w := make(mat.Vec, d)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		out = append(out, w.Normalize())
	}
	return out
}

func column(m *mat.Dense, j int) mat.Vec {
	out := make(mat.Vec, m.R)
	for i := 0; i < m.R; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Optimize finds the direction w maximizing the spread-pattern SI for
// the subgroup ext, whose location (center = subgroup mean ŷ_I) must
// already be committed to the model, matching the paper's two-step
// procedure. numConds is the size of the subgroup's intention (it only
// scales SI through the description length).
func Optimize(m *background.Model, y *mat.Dense, ext *bitset.Set, center mat.Vec,
	numConds int, sip si.Params, p Params) (*Result, error) {
	p = p.withDefaults()
	o, err := newObjective(m, y, ext, center)
	if err != nil {
		return nil, err
	}
	d := y.C
	if d < 1 {
		return nil, fmt.Errorf("spreadopt: no target dimensions")
	}
	if p.PairSparse {
		return optimizePairs(o, d, numConds, sip, p)
	}
	if d == 1 {
		w := mat.Vec{1}
		ic := o.eval(w)
		_, ghat := o.moments(w)
		return &Result{W: w, Variance: ghat, IC: ic,
			SI: ic / sip.DL(numConds, true), Starts: 1}, nil
	}

	var best mat.Vec
	bestIC := math.Inf(-1)
	starts := 0
	for _, w0 := range o.seeds(p) {
		w, ic := o.ascend(w0, p.MaxIter, p.Tol)
		starts++
		if ic > bestIC {
			bestIC, best = ic, w
		}
	}
	if best == nil {
		return nil, ErrNoDirection
	}
	canonicalize(best)
	_, ghat := o.moments(best)
	return &Result{
		W: best, Variance: ghat, IC: bestIC,
		SI:     bestIC / sip.DL(numConds, true),
		Starts: starts,
	}, nil
}

// optimizePairs implements the 2-sparsity constraint of §III-C: for
// every pair of target attributes, w = cosθ·e_i + sinθ·e_j is optimized
// over θ by a dense grid with golden-section refinement, and the best
// pair wins.
func optimizePairs(o *objective, d, numConds int, sip si.Params, p Params) (*Result, error) {
	if d < 2 {
		return nil, fmt.Errorf("spreadopt: pair-sparse mode needs at least 2 targets")
	}
	var best mat.Vec
	bestIC := math.Inf(-1)
	starts := 0
	w := make(mat.Vec, d)
	evalTheta := func(i, j int, theta float64) float64 {
		for k := range w {
			w[k] = 0
		}
		w[i] = math.Cos(theta)
		w[j] = math.Sin(theta)
		return o.eval(w)
	}
	for i := 0; i < d-1; i++ {
		for j := i + 1; j < d; j++ {
			starts++
			// Coarse grid over [0, π): w and −w are equivalent.
			const grid = 96
			bestTheta, bestVal := 0.0, math.Inf(-1)
			for g := 0; g < grid; g++ {
				theta := math.Pi * float64(g) / grid
				if v := evalTheta(i, j, theta); v > bestVal {
					bestVal, bestTheta = v, theta
				}
			}
			// Golden-section refinement around the best grid cell.
			lo := bestTheta - math.Pi/grid
			hi := bestTheta + math.Pi/grid
			const phi = 0.6180339887498949
			for iter := 0; iter < 60; iter++ {
				m1 := hi - phi*(hi-lo)
				m2 := lo + phi*(hi-lo)
				if evalTheta(i, j, m1) > evalTheta(i, j, m2) {
					hi = m2
				} else {
					lo = m1
				}
			}
			theta := (lo + hi) / 2
			if v := evalTheta(i, j, theta); v > bestVal {
				bestVal, bestTheta = v, theta
			}
			if bestVal > bestIC {
				bestIC = bestVal
				best = make(mat.Vec, d)
				best[i] = math.Cos(bestTheta)
				best[j] = math.Sin(bestTheta)
			}
		}
	}
	if best == nil {
		return nil, ErrNoDirection
	}
	canonicalize(best)
	_, ghat := o.moments(best)
	return &Result{
		W: best, Variance: ghat, IC: bestIC,
		SI:     bestIC / sip.DL(numConds, true),
		Starts: starts,
	}, nil
}

// canonicalize flips w so its largest-magnitude component is positive
// (w and −w describe the same spread pattern).
func canonicalize(w mat.Vec) {
	maxI := 0
	for i := range w {
		if math.Abs(w[i]) > math.Abs(w[maxI]) {
			maxI = i
		}
	}
	if w[maxI] < 0 {
		w.Scale(-1)
	}
}
