// Package spreadopt finds the most subjectively interesting spread
// direction for a subgroup: it maximizes the spread-pattern SI of Eq. 20
// over the unit sphere (problem 21 of the paper). The original
// implementation delegated to the Manopt MATLAB toolbox; this package
// replaces it with projected (Riemannian) gradient ascent using the
// analytic gradient (which the paper computes but omits for space),
// seeded from the eigenvectors of the difference between the observed
// subgroup scatter and the expected covariance plus random restarts.
//
// The 2-sparsity mode of §III-C (optimize w over every attribute pair
// and keep the best) is provided for interpretable directions.
//
// The package is organised as a sufficient-statistics evaluation
// engine (DESIGN.md §8): the objective only ever sees a direction
// through the quadratic forms wᵀSw (observed variance) and wᵀΣw per
// *distinct* background covariance, so
//
//   - the pair-sparse mode projects every matrix to a 2×2 once per
//     (i,j) pair and evaluates each θ in O(#distinct Σ) scalar flops —
//     no dense pass over a vector that is zero everywhere but two
//     entries;
//   - the dense ascent's backtracking line search evaluates candidates
//     w(t) = (w + t·g)/‖w + t·g‖ through ratios of quadratics in t,
//     precomputed from the matrix-vector products the gradient needed
//     anyway, so each trial is O(#distinct Σ) as well;
//   - all per-iteration intermediates live in per-worker scratch
//     (evalCtx), making steady-state eval/evalGrad allocation-free;
//   - the start set (eigenvector seeds + random restarts) runs on a
//     deterministic parallel worker pool whose reduction (IC
//     descending, canonical-w ascending) is byte-identical at any
//     worker count, and honours a Deadline budget Model.Deadline-style
//     by degrading to best-so-far.
package spreadopt

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/randx"
	"repro/internal/si"
)

// Params configure the optimizer. The zero value is completed with
// defaults.
type Params struct {
	MaxIter    int     // gradient steps per start (default 300)
	Tol        float64 // Riemannian gradient norm tolerance (default 1e-9)
	Restarts   int     // random restart directions (default 8)
	Seed       int64   // seed for the random restarts (default 1)
	PairSparse bool    // restrict w to two nonzero components (§III-C)
	// Parallelism bounds the workers ascending seeds (general mode) or
	// scanning attribute pairs (pair-sparse mode); default GOMAXPROCS.
	// Results are byte-identical at any value.
	Parallelism int
	// Deadline, when non-zero, bounds the wall time the way
	// background.Model.Deadline bounds a refit: the first start always
	// completes (possibly with its ascent cut short), later starts are
	// skipped once the deadline passes, and the result degrades to the
	// best direction found so far with Result.TimedOut set — instead of
	// blowing the caller's budget or failing outright.
	Deadline time.Time
}

func (p Params) withDefaults() Params {
	if p.MaxIter <= 0 {
		p.MaxIter = 300
	}
	if p.Tol <= 0 {
		p.Tol = 1e-9
	}
	if p.Restarts <= 0 {
		p.Restarts = 8
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Parallelism <= 0 {
		p.Parallelism = runtime.GOMAXPROCS(0)
	}
	return p
}

// Result is the optimized spread direction with its statistics.
type Result struct {
	W        mat.Vec // unit direction
	Variance float64 // ĝ = wᵀSw, the observed subgroup variance along W
	IC       float64
	SI       float64
	Starts   int // number of starts actually explored
	// TimedOut reports that the Deadline cut the start set (or an
	// ascent) short and the result is best-so-far rather than the full
	// multi-start optimum.
	TimedOut bool
}

// ErrNoDirection is returned when no valid direction could be scored.
var ErrNoDirection = errors.New("spreadopt: no valid direction found")

// objective holds the sufficient statistics of the spread IC for a
// fixed extension: the subgroup scatter S (ĝ(w) = wᵀSw) and, per
// *distinct* background covariance, the aggregated member count. The
// moment sums A₁..A₃ only see a group through wᵀΣw and its count, so
// groups sharing a covariance matrix (location-split siblings —
// Theorem 1 never diverges them) are merged at construction: every
// evaluation then computes one quadratic form per distinct matrix,
// which for the location-only regime is a single form no matter how
// many groups the model has split into.
type objective struct {
	total   float64
	counts  []float64
	sigmas  []*mat.Dense // distinct matrices, counts aggregated
	scatter *mat.Dense   // S with ĝ(w) = wᵀSw
}

func newObjective(m background.Reader, y *mat.Dense, ext *bitset.Set, center mat.Vec) (*objective, error) {
	total := ext.Count()
	if total == 0 {
		return nil, background.ErrNoPoints
	}
	o := &objective{
		total:   float64(total),
		scatter: pattern.SubgroupScatter(y, ext, center),
	}
	// One fused pass over ext for all per-group counts (instead of one
	// AND-popcount pass per group), then merge by Σ identity.
	counts := m.CountByGroup(ext, nil)
	for gi, g := range m.Groups() {
		ic := counts[gi]
		if ic == 0 {
			continue
		}
		merged := false
		for k, sig := range o.sigmas {
			if sig == g.Sigma {
				o.counts[k] += float64(ic)
				merged = true
				break
			}
		}
		if !merged {
			o.counts = append(o.counts, float64(ic))
			o.sigmas = append(o.sigmas, g.Sigma)
		}
	}
	if len(o.counts) == 0 {
		return nil, background.ErrNoPoints
	}
	return o, nil
}

func (o *objective) moments(w mat.Vec) (si.SpreadMoments, float64) {
	var a1, a2, a3 float64
	inv := 1 / o.total
	for gi, sigma := range o.sigmas {
		a := sigma.QuadForm(w) * inv
		c := o.counts[gi]
		a1 += c * a
		a2 += c * a * a
		a3 += c * a * a * a
	}
	return si.MomentsFromSums(a1, a2, a3), o.scatter.QuadForm(w)
}

// eval returns the IC at w. Allocation-free: quadratic forms only.
func (o *objective) eval(w mat.Vec) float64 {
	sm, ghat := o.moments(w)
	return si.SpreadICFromMoments(sm, ghat)
}

// evalCtx is a single-worker evaluation context: every intermediate of
// the gradient ascent (direction, gradient, candidate, the S·w / Σ·w /
// S·g / Σ·g products and the per-Σ quadratic forms) lives in
// worker-owned scratch, so steady-state eval/evalGrad/ascend perform no
// heap allocations. Workers are independent; one per goroutine.
type evalCtx struct {
	o          *objective
	w          mat.Vec // current direction (ascend's working vector)
	grad       mat.Vec
	cand       mat.Vec
	sw, sg     mat.Vec   // S·w and S·g
	sigW, sigG mat.Vec   // flattened #Σ×d: Σₖ·w and Σₖ·g
	qw         []float64 // wᵀΣₖw
	qgw        []float64 // gᵀΣₖw
	qgg        []float64 // gᵀΣₖg
	// Pair-sparse scratch: the 2×2 projections of each distinct Σ onto
	// the current (i,j) pair — [Σᵢᵢ, Σᵢⱼ, Σⱼᵢ, Σⱼⱼ] per matrix.
	pII, pIJ, pJI, pJJ []float64
}

func (o *objective) newCtx() *evalCtx {
	d := o.scatter.R
	k := len(o.sigmas)
	return &evalCtx{
		o:    o,
		w:    make(mat.Vec, d),
		grad: make(mat.Vec, d),
		cand: make(mat.Vec, d),
		sw:   make(mat.Vec, d),
		sg:   make(mat.Vec, d),
		sigW: make(mat.Vec, k*d),
		sigG: make(mat.Vec, k*d),
		qw:   make([]float64, k),
		qgw:  make([]float64, k),
		qgg:  make([]float64, k),
		pII:  make([]float64, k),
		pIJ:  make([]float64, k),
		pJI:  make([]float64, k),
		pJJ:  make([]float64, k),
	}
}

// evalGrad returns the IC at w and writes the Euclidean gradient into
// grad, leaving the per-matrix products (c.sw, c.sigW, c.qw) populated
// for the caller — ascend's line search feeds on them. Zero-alloc.
func (c *evalCtx) evalGrad(w mat.Vec, grad mat.Vec) float64 {
	o := c.o
	d := len(w)
	inv := 1 / o.total
	// Fused pass: one Σ·w product per distinct matrix serves both the
	// quadratic form (moments) and the gradient term.
	sw := o.scatter.MulVecInto(c.sw, w)
	ghat := w.Dot(sw)
	var a1, a2, a3 float64
	for gi := range o.sigmas {
		gw := o.sigmas[gi].MulVecInto(c.sigW[gi*d:(gi+1)*d], w)
		q := w.Dot(gw)
		c.qw[gi] = q
		a := q * inv
		cc := o.counts[gi]
		a1 += cc * a
		a2 += cc * a * a
		a3 += cc * a * a * a
	}
	sm := si.MomentsFromSums(a1, a2, a3)
	ic, dG, dA1, dA2, dA3 := si.SpreadICGradientTerms(sm, ghat)

	// ∇ĝ = 2Sw.
	for i := range grad {
		grad[i] = 2 * dG * sw[i]
	}
	// ∇Aₖ = Σ_g c_g·k·a_gᵏ⁻¹·(2Σ_g w / |I|).
	for gi := range o.sigmas {
		a := c.qw[gi] * inv
		coeff := o.counts[gi] * (dA1 + 2*dA2*a + 3*dA3*a*a) * 2 * inv
		grad.AddScaled(coeff, c.sigW[gi*d:(gi+1)*d])
	}
	return ic
}

// ascend runs projected gradient ascent from w0, leaving the best
// direction reached in c.w and returning its IC (evaluated directly at
// the final point) plus whether the deadline cut the ascent short.
//
// The backtracking line search never touches a d-vector: along
// w(t) = (w + t·g)/‖w + t·g‖ every quadratic form is
//
//	wᵀMw(t) = (wᵀMw + 2t·gᵀMw + t²·gᵀMg) / (1 + 2t·wᵀg + t²·gᵀg),
//
// so after one M·g product per matrix per iteration each trial costs
// O(#distinct Σ) scalar flops; only an *accepted* step materializes the
// new direction.
func (c *evalCtx) ascend(w0 mat.Vec, maxIter int, tol float64, deadline time.Time) (ic float64, cut bool) {
	o := c.o
	d := len(c.w)
	inv := 1 / o.total
	copy(c.w, w0)
	c.w.Normalize()
	w := c.w
	grad := c.grad
	step := 0.1
	checkDeadline := !deadline.IsZero()
	for iter := 0; iter < maxIter; iter++ {
		if checkDeadline && iter&15 == 0 && time.Now().After(deadline) {
			cut = true
			break
		}
		cur := c.evalGrad(w, grad)
		// Riemannian gradient: project out the radial component.
		grad.AddScaled(-w.Dot(grad), w)
		g2 := grad.Dot(grad)
		gn := math.Sqrt(g2)
		if gn < tol {
			break
		}
		// Line-search cross terms from one M·g product per matrix.
		wg := w.Dot(grad) // ≈0 after projection; kept exact
		sg := o.scatter.MulVecInto(c.sg, grad)
		gSw := grad.Dot(c.sw)
		gSg := grad.Dot(sg)
		ghat := w.Dot(c.sw)
		for gi := range o.sigmas {
			gg := o.sigmas[gi].MulVecInto(c.sigG[gi*d:(gi+1)*d], grad)
			c.qgw[gi] = grad.Dot(c.sigW[gi*d : (gi+1)*d])
			c.qgg[gi] = grad.Dot(gg)
		}
		improved := false
		for trial := 0; trial < 30; trial++ {
			t := step / gn
			den := 1 + 2*t*wg + t*t*g2
			ghatT := (ghat + 2*t*gSw + t*t*gSg) / den
			var a1, a2, a3 float64
			for gi := range o.sigmas {
				q := (c.qw[gi] + 2*t*c.qgw[gi] + t*t*c.qgg[gi]) / den
				a := q * inv
				cc := o.counts[gi]
				a1 += cc * a
				a2 += cc * a * a
				a3 += cc * a * a * a
			}
			icCand := si.SpreadICFromMoments(si.MomentsFromSums(a1, a2, a3), ghatT)
			if icCand > cur+1e-15 {
				cand := c.cand
				for i := range cand {
					cand[i] = w[i] + t*grad[i]
				}
				cand.Normalize()
				c.w, c.cand = cand, c.w
				w = c.w
				step = math.Min(step*1.5, 1.0)
				improved = true
				break
			}
			step /= 2
			if step < 1e-14 {
				break
			}
		}
		if !improved {
			break
		}
	}
	// Score the final direction through the direct evaluator: the
	// parametric line-search value can differ from it in the last ulps,
	// and the cross-start reduction compares ICs between workers.
	return o.eval(w), cut
}

// seeds builds the deterministic start set: eigenvectors of S − Σ̄
// (directions where the observed scatter deviates most from the expected
// covariance, both high- and low-variance), plus random unit vectors
// drawn from randx so the set is stable wherever the other stochastic
// components are.
func (o *objective) seeds(p Params) []mat.Vec {
	d := o.scatter.R
	var out []mat.Vec

	diff := o.scatter.Clone()
	var totalC float64
	for _, c := range o.counts {
		totalC += c
	}
	for gi, sigma := range o.sigmas {
		diff.AddScaled(-o.counts[gi]/totalC, sigma)
	}
	if _, vecs, err := mat.SymEig(diff); err == nil {
		take := d
		if take > 6 {
			take = 6
		}
		for k := 0; k < take/2+1 && k < d; k++ {
			// Alternate extreme eigenvectors: most inflated, most deflated.
			out = append(out, column(vecs, k))
			if d-1-k > k {
				out = append(out, column(vecs, d-1-k))
			}
		}
	}
	rng := randx.New(p.Seed)
	for r := 0; r < p.Restarts; r++ {
		w := make(mat.Vec, d)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		out = append(out, w.Normalize())
	}
	return out
}

func column(m *mat.Dense, j int) mat.Vec {
	out := make(mat.Vec, m.R)
	for i := 0; i < m.R; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// forEachStart runs fn(ctx, i) for every index in [0, n) across up to
// `workers` goroutines, each with its own evalCtx scratch, pulling
// indices off an atomic counter. Index 0 always runs; once deadline
// (when non-zero) has passed, the remaining indices are skipped. The
// returned slice reports which indices ran — per-index results are
// deterministic regardless of which worker ran them, so callers reduce
// over it in index order. Shared by the general-mode restart pool and
// the pair-sparse pair scan: the budget and concurrency semantics live
// in exactly one place.
func (o *objective) forEachStart(n, workers int, deadline time.Time, fn func(ctx *evalCtx, i int)) []bool {
	ran := make([]bool, n)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := o.newCtx()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if i > 0 && !deadline.IsZero() && time.Now().After(deadline) {
					continue
				}
				fn(ctx, i)
				ran[i] = true
			}
		}()
	}
	wg.Wait()
	return ran
}

// lexLess compares vectors lexicographically — the deterministic
// tiebreak of the cross-start reduction (applied to canonicalized
// directions).
func lexLess(a, b mat.Vec) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Optimize finds the direction w maximizing the spread-pattern SI for
// the subgroup ext, whose location (center = subgroup mean ŷ_I) must
// already be committed to the model, matching the paper's two-step
// procedure. numConds is the size of the subgroup's intention (it only
// scales SI through the description length).
func Optimize(m background.Reader, y *mat.Dense, ext *bitset.Set, center mat.Vec,
	numConds int, sip si.Params, p Params) (*Result, error) {
	p = p.withDefaults()
	o, err := newObjective(m, y, ext, center)
	if err != nil {
		return nil, err
	}
	d := y.C
	if d < 1 {
		return nil, fmt.Errorf("spreadopt: no target dimensions")
	}
	if p.PairSparse {
		return optimizePairs(o, d, numConds, sip, p)
	}
	if d == 1 {
		w := mat.Vec{1}
		ic := o.eval(w)
		_, ghat := o.moments(w)
		return &Result{W: w, Variance: ghat, IC: ic,
			SI: ic / sip.DL(numConds, true), Starts: 1}, nil
	}

	seeds := o.seeds(p)
	type startResult struct {
		w   mat.Vec
		ic  float64
		cut bool
	}
	results := make([]startResult, len(seeds))
	ran := o.forEachStart(len(seeds), p.Parallelism, p.Deadline, func(ctx *evalCtx, i int) {
		ic, cut := ctx.ascend(seeds[i], p.MaxIter, p.Tol, p.Deadline)
		results[i] = startResult{
			w:   append(mat.Vec(nil), ctx.w...),
			ic:  ic,
			cut: cut,
		}
	})

	// Deterministic reduction: IC descending, canonical-w ascending on
	// ties — independent of which worker ran which start.
	var best mat.Vec
	bestIC := math.Inf(-1)
	starts := 0
	timedOut := false
	for i := range results {
		r := &results[i]
		if !ran[i] {
			timedOut = true
			continue
		}
		starts++
		if r.cut {
			timedOut = true
		}
		canonicalize(r.w)
		if r.ic > bestIC || (r.ic == bestIC && best != nil && lexLess(r.w, best)) {
			bestIC, best = r.ic, r.w
		}
	}
	if best == nil {
		return nil, ErrNoDirection
	}
	_, ghat := o.moments(best)
	return &Result{
		W: best, Variance: ghat, IC: bestIC,
		SI:       bestIC / sip.DL(numConds, true),
		Starts:   starts,
		TimedOut: timedOut,
	}, nil
}

// loadPair projects the scatter and every distinct Σ onto the (i,j)
// coordinate plane, after which evalPairTheta needs only scalars.
func (c *evalCtx) loadPair(i, j int) (sII, sIJ, sJI, sJJ float64) {
	o := c.o
	for gi, sigma := range o.sigmas {
		c.pII[gi] = sigma.At(i, i)
		c.pIJ[gi] = sigma.At(i, j)
		c.pJI[gi] = sigma.At(j, i)
		c.pJJ[gi] = sigma.At(j, j)
	}
	s := o.scatter
	return s.At(i, i), s.At(i, j), s.At(j, i), s.At(j, j)
}

// evalPairTheta evaluates the spread IC of w = cosθ·eᵢ + sinθ·eⱼ from
// the loaded 2×2 projections. Every quadratic form collapses to
// c·(Mᵢᵢc + Mᵢⱼs) + s·(Mⱼᵢc + Mⱼⱼs) — the exact float program a dense
// QuadForm runs on the sparse w (the zero entries only ever add +0.0),
// so the closed form is bit-compatible with the dense objective.
func (c *evalCtx) evalPairTheta(theta, sII, sIJ, sJI, sJJ float64) float64 {
	o := c.o
	ct := math.Cos(theta)
	st := math.Sin(theta)
	inv := 1 / o.total
	var a1, a2, a3 float64
	for gi := range o.sigmas {
		q := ct*(c.pII[gi]*ct+c.pIJ[gi]*st) + st*(c.pJI[gi]*ct+c.pJJ[gi]*st)
		a := q * inv
		cc := o.counts[gi]
		a1 += cc * a
		a2 += cc * a * a
		a3 += cc * a * a * a
	}
	ghat := ct*(sII*ct+sIJ*st) + st*(sJI*ct+sJJ*st)
	return si.SpreadICFromMoments(si.MomentsFromSums(a1, a2, a3), ghat)
}

// bestPairTheta optimizes θ for the pair (i, j): a coarse grid over
// [0, π) (w and −w are equivalent) followed by golden-section
// refinement that carries the two interior evaluations across
// iterations — one fresh evaluation per shrink instead of two.
func (c *evalCtx) bestPairTheta(i, j int) (theta, ic float64) {
	sII, sIJ, sJI, sJJ := c.loadPair(i, j)
	const grid = 96
	bestTheta, bestVal := 0.0, math.Inf(-1)
	for g := 0; g < grid; g++ {
		th := math.Pi * float64(g) / grid
		if v := c.evalPairTheta(th, sII, sIJ, sJI, sJJ); v > bestVal {
			bestVal, bestTheta = v, th
		}
	}
	lo := bestTheta - math.Pi/grid
	hi := bestTheta + math.Pi/grid
	const phi = 0.6180339887498949
	m1 := hi - phi*(hi-lo)
	m2 := lo + phi*(hi-lo)
	f1 := c.evalPairTheta(m1, sII, sIJ, sJI, sJJ)
	f2 := c.evalPairTheta(m2, sII, sIJ, sJI, sJJ)
	for iter := 0; iter < 60; iter++ {
		if f1 > f2 {
			hi, m2, f2 = m2, m1, f1
			m1 = hi - phi*(hi-lo)
			f1 = c.evalPairTheta(m1, sII, sIJ, sJI, sJJ)
		} else {
			lo, m1, f1 = m1, m2, f2
			m2 = lo + phi*(hi-lo)
			f2 = c.evalPairTheta(m2, sII, sIJ, sJI, sJJ)
		}
	}
	th := (lo + hi) / 2
	if v := c.evalPairTheta(th, sII, sIJ, sJI, sJJ); v > bestVal {
		bestVal, bestTheta = v, th
	}
	return bestTheta, bestVal
}

// pairAt maps a flat pair index to the (i, j) attribute pair, i < j,
// enumerated row-major — the same order the former nested loops used.
func pairAt(pi, d int) (int, int) {
	for i := 0; i < d-1; i++ {
		row := d - 1 - i
		if pi < row {
			return i, i + 1 + pi
		}
		pi -= row
	}
	panic("spreadopt: pair index out of range")
}

// optimizePairs implements the 2-sparsity constraint of §III-C: for
// every pair of target attributes, w = cosθ·e_i + sinθ·e_j is optimized
// over θ via the closed-form 2×2 projections, and the best pair wins.
// Pairs are scanned by the worker pool; the reduction (IC descending,
// first pair in enumeration order on ties) is byte-identical at any
// worker count.
func optimizePairs(o *objective, d, numConds int, sip si.Params, p Params) (*Result, error) {
	if d < 2 {
		return nil, fmt.Errorf("spreadopt: pair-sparse mode needs at least 2 targets")
	}
	numPairs := d * (d - 1) / 2
	type pairResult struct {
		theta float64
		ic    float64
	}
	results := make([]pairResult, numPairs)
	ran := o.forEachStart(numPairs, p.Parallelism, p.Deadline, func(ctx *evalCtx, pi int) {
		i, j := pairAt(pi, d)
		theta, ic := ctx.bestPairTheta(i, j)
		results[pi] = pairResult{theta: theta, ic: ic}
	})

	bestPair, bestIC := -1, math.Inf(-1)
	starts := 0
	timedOut := false
	for pi := range results {
		if !ran[pi] {
			timedOut = true
			continue
		}
		starts++
		if results[pi].ic > bestIC {
			bestIC, bestPair = results[pi].ic, pi
		}
	}
	if bestPair < 0 {
		return nil, ErrNoDirection
	}
	i, j := pairAt(bestPair, d)
	best := make(mat.Vec, d)
	best[i] = math.Cos(results[bestPair].theta)
	best[j] = math.Sin(results[bestPair].theta)
	canonicalize(best)
	_, ghat := o.moments(best)
	return &Result{
		W: best, Variance: ghat, IC: bestIC,
		SI:       bestIC / sip.DL(numConds, true),
		Starts:   starts,
		TimedOut: timedOut,
	}, nil
}

// canonicalize flips w so its largest-magnitude component is positive
// (w and −w describe the same spread pattern).
func canonicalize(w mat.Vec) {
	maxI := 0
	for i := range w {
		if math.Abs(w[i]) > math.Abs(w[maxI]) {
			maxI = i
		}
	}
	if w[maxI] < 0 {
		w.Scale(-1)
	}
}
