package spreadopt

import (
	"math"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/si"
)

// buildMultiSigma prepares an objective with several distinct background
// covariances: a base case plus extra spread commits that diverge Σ
// between groups, so the closed-form pair path is exercised with more
// than one matrix.
func buildMultiSigma(t *testing.T, n, d int, seed int64) *objective {
	t.Helper()
	v := make(mat.Vec, d)
	v[0], v[d-1] = 1, -1
	m, y, ext, center := buildCase(t, n, d, v, 5.0, seed)
	// A spread commit on a half-extension splits the groups and gives
	// them distinct covariances.
	half := ext.Clone()
	for i := 0; i < n/2; i++ {
		half.Remove(i)
	}
	w := make(mat.Vec, d)
	w[0] = 1
	if err := m.CommitSpread(half, w, center, 1.3); err != nil {
		t.Fatal(err)
	}
	o, err := newObjective(m, y, ext, center)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.sigmas) < 2 {
		t.Fatalf("want ≥2 distinct Σ, got %d", len(o.sigmas))
	}
	return o
}

// TestPairClosedFormMatchesDenseObjective: the 2×2-projection
// evaluation must agree with the dense objective on the corresponding
// sparse direction to ≤1e-12 — they are the same float program modulo
// the dense path's +0.0 terms.
func TestPairClosedFormMatchesDenseObjective(t *testing.T) {
	for _, tc := range []struct {
		n, d int
		seed int64
	}{{200, 4, 21}, {300, 6, 22}, {150, 3, 23}} {
		o := buildMultiSigma(t, tc.n, tc.d, tc.seed)
		ctx := o.newCtx()
		w := make(mat.Vec, tc.d)
		for i := 0; i < tc.d-1; i++ {
			for j := i + 1; j < tc.d; j++ {
				sII, sIJ, sJI, sJJ := ctx.loadPair(i, j)
				for g := 0; g < 37; g++ {
					theta := math.Pi * float64(g) / 37
					closed := ctx.evalPairTheta(theta, sII, sIJ, sJI, sJJ)
					for k := range w {
						w[k] = 0
					}
					w[i] = math.Cos(theta)
					w[j] = math.Sin(theta)
					dense := o.eval(w)
					if diff := math.Abs(closed - dense); diff > 1e-12*(1+math.Abs(dense)) {
						t.Fatalf("d=%d pair(%d,%d) θ=%v: closed %v vs dense %v (diff %g)",
							tc.d, i, j, theta, closed, dense, diff)
					}
				}
			}
		}
	}
}

// densePairReference mirrors optimizePairs' sequential control flow —
// same grid, same carried golden-section, same reduction — but
// evaluates every θ through the dense objective, as the pre-closed-form
// implementation did. The engine must select the identical (i,j,θ)
// argmax.
func densePairReference(o *objective, d int) (mat.Vec, float64) {
	w := make(mat.Vec, d)
	evalTheta := func(i, j int, theta float64) float64 {
		for k := range w {
			w[k] = 0
		}
		w[i] = math.Cos(theta)
		w[j] = math.Sin(theta)
		return o.eval(w)
	}
	var best mat.Vec
	bestIC := math.Inf(-1)
	for i := 0; i < d-1; i++ {
		for j := i + 1; j < d; j++ {
			const grid = 96
			bestTheta, bestVal := 0.0, math.Inf(-1)
			for g := 0; g < grid; g++ {
				theta := math.Pi * float64(g) / grid
				if v := evalTheta(i, j, theta); v > bestVal {
					bestVal, bestTheta = v, theta
				}
			}
			lo := bestTheta - math.Pi/grid
			hi := bestTheta + math.Pi/grid
			const phi = 0.6180339887498949
			m1 := hi - phi*(hi-lo)
			m2 := lo + phi*(hi-lo)
			f1 := evalTheta(i, j, m1)
			f2 := evalTheta(i, j, m2)
			for iter := 0; iter < 60; iter++ {
				if f1 > f2 {
					hi, m2, f2 = m2, m1, f1
					m1 = hi - phi*(hi-lo)
					f1 = evalTheta(i, j, m1)
				} else {
					lo, m1, f1 = m1, m2, f2
					m2 = lo + phi*(hi-lo)
					f2 = evalTheta(i, j, m2)
				}
			}
			theta := (lo + hi) / 2
			if v := evalTheta(i, j, theta); v > bestVal {
				bestVal, bestTheta = v, theta
			}
			if bestVal > bestIC {
				bestIC = bestVal
				best = make(mat.Vec, d)
				best[i] = math.Cos(bestTheta)
				best[j] = math.Sin(bestTheta)
			}
		}
	}
	canonicalize(best)
	return best, bestIC
}

// TestPairSparseSelectsDenseArgmax: the full pair-sparse optimizer must
// select the identical (i,j,θ) argmax as the dense-objective reference.
func TestPairSparseSelectsDenseArgmax(t *testing.T) {
	for _, tc := range []struct {
		n, d int
		seed int64
	}{{250, 4, 31}, {200, 5, 32}, {160, 3, 33}} {
		o := buildMultiSigma(t, tc.n, tc.d, tc.seed)
		res, err := optimizePairs(o, tc.d, 1, si.Default(), Params{}.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		wantW, wantIC := densePairReference(o, tc.d)
		if math.Abs(res.IC-wantIC) > 1e-12*(1+math.Abs(wantIC)) {
			t.Fatalf("d=%d: IC %v vs dense reference %v", tc.d, res.IC, wantIC)
		}
		for k := range wantW {
			if math.Abs(res.W[k]-wantW[k]) > 1e-12 {
				t.Fatalf("d=%d: W[%d] = %v vs dense reference %v", tc.d, k, res.W[k], wantW[k])
			}
		}
	}
}

// TestParallelRestartsByteIdentical: Optimize must return byte-identical
// results at any worker count, in both the general and the pair-sparse
// mode — the reduction is deterministic, not schedule-dependent.
func TestParallelRestartsByteIdentical(t *testing.T) {
	for _, pairSparse := range []bool{false, true} {
		o := func() *Result {
			m, y, ext, center := buildCase(t, 400, 5, mat.Vec{1, 2, 0, -1, 0.5}, 7.0, 41)
			res, err := Optimize(m, y, ext, center, 2, si.Default(),
				Params{PairSparse: pairSparse, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}()
		for _, par := range []int{2, 3, 8} {
			m, y, ext, center := buildCase(t, 400, 5, mat.Vec{1, 2, 0, -1, 0.5}, 7.0, 41)
			res, err := Optimize(m, y, ext, center, 2, si.Default(),
				Params{PairSparse: pairSparse, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if res.Starts != o.Starts ||
				math.Float64bits(res.IC) != math.Float64bits(o.IC) ||
				math.Float64bits(res.SI) != math.Float64bits(o.SI) ||
				math.Float64bits(res.Variance) != math.Float64bits(o.Variance) {
				t.Fatalf("pairSparse=%v parallelism=%d: %+v vs serial %+v", pairSparse, par, res, o)
			}
			if len(res.W) != len(o.W) {
				t.Fatalf("W length mismatch")
			}
			for k := range o.W {
				if math.Float64bits(res.W[k]) != math.Float64bits(o.W[k]) {
					t.Fatalf("pairSparse=%v parallelism=%d: W[%d] %v vs %v",
						pairSparse, par, k, res.W[k], o.W[k])
				}
			}
		}
	}
}

// TestDeadlineDegradesToBestSoFar: an already-expired deadline must
// still produce a valid direction (the first start is guaranteed), with
// TimedOut set — the serving path depends on this degradation.
func TestDeadlineDegradesToBestSoFar(t *testing.T) {
	for _, pairSparse := range []bool{false, true} {
		m, y, ext, center := buildCase(t, 300, 4, mat.Vec{1, 1, 0, 0}, 6.0, 51)
		res, err := Optimize(m, y, ext, center, 1, si.Default(),
			Params{PairSparse: pairSparse, Deadline: time.Now().Add(-time.Second)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.TimedOut {
			t.Fatalf("pairSparse=%v: expected TimedOut", pairSparse)
		}
		if res.Starts < 1 {
			t.Fatalf("pairSparse=%v: Starts = %d, want ≥1", pairSparse, res.Starts)
		}
		if math.IsNaN(res.IC) || math.IsInf(res.IC, 0) {
			t.Fatalf("pairSparse=%v: IC = %v", pairSparse, res.IC)
		}
		if math.Abs(res.W.Norm()-1) > 1e-9 {
			t.Fatalf("pairSparse=%v: |w| = %v", pairSparse, res.W.Norm())
		}
	}
}
