package spreadopt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/si"
)

// buildCase creates a model and data where the subgroup (all points) has
// variance `scale` along direction v and 1 elsewhere, against a
// standard-normal background.
func buildCase(t *testing.T, n, d int, v mat.Vec, scale float64, seed int64) (*background.Model, *mat.Dense, *bitset.Set, mat.Vec) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v = v.Clone().Normalize()
	y := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		// Sample isotropic, then stretch the v component.
		z := make(mat.Vec, d)
		for j := range z {
			z[j] = rng.NormFloat64()
		}
		c := z.Dot(v)
		z.AddScaled(math.Sqrt(scale)-1, v.Clone().Scale(c))
		copy(y.Row(i), z)
	}
	m, err := background.New(n, make(mat.Vec, d), mat.Eye(d))
	if err != nil {
		t.Fatal(err)
	}
	ext := bitset.Full(n)
	center := pattern.SubgroupMean(y, ext)
	// Two-step flow: commit the location first.
	if err := m.CommitLocation(ext, center); err != nil {
		t.Fatal(err)
	}
	return m, y, ext, center
}

func TestRecoversHighVarianceDirection(t *testing.T) {
	v := mat.Vec{1, 2, -1, 0.5}
	m, y, ext, center := buildCase(t, 600, 4, v, 9.0, 1)
	res, err := Optimize(m, y, ext, center, 1, si.Default(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	dot := math.Abs(res.W.Dot(v.Clone().Normalize()))
	if dot < 0.97 {
		t.Fatalf("recovered direction overlaps planted by %v only (w=%v)", dot, res.W)
	}
	if res.Variance < 5 {
		t.Fatalf("variance along w = %v, expected inflated", res.Variance)
	}
	if math.Abs(res.W.Norm()-1) > 1e-9 {
		t.Fatalf("w not unit: %v", res.W.Norm())
	}
}

func TestRecoversLowVarianceDirection(t *testing.T) {
	v := mat.Vec{1, -1, 0}
	m, y, ext, center := buildCase(t, 600, 3, v, 0.05, 2)
	res, err := Optimize(m, y, ext, center, 1, si.Default(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	dot := math.Abs(res.W.Dot(v.Clone().Normalize()))
	if dot < 0.97 {
		t.Fatalf("recovered direction overlaps planted by %v only (w=%v)", dot, res.W)
	}
	if res.Variance > 0.3 {
		t.Fatalf("variance along w = %v, expected deflated", res.Variance)
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, y, ext, center := buildCase(t, 200, 5, mat.Vec{1, 0, 0, 0, 1}, 4.0, 4)
	// Add a second group by committing a location pattern on half.
	half := bitset.New(200)
	for i := 0; i < 100; i++ {
		half.Add(i)
	}
	sub := pattern.SubgroupMean(y, half)
	if err := m.CommitLocation(half, sub); err != nil {
		t.Fatal(err)
	}
	o, err := newObjective(m, y, ext, center)
	if err != nil {
		t.Fatal(err)
	}
	ctx := o.newCtx()
	grad := make(mat.Vec, 5)
	for trial := 0; trial < 20; trial++ {
		w := make(mat.Vec, 5)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		w.Normalize()
		ic := ctx.evalGrad(w, grad)
		const h = 1e-6
		for j := range w {
			wp := w.Clone()
			wp[j] += h
			wm := w.Clone()
			wm[j] -= h
			fd := (o.eval(wp) - o.eval(wm)) / (2 * h)
			if math.Abs(fd-grad[j]) > 1e-3*(1+math.Abs(fd)) {
				t.Fatalf("grad[%d]: analytic %v, fd %v (ic=%v)", j, grad[j], fd, ic)
			}
		}
	}
}

func TestPairSparseMode(t *testing.T) {
	// Inflate variance in the (0,1) plane direction (1,1)/√2.
	v := mat.Vec{1, 1, 0, 0}
	m, y, ext, center := buildCase(t, 500, 4, v, 9.0, 5)
	res, err := Optimize(m, y, ext, center, 1, si.Default(), Params{PairSparse: true})
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, x := range res.W {
		if math.Abs(x) > 1e-9 {
			nonzero++
		}
	}
	if nonzero > 2 {
		t.Fatalf("pair-sparse w has %d nonzeros: %v", nonzero, res.W)
	}
	dot := math.Abs(res.W.Dot(v.Clone().Normalize()))
	if dot < 0.95 {
		t.Fatalf("pair-sparse direction overlap = %v (w=%v)", dot, res.W)
	}
	if res.Starts != 6 { // C(4,2) pairs
		t.Fatalf("Starts = %d, want 6", res.Starts)
	}
}

func TestPairSparseNotWorseThanAxes(t *testing.T) {
	m, y, ext, center := buildCase(t, 300, 3, mat.Vec{0, 0, 1}, 6.0, 6)
	res, err := Optimize(m, y, ext, center, 1, si.Default(), Params{PairSparse: true})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := newObjective(m, y, ext, center)
	for axis := 0; axis < 3; axis++ {
		w := make(mat.Vec, 3)
		w[axis] = 1
		if o.eval(w) > res.IC+1e-6 {
			t.Fatalf("axis %d beats pair-sparse optimum: %v > %v", axis, o.eval(w), res.IC)
		}
	}
}

func TestSingleTargetDimension(t *testing.T) {
	n := 100
	rng := rand.New(rand.NewSource(7))
	y := mat.NewDense(n, 1)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64() * 3
	}
	m, err := background.New(n, mat.Vec{0}, mat.Eye(1))
	if err != nil {
		t.Fatal(err)
	}
	ext := bitset.Full(n)
	center := pattern.SubgroupMean(y, ext)
	if err := m.CommitLocation(ext, center); err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(m, y, ext, center, 1, si.Default(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.W) != 1 || math.Abs(res.W[0]) != 1 {
		t.Fatalf("1-D direction = %v", res.W)
	}
	if res.Variance < 4 {
		t.Fatalf("variance = %v, expected ≈9", res.Variance)
	}
}

func TestCanonicalSign(t *testing.T) {
	w := mat.Vec{-0.8, 0.6}
	canonicalize(w)
	if w[0] != 0.8 || w[1] != -0.6 {
		t.Fatalf("canonicalize = %v", w)
	}
}

func TestEmptyExtension(t *testing.T) {
	m, err := background.New(10, mat.Vec{0, 0}, mat.Eye(2))
	if err != nil {
		t.Fatal(err)
	}
	y := mat.NewDense(10, 2)
	if _, err := Optimize(m, y, bitset.New(10), mat.Vec{0, 0}, 1, si.Default(), Params{}); err == nil {
		t.Fatal("empty extension should error")
	}
}
