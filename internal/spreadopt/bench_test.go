package spreadopt

import (
	"testing"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/gen"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/si"
	"repro/internal/stats"
)

// benchObjective builds the two-step state the optimizer runs from on a
// generated replica: MaxEnt model on the empirical moments, a subgroup
// extension, and its location committed.
func benchObjective(b *testing.B, y *mat.Dense, frac int) (*background.Model, *bitset.Set, mat.Vec) {
	b.Helper()
	n := y.R
	mu := stats.MeanVec(y, nil)
	cov := stats.CovMat(y, nil)
	m, err := background.New(n, mu, cov)
	if err != nil {
		b.Fatal(err)
	}
	ext := bitset.New(n)
	for i := 0; i < n/frac; i++ {
		ext.Add(i)
	}
	center := pattern.SubgroupMean(y, ext)
	if err := m.CommitLocation(ext, center); err != nil {
		b.Fatal(err)
	}
	return m, ext, center
}

// BenchmarkSpreadOptimizeMammals measures a full general-mode
// multi-start optimization at the paper's highest target dimensionality
// (mammals replica, d=124): eigenvector seeding plus restarts, each
// ascended with the sufficient-statistics line search.
func BenchmarkSpreadOptimizeMammals(b *testing.B) {
	y := gen.MammalsLike(gen.SeedMammals).DS.Y
	m, ext, center := benchObjective(b, y, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(m, y, ext, center, 2, si.Default(), Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpreadPairSparseSocio measures the §III-C pair-sparse mode
// on the socio-economics replica (d=5, 10 pairs) — the per-request cost
// of the server's interpretable spread preview.
func BenchmarkSpreadPairSparseSocio(b *testing.B) {
	y := gen.SocioEconLike(gen.SeedSocio).DS.Y
	m, ext, center := benchObjective(b, y, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(m, y, ext, center, 2, si.Default(), Params{PairSparse: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpreadEvalMammals tracks the steady-state objective
// evaluation at d=124: two quadratic forms per distinct Σ, zero
// allocations.
func BenchmarkSpreadEvalMammals(b *testing.B) {
	y := gen.MammalsLike(gen.SeedMammals).DS.Y
	m, ext, center := benchObjective(b, y, 3)
	o, err := newObjective(m, y, ext, center)
	if err != nil {
		b.Fatal(err)
	}
	w := make(mat.Vec, y.C)
	w[0], w[1] = 3, -4
	w.Normalize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = o.eval(w)
	}
}

// BenchmarkSpreadEvalGradMammals tracks the steady-state fused
// IC+gradient evaluation at d=124 (the ascent's per-iteration kernel):
// one Σ·w product per distinct matrix, zero allocations.
func BenchmarkSpreadEvalGradMammals(b *testing.B) {
	y := gen.MammalsLike(gen.SeedMammals).DS.Y
	m, ext, center := benchObjective(b, y, 3)
	o, err := newObjective(m, y, ext, center)
	if err != nil {
		b.Fatal(err)
	}
	ctx := o.newCtx()
	w := make(mat.Vec, y.C)
	w[0], w[1] = 3, -4
	w.Normalize()
	grad := make(mat.Vec, y.C)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = ctx.evalGrad(w, grad)
	}
}

var sink float64
