package spreadopt

import (
	"math"
	"testing"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/si"
)

// TestTinySubgroup: the optimizer must behave on a minimum-support
// subgroup (2 points), where the scatter is rank-1.
func TestTinySubgroup(t *testing.T) {
	y := mat.NewDense(10, 2)
	y.Set(0, 0, 3)
	y.Set(0, 1, 1)
	y.Set(1, 0, -3)
	y.Set(1, 1, -1)
	m, err := background.New(10, mat.Vec{0, 0}, mat.Eye(2))
	if err != nil {
		t.Fatal(err)
	}
	ext := bitset.FromIndices(10, []int{0, 1})
	center := pattern.SubgroupMean(y, ext)
	if err := m.CommitLocation(ext, center); err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(m, y, ext, center, 1, si.Default(), Params{Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.IC) || math.IsInf(res.IC, 0) {
		t.Fatalf("IC = %v", res.IC)
	}
	if math.Abs(res.W.Norm()-1) > 1e-9 {
		t.Fatalf("w norm = %v", res.W.Norm())
	}
}

// TestDegenerateVarianceDirection: when the subgroup is (nearly)
// constant along some axis, ĝ ≈ 0 along it and the clamped IC region is
// entered; the optimizer must stay finite and still return a unit
// vector.
func TestDegenerateVarianceDirection(t *testing.T) {
	const n = 50
	y := mat.NewDense(n, 2)
	for i := 0; i < n; i++ {
		y.Set(i, 0, float64(i%7))
		y.Set(i, 1, 0) // exactly constant second axis
	}
	m, err := background.New(n, mat.Vec{0, 0}, mat.Eye(2))
	if err != nil {
		t.Fatal(err)
	}
	ext := bitset.Full(n)
	center := pattern.SubgroupMean(y, ext)
	if err := m.CommitLocation(ext, center); err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(m, y, ext, center, 1, si.Default(), Params{Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.IC) || math.IsInf(res.IC, 0) {
		t.Fatalf("IC = %v", res.IC)
	}
	// The zero-variance axis is "impossibly" quiet — the optimizer
	// should find it overwhelmingly interesting (clamped but finite).
	if math.Abs(res.W[1]) < 0.9 {
		t.Fatalf("expected the degenerate axis to win, got w=%v", res.W)
	}
}

// TestStartsCounted: Optimize must report how many starts it explored.
func TestStartsCounted(t *testing.T) {
	m, y, ext, center := buildCase(t, 100, 3, mat.Vec{1, 0, 0}, 4, 11)
	res, err := Optimize(m, y, ext, center, 1, si.Default(), Params{Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Starts < 5 {
		t.Fatalf("Starts = %d, want at least the %d restarts", res.Starts, 5)
	}
}

// TestSIUsesSpreadDL: the returned SI must use the spread description
// length (γ·|C| + η + 1).
func TestSIUsesSpreadDL(t *testing.T) {
	m, y, ext, center := buildCase(t, 100, 2, mat.Vec{1, 0}, 5, 12)
	p := si.Params{Gamma: 0.5, Eta: 1}
	res, err := Optimize(m, y, ext, center, 2, p, Params{})
	if err != nil {
		t.Fatal(err)
	}
	wantDL := p.DL(2, true) // 0.5*2 + 1 + 1 = 3
	if math.Abs(res.SI*wantDL-res.IC) > 1e-9*(1+math.Abs(res.IC)) {
		t.Fatalf("SI·DL = %v, IC = %v", res.SI*wantDL, res.IC)
	}
}
