package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
)

// postJSON is doJSON without *testing.T, safe to call from worker
// goroutines (t.Fatal must only run on the test goroutine).
func postJSON(method, url string, body any, wantStatus int, out any) error {
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		return fmt.Errorf("%s %s: status %d (want %d): %s",
			method, url, resp.StatusCode, wantStatus, msg.String())
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// TestConcurrentSessionsDoNotSerialize is the regression test for the
// old locking bug: the session lock used to be held across the entire
// mine call, so a second session's requests could serialize behind one
// expensive search. Now a long mine on session A runs on a pool worker
// while session B completes a full sync mine/commit loop.
func TestConcurrentSessionsDoNotSerialize(t *testing.T) {
	ts := newTestServerWith(t, Options{Workers: 2})
	var infoA SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "mammals", Depth: 8, BeamWidth: 1024,
	}, http.StatusCreated, &infoA)
	var infoB SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 620, Depth: 2,
	}, http.StatusCreated, &infoB)
	baseA := ts.URL + "/api/sessions/" + infoA.ID
	baseB := ts.URL + "/api/sessions/" + infoB.ID

	// Session A starts a mine that will use its whole 4s budget.
	var jobA jobView
	doJSON(t, "POST", baseA+"/mine", MineRequest{Async: true, TimeoutMS: 4000},
		http.StatusAccepted, &jobA)

	// Session B runs a complete interactive loop meanwhile.
	var minedB MineResponse
	doJSON(t, "POST", baseB+"/mine", nil, http.StatusOK, &minedB)
	if minedB.Location == nil {
		t.Fatal("session B mined nothing")
	}
	doJSON(t, "POST", baseB+"/commit", nil, http.StatusOK, nil)

	// A's search must still be in flight: B did not wait behind it.
	var jvA jobView
	doJSON(t, "GET", ts.URL+"/api/jobs/"+jobA.ID, nil, http.StatusOK, &jvA)
	if jvA.Status.Terminal() {
		t.Fatalf("session A's 4s mine already %s while B completed a loop — "+
			"either the machine stalled for >4s or sessions serialize again", jvA.Status)
	}

	fin := pollJob(t, ts.URL, jobA.ID, 30*time.Second)
	if fin.Status != jobs.StatusDone {
		t.Fatalf("A's job: %s %s", fin.Status, fin.Error)
	}
	if fin.Result.Status == MineStatusComplete {
		t.Fatal("A's depth-8 mine claims completion inside the 4s budget")
	}
}

// TestConcurrentSessionDeterminism (run under -race in CI) drives N
// sessions through full mine/commit loops concurrently and asserts
// each session's trajectory is exactly what a serial run produces —
// concurrency must not leak state across sessions or reorder a
// session's own iterations.
func TestConcurrentSessionDeterminism(t *testing.T) {
	const users = 4
	const iters = 2

	type step struct {
		Intention string
		SI        float64
	}
	drive := func(ts string, user int) ([]step, error) {
		var info SessionInfo
		if err := postJSON("POST", ts+"/api/sessions", CreateRequest{
			Dataset: "synthetic", Seed: int64(100 + user), Depth: 2,
		}, http.StatusCreated, &info); err != nil {
			return nil, err
		}
		base := ts + "/api/sessions/" + info.ID
		var out []step
		for i := 0; i < iters; i++ {
			var mined MineResponse
			if err := postJSON("POST", base+"/mine", nil, http.StatusOK, &mined); err != nil {
				return nil, err
			}
			if mined.Location == nil {
				return nil, fmt.Errorf("user %d iter %d: no pattern", user, i)
			}
			out = append(out, step{mined.Location.Intention, mined.Location.SI})
			if err := postJSON("POST", base+"/commit", nil, http.StatusOK, nil); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	// Serial reference on its own server.
	serial := make([][]step, users)
	tsSerial := newTestServerWith(t, Options{Workers: 2})
	for u := 0; u < users; u++ {
		steps, err := drive(tsSerial.URL, u)
		if err != nil {
			t.Fatal(err)
		}
		serial[u] = steps
	}

	// Concurrent run on a fresh server.
	concurrent := make([][]step, users)
	errs := make([]error, users)
	tsConc := newTestServerWith(t, Options{Workers: users})
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			concurrent[u], errs[u] = drive(tsConc.URL, u)
		}(u)
	}
	wg.Wait()
	for u := 0; u < users; u++ {
		if errs[u] != nil {
			t.Fatal(errs[u])
		}
		for i := range serial[u] {
			if serial[u][i] != concurrent[u][i] {
				t.Fatalf("user %d iter %d: concurrent %+v != serial %+v",
					u, i, concurrent[u][i], serial[u][i])
			}
		}
	}
}
