package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/randx"
)

// Store-Put resilience parameters. A healthy server retries a failed
// Put a few times with capped, jittered exponential backoff; once a
// full retry cycle is exhausted the server enters degraded mode —
// sessions keep serving from memory, responses advertise
// "persistence":"degraded", and the snapshot endpoint sheds load with
// 503 + retryAfterMs. Degraded Puts drop to a single attempt (no
// backoff sleeps on request paths while the store is known-bad); the
// first attempt that succeeds heals the server automatically.
const (
	putAttempts        = 3
	putBackoffBase     = 5 * time.Millisecond
	putBackoffCap      = 80 * time.Millisecond
	degradedRetryAfter = time.Second
)

// Persistence states surfaced in API responses and readiness probes.
const (
	PersistenceOK       = "ok"
	PersistenceDegraded = "degraded"
)

// storeHealth is the degraded-mode state machine. Transitions:
// healthy → degraded when a full retry cycle of a Put fails;
// degraded → healthy when any later Put attempt succeeds. The flag is
// read lock-free on request paths.
type storeHealth struct {
	degraded atomic.Bool

	mu      sync.Mutex
	rng     *randx.Source // jitter source (seeded: tests are repeatable)
	lastErr error
	since   time.Time // when degraded mode was entered
}

func newStoreHealth() *storeHealth {
	return &storeHealth{rng: randx.New(1)}
}

func (h *storeHealth) state() string {
	if h.degraded.Load() {
		return PersistenceDegraded
	}
	return PersistenceOK
}

// backoff returns the sleep before retry attempt (1-based, so the
// first retry sleeps ~base): exponential, capped, with up to 50%
// uniform jitter so a thundering herd of persist paths spreads out.
func (h *storeHealth) backoff(retry int) time.Duration {
	d := putBackoffBase << (retry - 1)
	if d > putBackoffCap {
		d = putBackoffCap
	}
	h.mu.Lock()
	jitter := time.Duration(h.rng.Int63n(int64(d)/2 + 1))
	h.mu.Unlock()
	return d + jitter
}

// markOK records a successful Put, healing degraded mode.
func (h *storeHealth) markOK() {
	if h.degraded.Swap(false) {
		h.mu.Lock()
		h.lastErr = nil
		h.since = time.Time{}
		h.mu.Unlock()
	}
}

// markFailed records an exhausted retry cycle, entering degraded mode.
func (h *storeHealth) markFailed(err error) {
	h.mu.Lock()
	h.lastErr = err
	if !h.degraded.Load() {
		h.since = time.Now()
	}
	h.mu.Unlock()
	h.degraded.Store(true)
}

// lastError returns the error that entered (or kept) degraded mode.
func (h *storeHealth) lastError() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastErr
}

// storePut is the single write path to the session store: every
// persist (create, commit, evict, explicit snapshot, drain flush) goes
// through it so retry, backoff and the degraded-mode transitions are
// applied uniformly. It returns the last error when all attempts
// failed; the caller decides whether that is fatal (explicit snapshot)
// or best-effort (create).
func (s *Server) storePut(snap *Snapshot) error {
	// Stale-write fence (cluster migration safety, DESIGN.md §12). A
	// session's durable state only grows — iterations and history are
	// append-only, and byte-identical determinism makes equal progress
	// equal state — so a Put carrying *less* progress than the stored
	// snapshot can only be a stale copy: typically an idle replica of a
	// session whose ownership moved to another shard (which advanced it
	// there) being LRU-evicted here. Dropping the write is success, not
	// failure — the store already holds a strictly fresher version. The
	// read-compare-write is not atomic across processes; the fence
	// closes the common lost-update window (idle eviction after
	// handoff), while the router's one-owner-at-a-time discipline
	// prevents concurrent divergent writers in the first place.
	if prev, err := s.store.Get(snap.ID); err == nil {
		pi, ph := prev.ProgressKey()
		ni, nh := snap.ProgressKey()
		if pi > ni || (pi == ni && ph > nh) {
			return nil
		}
	}
	attempts := putAttempts
	if s.health.degraded.Load() {
		// Known-bad store: probe once per call. Success heals; adding
		// backoff sleeps here would stack latency onto every request
		// while down.
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(s.health.backoff(i))
		}
		if err = s.store.Put(snap); err == nil {
			s.health.markOK()
			return nil
		}
	}
	s.health.markFailed(err)
	return err
}
