package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// Two in-process "shards" sharing one Store — the minimal cluster
// topology, with the router replaced by the test driving requests to
// the right shard by hand. These tests pin the contracts the cluster
// tier (internal/cluster) is built on.

func newShardPair(t *testing.T) (a, b *httptest.Server) {
	t.Helper()
	store := NewMemStore()
	srvA := NewWithOptions(Options{Store: store, ShardID: "shard-a"})
	srvB := NewWithOptions(Options{Store: store, ShardID: "shard-b"})
	tsA := httptest.NewServer(srvA.Handler())
	tsB := httptest.NewServer(srvB.Handler())
	t.Cleanup(func() {
		tsA.Close()
		tsB.Close()
		srvA.Close()
		srvB.Close()
	})
	return tsA, tsB
}

// canonicalMineJSON strips the scheduling-dependent mine-response
// fields (job id, SI-bound pruning counters — DESIGN.md §6/§9);
// everything else must be byte-identical across a migration.
func canonicalMineJSON(t *testing.T, m *MineResponse) []byte {
	t.Helper()
	c := *m
	c.Job = ""
	c.BoundEvals = 0
	c.Pruned = 0
	raw, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestMigrationByteIdentical is the migration property test: a session
// built up on shard A (explicit id, k commits), handed off, and adopted
// by shard B via transparent restore-on-miss mines byte-identical
// results at its pinned model version, and exports an identical model
// and history. Run across datasets and commit depths so the property
// is not an artifact of one belief state.
func TestMigrationByteIdentical(t *testing.T) {
	cases := []struct {
		dataset string
		seed    int64
		commits int
	}{
		{"synthetic", 11, 0},
		{"synthetic", 12, 2},
		{"crime", 7, 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s_seed%d_c%d", tc.dataset, tc.seed, tc.commits), func(t *testing.T) {
			tsA, tsB := newShardPair(t)
			id := fmt.Sprintf("mig-%s-%d", tc.dataset, tc.seed)
			var info SessionInfo
			doJSON(t, "POST", tsA.URL+"/api/v1/sessions", CreateRequest{
				ID: id, Dataset: tc.dataset, Seed: tc.seed, Depth: 2, BeamWidth: 8,
			}, http.StatusCreated, &info)
			if info.ID != id {
				t.Fatalf("created id %q, want %q", info.ID, id)
			}
			if info.Shard != "shard-a" {
				t.Fatalf("created on shard %q, want shard-a", info.Shard)
			}
			for i := 0; i < tc.commits; i++ {
				doJSON(t, "POST", tsA.URL+"/api/v1/sessions/"+id+"/mine", nil, http.StatusOK, nil)
				doJSON(t, "POST", tsA.URL+"/api/v1/sessions/"+id+"/commit", nil, http.StatusOK, nil)
			}
			// Observation mine on A: the reference the migrated session
			// must reproduce. Mining does not change durable state, so
			// the snapshot handed off below is the same belief state this
			// mine ran against.
			var mineA MineResponse
			doJSON(t, "POST", tsA.URL+"/api/v1/sessions/"+id+"/mine", nil, http.StatusOK, &mineA)
			var histA, modelA json.RawMessage
			doJSON(t, "GET", tsA.URL+"/api/v1/sessions/"+id+"/history", nil, http.StatusOK, &histA)
			doJSON(t, "GET", tsA.URL+"/api/v1/sessions/"+id+"/model", nil, http.StatusOK, &modelA)

			// Handoff: flush + evict from A. The store now owns the state.
			var ho struct {
				ID   string `json:"id"`
				Live bool   `json:"live"`
			}
			doJSON(t, "POST", tsA.URL+"/api/v1/sessions/"+id+"/handoff", nil, http.StatusOK, &ho)
			if !ho.Live {
				t.Fatal("handoff reported the session as not live on A")
			}
			// Idempotent: a second handoff is a no-op success.
			doJSON(t, "POST", tsA.URL+"/api/v1/sessions/"+id+"/handoff", nil, http.StatusOK, &ho)
			if ho.Live {
				t.Fatal("second handoff claims the session was still live")
			}

			// Adoption on B is transparent: the first touch restores.
			var mineB MineResponse
			doJSON(t, "POST", tsB.URL+"/api/v1/sessions/"+id+"/mine", nil, http.StatusOK, &mineB)
			if mineB.ModelVersion != mineA.ModelVersion {
				t.Fatalf("migrated mine pinned version %d, want %d", mineB.ModelVersion, mineA.ModelVersion)
			}
			if a, b := canonicalMineJSON(t, &mineA), canonicalMineJSON(t, &mineB); string(a) != string(b) {
				t.Fatalf("migrated mine diverged:\n A: %s\n B: %s", a, b)
			}
			var histB, modelB json.RawMessage
			doJSON(t, "GET", tsB.URL+"/api/v1/sessions/"+id+"/history", nil, http.StatusOK, &histB)
			doJSON(t, "GET", tsB.URL+"/api/v1/sessions/"+id+"/model", nil, http.StatusOK, &modelB)
			if string(histA) != string(histB) {
				t.Fatalf("history diverged:\n A: %s\n B: %s", histA, histB)
			}
			if string(modelA) != string(modelB) {
				t.Fatal("model export diverged across migration")
			}

			// The migrated session keeps working: commit on B advances it.
			doJSON(t, "POST", tsB.URL+"/api/v1/sessions/"+id+"/commit", nil, http.StatusOK, nil)
		})
	}
}

// TestCreateExplicitID pins the explicit-id create contract: a valid
// requested id is honored, a taken id answers 409 session_exists (on
// the same shard and across shards sharing a store), and an invalid id
// is a 400.
func TestCreateExplicitID(t *testing.T) {
	tsA, tsB := newShardPair(t)
	req := CreateRequest{ID: "router-0001", Dataset: "synthetic", Seed: 3, Depth: 2, BeamWidth: 8}
	var info SessionInfo
	doJSON(t, "POST", tsA.URL+"/api/v1/sessions", req, http.StatusCreated, &info)
	if info.ID != "router-0001" {
		t.Fatalf("id %q, want router-0001", info.ID)
	}
	var env envelope
	doJSON(t, "POST", tsA.URL+"/api/v1/sessions", req, http.StatusConflict, &env)
	if env.Error.Code != errSessionExists {
		t.Fatalf("same-shard duplicate: code %q, want %q", env.Error.Code, errSessionExists)
	}
	// Persist so the sibling shard can see it through the shared store,
	// then try to create the same id there.
	doJSON(t, "POST", tsA.URL+"/api/v1/sessions/router-0001/snapshot", nil, http.StatusOK, nil)
	doJSON(t, "POST", tsB.URL+"/api/v1/sessions", req, http.StatusConflict, &env)
	if env.Error.Code != errSessionExists {
		t.Fatalf("cross-shard duplicate: code %q, want %q", env.Error.Code, errSessionExists)
	}
	doJSON(t, "POST", tsA.URL+"/api/v1/sessions", CreateRequest{ID: "bad/id", Dataset: "synthetic"},
		http.StatusBadRequest, nil)
}

// TestHandoffWhileMining: a session with an in-flight mine refuses the
// handoff with 409 mine_in_progress (and a retry hint) instead of
// migrating under a running job.
func TestHandoffWhileMining(t *testing.T) {
	ts := newTestServer(t)
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{Dataset: "synthetic", Seed: 5},
		http.StatusCreated, &info)
	// Claim a mine slot through the async API; the job may be queued or
	// running — either way the slot is held until it finishes.
	var job struct {
		ID string `json:"id"`
	}
	doJSON(t, "POST", ts.URL+"/api/v1/sessions/"+info.ID+"/mine",
		MineRequest{Async: true}, http.StatusAccepted, &job)
	var env envelope
	// The slot may already have drained if the mine finished instantly;
	// accept either the 409 or, once done, a clean handoff.
	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/sessions/"+info.ID+"/handoff", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusConflict:
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != errMineInProgress {
			t.Fatalf("code %q, want %q", env.Error.Code, errMineInProgress)
		}
		if env.Error.RetryAfterMs <= 0 {
			t.Fatal("409 handoff must carry a retry hint")
		}
	case http.StatusOK:
		// The mine outran us; nothing left to assert about the race.
	default:
		t.Fatalf("handoff during mine: status %d", resp.StatusCode)
	}
	// Once the job drains the handoff must succeed.
	deadline := time.Now().Add(30 * time.Second)
	for {
		req, _ := http.NewRequest("POST", ts.URL+"/api/v1/sessions/"+info.ID+"/handoff", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("handoff never succeeded after mine; last status %d", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStaleWriteFence: a Put carrying less progress than the stored
// snapshot is dropped — the lost-update guard behind post-handoff LRU
// evictions of idle replicas (DESIGN.md §12).
func TestStaleWriteFence(t *testing.T) {
	store := NewMemStore()
	srv := NewWithOptions(Options{Store: store})
	defer srv.Close()

	fresh := &Snapshot{ID: "fence", Create: CreateRequest{Dataset: "synthetic"},
		Model: json.RawMessage(`{"v":2}`), Iterations: 3,
		History: []PatternJSON{{Kind: "location"}, {Kind: "location"}, {Kind: "location"}}}
	fresh.Seal()
	if err := srv.storePut(fresh); err != nil {
		t.Fatal(err)
	}
	stale := &Snapshot{ID: "fence", Create: CreateRequest{Dataset: "synthetic"},
		Model: json.RawMessage(`{"v":1}`), Iterations: 1,
		History: []PatternJSON{{Kind: "location"}}}
	stale.Seal()
	if err := srv.storePut(stale); err != nil {
		t.Fatalf("stale put must be dropped silently, got %v", err)
	}
	got, err := store.Get("fence")
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != 3 {
		t.Fatalf("stale put overwrote the store: iterations %d, want 3", got.Iterations)
	}
	// Equal progress is not stale: byte-identical determinism makes it
	// the same state, and the rewrite must go through (heal probes).
	equal := &Snapshot{ID: "fence", Create: CreateRequest{Dataset: "synthetic"},
		Model: json.RawMessage(`{"v":3}`), Iterations: 3,
		History: []PatternJSON{{Kind: "location"}, {Kind: "location"}, {Kind: "location"}}}
	equal.Seal()
	if err := srv.storePut(equal); err != nil {
		t.Fatal(err)
	}
	got, err = store.Get("fence")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Model) != `{"v":3}` {
		t.Fatalf("equal-progress put was dropped: model %s", got.Model)
	}
}
