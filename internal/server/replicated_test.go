package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/faultstore"
	"repro/internal/repstore"
)

// TestMemStoreGetNoAliasing is the regression test for the History
// aliasing bug: Get returned a shallow copy whose History slice shared
// its backing array with the stored snapshot, so a caller mutating (or
// appending in place to) the returned history corrupted the store.
func TestMemStoreGetNoAliasing(t *testing.T) {
	st := NewMemStore()
	snap := &Snapshot{
		ID:         "s1",
		Iterations: 2,
		History: []PatternJSON{
			{Kind: "location", Intention: "a"},
			{Kind: "spread", Intention: "b"},
		},
	}
	if err := st.Put(snap); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("s1")
	if err != nil {
		t.Fatal(err)
	}
	got.History[0].Intention = "mutated"
	got.History = append(got.History[:1], PatternJSON{Kind: "location", Intention: "c"})

	again, err := st.Get("s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(again.History) != 2 || again.History[0].Intention != "a" || again.History[1].Intention != "b" {
		t.Fatalf("stored history corrupted through Get's return value: %+v", again.History)
	}
}

// memSnap builds a sealed snapshot at a given progress point.
func memSnap(id string, iterations, history int) *Snapshot {
	s := &Snapshot{
		ID:    id,
		Model: json.RawMessage(fmt.Sprintf(`{"v":%d}`, iterations)),
	}
	for i := 0; i < history; i++ {
		s.History = append(s.History, PatternJSON{Kind: "location", Intention: fmt.Sprintf("p%d", i)})
	}
	s.Iterations = iterations
	s.Seal()
	return s
}

// newReplicatedMem builds a Replicated[Snapshot] over faultstore-
// wrapped MemStores, mirroring NewReplicatedDirStore's config, so
// server-level tests can script per-replica outages.
func newReplicatedMem(t *testing.T, n, w int) (*repstore.Replicated[Snapshot], []*faultstore.Store[Snapshot], []*MemStore) {
	t.Helper()
	var members []repstore.Member[Snapshot]
	var fss []*faultstore.Store[Snapshot]
	var inners []*MemStore
	for i := 0; i < n; i++ {
		inner := NewMemStore()
		fs := faultstore.New[Snapshot](inner, faultstore.Plan{})
		inners = append(inners, inner)
		fss = append(fss, fs)
		members = append(members, repstore.Member[Snapshot]{ID: fmt.Sprintf("r%d", i), Store: fs})
	}
	rep, err := repstore.New(repstore.Config[Snapshot]{
		WriteQuorum:      w,
		ID:               func(s *Snapshot) string { return s.ID },
		Progress:         (*Snapshot).ProgressKey,
		Verify:           (*Snapshot).Verify,
		NotFound:         ErrNotFound,
		Corrupt:          ErrCorrupt,
		BreakerThreshold: 3,
		BreakerBase:      time.Millisecond,
		BreakerCap:       8 * time.Millisecond,
	}, members...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Close)
	return rep, fss, inners
}

// TestReadAfterWriteFreshness pins the quorum intersection property at
// the serving layer's snapshot type: after a successful quorum Put, a
// Get never observes an older version, regardless of which replica was
// down during the write (leaving it lagging) and which is down during
// the read — table-driven across every failure placement at N=3/W=2.
func TestReadAfterWriteFreshness(t *testing.T) {
	const none = -1
	for _, brokenAtPut := range []int{none, 0, 1, 2} {
		for _, brokenAtGet := range []int{none, 0, 1, 2} {
			name := fmt.Sprintf("put-broken=%d/get-broken=%d", brokenAtPut, brokenAtGet)
			t.Run(name, func(t *testing.T) {
				rep, fss, inners := newReplicatedMem(t, 3, 2)

				// v1 lands everywhere; v2 is the acked quorum write that
				// brokenAtPut misses, leaving it lagging at v1.
				if err := rep.Put(memSnap("s1", 1, 1)); err != nil {
					t.Fatal(err)
				}
				if brokenAtPut != none {
					fss[brokenAtPut].Break(nil)
				}
				if err := rep.Put(memSnap("s1", 2, 2)); err != nil {
					t.Fatal(err)
				}
				if brokenAtPut != none {
					fss[brokenAtPut].Heal()
				}
				if brokenAtGet != none {
					fss[brokenAtGet].Break(nil)
				}
				got, err := rep.Get("s1")
				if err != nil {
					t.Fatalf("Get: %v", err)
				}
				if got.Iterations != 2 || len(got.History) != 2 {
					t.Fatalf("stale read: iterations=%d history=%d, want v2", got.Iterations, len(got.History))
				}
				// Read-repair: if the lagging replica answered this read,
				// it must hold v2 now.
				if brokenAtPut != none && brokenAtPut != brokenAtGet {
					if s, err := inners[brokenAtPut].Get("s1"); err != nil || s.Iterations != 2 {
						t.Fatalf("lagging replica not repaired: %+v, %v", s, err)
					}
				}
			})
		}
	}
}

// TestReplicatedReadyzLadder drives the failure ladder end to end over
// HTTP: all healthy → one replica down (store_replica_degraded warning,
// serving unaffected) → quorum lost (existing degraded path: 503 +
// retryAfterMs on snapshot, serve-from-memory on reads) → healed
// (warning clears, sweep converges the replicas).
func TestReplicatedReadyzLadder(t *testing.T) {
	rep, fss, inners := newReplicatedMem(t, 3, 2)
	srv := NewWithOptions(Options{Store: rep})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 7, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/v1/sessions/" + info.ID

	readyz := func(wantStatus int) Readiness {
		t.Helper()
		var rd Readiness
		doJSON(t, "GET", ts.URL+"/api/v1/readyz", nil, wantStatus, &rd)
		return rd
	}

	// Rung 0: healthy — per-replica health present, no warnings.
	rd := readyz(http.StatusOK)
	if !rd.Ready || len(rd.Replicas) != 3 || len(rd.Warnings) != 0 {
		t.Fatalf("healthy readyz: %+v", rd)
	}
	for _, r := range rd.Replicas {
		if r.State != repstore.StateHealthy {
			t.Fatalf("replica %s not healthy: %+v", r.ID, r)
		}
	}

	// Rung 1: one replica down. Commits keep persisting via quorum, and
	// once the breaker trips (each commit costs the dead replica a
	// fence-Get failure and a Put failure), readyz warns without going
	// unready.
	fss[2].Break(nil)
	var commit struct {
		Persisted   bool   `json:"persisted"`
		Persistence string `json:"persistence"`
	}
	for i := 0; i < 2; i++ {
		mineBody(t, base)
		doJSON(t, "POST", base+"/commit", nil, http.StatusOK, &commit)
		if !commit.Persisted || commit.Persistence != PersistenceOK {
			t.Fatalf("commit with 1/3 replicas down: %+v", commit)
		}
	}
	rd = readyz(http.StatusOK)
	if !rd.Ready {
		t.Fatalf("1/3 down must stay ready: %+v", rd)
	}
	if len(rd.Warnings) != 1 || rd.Warnings[0] != ReasonReplicaDegraded {
		t.Fatalf("warnings = %v, want [%s]", rd.Warnings, ReasonReplicaDegraded)
	}
	found := false
	for _, r := range rd.Replicas {
		if r.ID == "r2" {
			found = true
			if r.State == repstore.StateHealthy || r.ConsecutiveFailures == 0 || r.LastError == "" {
				t.Fatalf("broken replica health: %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("replica r2 missing from readyz")
	}

	// Rung 2: quorum lost. The existing storeHealth machinery takes
	// over: commit answers from memory with degraded persistence,
	// snapshot sheds load with 503 + store_degraded, reads still serve.
	fss[1].Break(nil)
	mineBody(t, base)
	doJSON(t, "POST", base+"/commit", nil, http.StatusOK, &commit)
	if commit.Persisted || commit.Persistence != PersistenceDegraded {
		t.Fatalf("commit under quorum loss: %+v", commit)
	}
	if code := v1ErrCode(t, "POST", base+"/snapshot", nil, http.StatusServiceUnavailable); code != errStoreDegraded {
		t.Fatalf("snapshot error code = %q, want %q", code, errStoreDegraded)
	}
	doJSON(t, "GET", base+"/history", nil, http.StatusOK, nil) // serve-from-memory
	rd = readyz(http.StatusServiceUnavailable)
	if rd.Ready || rd.Persistence != PersistenceDegraded {
		t.Fatalf("quorum loss readyz: %+v", rd)
	}
	if len(rd.Warnings) != 0 {
		t.Fatalf("fatal degradation must not also warn: %v", rd.Warnings)
	}

	// Rung 3: heal. The next successful persist flips storeHealth back;
	// the sweep converges the replicas byte-equal.
	fss[1].Heal()
	fss[2].Heal()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Post(base+"/snapshot", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot did not heal: %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		healthy := 0
		for _, h := range rep.ReplicaHealth() {
			if h.State == repstore.StateHealthy {
				healthy++
			}
		}
		if rep.Sweep() == 0 && healthy == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not re-close: %+v", rep.ReplicaHealth())
		}
		time.Sleep(5 * time.Millisecond)
	}
	rd = readyz(http.StatusOK)
	if !rd.Ready || len(rd.Warnings) != 0 {
		t.Fatalf("healed readyz: %+v", rd)
	}
	want, err := inners[0].Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i, inner := range inners[1:] {
		got, err := inner.Get(info.ID)
		if err != nil {
			t.Fatalf("replica %d after sweep: %v", i+1, err)
		}
		if got.Iterations != want.Iterations || len(got.History) != len(want.History) ||
			!bytes.Equal(got.Model, want.Model) {
			t.Fatalf("replica %d diverged after sweep", i+1)
		}
	}
}

// breakDir simulates a dead replica volume from outside the store:
// the directory is renamed away and a regular file takes its place, so
// every operation fails with ENOTDIR even for root. healDir reverses
// it — the "disk" comes back with its old contents.
func breakDir(t *testing.T, dir string) {
	t.Helper()
	if err := os.Rename(dir, dir+".dead"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("dead disk"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func healDir(t *testing.T, dir string) {
	t.Helper()
	if err := os.Remove(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(dir+".dead", dir); err != nil {
		t.Fatal(err)
	}
}

// TestReplicatedDirStoreByteIdenticalConvergence runs the production
// wiring over real directories: writes survive a dead replica dir, the
// dir heals with stale contents, and the anti-entropy sweep converges
// all replicas to byte-identical snapshot files.
func TestReplicatedDirStoreByteIdenticalConvergence(t *testing.T) {
	root := t.TempDir()
	dirs := []string{
		filepath.Join(root, "r0"),
		filepath.Join(root, "r1"),
		filepath.Join(root, "r2"),
	}
	rep, err := NewReplicatedDirStore(dirs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Close)

	if err := rep.Put(memSnap("s1", 1, 1)); err != nil {
		t.Fatal(err)
	}
	breakDir(t, dirs[2])
	if err := rep.Put(memSnap("s1", 3, 3)); err != nil {
		t.Fatalf("Put with dead replica dir: %v", err)
	}
	if err := rep.Put(memSnap("s2", 1, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := rep.Get("s1")
	if err != nil || got.Iterations != 3 {
		t.Fatalf("Get with dead replica dir: %+v, %v", got, err)
	}

	healDir(t, dirs[2]) // back with stale contents (s1@v1, no s2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rep.Sweep() == 0 && dirsByteIdentical(t, dirs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica dirs did not converge byte-identical")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A NewDirStore over the healed replica alone must now restore the
	// freshest state — the point of replication.
	solo, err := NewDirStore(dirs[2])
	if err != nil {
		t.Fatal(err)
	}
	s, err := solo.Get("s1")
	if err != nil || s.Iterations != 3 {
		t.Fatalf("healed replica alone: %+v, %v", s, err)
	}
}

// dirsByteIdentical reports whether every dir holds the same *.json
// file set with identical bytes.
func dirsByteIdentical(t *testing.T, dirs []string) bool {
	t.Helper()
	var refNames []string
	refFiles := map[string][]byte{}
	for i, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return false
		}
		var names []string
		files := map[string][]byte{}
		for _, e := range ents {
			if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return false
			}
			names = append(names, e.Name())
			files[e.Name()] = raw
		}
		sort.Strings(names)
		if i == 0 {
			refNames, refFiles = names, files
			continue
		}
		if len(names) != len(refNames) {
			return false
		}
		for j, n := range names {
			if n != refNames[j] || !bytes.Equal(files[n], refFiles[n]) {
				return false
			}
		}
	}
	return true
}

// TestReplicatedDirStoreLazyOpen: a replica dir that cannot be opened
// at construction is a broken replica, not a fatal error — and it
// heals without a restart once the path is usable again.
func TestReplicatedDirStoreLazyOpen(t *testing.T) {
	root := t.TempDir()
	dirs := []string{
		filepath.Join(root, "r0"),
		filepath.Join(root, "r1"),
		filepath.Join(root, "r2"),
	}
	// r2's path is occupied by a regular file: MkdirAll fails.
	if err := os.WriteFile(dirs[2], []byte("dead disk"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplicatedDirStore(dirs, 2, 0)
	if err != nil {
		t.Fatalf("one dead dir must not be fatal: %v", err)
	}
	t.Cleanup(rep.Close)
	if err := rep.Put(memSnap("s1", 2, 2)); err != nil {
		t.Fatal(err)
	}
	// The path heals; the per-op retry opens the DirStore and the sweep
	// catches it up.
	if err := os.Remove(dirs[2]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep.Sweep()
		if _, err := os.Stat(filepath.Join(dirs[2], "s1.json")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healed dir never caught up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// All three dead is configuration, not degradation.
	badRoot := t.TempDir()
	var bad []string
	for i := 0; i < 3; i++ {
		p := filepath.Join(badRoot, fmt.Sprintf("b%d", i))
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		bad = append(bad, p)
	}
	if _, err := NewReplicatedDirStore(bad, 2, 0); err == nil {
		t.Fatal("all-dead replica set must fail construction")
	}
}

// TestReplicatedQuorumErrors pins the wiring errors callers depend on.
func TestReplicatedQuorumErrors(t *testing.T) {
	if _, err := NewReplicatedDirStore([]string{t.TempDir()}, 0, 0); err == nil {
		t.Fatal("single dir must be rejected (use NewDirStore)")
	}
	rep, fss, _ := newReplicatedMem(t, 3, 2)
	fss[0].Break(nil)
	fss[1].Break(nil)
	if err := rep.Put(memSnap("s1", 1, 0)); !errors.Is(err, repstore.ErrNoQuorum) {
		t.Fatalf("Put: %v, want ErrNoQuorum", err)
	}
	if _, err := rep.Get("s1"); !errors.Is(err, repstore.ErrNoQuorum) {
		t.Fatalf("Get: %v, want ErrNoQuorum", err)
	}
}
