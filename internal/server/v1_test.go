package server

import (
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
)

// envelope mirrors the /api/v1 error body.
type envelope struct {
	Error struct {
		Code         string `json:"code"`
		Message      string `json:"message"`
		RetryAfterMs int64  `json:"retryAfterMs"`
	} `json:"error"`
}

// TestV1ErrorEnvelope pins the two error shapes: /api/v1 responses
// carry the structured envelope, the deprecated /api alias keeps the
// flat {"error":"message"} body older clients parse.
func TestV1ErrorEnvelope(t *testing.T) {
	ts := newTestServer(t)

	var env envelope
	doJSON(t, "GET", ts.URL+"/api/v1/sessions/zzz/history", nil, http.StatusNotFound, &env)
	if env.Error.Code != errNotFound || env.Error.Message == "" {
		t.Fatalf("v1 envelope = %+v", env)
	}

	var flat map[string]string
	doJSON(t, "GET", ts.URL+"/api/sessions/zzz/history", nil, http.StatusNotFound, &flat)
	if flat["error"] == "" {
		t.Fatalf("legacy error body = %+v", flat)
	}

	// A v1 commit with nothing pending: envelope with a specific code.
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 620, Depth: 2,
	}, http.StatusCreated, &info)
	env = envelope{}
	doJSON(t, "POST", ts.URL+"/api/v1/sessions/"+info.ID+"/commit", nil, http.StatusConflict, &env)
	if env.Error.Code != errNothingPending {
		t.Fatalf("commit-nothing code = %q, want %q", env.Error.Code, errNothingPending)
	}
}

// TestV1MineReportsModelVersion drives mine → commit → mine through
// /api/v1 and checks the version stamps line up: the first mine runs
// against version 1, the commit publishes 2, the next mine reports 2,
// and the job records carry the same stamps.
func TestV1MineReportsModelVersion(t *testing.T) {
	ts := newTestServer(t)
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 620, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/v1/sessions/" + info.ID

	var mine MineResponse
	doJSON(t, "POST", base+"/mine", nil, http.StatusOK, &mine)
	if mine.ModelVersion != 1 {
		t.Fatalf("first mine modelVersion = %d, want 1", mine.ModelVersion)
	}
	var jv struct {
		ModelVersion uint64 `json:"modelVersion"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/jobs/"+mine.Job, nil, http.StatusOK, &jv)
	if jv.ModelVersion != 1 {
		t.Fatalf("job modelVersion = %d, want 1", jv.ModelVersion)
	}

	var commit struct {
		Iterations   int    `json:"iterations"`
		ModelVersion uint64 `json:"modelVersion"`
	}
	doJSON(t, "POST", base+"/commit", nil, http.StatusOK, &commit)
	if commit.ModelVersion != 2 {
		t.Fatalf("commit modelVersion = %d, want 2", commit.ModelVersion)
	}

	doJSON(t, "POST", base+"/mine", nil, http.StatusOK, &mine)
	if mine.ModelVersion != 2 {
		t.Fatalf("post-commit mine modelVersion = %d, want 2", mine.ModelVersion)
	}

	// The exported model carries the same stamp.
	var model struct {
		ModelVersion uint64 `json:"modelVersion"`
	}
	doJSON(t, "GET", base+"/model", nil, http.StatusOK, &model)
	if model.ModelVersion != 2 {
		t.Fatalf("exported modelVersion = %d, want 2", model.ModelVersion)
	}
}

// TestV1ConcurrentMinesOneSession is the headline v1 behavior: several
// mines on ONE session proceed concurrently (the legacy surface 409s
// the second one), and mines pinned to the same model version return
// identical results.
func TestV1ConcurrentMinesOneSession(t *testing.T) {
	ts := newTestServerWith(t, Options{Workers: 4})
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 620, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/v1/sessions/" + info.ID

	const mines = 3
	results := make([]MineResponse, mines)
	errs := make([]error, mines)
	var wg sync.WaitGroup
	for i := 0; i < mines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = postJSON("POST", base+"/mine", nil, http.StatusOK, &results[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent mine %d: %v", i, err)
		}
	}
	for i := 1; i < mines; i++ {
		if results[i].ModelVersion != results[0].ModelVersion {
			t.Fatalf("mines pinned different versions: %d vs %d",
				results[i].ModelVersion, results[0].ModelVersion)
		}
		a, b := results[0].Location, results[i].Location
		if a == nil || b == nil || a.Intention != b.Intention || a.SI != b.SI {
			t.Fatalf("same-version mines disagree:\n%+v\n%+v", a, b)
		}
	}
}

// TestV1MinesRaceCommits races async v1 mines against a stream of
// commits on one session (run under -race in CI). Every mine must
// succeed with a version stamp from the published sequence, commits
// must advance the version monotonically, and the session must stay
// consistent (history length equals committed iterations).
func TestV1MinesRaceCommits(t *testing.T) {
	ts := newTestServerWith(t, Options{Workers: 4})
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 620, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/v1/sessions/" + info.ID

	const commits = 3
	var wg sync.WaitGroup
	mineErrs := make(chan error, 64)
	versions := make(chan uint64, 64)
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var resp MineResponse
				if err := postJSON("POST", base+"/mine", nil, http.StatusOK, &resp); err != nil {
					mineErrs <- err
					return
				}
				versions <- resp.ModelVersion
			}
		}()
	}
	// Commit stream: each round mines synchronously (also racing the
	// workers) and commits the pending pattern. A committed pattern may
	// be replaced by a racing worker's fresher pending before the
	// commit claims it, so tolerate the nothing-pending 409.
	var lastVersion uint64
	for i := 0; i < commits; i++ {
		var resp MineResponse
		doJSON(t, "POST", base+"/mine", nil, http.StatusOK, &resp)
		var commit struct {
			ModelVersion uint64 `json:"modelVersion"`
		}
		if err := postJSON("POST", base+"/commit", nil, http.StatusOK, &commit); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		if commit.ModelVersion <= lastVersion {
			t.Fatalf("commit version did not advance: %d then %d", lastVersion, commit.ModelVersion)
		}
		lastVersion = commit.ModelVersion
	}
	close(stop)
	wg.Wait()
	close(mineErrs)
	close(versions)
	for err := range mineErrs {
		t.Errorf("racing mine: %v", err)
	}
	maxSeen := uint64(0)
	for v := range versions {
		if v < 1 || v > lastVersion {
			t.Errorf("mine reported version %d outside published range [1,%d]", v, lastVersion)
		}
		if v > maxSeen {
			maxSeen = v
		}
	}
	var hist []PatternJSON
	doJSON(t, "GET", base+"/history", nil, http.StatusOK, &hist)
	if len(hist) != commits {
		t.Fatalf("history length %d, want %d", len(hist), commits)
	}
}

// TestCancelReleasesSlotImmediately is the regression test for the
// stale-slot bug: cancelling a running mine used to leave the session's
// mine slot held until the worker noticed the cancellation at its next
// phase boundary — which on a deep search is seconds away. The slot
// must free at cancel-request time, so a follow-up mine is accepted
// immediately even while the cancelled search is still unwinding on
// the worker.
func TestCancelReleasesSlotImmediately(t *testing.T) {
	ts := newTestServerWith(t, Options{Workers: 1})
	var info SessionInfo
	// A deep, wide search on the largest replica: the cancelled Fn
	// stays busy in the beam long after the cancel request.
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "mammals", Depth: 8, BeamWidth: 1024,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/sessions/" + info.ID

	var accepted jobView
	// The budget bounds how long the cancelled search keeps the worker
	// (and test teardown): long enough to still be running at cancel
	// time, short enough that Close doesn't wait minutes.
	doJSON(t, "POST", base+"/mine", MineRequest{Async: true, TimeoutMS: 15000}, http.StatusAccepted, &accepted)
	// Wait until it is actually running (dequeued), then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var jv jobView
		doJSON(t, "GET", ts.URL+"/api/jobs/"+accepted.ID, nil, http.StatusOK, &jv)
		if jv.Status == jobs.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running: %+v", jv)
		}
		time.Sleep(10 * time.Millisecond)
	}
	doJSON(t, "DELETE", ts.URL+"/api/jobs/"+accepted.ID, nil, http.StatusOK, nil)

	// The slot must free promptly — well before the cancelled search
	// could have unwound. The tiny retry loop only absorbs the watcher
	// goroutine's scheduling latency.
	released := false
	for end := time.Now().Add(2 * time.Second); time.Now().Before(end); {
		if err := postJSON("POST", base+"/mine", MineRequest{Async: true}, http.StatusAccepted, nil); err == nil {
			released = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !released {
		t.Fatal("mine slot still held 2s after cancelling the running job")
	}
}

// BenchmarkMineUnderCommit gates the acceptance criterion that mine
// latency under a concurrent commit stream stays close to the
// no-commit baseline: mines pin a published version and never wait on
// a writer. The commit work runs on forks of the pinned version, so
// the mine workload itself is identical in both arms; p95 over the
// measured mines is reported as a custom metric alongside ns/op.
func BenchmarkMineUnderCommit(b *testing.B) {
	for _, commits := range []bool{false, true} {
		name := "baseline"
		if commits {
			name = "commits"
		}
		b.Run(name, func(b *testing.B) {
			sess, err := newSession(&CreateRequest{
				Dataset: "synthetic", Seed: 620, Depth: 2, BeamWidth: 16,
			})
			if err != nil {
				b.Fatal(err)
			}
			v := sess.miner.Snapshot()
			loc, _, err := sess.miner.MineAt(v, core.MineOptions{})
			if err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			if commits {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						fork := sess.miner.ForkAt(v)
						if err := fork.Model.CommitLocation(loc.Extension, loc.Mean); err != nil {
							return
						}
					}
				}()
			}
			durations := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, _, err := sess.miner.MineAt(v, core.MineOptions{}); err != nil {
					b.Fatal(err)
				}
				durations = append(durations, time.Since(start))
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
			p95 := durations[(len(durations)*95)/100%len(durations)]
			b.ReportMetric(float64(p95.Nanoseconds())/1e6, "p95-ms")
		})
	}
}
