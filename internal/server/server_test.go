package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/background"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		t.Fatalf("%s %s: status %d (want %d): %s",
			method, url, resp.StatusCode, wantStatus, msg.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
}

func TestFullInteractiveSession(t *testing.T) {
	ts := newTestServer(t)

	// Create a session over the synthetic data with Table I settings.
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 620, Gamma: 0.5, Eta: 1, Depth: 3,
	}, http.StatusCreated, &info)
	if info.N != 620 || info.Dy != 2 {
		t.Fatalf("session info = %+v", info)
	}
	base := ts.URL + "/api/sessions/" + info.ID

	// Mine with a spread preview.
	var mined MineResponse
	doJSON(t, "POST", base+"/mine", MineRequest{Spread: true}, http.StatusOK, &mined)
	if mined.Location == nil || mined.Location.SI < 10 {
		t.Fatalf("mined = %+v", mined)
	}
	if mined.Spread == nil || len(mined.Spread.W) != 2 {
		t.Fatalf("spread = %+v", mined.Spread)
	}
	firstSI := mined.Location.SI

	// Explain the pending pattern.
	var expl []map[string]any
	doJSON(t, "GET", base+"/explain", nil, http.StatusOK, &expl)
	if len(expl) != 2 {
		t.Fatalf("explanations = %d", len(expl))
	}

	// Commit, then mine again: the next pattern differs and scores lower.
	doJSON(t, "POST", base+"/commit", nil, http.StatusOK, nil)
	var mined2 MineResponse
	doJSON(t, "POST", base+"/mine", nil, http.StatusOK, &mined2)
	if mined2.Location.Intention == mined.Location.Intention {
		t.Fatal("iterative mining returned the committed pattern again")
	}
	if mined2.Location.SI > firstSI {
		t.Fatalf("second pattern more interesting than first: %v > %v",
			mined2.Location.SI, firstSI)
	}

	// History holds the committed location + spread.
	var hist []PatternJSON
	doJSON(t, "GET", base+"/history", nil, http.StatusOK, &hist)
	if len(hist) != 2 || hist[0].Kind != "location" || hist[1].Kind != "spread" {
		t.Fatalf("history = %+v", hist)
	}

	// List and delete.
	var sessions []SessionInfo
	doJSON(t, "GET", ts.URL+"/api/sessions", nil, http.StatusOK, &sessions)
	if len(sessions) != 1 || sessions[0].Iterations != 1 {
		t.Fatalf("sessions = %+v", sessions)
	}
	doJSON(t, "DELETE", base, nil, http.StatusOK, nil)
	doJSON(t, "DELETE", base, nil, http.StatusNotFound, nil)
}

func TestMinePreviewDoesNotCommit(t *testing.T) {
	ts := newTestServer(t)
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 620, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/sessions/" + info.ID

	// Mining twice without committing must return the SAME top pattern —
	// the spread preview must not leak into the session model.
	var a, b MineResponse
	doJSON(t, "POST", base+"/mine", MineRequest{Spread: true}, http.StatusOK, &a)
	doJSON(t, "POST", base+"/mine", MineRequest{Spread: true}, http.StatusOK, &b)
	if a.Location.Intention != b.Location.Intention || a.Location.SI != b.Location.SI {
		t.Fatalf("preview mutated the model: %+v vs %+v", a.Location, b.Location)
	}
}

func TestCreateFromCSV(t *testing.T) {
	ts := newTestServer(t)
	csv := "x:d:num,y:t:num\n1,0.5\n2,0.6\n3,2.5\n4,2.6\n5,2.4\n6,0.4\n"
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "csv", CSV: csv,
	}, http.StatusCreated, &info)
	if info.N != 6 || info.Dx != 1 || info.Dy != 1 {
		t.Fatalf("info = %+v", info)
	}
	var mined MineResponse
	doJSON(t, "POST", ts.URL+"/api/sessions/"+info.ID+"/mine", nil, http.StatusOK, &mined)
	if mined.Location == nil {
		t.Fatal("no pattern over CSV data")
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	// Unknown dataset.
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{Dataset: "nope"},
		http.StatusBadRequest, nil)
	// Bad JSON.
	resp, err := http.Post(ts.URL+"/api/sessions", "application/json",
		strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", resp.StatusCode)
	}
	// Unknown session.
	doJSON(t, "POST", ts.URL+"/api/sessions/zzz/mine", nil, http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/api/sessions/zzz/history", nil, http.StatusNotFound, nil)
	// Commit without mining.
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{Dataset: "synthetic"},
		http.StatusCreated, &info)
	doJSON(t, "POST", ts.URL+"/api/sessions/"+info.ID+"/commit", nil,
		http.StatusConflict, nil)
	doJSON(t, "GET", ts.URL+"/api/sessions/"+info.ID+"/explain", nil,
		http.StatusConflict, nil)
}

func TestModelExportRestores(t *testing.T) {
	ts := newTestServer(t)
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 620, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/sessions/" + info.ID
	doJSON(t, "POST", base+"/mine", nil, http.StatusOK, nil)
	doJSON(t, "POST", base+"/commit", nil, http.StatusOK, nil)

	resp, err := http.Get(base + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model export status = %d", resp.StatusCode)
	}
	m, err := background.LoadJSON(resp.Body)
	if err != nil {
		t.Fatalf("restoring exported model: %v", err)
	}
	if m.NumConstraints() != 1 || m.N() != 620 {
		t.Fatalf("restored model: %d constraints, n=%d", m.NumConstraints(), m.N())
	}
}

func TestConcurrentSessionsAreIsolated(t *testing.T) {
	ts := newTestServer(t)
	ids := make([]string, 3)
	for i := range ids {
		var info SessionInfo
		doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
			Dataset: "synthetic", Seed: int64(100 + i), Depth: 2,
		}, http.StatusCreated, &info)
		ids[i] = info.ID
	}
	// Commit in session 0 only; session 1 must still mine its original top.
	base0 := ts.URL + "/api/sessions/" + ids[0]
	base1 := ts.URL + "/api/sessions/" + ids[1]
	var before MineResponse
	doJSON(t, "POST", base1+"/mine", nil, http.StatusOK, &before)
	var m0 MineResponse
	doJSON(t, "POST", base0+"/mine", nil, http.StatusOK, &m0)
	doJSON(t, "POST", base0+"/commit", nil, http.StatusOK, nil)
	var after MineResponse
	doJSON(t, "POST", base1+"/mine", nil, http.StatusOK, &after)
	if before.Location.Intention != after.Location.Intention {
		t.Fatal("sessions are not isolated")
	}
	var sessions []SessionInfo
	doJSON(t, "GET", ts.URL+"/api/sessions", nil, http.StatusOK, &sessions)
	if len(sessions) != 3 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	iterSum := 0
	for _, s := range sessions {
		iterSum += s.Iterations
	}
	if iterSum != 1 {
		t.Fatalf("total iterations = %d, want 1", iterSum)
	}
}

func ExampleServer() {
	fmt.Println("see TestFullInteractiveSession for the API flow")
	// Output: see TestFullInteractiveSession for the API flow
}
