package server

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/jobs"
	"repro/internal/repstore"
)

// ReasonReplicaDegraded is the non-fatal readyz warning emitted when a
// replicated store has lost replicas but still meets its write quorum:
// serving is unaffected (Ready stays true), but the operator is one
// more failure away from degraded mode and should replace the disk.
const ReasonReplicaDegraded = "store_replica_degraded"

// replicaHealthStore is implemented by replicated stores
// (repstore.Replicated); single-backend stores don't report per-replica
// health.
type replicaHealthStore interface {
	ReplicaHealth() []repstore.ReplicaHealth
}

// Lifecycle endpoints: the handles an orchestrator (or an operator's
// shutdown script) needs to run the server safely.
//
//	GET  /api/v1/healthz   liveness — the process answers requests
//	GET  /api/v1/readyz    readiness — should this replica take traffic
//	POST /api/v1/drain     graceful quiesce — stop intake, flush sessions
//
// healthz is always 200 while the process serves: degraded persistence
// is a readiness problem, not a liveness one (the server still answers
// from memory). readyz is 503 while draining, while the store is
// degraded, or while the mine queue is saturated — all states where
// new traffic is better sent elsewhere.

// drainDefaultTimeout bounds a drain request that does not pass
// ?timeoutMs; drainMaxTimeout caps client-supplied values.
const (
	drainDefaultTimeout = 30 * time.Second
	drainMaxTimeout     = 5 * time.Minute
)

// Readiness is the readyz body — exported because it is a wire type
// the cluster router parses to classify shard health. It deliberately
// has no "error" key: a 503 here is a routing signal, not a request
// failure envelope.
type Readiness struct {
	Ready bool `json:"ready"`
	// ShardID names this process (Options.ShardID) so a router or chaos
	// harness can attribute the probe to a specific shard; empty when
	// the server runs without a configured shard id.
	ShardID string `json:"shardId,omitempty"`
	// Persistence is "ok" or "degraded" (see storeHealth).
	Persistence string `json:"persistence"`
	// Pool is the mine-pool load snapshot behind the saturation check.
	Pool jobs.Stats `json:"pool"`
	// Reasons lists why Ready is false; empty when ready.
	Reasons []string `json:"reasons,omitempty"`
	// Warnings lists non-fatal conditions that don't affect Ready —
	// currently only ReasonReplicaDegraded (a replicated store lost
	// replicas but still meets quorum).
	Warnings []string `json:"warnings,omitempty"`
	// Replicas reports per-replica breaker health when the store is
	// replicated (nil otherwise), so an operator can tell a dead disk
	// from a dead process.
	Replicas []repstore.ReplicaHealth `json:"replicas,omitempty"`
}

// DrainReport is the POST /drain response: what was flushed and
// whether the server is now safe to kill (JobsDrained and no Failed
// entries means every committed belief state is durable in the store).
type DrainReport struct {
	Draining bool `json:"draining"`
	// JobsDrained is false when the drain timeout expired with mine
	// jobs still queued or running.
	JobsDrained bool `json:"jobsDrained"`
	// Sessions / Durable count live sessions seen and flushed durably.
	Sessions int `json:"sessions"`
	Durable  int `json:"durable"`
	// Failed lists session ids whose flush did not reach the store —
	// their committed state since the last successful persist would be
	// lost by an immediate kill.
	Failed []string `json:"failed,omitempty"`
	// Persistence is the store health after the flush pass.
	Persistence string `json:"persistence"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]string{"status": "ok"}
	if s.opts.ShardID != "" {
		body["shardId"] = s.opts.ShardID
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	var reasons []string
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	if s.health.degraded.Load() {
		msg := "store degraded"
		if err := s.health.lastError(); err != nil {
			msg = fmt.Sprintf("store degraded: %v", err)
		}
		reasons = append(reasons, msg)
	}
	if st.Saturated() {
		reasons = append(reasons, "mine queue full")
	}
	var warnings []string
	var replicas []repstore.ReplicaHealth
	if rh, ok := s.store.(replicaHealthStore); ok {
		replicas = rh.ReplicaHealth()
		unhealthy := 0
		for _, r := range replicas {
			if r.State != repstore.StateHealthy {
				unhealthy++
			}
		}
		// Quorum loss already surfaces through the fatal storeHealth
		// reason above; a minority of broken replicas is a warning only.
		if unhealthy > 0 && !s.health.degraded.Load() {
			warnings = append(warnings, ReasonReplicaDegraded)
		}
	}
	code := http.StatusOK
	if len(reasons) > 0 {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, Readiness{
		Ready:       len(reasons) == 0,
		ShardID:     s.opts.ShardID,
		Persistence: s.health.state(),
		Pool:        st,
		Reasons:     reasons,
		Warnings:    warnings,
		Replicas:    replicas,
	})
}

// handleDrain quiesces the server: ?timeoutMs bounds how long to wait
// for in-flight mine jobs (default 30s, capped at 5m). Always answers
// 200 with the report — a partial drain (jobs still running, some
// flushes failed) is an answer, not an error; the caller decides
// whether to kill anyway.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	timeout := drainDefaultTimeout
	if ms := r.URL.Query().Get("timeoutMs"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n <= 0 {
			writeError(w, r, http.StatusBadRequest, errBadRequest, 0, "bad timeoutMs %q", ms)
			return
		}
		timeout = time.Duration(n) * time.Millisecond
		if timeout > drainMaxTimeout {
			timeout = drainMaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	writeJSON(w, http.StatusOK, s.Drain(ctx))
}

// Drain gracefully quiesces the server: stop accepting new sessions
// and mines (those handlers answer 503 "draining"), wait for in-flight
// mine jobs up to ctx's deadline, then flush every live session to the
// store with the full retry policy. Idempotent — a second call re-runs
// the flush, which is how an operator retries failed flushes after
// healing the store. The server still answers reads (history, model,
// jobs) while drained; Close still owns final pool teardown.
func (s *Server) Drain(ctx context.Context) *DrainReport {
	s.draining.Store(true)
	rep := &DrainReport{Draining: true}
	rep.JobsDrained = s.pool.Drain(ctx) == nil
	s.mu.Lock()
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	for _, sess := range live {
		if s.persist(sess) {
			rep.Sessions++
			rep.Durable++
			continue
		}
		// persist declines closed sessions: their teardown (evict or
		// delete) owned the store entry, so they are not at risk here.
		sess.mu.Lock()
		closed := sess.closed
		sess.mu.Unlock()
		if closed {
			continue
		}
		rep.Sessions++
		rep.Failed = append(rep.Failed, sess.id)
	}
	rep.Persistence = s.health.state()
	return rep
}
