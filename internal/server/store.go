package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Snapshot is the persistent form of a session: everything needed to
// rebuild its miner and belief state in another process (or after a
// restart). The dataset itself is not stored — builtin datasets are
// deterministic in (name, seed) and CSV data rides along inside the
// CreateRequest — so a snapshot stays small: the background model's
// group parameters and constraint list plus the pattern history.
// Pending (mined but uncommitted) patterns are deliberately ephemeral.
type Snapshot struct {
	// Format is the snapshot wire-format version (SnapshotFormat when
	// written by this code; 0 marks a pre-checksum legacy file, accepted
	// without integrity verification).
	Format int             `json:"format,omitempty"`
	ID     string          `json:"id"`
	Create CreateRequest   `json:"create"`
	Model  json.RawMessage `json:"model"`
	// ModelCRC is a CRC-32C (Castagnoli) over the Model bytes, set by
	// Seal and checked by Verify: a torn or bit-flipped model surfaces
	// as a typed ErrCorrupt instead of an opaque parse error deep in
	// the restore path.
	ModelCRC   uint32        `json:"modelCrc32c,omitempty"`
	History    []PatternJSON `json:"history,omitempty"`
	Iterations int           `json:"iterations"`
	SavedAt    time.Time     `json:"savedAt"`
}

// SnapshotFormat is the current snapshot wire-format version.
const SnapshotFormat = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal stamps the snapshot with the current format version and the
// CRC-32C of its model bytes. The model is canonicalized (compacted)
// first so the checksummed bytes are exactly the bytes a JSON
// round-trip through a store preserves — json.Marshal compacts
// RawMessage payloads, which would otherwise shift the CRC. Idempotent;
// every persist path seals before handing the snapshot to a store.
func (s *Snapshot) Seal() {
	var buf bytes.Buffer
	if err := json.Compact(&buf, s.Model); err == nil {
		s.Model = json.RawMessage(buf.Bytes())
	}
	s.Format = SnapshotFormat
	s.ModelCRC = crc32.Checksum(s.Model, castagnoli)
}

// Verify checks the integrity framing. Legacy snapshots (Format 0,
// written before checksumming) pass unverified; anything sealed must
// match its CRC or the error wraps ErrCorrupt.
func (s *Snapshot) Verify() error {
	if s.Format == 0 {
		return nil // pre-checksum legacy file
	}
	if s.Format > SnapshotFormat {
		return fmt.Errorf("server: snapshot %s: format %d not supported (newer writer?)", s.ID, s.Format)
	}
	if got := crc32.Checksum(s.Model, castagnoli); got != s.ModelCRC {
		return fmt.Errorf("%w: snapshot %s model CRC mismatch (stored %08x, computed %08x)",
			ErrCorrupt, s.ID, s.ModelCRC, got)
	}
	return nil
}

// ErrNotFound is returned by Store.Get for unknown session ids.
var ErrNotFound = errors.New("server: session snapshot not found")

// ErrCorrupt tags snapshots that failed integrity validation — a
// checksum mismatch, truncated JSON, or a model payload the loader
// rejects. The serving layer maps it to the "snapshot_corrupt" error
// envelope, and DirStore quarantines the offending file.
var ErrCorrupt = errors.New("server: snapshot corrupt")

// Store persists session snapshots. Implementations must be safe for
// concurrent use.
type Store interface {
	Put(snap *Snapshot) error
	Get(id string) (*Snapshot, error)
	// Delete reports whether a snapshot existed; deleting an absent id
	// is not an error.
	Delete(id string) (existed bool, err error)
	// List returns the ids of all stored snapshots, sorted.
	List() ([]string, error)
}

// MemStore keeps snapshots in process memory — the single-process
// default. Survives session LRU/TTL eviction but not a restart.
type MemStore struct {
	mu sync.Mutex
	m  map[string]*Snapshot
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: map[string]*Snapshot{}} }

// Put stores a deep-enough copy of snap (the raw model bytes are
// aliased; callers do not mutate them after Put).
func (s *MemStore) Put(snap *Snapshot) error {
	cp := *snap
	cp.History = append([]PatternJSON(nil), snap.History...)
	s.mu.Lock()
	s.m[snap.ID] = &cp
	s.mu.Unlock()
	return nil
}

// Get retrieves a snapshot by id.
func (s *MemStore) Get(id string) (*Snapshot, error) {
	s.mu.Lock()
	snap := s.m[id]
	s.mu.Unlock()
	if snap == nil {
		return nil, ErrNotFound
	}
	cp := *snap
	// Deep-copy History to match Put and DirStore semantics: a caller
	// appending to the returned snapshot's history must not write
	// through into the stored copy's backing array.
	cp.History = append([]PatternJSON(nil), snap.History...)
	return &cp, nil
}

// Delete removes a snapshot, reporting whether it existed.
func (s *MemStore) Delete(id string) (bool, error) {
	s.mu.Lock()
	_, existed := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	return existed, nil
}

// List returns all stored ids, sorted.
func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	out := make([]string, 0, len(s.m))
	for id := range s.m {
		out = append(out, id)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out, nil
}

// DirStore persists snapshots as one JSON file per session in a
// directory, so sessions survive process restarts and can be shared by
// multiple server processes on a common filesystem. Writes are durable
// and atomic: the temp file is fsynced before the rename and the
// directory after it, so after a crash every *.json file is either the
// old or the new complete snapshot, never a torn one. Leftover *.tmp
// files from a crashed Put and files that fail integrity validation
// are cleaned up by a recovery sweep at open time (the latter are
// quarantined under a .corrupt suffix rather than deleted, so an
// operator can inspect them).
type DirStore struct {
	dir string
	// noSync skips the fsync calls — a test/bench hook quantifying the
	// durability cost (BenchmarkDirStorePut), never set in production.
	noSync bool

	// Recovery-sweep counters from NewDirStore, for startup logging.
	sweptTmp    int
	quarantined int
}

// NewDirStore creates the directory if needed, runs the crash-recovery
// sweep (removing orphaned *.tmp files, quarantining snapshots that
// fail validation), and returns the store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: session store dir: %w", err)
	}
	s := &DirStore{dir: dir}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// RecoveryStats reports what the open-time sweep found: orphaned *.tmp
// files removed and corrupt snapshots quarantined.
func (s *DirStore) RecoveryStats() (tmpRemoved, quarantined int) {
	return s.sweptTmp, s.quarantined
}

// recover is the startup sweep. A *.tmp file is a Put that never
// reached its rename — without the sweep they accumulate forever. A
// *.json file that fails to parse or verify is quarantined so a later
// Get cannot trip over it (rename keeps the bytes for inspection).
func (s *DirStore) recover() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("server: recovery sweep: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			if os.Remove(filepath.Join(s.dir, name)) == nil {
				s.sweptTmp++
			}
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		if _, err := s.load(filepath.Join(s.dir, name)); errors.Is(err, ErrCorrupt) {
			if s.quarantine(filepath.Join(s.dir, name)) == nil {
				s.quarantined++
			}
		}
	}
	return nil
}

// quarantine moves a corrupt snapshot file aside under a .corrupt
// suffix: it stops being served (List/Get skip it) but stays on disk
// for inspection. An earlier quarantine of the same id is overwritten.
func (s *DirStore) quarantine(path string) error {
	return os.Rename(path, path+".corrupt")
}

// load reads and validates one snapshot file. Corruption — truncated
// or malformed JSON, or a checksum mismatch — wraps ErrCorrupt.
func (s *DirStore) load(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
	}
	if err := snap.Verify(); err != nil {
		return nil, err
	}
	return &snap, nil
}

// syncDir fsyncs the store directory, making a just-renamed snapshot's
// directory entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// validID guards against path traversal: session ids are only ever the
// server-generated s%04d form, but Get sees client-supplied strings.
func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

func (s *DirStore) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// Put writes the snapshot atomically and durably: marshal a sealed
// copy, write + fsync a temp file, rename it over the target, fsync
// the directory. A crash at any point leaves either the previous
// complete snapshot or the new one — the recovery sweep disposes of
// any temp file left behind.
func (s *DirStore) Put(snap *Snapshot) error {
	if !validID(snap.ID) {
		return fmt.Errorf("server: invalid session id %q", snap.ID)
	}
	sealed := *snap
	sealed.Seal()
	raw, err := json.Marshal(&sealed)
	if err != nil {
		return err
	}
	tmp := s.path(snap.ID) + ".tmp"
	if err := s.writeFileSync(tmp, raw); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path(snap.ID)); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if s.noSync {
		return nil
	}
	return syncDir(s.dir)
}

// writeFileSync writes data to path and fsyncs the file before close:
// the rename in Put must only ever expose fully persisted bytes.
func (s *DirStore) writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil && !s.noSync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get reads and validates a snapshot by id. A corrupt file (torn
// write from a pre-durability version, bit rot, truncation) is
// quarantined on the spot and reported as ErrCorrupt, so it fails the
// same way exactly once and can never crash a restore loop twice.
func (s *DirStore) Get(id string) (*Snapshot, error) {
	if !validID(id) {
		return nil, ErrNotFound
	}
	snap, err := s.load(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	if errors.Is(err, ErrCorrupt) {
		_ = s.quarantine(s.path(id))
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// Delete removes a snapshot file, reporting whether it existed.
func (s *DirStore) Delete(id string) (bool, error) {
	if !validID(id) {
		return false, nil
	}
	err := os.Remove(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	return err == nil, err
}

// List returns the ids of all snapshot files, sorted.
func (s *DirStore) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		out = append(out, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(out)
	return out, nil
}
