package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Snapshot is the persistent form of a session: everything needed to
// rebuild its miner and belief state in another process (or after a
// restart). The dataset itself is not stored — builtin datasets are
// deterministic in (name, seed) and CSV data rides along inside the
// CreateRequest — so a snapshot stays small: the background model's
// group parameters and constraint list plus the pattern history.
// Pending (mined but uncommitted) patterns are deliberately ephemeral.
type Snapshot struct {
	ID         string          `json:"id"`
	Create     CreateRequest   `json:"create"`
	Model      json.RawMessage `json:"model"`
	History    []PatternJSON   `json:"history,omitempty"`
	Iterations int             `json:"iterations"`
	SavedAt    time.Time       `json:"savedAt"`
}

// ErrNotFound is returned by Store.Get for unknown session ids.
var ErrNotFound = errors.New("server: session snapshot not found")

// Store persists session snapshots. Implementations must be safe for
// concurrent use.
type Store interface {
	Put(snap *Snapshot) error
	Get(id string) (*Snapshot, error)
	// Delete reports whether a snapshot existed; deleting an absent id
	// is not an error.
	Delete(id string) (existed bool, err error)
	// List returns the ids of all stored snapshots, sorted.
	List() ([]string, error)
}

// MemStore keeps snapshots in process memory — the single-process
// default. Survives session LRU/TTL eviction but not a restart.
type MemStore struct {
	mu sync.Mutex
	m  map[string]*Snapshot
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: map[string]*Snapshot{}} }

// Put stores a deep-enough copy of snap (the raw model bytes are
// aliased; callers do not mutate them after Put).
func (s *MemStore) Put(snap *Snapshot) error {
	cp := *snap
	cp.History = append([]PatternJSON(nil), snap.History...)
	s.mu.Lock()
	s.m[snap.ID] = &cp
	s.mu.Unlock()
	return nil
}

// Get retrieves a snapshot by id.
func (s *MemStore) Get(id string) (*Snapshot, error) {
	s.mu.Lock()
	snap := s.m[id]
	s.mu.Unlock()
	if snap == nil {
		return nil, ErrNotFound
	}
	cp := *snap
	return &cp, nil
}

// Delete removes a snapshot, reporting whether it existed.
func (s *MemStore) Delete(id string) (bool, error) {
	s.mu.Lock()
	_, existed := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	return existed, nil
}

// List returns all stored ids, sorted.
func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	out := make([]string, 0, len(s.m))
	for id := range s.m {
		out = append(out, id)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out, nil
}

// DirStore persists snapshots as one JSON file per session in a
// directory, so sessions survive process restarts and can be shared by
// multiple server processes on a common filesystem. Writes are atomic
// (temp file + rename).
type DirStore struct {
	dir string
}

// NewDirStore creates the directory if needed and returns the store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: session store dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// validID guards against path traversal: session ids are only ever the
// server-generated s%04d form, but Get sees client-supplied strings.
func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

func (s *DirStore) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// Put writes the snapshot atomically.
func (s *DirStore) Put(snap *Snapshot) error {
	if !validID(snap.ID) {
		return fmt.Errorf("server: invalid session id %q", snap.ID)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	tmp := s.path(snap.ID) + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path(snap.ID))
}

// Get reads a snapshot by id.
func (s *DirStore) Get(id string) (*Snapshot, error) {
	if !validID(id) {
		return nil, ErrNotFound
	}
	raw, err := os.ReadFile(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("server: corrupt snapshot %s: %w", id, err)
	}
	return &snap, nil
}

// Delete removes a snapshot file, reporting whether it existed.
func (s *DirStore) Delete(id string) (bool, error) {
	if !validID(id) {
		return false, nil
	}
	err := os.Remove(s.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	return err == nil, err
}

// List returns the ids of all snapshot files, sorted.
func (s *DirStore) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		out = append(out, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(out)
	return out, nil
}
