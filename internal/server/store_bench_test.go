package server

import (
	"encoding/json"
	"testing"
	"time"
)

// benchDirStorePut measures the durable snapshot write path. The
// noSync variant isolates what the fsync discipline (file sync before
// rename, directory sync after) costs per Put — the price of
// crash-safety over a bare atomic rename.
func benchDirStorePut(b *testing.B, noSync bool) {
	store, err := NewDirStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	store.noSync = noSync
	// A representative model payload (~10KB of matrix coefficients).
	nums := make([]float64, 1024)
	for i := range nums {
		nums[i] = 1.0 / float64(i+1)
	}
	model, err := json.Marshal(map[string]any{"weights": nums})
	if err != nil {
		b.Fatal(err)
	}
	snap := &Snapshot{
		ID:      "s0001",
		Create:  CreateRequest{Dataset: "synthetic", Seed: 1},
		Model:   json.RawMessage(model),
		History: []PatternJSON{{Kind: "location", Intention: "x1<=0.5"}},
		SavedAt: time.Unix(1, 0),
	}
	// Warm-up Put: the first write pays one-time lazy initialization
	// (and creates the file), which would dominate a single-iteration
	// CI run; the gate is about the steady-state overwrite path.
	if err := store.Put(snap); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Iterations = i
		if err := store.Put(snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirStorePut(b *testing.B)       { benchDirStorePut(b, false) }
func BenchmarkDirStorePutNoSync(b *testing.B) { benchDirStorePut(b, true) }
