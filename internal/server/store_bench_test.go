package server

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/repstore"
)

// benchDirStorePut measures the durable snapshot write path. The
// noSync variant isolates what the fsync discipline (file sync before
// rename, directory sync after) costs per Put — the price of
// crash-safety over a bare atomic rename.
func benchDirStorePut(b *testing.B, noSync bool) {
	store, err := NewDirStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	store.noSync = noSync
	// A representative model payload (~10KB of matrix coefficients).
	nums := make([]float64, 1024)
	for i := range nums {
		nums[i] = 1.0 / float64(i+1)
	}
	model, err := json.Marshal(map[string]any{"weights": nums})
	if err != nil {
		b.Fatal(err)
	}
	snap := &Snapshot{
		ID:      "s0001",
		Create:  CreateRequest{Dataset: "synthetic", Seed: 1},
		Model:   json.RawMessage(model),
		History: []PatternJSON{{Kind: "location", Intention: "x1<=0.5"}},
		SavedAt: time.Unix(1, 0),
	}
	// Warm-up Put: the first write pays one-time lazy initialization
	// (and creates the file), which would dominate a single-iteration
	// CI run; the gate is about the steady-state overwrite path.
	if err := store.Put(snap); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Iterations = i
		if err := store.Put(snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirStorePut(b *testing.B)       { benchDirStorePut(b, false) }
func BenchmarkDirStorePutNoSync(b *testing.B) { benchDirStorePut(b, true) }

// benchSnapshot mirrors benchDirStorePut's ~10KB payload so the
// replicated numbers read directly against the single-DirStore ones:
// the delta is the replication tax (N=3 concurrent child writes + the
// quorum bookkeeping).
func benchSnapshot(b *testing.B) *Snapshot {
	nums := make([]float64, 1024)
	for i := range nums {
		nums[i] = 1.0 / float64(i+1)
	}
	model, err := json.Marshal(map[string]any{"weights": nums})
	if err != nil {
		b.Fatal(err)
	}
	return &Snapshot{
		ID:      "s0001",
		Create:  CreateRequest{Dataset: "synthetic", Seed: 1},
		Model:   json.RawMessage(model),
		History: []PatternJSON{{Kind: "location", Intention: "x1<=0.5"}},
		SavedAt: time.Unix(1, 0),
	}
}

func newBenchReplicated(b *testing.B) *repstore.Replicated[Snapshot] {
	b.Helper()
	root := b.TempDir()
	dirs := []string{
		filepath.Join(root, "r0"),
		filepath.Join(root, "r1"),
		filepath.Join(root, "r2"),
	}
	rep, err := NewReplicatedDirStore(dirs, 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rep.Close)
	return rep
}

// BenchmarkReplicatedPut: quorum write across 3 DirStore replicas
// (W=2), fsync discipline on. Compare with BenchmarkDirStorePut.
func BenchmarkReplicatedPut(b *testing.B) {
	rep := newBenchReplicated(b)
	snap := benchSnapshot(b)
	if err := rep.Put(snap); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Iterations = i
		if err := rep.Put(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicatedGet: quorum read (all replicas answer, freshness
// vote, no repair needed) across 3 DirStore replicas.
func BenchmarkReplicatedGet(b *testing.B) {
	rep := newBenchReplicated(b)
	snap := benchSnapshot(b)
	if err := rep.Put(snap); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rep.Get(snap.ID); err != nil {
			b.Fatal(err)
		}
	}
}
