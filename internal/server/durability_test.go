package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultstore"
)

// v1ErrCode performs a request expected to fail and returns the error
// code from the /api/v1 envelope.
func v1ErrCode(t *testing.T, method, url string, body any, wantStatus int) string {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	doJSON(t, method, url, body, wantStatus, &env)
	return env.Error.Code
}

// newDirServer spins up a server over a DirStore on dir.
func newDirServer(t *testing.T, dir string) (*httptest.Server, *Server) {
	t.Helper()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(Options{Store: store})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv
}

// TestCorruptSnapshotSurfacesEnvelope is the truncation-at-offsets
// regression test: a snapshot file damaged behind a running server's
// back — truncated at various byte offsets, or with a model byte
// flipped so only the CRC notices — must surface as the structured
// snapshot_corrupt envelope (HTTP 500, no panic), and the file must be
// quarantined, never retried forever.
func TestCorruptSnapshotSurfacesEnvelope(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newDirServer(t, dir)

	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 11, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/v1/sessions/" + info.ID
	mineBody(t, base)
	doJSON(t, "POST", base+"/commit", nil, http.StatusOK, nil)

	path := filepath.Join(dir, info.ID+".json")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Second server over the same directory: the file is valid at
	// startup (so the recovery sweep leaves it alone) and corruption
	// lands afterwards, exercising the Get-time validation path.
	ts2, _ := newDirServer(t, dir)
	base2 := ts2.URL + "/api/v1/sessions/" + info.ID

	corruptions := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncate-to-0", func(b []byte) []byte { return b[:0] }},
		{"truncate-at-1", func(b []byte) []byte { return b[:1] }},
		{"truncate-quarter", func(b []byte) []byte { return b[:len(b)/4] }},
		{"truncate-half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncate-last-byte", func(b []byte) []byte { return b[:len(b)-1] }},
		{"flip-model-digit", func(b []byte) []byte {
			// Valid JSON, wrong content: only the CRC can catch this.
			out := append([]byte(nil), b...)
			i := bytes.Index(out, []byte(`"model":`))
			if i < 0 {
				t.Fatal("no model field in snapshot")
			}
			for ; i < len(out); i++ {
				if out[i] >= '1' && out[i] <= '8' {
					out[i]++
					return out
				}
			}
			t.Fatal("no digit found in model payload")
			return nil
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mutate(pristine), 0o644); err != nil {
				t.Fatal(err)
			}
			code := v1ErrCode(t, "GET", base2+"/history", nil, http.StatusInternalServerError)
			if code != errSnapshotCorrupt {
				t.Fatalf("error code = %q, want %q", code, errSnapshotCorrupt)
			}
			// Quarantined: the damaged file was moved aside, preserved for
			// inspection, and is no longer served.
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Fatalf("no quarantine file: %v", err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("damaged file still live: %v", err)
			}
			// After quarantine the session is gone, not poisoned.
			doJSON(t, "GET", base2+"/history", nil, http.StatusNotFound, nil)
			// Reset for the next corruption shape.
			if err := os.Remove(path + ".corrupt"); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, pristine, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}

	// The pristine file restored: the session serves again.
	doJSON(t, "GET", base2+"/history", nil, http.StatusOK, nil)
}

// TestRecoverySweep: NewDirStore clears torn temp files and
// quarantines snapshots that fail validation, so a post-crash startup
// begins from a clean, fully verified directory.
func TestRecoverySweep(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := &Snapshot{
		ID:     "s0001",
		Create: CreateRequest{Dataset: "synthetic"},
		Model:  json.RawMessage(`{"n":1}`),
	}
	if err := store.Put(good); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write (orphaned temp files) plus bit rot in a
	// second snapshot (valid-looking file, wrong bytes).
	for i := 0; i < 3; i++ {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("s%04d.json.%d.tmp", i, i)), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "s0002.json"), []byte(`{"id":"s0002","format":1,`), 0o644); err != nil {
		t.Fatal(err)
	}

	recovered, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tmp, quarantined := recovered.RecoveryStats()
	if tmp != 3 || quarantined != 1 {
		t.Fatalf("recovery stats = (%d tmp, %d quarantined), want (3, 1)", tmp, quarantined)
	}
	ids, err := recovered.List()
	if err != nil || len(ids) != 1 || ids[0] != "s0001" {
		t.Fatalf("list after recovery = %v, %v", ids, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "s0002.json.corrupt")); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(leftovers) != 0 {
		t.Fatalf("temp files survived recovery: %v", leftovers)
	}
}

// storeView is the durable-state triple a snapshot must keep
// consistent: a Put failure may leave the old or the new version, but
// never a mix.
type storeView struct {
	Model      string
	Iterations int
	History    int
}

func viewOf(snap *Snapshot) storeView {
	return storeView{Model: string(snap.Model), Iterations: snap.Iterations, History: len(snap.History)}
}

// TestCommitPutFailureNeverTearsDurableState: for every persist point
// in a session's life (create, each commit, explicit snapshot), an
// outage at exactly that point leaves the stored snapshot equal to one
// of the versions a clean run produces — the session is durable at the
// old or the new belief state, never in between.
func TestCommitPutFailureNeverTearsDurableState(t *testing.T) {
	// Reference run: record the durable state after each lifecycle step.
	runSession := func(ts *httptest.Server, breakAt string, fs *faultstore.Store[Snapshot]) {
		t.Helper()
		gate := func(step string, op func(wantPersisted bool)) {
			if step == breakAt {
				fs.Break(nil)
				op(false)
				fs.Heal()
				return
			}
			op(true)
		}
		var info SessionInfo
		gate("create", func(bool) {
			doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{
				Dataset: "synthetic", Seed: 21, Depth: 2,
			}, http.StatusCreated, &info)
		})
		base := ts.URL + "/api/v1/sessions/" + info.ID
		for i := 0; i < 2; i++ {
			mineBody(t, base)
			gate(fmt.Sprintf("commit%d", i+1), func(wantPersisted bool) {
				var out struct {
					Persisted   bool   `json:"persisted"`
					Persistence string `json:"persistence"`
				}
				doJSON(t, "POST", base+"/commit", nil, http.StatusOK, &out)
				if out.Persisted != wantPersisted {
					t.Fatalf("commit %d persisted = %v, want %v", i+1, out.Persisted, wantPersisted)
				}
			})
		}
		gate("snapshot", func(wantPersisted bool) {
			status := http.StatusOK
			if !wantPersisted {
				status = http.StatusServiceUnavailable
			}
			doJSON(t, "POST", base+"/snapshot", nil, status, nil)
		})
	}

	// Clean run collects the legitimate durable versions.
	refInner := NewMemStore()
	refFS := faultstore.New[Snapshot](refInner, faultstore.Plan{})
	refSrv := NewWithOptions(Options{Store: refFS})
	refTS := httptest.NewServer(refSrv.Handler())
	defer func() { refTS.Close(); refSrv.Close() }()
	runSession(refTS, "", refFS)
	refIDs, _ := refInner.List()
	if len(refIDs) != 1 {
		t.Fatalf("reference run stored %v", refIDs)
	}
	// The clean run's persist points: after create (0 commits), after
	// commit1, after commit2. Rebuild each from a replayed prefix.
	var versions []storeView
	{
		inner := NewMemStore()
		srv := NewWithOptions(Options{Store: inner})
		ts := httptest.NewServer(srv.Handler())
		var info SessionInfo
		doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{
			Dataset: "synthetic", Seed: 21, Depth: 2,
		}, http.StatusCreated, &info)
		base := ts.URL + "/api/v1/sessions/" + info.ID
		record := func() {
			snap, err := inner.Get(info.ID)
			if err != nil {
				t.Fatal(err)
			}
			versions = append(versions, viewOf(snap))
		}
		record()
		for i := 0; i < 2; i++ {
			mineBody(t, base)
			doJSON(t, "POST", base+"/commit", nil, http.StatusOK, nil)
			record()
		}
		ts.Close()
		srv.Close()
	}

	for _, breakAt := range []string{"create", "commit1", "commit2", "snapshot"} {
		t.Run("break-"+breakAt, func(t *testing.T) {
			inner := NewMemStore()
			fs := faultstore.New[Snapshot](inner, faultstore.Plan{})
			srv := NewWithOptions(Options{Store: fs})
			ts := httptest.NewServer(srv.Handler())
			defer func() { ts.Close(); srv.Close() }()
			runSession(ts, breakAt, fs)
			ids, _ := inner.List()
			if breakAt == "create" && len(ids) == 0 {
				// The one persist point with no prior durable version: an
				// outage there legitimately leaves nothing.
				return
			}
			if len(ids) != 1 {
				t.Fatalf("stored sessions = %v", ids)
			}
			snap, err := inner.Get(ids[0])
			if err != nil {
				t.Fatal(err)
			}
			got := viewOf(snap)
			for _, v := range versions {
				if got == v {
					return // durable at a legitimate version — old or new
				}
			}
			t.Fatalf("durable state %+v matches no clean-run version %+v", got, versions)
		})
	}
}

// TestDegradedModeEntryAndHeal: a store outage flips the server to
// degraded persistence (advertised on commits, readyz and the snapshot
// endpoint) and the first successful write heals it.
func TestDegradedModeEntryAndHeal(t *testing.T) {
	inner := NewMemStore()
	fs := faultstore.New[Snapshot](inner, faultstore.Plan{})
	srv := NewWithOptions(Options{Store: fs})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 31, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/v1/sessions/" + info.ID

	var ready Readiness
	doJSON(t, "GET", ts.URL+"/api/v1/readyz", nil, http.StatusOK, &ready)
	if !ready.Ready || ready.Persistence != PersistenceOK {
		t.Fatalf("healthy readyz = %+v", ready)
	}

	fs.Break(nil)
	mineBody(t, base)
	var out struct {
		Persisted   bool   `json:"persisted"`
		Persistence string `json:"persistence"`
	}
	doJSON(t, "POST", base+"/commit", nil, http.StatusOK, &out)
	if out.Persisted || out.Persistence != PersistenceDegraded {
		t.Fatalf("commit during outage = %+v", out)
	}
	if code := v1ErrCode(t, "POST", base+"/snapshot", nil, http.StatusServiceUnavailable); code != errStoreDegraded {
		t.Fatalf("snapshot during outage: code %q", code)
	}
	doJSON(t, "GET", ts.URL+"/api/v1/readyz", nil, http.StatusServiceUnavailable, &ready)
	if ready.Ready || ready.Persistence != PersistenceDegraded {
		t.Fatalf("degraded readyz = %+v", ready)
	}
	// Serving continues from memory while degraded.
	doJSON(t, "GET", base+"/history", nil, http.StatusOK, nil)

	fs.Heal()
	// The explicit snapshot doubles as the heal probe.
	doJSON(t, "POST", base+"/snapshot", nil, http.StatusOK, nil)
	doJSON(t, "GET", ts.URL+"/api/v1/readyz", nil, http.StatusOK, &ready)
	if !ready.Ready || ready.Persistence != PersistenceOK {
		t.Fatalf("healed readyz = %+v", ready)
	}
	doJSON(t, "POST", base+"/mine", nil, http.StatusOK, nil)
	doJSON(t, "POST", base+"/commit", nil, http.StatusOK, &out)
	if !out.Persisted || out.Persistence != PersistenceOK {
		t.Fatalf("commit after heal = %+v", out)
	}
	if _, err := inner.Get(info.ID); err != nil {
		t.Fatalf("healed store has no snapshot: %v", err)
	}
}

// TestDegradedFlapUnderConcurrency exercises the degraded entry/exit
// transitions while commits and snapshots race an outage that flaps —
// the -race leg for storeHealth. Correctness bar: no data race, no
// deadlock, and a final snapshot after heal is durable.
func TestDegradedFlapUnderConcurrency(t *testing.T) {
	inner := NewMemStore()
	fs := faultstore.New[Snapshot](inner, faultstore.Plan{})
	srv := NewWithOptions(Options{Store: fs})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 41, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/v1/sessions/" + info.ID

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the flapping outage
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs.Break(nil)
			time.Sleep(2 * time.Millisecond)
			fs.Heal()
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() { // snapshot/readyz traffic riding the flaps
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req, _ := http.NewRequest("POST", base+"/snapshot", strings.NewReader(""))
				if resp, err := http.DefaultClient.Do(req); err == nil {
					resp.Body.Close() // 200 or 503 are both legitimate mid-flap
				}
				if resp, err := http.Get(ts.URL + "/api/v1/readyz"); err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < 3; i++ { // commits riding the flaps
		mineBody(t, base)
		doJSON(t, "POST", base+"/commit", nil, http.StatusOK, nil)
	}
	close(stop)
	wg.Wait()

	fs.Heal()
	doJSON(t, "POST", base+"/snapshot", nil, http.StatusOK, nil)
	snap, err := inner.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Iterations != 3 || len(snap.History) != 3 {
		t.Fatalf("final durable state: iterations=%d history=%d, want 3/3", snap.Iterations, len(snap.History))
	}
}

// TestHealthzAndDrain: liveness always answers; drain flushes every
// session durably, then turns away new sessions and mines while reads
// keep working.
func TestHealthzAndDrain(t *testing.T) {
	ts, _ := newDirServer(t, t.TempDir())

	var health map[string]string
	doJSON(t, "GET", ts.URL+"/api/v1/healthz", nil, http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %+v", health)
	}

	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/v1/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 51, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/v1/sessions/" + info.ID
	mineBody(t, base)
	doJSON(t, "POST", base+"/commit", nil, http.StatusOK, nil)

	var rep DrainReport
	doJSON(t, "POST", ts.URL+"/api/v1/drain?timeoutMs=5000", nil, http.StatusOK, &rep)
	if !rep.Draining || !rep.JobsDrained || rep.Sessions != 1 || rep.Durable != 1 || len(rep.Failed) != 0 {
		t.Fatalf("drain report = %+v", rep)
	}

	// Drained: intake is closed with the structured 503 …
	if code := v1ErrCode(t, "POST", ts.URL+"/api/v1/sessions",
		CreateRequest{Dataset: "synthetic"}, http.StatusServiceUnavailable); code != errDraining {
		t.Fatalf("create while draining: code %q", code)
	}
	if code := v1ErrCode(t, "POST", base+"/mine", nil, http.StatusServiceUnavailable); code != errDraining {
		t.Fatalf("mine while draining: code %q", code)
	}
	// … readiness reports it …
	var ready Readiness
	doJSON(t, "GET", ts.URL+"/api/v1/readyz", nil, http.StatusServiceUnavailable, &ready)
	if ready.Ready || len(ready.Reasons) == 0 {
		t.Fatalf("readyz while draining = %+v", ready)
	}
	// … and reads still serve (memory is intact until the kill).
	doJSON(t, "GET", base+"/history", nil, http.StatusOK, nil)
	doJSON(t, "GET", ts.URL+"/api/v1/healthz", nil, http.StatusOK, nil)

	// Drain is idempotent: a retry re-flushes and reports again.
	doJSON(t, "POST", ts.URL+"/api/v1/drain?timeoutMs=5000", nil, http.StatusOK, &rep)
	if rep.Sessions != 1 || rep.Durable != 1 {
		t.Fatalf("second drain report = %+v", rep)
	}
}
