package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/jobs"
)

// jobView decodes a jobs.Info whose Result is a MineResponse.
type jobView struct {
	ID     string       `json:"id"`
	Status jobs.Status  `json:"status"`
	Error  string       `json:"error"`
	Result MineResponse `json:"result"`
}

func newTestServerWith(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	srv := NewWithOptions(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// pollJob long-polls until the job is terminal or the deadline passes.
func pollJob(t *testing.T, baseURL, id string, deadline time.Duration) jobView {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		var jv jobView
		doJSON(t, "GET", baseURL+"/api/jobs/"+id+"?waitMs=500", nil, http.StatusOK, &jv)
		if jv.Status.Terminal() {
			return jv
		}
	}
	t.Fatalf("job %s not terminal after %v", id, deadline)
	return jobView{}
}

// TestAsyncMineJobFlow drives the job-oriented API end to end: submit a
// mine with async, poll the job, commit the result.
func TestAsyncMineJobFlow(t *testing.T) {
	ts := newTestServer(t)
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 620, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/sessions/" + info.ID

	var accepted jobView
	doJSON(t, "POST", base+"/mine", MineRequest{Async: true}, http.StatusAccepted, &accepted)
	if accepted.ID == "" || accepted.Status.Terminal() && accepted.Status != jobs.StatusDone {
		t.Fatalf("accepted = %+v", accepted)
	}
	done := pollJob(t, ts.URL, accepted.ID, 10*time.Second)
	if done.Status != jobs.StatusDone {
		t.Fatalf("job finished %s: %s", done.Status, done.Error)
	}
	if done.Result.Location == nil || done.Result.Status != MineStatusComplete {
		t.Fatalf("job result = %+v", done.Result)
	}

	// The async-mined pattern is pending on the session: commit works.
	doJSON(t, "POST", base+"/commit", nil, http.StatusOK, nil)
	var hist []PatternJSON
	doJSON(t, "GET", base+"/history", nil, http.StatusOK, &hist)
	if len(hist) != 1 {
		t.Fatalf("history = %+v", hist)
	}

	// The job list knows the job; unknown job ids 404.
	var list []jobView
	doJSON(t, "GET", ts.URL+"/api/jobs", nil, http.StatusOK, &list)
	if len(list) == 0 {
		t.Fatal("job list empty")
	}
	doJSON(t, "GET", ts.URL+"/api/jobs/zzz", nil, http.StatusNotFound, nil)
}

// TestMineConflictsWhileMining pins the locking contract: while a mine
// job is in flight, a second mine, a commit, an explain and a model
// export on the SAME session conflict with 409 — but the session lock
// is NOT held across the search, so history/list stay readable.
func TestMineConflictsWhileMining(t *testing.T) {
	ts := newTestServerWith(t, Options{Workers: 2})
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "mammals", Depth: 8, BeamWidth: 1024,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/sessions/" + info.ID

	var accepted jobView
	doJSON(t, "POST", base+"/mine", MineRequest{Async: true, TimeoutMS: 2500},
		http.StatusAccepted, &accepted)

	// The session reports conflicts for model-touching calls...
	doJSON(t, "POST", base+"/mine", nil, http.StatusConflict, nil)
	doJSON(t, "POST", base+"/commit", nil, http.StatusConflict, nil)
	doJSON(t, "GET", base+"/explain", nil, http.StatusConflict, nil)
	doJSON(t, "POST", base+"/snapshot", nil, http.StatusConflict, nil)
	// ...but non-model reads and the rest of the server stay live.
	var hist []PatternJSON
	doJSON(t, "GET", base+"/history", nil, http.StatusOK, &hist)
	var sessions []SessionInfo
	doJSON(t, "GET", ts.URL+"/api/sessions", nil, http.StatusOK, &sessions)

	fin := pollJob(t, ts.URL, accepted.ID, 30*time.Second)
	if fin.Status != jobs.StatusDone {
		t.Fatalf("mine job: %s %s", fin.Status, fin.Error)
	}
	// The 2.5s budget cannot finish depth-8/beam-1024 on mammals: the
	// deadline must surface as a distinct partial/timeout status, not
	// masquerade as a complete run (and not as an error).
	if fin.Result.Status != MineStatusPartial && fin.Result.Status != MineStatusTimeout {
		t.Fatalf("status = %q, want partial or timeout", fin.Result.Status)
	}
	if fin.Result.Status == MineStatusPartial && fin.Result.Location == nil {
		t.Fatal("partial status with no location")
	}

	// After the job the session is usable again.
	if fin.Result.Location != nil {
		doJSON(t, "POST", base+"/commit", nil, http.StatusOK, nil)
	}
}

// TestCancelQueuedMineReleasesSession: with a single worker, a second
// session's mine queues behind the first; cancelling the queued job
// must release that session's mine slot.
func TestCancelQueuedMineReleasesSession(t *testing.T) {
	ts := newTestServerWith(t, Options{Workers: 1})
	mkSession := func(ds string, depth int) string {
		var info SessionInfo
		doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
			Dataset: ds, Depth: depth,
		}, http.StatusCreated, &info)
		return ts.URL + "/api/sessions/" + info.ID
	}
	baseA := mkSession("mammals", 8)
	baseB := mkSession("synthetic", 2)

	var runA jobView
	doJSON(t, "POST", baseA+"/mine", MineRequest{Async: true, TimeoutMS: 1500},
		http.StatusAccepted, &runA)
	var queuedB jobView
	doJSON(t, "POST", baseB+"/mine", MineRequest{Async: true}, http.StatusAccepted, &queuedB)

	var cancelled jobView
	doJSON(t, "DELETE", ts.URL+"/api/jobs/"+queuedB.ID, nil, http.StatusOK, &cancelled)
	fin := pollJob(t, ts.URL, queuedB.ID, 10*time.Second)
	if fin.Status != jobs.StatusCancelled {
		t.Fatalf("queued job after cancel: %s", fin.Status)
	}

	// Session B's mine slot was released by the cancellation: a fresh
	// sync mine succeeds once the worker frees up.
	var mined MineResponse
	doJSON(t, "POST", baseB+"/mine", nil, http.StatusOK, &mined)
	if mined.Location == nil {
		t.Fatalf("mine after cancel = %+v", mined)
	}
	pollJob(t, ts.URL, runA.ID, 30*time.Second)
}

// TestCancelRunningMineDiscardsResult: cancelling an in-flight mine
// takes effect when the current search phase ends (no later than the
// mine budget): the job reports cancelled, nothing is published to the
// session, and the mine slot is released.
func TestCancelRunningMineDiscardsResult(t *testing.T) {
	ts := newTestServerWith(t, Options{Workers: 2})
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "mammals", Depth: 8, BeamWidth: 1024,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/sessions/" + info.ID

	var accepted jobView
	doJSON(t, "POST", base+"/mine", MineRequest{Async: true, TimeoutMS: 2000},
		http.StatusAccepted, &accepted)
	for deadline := time.Now().Add(5 * time.Second); ; {
		var jv jobView
		doJSON(t, "GET", ts.URL+"/api/jobs/"+accepted.ID, nil, http.StatusOK, &jv)
		if jv.Status == jobs.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck %s", jv.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	doJSON(t, "DELETE", ts.URL+"/api/jobs/"+accepted.ID, nil, http.StatusOK, nil)
	fin := pollJob(t, ts.URL, accepted.ID, 30*time.Second)
	if fin.Status != jobs.StatusCancelled {
		t.Fatalf("cancelled running mine finished %s", fin.Status)
	}
	// No result was published: nothing pending to commit, slot free.
	doJSON(t, "POST", base+"/commit", nil, http.StatusConflict, nil)
	var mined MineResponse
	doJSON(t, "POST", base+"/mine", MineRequest{TimeoutMS: 300}, http.StatusOK, &mined)
	if mined.Status == "" {
		t.Fatalf("re-mine after cancel = %+v", mined)
	}
}

// TestMineQueueFull: a queue of capacity 1 with one worker reports 503
// on overflow instead of queueing unbounded work.
func TestMineQueueFull(t *testing.T) {
	ts := newTestServerWith(t, Options{Workers: 1, QueueCap: 1})
	mk := func(ds string, depth int) string {
		var info SessionInfo
		doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
			Dataset: ds, Depth: depth,
		}, http.StatusCreated, &info)
		return ts.URL + "/api/sessions/" + info.ID
	}
	baseA := mk("mammals", 8)
	baseB := mk("mammals", 8)
	baseC := mk("synthetic", 2)

	var a, b jobView
	doJSON(t, "POST", baseA+"/mine", MineRequest{Async: true, TimeoutMS: 1200},
		http.StatusAccepted, &a)
	// Wait until the worker picked A up, so B occupies the queue slot
	// deterministically.
	for deadline := time.Now().Add(5 * time.Second); ; {
		var jv jobView
		doJSON(t, "GET", ts.URL+"/api/jobs/"+a.ID, nil, http.StatusOK, &jv)
		if jv.Status != jobs.StatusQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	doJSON(t, "POST", baseB+"/mine", MineRequest{Async: true, TimeoutMS: 1200},
		http.StatusAccepted, &b)
	doJSON(t, "POST", baseC+"/mine", MineRequest{Async: true}, http.StatusServiceUnavailable, nil)

	// The rejected session is not left with a stuck mine slot.
	pollJob(t, ts.URL, a.ID, 30*time.Second)
	pollJob(t, ts.URL, b.ID, 30*time.Second)
	var mined MineResponse
	doJSON(t, "POST", baseC+"/mine", nil, http.StatusOK, &mined)
	if mined.Location == nil {
		t.Fatal("mine after 503 failed")
	}
}
