package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// mineBody POSTs a mine and returns the decoded response.
func mineBody(t *testing.T, base string) MineResponse {
	t.Helper()
	var resp MineResponse
	doJSON(t, "POST", base+"/mine", nil, http.StatusOK, &resp)
	return resp
}

// canonical marshals a mine response with the per-run job id cleared,
// so two runs can be compared byte for byte.
func canonical(t *testing.T, resp MineResponse) []byte {
	t.Helper()
	resp.Job = ""
	raw, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSnapshotRestoreByteIdentical is the acceptance check for session
// persistence: a second server process sharing the same disk store
// restores the session and mines a byte-identical result.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	dir := t.TempDir()
	store1, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewWithOptions(Options{Store: store1})
	ts1 := httptest.NewServer(srv1.Handler())

	var info SessionInfo
	doJSON(t, "POST", ts1.URL+"/api/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 620, Gamma: 0.5, Depth: 3,
	}, http.StatusCreated, &info)
	base1 := ts1.URL + "/api/sessions/" + info.ID

	// One full iteration (commit auto-persists), then a second mine that
	// stays uncommitted — the reference the restored session must match.
	mineBody(t, base1)
	doJSON(t, "POST", base1+"/commit", nil, http.StatusOK, nil)
	want := mineBody(t, base1)
	var wantHist []PatternJSON
	doJSON(t, "GET", base1+"/history", nil, http.StatusOK, &wantHist)

	// "Restart": a fresh server over the same directory.
	ts1.Close()
	srv1.Close()
	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewWithOptions(Options{Store: store2})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.Close()
	})
	base2 := ts2.URL + "/api/sessions/" + info.ID

	got := mineBody(t, base2) // transparently restores the session
	if !bytes.Equal(canonical(t, want), canonical(t, got)) {
		t.Fatalf("restored mine differs:\n want %s\n got  %s",
			canonical(t, want), canonical(t, got))
	}
	var gotHist []PatternJSON
	doJSON(t, "GET", base2+"/history", nil, http.StatusOK, &gotHist)
	if len(gotHist) != len(wantHist) {
		t.Fatalf("history: %d entries, want %d", len(gotHist), len(wantHist))
	}

	// New sessions on the restarted server do not collide with restored
	// ids.
	var fresh SessionInfo
	doJSON(t, "POST", ts2.URL+"/api/sessions", CreateRequest{Dataset: "synthetic"},
		http.StatusCreated, &fresh)
	if fresh.ID == info.ID {
		t.Fatalf("restarted server reissued id %s", fresh.ID)
	}
}

// TestLRUEvictionTransparent: sessions beyond MaxSessions are evicted
// to the store and restored on first touch with their state intact.
func TestLRUEvictionTransparent(t *testing.T) {
	ts := newTestServerWith(t, Options{MaxSessions: 2})
	mk := func(seed int64) string {
		var info SessionInfo
		doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
			Dataset: "synthetic", Seed: seed, Depth: 2,
		}, http.StatusCreated, &info)
		return info.ID
	}
	id1 := mk(1)
	base1 := ts.URL + "/api/sessions/" + id1
	mineBody(t, base1)
	doJSON(t, "POST", base1+"/commit", nil, http.StatusOK, nil)
	mk(2)
	mk(3) // pushes the server past MaxSessions; LRU (id1) is evicted

	var sessions []SessionInfo
	doJSON(t, "GET", ts.URL+"/api/sessions", nil, http.StatusOK, &sessions)
	live, persisted := 0, 0
	for _, s := range sessions {
		if s.Persisted {
			persisted++
		} else {
			live++
		}
	}
	if live != 2 || persisted != 1 {
		t.Fatalf("live=%d persisted=%d (want 2/1): %+v", live, persisted, sessions)
	}

	// Touching the evicted session restores it with history intact.
	var hist []PatternJSON
	doJSON(t, "GET", base1+"/history", nil, http.StatusOK, &hist)
	if len(hist) != 1 {
		t.Fatalf("restored history = %+v", hist)
	}
}

// TestTTLEviction: sessions idle past SessionTTL move to the store.
func TestTTLEviction(t *testing.T) {
	ts := newTestServerWith(t, Options{SessionTTL: 30 * time.Millisecond})
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "synthetic", Seed: 7, Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/sessions/" + info.ID
	mineBody(t, base)
	doJSON(t, "POST", base+"/commit", nil, http.StatusOK, nil)

	time.Sleep(60 * time.Millisecond)
	// Cap enforcement runs on create: this create sweeps the idle one.
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{Dataset: "synthetic"},
		http.StatusCreated, nil)

	var sessions []SessionInfo
	doJSON(t, "GET", ts.URL+"/api/sessions", nil, http.StatusOK, &sessions)
	var evicted *SessionInfo
	for i := range sessions {
		if sessions[i].ID == info.ID {
			evicted = &sessions[i]
		}
	}
	if evicted == nil || !evicted.Persisted {
		t.Fatalf("idle session not evicted to store: %+v", sessions)
	}

	// And it still works: iteration count survived the round trip.
	doJSON(t, "POST", base+"/mine", nil, http.StatusOK, nil)
	doJSON(t, "GET", ts.URL+"/api/sessions", nil, http.StatusOK, &sessions)
	for _, s := range sessions {
		if s.ID == info.ID && s.Iterations != 1 {
			t.Fatalf("restored iterations = %d", s.Iterations)
		}
	}
}

// TestDeleteRemovesStoreSnapshot: DELETE removes both the live session
// and its persisted snapshot (including store-only sessions).
func TestDeleteRemovesStoreSnapshot(t *testing.T) {
	ts := newTestServer(t)
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "synthetic", Depth: 2,
	}, http.StatusCreated, &info)
	base := ts.URL + "/api/sessions/" + info.ID
	mineBody(t, base)
	doJSON(t, "POST", base+"/commit", nil, http.StatusOK, nil)

	doJSON(t, "DELETE", base, nil, http.StatusOK, nil)
	// Gone from memory AND the store: no transparent resurrection.
	doJSON(t, "GET", base+"/history", nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", base, nil, http.StatusNotFound, nil)
	var sessions []SessionInfo
	doJSON(t, "GET", ts.URL+"/api/sessions", nil, http.StatusOK, &sessions)
	if len(sessions) != 0 {
		t.Fatalf("sessions after delete = %+v", sessions)
	}
}

// TestSnapshotEndpoint: the explicit flush persists without a commit.
func TestSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerWith(t, Options{Store: store})
	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset: "synthetic", Depth: 2,
	}, http.StatusCreated, &info)
	var out map[string]any
	doJSON(t, "POST", ts.URL+"/api/sessions/"+info.ID+"/snapshot", nil, http.StatusOK, &out)
	if out["id"] != info.ID || out["modelBytes"].(float64) <= 0 {
		t.Fatalf("snapshot = %+v", out)
	}
	got, err := store.Get(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Create.Dataset != "synthetic" {
		t.Fatalf("stored snapshot = %+v", got)
	}
}

// TestDirStore unit-tests the disk store directly, including the path
// traversal guard.
func TestDirStore(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{
		ID:         "s0001",
		Create:     CreateRequest{Dataset: "synthetic", Seed: 9},
		Model:      json.RawMessage(`{"n":1}`),
		History:    []PatternJSON{{Kind: "location", Intention: "x<=1"}},
		Iterations: 3,
		SavedAt:    time.Now(),
	}
	if err := store.Put(snap); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get("s0001")
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != 3 || got.Create.Seed != 9 || len(got.History) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	ids, err := store.List()
	if err != nil || len(ids) != 1 || ids[0] != "s0001" {
		t.Fatalf("list = %v, %v", ids, err)
	}
	if _, err := store.Get("../../etc/passwd"); err == nil {
		t.Fatal("path traversal id accepted")
	}
	if err := store.Put(&Snapshot{ID: "../evil"}); err == nil {
		t.Fatal("path traversal put accepted")
	}
	if existed, err := store.Delete("s0001"); err != nil || !existed {
		t.Fatalf("delete = %v, %v", existed, err)
	}
	if _, err := store.Get("s0001"); err == nil {
		t.Fatal("deleted snapshot still readable")
	}
	if existed, err := store.Delete("s0001"); err != nil || existed {
		t.Fatalf("double delete = %v, %v", existed, err)
	}
}
