package server

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/repstore"
)

// This file wires internal/repstore to the serving layer's snapshot
// types: a quorum-replicated store over N DirStore directories, each
// ideally on its own disk, so durable session state survives the loss
// of any minority of them (DESIGN.md §13).

// ProgressKey returns the snapshot's monotone progress key: a
// session's durable state only grows (iterations and history are
// append-only), and byte-identical determinism makes equal progress
// equal state, so comparing (iterations, history length)
// lexicographically orders any two versions of one session. The
// stale-write fence (storePut) and the replicated store's newest-wins
// vote both order by this key.
func (s *Snapshot) ProgressKey() (iterations, history int64) {
	return int64(s.Iterations), int64(len(s.History))
}

// lazyDirStore defers opening a DirStore replica until an operation
// needs it, and keeps retrying on every operation while opening fails.
// A replica directory that is unavailable at startup (dead disk,
// unmounted volume) is a broken replica to route around — the
// replicated store's circuit breaker bounds the retry cost — not a
// fatal configuration error, and remounting the volume heals it
// without a restart. The open also runs DirStore's crash-recovery
// sweep, so a replica that comes back late still gets its *.tmp
// cleanup and corrupt-file quarantine.
type lazyDirStore struct {
	dir string

	mu    sync.Mutex
	store *DirStore
}

func (c *lazyDirStore) open() (*DirStore, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.store != nil {
		return c.store, nil
	}
	st, err := NewDirStore(c.dir)
	if err != nil {
		return nil, err
	}
	c.store = st
	return st, nil
}

func (c *lazyDirStore) Put(snap *Snapshot) error {
	st, err := c.open()
	if err != nil {
		return err
	}
	return st.Put(snap)
}

func (c *lazyDirStore) Get(id string) (*Snapshot, error) {
	st, err := c.open()
	if err != nil {
		return nil, err
	}
	return st.Get(id)
}

func (c *lazyDirStore) Delete(id string) (bool, error) {
	st, err := c.open()
	if err != nil {
		return false, err
	}
	return st.Delete(id)
}

func (c *lazyDirStore) List() ([]string, error) {
	st, err := c.open()
	if err != nil {
		return nil, err
	}
	return st.List()
}

// NewReplicatedDirStore builds a quorum-replicated session store over
// one DirStore per directory. writeQuorum 0 means majority; reads need
// len(dirs)-W+1 replies. sweepInterval runs the anti-entropy sweep in
// the background (0 disables it; tests call Sweep explicitly).
//
// Directories that fail to open are tolerated as broken replicas
// (retried per operation, skipped by the breaker once it opens) as
// long as at least one opens — a node whose every replica volume is
// missing is misconfigured, not degraded.
func NewReplicatedDirStore(dirs []string, writeQuorum int, sweepInterval time.Duration) (*repstore.Replicated[Snapshot], error) {
	if len(dirs) < 2 {
		return nil, fmt.Errorf("server: replicated store needs >= 2 dirs, got %d", len(dirs))
	}
	members := make([]repstore.Member[Snapshot], len(dirs))
	opened := 0
	var openErrs []string
	for i, dir := range dirs {
		child := &lazyDirStore{dir: dir}
		if _, err := child.open(); err == nil {
			opened++
		} else {
			openErrs = append(openErrs, err.Error())
		}
		members[i] = repstore.Member[Snapshot]{ID: dir, Store: child}
	}
	if opened == 0 {
		return nil, fmt.Errorf("server: no replica dir could be opened: %s", strings.Join(openErrs, "; "))
	}
	return repstore.New(repstore.Config[Snapshot]{
		WriteQuorum:   writeQuorum,
		ID:            func(s *Snapshot) string { return s.ID },
		Progress:      (*Snapshot).ProgressKey,
		Verify:        (*Snapshot).Verify,
		NotFound:      ErrNotFound,
		Corrupt:       ErrCorrupt,
		SweepInterval: sweepInterval,
	}, members...)
}
