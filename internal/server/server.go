// Package server exposes the iterative miner as a JSON HTTP API with
// per-user sessions — the integration target the paper's future work
// names (§V: "we aim to integrate this method with SIDE, our online
// tool for exploration of numerical data"). A session owns a dataset
// and an evolving background model; the client mines, inspects and
// commits patterns interactively, and the server keeps the belief state
// between requests.
//
// Endpoints (all JSON):
//
//	POST   /api/sessions                  create (builtin dataset or inline CSV)
//	GET    /api/sessions                  list sessions
//	DELETE /api/sessions/{id}             drop a session
//	POST   /api/sessions/{id}/mine        mine the next pattern (not committed)
//	POST   /api/sessions/{id}/commit      commit the pending pattern(s)
//	GET    /api/sessions/{id}/explain     per-target surprise of the pending pattern
//	GET    /api/sessions/{id}/history     committed patterns so far
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/si"
	"repro/internal/spreadopt"
)

// Server is the HTTP API. Create with New and mount via Handler.
type Server struct {
	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
}

type session struct {
	mu            sync.Mutex
	miner         *core.Miner
	pendingLoc    *pattern.Location
	pendingSpread *pattern.Spread
	history       []PatternJSON
}

// New returns an empty server.
func New() *Server {
	return &Server{sessions: map[string]*session{}}
}

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/sessions", s.handleCreate)
	mux.HandleFunc("GET /api/sessions", s.handleList)
	mux.HandleFunc("DELETE /api/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /api/sessions/{id}/mine", s.handleMine)
	mux.HandleFunc("POST /api/sessions/{id}/commit", s.handleCommit)
	mux.HandleFunc("GET /api/sessions/{id}/explain", s.handleExplain)
	mux.HandleFunc("GET /api/sessions/{id}/history", s.handleHistory)
	mux.HandleFunc("GET /api/sessions/{id}/model", s.handleModel)
	return mux
}

// CreateRequest configures a new session.
type CreateRequest struct {
	// Dataset is a builtin name (synthetic|crime|mammals|socio|water) or
	// "csv" with the data inline in CSV.
	Dataset string  `json:"dataset"`
	Seed    int64   `json:"seed,omitempty"`
	CSV     string  `json:"csv,omitempty"`
	Gamma   float64 `json:"gamma,omitempty"`
	Eta     float64 `json:"eta,omitempty"`
	// Search settings (0 = paper defaults).
	BeamWidth  int  `json:"beamWidth,omitempty"`
	Depth      int  `json:"depth,omitempty"`
	PairSparse bool `json:"pairSparse,omitempty"`
}

// SessionInfo describes a session to clients.
type SessionInfo struct {
	ID         string   `json:"id"`
	Dataset    string   `json:"dataset"`
	N          int      `json:"n"`
	Dx         int      `json:"dx"`
	Dy         int      `json:"dy"`
	Targets    []string `json:"targets"`
	Iterations int      `json:"iterations"`
}

// PatternJSON is the wire form of a mined pattern.
type PatternJSON struct {
	Kind      string    `json:"kind"` // "location" or "spread"
	Intention string    `json:"intention"`
	Size      int       `json:"size"`
	SI        float64   `json:"si"`
	IC        float64   `json:"ic"`
	DL        float64   `json:"dl"`
	Mean      []float64 `json:"mean,omitempty"`
	W         []float64 `json:"w,omitempty"`
	Variance  float64   `json:"variance,omitempty"`
}

// MineRequest selects what to mine.
type MineRequest struct {
	Spread bool `json:"spread"`
}

// MineResponse carries the pending (uncommitted) patterns.
type MineResponse struct {
	Location *PatternJSON `json:"location"`
	Spread   *PatternJSON `json:"spread,omitempty"`
	// Evaluated counts candidates scored by the beam search.
	Evaluated int `json:"evaluated"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func buildDataset(req *CreateRequest) (*dataset.Dataset, error) {
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	switch strings.ToLower(req.Dataset) {
	case "synthetic":
		return gen.Synthetic620(seed).DS, nil
	case "crime":
		return gen.CrimeLike(seed).DS, nil
	case "mammals":
		return gen.MammalsLike(seed).DS, nil
	case "socio":
		return gen.SocioEconLike(seed).DS, nil
	case "water":
		return gen.WaterQualityLike(seed).DS, nil
	case "csv":
		if req.CSV == "" {
			return nil, fmt.Errorf("dataset \"csv\" needs a csv field")
		}
		return dataset.ReadCSV(strings.NewReader(req.CSV))
	default:
		return nil, fmt.Errorf("unknown dataset %q", req.Dataset)
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	ds, err := buildDataset(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := core.Config{
		Search: search.Params{BeamWidth: req.BeamWidth, MaxDepth: req.Depth},
		Spread: spreadopt.Params{PairSparse: req.PairSparse},
	}
	if req.Gamma != 0 || req.Eta != 0 {
		cfg.SI = si.Params{Gamma: req.Gamma, Eta: req.Eta}
	}
	miner, err := core.NewMiner(ds, cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "building miner: %v", err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%04d", s.nextID)
	s.sessions[id] = &session{miner: miner}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, s.info(id))
}

func (s *Server) get(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

func (s *Server) info(id string) SessionInfo {
	sess := s.get(id)
	ds := sess.miner.DS
	return SessionInfo{
		ID: id, Dataset: ds.Name,
		N: ds.N(), Dx: ds.Dx(), Dy: ds.Dy(),
		Targets:    ds.TargetNames,
		Iterations: sess.miner.Iteration(),
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	out := make([]SessionInfo, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.info(id))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) withSession(w http.ResponseWriter, r *http.Request) *session {
	sess := s.get(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return nil
	}
	return sess
}

func locationJSON(ds *dataset.Dataset, loc *pattern.Location) *PatternJSON {
	return &PatternJSON{
		Kind:      "location",
		Intention: loc.Intention.Format(ds),
		Size:      loc.Size(),
		SI:        loc.SI, IC: loc.IC, DL: loc.DL,
		Mean: loc.Mean,
	}
}

func spreadJSON(ds *dataset.Dataset, sp *pattern.Spread) *PatternJSON {
	return &PatternJSON{
		Kind:      "spread",
		Intention: sp.Intention.Format(ds),
		Size:      sp.Size(),
		SI:        sp.SI, IC: sp.IC, DL: sp.DL,
		W: sp.W, Variance: sp.Variance,
	}
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	var req MineRequest
	if r.ContentLength > 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
			return
		}
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	loc, log, err := sess.miner.MineLocation()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "mining: %v", err)
		return
	}
	sess.pendingLoc = loc
	sess.pendingSpread = nil
	resp := MineResponse{
		Location:  locationJSON(sess.miner.DS, loc),
		Evaluated: log.Evaluated,
	}
	if req.Spread {
		// The two-step procedure needs the location committed before the
		// direction search; preview on a clone so nothing is committed
		// until the client asks for it.
		preview := *sess.miner
		preview.Model = sess.miner.Model.Clone()
		if err := preview.Model.CommitLocation(loc.Extension, loc.Mean); err != nil {
			writeErr(w, http.StatusInternalServerError, "spread preview: %v", err)
			return
		}
		sp, err := preview.MineSpread(loc)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "spread: %v", err)
			return
		}
		sess.pendingSpread = sp
		resp.Spread = spreadJSON(sess.miner.DS, sp)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.pendingLoc == nil {
		writeErr(w, http.StatusConflict, "nothing mined to commit")
		return
	}
	if err := sess.miner.CommitLocation(sess.pendingLoc); err != nil {
		writeErr(w, http.StatusInternalServerError, "commit: %v", err)
		return
	}
	sess.history = append(sess.history, *locationJSON(sess.miner.DS, sess.pendingLoc))
	if sess.pendingSpread != nil {
		if err := sess.miner.CommitSpread(sess.pendingSpread); err != nil {
			writeErr(w, http.StatusInternalServerError, "commit spread: %v", err)
			return
		}
		sess.history = append(sess.history, *spreadJSON(sess.miner.DS, sess.pendingSpread))
	}
	sess.pendingLoc, sess.pendingSpread = nil, nil
	writeJSON(w, http.StatusOK, map[string]int{"iterations": sess.miner.Iteration()})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.pendingLoc == nil {
		writeErr(w, http.StatusConflict, "nothing mined to explain")
		return
	}
	expl, err := sess.miner.ExplainLocation(sess.pendingLoc)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "explain: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, expl)
}

// handleModel exports the session's background-model state (the user's
// current belief state) as JSON, so sessions can be persisted and
// analyzed offline; see background.LoadJSON for restoring.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := sess.miner.Model.SaveJSON(w); err != nil {
		writeErr(w, http.StatusInternalServerError, "export: %v", err)
	}
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.history == nil {
		writeJSON(w, http.StatusOK, []PatternJSON{})
		return
	}
	writeJSON(w, http.StatusOK, sess.history)
}
