// Package server exposes the iterative miner as a JSON HTTP API with
// per-user sessions — the integration target the paper's future work
// names (§V: "we aim to integrate this method with SIDE, our online
// tool for exploration of numerical data"). A session owns a dataset
// and an evolving background model; the client mines, inspects and
// commits patterns interactively, and the server keeps the belief state
// between requests.
//
// Endpoints (all JSON):
//
//	POST   /api/sessions                  create (builtin dataset or inline CSV)
//	GET    /api/sessions                  list sessions
//	DELETE /api/sessions/{id}             drop a session
//	POST   /api/sessions/{id}/mine        mine the next pattern (not committed)
//	POST   /api/sessions/{id}/commit      commit the pending pattern(s)
//	GET    /api/sessions/{id}/explain     per-target surprise of the pending pattern
//	GET    /api/sessions/{id}/history     committed patterns so far
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/si"
	"repro/internal/spreadopt"
)

// Server is the HTTP API. Create with New and mount via Handler.
type Server struct {
	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
}

type session struct {
	mu            sync.Mutex
	miner         *core.Miner
	mineTimeout   time.Duration // per-mine search budget (0 = none)
	closed        bool          // set by delete; blocks queued requests
	pendingLoc    *pattern.Location
	pendingSpread *pattern.Spread
	history       []PatternJSON
	// iterations mirrors miner.Iteration() for lock-free reads: info()
	// serves session listings without waiting behind an in-flight mine.
	iterations atomic.Int64
}

// lockOpen acquires the session lock and reports whether the session is
// still live. A request that grabbed the session just before a DELETE
// removed it from the map would otherwise run after the delete — and a
// mine would re-pin the evicted condition language of a dead dataset.
func (sess *session) lockOpen(w http.ResponseWriter) bool {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		writeErr(w, http.StatusNotFound, "session deleted")
		return false
	}
	return true
}

// Caps on client-requested search settings that size allocations or
// unbounded work: numSplits grows the condition language (one cached
// extension bitset per condition), topK retains a cloned extension per
// kept pattern, beamWidth multiplies the per-level candidate batch,
// and depth multiplies the number of levels.
const (
	maxNumSplits   = 64
	maxTopK        = 10000
	maxBeamWidth   = 1024
	maxSearchDepth = 8
)

// New returns an empty server.
func New() *Server {
	return &Server{sessions: map[string]*session{}}
}

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/sessions", s.handleCreate)
	mux.HandleFunc("GET /api/sessions", s.handleList)
	mux.HandleFunc("DELETE /api/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /api/sessions/{id}/mine", s.handleMine)
	mux.HandleFunc("POST /api/sessions/{id}/commit", s.handleCommit)
	mux.HandleFunc("GET /api/sessions/{id}/explain", s.handleExplain)
	mux.HandleFunc("GET /api/sessions/{id}/history", s.handleHistory)
	mux.HandleFunc("GET /api/sessions/{id}/model", s.handleModel)
	return mux
}

// CreateRequest configures a new session.
type CreateRequest struct {
	// Dataset is a builtin name (synthetic|crime|mammals|socio|water) or
	// "csv" with the data inline in CSV.
	Dataset string  `json:"dataset"`
	Seed    int64   `json:"seed,omitempty"`
	CSV     string  `json:"csv,omitempty"`
	Gamma   float64 `json:"gamma,omitempty"`
	Eta     float64 `json:"eta,omitempty"`
	// Search settings (0 = paper defaults). Parallelism caps the
	// evaluation-engine workers per search — sessions on a shared server
	// can be throttled so one mine call does not occupy every core.
	BeamWidth   int  `json:"beamWidth,omitempty"`
	Depth       int  `json:"depth,omitempty"`
	TopK        int  `json:"topK,omitempty"`
	MinSupport  int  `json:"minSupport,omitempty"`
	NumSplits   int  `json:"numSplits,omitempty"`
	Parallelism int  `json:"parallelism,omitempty"`
	PairSparse  bool `json:"pairSparse,omitempty"`
	// MineTimeoutMS bounds each mine call's beam search (0 = no budget);
	// a cut-short search reports timedOut in the mine response.
	MineTimeoutMS int `json:"mineTimeoutMs,omitempty"`
}

// SessionInfo describes a session to clients.
type SessionInfo struct {
	ID         string   `json:"id"`
	Dataset    string   `json:"dataset"`
	N          int      `json:"n"`
	Dx         int      `json:"dx"`
	Dy         int      `json:"dy"`
	Targets    []string `json:"targets"`
	Iterations int      `json:"iterations"`
}

// PatternJSON is the wire form of a mined pattern.
type PatternJSON struct {
	Kind      string    `json:"kind"` // "location" or "spread"
	Intention string    `json:"intention"`
	Size      int       `json:"size"`
	SI        float64   `json:"si"`
	IC        float64   `json:"ic"`
	DL        float64   `json:"dl"`
	Mean      []float64 `json:"mean,omitempty"`
	W         []float64 `json:"w,omitempty"`
	Variance  float64   `json:"variance,omitempty"`
}

// MineRequest selects what to mine. TimeoutMS overrides the session's
// mine budget for this call (0 = use the session default).
type MineRequest struct {
	Spread    bool `json:"spread"`
	TimeoutMS int  `json:"timeoutMs,omitempty"`
}

// MineResponse carries the pending (uncommitted) patterns. Location is
// null when the mine budget expired before anything was scored (in
// which case TimedOut is set).
type MineResponse struct {
	Location *PatternJSON `json:"location"`
	Spread   *PatternJSON `json:"spread,omitempty"`
	// Evaluated counts candidates scored by the beam search; TimedOut
	// reports whether the session's mine budget cut the search short.
	Evaluated int  `json:"evaluated"`
	TimedOut  bool `json:"timedOut,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func buildDataset(req *CreateRequest) (*dataset.Dataset, error) {
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	switch strings.ToLower(req.Dataset) {
	case "synthetic":
		return gen.Synthetic620(seed).DS, nil
	case "crime":
		return gen.CrimeLike(seed).DS, nil
	case "mammals":
		return gen.MammalsLike(seed).DS, nil
	case "socio":
		return gen.SocioEconLike(seed).DS, nil
	case "water":
		return gen.WaterQualityLike(seed).DS, nil
	case "csv":
		if req.CSV == "" {
			return nil, fmt.Errorf("dataset \"csv\" needs a csv field")
		}
		return dataset.ReadCSV(strings.NewReader(req.CSV))
	default:
		return nil, fmt.Errorf("unknown dataset %q", req.Dataset)
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	ds, err := buildDataset(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Clamp client-supplied engine options that size allocations: one
	// create request must not be able to exhaust the shared server.
	if req.Parallelism > runtime.NumCPU() {
		req.Parallelism = runtime.NumCPU()
	}
	if req.NumSplits > maxNumSplits {
		req.NumSplits = maxNumSplits
	}
	if req.TopK > maxTopK {
		req.TopK = maxTopK
	}
	if req.BeamWidth > maxBeamWidth {
		req.BeamWidth = maxBeamWidth
	}
	if req.Depth > maxSearchDepth {
		req.Depth = maxSearchDepth
	}
	cfg := core.Config{
		Search: search.Params{
			BeamWidth:   req.BeamWidth,
			MaxDepth:    req.Depth,
			TopK:        req.TopK,
			MinSupport:  req.MinSupport,
			NumSplits:   req.NumSplits,
			Parallelism: req.Parallelism,
		},
		Spread: spreadopt.Params{PairSparse: req.PairSparse},
	}
	if req.Gamma != 0 || req.Eta != 0 {
		cfg.SI = si.Params{Gamma: req.Gamma, Eta: req.Eta}
	}
	miner, err := core.NewMiner(ds, cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "building miner: %v", err)
		return
	}
	sess := &session{miner: miner}
	if req.MineTimeoutMS > 0 {
		sess.mineTimeout = time.Duration(req.MineTimeoutMS) * time.Millisecond
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%04d", s.nextID)
	s.sessions[id] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, SessionInfo{
		ID: id, Dataset: ds.Name,
		N: ds.N(), Dx: ds.Dx(), Dy: ds.Dy(),
		Targets: ds.TargetNames,
	})
}

func (s *Server) get(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// info describes a session; ok is false when the session was deleted
// between the caller's id snapshot and this lookup.
func (s *Server) info(id string) (SessionInfo, bool) {
	sess := s.get(id)
	if sess == nil {
		return SessionInfo{}, false
	}
	ds := sess.miner.DS
	return SessionInfo{
		ID: id, Dataset: ds.Name,
		N: ds.N(), Dx: ds.Dx(), Dy: ds.Dy(),
		Targets:    ds.TargetNames,
		Iterations: int(sess.iterations.Load()),
	}, true
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	out := make([]SessionInfo, 0, len(ids))
	for _, id := range ids {
		if inf, ok := s.info(id); ok {
			out = append(out, inf)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no session %q", id)
		return
	}
	// Release the dataset's cached condition language with the session;
	// datasets are per-session, so nobody else can be using it. Taking
	// the session lock first waits out any in-flight mine, and marking
	// the session closed stops requests still queued on the lock from
	// rebuilding and re-pinning the language after the eviction.
	sess.mu.Lock()
	sess.closed = true
	engine.EvictLanguage(sess.miner.DS)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) withSession(w http.ResponseWriter, r *http.Request) *session {
	sess := s.get(r.PathValue("id"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return nil
	}
	return sess
}

func locationJSON(ds *dataset.Dataset, loc *pattern.Location) *PatternJSON {
	return &PatternJSON{
		Kind:      "location",
		Intention: loc.Intention.Format(ds),
		Size:      loc.Size(),
		SI:        loc.SI, IC: loc.IC, DL: loc.DL,
		Mean: loc.Mean,
	}
}

func spreadJSON(ds *dataset.Dataset, sp *pattern.Spread) *PatternJSON {
	return &PatternJSON{
		Kind:      "spread",
		Intention: sp.Intention.Format(ds),
		Size:      sp.Size(),
		SI:        sp.SI, IC: sp.IC, DL: sp.DL,
		W: sp.W, Variance: sp.Variance,
	}
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	var req MineRequest
	if r.ContentLength > 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
			return
		}
	}
	if !sess.lockOpen(w) {
		return
	}
	defer sess.mu.Unlock()
	budget := sess.mineTimeout
	if req.TimeoutMS > 0 {
		budget = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	sess.miner.Cfg.Search.Deadline = time.Time{}
	if budget > 0 {
		sess.miner.Cfg.Search.Deadline = time.Now().Add(budget)
	}
	loc, log, err := sess.miner.MineLocation()
	if err != nil {
		// A budget that expires before anything is scored is a timeout,
		// not a server failure: honour the MineResponse contract. The
		// pending slots are cleared so an earlier mine's pattern cannot
		// be committed on the strength of this empty result.
		if errors.Is(err, core.ErrNoPattern) && log != nil && log.TimedOut {
			sess.pendingLoc, sess.pendingSpread = nil, nil
			writeJSON(w, http.StatusOK, MineResponse{
				Evaluated: log.Evaluated,
				TimedOut:  true,
			})
			return
		}
		writeErr(w, http.StatusInternalServerError, "mining: %v", err)
		return
	}
	sess.pendingLoc = loc
	sess.pendingSpread = nil
	resp := MineResponse{
		Location:  locationJSON(sess.miner.DS, loc),
		Evaluated: log.Evaluated,
		TimedOut:  log.TimedOut,
	}
	if req.Spread {
		// The two-step procedure needs the location committed before the
		// direction search; preview on a clone so nothing is committed
		// until the client asks for it.
		preview := *sess.miner
		preview.Model = sess.miner.Model.Clone()
		if err := preview.Model.CommitLocation(loc.Extension, loc.Mean); err != nil {
			writeErr(w, http.StatusInternalServerError, "spread preview: %v", err)
			return
		}
		sp, err := preview.MineSpread(loc)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "spread: %v", err)
			return
		}
		sess.pendingSpread = sp
		resp.Spread = spreadJSON(sess.miner.DS, sp)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	if !sess.lockOpen(w) {
		return
	}
	defer sess.mu.Unlock()
	if sess.pendingLoc == nil {
		writeErr(w, http.StatusConflict, "nothing mined to commit")
		return
	}
	if err := sess.miner.CommitLocation(sess.pendingLoc); err != nil {
		writeErr(w, http.StatusInternalServerError, "commit: %v", err)
		return
	}
	// The location is now irreversibly in the background model: record
	// that before attempting the spread, so a failed spread commit can
	// neither double-commit the location on retry nor leave the listed
	// iteration count behind the model's.
	sess.history = append(sess.history, *locationJSON(sess.miner.DS, sess.pendingLoc))
	sess.pendingLoc = nil
	sess.iterations.Store(int64(sess.miner.Iteration()))
	if sp := sess.pendingSpread; sp != nil {
		sess.pendingSpread = nil
		if err := sess.miner.CommitSpread(sp); err != nil {
			writeErr(w, http.StatusInternalServerError,
				"commit spread (location was committed): %v", err)
			return
		}
		sess.history = append(sess.history, *spreadJSON(sess.miner.DS, sp))
	}
	writeJSON(w, http.StatusOK, map[string]int{"iterations": sess.miner.Iteration()})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	if !sess.lockOpen(w) {
		return
	}
	defer sess.mu.Unlock()
	if sess.pendingLoc == nil {
		writeErr(w, http.StatusConflict, "nothing mined to explain")
		return
	}
	expl, err := sess.miner.ExplainLocation(sess.pendingLoc)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "explain: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, expl)
}

// handleModel exports the session's background-model state (the user's
// current belief state) as JSON, so sessions can be persisted and
// analyzed offline; see background.LoadJSON for restoring.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	if !sess.lockOpen(w) {
		return
	}
	defer sess.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := sess.miner.Model.SaveJSON(w); err != nil {
		writeErr(w, http.StatusInternalServerError, "export: %v", err)
	}
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	if !sess.lockOpen(w) {
		return
	}
	defer sess.mu.Unlock()
	if sess.history == nil {
		writeJSON(w, http.StatusOK, []PatternJSON{})
		return
	}
	writeJSON(w, http.StatusOK, sess.history)
}
