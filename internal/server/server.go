// Package server exposes the iterative miner as a JSON HTTP API with
// per-user sessions — the integration target the paper's future work
// names (§V: "we aim to integrate this method with SIDE, our online
// tool for exploration of numerical data"). A session owns a dataset
// and an evolving background model; the client mines, inspects and
// commits patterns interactively, and the server keeps the belief state
// between requests.
//
// Serving is job-oriented: every mine call is enqueued on a bounded
// worker pool (package jobs), so an expensive search occupies a worker,
// not an HTTP handler goroutine, and a burst of mines degrades into
// queueing latency rather than unbounded concurrency. Clients either
// wait for the result in the same request (the default), or pass
// "async": true and poll /api/jobs/{id} (optionally long-polling with
// ?waitMs=). Sessions are persisted as snapshots to a pluggable Store
// (in-memory or a disk directory) on create, commit and eviction, and
// are transparently restored on first touch — a restart or a second
// server process sharing the store does not lose belief state. An LRU
// cap and an idle TTL bound the number of live in-memory sessions.
//
// The API is versioned: /api/v1/... is the current surface, with a
// uniform error envelope {"error":{"code","message","retryAfterMs?"}}
// and modelVersion stamps on mine/commit/job responses. The same
// routes stay mounted under the original /api/... prefix as deprecated
// aliases with the legacy flat {"error":"message"} body and the legacy
// one-mine-at-a-time session semantics. Under /api/v1 a session
// accepts any number of concurrent mines while commits proceed: each
// mine pins the immutable background-model version published at its
// start (copy-on-write — see internal/background.ModelVersion), so
// mines never serialize behind a commit and report which belief state
// they reflect.
//
// Endpoints (all JSON, shown under the /api/v1 prefix; /api aliases
// are identical modulo the deprecated behaviors above):
//
//	POST   /api/v1/sessions                  create (builtin dataset or inline CSV)
//	GET    /api/v1/sessions                  list sessions (live + persisted)
//	DELETE /api/v1/sessions/{id}             drop a session (memory and store)
//	POST   /api/v1/sessions/{id}/mine        mine the next pattern (async: poll the job)
//	POST   /api/v1/sessions/{id}/commit      commit the pending pattern(s)
//	GET    /api/v1/sessions/{id}/explain     per-target surprise of the pending pattern
//	GET    /api/v1/sessions/{id}/history     committed patterns so far
//	GET    /api/v1/sessions/{id}/model       export the background model JSON
//	POST   /api/v1/sessions/{id}/snapshot    persist the session to the store now
//	GET    /api/v1/jobs                      list mine jobs
//	GET    /api/v1/jobs/{id}[?waitMs=N]      job status/result, optionally long-polled
//	DELETE /api/v1/jobs/{id}                 cancel a queued or running job
//	GET    /api/v1/healthz                   liveness probe (always 200 while serving)
//	GET    /api/v1/readyz                    readiness probe (503: draining/degraded/saturated)
//	POST   /api/v1/drain[?timeoutMs=N]       quiesce: stop intake, flush sessions durably
//
// Persistence is resilient rather than assumed: store writes retry
// with capped jittered backoff, and when a full retry cycle fails the
// server enters degraded mode — serving continues from memory,
// commit/create responses carry "persistence":"degraded", the explicit
// snapshot endpoint answers 503 store_degraded with a retry hint, and
// the first successful write heals the state automatically. See
// DESIGN.md §11 for the failure model.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/background"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/jobs"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/si"
	"repro/internal/spreadopt"
)

// Options configure a Server. The zero value gets production defaults.
type Options struct {
	// Workers bounds concurrent mine searches; queued mines wait
	// (default max(2, NumCPU/2) — each search is itself parallel).
	Workers int
	// QueueCap bounds pending mines before Submit returns 503
	// (default 256).
	QueueCap int
	// Store persists session snapshots (default in-memory).
	Store Store
	// MaxSessions caps live in-memory sessions; beyond it the least
	// recently used idle session is snapshotted to the store and evicted
	// (default 256).
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this to the store
	// (default 30m; <= 0 disables).
	SessionTTL time.Duration
	// SyncWait bounds how long a synchronous mine request blocks before
	// handing the client its job id with 202 (default 10m).
	SyncWait time.Duration
	// MaxMineBudget caps every mine's search budget (default 5m). A
	// request without timeoutMs gets this budget, and a larger request
	// is clamped to it, so no job can occupy a worker unboundedly and
	// cancellation takes effect no later than the budget.
	MaxMineBudget time.Duration
	// ShardID, when set, names this process in healthz/readyz responses
	// and session listings so a cluster router (internal/cluster) and
	// the chaos harness can attribute failures to a specific shard. The
	// id is stable for the life of the process; it has no effect on
	// behavior, only on reporting.
	ShardID string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU() / 2
		if o.Workers < 2 {
			o.Workers = 2
		}
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.Store == nil {
		o.Store = NewMemStore()
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 256
	}
	if o.SessionTTL == 0 {
		o.SessionTTL = 30 * time.Minute
	}
	if o.SyncWait <= 0 {
		o.SyncWait = 10 * time.Minute
	}
	if o.MaxMineBudget <= 0 {
		o.MaxMineBudget = 5 * time.Minute
	}
	return o
}

// Server is the HTTP API. Create with New / NewWithOptions, mount via
// Handler, and Close when done to stop the worker pool.
type Server struct {
	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	// tombstones records recently deleted ids so a transparent restore
	// racing a DELETE (snapshot fetched before the store removal) cannot
	// resurrect the session. Entries expire after tombstoneTTL.
	tombstones map[string]time.Time

	opts  Options
	pool  *jobs.Pool
	store Store
	// health tracks store-Put reliability and the degraded-mode flag;
	// every persist path routes through storePut (retry.go).
	health *storeHealth
	// draining, once set by Drain, turns away new sessions and mines
	// with 503 while reads keep working — the graceful-shutdown gate.
	draining atomic.Bool
	// lastSweep (unix nanos) rate-limits TTL/LRU sweeps on request
	// paths, so idle-session eviction also happens on servers that see
	// only mine/commit traffic and no new creates.
	lastSweep atomic.Int64
}

// tombstoneTTL is how long a deleted id blocks restore-from-store; it
// only needs to cover the wall time of an in-flight restore.
const tombstoneTTL = time.Minute

type session struct {
	id string
	// create is the request that built the session, kept verbatim so a
	// snapshot can rebuild the dataset and miner deterministically.
	create CreateRequest

	// commitMu serializes model writers (commit, snapshot/persist) for
	// one session. It is acquired before sess.mu where both are needed
	// (lock order: commitMu → sess.mu) and is never held while waiting
	// on a mine: mines run against published model versions and take
	// neither lock. Store Puts for a session happen under commitMu, so
	// a stale snapshot can never overwrite a fresh one.
	commitMu sync.Mutex

	mu            sync.Mutex
	miner         *core.Miner
	mineTimeout   time.Duration // per-mine search budget (0 = none)
	closed        bool          // deleted or evicted; blocks queued requests
	mines         int           // mine jobs queued or running
	pendingLoc    *pattern.Location
	pendingSpread *pattern.Spread
	history       []PatternJSON
	// iterations mirrors miner.Iteration() for lock-free reads: info()
	// serves session listings without waiting behind state mutations.
	iterations atomic.Int64
	// lastUsed (unix nanos) orders sessions for LRU/TTL eviction.
	lastUsed atomic.Int64
}

func (sess *session) touch() { sess.lastUsed.Store(time.Now().UnixNano()) }

// lockOpen acquires the session lock and reports whether the session is
// still live. A request that grabbed the session just before a DELETE
// (or an eviction) removed it from the map would otherwise run after
// the teardown — and a mine would re-pin the evicted condition language
// of a dead dataset.
func (sess *session) lockOpen(w http.ResponseWriter, r *http.Request) bool {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		writeError(w, r, http.StatusNotFound, errNotFound, 0, "session deleted")
		return false
	}
	return true
}

// lockIdle is lockOpen plus the legacy-API guard against an in-flight
// mine: the deprecated /api surface promises one mine at a time per
// session, with commit/explain/model/snapshot 409ing while it runs.
// Under /api/v1 those handlers operate on published model versions (or
// serialize on commitMu), so they proceed concurrently with any number
// of mines and this reduces to lockOpen.
func (sess *session) lockIdle(w http.ResponseWriter, r *http.Request) bool {
	if !sess.lockOpen(w, r) {
		return false
	}
	if !isV1(r) && sess.mines > 0 {
		sess.mu.Unlock()
		writeError(w, r, http.StatusConflict, errMineInProgress, time.Second,
			"mine in progress; retry when the job finishes")
		return false
	}
	return true
}

// Caps on client-requested search settings that size allocations or
// unbounded work: numSplits grows the condition language (one cached
// extension bitset per condition), topK retains a cloned extension per
// kept pattern, beamWidth multiplies the per-level candidate batch,
// and depth multiplies the number of levels.
const (
	maxNumSplits   = 64
	maxTopK        = 10000
	maxBeamWidth   = 1024
	maxSearchDepth = 8
)

// New returns a server with default options.
func New() *Server { return NewWithOptions(Options{}) }

// NewWithOptions returns a server configured by opts. When the store
// already holds sessions (a restart over a DirStore), ids continue
// after the highest stored one.
func NewWithOptions(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		sessions:   map[string]*session{},
		tombstones: map[string]time.Time{},
		opts:       opts,
		store:      opts.Store,
		health:     newStoreHealth(),
		pool:       jobs.NewPool(opts.Workers, opts.QueueCap),
	}
	if ids, err := s.store.List(); err == nil {
		for _, id := range ids {
			if n, ok := parseSessionID(id); ok && n > s.nextID {
				s.nextID = n
			}
		}
	}
	return s
}

func parseSessionID(id string) (int, bool) {
	if !strings.HasPrefix(id, "s") {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Close stops the worker pool, cancelling queued and running jobs.
func (s *Server) Close() { s.pool.Close() }

// Handler returns the API routes, mounted twice: /api/v1 is the
// current surface, /api the deprecated alias kept for older clients
// (flat error bodies, one mine at a time per session).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.routes(mux, "/api/v1")
	s.routes(mux, "/api") // deprecated alias
	return mux
}

// routes registers every endpoint under one prefix. All route
// registration goes through this function (cmd/apicheck enforces it)
// so the versioned mounts cannot drift apart.
func (s *Server) routes(mux *http.ServeMux, prefix string) {
	mux.HandleFunc("POST "+prefix+"/sessions", s.handleCreate)
	mux.HandleFunc("GET "+prefix+"/sessions", s.handleList)
	mux.HandleFunc("DELETE "+prefix+"/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST "+prefix+"/sessions/{id}/mine", s.handleMine)
	mux.HandleFunc("POST "+prefix+"/sessions/{id}/commit", s.handleCommit)
	mux.HandleFunc("GET "+prefix+"/sessions/{id}/explain", s.handleExplain)
	mux.HandleFunc("GET "+prefix+"/sessions/{id}/history", s.handleHistory)
	mux.HandleFunc("GET "+prefix+"/sessions/{id}/model", s.handleModel)
	mux.HandleFunc("POST "+prefix+"/sessions/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST "+prefix+"/sessions/{id}/handoff", s.handleHandoff)
	mux.HandleFunc("GET "+prefix+"/jobs", s.handleJobList)
	mux.HandleFunc("GET "+prefix+"/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE "+prefix+"/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET "+prefix+"/healthz", s.handleHealthz)
	mux.HandleFunc("GET "+prefix+"/readyz", s.handleReadyz)
	mux.HandleFunc("POST "+prefix+"/drain", s.handleDrain)
}

// CreateRequest configures a new session.
type CreateRequest struct {
	// ID, when set, requests a specific session id instead of a
	// server-generated one (letters, digits, '-', '_'; max 64 chars). A
	// taken id — live, recently deleted, or present in the store —
	// answers 409 session_exists. This is the handle the cluster router
	// uses: it must know a session's id *before* placing it on a shard,
	// because the consistent-hash ring maps ids to shards.
	ID string `json:"id,omitempty"`
	// Dataset is a builtin name (synthetic|crime|mammals|socio|water) or
	// "csv" with the data inline in CSV.
	Dataset string  `json:"dataset"`
	Seed    int64   `json:"seed,omitempty"`
	CSV     string  `json:"csv,omitempty"`
	Gamma   float64 `json:"gamma,omitempty"`
	Eta     float64 `json:"eta,omitempty"`
	// Search settings (0 = paper defaults). Parallelism caps the
	// evaluation-engine workers per search — sessions on a shared server
	// can be throttled so one mine call does not occupy every core.
	BeamWidth   int  `json:"beamWidth,omitempty"`
	Depth       int  `json:"depth,omitempty"`
	TopK        int  `json:"topK,omitempty"`
	MinSupport  int  `json:"minSupport,omitempty"`
	NumSplits   int  `json:"numSplits,omitempty"`
	Parallelism int  `json:"parallelism,omitempty"`
	PairSparse  bool `json:"pairSparse,omitempty"`
	// MineTimeoutMS bounds each mine call's beam search (0 = no budget);
	// a cut-short search reports a "partial" or "timeout" status in the
	// mine response.
	MineTimeoutMS int `json:"mineTimeoutMs,omitempty"`
}

// SessionInfo describes a session to clients. Persisted-only sessions
// (evicted or from a previous process) carry just ID and Persisted —
// touching any session endpoint restores them transparently.
type SessionInfo struct {
	ID         string   `json:"id"`
	Dataset    string   `json:"dataset,omitempty"`
	N          int      `json:"n,omitempty"`
	Dx         int      `json:"dx,omitempty"`
	Dy         int      `json:"dy,omitempty"`
	Targets    []string `json:"targets,omitempty"`
	Iterations int      `json:"iterations"`
	Persisted  bool     `json:"persisted,omitempty"`
	// Persistence is set to "degraded" when the store was unreachable
	// at create time: the session lives in memory only until it heals.
	Persistence string `json:"persistence,omitempty"`
	// Shard is the serving process's ShardID (when configured): in a
	// cluster, listings merged by the router say which shard holds each
	// live session.
	Shard string `json:"shard,omitempty"`
}

// PatternJSON is the wire form of a mined pattern.
type PatternJSON struct {
	Kind      string    `json:"kind"` // "location" or "spread"
	Intention string    `json:"intention"`
	Size      int       `json:"size"`
	SI        float64   `json:"si"`
	IC        float64   `json:"ic"`
	DL        float64   `json:"dl"`
	Mean      []float64 `json:"mean,omitempty"`
	W         []float64 `json:"w,omitempty"`
	Variance  float64   `json:"variance,omitempty"`
}

// MineRequest selects what to mine. TimeoutMS overrides the session's
// mine budget for this call (0 = use the session default). Async makes
// the handler return 202 with the job immediately instead of waiting.
type MineRequest struct {
	Spread    bool `json:"spread"`
	TimeoutMS int  `json:"timeoutMs,omitempty"`
	Async     bool `json:"async,omitempty"`
}

// Mine outcome statuses. A deadline that expires mid-search is not an
// error: the beam returns its best-so-far, reported as "partial" so
// clients can distinguish it from a search that ran to completion.
const (
	// MineStatusComplete: the search ran to completion.
	MineStatusComplete = "complete"
	// MineStatusPartial: the budget expired mid-search; Location is the
	// best pattern found before the cut.
	MineStatusPartial = "partial"
	// MineStatusTimeout: the budget expired before anything was scored;
	// Location is null. Retry with a larger budget.
	MineStatusTimeout = "timeout"
)

// MineResponse carries the pending (uncommitted) patterns. Location is
// null only when Status is "timeout".
type MineResponse struct {
	Location *PatternJSON `json:"location"`
	Spread   *PatternJSON `json:"spread,omitempty"`
	// Evaluated counts candidates scored by the beam search.
	Evaluated int `json:"evaluated"`
	// BoundEvals and Pruned report the admissible-bound pruning
	// diagnostics of the search: how many candidates had an SI upper
	// bound computed, and how many of those were skipped without a
	// scoring pass. Pruning never changes results; the exact counts
	// vary run to run with goroutine scheduling.
	BoundEvals int `json:"boundEvals,omitempty"`
	Pruned     int `json:"pruned,omitempty"`
	// Status is complete, partial or timeout (see the constants).
	Status string `json:"status"`
	// TimedOut mirrors Status != complete (kept for older clients).
	TimedOut bool `json:"timedOut,omitempty"`
	// Job is the id of the mine job that produced this response.
	Job string `json:"job,omitempty"`
	// ModelVersion is the published background-model version the search
	// ran against. A mine is deterministic given its model version: the
	// same session state at the same version yields byte-identical
	// results regardless of commits that landed while it ran.
	ModelVersion uint64 `json:"modelVersion,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Error codes carried in the /api/v1 error envelope. Codes are part of
// the API contract: clients dispatch on them, messages are for humans.
const (
	errBadRequest      = "bad_request"
	errNotFound        = "not_found"
	errSessionExists   = "session_exists"
	errMineInProgress  = "mine_in_progress"
	errNothingPending  = "nothing_pending"
	errQueueFull       = "queue_full"
	errDeadline        = "deadline"
	errCancelled       = "cancelled"
	errInternal        = "internal"
	errSnapshotCorrupt = "snapshot_corrupt"
	errStoreDegraded   = "store_degraded"
	errDraining        = "draining"
)

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMs, when present, is the server's hint for how long to
	// back off before retrying (503s and transient 409s).
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

// isV1 reports whether the request came in through the current
// /api/v1 mount (as opposed to the deprecated /api alias).
func isV1(r *http.Request) bool {
	return r != nil && strings.HasPrefix(r.URL.Path, "/api/v1/")
}

// writeError is the single error-response writer (cmd/apicheck fails
// the build if a handler bypasses it): /api/v1 requests get the
// structured envelope {"error":{"code","message","retryAfterMs?"}},
// legacy /api requests keep the flat {"error":"message"} body older
// clients parse.
func writeError(w http.ResponseWriter, r *http.Request, status int, code string, retryAfter time.Duration, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if !isV1(r) {
		writeJSON(w, status, map[string]string{"error": msg})
		return
	}
	body := errorBody{Code: code, Message: msg}
	if retryAfter > 0 {
		body.RetryAfterMs = retryAfter.Milliseconds()
	}
	writeJSON(w, status, map[string]errorBody{"error": body})
}

func buildDataset(req *CreateRequest) (*dataset.Dataset, error) {
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	switch strings.ToLower(req.Dataset) {
	case "synthetic":
		return gen.Synthetic620(seed).DS, nil
	case "crime":
		return gen.CrimeLike(seed).DS, nil
	case "mammals":
		return gen.MammalsLike(seed).DS, nil
	case "socio":
		return gen.SocioEconLike(seed).DS, nil
	case "water":
		return gen.WaterQualityLike(seed).DS, nil
	case "csv":
		if req.CSV == "" {
			return nil, fmt.Errorf("dataset \"csv\" needs a csv field")
		}
		return dataset.ReadCSV(strings.NewReader(req.CSV))
	default:
		return nil, fmt.Errorf("unknown dataset %q", req.Dataset)
	}
}

// newSession builds a session from a create request — the one
// construction path shared by POST /api/sessions and snapshot restore,
// so both apply identical clamping and defaults (which is what makes a
// restored session behave exactly like the original).
func newSession(req *CreateRequest) (*session, error) {
	ds, err := buildDataset(req)
	if err != nil {
		return nil, err
	}
	// Clamp client-supplied engine options that size allocations: one
	// create request must not be able to exhaust the shared server.
	clamped := *req
	if clamped.Parallelism > runtime.NumCPU() {
		clamped.Parallelism = runtime.NumCPU()
	}
	if clamped.NumSplits > maxNumSplits {
		clamped.NumSplits = maxNumSplits
	}
	if clamped.TopK > maxTopK {
		clamped.TopK = maxTopK
	}
	if clamped.BeamWidth > maxBeamWidth {
		clamped.BeamWidth = maxBeamWidth
	}
	if clamped.Depth > maxSearchDepth {
		clamped.Depth = maxSearchDepth
	}
	cfg := core.Config{
		Search: search.Params{
			BeamWidth:   clamped.BeamWidth,
			MaxDepth:    clamped.Depth,
			TopK:        clamped.TopK,
			MinSupport:  clamped.MinSupport,
			NumSplits:   clamped.NumSplits,
			Parallelism: clamped.Parallelism,
		},
		Spread: spreadopt.Params{
			PairSparse: clamped.PairSparse,
			// The spread preview's restart pool obeys the same clamped
			// worker budget as the beam search.
			Parallelism: clamped.Parallelism,
		},
	}
	if clamped.Gamma != 0 || clamped.Eta != 0 {
		cfg.SI = si.Params{Gamma: clamped.Gamma, Eta: clamped.Eta}
	}
	miner, err := core.NewMiner(ds, cfg)
	if err != nil {
		return nil, fmt.Errorf("building miner: %w", err)
	}
	sess := &session{miner: miner, create: *req}
	if clamped.MineTimeoutMS > 0 {
		sess.mineTimeout = time.Duration(clamped.MineTimeoutMS) * time.Millisecond
	}
	sess.touch()
	return sess, nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, r, http.StatusServiceUnavailable, errDraining, degradedRetryAfter,
			"server is draining; no new sessions")
		return
	}
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, errBadRequest, 0, "invalid JSON: %v", err)
		return
	}
	if req.ID != "" && !validID(req.ID) {
		writeError(w, r, http.StatusBadRequest, errBadRequest, 0,
			"invalid session id %q (letters, digits, '-', '_'; max 64 chars)", req.ID)
		return
	}
	sess, err := newSession(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, errBadRequest, 0, "%v", err)
		return
	}
	var id string
	if req.ID != "" {
		// Requested id (cluster routing): reserve it in the live map
		// under the lock — a racing create of the same id loses there —
		// then probe the store, which another shard may already own.
		id = req.ID
		sess.id = id
		s.mu.Lock()
		_, live := s.sessions[id]
		_, dead := s.tombstones[id]
		if !live && !dead {
			s.sessions[id] = sess
		}
		s.mu.Unlock()
		taken := live || dead
		if !taken {
			if _, err := s.store.Get(id); !errors.Is(err, ErrNotFound) {
				taken = true
				s.mu.Lock()
				if s.sessions[id] == sess {
					delete(s.sessions, id)
				}
				s.mu.Unlock()
			}
		}
		if taken {
			engine.EvictLanguage(sess.miner.DS)
			writeError(w, r, http.StatusConflict, errSessionExists, 0,
				"session %q already exists", id)
			return
		}
	} else {
		s.mu.Lock()
		// Probe for a free id: another process sharing the store (or a
		// restored set of sessions) may already own the next counter value,
		// and a Put under a reused id would silently overwrite its snapshot.
		// A store error counts as "taken" (conservative), with a bounded
		// number of probes so a wholly broken store cannot spin forever.
		// Two processes creating at the same instant can still race the
		// probe — shared DirStores are for restart/failover continuity, not
		// coordination-free concurrent writes (the cluster router avoids
		// the race entirely by creating with explicit ids).
		for probes := 0; ; probes++ {
			s.nextID++
			id = fmt.Sprintf("s%04d", s.nextID)
			if probes >= 10000 {
				break
			}
			if _, live := s.sessions[id]; live {
				continue
			}
			if _, dead := s.tombstones[id]; dead {
				continue
			}
			if _, err := s.store.Get(id); !errors.Is(err, ErrNotFound) {
				continue
			}
			break
		}
		sess.id = id
		s.sessions[id] = sess
		s.mu.Unlock()
	}
	s.persist(sess) // best-effort: a restart should know the session exists
	s.enforceCaps()
	ds := sess.miner.DS
	inf := SessionInfo{
		ID: id, Dataset: ds.Name,
		N: ds.N(), Dx: ds.Dx(), Dy: ds.Dy(),
		Targets: ds.TargetNames,
		Shard:   s.opts.ShardID,
	}
	// Degraded persistence at create time means the session exists in
	// memory only — worth telling the client up front.
	if s.health.degraded.Load() {
		inf.Persistence = PersistenceDegraded
	}
	writeJSON(w, http.StatusCreated, inf)
}

// lookup finds a live session or transparently restores it from the
// store. Returns ErrNotFound when the id is unknown in both places;
// any other error means a snapshot exists but could not be restored.
func (s *Server) lookup(id string) (*session, error) {
	s.maybeSweep()
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess != nil {
		sess.touch()
		return sess, nil
	}
	return s.restoreFromStore(id)
}

// restoreFromStore rebuilds a session from its snapshot: same dataset
// (deterministic in the create request), exact model parameters
// (LoadJSONExact — no refit drift), same history and iteration count.
func (s *Server) restoreFromStore(id string) (*session, error) {
	snap, err := s.store.Get(id)
	if err != nil {
		return nil, err // ErrNotFound, ErrCorrupt, or a store I/O failure
	}
	// Verify the integrity framing regardless of which store served the
	// snapshot: DirStore checks (and quarantines) on Get, but a custom
	// Store implementation may not.
	if err := snap.Verify(); err != nil {
		return nil, err
	}
	sess, err := newSession(&snap.Create)
	if err != nil {
		return nil, fmt.Errorf("rebuilding dataset/miner: %w", err)
	}
	model, err := background.LoadJSONExact(bytes.NewReader(snap.Model))
	if err != nil {
		// A model payload the loader rejects inside a checksum-valid (or
		// legacy, unchecksummed) snapshot is still corruption, not an
		// operational failure: surface it as the typed sentinel so the
		// handler can answer with the snapshot_corrupt envelope instead
		// of bubbling a raw decode error.
		if errors.Is(err, background.ErrCorrupt) {
			return nil, fmt.Errorf("%w: restoring model for %s: %v", ErrCorrupt, id, err)
		}
		return nil, fmt.Errorf("restoring model: %w", err)
	}
	if err := sess.miner.Restore(model, snap.Iterations); err != nil {
		return nil, fmt.Errorf("restoring model: %w", err)
	}
	sess.id = id
	sess.history = append([]PatternJSON(nil), snap.History...)
	sess.iterations.Store(int64(snap.Iterations))
	sess.touch()
	s.mu.Lock()
	if t, dead := s.tombstones[id]; dead && time.Since(t) < tombstoneTTL {
		// A DELETE ran while we were rebuilding: honour it.
		s.mu.Unlock()
		engine.EvictLanguage(sess.miner.DS)
		return nil, ErrNotFound
	}
	if have := s.sessions[id]; have != nil { // lost a restore race
		s.mu.Unlock()
		engine.EvictLanguage(sess.miner.DS)
		have.touch()
		return have, nil
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.enforceCaps()
	return sess, nil
}

// maybeSweep runs the TTL/LRU sweep at most every 10s from request
// paths, so eviction does not depend on session-create traffic.
func (s *Server) maybeSweep() {
	const interval = 10 * time.Second
	now := time.Now().UnixNano()
	last := s.lastSweep.Load()
	if now-last < int64(interval) {
		return
	}
	if s.lastSweep.CompareAndSwap(last, now) {
		s.enforceCaps()
	}
}

// persist snapshots the session to the store; best-effort, reports
// success. Skips closed sessions (their teardown owns the store
// entry). commitMu is held across the Put — the discipline every
// persist path shares, so snapshots of one session are serialized and
// a stale one can never overwrite a fresh one.
func (s *Server) persist(sess *session) bool {
	sess.commitMu.Lock()
	defer sess.commitMu.Unlock()
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return false
	}
	snap, err := sess.snapshotLocked()
	sess.mu.Unlock()
	if err != nil {
		return false
	}
	return s.storePut(snap) == nil
}

// snapshotLocked serializes the session's durable state. Caller holds
// sess.mu (for history/iterations consistency) and, on every path that
// goes on to Put, commitMu (so the published version, history and
// iteration count belong to the same commit). The model itself is read
// from the published version — immutable, so serialization is safe
// even while a later commit builds its successor. Pending
// (uncommitted) patterns are ephemeral by design and not part of the
// snapshot.
func (sess *session) snapshotLocked() (*Snapshot, error) {
	var buf bytes.Buffer
	if err := sess.miner.Snapshot().SaveJSON(&buf); err != nil {
		return nil, err
	}
	snap := &Snapshot{
		ID:         sess.id,
		Create:     sess.create,
		Model:      json.RawMessage(buf.Bytes()),
		History:    append([]PatternJSON(nil), sess.history...),
		Iterations: int(sess.iterations.Load()),
		SavedAt:    time.Now(),
	}
	snap.Seal()
	return snap, nil
}

// enforceCaps applies the TTL and LRU bounds: idle sessions past the
// TTL, and the least recently used sessions beyond MaxSessions, are
// snapshotted to the store and evicted from memory. Mining sessions
// are never evicted. The global lock is only held to pick candidates;
// model serialization and store writes happen per session, so a sweep
// over a slow disk never stalls unrelated requests.
func (s *Server) enforceCaps() {
	now := time.Now().UnixNano()
	s.mu.Lock()
	for id, t := range s.tombstones {
		if time.Since(t) > tombstoneTTL {
			delete(s.tombstones, id)
		}
	}
	type candidate struct {
		sess *session
		used int64
	}
	var victims []candidate
	if ttl := s.opts.SessionTTL; ttl > 0 {
		for _, sess := range s.sessions {
			if now-sess.lastUsed.Load() > int64(ttl) {
				victims = append(victims, candidate{sess, sess.lastUsed.Load()})
			}
		}
	}
	if over := len(s.sessions) - s.opts.MaxSessions; over > 0 {
		all := make([]candidate, 0, len(s.sessions))
		for _, sess := range s.sessions {
			all = append(all, candidate{sess, sess.lastUsed.Load()})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].used < all[j].used })
		seen := map[*session]bool{}
		for _, c := range victims {
			seen[c.sess] = true
		}
		for _, c := range all[:over] {
			if !seen[c.sess] {
				victims = append(victims, c)
			}
		}
	}
	s.mu.Unlock()
	for _, c := range victims {
		s.tryEvict(c.sess)
	}
}

// tryEvict snapshots one session to the store and removes it from
// memory. Eviction drops pending (uncommitted) patterns — they are
// ephemeral — but never loses committed belief state: the session is
// closed only once the store accepted the snapshot; commitMu (try-
// locked, so a sweep never stalls behind a long refit) keeps a
// concurrent commit from interleaving its Put, and sess.mu is held
// from the mines==0 check through closed=true so no mine can claim a
// slot in between. Lock order here is commitMu → sess.mu → s.mu; no
// path nests them the other way around.
func (s *Server) tryEvict(sess *session) bool {
	if !sess.commitMu.TryLock() {
		return false
	}
	defer sess.commitMu.Unlock()
	sess.mu.Lock()
	if sess.closed || sess.mines > 0 {
		sess.mu.Unlock()
		return false
	}
	snap, err := sess.snapshotLocked()
	if err != nil || s.storePut(snap) != nil {
		sess.mu.Unlock()
		return false
	}
	sess.closed = true
	sess.mu.Unlock()
	s.mu.Lock()
	if s.sessions[sess.id] == sess {
		delete(s.sessions, sess.id)
	}
	s.mu.Unlock()
	engine.EvictLanguage(sess.miner.DS)
	return true
}

// info describes a session; ok is false when the session was deleted
// between the caller's id snapshot and this lookup.
func (s *Server) info(id string) (SessionInfo, bool) {
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return SessionInfo{}, false
	}
	ds := sess.miner.DS
	return SessionInfo{
		ID: id, Dataset: ds.Name,
		N: ds.N(), Dx: ds.Dx(), Dy: ds.Dy(),
		Targets:    ds.TargetNames,
		Iterations: int(sess.iterations.Load()),
		Shard:      s.opts.ShardID,
	}, true
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.maybeSweep()
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	live := map[string]bool{}
	out := make([]SessionInfo, 0, len(ids))
	for _, id := range ids {
		if inf, ok := s.info(id); ok {
			out = append(out, inf)
			live[id] = true
		}
	}
	// Persisted-only sessions (evicted, or from a previous process) are
	// listed by id; touching them restores the full state.
	if stored, err := s.store.List(); err == nil {
		for _, id := range stored {
			if !live[id] {
				out = append(out, SessionInfo{ID: id, Persisted: true})
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	delete(s.sessions, id)
	// The tombstone blocks a restore that fetched the snapshot before
	// the store removal below from resurrecting the session.
	s.tombstones[id] = time.Now()
	s.mu.Unlock()
	if ok {
		// Release the dataset's cached condition language with the
		// session; datasets are per-session, so nobody else can be using
		// it. Marking the session closed stops requests still queued on
		// the lock from rebuilding and re-pinning the language after the
		// eviction; if mine jobs are in flight, the watcher of the last
		// one to drain performs the eviction instead (an in-flight search
		// keeps its own reference, so dropping the cache entry is safe
		// either way).
		sess.mu.Lock()
		sess.closed = true
		mining := sess.mines > 0
		sess.mu.Unlock()
		if !mining {
			engine.EvictLanguage(sess.miner.DS)
		}
	}
	// A session can exist only as a stored snapshot (evicted, or from a
	// previous process); deleting that is a successful delete too. A
	// failing store removal must surface: claiming "deleted" while the
	// snapshot survives would let the session resurrect after the
	// tombstone expires.
	hadSnapshot, delErr := s.store.Delete(id)
	if delErr != nil {
		writeError(w, r, http.StatusInternalServerError, errInternal, 0,
			"session removed from memory but snapshot deletion failed: %v", delErr)
		return
	}
	if !ok && !hadSnapshot {
		writeError(w, r, http.StatusNotFound, errNotFound, 0, "no session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) withSession(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	sess, err := s.lookup(id)
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, r, http.StatusNotFound, errNotFound, 0, "no session %q", id)
		return nil
	case errors.Is(err, ErrCorrupt):
		// The stored snapshot failed integrity validation. DirStore has
		// already quarantined the file; the structured envelope tells the
		// client the session's persisted state is unrecoverable (rather
		// than transient), distinct from a plain internal error.
		writeError(w, r, http.StatusInternalServerError, errSnapshotCorrupt, 0,
			"session %q: %v", id, err)
		return nil
	case err != nil:
		// A snapshot exists but could not be restored — surface the
		// cause instead of a misleading 404.
		writeError(w, r, http.StatusInternalServerError, errInternal, 0,
			"restoring session %q: %v", id, err)
		return nil
	}
	return sess
}

func locationJSON(ds *dataset.Dataset, loc *pattern.Location) *PatternJSON {
	return &PatternJSON{
		Kind:      "location",
		Intention: loc.Intention.Format(ds),
		Size:      loc.Size(),
		SI:        loc.SI, IC: loc.IC, DL: loc.DL,
		Mean: loc.Mean,
	}
}

func spreadJSON(ds *dataset.Dataset, sp *pattern.Spread) *PatternJSON {
	return &PatternJSON{
		Kind:      "spread",
		Intention: sp.Intention.Format(ds),
		Size:      sp.Size(),
		SI:        sp.SI, IC: sp.IC, DL: sp.DL,
		W: sp.W, Variance: sp.Variance,
	}
}

// clampBudget normalizes a per-call wall-time budget: unset (≤ 0) and
// oversized budgets collapse to MaxMineBudget. Shared by the mine job
// submission and the commit-path refit deadline so the two stay in sync.
func (s *Server) clampBudget(budget time.Duration) time.Duration {
	if budget <= 0 || budget > s.opts.MaxMineBudget {
		return s.opts.MaxMineBudget
	}
	return budget
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, r, http.StatusServiceUnavailable, errDraining, degradedRetryAfter,
			"server is draining; no new mines")
		return
	}
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	var req MineRequest
	if r.ContentLength > 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, r, http.StatusBadRequest, errBadRequest, 0, "invalid JSON: %v", err)
			return
		}
	}
	// Claim a mine slot under the lock, then run the search on a pool
	// worker with no session lock held — concurrent sessions never
	// serialize behind one search, and list/history stay responsive
	// during a long mine. The legacy /api surface allows one slot per
	// session; /api/v1 allows any number, since every mine runs against
	// the immutable model version published at its start.
	if !sess.lockOpen(w, r) {
		return
	}
	if !isV1(r) && sess.mines > 0 {
		sess.mu.Unlock()
		writeError(w, r, http.StatusConflict, errMineInProgress, time.Second,
			"mine already in progress for this session")
		return
	}
	sess.mines++
	budget := sess.mineTimeout
	if req.TimeoutMS > 0 {
		budget = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	// Every job gets a budget: an unbudgeted or oversized request is
	// clamped to MaxMineBudget so no search can occupy a worker
	// unboundedly (and cancellation bites no later than the budget).
	budget = s.clampBudget(budget)
	sess.mu.Unlock()

	job, err := s.pool.Submit("mine "+sess.id, budget, s.mineJob(sess, req))
	if err != nil {
		s.releaseMine(sess)
		writeError(w, r, http.StatusServiceUnavailable, errQueueFull, time.Second,
			"mine queue full, retry later: %v", err)
		return
	}
	// Release the mine slot on any terminal outcome. CancelRequested
	// fires at cancel-request time — before the pool notices the Fn
	// unwinding — so a cancelled mine (queued or mid-search) frees its
	// slot immediately instead of holding the session until the worker
	// returns.
	go func() {
		select {
		case <-job.Done():
		case <-job.CancelRequested():
		}
		s.releaseMine(sess)
	}()

	if req.Async {
		inf, _ := s.pool.Get(job.ID())
		writeJSON(w, http.StatusAccepted, inf)
		return
	}
	inf, _ := s.pool.Wait(r.Context(), job.ID(), s.opts.SyncWait)
	s.writeMineOutcome(w, r, inf)
}

// releaseMine returns one mine slot; the watcher of the last slot to
// drain on a closed session also releases the dataset's cached
// condition language (an in-flight search keeps its own reference, so
// eviction while a cancelled search unwinds is safe).
func (s *Server) releaseMine(sess *session) {
	sess.mu.Lock()
	sess.mines--
	last := sess.mines == 0 && sess.closed
	sess.mu.Unlock()
	if last {
		engine.EvictLanguage(sess.miner.DS)
	}
}

// writeMineOutcome maps a finished (or still-running) mine job to the
// synchronous response the classic API contract promises.
func (s *Server) writeMineOutcome(w http.ResponseWriter, r *http.Request, inf jobs.Info) {
	switch inf.Status {
	case jobs.StatusDone:
		resp, ok := inf.Result.(*MineResponse)
		if !ok {
			writeError(w, r, http.StatusInternalServerError, errInternal, 0,
				"mine job returned %T", inf.Result)
			return
		}
		// Annotate a copy: the original is shared with concurrent
		// GET /api/jobs/{id} marshalling.
		withJob := *resp
		withJob.Job = inf.ID
		writeJSON(w, http.StatusOK, &withJob)
	case jobs.StatusFailed:
		writeError(w, r, http.StatusInternalServerError, errInternal, 0, "mining: %s", inf.Error)
	case jobs.StatusCancelled:
		writeError(w, r, http.StatusConflict, errCancelled, 0, "mine job %s cancelled", inf.ID)
	default:
		// SyncWait elapsed (or the client went away): hand over the job
		// id so the client can keep polling.
		writeJSON(w, http.StatusAccepted, inf)
	}
}

// mineJob is the Fn run on a pool worker for one mine call. It takes
// no session lock while searching: the whole mine — beam search and
// spread preview — runs against the immutable model version pinned at
// its start, so any number of jobs (and commits building the next
// version) proceed concurrently. The session lock is only taken to
// publish the pending result.
func (s *Server) mineJob(sess *session, req MineRequest) jobs.Fn {
	return func(ctx context.Context, progress func(string)) (any, error) {
		// Deadline propagation: the job context carries the mine budget
		// (counted from job start, so queue time does not eat search
		// time); hand it to the engine's native deadline support.
		deadline := time.Time{}
		if d, ok := ctx.Deadline(); ok {
			deadline = d
		}
		// Pin the currently published model version and record it on the
		// job, so the response (and the job record) say which belief
		// state the result reflects — the handle a client needs to
		// reproduce the mine exactly.
		v := sess.miner.Snapshot()
		jobs.RecordModelVersion(ctx, v.Version())
		progress("beam search")
		loc, log, err := sess.miner.MineAt(v, core.MineOptions{Deadline: deadline})
		// A cancelled job must not publish results. The search itself
		// only honours the time deadline, so cancellation takes effect
		// here — after the current search phase, and no later than the
		// mine budget.
		if cerr := context.Cause(ctx); errors.Is(cerr, context.Canceled) {
			return nil, cerr
		}
		if err != nil {
			// A budget that expires before anything is scored is a
			// timeout, not a server failure: honour the MineResponse
			// contract. The pending slots are cleared so an earlier
			// mine's pattern cannot be committed on the strength of this
			// empty result.
			if errors.Is(err, core.ErrNoPattern) && log != nil && log.TimedOut {
				sess.mu.Lock()
				sess.pendingLoc, sess.pendingSpread = nil, nil
				sess.mu.Unlock()
				return &MineResponse{
					Evaluated:    log.Evaluated,
					BoundEvals:   log.BoundEvals,
					Pruned:       log.Pruned,
					Status:       MineStatusTimeout,
					TimedOut:     true,
					ModelVersion: v.Version(),
				}, nil
			}
			return nil, err
		}
		progress(fmt.Sprintf("beam search done: %d evaluated, %d pruned by SI bounds",
			log.Evaluated, log.Pruned))
		resp := &MineResponse{
			Location:     locationJSON(sess.miner.DS, loc),
			Evaluated:    log.Evaluated,
			BoundEvals:   log.BoundEvals,
			Pruned:       log.Pruned,
			Status:       MineStatusComplete,
			TimedOut:     log.TimedOut,
			ModelVersion: v.Version(),
		}
		if log.TimedOut {
			resp.Status = MineStatusPartial
		}
		var sp *pattern.Spread
		if req.Spread {
			// The two-step procedure needs the location committed before
			// the direction search; preview on a fork of the pinned
			// version so nothing is committed until the client asks for
			// it (and concurrent commits to the live model stay
			// invisible).
			progress("spread preview")
			preview := sess.miner.ForkAt(v)
			// The what-if commit's coordinate descent runs on the same
			// job budget as the search phases: a pathological refit
			// cannot pin the worker past the mine deadline.
			preview.Model.Deadline = deadline
			if err := preview.Model.CommitLocation(loc.Extension, loc.Mean); err != nil {
				// The budget ran out after the location was already
				// mined: that is a partial result, not a job failure —
				// same contract as a deadline expiring mid-search. The
				// location is kept; only the spread is dropped.
				if errors.Is(err, background.ErrDeadline) {
					resp.Status = MineStatusPartial
					resp.TimedOut = true
				} else {
					return nil, fmt.Errorf("spread preview: %w", err)
				}
			} else {
				// The direction search honours the same deadline (via
				// preview.Model.Deadline): on expiry it degrades to the
				// best direction found so far instead of pinning the
				// worker, and the response is marked partial.
				var spTimedOut bool
				sp, spTimedOut, err = preview.MineSpreadBudget(loc)
				if err != nil {
					return nil, fmt.Errorf("spread: %w", err)
				}
				if spTimedOut {
					resp.Status = MineStatusPartial
					resp.TimedOut = true
				}
				resp.Spread = spreadJSON(sess.miner.DS, sp)
			}
		}
		sess.mu.Lock()
		if !sess.closed {
			sess.pendingLoc = loc
			sess.pendingSpread = sp
		}
		sess.mu.Unlock()
		return resp, nil
	}
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	// Model writers serialize on commitMu; sess.mu is scoped to the
	// claim and publish windows. Concurrent v1 mines (which read
	// published versions and take neither lock while searching) proceed
	// in parallel with the refit. The pending claim happens after
	// commitMu is held, so two racing commits cannot both consume the
	// same pending pattern — the loser sees the cleared slot and 409s.
	sess.commitMu.Lock()
	defer sess.commitMu.Unlock()
	if !sess.lockIdle(w, r) {
		return
	}
	pl, ps := sess.pendingLoc, sess.pendingSpread
	sess.mu.Unlock()
	if pl == nil && ps == nil {
		writeError(w, r, http.StatusConflict, errNothingPending, 0, "nothing mined to commit")
		return
	}
	// The commit's coordinate descent gets the session's mine budget
	// (clamped like a mine request): background.Model.refit checks the
	// deadline each sweep and fails atomically, so one degenerate
	// constraint system cannot hold the commit lock unboundedly. A
	// deadline failure is back-pressure, not a server error — the
	// pending pattern that hit it stays pending, so the client keeps
	// what was mined. Rollback is atomic, so a retry restarts the
	// descent from scratch under a fresh budget; it helps when the
	// failure was load-induced, not when the constraint system
	// deterministically needs more than the budget. Deadline lives on
	// the live model, which only commitMu holders touch.
	model := sess.miner.Model
	model.Deadline = time.Now().Add(s.clampBudget(sess.mineTimeout))
	defer func() { model.Deadline = time.Time{} }()
	if pl != nil {
		if err := sess.miner.CommitLocation(pl); err != nil {
			if errors.Is(err, background.ErrDeadline) {
				writeError(w, r, http.StatusServiceUnavailable, errDeadline, time.Second,
					"commit: %v", err)
				return
			}
			writeError(w, r, http.StatusInternalServerError, errInternal, 0, "commit: %v", err)
			return
		}
		// The location is now irreversibly in the background model:
		// record that before attempting the spread, so a failed spread
		// commit can neither double-commit the location on retry nor
		// leave the listed iteration count behind the model's. The
		// pending slot is cleared only if it still holds the committed
		// pattern — a concurrent v1 mine may have published a fresher
		// one in the meantime, which must survive.
		sess.mu.Lock()
		sess.history = append(sess.history, *locationJSON(sess.miner.DS, pl))
		if sess.pendingLoc == pl {
			sess.pendingLoc = nil
		}
		sess.iterations.Store(int64(sess.miner.Iteration()))
		sess.mu.Unlock()
	}
	if ps != nil {
		if err := sess.miner.CommitSpread(ps); err != nil {
			if errors.Is(err, background.ErrDeadline) {
				// The spread stays pending: the 503 advertises a retry,
				// and the retry must still have something to commit
				// (the location leg above is a no-op by then).
				writeError(w, r, http.StatusServiceUnavailable, errDeadline, time.Second,
					"commit spread (location was committed): %v", err)
				return
			}
			writeError(w, r, http.StatusInternalServerError, errInternal, 0,
				"commit spread (location was committed): %v", err)
			return
		}
		sess.mu.Lock()
		sess.history = append(sess.history, *spreadJSON(sess.miner.DS, ps))
		if sess.pendingSpread == ps {
			sess.pendingSpread = nil
		}
		sess.mu.Unlock()
	}
	// Persist the new belief state so a restart resumes from here (the
	// Put is ordered by the commitMu we still hold).
	sess.mu.Lock()
	snap, err := sess.snapshotLocked()
	sess.mu.Unlock()
	persisted := err == nil && s.storePut(snap) == nil
	// persistence reports the store health after the Put: "degraded"
	// tells the client its commit lives in memory only for now (the
	// server re-persists on heal, eviction, snapshot or drain).
	writeJSON(w, http.StatusOK, map[string]any{
		"iterations":   sess.miner.Iteration(),
		"modelVersion": sess.miner.Snapshot().Version(),
		"persisted":    persisted,
		"persistence":  s.health.state(),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	if !sess.lockIdle(w, r) {
		return
	}
	pl := sess.pendingLoc
	v := sess.miner.Snapshot()
	sess.mu.Unlock()
	if pl == nil {
		writeError(w, r, http.StatusConflict, errNothingPending, 0, "nothing mined to explain")
		return
	}
	// Explaining reads the published version, so it never waits on (or
	// races) an in-flight commit building the next one.
	expl, err := sess.miner.ExplainLocationAt(v, pl)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, errInternal, 0, "explain: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, expl)
}

// handleModel exports the session's background-model state (the user's
// current belief state) as JSON, so sessions can be persisted and
// analyzed offline; see background.LoadJSON for restoring.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	if !sess.lockIdle(w, r) {
		return
	}
	v := sess.miner.Snapshot()
	sess.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	// Export the published version: immutable, so serialization is
	// consistent even while a commit builds the next one.
	if err := v.SaveJSON(w); err != nil {
		writeError(w, r, http.StatusInternalServerError, errInternal, 0, "export: %v", err)
	}
}

// handleSnapshot persists the session to the store immediately and
// reports the snapshot metadata — the explicit flush clients can use
// before tearing a process down.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	// commitMu orders this Put with commit-path persists so a stale
	// snapshot can never overwrite a fresh one (lock order commitMu →
	// sess.mu, same as everywhere).
	sess.commitMu.Lock()
	defer sess.commitMu.Unlock()
	if !sess.lockIdle(w, r) {
		return
	}
	snap, err := sess.snapshotLocked()
	sess.mu.Unlock()
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, errInternal, 0, "snapshot: %v", err)
		return
	}
	// The explicit flush is the one persist whose failure the client
	// must hear about: answer 503 with a retry hint instead of claiming
	// durability. The attempt doubles as a heal probe while degraded.
	if err := s.storePut(snap); err != nil {
		writeError(w, r, http.StatusServiceUnavailable, errStoreDegraded, degradedRetryAfter,
			"persisting snapshot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         snap.ID,
		"iterations": snap.Iterations,
		"savedAt":    snap.SavedAt,
		"modelBytes": len(snap.Model),
	})
}

// handleHandoff flushes the session durably and evicts it from this
// process's memory, leaving the snapshot in the store for another shard
// to adopt — the migration primitive of the cluster tier (DESIGN.md
// §12). The router calls it on the shard losing ownership of a session,
// then routes the next request to the new owner, which restores from
// the shared store transparently. Unlike DELETE, no tombstone is
// written and the store entry survives; unlike LRU eviction, a flush
// failure is surfaced (503) instead of silently keeping the session —
// migrating without a durable snapshot would hand the new owner stale
// state. Idempotent: handing off a session this process does not hold
// in memory succeeds without touching the store.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		// Not live here: nothing to flush. Whether the id exists at all
		// is the adopting shard's question (restore-on-miss 404s there).
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "live": false})
		return
	}
	// Lock order commitMu → sess.mu → s.mu, same as tryEvict: the
	// commitMu hold keeps a concurrent commit from interleaving its Put
	// between our flush and the close.
	sess.commitMu.Lock()
	defer sess.commitMu.Unlock()
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "live": false})
		return
	}
	if sess.mines > 0 {
		// An in-flight mine holds references into this process's model
		// state; migrating under it would strand the job. The router
		// retries after the job drains.
		sess.mu.Unlock()
		writeError(w, r, http.StatusConflict, errMineInProgress, time.Second,
			"mine in progress; retry handoff when the job finishes")
		return
	}
	snap, err := sess.snapshotLocked()
	if err != nil {
		sess.mu.Unlock()
		writeError(w, r, http.StatusInternalServerError, errInternal, 0, "handoff snapshot: %v", err)
		return
	}
	if err := s.storePut(snap); err != nil {
		sess.mu.Unlock()
		writeError(w, r, http.StatusServiceUnavailable, errStoreDegraded, degradedRetryAfter,
			"handoff flush: %v", err)
		return
	}
	sess.closed = true
	sess.mu.Unlock()
	s.mu.Lock()
	if s.sessions[id] == sess {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	engine.EvictLanguage(sess.miner.DS)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         id,
		"live":       true,
		"iterations": snap.Iterations,
		"modelBytes": len(snap.Model),
	})
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	sess := s.withSession(w, r)
	if sess == nil {
		return
	}
	if !sess.lockOpen(w, r) {
		return
	}
	defer sess.mu.Unlock()
	if sess.history == nil {
		writeJSON(w, http.StatusOK, []PatternJSON{})
		return
	}
	writeJSON(w, http.StatusOK, sess.history)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.List())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var wait time.Duration
	if ms := r.URL.Query().Get("waitMs"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 0 {
			writeError(w, r, http.StatusBadRequest, errBadRequest, 0, "bad waitMs %q", ms)
			return
		}
		const maxLongPoll = 60 * time.Second
		wait = time.Duration(n) * time.Millisecond
		if wait > maxLongPoll {
			wait = maxLongPoll
		}
	}
	inf, ok := s.pool.Wait(r.Context(), id, wait)
	if !ok {
		writeError(w, r, http.StatusNotFound, errNotFound, 0, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, inf)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	inf, ok := s.pool.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, errNotFound, 0, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, inf)
}
