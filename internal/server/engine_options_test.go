package server

import (
	"net/http"
	"testing"
)

// TestSessionEngineOptions checks that the evaluation-engine options of
// a create request — parallelism, top-k, min support, splits, per-mine
// time budget — reach the session's searches.
func TestSessionEngineOptions(t *testing.T) {
	ts := newTestServer(t)

	var info SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset:     "synthetic",
		Parallelism: 2,
		TopK:        5,
		MinSupport:  10,
		NumSplits:   2,
	}, http.StatusCreated, &info)

	var mined MineResponse
	doJSON(t, "POST", ts.URL+"/api/sessions/"+info.ID+"/mine", nil,
		http.StatusOK, &mined)
	if mined.Location == nil {
		t.Fatal("no pattern mined")
	}
	if mined.Location.Size < 10 {
		t.Fatalf("MinSupport ignored: size %d", mined.Location.Size)
	}
	if mined.TimedOut {
		t.Fatal("no time budget was set")
	}

	// Absurd engine options must be clamped at create, not ripple into
	// allocations: a two-billion-worker request still yields a working
	// session.
	var huge SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset:     "synthetic",
		Parallelism: 2_000_000_000,
		NumSplits:   100_000_000,
	}, http.StatusCreated, &huge)
	var hugeMine MineResponse
	doJSON(t, "POST", ts.URL+"/api/sessions/"+huge.ID+"/mine", nil,
		http.StatusOK, &hugeMine)
	if hugeMine.Location == nil {
		t.Fatal("clamped session failed to mine")
	}

	// A tiny mine budget must cut the search short and be reported, not
	// fail the request. The crime replica's ~1000 conditions make every
	// beam level cost well over 1ms, so after a first unbudgeted mine
	// has warmed the session (condition language, scorer), a budgeted
	// re-mine reliably completes level 1 and then sees the expired
	// deadline before a deeper level.
	var tiny SessionInfo
	doJSON(t, "POST", ts.URL+"/api/sessions", CreateRequest{
		Dataset:   "crime",
		Depth:     2,
		BeamWidth: 10,
	}, http.StatusCreated, &tiny)
	var warm, rushed MineResponse
	doJSON(t, "POST", ts.URL+"/api/sessions/"+tiny.ID+"/mine", nil,
		http.StatusOK, &warm)
	if warm.TimedOut {
		t.Fatal("unbudgeted mine reported timedOut")
	}
	doJSON(t, "POST", ts.URL+"/api/sessions/"+tiny.ID+"/mine",
		MineRequest{TimeoutMS: 1}, http.StatusOK, &rushed)
	if !rushed.TimedOut {
		t.Fatal("1ms budget did not report timedOut")
	}
	// On a warm session level 1 normally completes inside the budget and
	// the best-so-far pattern rides along; on a heavily loaded machine
	// even that can expire, in which case location is legitimately null.
	if rushed.Location == nil {
		t.Log("budget expired before level 1; timedOut reported with null location")
	}
}
