package viz

import (
	"strings"
	"testing"
)

func TestDensityPlotShape(t *testing.T) {
	p := NewDensityPlot(20, 6)
	ys := make([]float64, 20)
	ys[10] = 1.0 // single peak
	p.Add(ys, '#')
	out := p.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // 6 rows + axis
		t.Fatalf("rendered %d lines", len(lines))
	}
	for _, l := range lines[:6] {
		if len(l) != 20 {
			t.Fatalf("row width %d", len(l))
		}
	}
	// The peak column must be filled to the top row.
	if lines[0][10] != '#' {
		t.Fatalf("peak not at top: %q", lines[0])
	}
	// Zero columns must stay blank above the baseline row.
	if lines[0][0] == '#' {
		t.Fatal("empty column should not reach the top")
	}
}

func TestDensityPlotOverlayOrder(t *testing.T) {
	p := NewDensityPlot(4, 3)
	a := []float64{1, 1, 1, 1}
	b := []float64{1, 0, 0, 0}
	p.Add(a, '#')
	p.Add(b, '*')
	out := p.Render()
	// Later series overdraw: column 0 should show '*'.
	lines := strings.Split(out, "\n")
	if lines[0][0] != '*' {
		t.Fatalf("overlay order wrong: %q", lines[0])
	}
	if lines[0][1] != '#' {
		t.Fatalf("first series erased: %q", lines[0])
	}
}

func TestDensityPlotValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong series length")
		}
	}()
	p := NewDensityPlot(5, 3)
	p.Add([]float64{1, 2}, '#')
}

func TestGridMapMarksAndCounts(t *testing.T) {
	lat := []float64{0, 0, 10, 10}
	lon := []float64{0, 10, 0, 10}
	m := NewGridMap(5, 5, lat, lon)
	m.Mark(lat, lon, func(i int) bool { return i == 3 })
	if got := m.CountMarked(); got != 1 {
		t.Fatalf("CountMarked = %d", got)
	}
	out := m.Render()
	// Point 3 is (lat 10, lon 10) → top-right cell.
	lines := strings.Split(out, "\n")
	if lines[1][5] != '#' { // row 1 col 5: inside the border
		t.Fatalf("marked cell wrong:\n%s", out)
	}
	// Point 0 is (lat 0, lon 0) → bottom-left, unmarked.
	if lines[5][1] != '.' {
		t.Fatalf("unmarked cell wrong:\n%s", out)
	}
	// Borders drawn.
	if !strings.HasPrefix(out, "+-----+") {
		t.Fatalf("missing border:\n%s", out)
	}
}

func TestGridMapMarkedWinsSharedCell(t *testing.T) {
	lat := []float64{0, 0, 5}
	lon := []float64{0, 0, 5}
	m := NewGridMap(3, 3, lat, lon)
	m.Mark(lat, lon, func(i int) bool { return i == 0 })
	// Points 0 and 1 share a cell; '#' must win regardless of order.
	if m.CountMarked() != 1 {
		t.Fatalf("CountMarked = %d", m.CountMarked())
	}
}

func TestBarCompare(t *testing.T) {
	out := BarCompare([]string{"alpha", "b"}, []float64{2, -1}, []float64{1, -1}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "o") || !strings.Contains(lines[0], "e") {
		t.Fatalf("markers missing: %q", lines[0])
	}
	if !strings.Contains(lines[0], "obs 2") || !strings.Contains(lines[0], "exp 1") {
		t.Fatalf("values missing: %q", lines[0])
	}
	// Name column aligned.
	if !strings.HasPrefix(lines[1], "b     ") {
		t.Fatalf("name alignment: %q", lines[1])
	}
}

func TestBarCompareZeroValues(t *testing.T) {
	out := BarCompare([]string{"x"}, []float64{0}, []float64{0}, 15)
	if !strings.Contains(out, "obs 0") {
		t.Fatalf("zero rendering broken: %q", out)
	}
}
