// Package viz renders the paper's figure types as ASCII: overlaid
// density curves (Fig. 1), geographic maps of pattern extensions
// (Figs. 4, 6, 7) and horizontal bar comparisons of observed vs
// expected means (Figs. 5, 8a, 10). Terminal-friendly stand-ins for the
// paper's plots, shared by the examples and the experiment drivers.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// DensityPlot renders overlaid curves on a shared grid. Each series is
// drawn with its own glyph; later series draw over earlier ones.
type DensityPlot struct {
	Width, Height int
	series        []densitySeries
}

type densitySeries struct {
	ys    []float64
	glyph byte
}

// NewDensityPlot creates a plot canvas. Width is the number of columns
// (= samples per series), Height the number of text rows.
func NewDensityPlot(width, height int) *DensityPlot {
	if width < 2 || height < 2 {
		panic("viz: density plot needs width, height >= 2")
	}
	return &DensityPlot{Width: width, Height: height}
}

// Add appends a series; ys must have exactly Width samples.
func (p *DensityPlot) Add(ys []float64, glyph byte) {
	if len(ys) != p.Width {
		panic(fmt.Sprintf("viz: series has %d samples, want %d", len(ys), p.Width))
	}
	p.series = append(p.series, densitySeries{ys: append([]float64(nil), ys...), glyph: glyph})
}

// Render draws all series as filled columns, normalized to the global
// maximum, with an x-axis line.
func (p *DensityPlot) Render() string {
	maxY := 0.0
	for _, s := range p.series {
		for _, v := range s.ys {
			if v > maxY {
				maxY = v
			}
		}
	}
	rows := make([][]byte, p.Height)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", p.Width))
	}
	if maxY > 0 {
		for _, s := range p.series {
			for col, v := range s.ys {
				h := int(v / maxY * float64(p.Height-1))
				for yy := 0; yy <= h; yy++ {
					rows[p.Height-1-yy][col] = s.glyph
				}
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat("-", p.Width))
	b.WriteByte('\n')
	return b.String()
}

// GridMap renders points with coordinates onto a character grid — the
// ASCII analogue of the paper's European maps. Points in the marked set
// render as '#', other points as '.', empty cells as ' '.
type GridMap struct {
	Rows, Cols int

	latLo, latHi float64
	lonLo, lonHi float64
	cells        [][]byte
}

// NewGridMap builds a map canvas covering the bounding box of the given
// coordinates.
func NewGridMap(rows, cols int, lat, lon []float64) *GridMap {
	if rows < 2 || cols < 2 {
		panic("viz: grid map needs rows, cols >= 2")
	}
	if len(lat) == 0 || len(lat) != len(lon) {
		panic("viz: lat/lon must be equal-length and non-empty")
	}
	m := &GridMap{
		Rows: rows, Cols: cols,
		latLo: lat[0], latHi: lat[0], lonLo: lon[0], lonHi: lon[0],
	}
	for i := range lat {
		m.latLo = math.Min(m.latLo, lat[i])
		m.latHi = math.Max(m.latHi, lat[i])
		m.lonLo = math.Min(m.lonLo, lon[i])
		m.lonHi = math.Max(m.lonHi, lon[i])
	}
	m.cells = make([][]byte, rows)
	for i := range m.cells {
		m.cells[i] = []byte(strings.Repeat(" ", cols))
	}
	return m
}

// cell maps a coordinate to a grid cell (row 0 = top = highest
// latitude).
func (m *GridMap) cell(lat, lon float64) (r, c int) {
	fr := 0.0
	if m.latHi > m.latLo {
		fr = (m.latHi - lat) / (m.latHi - m.latLo)
	}
	fc := 0.0
	if m.lonHi > m.lonLo {
		fc = (lon - m.lonLo) / (m.lonHi - m.lonLo)
	}
	r = int(fr * float64(m.Rows-1))
	c = int(fc * float64(m.Cols-1))
	return r, c
}

// Mark plots every point, using '#' for indices where marked returns
// true and '.' otherwise ('#' wins when both fall in one cell).
func (m *GridMap) Mark(lat, lon []float64, marked func(i int) bool) {
	for i := range lat {
		r, c := m.cell(lat[i], lon[i])
		if marked(i) {
			m.cells[r][c] = '#'
		} else if m.cells[r][c] != '#' {
			m.cells[r][c] = '.'
		}
	}
}

// CountMarked returns how many cells currently render as '#'.
func (m *GridMap) CountMarked() int {
	n := 0
	for _, row := range m.cells {
		for _, ch := range row {
			if ch == '#' {
				n++
			}
		}
	}
	return n
}

// Render draws the map with a border.
func (m *GridMap) Render() string {
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", m.Cols) + "+\n")
	for _, row := range m.cells {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", m.Cols) + "+\n")
	return b.String()
}

// BarCompare renders observed-vs-expected pairs as horizontal bars —
// the ASCII analogue of Figs. 5/8a/10. Bars are scaled to the largest
// absolute value; 'o' marks observed, 'e' expected.
func BarCompare(names []string, observed, expected []float64, width int) string {
	if len(names) != len(observed) || len(names) != len(expected) {
		panic("viz: BarCompare length mismatch")
	}
	if width < 10 {
		width = 10
	}
	maxAbs := 0.0
	for i := range observed {
		maxAbs = math.Max(maxAbs, math.Abs(observed[i]))
		maxAbs = math.Max(maxAbs, math.Abs(expected[i]))
	}
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	for i, n := range names {
		line := []byte(strings.Repeat(" ", width))
		pos := func(v float64) int {
			if maxAbs == 0 {
				return 0
			}
			p := int(math.Abs(v) / maxAbs * float64(width-1))
			return p
		}
		pe, po := pos(expected[i]), pos(observed[i])
		for k := 0; k <= pe; k++ {
			line[k] = '-'
		}
		line[pe] = 'e'
		line[po] = 'o'
		fmt.Fprintf(&b, "%-*s |%s| obs %.3g exp %.3g\n", nameW, n, line, observed[i], expected[i])
	}
	return b.String()
}
