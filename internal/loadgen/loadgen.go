// Package loadgen is the serving-layer scalability harness: it drives N
// concurrent simulated users through full interactive mining loops
// (create session → [mine → commit]×k → delete) against a running
// server and reports latency percentiles and throughput as JSON — the
// artifact complementing the paper's Table II single-search runtimes
// with whole-system numbers under concurrency.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// Config parameterizes a load run.
type Config struct {
	// BaseURL targets the server, e.g. "http://localhost:8080".
	BaseURL string `json:"baseUrl"`
	// Users is the number of concurrent simulated users (default 8).
	Users int `json:"users"`
	// Iterations is the number of mine/commit loops per user (default 3).
	Iterations int `json:"iterations"`
	// Dataset is the builtin each session is created over (default
	// "synthetic"); SeedBase+user seeds it so users differ.
	Dataset  string `json:"dataset"`
	SeedBase int64  `json:"seedBase,omitempty"`
	// Depth/BeamWidth tune per-mine cost (0 = paper defaults).
	Depth     int `json:"depth,omitempty"`
	BeamWidth int `json:"beamWidth,omitempty"`
	// Spread also mines a spread preview on every mine.
	Spread bool `json:"spread,omitempty"`
	// PairSparse creates the sessions with the §III-C 2-sparsity
	// constraint on spread directions — the interpretable-direction
	// serving scenario (meaningful with Spread set).
	PairSparse bool `json:"pairSparse,omitempty"`
	// Async drives the job API (submit + poll) instead of sync mines.
	Async bool `json:"async,omitempty"`
	// TimeoutMS is the per-mine budget handed to the server (0 = none).
	TimeoutMS int `json:"timeoutMs,omitempty"`
	// Client, when set, is the HTTP client every virtual user shares —
	// the cluster harness passes one pooled keep-alive transport through
	// its baseline and cluster legs so client-side connection churn
	// cannot skew the comparison. Nil builds a run-scoped pooled client.
	Client *http.Client `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 8
	}
	if c.Iterations <= 0 {
		c.Iterations = 3
	}
	if c.Dataset == "" {
		c.Dataset = "synthetic"
	}
	if c.SeedBase == 0 {
		c.SeedBase = 1000
	}
	return c
}

// OpStats summarizes one operation type's latencies.
type OpStats struct {
	Count  int     `json:"count"`
	Failed int     `json:"failed"`
	MeanMS float64 `json:"meanMs"`
	P50MS  float64 `json:"p50Ms"`
	P95MS  float64 `json:"p95Ms"`
	P99MS  float64 `json:"p99Ms"`
	MaxMS  float64 `json:"maxMs"`
}

// Report is the JSON output of a load run.
type Report struct {
	Config     Config  `json:"config"`
	WallMS     float64 `json:"wallMs"`
	Jobs       int     `json:"jobs"` // completed mine jobs
	FailedJobs int     `json:"failedJobs"`
	JobsPerSec float64 `json:"jobsPerSec"`
	// SpreadPreviews counts mines that returned a spread direction
	// (spread-mode runs only): the server may legitimately drop the
	// spread leg of a budgeted mine, so the count makes that visible.
	SpreadPreviews int                `json:"spreadPreviews,omitempty"`
	Ops            map[string]OpStats `json:"ops"`
	// Errors holds the first few failures verbatim for diagnosis.
	Errors []string `json:"errors,omitempty"`
}

type sample struct {
	op string
	ms float64
	ok bool
}

type user struct {
	client  *http.Client
	base    string
	samples []sample
	errs    []string
	spreads int // mines that returned a spread preview
}

func (u *user) record(op string, start time.Time, err error) error {
	u.samples = append(u.samples, sample{
		op: op,
		ms: float64(time.Since(start)) / float64(time.Millisecond),
		ok: err == nil,
	})
	if err != nil && len(u.errs) < 3 {
		u.errs = append(u.errs, fmt.Sprintf("%s: %v", op, err))
	}
	return err
}

func (u *user) call(method, path string, body, out any) error {
	var rd *strings.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = strings.NewReader(string(raw))
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, u.base+path, rd)
	if err != nil {
		return err
	}
	resp, err := u.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		return fmt.Errorf("%s %s: HTTP %d %s", method, path, resp.StatusCode, apiErr.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

type jobStatusView struct {
	ID     string              `json:"id"`
	Status string              `json:"status"`
	Error  string              `json:"error"`
	Result server.MineResponse `json:"result"`
}

// mineOnce performs one mine, sync or async, and returns the outcome.
func (u *user) mineOnce(cfg Config, sessionID string) (server.MineResponse, error) {
	req := server.MineRequest{Spread: cfg.Spread, TimeoutMS: cfg.TimeoutMS, Async: cfg.Async}
	path := "/api/sessions/" + sessionID + "/mine"
	if !cfg.Async {
		var resp server.MineResponse
		err := u.call("POST", path, req, &resp)
		return resp, err
	}
	var accepted jobStatusView
	if err := u.call("POST", path, req, &accepted); err != nil {
		return server.MineResponse{}, err
	}
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		var jv jobStatusView
		if err := u.call("GET", "/api/jobs/"+accepted.ID+"?waitMs=1000", nil, &jv); err != nil {
			return server.MineResponse{}, err
		}
		switch jv.Status {
		case "done":
			return jv.Result, nil
		case "failed", "cancelled":
			return server.MineResponse{}, fmt.Errorf("job %s %s: %s", jv.ID, jv.Status, jv.Error)
		}
	}
	return server.MineResponse{}, fmt.Errorf("job %s: poll deadline exceeded", accepted.ID)
}

// loop runs one user's full session lifecycle.
func (u *user) loop(cfg Config, uid int) {
	var info server.SessionInfo
	start := time.Now()
	err := u.call("POST", "/api/sessions", server.CreateRequest{
		Dataset:    cfg.Dataset,
		Seed:       cfg.SeedBase + int64(uid),
		Depth:      cfg.Depth,
		BeamWidth:  cfg.BeamWidth,
		PairSparse: cfg.PairSparse,
	}, &info)
	if u.record("create", start, err) != nil {
		return
	}
	for i := 0; i < cfg.Iterations; i++ {
		start = time.Now()
		mined, err := u.mineOnce(cfg, info.ID)
		if u.record("mine", start, err) != nil {
			return
		}
		if mined.Location == nil {
			// A budget expiring before anything scored is the one
			// legitimate null; count it as a failed job, keep looping.
			u.samples[len(u.samples)-1].ok = mined.Status == server.MineStatusTimeout
			continue
		}
		if mined.Spread != nil {
			u.spreads++
		}
		start = time.Now()
		err = u.call("POST", "/api/sessions/"+info.ID+"/commit", nil, nil)
		if u.record("commit", start, err) != nil {
			return
		}
	}
	start = time.Now()
	_ = u.record("delete", start, u.call("DELETE", "/api/sessions/"+info.ID, nil, nil))
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Run executes the load run and aggregates the report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	client := cfg.Client
	if client == nil {
		// A dedicated pooled transport shared by every virtual user: the
		// default caps idle conns per host at 2, which would serialize 32
		// users into connection churn.
		transport := &http.Transport{
			MaxIdleConns:        cfg.Users * 2,
			MaxIdleConnsPerHost: cfg.Users * 2,
		}
		defer transport.CloseIdleConnections()
		client = &http.Client{Transport: transport}
	}

	users := make([]*user, cfg.Users)
	var wg sync.WaitGroup
	wall := time.Now()
	for uid := 0; uid < cfg.Users; uid++ {
		users[uid] = &user{client: client, base: strings.TrimSuffix(cfg.BaseURL, "/")}
		wg.Add(1)
		go func(uid int) {
			defer wg.Done()
			users[uid].loop(cfg, uid)
		}(uid)
	}
	wg.Wait()
	wallMS := float64(time.Since(wall)) / float64(time.Millisecond)

	rep := &Report{
		Config: cfg,
		WallMS: wallMS,
		Ops:    map[string]OpStats{},
	}
	byOp := map[string][]float64{}
	failedByOp := map[string]int{}
	for _, u := range users {
		rep.Errors = append(rep.Errors, u.errs...)
		rep.SpreadPreviews += u.spreads
		for _, s := range u.samples {
			if s.ok {
				byOp[s.op] = append(byOp[s.op], s.ms)
			} else {
				failedByOp[s.op]++
			}
			if s.op == "mine" {
				if s.ok {
					rep.Jobs++
				} else {
					rep.FailedJobs++
				}
			}
		}
	}
	for op, lats := range byOp {
		sort.Float64s(lats)
		var sum float64
		for _, v := range lats {
			sum += v
		}
		rep.Ops[op] = OpStats{
			Count:  len(lats) + failedByOp[op],
			Failed: failedByOp[op],
			MeanMS: sum / float64(len(lats)),
			P50MS:  percentile(lats, 0.50),
			P95MS:  percentile(lats, 0.95),
			P99MS:  percentile(lats, 0.99),
			MaxMS:  lats[len(lats)-1],
		}
	}
	for op, n := range failedByOp {
		if _, ok := rep.Ops[op]; !ok {
			rep.Ops[op] = OpStats{Count: n, Failed: n}
		}
	}
	if wallMS > 0 {
		rep.JobsPerSec = float64(rep.Jobs) / (wallMS / 1000)
	}
	if len(rep.Errors) > 8 {
		rep.Errors = rep.Errors[:8]
	}
	return rep, nil
}
