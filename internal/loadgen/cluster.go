// Cluster harness: the scale-out counterpart of the single-process load
// run. It measures the same workload twice — one sisd-server subprocess
// alone, then a consistent-hash router fronting N shard subprocesses
// over a shared store — and reports the throughput ratio, the router's
// added latency, and (optionally) a chaos leg that SIGKILLs a shard
// mid-commit-stream and requires every affected session to resume on a
// surviving shard with mine results byte-identical to a no-crash
// control run. This is the acceptance artifact for DESIGN.md §12: on a
// multi-core runner the cluster leg should sustain near-linear jobs/sec
// scaling at equal-or-better p95.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// ClusterConfig parameterizes a cluster run.
type ClusterConfig struct {
	// ServerBin is the sisd-server binary to spawn shards from (required).
	ServerBin string `json:"serverBin"`
	// StoreDir is the harness scratch root (required; the single-shard
	// baseline and the cluster get separate subdirectories).
	StoreDir string `json:"storeDir"`
	// ShardCount is the cluster size (default 3).
	ShardCount int `json:"shards"`
	// Users / Iterations / Dataset / SeedBase / Depth / BeamWidth have
	// the load-run meanings (defaults 16 / 2 / synthetic / 1000 / 2 / 8:
	// cheap mines keep the comparison dominated by concurrency, not one
	// giant search).
	Users      int    `json:"users"`
	Iterations int    `json:"iterations"`
	Dataset    string `json:"dataset"`
	SeedBase   int64  `json:"seedBase,omitempty"`
	Depth      int    `json:"depth,omitempty"`
	BeamWidth  int    `json:"beamWidth,omitempty"`
	// Workers caps each shard's mine pool (0 = server default). The
	// single-shard baseline uses the same value, so the comparison
	// isolates process count, not pool size.
	Workers int `json:"workers,omitempty"`
	// SkipChaos drops the shard-kill leg (it is on by default — the
	// resume-on-surviving-shard property is half the point).
	SkipChaos bool `json:"skipChaos,omitempty"`
	// OverheadProbes is the sample count for the router-overhead
	// comparison (default 300).
	OverheadProbes int `json:"overheadProbes,omitempty"`
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.ShardCount <= 0 {
		c.ShardCount = 3
	}
	if c.Users <= 0 {
		c.Users = 16
	}
	if c.Iterations <= 0 {
		c.Iterations = 2
	}
	if c.Dataset == "" {
		c.Dataset = "synthetic"
	}
	if c.SeedBase == 0 {
		c.SeedBase = 1000
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	if c.BeamWidth == 0 {
		c.BeamWidth = 8
	}
	if c.OverheadProbes <= 0 {
		c.OverheadProbes = 300
	}
	return c
}

// ClusterChaosReport is the shard-kill leg of a cluster run.
type ClusterChaosReport struct {
	// KilledShard is the shard SIGKILLed mid-commit-stream.
	KilledShard string `json:"killedShard"`
	// Sessions/ CommitsBeforeKill mirror the single-process chaos run.
	Sessions          int `json:"sessions"`
	CommitsBeforeKill int `json:"commitsBeforeKill"`
	// Affected counts sessions homed on the killed shard; Resumed how
	// many answered on a surviving shard afterwards; Identical how many
	// mined byte-identically to the no-crash control replay.
	Affected  int      `json:"affected"`
	Resumed   int      `json:"resumed"`
	Identical int      `json:"identical"`
	Errors    []string `json:"errors,omitempty"`
	OK        bool     `json:"ok"`
}

// ClusterReport is the JSON artifact of a cluster run.
type ClusterReport struct {
	Config ClusterConfig `json:"config"`
	WallMS float64       `json:"wallMs"`
	// Single and Cluster are the two measured legs.
	Single  *Report `json:"single"`
	Cluster *Report `json:"cluster"`
	// Speedup is cluster jobs/sec over single jobs/sec; MineP95 carries
	// the latency side of the acceptance bar.
	Speedup       float64 `json:"speedup"`
	SingleMineP95 float64 `json:"singleMineP95Ms"`
	ClusterMine95 float64 `json:"clusterMineP95Ms"`
	// Router overhead: p50 of a cheap session read via the router minus
	// the same read direct to the owning shard, same process, same
	// client, interleaved samples.
	DirectP50MS   float64 `json:"directP50Ms"`
	RoutedP50MS   float64 `json:"routedP50Ms"`
	OverheadP50MS float64 `json:"overheadP50Ms"`
	// Chaos is the shard-kill leg (nil when skipped).
	Chaos  *ClusterChaosReport `json:"chaos,omitempty"`
	Errors []string            `json:"errors,omitempty"`
	OK     bool                `json:"ok"`
}

// clusterShard pairs a shard subprocess with its identity.
type clusterShard struct {
	id   string
	proc *chaosProc
}

// routerFront serves an in-process cluster.Router on a real listener —
// the shards are real processes; the router shares the harness process
// so the chaos leg can force deterministic probe sweeps instead of
// sleeping through the probe interval.
type routerFront struct {
	rt   *cluster.Router
	srv  *http.Server
	base string
}

func newRouterFront(shards []*clusterShard) (*routerFront, error) {
	cfgs := make([]cluster.Shard, len(shards))
	for i, sh := range shards {
		cfgs[i] = cluster.Shard{ID: sh.id, URL: sh.proc.base}
	}
	rt, err := cluster.NewRouter(cluster.Options{
		Shards:        cfgs,
		ProbeInterval: 250 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	rt.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		return nil, err
	}
	srv := &http.Server{Handler: rt.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &routerFront{rt: rt, srv: srv, base: "http://" + ln.Addr().String()}, nil
}

func (f *routerFront) close() {
	_ = f.srv.Close()
	f.rt.Close()
}

// RunCluster executes the full scenario: baseline, cluster, overhead
// probe, chaos leg. Fatal harness errors land in rep.Errors; rep.OK
// summarizes the correctness-side checks (the throughput acceptance
// ratio is judged by the caller/CI, because it is hardware-dependent —
// a single-core machine cannot scale by process count).
func RunCluster(cfg ClusterConfig) (*ClusterReport, error) {
	cfg = cfg.withDefaults()
	if cfg.ServerBin == "" || cfg.StoreDir == "" {
		return nil, fmt.Errorf("cluster: ServerBin and StoreDir are required")
	}
	rep := &ClusterReport{Config: cfg}
	wall := time.Now()
	defer func() { rep.WallMS = float64(time.Since(wall)) / float64(time.Millisecond) }()
	fail := func(format string, args ...any) (*ClusterReport, error) {
		rep.Errors = append(rep.Errors, fmt.Sprintf(format, args...))
		return rep, nil
	}

	// One pooled client for every leg: identical client-side connection
	// behavior for baseline and cluster numbers.
	transport := &http.Transport{
		MaxIdleConns:        cfg.Users * 4,
		MaxIdleConnsPerHost: cfg.Users * 2,
		IdleConnTimeout:     90 * time.Second,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: 2 * time.Minute}
	load := Config{
		Users:      cfg.Users,
		Iterations: cfg.Iterations,
		Dataset:    cfg.Dataset,
		SeedBase:   cfg.SeedBase,
		Depth:      cfg.Depth,
		BeamWidth:  cfg.BeamWidth,
		Client:     client,
	}

	// Leg 1: single shard, same binary, own store.
	singleDir := filepath.Join(cfg.StoreDir, "single")
	if err := os.MkdirAll(singleDir, 0o755); err != nil {
		return fail("mkdir: %v", err)
	}
	singleArgs := []string{"-shard-id", "single"}
	if cfg.Workers > 0 {
		singleArgs = append(singleArgs, "-workers", fmt.Sprint(cfg.Workers))
	}
	single, err := startChaosServer(cfg.ServerBin, singleDir, singleArgs...)
	if err != nil {
		return fail("start single shard: %v", err)
	}
	load.BaseURL = single.base
	rep.Single, err = Run(load)
	single.kill()
	if err != nil {
		return fail("single-shard leg: %v", err)
	}

	// Leg 2: N shards over one shared store behind the router.
	clusterDir := filepath.Join(cfg.StoreDir, "cluster")
	if err := os.MkdirAll(clusterDir, 0o755); err != nil {
		return fail("mkdir: %v", err)
	}
	shards := make([]*clusterShard, cfg.ShardCount)
	defer func() {
		for _, sh := range shards {
			if sh != nil {
				sh.proc.kill()
			}
		}
	}()
	for i := range shards {
		id := fmt.Sprintf("shard-%d", i)
		args := []string{"-shard-id", id}
		if cfg.Workers > 0 {
			args = append(args, "-workers", fmt.Sprint(cfg.Workers))
		}
		proc, err := startChaosServer(cfg.ServerBin, clusterDir, args...)
		if err != nil {
			return fail("start %s: %v", id, err)
		}
		shards[i] = &clusterShard{id: id, proc: proc}
	}
	front, err := newRouterFront(shards)
	if err != nil {
		return fail("router: %v", err)
	}
	defer front.close()

	load.BaseURL = front.base
	load.SeedBase = cfg.SeedBase + 10_000 // fresh sessions, same workload shape
	rep.Cluster, err = Run(load)
	if err != nil {
		return fail("cluster leg: %v", err)
	}
	if rep.Single.JobsPerSec > 0 {
		rep.Speedup = rep.Cluster.JobsPerSec / rep.Single.JobsPerSec
	}
	rep.SingleMineP95 = rep.Single.Ops["mine"].P95MS
	rep.ClusterMine95 = rep.Cluster.Ops["mine"].P95MS

	if err := rep.probeOverhead(client, front, shards); err != nil {
		return fail("overhead probe: %v", err)
	}

	if !cfg.SkipChaos {
		rep.Chaos = runClusterChaos(cfg, client, front, shards)
	}

	rep.OK = len(rep.Errors) == 0 &&
		rep.Single.FailedJobs == 0 && rep.Cluster.FailedJobs == 0 &&
		(rep.Chaos == nil || rep.Chaos.OK)
	return rep, nil
}

// probeOverhead measures what the router adds to one request: the same
// cheap session read sampled direct-to-shard and via the router,
// interleaved (so machine noise hits both series equally), compared at
// the median.
func (rep *ClusterReport) probeOverhead(client *http.Client, front *routerFront, shards []*clusterShard) error {
	var info server.SessionInfo
	if _, _, err := chaosCall(client, "POST", front.base, "/sessions", server.CreateRequest{
		Dataset: rep.Config.Dataset, Seed: 1, Depth: rep.Config.Depth, BeamWidth: rep.Config.BeamWidth,
	}, &info); err != nil {
		return err
	}
	var ownerBase string
	for _, sh := range shards {
		if sh.id == info.Shard {
			ownerBase = sh.proc.base
		}
	}
	if ownerBase == "" {
		return fmt.Errorf("probe session %s landed on unknown shard %q", info.ID, info.Shard)
	}
	path := "/sessions/" + info.ID + "/history"
	probe := func(base string) (float64, error) {
		start := time.Now()
		if _, _, err := chaosCall(client, "GET", base, path, nil, nil); err != nil {
			return 0, err
		}
		return float64(time.Since(start)) / float64(time.Millisecond), nil
	}
	// Warm both connection pools before sampling.
	for i := 0; i < 8; i++ {
		if _, err := probe(ownerBase); err != nil {
			return err
		}
		if _, err := probe(front.base); err != nil {
			return err
		}
	}
	direct := make([]float64, 0, rep.Config.OverheadProbes)
	routed := make([]float64, 0, rep.Config.OverheadProbes)
	for i := 0; i < rep.Config.OverheadProbes; i++ {
		d, err := probe(ownerBase)
		if err != nil {
			return err
		}
		r, err := probe(front.base)
		if err != nil {
			return err
		}
		direct = append(direct, d)
		routed = append(routed, r)
	}
	sort.Float64s(direct)
	sort.Float64s(routed)
	rep.DirectP50MS = percentile(direct, 0.50)
	rep.RoutedP50MS = percentile(routed, 0.50)
	rep.OverheadP50MS = rep.RoutedP50MS - rep.DirectP50MS
	return nil
}

// runClusterChaos is the shard-kill leg: a small fleet of sessions
// commits through the router, one shard that owns at least one of them
// is SIGKILLed mid-stream, the router is forced through a probe sweep,
// and every affected session must resume on a surviving shard with
// history inside the acknowledged window and a mine byte-identical to
// the no-crash control replay (same comparison as the PR-8 chaos run).
func runClusterChaos(cfg ClusterConfig, client *http.Client, front *routerFront, shards []*clusterShard) *ClusterChaosReport {
	rep := &ClusterChaosReport{}
	failf := func(format string, args ...any) *ClusterChaosReport {
		rep.Errors = append(rep.Errors, fmt.Sprintf(format, args...))
		return rep
	}

	type chaosSess struct {
		cs    *chaosSession
		shard string
	}
	// Create the fleet through the router, recording each session's home
	// shard from the placement the create response carries.
	fleet := make([]*chaosSess, 0, 6)
	byShard := map[string]int{}
	for u := 0; len(fleet) < 6 && u < 48; u++ {
		create := server.CreateRequest{
			Dataset:   cfg.Dataset,
			Seed:      cfg.SeedBase + 20_000 + int64(u),
			Depth:     cfg.Depth,
			BeamWidth: cfg.BeamWidth,
		}
		var info server.SessionInfo
		if _, _, err := chaosCall(client, "POST", front.base, "/sessions", create, &info); err != nil {
			return failf("create: %v", err)
		}
		fleet = append(fleet, &chaosSess{
			cs:    &chaosSession{id: info.ID, create: create},
			shard: info.Shard,
		})
		byShard[info.Shard]++
	}
	rep.Sessions = len(fleet)
	// Kill the shard owning the most sessions — maximum blast radius.
	for _, sh := range shards {
		if rep.KilledShard == "" || byShard[sh.id] > byShard[rep.KilledShard] {
			rep.KilledShard = sh.id
		}
	}
	if byShard[rep.KilledShard] == 0 {
		return failf("no session landed on any shard; placement broken")
	}

	// Commit stream; the first acknowledged commit lights the kill fuse.
	var (
		mu      sync.Mutex
		commits atomic.Int64
	)
	firstCommit := make(chan struct{})
	var commitOnce sync.Once
	var wg sync.WaitGroup
	for _, s := range fleet {
		wg.Add(1)
		go func(s *chaosSess) {
			defer wg.Done()
			for i := 0; i < cfg.Iterations; i++ {
				var m server.MineResponse
				if _, _, err := chaosCall(client, "POST", front.base, "/sessions/"+s.cs.id+"/mine", server.MineRequest{}, &m); err != nil {
					return // racing the kill — the resume check below decides
				}
				if _, _, err := chaosCall(client, "POST", front.base, "/sessions/"+s.cs.id+"/commit", nil, nil); err != nil {
					return
				}
				mu.Lock()
				s.cs.commits++
				mu.Unlock()
				commits.Add(1)
				commitOnce.Do(func() { close(firstCommit) })
			}
		}(s)
	}
	select {
	case <-firstCommit:
	case <-time.After(2 * time.Minute):
		wg.Wait()
		return failf("no commit landed within 2m")
	}
	time.Sleep(50 * time.Millisecond)
	var killed *clusterShard
	for _, sh := range shards {
		if sh.id == rep.KilledShard {
			killed = sh
		}
	}
	killed.proc.kill()
	wg.Wait()
	rep.CommitsBeforeKill = int(commits.Load())

	// Force the router to notice the corpse instead of sleeping through
	// the probe interval; one sweep is the deterministic equivalent.
	front.rt.ProbeOnce(context.Background())

	// Control server for the no-crash reference.
	ctrl := server.New()
	defer ctrl.Close()
	ctrlSrv, err := newCtrlServer(ctrl)
	if err != nil {
		return failf("control server: %v", err)
	}
	defer ctrlSrv.close()

	for _, s := range fleet {
		if s.shard != rep.KilledShard {
			continue
		}
		rep.Affected++
		var hist []server.PatternJSON
		if _, _, err := chaosCall(client, "GET", front.base, "/sessions/"+s.cs.id+"/history", nil, &hist); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: resume failed: %v", s.cs.id, err))
			continue
		}
		rep.Resumed++
		// Same durable window as the single-process chaos run: never
		// behind the acked commits, never past what was attempted.
		if len(hist) < s.cs.commits || len(hist) > cfg.Iterations {
			rep.Errors = append(rep.Errors,
				fmt.Sprintf("%s: resumed history %d outside [%d,%d]", s.cs.id, len(hist), s.cs.commits, cfg.Iterations))
			continue
		}
		var m server.MineResponse
		if _, _, err := chaosCall(client, "POST", front.base, "/sessions/"+s.cs.id+"/mine", server.MineRequest{}, &m); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: mine after resume: %v", s.cs.id, err))
			continue
		}
		ctrlMine, _, _, err := replayControl(client, ctrlSrv.base, s.cs.create, len(hist))
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: control replay: %v", s.cs.id, err))
			continue
		}
		if !bytes.Equal(canonicalMine(&m), ctrlMine) {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: mine diverged from control after shard kill", s.cs.id))
			continue
		}
		rep.Identical++
	}
	rep.OK = len(rep.Errors) == 0 && rep.Affected > 0 &&
		rep.Resumed == rep.Affected && rep.Identical == rep.Affected
	return rep
}
