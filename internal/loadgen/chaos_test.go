package loadgen

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestChaosSmoke runs the full crash/restore scenario end-to-end: it
// builds the real sisd-server binary, SIGKILLs it mid-commit-stream,
// restarts it over the same store directory, and requires every
// compared session to restore byte-identically plus both corruption
// probes to pass. This is the acceptance gate for DESIGN.md §11.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke builds and crashes a real server binary")
	}
	bin := filepath.Join(t.TempDir(), "sisd-server")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sisd-server")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sisd-server: %v\n%s", err, out)
	}
	rep, err := RunChaos(ChaosConfig{
		ServerBin:  bin,
		StoreDir:   t.TempDir(),
		Users:      3, // one compared session + two corruption-probe sacrifices
		Iterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("chaos run not ok: mismatches=%v errors=%v report=%+v",
			rep.Mismatches, rep.Errors, rep)
	}
	if rep.Compared == 0 || rep.Identical != rep.Compared {
		t.Fatalf("identical %d/%d compared", rep.Identical, rep.Compared)
	}
	if !rep.SweepProbeOK || !rep.ServeProbeOK {
		t.Fatalf("corruption probes: sweep=%v serve=%v", rep.SweepProbeOK, rep.ServeProbeOK)
	}
}

// TestChaosReplicaSmoke runs the replica-kill leg end-to-end against a
// real server over a 3-replica quorum store: one replica dies
// mid-commit-stream and stays dead through a SIGKILL/restart (restores
// must be byte-identical from the survivors), a second death degrades
// the server to serve-from-memory, and after healing both, anti-entropy
// must converge every replica directory byte-identically. This is the
// acceptance gate for DESIGN.md §13.
func TestChaosReplicaSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("replica chaos smoke builds and crashes a real server binary")
	}
	bin := filepath.Join(t.TempDir(), "sisd-server")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sisd-server")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sisd-server: %v\n%s", err, out)
	}
	rep, err := RunChaos(ChaosConfig{
		ServerBin:  bin,
		StoreDir:   t.TempDir(),
		Users:      2,
		Iterations: 1,
		Replicas:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("replica chaos run not ok: mismatches=%v errors=%v report=%+v",
			rep.Mismatches, rep.Errors, rep)
	}
	if rep.Compared == 0 || rep.Identical != rep.Compared {
		t.Fatalf("identical %d/%d compared", rep.Identical, rep.Compared)
	}
	if rep.ReplicaKilled == "" {
		t.Fatal("no replica was killed")
	}
	if !rep.ReplicaDegradedSeen || !rep.QuorumLossOK || !rep.ConvergedOK {
		t.Fatalf("ladder probes: degradedSeen=%v quorumLoss=%v converged=%v",
			rep.ReplicaDegradedSeen, rep.QuorumLossOK, rep.ConvergedOK)
	}
}
