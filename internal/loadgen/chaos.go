// Chaos harness: crash-safety validation against a real sisd-server
// subprocess. The scenario SIGKILLs the server mid-commit-stream,
// restarts it over the same store directory, and asserts that every
// session whose create was acknowledged restores and behaves
// byte-identically to a no-crash control run — the end-to-end check
// that the fsync'd, checksummed snapshot pipeline actually delivers
// the durability DESIGN.md §11 promises. Two sacrificial sessions
// additionally probe the corruption paths: a snapshot corrupted while
// the server is down must be quarantined by the startup sweep (the
// session 404s), and one corrupted behind a running server's back must
// surface as a structured snapshot_corrupt error, never a panic.
package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/repstore"
	"repro/internal/server"
)

// ChaosConfig parameterizes a chaos run.
type ChaosConfig struct {
	// ServerBin is the sisd-server binary to crash (required).
	ServerBin string `json:"serverBin"`
	// StoreDir is the snapshot directory shared across the crash
	// (required; the caller owns cleanup).
	StoreDir string `json:"storeDir"`
	// Users is the number of concurrent sessions (default 4; two are
	// sacrificed to the corruption probes when Users >= 3).
	Users int `json:"users"`
	// Iterations is the mine/commit loops each session attempts before
	// the kill lands (default 2).
	Iterations int `json:"iterations"`
	// Dataset seeds each session (default "synthetic", seed SeedBase+u).
	Dataset  string `json:"dataset"`
	SeedBase int64  `json:"seedBase,omitempty"`
	// Depth / BeamWidth bound per-mine cost (defaults 2 / 8: the chaos
	// run is about crash timing, not search throughput).
	Depth     int `json:"depth,omitempty"`
	BeamWidth int `json:"beamWidth,omitempty"`
	// KillAfterMS is how long after the first acknowledged commit the
	// SIGKILL lands (default 50ms — inside the commit stream).
	KillAfterMS int `json:"killAfterMs,omitempty"`
	// Replicas >= 2 runs the replica-kill leg: the server persists to a
	// quorum-replicated store over Replicas subdirectories of StoreDir
	// (write quorum = majority), one replica's directory dies
	// mid-commit-stream and stays dead across the SIGKILL/restart (the
	// restore must be byte-identical from the survivors), a second
	// death degrades the server to serve-from-memory, and after healing
	// both, anti-entropy must converge every replica directory to a
	// byte-identical snapshot set. 0 or 1 runs the single-DirStore
	// scenario with its corruption probes.
	Replicas int `json:"replicas,omitempty"`
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Users <= 0 {
		c.Users = 4
	}
	if c.Iterations <= 0 {
		c.Iterations = 2
	}
	if c.Dataset == "" {
		c.Dataset = "synthetic"
	}
	if c.SeedBase == 0 {
		c.SeedBase = 1000
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	if c.BeamWidth == 0 {
		c.BeamWidth = 8
	}
	if c.KillAfterMS <= 0 {
		c.KillAfterMS = 50
	}
	return c
}

// ChaosReport is the JSON artifact of a chaos run.
type ChaosReport struct {
	Config ChaosConfig `json:"config"`
	WallMS float64     `json:"wallMs"`
	// Sessions is how many creates were acknowledged before the kill;
	// CommitsBeforeKill how many commit responses landed.
	Sessions          int `json:"sessions"`
	CommitsBeforeKill int `json:"commitsBeforeKill"`
	// Restored / Identical count compared (non-sacrificial) sessions
	// that came back, and came back byte-identical to the control run.
	Compared  int `json:"compared"`
	Restored  int `json:"restored"`
	Identical int `json:"identical"`
	// SweepProbeOK: a snapshot corrupted while the server was down was
	// quarantined at startup and the session 404s.
	// ServeProbeOK: a snapshot corrupted behind the running server
	// surfaced as a snapshot_corrupt envelope (HTTP 500, no crash).
	SweepProbeOK bool `json:"sweepProbeOk"`
	ServeProbeOK bool `json:"serveProbeOk"`
	// Replica-kill leg results (Replicas >= 2 only).
	// ReplicaKilled is the replica directory broken mid-commit-stream
	// and kept dead through the restart; ReplicaCorrupt the session
	// whose surviving-replica copy was bit-flipped while the server was
	// down (its restore must still be byte-identical — the quorum vote
	// excludes the corrupt copy and read-repair rewrites it).
	ReplicaKilled  string `json:"replicaKilled,omitempty"`
	ReplicaCorrupt string `json:"replicaCorrupt,omitempty"`
	// ReplicaDegradedSeen: with one replica dead, readyz stayed ready
	// and carried the store_replica_degraded warning + per-replica
	// health. QuorumLossOK: with two dead, the server degraded to
	// serve-from-memory per §11 (commit persisted=false, snapshot 503,
	// reads 200) rather than serving stale or torn state. ConvergedOK:
	// after heal, anti-entropy converged all replica dirs to
	// byte-identical snapshot sets and readyz cleared its warnings.
	ReplicaDegradedSeen bool `json:"replicaDegradedSeen,omitempty"`
	QuorumLossOK        bool `json:"quorumLossOk,omitempty"`
	ConvergedOK         bool `json:"convergedOk,omitempty"`
	// Mismatches holds diagnostics for every non-identical session.
	Mismatches []string `json:"mismatches,omitempty"`
	// Errors holds fatal harness errors (empty on a clean run).
	Errors []string `json:"errors,omitempty"`
	OK     bool     `json:"ok"`
}

// chaosSession is the harness's pre-crash record of one session: what
// created it and how many commits were acknowledged. The restored
// history length is allowed to exceed Commits by one — a commit whose
// Put landed but whose response the kill swallowed.
type chaosSession struct {
	id      string
	create  server.CreateRequest
	commits int
}

// chaosProc is a running sisd-server subprocess.
type chaosProc struct {
	cmd  *exec.Cmd
	base string
}

// startChaosServer launches bin over storeDir on an ephemeral port and
// parses the actual address from the "listening on" log line. Extra
// args (e.g. -shard-id for cluster shards) are appended verbatim.
func startChaosServer(bin, storeDir string, extra ...string) (*chaosProc, error) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-store-dir", storeDir,
		"-drain-timeout", "10s"}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &chaosProc{cmd: cmd, base: "http://" + addr}, nil
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("chaos: server did not report a listen address")
	}
}

func (p *chaosProc) kill() {
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}

// stop shuts the server down gracefully (SIGTERM → drain → exit).
func (p *chaosProc) stop() error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		_ = p.cmd.Process.Kill()
		return fmt.Errorf("chaos: graceful shutdown timed out")
	}
}

// chaosCall is a minimal /api/v1 client: JSON in/out, envelope errors.
func chaosCall(client *http.Client, method, base, path string, body, out any) (int, string, error) {
	var rd io.Reader = strings.NewReader("")
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, "", err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, base+"/api/v1"+path, rd)
	if err != nil {
		return 0, "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", err
	}
	if resp.StatusCode >= 300 {
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		_ = json.Unmarshal(raw, &env)
		return resp.StatusCode, env.Error.Code,
			fmt.Errorf("%s %s: HTTP %d %s: %s", method, path, resp.StatusCode, env.Error.Code, env.Error.Message)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, "", err
		}
	}
	return resp.StatusCode, "", nil
}

// canonicalMine strips the scheduling-dependent fields of a mine
// response — the job id and the SI-bound pruning diagnostics vary with
// goroutine interleaving (DESIGN.md §6); everything else must be
// byte-identical across crash/restore.
func canonicalMine(m *server.MineResponse) []byte {
	c := *m
	c.Job = ""
	c.BoundEvals = 0
	c.Pruned = 0
	raw, _ := json.Marshal(&c)
	return raw
}

// corruptSnapshot flips bytes in the middle of a session's snapshot
// file, simulating bit rot the CRC must catch.
func corruptSnapshot(storeDir, id string) error {
	path := filepath.Join(storeDir, id+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < 16 {
		return fmt.Errorf("chaos: snapshot %s too small to corrupt", id)
	}
	for i := len(raw) / 2; i < len(raw)/2+8; i++ {
		raw[i] ^= 0xff
	}
	return os.WriteFile(path, raw, 0o644)
}

// replicaDirs lays out the replica directories under StoreDir.
func replicaDirs(cfg ChaosConfig) []string {
	dirs := make([]string, cfg.Replicas)
	for i := range dirs {
		dirs[i] = filepath.Join(cfg.StoreDir, fmt.Sprintf("r%d", i))
	}
	return dirs
}

// replicaArgs are the extra sisd-server flags for the replicated
// store: the remaining -store-dir replicas (the first rides in the
// positional startChaosServer arg), an explicit majority write quorum,
// and a fast anti-entropy sweep so heal convergence fits a test run.
func replicaArgs(dirs []string) []string {
	args := []string{}
	for _, d := range dirs[1:] {
		args = append(args, "-store-dir", d)
	}
	args = append(args,
		"-store-quorum", fmt.Sprint(len(dirs)/2+1),
		"-store-sweep", "250ms")
	return args
}

// breakReplicaDir simulates losing a replica's disk from outside the
// process: the directory is renamed aside and a regular file takes its
// place, so every store operation fails (ENOTDIR) even when the server
// runs as root. healReplicaDir reverses it — the disk comes back with
// whatever (stale) contents it had.
func breakReplicaDir(dir string) error {
	if err := os.Rename(dir, dir+".dead"); err != nil {
		return err
	}
	return os.WriteFile(dir, []byte("dead replica"), 0o644)
}

func healReplicaDir(dir string) error {
	if err := os.Remove(dir); err != nil && !os.IsNotExist(err) {
		return err
	}
	return os.Rename(dir+".dead", dir)
}

// replicaDirsConverged reports whether every replica dir holds the
// same *.json file set with identical bytes (quarantined *.corrupt and
// torn *.tmp files are ignored — they are not served state).
func replicaDirsConverged(dirs []string) bool {
	var refNames []string
	refFiles := map[string][]byte{}
	for i, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return false
		}
		var names []string
		files := map[string][]byte{}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return false
			}
			names = append(names, e.Name())
			files[e.Name()] = raw
		}
		sort.Strings(names)
		if i == 0 {
			refNames, refFiles = names, files
			continue
		}
		if len(names) != len(refNames) {
			return false
		}
		for j, n := range names {
			if n != refNames[j] || !bytes.Equal(files[n], refFiles[n]) {
				return false
			}
		}
	}
	return len(refNames) > 0
}

// replayControl rebuilds the no-crash reference for one session on an
// in-process server: same create request, `commits` mine+commit loops,
// then the observation mine. Returns the canonical mine bytes, the
// history JSON, and the model export.
func replayControl(ctrl *http.Client, base string, create server.CreateRequest, commits int) (mine, history, model []byte, err error) {
	var info server.SessionInfo
	if _, _, err = chaosCall(ctrl, "POST", base, "/sessions", create, &info); err != nil {
		return nil, nil, nil, err
	}
	for i := 0; i < commits; i++ {
		var m server.MineResponse
		if _, _, err = chaosCall(ctrl, "POST", base, "/sessions/"+info.ID+"/mine", server.MineRequest{}, &m); err != nil {
			return nil, nil, nil, err
		}
		if _, _, err = chaosCall(ctrl, "POST", base, "/sessions/"+info.ID+"/commit", nil, nil); err != nil {
			return nil, nil, nil, err
		}
	}
	var m server.MineResponse
	if _, _, err = chaosCall(ctrl, "POST", base, "/sessions/"+info.ID+"/mine", server.MineRequest{}, &m); err != nil {
		return nil, nil, nil, err
	}
	var hist json.RawMessage
	if _, _, err = chaosCall(ctrl, "GET", base, "/sessions/"+info.ID+"/history", nil, &hist); err != nil {
		return nil, nil, nil, err
	}
	var mdl json.RawMessage
	if _, _, err = chaosCall(ctrl, "GET", base, "/sessions/"+info.ID+"/model", nil, &mdl); err != nil {
		return nil, nil, nil, err
	}
	return canonicalMine(&m), hist, mdl, nil
}

// RunChaos executes the crash/restore scenario and returns the report.
// The run is fatal-error-free when rep.OK; callers exit non-zero
// otherwise.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	rep := &ChaosReport{Config: cfg}
	if cfg.ServerBin == "" || cfg.StoreDir == "" {
		return nil, fmt.Errorf("chaos: ServerBin and StoreDir are required")
	}
	if cfg.Replicas == 2 {
		// At N=2 the majority write quorum is 2, so the mid-stream replica
		// death would immediately cost the quorum and the failure ladder
		// (one dead = warn, two dead = degrade) collapses to one rung.
		return nil, fmt.Errorf("chaos: Replicas must be 0, 1, or >= 3")
	}
	wall := time.Now()
	defer func() { rep.WallMS = float64(time.Since(wall)) / float64(time.Millisecond) }()
	fail := func(format string, args ...any) (*ChaosReport, error) {
		rep.Errors = append(rep.Errors, fmt.Sprintf(format, args...))
		return rep, nil
	}

	// Replicated runs persist to Replicas subdirectories of StoreDir;
	// the first replica is the positional store arg, the rest (plus the
	// quorum and sweep flags) ride in extraArgs on every start.
	replicated := cfg.Replicas >= 2
	storeDir := cfg.StoreDir
	var dirs []string
	var extraArgs []string
	if replicated {
		dirs = replicaDirs(cfg)
		storeDir = dirs[0]
		extraArgs = replicaArgs(dirs)
	}

	proc, err := startChaosServer(cfg.ServerBin, storeDir, extraArgs...)
	if err != nil {
		return fail("start: %v", err)
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	// Phase 1: commit stream. Each user creates a session and loops
	// mine→commit; the first acknowledged commit starts the kill fuse.
	var (
		mu       sync.Mutex
		sessions []*chaosSession
		commits  atomic.Int64
	)
	firstCommit := make(chan struct{})
	var commitOnce sync.Once
	var wg sync.WaitGroup
	for u := 0; u < cfg.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			create := server.CreateRequest{
				Dataset:   cfg.Dataset,
				Seed:      cfg.SeedBase + int64(u),
				Depth:     cfg.Depth,
				BeamWidth: cfg.BeamWidth,
			}
			var info server.SessionInfo
			if _, _, err := chaosCall(client, "POST", proc.base, "/sessions", create, &info); err != nil {
				return // racing the kill; acceptable for late users
			}
			cs := &chaosSession{id: info.ID, create: create}
			mu.Lock()
			sessions = append(sessions, cs)
			mu.Unlock()
			for i := 0; i < cfg.Iterations; i++ {
				var m server.MineResponse
				if _, _, err := chaosCall(client, "POST", proc.base, "/sessions/"+info.ID+"/mine", server.MineRequest{}, &m); err != nil {
					return
				}
				if _, _, err := chaosCall(client, "POST", proc.base, "/sessions/"+info.ID+"/commit", nil, nil); err != nil {
					return
				}
				mu.Lock()
				cs.commits++
				mu.Unlock()
				commits.Add(1)
				commitOnce.Do(func() { close(firstCommit) })
			}
		}(u)
	}

	// The kill fuse: SIGKILL KillAfterMS after the first commit landed —
	// mid-stream, while other commits and Puts are in flight.
	select {
	case <-firstCommit:
	case <-time.After(2 * time.Minute):
		proc.kill()
		wg.Wait()
		return fail("no commit landed within 2m; cannot crash mid-stream")
	}
	if replicated {
		// Break one replica mid-commit-stream: commits must keep
		// persisting through the surviving quorum, and this replica
		// stays dead across the kill and restart.
		victim := dirs[len(dirs)-1]
		if err := breakReplicaDir(victim); err != nil {
			proc.kill()
			wg.Wait()
			return fail("break replica: %v", err)
		}
		rep.ReplicaKilled = victim
	}
	time.Sleep(time.Duration(cfg.KillAfterMS) * time.Millisecond)
	proc.kill()
	wg.Wait()

	mu.Lock()
	rep.Sessions = len(sessions)
	rep.CommitsBeforeKill = int(commits.Load())
	mu.Unlock()
	if rep.Sessions == 0 {
		return fail("no session created before the kill")
	}

	// Sacrifice up to two sessions to the corruption probes; the rest
	// are compared byte-for-byte against the control run. With a
	// replicated store the single-file probes don't apply — corruption
	// of one replica must be *transparent* instead: a bit-flipped copy
	// on a surviving replica is excluded from the quorum vote and
	// repaired, so its session still restores byte-identical and stays
	// in the compared set.
	compared := sessions
	var sweepVictim, serveVictim *chaosSession
	if !replicated && len(sessions) >= 3 {
		sweepVictim = sessions[len(sessions)-1]
		serveVictim = sessions[len(sessions)-2]
		compared = sessions[:len(sessions)-2]
	}
	if sweepVictim != nil {
		// Corrupt while the server is down: the restart's recovery sweep
		// must quarantine the file before anything serves from it.
		if err := corruptSnapshot(cfg.StoreDir, sweepVictim.id); err != nil {
			return fail("sweep probe: %v", err)
		}
	}
	if replicated {
		// Bit-flip the first session's copy on a surviving replica while
		// the server is down. The quorum read must exclude it from the
		// freshness vote and read-repair it — the session stays in the
		// compared set and must still restore byte-identical. (Skipped if
		// the kill tore that replica's write and no file exists; rare,
		// and the byte-identity checks still cover the quorum path.)
		if err := corruptSnapshot(dirs[0], sessions[0].id); err == nil {
			rep.ReplicaCorrupt = sessions[0].id
		} else if !os.IsNotExist(err) {
			return fail("replica corruption plant: %v", err)
		}
	}

	// Phase 2: restart over the same store (a broken replica is still
	// broken) and interrogate survivors.
	proc, err = startChaosServer(cfg.ServerBin, storeDir, extraArgs...)
	if err != nil {
		return fail("restart: %v", err)
	}
	defer proc.kill()

	// In-process control server: the no-crash reference.
	ctrl := server.New()
	defer ctrl.Close()
	ctrlSrv, err := newCtrlServer(ctrl)
	if err != nil {
		return fail("control server: %v", err)
	}
	defer ctrlSrv.close()

	for _, cs := range compared {
		rep.Compared++
		var hist []server.PatternJSON
		if _, _, err := chaosCall(client, "GET", proc.base, "/sessions/"+cs.id+"/history", nil, &hist); err != nil {
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("%s: restore failed: %v", cs.id, err))
			continue
		}
		rep.Restored++
		// The durable history may be one ahead of the acknowledged
		// commits (a Put that landed just before the kill swallowed the
		// response) but never behind, and never past what was attempted.
		if len(hist) < cs.commits || len(hist) > cfg.Iterations {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("%s: restored history %d outside [%d,%d]", cs.id, len(hist), cs.commits, cfg.Iterations))
			continue
		}
		var m server.MineResponse
		if _, _, err := chaosCall(client, "POST", proc.base, "/sessions/"+cs.id+"/mine", server.MineRequest{}, &m); err != nil {
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("%s: mine after restore: %v", cs.id, err))
			continue
		}
		var histRaw, mdlRaw json.RawMessage
		if _, _, err := chaosCall(client, "GET", proc.base, "/sessions/"+cs.id+"/history", nil, &histRaw); err != nil {
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("%s: history: %v", cs.id, err))
			continue
		}
		if _, _, err := chaosCall(client, "GET", proc.base, "/sessions/"+cs.id+"/model", nil, &mdlRaw); err != nil {
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("%s: model: %v", cs.id, err))
			continue
		}
		ctrlMine, ctrlHist, ctrlMdl, err := replayControl(client, ctrlSrv.base, cs.create, len(hist))
		if err != nil {
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("%s: control replay: %v", cs.id, err))
			continue
		}
		switch {
		case !bytes.Equal(canonicalMine(&m), ctrlMine):
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("%s: mine diverged from control", cs.id))
		case !bytes.Equal(histRaw, ctrlHist):
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("%s: history diverged from control", cs.id))
		case !bytes.Equal(mdlRaw, ctrlMdl):
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("%s: model export diverged from control", cs.id))
		default:
			rep.Identical++
		}
	}

	// Probe 1: the snapshot corrupted while the server was down must
	// have been quarantined by the startup sweep — the session is gone
	// (404), not a panic or a garbage restore.
	if sweepVictim != nil {
		code, errCode, _ := chaosCall(client, "GET", proc.base, "/sessions/"+sweepVictim.id+"/history", nil, nil)
		rep.SweepProbeOK = code == http.StatusNotFound && errCode == "not_found" &&
			quarantined(cfg.StoreDir, sweepVictim.id)
		if !rep.SweepProbeOK {
			rep.Errors = append(rep.Errors,
				fmt.Sprintf("sweep probe: HTTP %d code %q (want 404 not_found + quarantine)", code, errCode))
		}
	}
	// Probe 2: corrupt a not-yet-touched session behind the running
	// server; first touch must answer snapshot_corrupt (500) and
	// quarantine the file — never crash.
	if serveVictim != nil {
		if err := corruptSnapshot(cfg.StoreDir, serveVictim.id); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("serve probe: %v", err))
		} else {
			code, errCode, _ := chaosCall(client, "GET", proc.base, "/sessions/"+serveVictim.id+"/history", nil, nil)
			rep.ServeProbeOK = code == http.StatusInternalServerError && errCode == "snapshot_corrupt" &&
				quarantined(cfg.StoreDir, serveVictim.id)
			if !rep.ServeProbeOK {
				rep.Errors = append(rep.Errors,
					fmt.Sprintf("serve probe: HTTP %d code %q (want 500 snapshot_corrupt + quarantine)", code, errCode))
			}
		}
	}

	// Replica probes (Replicas >= 3): walk the failure ladder from one
	// dead replica (ready + warning) through quorum loss
	// (serve-from-memory per DESIGN.md §11) to heal (anti-entropy
	// converges every replica directory byte-identically).
	if replicated {
		probe := compared[0]
		// Rung 1: one replica dead, quorum intact. Two mine+commit loops
		// must still persist (each commit costs the dead replica a
		// fence-Get and a Put failure, tripping its breaker past the
		// threshold), after which readyz stays ready but warns
		// store_replica_degraded and reports the tripped replica.
		for i := 0; i < 2; i++ {
			var m server.MineResponse
			if _, _, err := chaosCall(client, "POST", proc.base, "/sessions/"+probe.id+"/mine", server.MineRequest{}, &m); err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("mine with one replica dead: %v", err))
				break
			}
			var commit struct {
				Persisted   bool   `json:"persisted"`
				Persistence string `json:"persistence"`
			}
			if _, _, err := chaosCall(client, "POST", proc.base, "/sessions/"+probe.id+"/commit", nil, &commit); err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("commit with one replica dead: %v", err))
				break
			}
			if !commit.Persisted {
				rep.Errors = append(rep.Errors,
					fmt.Sprintf("commit with one replica dead not persisted (%+v): quorum should survive one death", commit))
				break
			}
		}
		var ready server.Readiness
		if code, _, err := chaosCall(client, "GET", proc.base, "/readyz", nil, &ready); err != nil || code != http.StatusOK {
			rep.Errors = append(rep.Errors, fmt.Sprintf("readyz with one replica dead: HTTP %d: %v", code, err))
		} else {
			warned := false
			for _, w := range ready.Warnings {
				if w == server.ReasonReplicaDegraded {
					warned = true
				}
			}
			unhealthy := 0
			for _, r := range ready.Replicas {
				if r.State != repstore.StateHealthy {
					unhealthy++
				}
			}
			rep.ReplicaDegradedSeen = ready.Ready && warned && unhealthy >= 1
			if !rep.ReplicaDegradedSeen {
				rep.Errors = append(rep.Errors,
					fmt.Sprintf("readyz with one replica dead: ready=%v warnings=%v unhealthy=%d (want ready + %s warning + >=1 unhealthy replica)",
						ready.Ready, ready.Warnings, unhealthy, server.ReasonReplicaDegraded))
			}
		}

		// Rung 2: a second replica dies — the write quorum is gone.
		// Commits must degrade to serve-from-memory (persisted=false),
		// explicit snapshot persistence 503s with store_degraded, reads
		// keep answering from memory, and readyz goes 503.
		if err := breakReplicaDir(dirs[1]); err != nil {
			return fail("break second replica: %v", err)
		}
		if err := func() error {
			var m server.MineResponse
			if _, _, err := chaosCall(client, "POST", proc.base, "/sessions/"+probe.id+"/mine", server.MineRequest{}, &m); err != nil {
				return fmt.Errorf("mine under quorum loss: %w", err)
			}
			var commit struct {
				Persisted   bool   `json:"persisted"`
				Persistence string `json:"persistence"`
			}
			if _, _, err := chaosCall(client, "POST", proc.base, "/sessions/"+probe.id+"/commit", nil, &commit); err != nil {
				return fmt.Errorf("commit under quorum loss: %w", err)
			}
			if commit.Persisted || commit.Persistence != "degraded" {
				return fmt.Errorf("commit under quorum loss = %+v (want persisted=false persistence=degraded)", commit)
			}
			if code, errCode, _ := chaosCall(client, "POST", proc.base, "/sessions/"+probe.id+"/snapshot", nil, nil); code != http.StatusServiceUnavailable || errCode != "store_degraded" {
				return fmt.Errorf("snapshot under quorum loss: HTTP %d code %q (want 503 store_degraded)", code, errCode)
			}
			if code, _, err := chaosCall(client, "GET", proc.base, "/sessions/"+probe.id+"/history", nil, nil); code != http.StatusOK {
				return fmt.Errorf("history under quorum loss: HTTP %d: %v (reads must keep serving from memory)", code, err)
			}
			if code, _, _ := chaosCall(client, "GET", proc.base, "/readyz", nil, nil); code != http.StatusServiceUnavailable {
				return fmt.Errorf("readyz under quorum loss: HTTP %d (want 503)", code)
			}
			return nil
		}(); err != nil {
			rep.Errors = append(rep.Errors, err.Error())
		} else {
			rep.QuorumLossOK = true
		}

		// Rung 3: heal both dead replicas. The degraded store recovers on
		// the next persistence attempt, then the anti-entropy sweep
		// (forced fast via -store-sweep) plus breaker reintegration must
		// converge every replica directory to a byte-identical snapshot
		// set and clear the readyz warning.
		if err := healReplicaDir(dirs[1]); err != nil {
			return fail("heal replica: %v", err)
		}
		if err := healReplicaDir(dirs[len(dirs)-1]); err != nil {
			return fail("heal replica: %v", err)
		}
		recovered := false
		for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
			if code, _, _ := chaosCall(client, "POST", proc.base, "/sessions/"+probe.id+"/snapshot", nil, nil); code == http.StatusOK {
				recovered = true
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
		if !recovered {
			rep.Errors = append(rep.Errors, "store did not recover within 30s of healing the replicas")
		} else {
			for deadline := time.Now().Add(90 * time.Second); time.Now().Before(deadline); {
				var rd server.Readiness
				code, _, _ := chaosCall(client, "GET", proc.base, "/readyz", nil, &rd)
				if code == http.StatusOK && len(rd.Warnings) == 0 && replicaDirsConverged(dirs) {
					rep.ConvergedOK = true
					break
				}
				time.Sleep(500 * time.Millisecond)
			}
			if !rep.ConvergedOK {
				rep.Errors = append(rep.Errors, "replicas did not converge byte-identically within 90s of healing")
			}
		}
	}

	// Graceful teardown exercises the SIGTERM → drain → shutdown path.
	if err := proc.stop(); err != nil {
		rep.Errors = append(rep.Errors, fmt.Sprintf("graceful stop: %v", err))
	}

	rep.OK = len(rep.Errors) == 0 && len(rep.Mismatches) == 0 &&
		rep.Restored == rep.Compared && rep.Identical == rep.Compared &&
		(sweepVictim == nil || rep.SweepProbeOK) &&
		(serveVictim == nil || rep.ServeProbeOK) &&
		(!replicated || (rep.ReplicaDegradedSeen && rep.QuorumLossOK && rep.ConvergedOK))
	return rep, nil
}

// quarantined reports whether the session's snapshot was moved aside
// as <id>.json.corrupt (and the live file is gone).
func quarantined(storeDir, id string) bool {
	if _, err := os.Stat(filepath.Join(storeDir, id+".json.corrupt")); err != nil {
		return false
	}
	_, err := os.Stat(filepath.Join(storeDir, id+".json"))
	return os.IsNotExist(err)
}

// ctrlServer is a minimal in-process HTTP front for the control server
// (net/http/httptest is test-only by convention; this keeps the
// harness importable from main packages without that dependency).
type ctrlServer struct {
	base  string
	inner *http.Server
}

func newCtrlServer(api *server.Server) (*ctrlServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: api.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &ctrlServer{base: "http://" + ln.Addr().String(), inner: srv}, nil
}

func (c *ctrlServer) close() {
	_ = c.inner.Close()
}
