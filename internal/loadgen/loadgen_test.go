package loadgen

import (
	"net/http/httptest"
	"testing"

	"repro/internal/server"
)

// TestLoad32Users is the serving-subsystem acceptance check: 32
// concurrent simulated users complete full mine/commit loops against an
// in-process server with zero failed jobs, and the report carries
// latency percentiles and throughput.
func TestLoad32Users(t *testing.T) {
	srv := server.NewWithOptions(server.Options{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	rep, err := Run(Config{
		BaseURL:    ts.URL,
		Users:      32,
		Iterations: 2,
		Dataset:    "synthetic",
		Depth:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedJobs != 0 {
		t.Fatalf("failed jobs: %d, errors: %v", rep.FailedJobs, rep.Errors)
	}
	if rep.Jobs != 32*2 {
		t.Fatalf("jobs = %d, want 64", rep.Jobs)
	}
	mine, ok := rep.Ops["mine"]
	if !ok || mine.Count != 64 || mine.P50MS <= 0 || mine.P95MS < mine.P50MS ||
		mine.P99MS < mine.P95MS || mine.MaxMS < mine.P99MS {
		t.Fatalf("mine stats malformed: %+v", mine)
	}
	if rep.JobsPerSec <= 0 {
		t.Fatalf("jobsPerSec = %v", rep.JobsPerSec)
	}
	for _, op := range []string{"create", "commit", "delete"} {
		st := rep.Ops[op]
		if st.Failed != 0 || st.Count == 0 {
			t.Fatalf("%s stats: %+v (errors %v)", op, st, rep.Errors)
		}
	}
}

// TestLoadAsyncMode drives the job-polling path.
func TestLoadAsyncMode(t *testing.T) {
	srv := server.NewWithOptions(server.Options{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	rep, err := Run(Config{
		BaseURL:    ts.URL,
		Users:      8,
		Iterations: 1,
		Dataset:    "synthetic",
		Depth:      2,
		Async:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedJobs != 0 || rep.Jobs != 8 {
		t.Fatalf("async run: %d jobs, %d failed, errors %v",
			rep.Jobs, rep.FailedJobs, rep.Errors)
	}
}
