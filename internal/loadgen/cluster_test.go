package loadgen

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestClusterSmoke runs the full scale-out scenario end-to-end with
// real shard subprocesses: baseline leg, router leg, router-overhead
// probe, and the shard-SIGKILL chaos leg (affected sessions must resume
// on survivors byte-identically to the no-crash control). Throughput
// scaling is hardware-dependent, so this test only asserts the
// correctness side plus sane report shape; the ≥2x bar is checked by
// the CI cluster job on a multi-core runner.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster smoke builds a real server binary and spawns shards")
	}
	bin := filepath.Join(t.TempDir(), "sisd-server")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sisd-server")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sisd-server: %v\n%s", err, out)
	}
	rep, err := RunCluster(ClusterConfig{
		ServerBin:  bin,
		StoreDir:   t.TempDir(),
		ShardCount: 3,
		Users:      6,
		Iterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("cluster run not ok: errors=%v chaos=%+v", rep.Errors, rep.Chaos)
	}
	if rep.Single == nil || rep.Cluster == nil {
		t.Fatal("report is missing a measured leg")
	}
	if rep.Single.Jobs == 0 || rep.Cluster.Jobs == 0 {
		t.Fatalf("no jobs completed: single=%d cluster=%d", rep.Single.Jobs, rep.Cluster.Jobs)
	}
	if rep.RoutedP50MS <= 0 || rep.DirectP50MS <= 0 {
		t.Fatalf("overhead probe did not run: direct=%.3f routed=%.3f", rep.DirectP50MS, rep.RoutedP50MS)
	}
	if rep.Chaos == nil {
		t.Fatal("chaos leg missing")
	}
	if rep.Chaos.Affected == 0 || rep.Chaos.Identical != rep.Chaos.Affected {
		t.Fatalf("chaos leg: identical %d/%d affected (killed %s): %v",
			rep.Chaos.Identical, rep.Chaos.Affected, rep.Chaos.KilledShard, rep.Chaos.Errors)
	}
}
