package si

import (
	"math/rand"
	"testing"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/mat"
)

// Ablation: the shared-Σ fast path (valid while only location patterns
// are committed) versus the general path that factorizes a d×d matrix
// per candidate. The paper's scalability pain point is dy=124
// (mammals); these benches quantify what the fast path buys there.

func benchScorer(b *testing.B, d int, breakFastPath bool) {
	const n = 2220
	rng := rand.New(rand.NewSource(1))
	y := mat.NewDense(n, d)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	m, err := background.New(n, make(mat.Vec, d), mat.Eye(d))
	if err != nil {
		b.Fatal(err)
	}
	half := bitset.New(n)
	for i := 0; i < n/2; i++ {
		half.Add(i)
	}
	mean := make(mat.Vec, d)
	mean[0] = 1
	if err := m.CommitLocation(half, mean); err != nil {
		b.Fatal(err)
	}
	if breakFastPath {
		w := make(mat.Vec, d)
		w[0] = 1
		if err := m.CommitSpread(half, w, mean, 0.5); err != nil {
			b.Fatal(err)
		}
	}
	sc, err := NewLocationScorer(m, y, Default())
	if err != nil {
		b.Fatal(err)
	}
	if (sc.shared != nil) == breakFastPath {
		b.Fatal("bench setup did not select the intended path")
	}
	// A fixed random candidate extension.
	ext := bitset.New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			ext.Add(i)
		}
	}
	// The engine's steady state: one worker per goroutine, scoring with
	// reusable scratch. Must report 0 allocs/op.
	w := sc.newWorker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := w.Score(ext, 2); !ok {
			b.Fatal("score failed")
		}
	}
}

func BenchmarkScoreSharedSigmaFastPathD16(b *testing.B)  { benchScorer(b, 16, false) }
func BenchmarkScoreGeneralPathD16(b *testing.B)          { benchScorer(b, 16, true) }
func BenchmarkScoreSharedSigmaFastPathD124(b *testing.B) { benchScorer(b, 124, false) }
func BenchmarkScoreGeneralPathD124(b *testing.B)         { benchScorer(b, 124, true) }

// benchScorerManyGroups quantifies the sufficient-statistics win the
// fused kernel buys when many patterns have been committed: the former
// per-group AND-popcount walk was O(#groups · n/64) per candidate,
// the fused label pass is O(n/64 + |I|) no matter how many groups the
// model has split into.
func benchScorerManyGroups(b *testing.B, commits int) {
	const n, d = 2220, 8
	rng := rand.New(rand.NewSource(1))
	y := mat.NewDense(n, d)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	m, err := background.New(n, make(mat.Vec, d), mat.Eye(d))
	if err != nil {
		b.Fatal(err)
	}
	mean := make(mat.Vec, d)
	mean[0] = 0.1
	for c := 0; c < commits; c++ {
		ext := bitset.New(n)
		lo := rng.Intn(n - 64)
		for i := lo; i < lo+64+rng.Intn(256) && i < n; i++ {
			ext.Add(i)
		}
		if err := m.CommitLocation(ext, mean); err != nil {
			b.Fatal(err)
		}
	}
	if m.NumGroups() < commits {
		b.Fatalf("expected many groups, got %d", m.NumGroups())
	}
	sc, err := NewLocationScorer(m, y, Default())
	if err != nil {
		b.Fatal(err)
	}
	ext := bitset.New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			ext.Add(i)
		}
	}
	w := sc.newWorker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := w.Score(ext, 2); !ok {
			b.Fatal("score failed")
		}
	}
}

// BenchmarkScoreManyGroups32Commits is the many-groups scaling
// benchmark of the sufficient-statistics refactor: a model carrying 32
// committed location constraints (the interactive steady state the
// server is built for), scored through the fused worker path.
func BenchmarkScoreManyGroups32Commits(b *testing.B) { benchScorerManyGroups(b, 32) }
