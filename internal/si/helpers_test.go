package si

import (
	"repro/internal/bitset"
	"repro/internal/mat"
)

func bsFrom(n int, idx []int) *bitset.Set { return bitset.FromIndices(n, idx) }

func vec2(a, b float64) mat.Vec { return mat.Vec{a, b} }
