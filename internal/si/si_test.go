package si

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/mat"
	"repro/internal/stats"
)

func newModel(t *testing.T, n, d int) *background.Model {
	t.Helper()
	m, err := background.New(n, make(mat.Vec, d), mat.Eye(d))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestDL(t *testing.T) {
	p := Params{Gamma: 0.5, Eta: 1}
	if got := p.DL(1, false); got != 1.5 {
		t.Fatalf("DL(1,loc) = %v", got)
	}
	if got := p.DL(2, true); got != 3 {
		t.Fatalf("DL(2,spread) = %v", got)
	}
	if d := Default(); d.Gamma != 0.1 || d.Eta != 1 {
		t.Fatalf("Default = %+v", d)
	}
}

func TestLocationICClosedForm(t *testing.T) {
	// Standard-normal prior, subgroup of k points with observed mean δ:
	// f_I ~ N(0, I/k), so IC = (d/2)·log(2π/k·…) + k·|δ|²/2 exactly.
	const n, k, d = 100, 25, 2
	m := newModel(t, n, d)
	ext := bitset.FromIndices(n, seq(0, k))
	yhat := mat.Vec{0.4, -0.3}
	ic, err := LocationIC(m, ext, yhat)
	if err != nil {
		t.Fatal(err)
	}
	mahal := float64(k) * (0.4*0.4 + 0.3*0.3)
	want := 0.5*(float64(d)*math.Log(2*math.Pi)-float64(d)*math.Log(k)) + mahal/2
	if math.Abs(ic-want) > 1e-10 {
		t.Fatalf("IC = %v, want %v", ic, want)
	}
}

func TestLocationICGrowsWithCoverageAndDisplacement(t *testing.T) {
	const n = 200
	m := newModel(t, n, 1)
	icSmall, _ := LocationIC(m, bitset.FromIndices(n, seq(0, 10)), mat.Vec{1})
	icLarge, _ := LocationIC(m, bitset.FromIndices(n, seq(0, 100)), mat.Vec{1})
	if icLarge <= icSmall {
		t.Fatalf("IC should grow with coverage: %v vs %v", icSmall, icLarge)
	}
	icNear, _ := LocationIC(m, bitset.FromIndices(n, seq(0, 50)), mat.Vec{0.1})
	icFar, _ := LocationIC(m, bitset.FromIndices(n, seq(0, 50)), mat.Vec{2})
	if icFar <= icNear {
		t.Fatalf("IC should grow with displacement: %v vs %v", icNear, icFar)
	}
}

func TestLocationICDropsAfterCommit(t *testing.T) {
	// The core iterative-mining property (Table I): once a pattern is
	// committed, its IC collapses to the no-surprise floor.
	const n = 100
	m := newModel(t, n, 2)
	ext := bitset.FromIndices(n, seq(0, 40))
	yhat := mat.Vec{2, 0}
	before, err := LocationIC(m, ext, yhat)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CommitLocation(ext, yhat); err != nil {
		t.Fatal(err)
	}
	after, err := LocationIC(m, ext, yhat)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("IC did not drop after commit: %v -> %v", before, after)
	}
	// After the commit the Mahalanobis term is zero, leaving only the
	// log-normalization constant.
	want := 0.5 * (2*math.Log(2*math.Pi) - 2*math.Log(40))
	if math.Abs(after-want) > 1e-9 {
		t.Fatalf("post-commit IC = %v, want %v", after, want)
	}
}

func TestLocationSIIntentionEquivalence(t *testing.T) {
	// Identical extensions must have identical IC; SI then differs only
	// through DL — the Table I consistency property.
	const n = 80
	m := newModel(t, n, 1)
	ext := bitset.FromIndices(n, seq(0, 30))
	p := Params{Gamma: 0.5, Eta: 1}
	si1, ic1, err := LocationSI(m, ext, mat.Vec{1.5}, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	si2, ic2, err := LocationSI(m, ext, mat.Vec{1.5}, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if ic1 != ic2 {
		t.Fatalf("IC depends on intention size: %v vs %v", ic1, ic2)
	}
	if math.Abs(si1*1.5-si2*2.0) > 1e-10 {
		t.Fatalf("SI·DL mismatch: %v vs %v", si1*1.5, si2*2.0)
	}
}

func TestSpreadICExactChiSquaredCase(t *testing.T) {
	// When all aᵢ are equal (single group), g = a·χ²_m exactly with
	// m = |I|, so IC must equal −log pdf = −[logpdf_χ²(ĝ/a, m) − log a].
	const n, k = 60, 20
	m := newModel(t, n, 2)
	ext := bitset.FromIndices(n, seq(0, k))
	w := mat.Vec{1, 0}
	center := mat.Vec{0, 0}
	for _, ghat := range []float64{0.3, 1.0, 2.7} {
		ic, err := SpreadIC(m, ext, w, center, ghat)
		if err != nil {
			t.Fatal(err)
		}
		a := 1.0 / k // wᵀΣw/|I| with Σ = I
		want := -(stats.ChiSquaredLogPDF(ghat/a, k) - math.Log(a))
		if math.Abs(ic-want) > 1e-9 {
			t.Fatalf("ghat=%v: IC = %v, want exact χ² value %v", ghat, ic, want)
		}
	}
}

func TestSpreadMomentsEqualCase(t *testing.T) {
	gs := []background.GroupStats{{Count: 10, S: 2.0}}
	sm := Moments(gs, 10)
	// a = 2/10 = 0.2 ⇒ α = 0.2, β = 0, m = 10.
	if math.Abs(sm.Alpha-0.2) > 1e-12 || math.Abs(sm.Beta) > 1e-12 ||
		math.Abs(sm.M-10) > 1e-9 {
		t.Fatalf("moments = %+v", sm)
	}
}

func TestSpreadMomentsMatchTrueMoments(t *testing.T) {
	// The three-moment fit must reproduce mean and variance of the true
	// mixture: E[g] = A1, Var[g] = 2·A2.
	gs := []background.GroupStats{
		{Count: 5, S: 1.0},
		{Count: 15, S: 3.0},
	}
	total := 20
	sm := Moments(gs, total)
	mean := sm.Alpha*sm.M + sm.Beta
	variance := 2 * sm.Alpha * sm.Alpha * sm.M
	if math.Abs(mean-sm.A1) > 1e-12 {
		t.Fatalf("approx mean %v != A1 %v", mean, sm.A1)
	}
	if math.Abs(variance-2*sm.A2) > 1e-12 {
		t.Fatalf("approx var %v != 2·A2 %v", variance, 2*sm.A2)
	}
}

func TestSpreadICDropsAfterCommit(t *testing.T) {
	const n, k = 80, 30
	m := newModel(t, n, 2)
	ext := bitset.FromIndices(n, seq(0, k))
	w := mat.Vec{0, 1}
	center := mat.Vec{0, 0}
	ghat := 0.2 // much smaller variance than the expected 1
	before, err := SpreadIC(m, ext, w, center, ghat)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CommitSpread(ext, w, center, ghat); err != nil {
		t.Fatal(err)
	}
	after, err := SpreadIC(m, ext, w, center, ghat)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("spread IC did not drop after commit: %v -> %v", before, after)
	}
}

func TestSpreadICClampsOutsideSupport(t *testing.T) {
	gs := []background.GroupStats{
		{Count: 5, S: 1.0},
		{Count: 15, S: 3.0},
	}
	sm := Moments(gs, 20)
	if sm.Beta <= 0 {
		t.Fatalf("test needs positive β, got %v", sm.Beta)
	}
	ic := SpreadICFromMoments(sm, sm.Beta/2) // below the support start
	if math.IsInf(ic, 0) || math.IsNaN(ic) {
		t.Fatalf("clamped IC must be finite, got %v", ic)
	}
}

func TestSpreadGradientTermsFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		a1 := 1 + rng.Float64()
		a2 := 0.2 + rng.Float64()*0.3
		a3 := 0.05 + rng.Float64()*0.1
		ghat := 0.5 + rng.Float64()*2
		sm := SpreadMoments{
			Alpha: a3 / a2, Beta: a1 - a2*a2/a3, M: a2 * a2 * a2 / (a3 * a3),
			A1: a1, A2: a2, A3: a3,
		}
		if (ghat-sm.Beta)/sm.Alpha < 1e-3 {
			continue // too close to the support edge for finite differences
		}
		ic, dG, dA1, dA2, dA3 := SpreadICGradientTerms(sm, ghat)
		const h = 1e-6
		check := func(name string, analytic float64, perturb func(d float64) SpreadMoments, gp float64) {
			t.Helper()
			icp := SpreadICFromMoments(perturb(h), gp+0)
			icm := SpreadICFromMoments(perturb(-h), gp-0)
			fd := (icp - icm) / (2 * h)
			if math.Abs(fd-analytic) > 1e-4*(1+math.Abs(analytic)) {
				t.Fatalf("%s: analytic %v, finite diff %v (ic=%v)", name, analytic, fd, ic)
			}
		}
		remake := func(b1, b2, b3 float64) SpreadMoments {
			return SpreadMoments{
				Alpha: b3 / b2, Beta: b1 - b2*b2/b3, M: b2 * b2 * b2 / (b3 * b3),
				A1: b1, A2: b2, A3: b3,
			}
		}
		check("dA1", dA1, func(d float64) SpreadMoments { return remake(a1+d, a2, a3) }, ghat)
		check("dA2", dA2, func(d float64) SpreadMoments { return remake(a1, a2+d, a3) }, ghat)
		check("dA3", dA3, func(d float64) SpreadMoments { return remake(a1, a2, a3+d) }, ghat)
		// dG separately.
		icp := SpreadICFromMoments(sm, ghat+h)
		icm := SpreadICFromMoments(sm, ghat-h)
		fd := (icp - icm) / (2 * h)
		if math.Abs(fd-dG) > 1e-4*(1+math.Abs(dG)) {
			t.Fatalf("dG: analytic %v, finite diff %v", dG, fd)
		}
	}
}

func TestLocationScorerMatchesDirectIC(t *testing.T) {
	const n, d = 120, 3
	m := newModel(t, n, d)
	// Commit one pattern so there are two groups with different means.
	if err := m.CommitLocation(bitset.FromIndices(n, seq(0, 40)), mat.Vec{1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	y := mat.NewDense(n, d)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	sc, err := NewLocationScorer(m, y, Default())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		var idx []int
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		ext := bitset.FromIndices(n, idx)
		si1, ic1, yhat, ok := sc.Score(ext, 1)
		if !ok {
			t.Fatal("scorer rejected a valid extension")
		}
		ic2, err := LocationIC(m, ext, yhat)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ic1-ic2) > 1e-9*(1+math.Abs(ic2)) {
			t.Fatalf("scorer IC %v != direct IC %v", ic1, ic2)
		}
		if math.Abs(si1-ic1/Default().DL(1, false)) > 1e-12 {
			t.Fatal("scorer SI inconsistent with IC/DL")
		}
	}
}

func TestLocationScorerGeneralPathAfterSpreadCommit(t *testing.T) {
	const n, d = 90, 2
	m := newModel(t, n, d)
	ext := bitset.FromIndices(n, seq(0, 30))
	if err := m.CommitLocation(ext, mat.Vec{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitSpread(ext, mat.Vec{1, 0}, mat.Vec{1, 1}, 0.5); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	y := mat.NewDense(n, d)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	sc, err := NewLocationScorer(m, y, Default())
	if err != nil {
		t.Fatal(err)
	}
	q := bitset.FromIndices(n, seq(10, 60)) // straddles both groups
	_, ic1, yhat, ok := sc.Score(q, 2)
	if !ok {
		t.Fatal("scorer rejected straddling extension")
	}
	ic2, err := LocationIC(m, q, yhat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ic1-ic2) > 1e-9*(1+math.Abs(ic2)) {
		t.Fatalf("general-path IC %v != direct %v", ic1, ic2)
	}
}

func TestScoreEmptyExtension(t *testing.T) {
	m := newModel(t, 10, 1)
	y := mat.NewDense(10, 1)
	sc, err := NewLocationScorer(m, y, Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := sc.Score(bitset.New(10), 1); ok {
		t.Fatal("empty extension must not score")
	}
}
