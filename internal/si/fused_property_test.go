package si

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/mat"
)

// The fused sufficient-statistics kernel must be a pure refactoring of
// the naive multi-pass scorer: same floats, bit for bit. The reference
// below is the pre-refactor implementation — one full AND-popcount
// bitset pass per background group plus a ForEach walk of Y — kept as
// the oracle, with one deliberate co-evolution: both it and the fused
// path moved from solve-then-dot to the forward-substitution
// Cholesky.MahalanobisSq (the quadratic form is all either needs), so
// the two remain the same float program.
func referenceScore(m *background.Model, y *mat.Dense, shared *mat.Cholesky, logDetS float64,
	ext *bitset.Set, numConds int, p Params) (si, ic float64, yhat mat.Vec, ok bool) {
	cnt := ext.Count()
	if cnt == 0 {
		return 0, 0, nil, false
	}
	d := m.D()
	yhat = make(mat.Vec, d)
	ext.ForEach(func(i int) {
		row := y.Row(i)
		for j, v := range row {
			yhat[j] += v
		}
	})
	yhat.Scale(1 / float64(cnt))

	muI := make(mat.Vec, d)
	var cov *mat.Dense
	if shared == nil {
		cov = mat.NewDense(d, d)
	}
	for _, g := range m.Groups() {
		icnt := g.Members.IntersectCount(ext)
		if icnt == 0 {
			continue
		}
		w := float64(icnt)
		muI.AddScaled(w, g.Mu)
		if cov != nil {
			cov.AddScaled(w, g.Sigma)
		}
	}
	muI.Scale(1 / float64(cnt))

	diff := yhat.Sub(muI)
	if shared != nil {
		mahal := float64(cnt) * shared.MahalanobisSq(make(mat.Vec, d), diff)
		ic = 0.5 * (float64(d)*math.Log(2*math.Pi) + logDetS -
			float64(d)*math.Log(float64(cnt)) + mahal)
	} else {
		cov.Scale(1 / float64(cnt*cnt))
		chol, err := mat.NewCholesky(cov)
		if err != nil {
			return 0, 0, nil, false
		}
		mahal := chol.MahalanobisSq(make(mat.Vec, d), diff)
		ic = 0.5 * (float64(d)*math.Log(2*math.Pi) + chol.LogDet() + mahal)
	}
	return ic / p.DL(numConds, false), ic, yhat, true
}

// randomModel commits a randomized sequence of location (and optionally
// spread) patterns, producing models with anywhere from 1 to dozens of
// parameter groups.
func randomModel(t *testing.T, rng *rand.Rand, n, d, commits int, withSpread bool) (*background.Model, *mat.Dense) {
	t.Helper()
	y := mat.NewDense(n, d)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	m, err := background.New(n, make(mat.Vec, d), mat.Eye(d))
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < commits; c++ {
		ext := bitset.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				ext.Add(i)
			}
		}
		if ext.Count() < 2 {
			continue
		}
		target := make(mat.Vec, d)
		for j := range target {
			target[j] = 0.3 * rng.NormFloat64()
		}
		if err := m.CommitLocation(ext, target); err != nil {
			t.Fatal(err)
		}
		if withSpread && c == 0 {
			w := make(mat.Vec, d)
			w[rng.Intn(d)] = 1
			if err := m.CommitSpread(ext, w, target, 0.5+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m, y
}

func randomExt(rng *rand.Rand, n int) *bitset.Set {
	ext := bitset.New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			ext.Add(i)
		}
	}
	return ext
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestFusedScorerMatchesNaiveBitForBit drives randomized models
// (varying group counts, both the shared-Σ and the general covariance
// path) and asserts that the fused single-pass scorer — through the
// concurrent Score, the per-worker Score, and the sufficient-statistics
// ScoreStats entry points — reproduces the naive multi-pass scorer's
// SI, IC and subgroup mean exactly, bit for bit.
func TestFusedScorerMatchesNaiveBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Default()
	for trial := 0; trial < 40; trial++ {
		n := 96 + rng.Intn(160)
		d := 1 + rng.Intn(4)
		commits := rng.Intn(7)
		withSpread := trial%3 == 0 && commits > 0
		m, y := randomModel(t, rng, n, d, commits, withSpread)

		sc, err := NewLocationScorer(m, y, p)
		if err != nil {
			t.Fatal(err)
		}
		if withSpread && sc.shared != nil {
			t.Fatal("spread commit should break the shared-Σ fast path")
		}
		worker := sc.newWorker()
		labels := m.Labels()

		for e := 0; e < 8; e++ {
			ext := randomExt(rng, n)
			numConds := 1 + rng.Intn(3)

			wantSI, wantIC, wantYhat, wantOK := referenceScore(
				m, y, sc.shared, sc.logDetS, ext, numConds, p)

			checks := []struct {
				name  string
				score func() (float64, float64, mat.Vec, bool)
			}{
				{"Score", func() (float64, float64, mat.Vec, bool) {
					return sc.Score(ext, numConds)
				}},
				{"Worker.Score", func() (float64, float64, mat.Vec, bool) {
					return worker.Score(ext, numConds)
				}},
				{"Worker.ScoreStats", func() (float64, float64, mat.Vec, bool) {
					// Build the sufficient statistics the way the engine's
					// depth-1 table does: counts via the labeling, the target
					// sum in increasing point order.
					counts := make([]int32, m.NumGroups())
					ysum := make(mat.Vec, d)
					size := 0
					ext.ForEach(func(i int) {
						counts[labels[i]]++
						row := y.Row(i)
						for j, v := range row {
							ysum[j] += v
						}
						size++
					})
					return worker.ScoreStats(counts, ysum, size, numConds)
				}},
			}
			for _, c := range checks {
				gotSI, gotIC, gotYhat, gotOK := c.score()
				if gotOK != wantOK {
					t.Fatalf("trial %d %s: ok=%v, reference %v", trial, c.name, gotOK, wantOK)
				}
				if !wantOK {
					continue
				}
				if !bitsEqual(gotSI, wantSI) || !bitsEqual(gotIC, wantIC) {
					t.Fatalf("trial %d %s (groups=%d, shared=%v): SI/IC %v/%v, reference %v/%v",
						trial, c.name, m.NumGroups(), sc.shared != nil, gotSI, gotIC, wantSI, wantIC)
				}
				for j := range wantYhat {
					if !bitsEqual(gotYhat[j], wantYhat[j]) {
						t.Fatalf("trial %d %s: yhat[%d] = %v, reference %v",
							trial, c.name, j, gotYhat[j], wantYhat[j])
					}
				}
			}
		}
	}
}

// TestFusedGeneralPathMatchesPublicLocationSI forces the general
// covariance path on shared-Σ models (the fast path disabled) and
// checks it against the public LocationSI — the SubgroupMeanMarginal-
// based formulation — bit for bit: the fused general path must be the
// same float program as the textbook one.
func TestFusedGeneralPathMatchesPublicLocationSI(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := Default()
	for trial := 0; trial < 20; trial++ {
		n := 80 + rng.Intn(120)
		d := 1 + rng.Intn(3)
		m, y := randomModel(t, rng, n, d, rng.Intn(5), false)

		sc, err := NewLocationScorer(m, y, p)
		if err != nil {
			t.Fatal(err)
		}
		sc.shared = nil // force the general path
		worker := sc.newWorker()

		for e := 0; e < 6; e++ {
			ext := randomExt(rng, n)
			si, ic, yhat, ok := worker.Score(ext, 2)
			if !ok {
				continue
			}
			wantSI, wantIC, err := LocationSI(m, ext, yhat.Clone(), 2, p)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(si, wantSI) || !bitsEqual(ic, wantIC) {
				t.Fatalf("trial %d: general path %v/%v, LocationSI %v/%v",
					trial, si, ic, wantSI, wantIC)
			}
		}
	}
}

// TestSharedFastPathAgreesWithGeneralPath cross-checks the two IC
// formulations (they are algebraically equal but float-different) to a
// tight relative tolerance on shared-Σ models.
func TestSharedFastPathAgreesWithGeneralPath(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := Default()
	for trial := 0; trial < 10; trial++ {
		n := 100 + rng.Intn(100)
		d := 1 + rng.Intn(3)
		m, y := randomModel(t, rng, n, d, rng.Intn(5), false)

		fast, err := NewLocationScorer(m, y, p)
		if err != nil {
			t.Fatal(err)
		}
		if fast.shared == nil {
			t.Fatal("location-only model must have the shared fast path")
		}
		slow, err := NewLocationScorer(m, y, p)
		if err != nil {
			t.Fatal(err)
		}
		slow.shared = nil

		for e := 0; e < 6; e++ {
			ext := randomExt(rng, n)
			fsi, fic, _, fok := fast.Score(ext, 2)
			ssi, sic, _, sok := slow.Score(ext, 2)
			if fok != sok {
				t.Fatalf("trial %d: ok mismatch", trial)
			}
			if !fok {
				continue
			}
			if relDiff(fic, sic) > 1e-9 || relDiff(fsi, ssi) > 1e-9 {
				t.Fatalf("trial %d: fast %v/%v vs general %v/%v", trial, fsi, fic, ssi, sic)
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}
