package si

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/background"
)

// sampleMixture draws from g = Σ (cᵢ copies of) aᵢ·χ²₁(λᵢ) with
// aᵢ = Sᵢ/total and λᵢ = shiftᵢ²/Sᵢ (one χ²₁ term per point).
func sampleMixture(rng *rand.Rand, gs []background.GroupStats, total int) float64 {
	var sum float64
	for _, g := range gs {
		a := g.S / float64(total)
		delta := g.MeanShift / math.Sqrt(g.S)
		for c := 0; c < g.Count; c++ {
			z := rng.NormFloat64() + delta
			sum += a * z * z
		}
	}
	return sum
}

// maxCDFError compares the fitted CDF against the empirical CDF of
// Monte Carlo samples (Kolmogorov–Smirnov style statistic).
func maxCDFError(sm SpreadMoments, samples []float64) float64 {
	sort.Float64s(samples)
	worst := 0.0
	n := float64(len(samples))
	for i, x := range samples {
		emp := (float64(i) + 0.5) / n
		if d := math.Abs(SpreadApproxCDF(sm, x) - emp); d > worst {
			worst = d
		}
	}
	return worst
}

func TestNoncentralReducesToCentral(t *testing.T) {
	gs := []background.GroupStats{
		{Count: 10, S: 1.5, MeanShift: 0},
		{Count: 20, S: 0.5, MeanShift: 0},
	}
	a := Moments(gs, 30)
	b := MomentsNoncentral(gs, 30)
	if math.Abs(a.Alpha-b.Alpha) > 1e-12 || math.Abs(a.Beta-b.Beta) > 1e-12 ||
		math.Abs(a.M-b.M) > 1e-9 {
		t.Fatalf("zero shifts must reduce to Eq. 18: %+v vs %+v", a, b)
	}
}

func TestNoncentralMatchesTrueMoments(t *testing.T) {
	gs := []background.GroupStats{
		{Count: 12, S: 2.0, MeanShift: 1.5},
		{Count: 8, S: 0.7, MeanShift: -0.6},
	}
	total := 20
	sm := MomentsNoncentral(gs, total)
	// True cumulants.
	var k1, k2 float64
	for _, g := range gs {
		a := g.S / float64(total)
		lam := g.MeanShift * g.MeanShift / g.S
		k1 += float64(g.Count) * a * (1 + lam)
		k2 += 2 * float64(g.Count) * a * a * (1 + 2*lam)
	}
	gotMean := sm.Alpha*sm.M + sm.Beta
	gotVar := 2 * sm.Alpha * sm.Alpha * sm.M
	if math.Abs(gotMean-k1) > 1e-10*(1+k1) {
		t.Fatalf("fit mean %v != κ₁ %v", gotMean, k1)
	}
	if math.Abs(gotVar-k2) > 1e-10*(1+k2) {
		t.Fatalf("fit var %v != κ₂ %v", gotVar, k2)
	}
}

func TestNoncentralBeatsCentralUnderShift(t *testing.T) {
	// With substantial mean shifts the noncentral fit must match the
	// Monte Carlo distribution much better than the central one.
	gs := []background.GroupStats{
		{Count: 25, S: 1.0, MeanShift: 2.0},
		{Count: 15, S: 0.5, MeanShift: -1.5},
	}
	total := 40
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = sampleMixture(rng, gs, total)
	}
	central := maxCDFError(Moments(gs, total), samples)
	noncentral := maxCDFError(MomentsNoncentral(gs, total), samples)
	if noncentral > 0.02 {
		t.Fatalf("noncentral fit KS error %v too large", noncentral)
	}
	if noncentral >= central {
		t.Fatalf("noncentral fit (%v) not better than central (%v)", noncentral, central)
	}
	if central < 0.05 {
		t.Fatalf("test premise broken: central fit unexpectedly good (%v)", central)
	}
}

func TestNoncentralFitAccurateWithoutShift(t *testing.T) {
	gs := []background.GroupStats{
		{Count: 30, S: 1.2, MeanShift: 0},
		{Count: 10, S: 3.0, MeanShift: 0},
	}
	total := 40
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = sampleMixture(rng, gs, total)
	}
	if err := maxCDFError(Moments(gs, total), samples); err > 0.02 {
		t.Fatalf("central fit KS error %v too large in its own regime", err)
	}
}

func TestSpreadICNoncentralEndToEnd(t *testing.T) {
	// Overlapping commits leave µᵢ ≠ ŷ_I inside the queried subgroup;
	// the noncentral IC must differ from the central one there, and
	// both must be finite.
	const n = 60
	m := newModel(t, n, 2)
	extA := make([]int, 0, 40)
	for i := 0; i < 40; i++ {
		extA = append(extA, i)
	}
	if err := m.CommitLocation(bsFrom(n, extA), vec2(2, 0)); err != nil {
		t.Fatal(err)
	}
	// Query a subgroup straddling the updated and untouched groups.
	q := make([]int, 0, 40)
	for i := 20; i < 60; i++ {
		q = append(q, i)
	}
	ext := bsFrom(n, q)
	center := vec2(1, 0) // not the model mean of either group
	w := vec2(1, 0)
	cIC, err := SpreadIC(m, ext, w, center, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	ncIC, err := SpreadICNoncentral(m, ext, w, center, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(cIC) || math.IsNaN(ncIC) || math.IsInf(cIC, 0) || math.IsInf(ncIC, 0) {
		t.Fatalf("non-finite ICs: %v, %v", cIC, ncIC)
	}
	if cIC == ncIC {
		t.Fatal("noncentral IC should differ when means are shifted")
	}
}

func TestSpreadApproxCDFMonotone(t *testing.T) {
	sm := Moments([]background.GroupStats{{Count: 20, S: 1.0}}, 20)
	prev := -1.0
	for x := -1.0; x < 6; x += 0.1 {
		v := SpreadApproxCDF(sm, x)
		if v < prev-1e-12 || v < 0 || v > 1 {
			t.Fatalf("CDF misbehaves at %v: %v", x, v)
		}
		prev = v
	}
	if SpreadApproxCDF(sm, -5) != 0 {
		t.Fatal("CDF below support must be 0")
	}
}
